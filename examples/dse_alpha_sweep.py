"""Design-space exploration over the conservativeness knob alpha.

The paper positions alpha as a DSE control knob: sweep it (and the target
device) and chart the (latency, prediction-fidelity) trade-off, printing
the Pareto-optimal operating points for each device.

Run:  python examples/dse_alpha_sweep.py
"""

import os

for var in ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS", "MKL_NUM_THREADS"):
    os.environ.setdefault(var, "1")

from repro.core.dse import pareto_front, sweep
from repro.gpu.device import (
    jetson_orin_agx_64gb,
    jetson_orin_nx_16gb,
    rtx_4090,
)
from repro.model.config import prosparse_llama2_7b


def main() -> None:
    config = prosparse_llama2_7b()
    alphas = (0.98, 1.0, 1.01, 1.02, 1.03, 1.06, 1.12)
    for device in (jetson_orin_agx_64gb(), jetson_orin_nx_16gb(), rtx_4090()):
        points = sweep(config, alphas=alphas, device=device,
                       n_tokens=3, n_rows=192)
        front = pareto_front(points)
        print(f"\n=== {config.name} on {device.name} ===")
        print(f"{'alpha':>7}{'ms/token':>10}{'speedup':>9}{'precision':>11}"
              f"{'recall':>8}{'skip':>7}{'pareto':>8}")
        front_alphas = {p.alpha for p in front}
        for p in points:
            star = "*" if p.alpha in front_alphas else ""
            print(f"{p.alpha:>7.2f}{p.seconds_per_token*1e3:>10.1f}"
                  f"{p.speedup_over_dense:>8.2f}x{p.mean_precision:>11.4f}"
                  f"{p.mean_recall:>8.3f}{p.mean_predicted_skip:>7.1%}"
                  f"{star:>8}")
    print("\n* = Pareto-optimal (no point is both faster and more precise)")


if __name__ == "__main__":
    main()

"""Reproduce Tables II and III: downstream accuracy vs alpha.

Trains the two role models (cached after the first run: a few minutes of
numpy training each), then evaluates the dense baseline, the SparseInfer
alpha sweep and the random-skip control on the GSM8K-like and BBH-like
tasks.

Run:  python examples/accuracy_tables.py
"""

import os

for var in ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS", "MKL_NUM_THREADS"):
    os.environ.setdefault(var, "1")

from repro.eval.accuracy import accuracy_table, format_table
from repro.eval.rolemodels import (
    build_tokenizer,
    evaluation_tasks,
    load_role_model,
    spec_13b_role,
    spec_7b_role,
)


def main() -> None:
    tokenizer = build_tokenizer()
    tasks = evaluation_tasks(n_samples=150)
    for label, spec in (("Table II (13B role)", spec_13b_role(tokenizer)),
                        ("Table III (7B role)", spec_7b_role(tokenizer))):
        print(f"\ntraining/loading {spec.config.name} "
              f"({spec.train_settings.steps} steps, cached afterwards)...")
        weights = load_role_model(spec, tokenizer)
        table = accuracy_table(
            weights, tokenizer, tasks, include_random_baseline=True
        )
        print(f"\n=== {label} ===")
        print(format_table(table))
    print("\nPaper trend: accuracy dips at alpha=1.00 and recovers to "
          "within ~1pp by alpha=1.03; random 90% skipping is far worse.")


if __name__ == "__main__":
    main()

"""The ReLUfication + ProSparse pipeline, end to end (paper Section II).

Reproduces the model-preparation recipe behind ProSparse-Llama2 at
laptop scale:

1. pre-train a small gated-MLP LM with **SiLU** (low activation sparsity),
2. **ReLUfy**: swap the gate activation to ReLU and fine-tune,
3. add ProSparse-style progressive **L1 regularisation** to push gate
   sparsity toward 90%,
4. optionally finish with a **FATReLU** threshold,

then show what each stage buys the SparseInfer predictor.

Run:  python examples/train_relufied_lm.py
"""

import os

for var in ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS", "MKL_NUM_THREADS"):
    os.environ.setdefault(var, "1")

from dataclasses import replace

import numpy as np

from repro.core.metrics import evaluate_skip_prediction, sparsity
from repro.core.predictor import SparseInferPredictor, true_skip_mask
from repro.model.config import ModelConfig
from repro.model.inference import InferenceModel
from repro.model.tokenizer import CharTokenizer
from repro.train.data import batches_from_task
from repro.train.lm import TrainableLM
from repro.train.relufication import relufy
from repro.train.trainer import TrainSettings, train
from repro.workloads import gsm8k_like


def stage_report(name: str, model: TrainableLM, tokenizer) -> None:
    """Measure gate sparsity and predictor quality at this stage."""
    weights = model.export_weights()
    engine = InferenceModel(weights, trace_mlp_inputs=True)
    for s in gsm8k_like.generate(4, seed=77):
        engine.reset()
        engine.generate(tokenizer.encode(s.prompt, add_bos=True), 3)
    gate_sparsity = float(np.mean(
        [sparsity(np.maximum(t.gate_preact, 0.0)) for t in engine.traces]
    ))
    predictor = SparseInferPredictor.from_gate_weights(weights.gate_matrices())
    qualities = [
        evaluate_skip_prediction(
            predictor.predict(t.layer, t.x).skip,
            true_skip_mask(t.gate_preact),
        )
        for t in engine.traces
    ]
    precision = float(np.mean([q.precision for q in qualities]))
    recall = float(np.mean([q.recall for q in qualities]))
    print(f"{name:<28} gate sparsity {gate_sparsity:6.1%}   "
          f"predictor P={precision:.3f} R={recall:.3f}")


def main() -> None:
    tokenizer = CharTokenizer(gsm8k_like.ALPHABET)
    config = ModelConfig(
        name="relufication-demo", vocab_size=tokenizer.vocab_size,
        d_model=96, n_layers=3, n_heads=3, d_ff=224, max_seq_len=64,
        dtype_bytes=4, activation="silu",
    )
    batches = batches_from_task(
        gsm8k_like.generate, tokenizer, n_batches=16, batch_size=32, seed=0
    )

    print("stage 1: pre-training with SiLU ...")
    model = TrainableLM(config, seed=0)
    train(model, batches, TrainSettings(steps=300, lr=3e-3, l1_peak=0.0))
    stage_report("SiLU pre-trained", model, tokenizer)

    print("\nstage 2: ReLUfication (swap + fine-tune) ...")
    relufy(model, batches, TrainSettings(steps=200, lr=1.5e-3, l1_peak=0.0))
    stage_report("ReLU-fied", model, tokenizer)

    print("\nstage 3: ProSparse L1 ramp ...")
    train(model, batches, TrainSettings(steps=300, lr=1.5e-3, l1_peak=4e-3,
                                        l1_warmup_fraction=0.4))
    stage_report("+ ProSparse L1", model, tokenizer)

    print("\nstage 4: FATReLU threshold ...")
    out = model.forward(batches[0].tokens, collect_gate_activations=True)
    del out
    result = relufy(
        model, batches, TrainSettings(steps=100, lr=1e-3, l1_peak=4e-3),
        fatrelu_target_sparsity=0.92,
    )
    model.config = replace(model.config)  # freeze
    stage_report(f"+ FATReLU (thr={result.fatrelu_threshold:.4f})",
                 model, tokenizer)

    print("\nSiLU barely produces exact zeros; ReLUfication + ProSparse "
          "creates the ~90% sparsity SparseInfer exploits.")


if __name__ == "__main__":
    main()

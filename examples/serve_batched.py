"""Serve a queue of requests through the batched sparse-decode engine.

Builds a small ReLU-fied model, submits a mixed-length request workload,
and drains it three ways: the classic one-request-at-a-time engine, a
batch=1 serving engine (bit-identical to the classic one), and a batched
engine exploiting the cross-sequence intersection of predicted skip sets.
Prints per-request completions and the throughput / intersection-decay
table.

Run:  python examples/serve_batched.py
"""

import os

for var in ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS", "MKL_NUM_THREADS"):
    os.environ.setdefault(var, "1")

from repro import (
    SparseInferSettings,
    build_predictor,
    random_weights,
    tiny_7b_role,
)
from repro.eval.latency import (
    measure_batched_serving,
    measure_sequential_serving,
)
from repro.eval.reporting import format_serving_sweep
from repro.gpu.batching import batch_skip_fraction
from repro.model.tokenizer import CharTokenizer
from repro.serving import Request
from repro.workloads import gsm8k_like


def build_workload(tokenizer, n_requests: int = 8) -> list:
    """Mixed-length greedy-decode requests over GSM8K-like prompts.

    Prompts are clipped so the workload is decode-dominated -- prefill
    runs per sequence in every engine, so long prompts only dilute the
    batching effect this demo is about.
    """
    samples = gsm8k_like.generate(n_requests, seed=21)
    requests = []
    for i, sample in enumerate(samples):
        prompt = tokenizer.encode(sample.prompt, add_bos=True)[:8]
        requests.append(
            Request(
                request_id=i,
                prompt_ids=tuple(prompt),
                max_new_tokens=24 + 8 * (i % 3),   # mixed lengths
            )
        )
    return requests


def main() -> None:
    tokenizer = CharTokenizer(gsm8k_like.ALPHABET)
    config = tiny_7b_role(vocab_size=tokenizer.vocab_size)
    weights = random_weights(config, seed=0)
    settings = SparseInferSettings(alpha=1.0, alpha_early=1.03,
                                   n_early_layers=2)
    requests = build_workload(tokenizer)
    print(f"model: {config.name}  d={config.d_model} k={config.d_ff} "
          f"layers={config.n_layers};  {len(requests)} queued requests\n")

    predictor = build_predictor(weights, settings)   # pack signs once
    baseline = measure_sequential_serving(weights, requests, settings,
                                          predictor=predictor)
    points = [
        measure_batched_serving(weights, requests, bsz, settings,
                                predictor=predictor)
        for bsz in (1, 4)
    ]
    analytic = [
        batch_skip_fraction(baseline.sequence_skip,
                            max(1, round(p.mean_batch_occupancy)))
        for p in points
    ]

    # Show a few completions from the batched run (same tokens as the
    # sequential engine produces -- the scheduler only changes *when* a
    # sequence decodes, not *what* it decodes).
    from repro.core.engine import build_batched_engine
    from repro.serving import ContinuousBatchingScheduler

    engine = build_batched_engine(weights, settings, predictor=predictor,
                                  max_batch_size=4)
    scheduler = ContinuousBatchingScheduler(engine)
    for request in requests:
        scheduler.submit(request)
    report = scheduler.run()
    for completion in sorted(report.completions,
                             key=lambda c: c.request_id)[:3]:
        text = tokenizer.decode(completion.generated_ids)
        print(f"request {completion.request_id}: admitted step "
              f"{completion.admitted_step}, finished step "
              f"{completion.finished_step}, {completion.n_generated} tokens "
              f"-> {text!r}")
    print(f"\nmean batch occupancy: {report.mean_batch_occupancy:.2f} over "
          f"{report.decode_steps} decode steps")

    print("\nthroughput sweep (tokens/sec, end-to-end):")
    print(format_serving_sweep(baseline, points, analytic))

    # Same workload through a paged KV cache at half the fixed engine's
    # memory budget: short requests only hold the pages they touch, so
    # the batch still fills and the tokens are identical.
    page_size = 16
    fixed_pages = 4 * -(-config.max_seq_len // page_size)
    paged = build_batched_engine(weights, settings, predictor=predictor,
                                 max_batch_size=4, paged=True,
                                 page_size=page_size,
                                 n_pages=fixed_pages // 2)
    paged_scheduler = ContinuousBatchingScheduler(paged)
    for request in requests:
        paged_scheduler.submit(request)
    paged_report = paged_scheduler.run()
    same = all(
        a.generated_ids == b.generated_ids
        for a, b in zip(sorted(report.completions, key=lambda c: c.request_id),
                        sorted(paged_report.completions,
                               key=lambda c: c.request_id))
    )
    print(f"\npaged KV at half budget ({paged.cache.n_pages} pages of "
          f"{page_size}): peak {paged_report.peak_pages_in_use} pages in "
          f"use ({paged_report.mean_page_utilisation:.0%} mean "
          f"utilisation), tokens identical to fixed slots: {same}")

    # Few-shot style workload: every prompt carries the same solved
    # exemplars, so prefix sharing forks the resident prefix pages
    # (refcounted, copy-on-write) instead of re-prefilling them, and the
    # correlation-aware window keeps the batch's skip intersection above
    # the independent skip^B decay.
    from repro.workloads import fewshot

    shots = fewshot.fewshot_set(gsm8k_like.generate, 6, n_shots=2, seed=5)
    shared_requests = [
        Request(request_id=i, prompt_ids=tuple(tokenizer.encode(s.prompt)),
                max_new_tokens=8)
        for i, s in enumerate(shots)
    ]
    sharing = build_batched_engine(weights, settings, predictor=predictor,
                                   max_batch_size=4, paged=True,
                                   page_size=page_size,
                                   prefix_sharing=True)
    sharing_scheduler = ContinuousBatchingScheduler(sharing,
                                                    reorder_window=4)
    for request in shared_requests:
        sharing_scheduler.submit(request)
    sharing_report = sharing_scheduler.run()
    total_prompt = sharing_report.prefill_tokens + \
        sharing_report.prefill_tokens_saved
    print(f"\nprefix sharing on a 2-shot workload: "
          f"{sharing_report.forked_admissions} forked admissions, "
          f"{sharing_report.prefill_tokens_saved}/{total_prompt} prompt "
          f"tokens served from shared KV, peak "
          f"{sharing_report.peak_shared_pages} shared pages; intersection "
          f"skip {sharing_report.intersection_skip:.3f} vs skip^B "
          f"{sharing_report.expected_uncorrelated_skip:.3f}")

    # Batched attention + chunked prefill: the same workload with the
    # two hot scalar loops vectorised -- decode attention runs as one
    # padded masked-softmax matmul per layer (length-bucketed) and
    # prompt prefill advances in causal 16-token chunks instead of
    # token by token.  Tokens stay identical; the report additionally
    # carries padding-waste / bucket telemetry.
    fast = build_batched_engine(weights, settings, predictor=predictor,
                                max_batch_size=4, paged=True,
                                page_size=page_size,
                                prefix_sharing=True,
                                batched_attention=True,
                                prefill_chunk=16)
    fast_scheduler = ContinuousBatchingScheduler(fast, reorder_window=4)
    for request in shared_requests:
        fast_scheduler.submit(request)
    fast_report = fast_scheduler.run()
    same_fast = all(
        a.generated_ids == b.generated_ids
        for a, b in zip(sorted(sharing_report.completions,
                               key=lambda c: c.request_id),
                        sorted(fast_report.completions,
                               key=lambda c: c.request_id))
    )
    print(f"\nbatched attention + chunked prefill (prefill_chunk=16): "
          f"{fast_report.attn_batched_steps} batched decode steps, "
          f"{fast_report.mean_attn_buckets:.2f} length buckets/step, "
          f"{fast_report.attn_padding_waste:.0%} padding masked off; "
          f"tokens identical to the scalar loops: {same_fast}")

    # Cross-request prefix cache: the same few-shot workload, but
    # *bursty* -- each request fully drains before the next arrives, so
    # no donor is ever resident and plain prefix sharing saves nothing.
    # With cache_pages > 0 a retiring sequence's prompt-prefix pages are
    # parked in an LRU (refcount 0, reclaimable) and the next burst
    # revives them, prefilling only the suffix.
    def drain_bursty(cache_pages):
        engine = build_batched_engine(weights, settings,
                                      predictor=predictor,
                                      max_batch_size=4, paged=True,
                                      page_size=page_size,
                                      prefix_sharing=True,
                                      cache_pages=cache_pages)
        scheduler = ContinuousBatchingScheduler(engine)
        for request in shared_requests:
            scheduler.submit(request)
            scheduler.run()         # fully drained: lifetimes never overlap
        return scheduler.report

    bursty_cold = drain_bursty(cache_pages=0)
    bursty_hot = drain_bursty(cache_pages=8)
    same_bursty = all(
        a.generated_ids == b.generated_ids
        for a, b in zip(sorted(bursty_cold.completions,
                               key=lambda c: c.request_id),
                        sorted(bursty_hot.completions,
                               key=lambda c: c.request_id))
    )
    print(f"\nprefix cache on bursty (non-overlapping) traffic: "
          f"resident-only reuses "
          f"{bursty_cold.prefill_reuse_fraction:.0%} of prompt tokens; "
          f"cache_pages=8 revives {bursty_hot.revived_admissions} "
          f"admissions, {bursty_hot.revived_tokens} prompt tokens "
          f"({bursty_hot.prefill_cache_fraction:.0%} served from cache, "
          f"peak {bursty_hot.peak_cached_pages} cached pages, "
          f"{bursty_hot.cache_evictions} evictions); tokens identical "
          f"to cold prefill: {same_bursty}")

    # Budgeted ticks + preemption: a long prompt arrives while short
    # requests are decoding.  Inline admission prefill stalls every
    # resident for the whole prompt; step_budget piggybacks the prefill
    # in bounded per-tick chunks, and preemption=True lets a
    # higher-priority head evict a lower-priority resident (prompt
    # prefix parked, generated tokens replayed on resume) rather than
    # wait for a seat.  Tokens stay identical either way.
    long_prompt = tuple(tokenizer.encode(shots[0].prompt * 3))[:96]
    mixed = [
        Request(request_id=i, prompt_ids=tuple(tokenizer.encode(s.prompt)),
                max_new_tokens=16)
        for i, s in enumerate(shots[:3])
    ] + [Request(request_id=3, prompt_ids=long_prompt,
                 max_new_tokens=8, priority=1)]

    def drain_mixed(step_budget, preemption, max_batch_size=4):
        engine = build_batched_engine(weights, settings,
                                      predictor=predictor,
                                      max_batch_size=max_batch_size,
                                      paged=True, page_size=page_size,
                                      prefix_sharing=True, cache_pages=8,
                                      prefill_chunk=16)
        scheduler = ContinuousBatchingScheduler(
            engine, step_budget=step_budget, preemption=preemption)
        for request in mixed:
            scheduler.submit(request)
        return scheduler.run()

    inline_report = drain_mixed(step_budget=0, preemption=False)
    budget_report = drain_mixed(step_budget=24, preemption=True,
                                max_batch_size=3)
    same_budget = (
        {c.request_id: c.generated_ids for c in inline_report.completions}
        == {c.request_id: c.generated_ids for c in budget_report.completions}
    )
    print(f"\nbudgeted ticks + preemption (step_budget=24, 3 seats, one "
          f"priority-1 arrival): worst tick prefill feed "
          f"{inline_report.peak_tick_prefill_tokens} -> "
          f"{budget_report.peak_tick_prefill_tokens} tokens, "
          f"{budget_report.piggybacked_chunks} piggybacked chunks, "
          f"{budget_report.preemptions} preemption(s), "
          f"{budget_report.resumed_admissions} resume(s) replaying "
          f"{budget_report.replayed_tokens} tokens; max ITL "
          f"{inline_report.max_itl_seconds * 1e3:.2f}ms -> "
          f"{budget_report.max_itl_seconds * 1e3:.2f}ms; tokens identical: "
          f"{same_budget}")

    # Per-request sampling: each Request can carry its own SamplerConfig
    # (temperature / top-k / top-p / seed); the scheduler samples the
    # whole batch in one vectorised BatchedSampler call, drawing from a
    # per-request RNG stream keyed by (seed, request_id).  Two requests
    # sharing a prompt but holding different seeds diverge; re-running
    # the same seeds at a different batch size reproduces every token,
    # because the streams are independent of batch composition.  The
    # on_token callback observes tokens as they are emitted.
    from repro.serving import SamplerConfig

    shared_prompt = tuple(tokenizer.encode(shots[0].prompt))[:12]
    sampled_requests = [
        Request(request_id=i, prompt_ids=shared_prompt, max_new_tokens=12,
                sampling=SamplerConfig(temperature=0.9, top_k=16,
                                       top_p=0.95, seed=seed))
        for i, seed in enumerate((11, 12, 11))   # 0 and 2 share a seed
    ]

    def drain_sampled(max_batch_size):
        engine = build_batched_engine(weights, settings,
                                      predictor=predictor,
                                      max_batch_size=max_batch_size,
                                      paged=True, page_size=page_size)
        streamed = []
        scheduler = ContinuousBatchingScheduler(
            engine,
            on_token=lambda rid, tok, step: streamed.append((rid, tok)))
        for request in sampled_requests:
            scheduler.submit(request)
        report = scheduler.run()
        return {c.request_id: c.generated_ids
                for c in report.completions}, streamed, report

    solo_out, _, _ = drain_sampled(max_batch_size=1)
    batch_out, streamed, sampled_report = drain_sampled(max_batch_size=3)
    print(f"\nper-request sampling (T=0.9, top_k=16, top_p=0.95, shared "
          f"prompt): seeds 11/12 diverge: "
          f"{solo_out[0] != solo_out[1]}; same seed, distinct streams "
          f"still decorrelate (ids 0 vs 2): {solo_out[0] != solo_out[2]}; "
          f"batch 3 reproduces batch 1 token-for-token: "
          f"{batch_out == solo_out}; on_token streamed "
          f"{len(streamed)}/{sampled_report.tokens_generated} tokens, "
          f"sampler {sampled_report.sampler_seconds * 1e3:.1f}ms "
          f"({sampled_report.sampled_tokens} sampled / "
          f"{sampled_report.greedy_tokens} greedy)")

    # Speculative self-drafting: each drafting sequence runs k cheap
    # draft steps through a second, aggressive-alpha view over the same
    # weights and sign-bit predictor (no extra model memory), then one
    # chunked causal GEMM verifies all k positions plus a bonus token;
    # the accepted prefix commits and the KV rolls back past the first
    # mismatch (refcount-safe truncate).  Acceptance drives an EMA that
    # adapts each sequence's draft depth.  Tokens are identical to plain
    # decode by construction -- only how many passes produce them
    # changes.
    from repro.serving import SpecConfig

    def drain_spec(speculation):
        engine = build_batched_engine(weights, settings,
                                      predictor=predictor,
                                      max_batch_size=4, paged=True,
                                      page_size=page_size,
                                      speculation=speculation)
        scheduler = ContinuousBatchingScheduler(engine)
        for request in requests:
            scheduler.submit(request)
        report = scheduler.run()
        return {c.request_id: c.generated_ids
                for c in report.completions}, report

    plain_out, plain_report = drain_spec(None)
    spec_out, spec_report = drain_spec(
        SpecConfig(k=4, draft_alpha=0.5, adaptive=True))
    print(f"\nspeculative self-drafting (k=4, draft_alpha=0.5, adaptive): "
          f"{spec_report.drafted_tokens} drafted, "
          f"{spec_report.accepted_tokens} accepted "
          f"({spec_report.acceptance_rate:.0%}); "
          f"{plain_report.decode_steps} -> {spec_report.decode_steps} "
          f"decode ticks "
          f"({spec_report.tokens_generated / spec_report.decode_steps:.2f} "
          f"tokens/tick); draft {spec_report.draft_seconds * 1e3:.1f}ms, "
          f"verify {spec_report.verify_seconds * 1e3:.1f}ms; tokens "
          f"identical to plain decode: {spec_out == plain_out}")

    # Traffic realism: instead of a pre-drained queue, a seeded Poisson
    # arrival trace runs the scheduler into overload -- every request
    # carries a tight interactive SLO (deadlines in deterministic
    # scheduler ticks).  Under admission="fifo" the backlog grows and
    # late requests miss TTFT but still burn decode capacity; under
    # admission="deadline" (EDF over the queue window) hopeless requests
    # are shed and the freed capacity serves still-feasible arrivals --
    # same trace, strictly more goodput.
    from types import SimpleNamespace

    from repro.eval.reporting import format_goodput
    from repro.serving import (LoadGenerator, PoissonProcess, SLOSpec,
                               run_trace)

    chat_slo = SLOSpec("interactive", ttft_steps=6, itl_steps=8)

    def chat_factory(rng, request_id):
        sample = gsm8k_like.make_problem(rng, n_terms=3)
        return Request(
            request_id=request_id,
            prompt_ids=tuple(tokenizer.encode(sample.prompt, add_bos=True)),
            max_new_tokens=int(rng.integers(8, 20)),
            slo=chat_slo,
        )

    def drain_traffic(admission):
        engine = build_batched_engine(weights, settings,
                                      predictor=predictor,
                                      max_batch_size=4, paged=True,
                                      page_size=page_size)
        scheduler = ContinuousBatchingScheduler(engine, admission=admission)
        trace = LoadGenerator(PoissonProcess(rate=1.2), chat_factory,
                              seed=3).trace(24)
        return run_trace(scheduler, trace, ticks_per_second=1.0)

    fifo_report = drain_traffic("fifo")
    edf_report = drain_traffic("deadline")
    print(f"\noverloaded Poisson traffic (24 requests, tight interactive "
          f"SLO), fifo vs deadline admission:")
    print(format_goodput([
        SimpleNamespace(label="fifo",
                        class_stats=fifo_report.class_telemetry()),
        SimpleNamespace(label="deadline",
                        class_stats=edf_report.class_telemetry()),
    ]))
    print(f"goodput {fifo_report.goodput_tokens} -> "
          f"{edf_report.goodput_tokens} tokens "
          f"({edf_report.shed_requests} hopeless requests shed)")


if __name__ == "__main__":
    main()

"""Reproduce the paper's on-device latency studies (Table I, Section V-A,
Fig. 4) on the Jetson Orin roofline model at true 7B/13B dimensions.

Run:  python examples/ondevice_latency_model.py
"""

import os

for var in ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS", "MKL_NUM_THREADS"):
    os.environ.setdefault(var, "1")

from repro.eval.latency import figure4, format_figure4
from repro.eval.memusage import compare_predictor_memory, format_comparison
from repro.eval.opcounts import format_table1, table1
from repro.eval.overhead import predictor_overhead
from repro.gpu.device import jetson_orin_agx_64gb
from repro.model.config import prosparse_llama2_7b, prosparse_llama2_13b


def main() -> None:
    cfg13 = prosparse_llama2_13b()
    cfg7 = prosparse_llama2_7b()
    device = jetson_orin_agx_64gb()

    print("=== Table I: operations per layer (13B) ===")
    print(format_table1(table1(cfg13)))

    print("\n=== Section V-A.1: predictor latency ===")
    rep = predictor_overhead(cfg13, device)
    print(f"SparseInfer : {rep.sparseinfer_us:6.1f} us/token/layer "
          f"(paper: ~70 us)")
    print(f"PowerInfer  : {rep.powerinfer_us:6.1f} us/token/layer")
    print(f"speedup     : {rep.speedup:.2f}x (paper: 3.66x)")

    print("\n=== Section V-A.2: predictor memory ===")
    print(format_comparison(compare_predictor_memory(cfg13)))

    print("\n=== Fig. 4: end-to-end token-generation latency ===")
    for cfg in (cfg13, cfg7):
        result = figure4(cfg, device, n_tokens=4, n_rows=256)
        print()
        print(format_figure4(result))
        best = result.speedup_over_llamacpp(1.0, "+KF+AS")
        over_pi = result.speedup_over_powerinfer(1.0, "+KF+AS")
        print(f"-> best speedup {best:.2f}x over llama.cpp, "
              f"{over_pi:.2f}x over PowerInfer "
              f"(paper: {'1.79x / 1.27x' if '13B' in cfg.name else '1.74x / 1.30x'})")


if __name__ == "__main__":
    main()

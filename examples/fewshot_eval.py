"""Prompt-length robustness of the sparse decode path.

The paper evaluates 8-shot GSM8K: long few-shot prompts are prefilled
densely, and sparsity is exploited only while decoding (Section V-C).
This example grows the prompt with 0/2/4 solved exemplars and shows that
the decode-phase skip fraction -- SparseInfer's entire saving -- is
unaffected by prompt length, while prefill cost grows linearly (and is
modelled as compute-bound in `repro.gpu.pipeline.prefill_timeline`).

Note on accuracy: the role models are trained zero-shot, so exemplar
prefixes are out-of-distribution for them and exact-match accuracy is
only meaningful in the 0-shot row (few-shot *formatting* is a training
distribution property, not an engine property).

Run:  python examples/fewshot_eval.py
"""

import os

for var in ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS", "MKL_NUM_THREADS"):
    os.environ.setdefault(var, "1")

import numpy as np

from repro.core.engine import SparseInferSettings, build_engine, dense_engine
from repro.eval.harness import evaluate
from repro.eval.rolemodels import build_tokenizer, load_role_model, spec_7b_role
from repro.gpu.device import jetson_orin_agx_64gb
from repro.gpu.pipeline import prefill_timeline
from repro.model.config import prosparse_llama2_13b
from repro.workloads import gsm8k_like
from repro.workloads.fewshot import fewshot_set


def main() -> None:
    tokenizer = build_tokenizer()
    spec = spec_7b_role(tokenizer)
    print(f"training/loading {spec.config.name} (cached after first run)...")
    weights = load_role_model(spec, tokenizer)

    dense = dense_engine(weights)
    sparse = build_engine(weights, SparseInferSettings(alpha=1.0))

    print(f"\n{'shots':>6}{'prompt chars':>14}{'decode skip':>13}"
          f"{'0-shot acc (dense/sparse)':>28}")
    for n_shots in (0, 2, 4):
        samples = fewshot_set(
            gsm8k_like.generate, n_samples=40, n_shots=n_shots, seed=300
        )
        prompt_len = int(np.mean([len(s.prompt) for s in samples]))
        sparse.mlp.reset_stats()
        sparse_res = evaluate(sparse, tokenizer, samples, task="gsm")
        skip = sparse.mlp.stats.gate_skip_fraction
        if n_shots == 0:
            dense_acc = evaluate(dense, tokenizer, samples, task="gsm").accuracy
            acc = f"{dense_acc:.1f}% / {sparse_res.accuracy:.1f}%"
        else:
            acc = "(out-of-distribution prompt)"
        print(f"{n_shots:>6}{prompt_len:>14}{skip:>12.1%}{acc:>28}")

    # Prefill cost at true 13B scale grows with the prompt, decode doesn't.
    cfg = prosparse_llama2_13b()
    device = jetson_orin_agx_64gb()
    print("\nmodelled 13B prefill cost on Orin (dense, compute-amortised):")
    for n_tokens in (64, 256, 1024):
        ms = prefill_timeline(cfg, n_tokens).latency(device) * 1e3
        print(f"  {n_tokens:>5}-token prompt: {ms:7.1f} ms "
              f"({ms / n_tokens:.2f} ms/token)")
    print("\nThe decode-phase skip fraction is prompt-length invariant; "
          "only the dense prefill scales with shots.")


if __name__ == "__main__":
    main()

"""Quickstart: predict activation sparsity with sign bits only.

Builds a small ReLU-fied model, packs the sign bits of its gate matrices
(the one-time offline step), and compares SparseInfer decoding against the
dense reference -- printing skip fractions, prediction quality, and the
agreement of the generated text.

Run:  python examples/quickstart.py
"""

import os

for var in ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS", "MKL_NUM_THREADS"):
    os.environ.setdefault(var, "1")

import numpy as np

from repro import (
    SparseInferSettings,
    build_engine,
    dense_engine,
    evaluate_skip_prediction,
    random_weights,
    tiny_7b_role,
    true_skip_mask,
)
from repro.model.tokenizer import CharTokenizer
from repro.workloads import gsm8k_like


def main() -> None:
    tokenizer = CharTokenizer(gsm8k_like.ALPHABET)
    config = tiny_7b_role(vocab_size=tokenizer.vocab_size)
    weights = random_weights(config, seed=0)
    print(f"model: {config.name}  d={config.d_model} k={config.d_ff} "
          f"layers={config.n_layers}")

    # --- offline step: pack sign bits, choose the alpha schedule ---------
    settings = SparseInferSettings(alpha=1.0, alpha_early=1.03,
                                   n_early_layers=2)
    sparse = build_engine(weights, settings, trace_mlp_inputs=True)
    dense = dense_engine(weights)

    # --- decode the same prompt through both engines ---------------------
    sample = gsm8k_like.generate(1, seed=7)[0]
    prompt = tokenizer.encode(sample.prompt, add_bos=True)
    out_sparse = sparse.generate(prompt, 3)
    dense_out = dense.generate(prompt, 3)

    print(f"\nprompt        : {sample.prompt!r}")
    print(f"dense output  : {tokenizer.decode(dense_out.generated_ids)!r}")
    print(f"sparse output : {tokenizer.decode(out_sparse.generated_ids)!r}")

    stats = sparse.mlp.stats
    print(f"\ngate rows skipped : {stats.gate_skip_fraction:6.1%} (predicted)")
    print(f"up   rows skipped : {stats.up_skip_fraction:6.1%} (+actual sparsity)")
    print(f"down rows skipped : {stats.down_skip_fraction:6.1%}")

    # --- prediction quality against the exact pre-activations ------------
    qualities = []
    for trace in sparse.traces:
        pred = sparse.mlp.predictor.predict(trace.layer, trace.x)
        qualities.append(
            evaluate_skip_prediction(pred.skip, true_skip_mask(trace.gate_preact))
        )
    precision = np.mean([q.precision for q in qualities])
    recall = np.mean([q.recall for q in qualities])
    print(f"\npredictor precision : {precision:.3f}")
    print(f"predictor recall    : {recall:.3f}")
    print("\n(untrained random weights have ~50% gate sparsity; train a role "
          "model -- examples/accuracy_tables.py -- for ProSparse-like 90%)")


if __name__ == "__main__":
    main()

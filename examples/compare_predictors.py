"""Compare the training-free sign predictor against the trained DejaVu
predictor and the random/threshold controls on a real (trained) model.

Trains a small ReLU-fied role model (cached after the first run), records
MLP traces, trains the DejaVu FC predictor on those traces -- the very
overhead SparseInfer removes -- and reports precision/recall and resident
memory for both predictors.

Run:  python examples/compare_predictors.py
"""

import os

for var in ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS", "MKL_NUM_THREADS"):
    os.environ.setdefault(var, "1")

import numpy as np

from repro.baselines.dejavu import DejaVuTrainConfig, train_dejavu_predictor
from repro.core.metrics import evaluate_skip_prediction
from repro.core.predictor import SparseInferPredictor, true_skip_mask
from repro.eval.rolemodels import (
    build_tokenizer,
    evaluation_tasks,
    load_role_model,
    spec_7b_role,
)
from repro.model.inference import InferenceModel


def main() -> None:
    tokenizer = build_tokenizer()
    spec = spec_7b_role(tokenizer)
    print(f"training/loading role model {spec.config.name} ...")
    weights = load_role_model(spec, tokenizer)

    # Record traces: calibration split for DejaVu, held-out for scoring.
    engine = InferenceModel(weights, trace_mlp_inputs=True)
    for sample in evaluation_tasks(n_samples=24, seed=50)["GSM8K-like"]:
        engine.reset()
        engine.generate(tokenizer.encode(sample.prompt, add_bos=True), 2)
    split = len(engine.traces) // 2
    train_traces, test_traces = engine.traces[:split], engine.traces[split:]

    print(f"training DejaVu predictor on {len(train_traces)} traces "
          f"(the overhead SparseInfer eliminates)...")
    dejavu = train_dejavu_predictor(
        train_traces, weights.config.n_layers,
        DejaVuTrainConfig(rank=16, steps=250, lr=5e-3),
    )
    sparseinfer = SparseInferPredictor.from_gate_weights(
        weights.gate_matrices()
    )

    def score(predict_fn):
        qs = []
        for t in test_traces:
            qs.append(
                evaluate_skip_prediction(
                    predict_fn(t.layer, t.x), true_skip_mask(t.gate_preact)
                )
            )
        return (np.mean([q.precision for q in qs]),
                np.mean([q.recall for q in qs]))

    si_p, si_r = score(lambda l, x: sparseinfer.predict(l, x).skip)
    dv_p, dv_r = score(dejavu.predict)
    rng = np.random.default_rng(0)
    rd_p, rd_r = score(
        lambda l, x: rng.random(weights.config.d_ff) < 0.9
    )

    print(f"\n{'predictor':<22}{'precision':>10}{'recall':>8}{'memory':>12}"
          f"{'training':>10}")
    print(f"{'SparseInfer (signs)':<22}{si_p:>10.3f}{si_r:>8.3f}"
          f"{sparseinfer.nbytes:>10d} B{'none':>10}")
    print(f"{'DejaVu (trained FC)':<22}{dv_p:>10.3f}{dv_r:>8.3f}"
          f"{dejavu.nbytes:>10d} B{'required':>10}")
    print(f"{'random 90%':<22}{rd_p:>10.3f}{rd_r:>8.3f}{'-':>12}{'-':>10}")
    print(f"\nmemory ratio DejaVu/SparseInfer: "
          f"{dejavu.nbytes / sparseinfer.nbytes:.2f}x "
          f"(paper at 13B scale: 4.38x)")


if __name__ == "__main__":
    main()

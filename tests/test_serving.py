"""Tests for the batched sparse-decode serving subsystem."""

import numpy as np
import pytest

from repro.core.engine import (
    SparseInferSettings,
    build_batched_engine,
    build_engine,
)
from repro.core.predictor import SparseInferPredictor
from repro.core.signpack import pack_signs, xor_popcount
from repro.eval.latency import (
    measure_batched_serving,
    measure_sequential_serving,
)
from repro.eval.reporting import format_serving_sweep
from repro.model.kvcache import BatchedKVCache
from repro.serving import (
    BatchedEngine,
    ContinuousBatchingScheduler,
    Request,
    RequestQueue,
)

PROMPTS = [[1, 4, 2], [3, 5], [6, 7, 8, 9], [2, 2, 1], [10, 3], [4, 4, 4]]


def make_requests(max_new_tokens=6, prompts=PROMPTS):
    return [
        Request(request_id=i, prompt_ids=tuple(p), max_new_tokens=max_new_tokens)
        for i, p in enumerate(prompts)
    ]


def reference_generations(weights, prompts, n_tokens, settings=None):
    engine = build_engine(weights, settings)
    return [
        engine.generate(p, max_new_tokens=n_tokens).generated_ids
        for p in prompts
    ]


class TestBatchPrediction:
    def test_intersection_is_per_sequence_and(self, micro_weights, rng):
        predictor = SparseInferPredictor.from_gate_weights(
            micro_weights.gate_matrices()
        )
        xs = rng.standard_normal((5, micro_weights.config.d_model)).astype(
            np.float32
        )
        pred = predictor.predict_intersection(0, xs)
        per_seq = np.stack(
            [predictor.predict(0, xs[i]).skip for i in range(5)]
        )
        np.testing.assert_array_equal(pred.skip, per_seq)
        np.testing.assert_array_equal(
            pred.intersection_skip, np.logical_and.reduce(per_seq, axis=0)
        )

    def test_batched_xor_popcount_matches_loop(self, rng):
        rows = rng.standard_normal((17, 70)).astype(np.float32)
        xs = rng.standard_normal((4, 70)).astype(np.float32)
        packed_rows = pack_signs(rows)
        packed_xs = pack_signs(xs)
        batched = xor_popcount(packed_rows, packed_xs)
        assert batched.shape == (4, 17)
        for i in range(4):
            np.testing.assert_array_equal(
                batched[i], xor_popcount(packed_rows, packed_xs[i])
            )

    def test_batch_of_one_matches_single(self, micro_weights, rng):
        predictor = SparseInferPredictor.from_gate_weights(
            micro_weights.gate_matrices()
        )
        x = rng.standard_normal(micro_weights.config.d_model).astype(np.float32)
        single = predictor.predict(1, x)
        batched = predictor.predict_intersection(1, x[None, :])
        np.testing.assert_array_equal(batched.skip[0], single.skip)
        np.testing.assert_array_equal(batched.n_neg[0], single.n_neg)
        np.testing.assert_array_equal(batched.intersection_skip, single.skip)


class TestBatchedKVCache:
    def test_slots_are_recycled(self, micro_config):
        cache = BatchedKVCache(micro_config, n_slots=2, max_seq_len=8)
        a = cache.allocate()
        b = cache.allocate()
        assert cache.n_free == 0
        with pytest.raises(RuntimeError):
            cache.allocate()
        a.append(0, np.ones(micro_config.d_model),
                 np.ones(micro_config.d_model), 0)
        a.advance()
        assert a.length == 1
        cache.release(a)
        assert cache.n_free == 1
        c = cache.allocate()
        assert c.length == 0           # reset on reuse
        with pytest.raises(ValueError):
            cache.release(b) or cache.release(b)

    def test_slot_views_are_independent(self, micro_config):
        cache = BatchedKVCache(micro_config, n_slots=2, max_seq_len=4)
        a, b = cache.allocate(), cache.allocate()
        a.append(0, np.full(micro_config.d_model, 2.0),
                 np.full(micro_config.d_model, 3.0), 0)
        keys_b, _ = b.view(0, 1)
        assert not keys_b.any()
        keys_a, values_a = a.view(0, 1)
        assert (keys_a == 2.0).all() and (values_a == 3.0).all()


class TestBatchedEngineEquivalence:
    def test_batch1_bit_identical_logits(self, micro_weights):
        sequential = build_engine(micro_weights)
        sequential.reset()
        ref_logits = sequential.prefill(PROMPTS[0])

        engine = build_batched_engine(micro_weights, max_batch_size=1)
        slot = engine.allocate_slot()
        logits = engine.prefill(slot, PROMPTS[0])
        np.testing.assert_array_equal(logits, ref_logits)

        token = int(np.argmax(ref_logits))
        step = engine.decode_step([slot], [token])
        ref_step = sequential.forward_token(token, sequential.cache.length)
        np.testing.assert_array_equal(step[0], ref_step)

    def test_batch1_serving_token_identical(self, micro_weights):
        ref = reference_generations(micro_weights, PROMPTS, 6)
        engine = build_batched_engine(micro_weights, max_batch_size=1)
        scheduler = ContinuousBatchingScheduler(engine)
        for request in make_requests():
            scheduler.submit(request)
        report = scheduler.run()
        got = {c.request_id: c.generated_ids for c in report.completions}
        assert got == {i: ref[i] for i in range(len(PROMPTS))}

    @pytest.mark.parametrize("batch_size", [2, 3, 4])
    def test_batched_serving_token_identical(self, micro_weights, batch_size):
        ref = reference_generations(micro_weights, PROMPTS, 6)
        engine = build_batched_engine(
            micro_weights, max_batch_size=batch_size
        )
        scheduler = ContinuousBatchingScheduler(engine)
        for request in make_requests():
            scheduler.submit(request)
        report = scheduler.run()
        got = {c.request_id: c.generated_ids for c in report.completions}
        assert got == {i: ref[i] for i in range(len(PROMPTS))}

    def test_settings_flow_through(self, micro_weights):
        settings = SparseInferSettings(alpha=1.02, alpha_early=1.03,
                                       n_early_layers=1)
        ref = reference_generations(micro_weights, PROMPTS[:3], 5, settings)
        engine = build_batched_engine(
            micro_weights, settings, max_batch_size=2
        )
        scheduler = ContinuousBatchingScheduler(engine)
        for request in make_requests(5, PROMPTS[:3]):
            scheduler.submit(request)
        got = {c.request_id: c.generated_ids
               for c in scheduler.run().completions}
        assert got == {i: ref[i] for i in range(3)}

    def test_gather_and_dense_paths_agree(self, micro_weights, rng):
        """The dense fallback is an execution detail, not a semantics change."""
        engine_a = BatchedEngine(micro_weights, max_batch_size=4)
        engine_b = BatchedEngine(micro_weights, max_batch_size=4)
        engine_a.sparse.gather_threshold = 0.0   # always gather... (never dense)
        engine_b.sparse.gather_threshold = 1.1   # always dense fallback
        xs = rng.standard_normal((4, micro_weights.config.d_model)).astype(
            np.float32
        )
        out_a = engine_a.sparse.run_batch(0, xs)
        out_b = engine_b.sparse.run_batch(0, xs)
        np.testing.assert_allclose(out_a, out_b, atol=1e-5)


class TestScheduler:
    def test_drains_mixed_length_queue_without_starvation(self, micro_weights):
        prompts = PROMPTS * 2                          # 12 requests, 2 slots
        lengths = [2 + (i % 5) for i in range(len(prompts))]
        requests = [
            Request(request_id=i, prompt_ids=tuple(p), max_new_tokens=n)
            for i, (p, n) in enumerate(zip(prompts, lengths))
        ]
        engine = build_batched_engine(micro_weights, max_batch_size=2)
        scheduler = ContinuousBatchingScheduler(engine)
        for request in requests:
            scheduler.submit(request)
        report = scheduler.run()
        assert scheduler.idle
        assert len(report.completions) == len(requests)
        by_id = {c.request_id: c for c in report.completions}
        for i, n in enumerate(lengths):
            assert by_id[i].n_generated == n
        # FIFO admission: request i never admitted after request j > i.
        admitted = [by_id[i].admitted_step for i in range(len(requests))]
        assert admitted == sorted(admitted)
        # All slots returned to the pool.
        assert engine.n_free_slots == engine.max_batch_size

    def test_requests_join_leaving_batch_mid_flight(self, micro_weights):
        requests = [
            Request(request_id=0, prompt_ids=(1, 2), max_new_tokens=10),
            Request(request_id=1, prompt_ids=(3, 4), max_new_tokens=2),
            Request(request_id=2, prompt_ids=(5, 6), max_new_tokens=2),
        ]
        engine = build_batched_engine(micro_weights, max_batch_size=2)
        scheduler = ContinuousBatchingScheduler(engine)
        for request in requests:
            scheduler.submit(request)
        report = scheduler.run()
        by_id = {c.request_id: c for c in report.completions}
        # Request 2 was admitted as soon as request 1 retired, while
        # request 0 was still decoding (continuous batching).
        assert by_id[2].admitted_step <= by_id[0].finished_step
        assert by_id[2].admitted_step > by_id[1].admitted_step

    def test_numpy_array_prompt_prefills(self, micro_weights):
        """Regression: ``if not prompt_ids:`` choked on numpy arrays."""
        engine = build_batched_engine(micro_weights, max_batch_size=1)
        slot = engine.allocate_slot()
        logits = engine.prefill(slot, np.array(PROMPTS[0]))
        ref = build_engine(micro_weights)
        ref.reset()
        np.testing.assert_array_equal(logits, ref.prefill(PROMPTS[0]))
        engine.release_slot(slot)
        with pytest.raises(ValueError, match="at least one token"):
            slot2 = engine.allocate_slot()
            engine.prefill(slot2, np.array([], dtype=np.int64))

    def test_numpy_array_prompt_single_engine(self, micro_weights):
        """Same regression on :meth:`InferenceModel.prefill`."""
        engine = build_engine(micro_weights)
        engine.reset()
        got = engine.prefill(np.array(PROMPTS[0]))
        engine.reset()
        np.testing.assert_array_equal(got, engine.prefill(PROMPTS[0]))
        with pytest.raises(ValueError, match="at least one token"):
            engine.prefill(np.array([], dtype=np.int64))

    def test_zero_token_request_skips_slot_and_prefill(self, micro_weights):
        """max_new_tokens=0 must not burn a prefill or a KV slot."""
        engine = build_batched_engine(micro_weights, max_batch_size=1)
        scheduler = ContinuousBatchingScheduler(engine)
        for i in range(3):
            scheduler.submit(Request(request_id=i, prompt_ids=(1, 2, 3),
                                     max_new_tokens=0))
        report = scheduler.run()
        assert report.prefill_tokens == 0
        assert report.prefill_seconds == 0.0
        assert report.decode_steps == 0
        assert engine.n_free_slots == 1
        assert all(c.ok and c.generated_ids == [] for c in report.completions)
        # All three complete on the first tick: none waits for the one slot.
        assert all(c.finished_step == c.admitted_step
                   for c in report.completions)

    def test_zero_token_completes_even_when_batch_is_full(
        self, micro_weights
    ):
        """A zero-token request needs no decode seat, so a full batch
        must not delay it."""
        engine = build_batched_engine(micro_weights, max_batch_size=1)
        scheduler = ContinuousBatchingScheduler(engine)
        scheduler.submit(Request(request_id=0, prompt_ids=(1, 2),
                                 max_new_tokens=20))
        scheduler.submit(Request(request_id=1, prompt_ids=(3, 4),
                                 max_new_tokens=0))
        report = scheduler.run()
        by_id = {c.request_id: c for c in report.completions}
        assert by_id[1].ok and by_id[1].generated_ids == []
        # It finished on the first tick it was considered, long before
        # the decoding request released the only slot.
        assert by_id[1].finished_step < by_id[0].finished_step

    def test_zero_token_with_oversize_prompt_succeeds(self, micro_weights):
        """No prefill means no KV demand: size limits don't apply."""
        engine = build_batched_engine(micro_weights, max_batch_size=1,
                                      max_seq_len=4)
        scheduler = ContinuousBatchingScheduler(engine)
        scheduler.submit(Request(request_id=0,
                                 prompt_ids=tuple(range(1, 11)),
                                 max_new_tokens=0))
        report = scheduler.run()
        assert report.completions[0].ok
        assert report.completions[0].generated_ids == []
        assert report.prefill_tokens == 0

    def test_zero_token_requests_dont_block_real_ones(self, micro_weights):
        engine = build_batched_engine(micro_weights, max_batch_size=1)
        scheduler = ContinuousBatchingScheduler(engine)
        scheduler.submit(Request(request_id=0, prompt_ids=(1, 2),
                                 max_new_tokens=0))
        scheduler.submit(Request(request_id=1, prompt_ids=(1, 2),
                                 max_new_tokens=3))
        report = scheduler.run()
        by_id = {c.request_id: c for c in report.completions}
        assert by_id[0].generated_ids == []
        assert by_id[1].n_generated == 3
        assert report.prefill_tokens == 2      # only request 1 prefilled

    def test_stop_ids_and_zero_budget(self, micro_weights):
        engine = build_batched_engine(micro_weights, max_batch_size=2)
        scheduler = ContinuousBatchingScheduler(engine)
        ref = build_engine(micro_weights)
        first = ref.generate([1, 2], 1).generated_ids[0]
        scheduler.submit(Request(request_id=0, prompt_ids=(1, 2),
                                 max_new_tokens=0))
        scheduler.submit(Request(request_id=1, prompt_ids=(1, 2),
                                 max_new_tokens=5,
                                 stop_ids=frozenset({first})))
        report = scheduler.run()
        by_id = {c.request_id: c for c in report.completions}
        assert by_id[0].generated_ids == []
        assert by_id[1].generated_ids == []     # first token hits stop set

    def test_oversized_request_rejected_at_submit(self, micro_weights):
        """A request that can never fit a slot must not crash a batch."""
        engine = build_batched_engine(
            micro_weights, max_batch_size=2, max_seq_len=8
        )
        scheduler = ContinuousBatchingScheduler(engine)
        with pytest.raises(ValueError, match="KV positions"):
            scheduler.submit(
                Request(request_id=0, prompt_ids=(1, 2, 3),
                        max_new_tokens=20)
            )
        # The largest request that does fit drains cleanly: it feeds
        # prompt (3) + max_new_tokens - 1 (5) = 8 positions.
        scheduler.submit(
            Request(request_id=1, prompt_ids=(1, 2, 3), max_new_tokens=6)
        )
        report = scheduler.run()
        assert report.completions[0].n_generated == 6
        assert report.completions[0].ok

    def test_oversized_request_via_raw_queue_is_rejected_not_fatal(
        self, micro_weights
    ):
        """Admission re-checks capacity when the queue bypasses submit()."""
        queue = RequestQueue()
        queue.submit(Request(request_id=0, prompt_ids=(1, 2, 3),
                             max_new_tokens=50))
        queue.submit(Request(request_id=1, prompt_ids=(4, 5),
                             max_new_tokens=3))
        engine = build_batched_engine(
            micro_weights, max_batch_size=2, max_seq_len=8
        )
        scheduler = ContinuousBatchingScheduler(engine, queue=queue)
        report = scheduler.run()
        by_id = {c.request_id: c for c in report.completions}
        assert not by_id[0].ok and "KV positions" in by_id[0].error
        assert by_id[0].generated_ids == []
        assert by_id[1].ok and by_id[1].n_generated == 3
        assert engine.n_free_slots == engine.max_batch_size

    def test_run_succeeds_when_draining_on_the_last_allowed_step(
        self, micro_weights
    ):
        engine = build_batched_engine(micro_weights, max_batch_size=1)
        scheduler = ContinuousBatchingScheduler(engine)
        scheduler.submit(Request(request_id=0, prompt_ids=(1, 2),
                                 max_new_tokens=4))
        # Four tokens need exactly 3 ticks: the admission tick yields two
        # (one sampled from prefill logits, one decoded), then one per tick.
        report = scheduler.run(max_steps=3)
        assert report.completions[0].n_generated == 4
        scheduler2 = ContinuousBatchingScheduler(
            build_batched_engine(micro_weights, max_batch_size=1)
        )
        scheduler2.submit(Request(request_id=0, prompt_ids=(1, 2),
                                  max_new_tokens=5))
        with pytest.raises(RuntimeError, match="did not drain"):
            scheduler2.run(max_steps=3)

    def test_queue_is_fifo(self):
        queue = RequestQueue()
        for request in make_requests():
            queue.submit(request)
        assert len(queue) == len(PROMPTS)
        assert [queue.pop().request_id for _ in range(len(PROMPTS))] == \
            list(range(len(PROMPTS)))
        with pytest.raises(IndexError):
            queue.pop()


class TestServingMetrics:
    def test_measurements_and_sweep_table(self, micro_weights):
        requests = make_requests(4)
        baseline = measure_sequential_serving(micro_weights, requests)
        point = measure_batched_serving(micro_weights, requests, 3)
        assert baseline.tokens_generated == point.tokens_generated
        assert point.mean_batch_occupancy > 1.0
        assert point.intersection_skip <= point.sequence_skip + 1e-9
        table = format_serving_sweep(baseline, [point], [0.5])
        assert "speedup" in table and "sequential" in table
        assert "50.0%" in table

"""Tests for the batched sparse-decode serving subsystem."""

import numpy as np
import pytest

from repro.core.engine import (
    SparseInferSettings,
    build_batched_engine,
    build_engine,
)
from repro.core.predictor import SparseInferPredictor
from repro.core.signpack import pack_signs, xor_popcount
from repro.eval.latency import (
    measure_batched_serving,
    measure_sequential_serving,
)
from repro.eval.reporting import format_serving_sweep, format_tail_latency
from repro.model.kvcache import BatchedKVCache
from repro.serving import (
    BatchedEngine,
    ContinuousBatchingScheduler,
    EmptyQueueError,
    PrefixIndex,
    Request,
    RequestQueue,
)

PROMPTS = [[1, 4, 2], [3, 5], [6, 7, 8, 9], [2, 2, 1], [10, 3], [4, 4, 4]]


def make_requests(max_new_tokens=6, prompts=PROMPTS):
    return [
        Request(request_id=i, prompt_ids=tuple(p), max_new_tokens=max_new_tokens)
        for i, p in enumerate(prompts)
    ]


def reference_generations(weights, prompts, n_tokens, settings=None):
    engine = build_engine(weights, settings)
    return [
        engine.generate(p, max_new_tokens=n_tokens).generated_ids
        for p in prompts
    ]


class TestBatchPrediction:
    def test_intersection_is_per_sequence_and(self, micro_weights, rng):
        predictor = SparseInferPredictor.from_gate_weights(
            micro_weights.gate_matrices()
        )
        xs = rng.standard_normal((5, micro_weights.config.d_model)).astype(
            np.float32
        )
        pred = predictor.predict_intersection(0, xs)
        per_seq = np.stack(
            [predictor.predict(0, xs[i]).skip for i in range(5)]
        )
        np.testing.assert_array_equal(pred.skip, per_seq)
        np.testing.assert_array_equal(
            pred.intersection_skip, np.logical_and.reduce(per_seq, axis=0)
        )

    def test_batched_xor_popcount_matches_loop(self, rng):
        rows = rng.standard_normal((17, 70)).astype(np.float32)
        xs = rng.standard_normal((4, 70)).astype(np.float32)
        packed_rows = pack_signs(rows)
        packed_xs = pack_signs(xs)
        batched = xor_popcount(packed_rows, packed_xs)
        assert batched.shape == (4, 17)
        for i in range(4):
            np.testing.assert_array_equal(
                batched[i], xor_popcount(packed_rows, packed_xs[i])
            )

    def test_batch_of_one_matches_single(self, micro_weights, rng):
        predictor = SparseInferPredictor.from_gate_weights(
            micro_weights.gate_matrices()
        )
        x = rng.standard_normal(micro_weights.config.d_model).astype(np.float32)
        single = predictor.predict(1, x)
        batched = predictor.predict_intersection(1, x[None, :])
        np.testing.assert_array_equal(batched.skip[0], single.skip)
        np.testing.assert_array_equal(batched.n_neg[0], single.n_neg)
        np.testing.assert_array_equal(batched.intersection_skip, single.skip)


class TestBatchedKVCache:
    def test_slots_are_recycled(self, micro_config):
        cache = BatchedKVCache(micro_config, n_slots=2, max_seq_len=8)
        a = cache.allocate()
        b = cache.allocate()
        assert cache.n_free == 0
        with pytest.raises(RuntimeError):
            cache.allocate()
        a.append(0, np.ones(micro_config.d_model),
                 np.ones(micro_config.d_model), 0)
        a.advance()
        assert a.length == 1
        cache.release(a)
        assert cache.n_free == 1
        c = cache.allocate()
        assert c.length == 0           # reset on reuse
        with pytest.raises(ValueError):
            cache.release(b) or cache.release(b)

    def test_slot_views_are_independent(self, micro_config):
        cache = BatchedKVCache(micro_config, n_slots=2, max_seq_len=4)
        a, b = cache.allocate(), cache.allocate()
        a.append(0, np.full(micro_config.d_model, 2.0),
                 np.full(micro_config.d_model, 3.0), 0)
        keys_b, _ = b.view(0, 1)
        assert not keys_b.any()
        keys_a, values_a = a.view(0, 1)
        assert (keys_a == 2.0).all() and (values_a == 3.0).all()


class TestBatchedEngineEquivalence:
    def test_batch1_bit_identical_logits(self, micro_weights):
        sequential = build_engine(micro_weights)
        sequential.reset()
        ref_logits = sequential.prefill(PROMPTS[0])

        engine = build_batched_engine(micro_weights, max_batch_size=1)
        slot = engine.allocate_slot()
        logits = engine.prefill(slot, PROMPTS[0])
        np.testing.assert_array_equal(logits, ref_logits)

        token = int(np.argmax(ref_logits))
        step = engine.decode_step([slot], [token])
        ref_step = sequential.forward_token(token, sequential.cache.length)
        np.testing.assert_array_equal(step[0], ref_step)

    def test_batch1_serving_token_identical(self, micro_weights):
        ref = reference_generations(micro_weights, PROMPTS, 6)
        engine = build_batched_engine(micro_weights, max_batch_size=1)
        scheduler = ContinuousBatchingScheduler(engine)
        for request in make_requests():
            scheduler.submit(request)
        report = scheduler.run()
        got = {c.request_id: c.generated_ids for c in report.completions}
        assert got == {i: ref[i] for i in range(len(PROMPTS))}

    @pytest.mark.parametrize("batch_size", [2, 3, 4])
    def test_batched_serving_token_identical(self, micro_weights, batch_size):
        ref = reference_generations(micro_weights, PROMPTS, 6)
        engine = build_batched_engine(
            micro_weights, max_batch_size=batch_size
        )
        scheduler = ContinuousBatchingScheduler(engine)
        for request in make_requests():
            scheduler.submit(request)
        report = scheduler.run()
        got = {c.request_id: c.generated_ids for c in report.completions}
        assert got == {i: ref[i] for i in range(len(PROMPTS))}

    def test_settings_flow_through(self, micro_weights):
        settings = SparseInferSettings(alpha=1.02, alpha_early=1.03,
                                       n_early_layers=1)
        ref = reference_generations(micro_weights, PROMPTS[:3], 5, settings)
        engine = build_batched_engine(
            micro_weights, settings, max_batch_size=2
        )
        scheduler = ContinuousBatchingScheduler(engine)
        for request in make_requests(5, PROMPTS[:3]):
            scheduler.submit(request)
        got = {c.request_id: c.generated_ids
               for c in scheduler.run().completions}
        assert got == {i: ref[i] for i in range(3)}

    def test_gather_and_dense_paths_agree(self, micro_weights, rng):
        """The dense fallback is an execution detail, not a semantics change."""
        engine_a = BatchedEngine(micro_weights, max_batch_size=4)
        engine_b = BatchedEngine(micro_weights, max_batch_size=4)
        engine_a.sparse.gather_threshold = 0.0   # always gather... (never dense)
        engine_b.sparse.gather_threshold = 1.1   # always dense fallback
        xs = rng.standard_normal((4, micro_weights.config.d_model)).astype(
            np.float32
        )
        out_a = engine_a.sparse.run_batch(0, xs)
        out_b = engine_b.sparse.run_batch(0, xs)
        np.testing.assert_allclose(out_a, out_b, atol=1e-5)


class TestScheduler:
    def test_drains_mixed_length_queue_without_starvation(self, micro_weights):
        prompts = PROMPTS * 2                          # 12 requests, 2 slots
        lengths = [2 + (i % 5) for i in range(len(prompts))]
        requests = [
            Request(request_id=i, prompt_ids=tuple(p), max_new_tokens=n)
            for i, (p, n) in enumerate(zip(prompts, lengths))
        ]
        engine = build_batched_engine(micro_weights, max_batch_size=2)
        scheduler = ContinuousBatchingScheduler(engine)
        for request in requests:
            scheduler.submit(request)
        report = scheduler.run()
        assert scheduler.idle
        assert len(report.completions) == len(requests)
        by_id = {c.request_id: c for c in report.completions}
        for i, n in enumerate(lengths):
            assert by_id[i].n_generated == n
        # FIFO admission: request i never admitted after request j > i.
        admitted = [by_id[i].admitted_step for i in range(len(requests))]
        assert admitted == sorted(admitted)
        # All slots returned to the pool.
        assert engine.n_free_slots == engine.max_batch_size

    def test_requests_join_leaving_batch_mid_flight(self, micro_weights):
        requests = [
            Request(request_id=0, prompt_ids=(1, 2), max_new_tokens=10),
            Request(request_id=1, prompt_ids=(3, 4), max_new_tokens=2),
            Request(request_id=2, prompt_ids=(5, 6), max_new_tokens=2),
        ]
        engine = build_batched_engine(micro_weights, max_batch_size=2)
        scheduler = ContinuousBatchingScheduler(engine)
        for request in requests:
            scheduler.submit(request)
        report = scheduler.run()
        by_id = {c.request_id: c for c in report.completions}
        # Request 2 was admitted as soon as request 1 retired, while
        # request 0 was still decoding (continuous batching).
        assert by_id[2].admitted_step <= by_id[0].finished_step
        assert by_id[2].admitted_step > by_id[1].admitted_step

    def test_numpy_array_prompt_prefills(self, micro_weights):
        """Regression: ``if not prompt_ids:`` choked on numpy arrays."""
        engine = build_batched_engine(micro_weights, max_batch_size=1)
        slot = engine.allocate_slot()
        logits = engine.prefill(slot, np.array(PROMPTS[0]))
        ref = build_engine(micro_weights)
        ref.reset()
        np.testing.assert_array_equal(logits, ref.prefill(PROMPTS[0]))
        engine.release_slot(slot)
        with pytest.raises(ValueError, match="at least one token"):
            slot2 = engine.allocate_slot()
            engine.prefill(slot2, np.array([], dtype=np.int64))

    def test_numpy_array_prompt_single_engine(self, micro_weights):
        """Same regression on :meth:`InferenceModel.prefill`."""
        engine = build_engine(micro_weights)
        engine.reset()
        got = engine.prefill(np.array(PROMPTS[0]))
        engine.reset()
        np.testing.assert_array_equal(got, engine.prefill(PROMPTS[0]))
        with pytest.raises(ValueError, match="at least one token"):
            engine.prefill(np.array([], dtype=np.int64))

    def test_zero_token_request_skips_slot_and_prefill(self, micro_weights):
        """max_new_tokens=0 must not burn a prefill or a KV slot."""
        engine = build_batched_engine(micro_weights, max_batch_size=1)
        scheduler = ContinuousBatchingScheduler(engine)
        for i in range(3):
            scheduler.submit(Request(request_id=i, prompt_ids=(1, 2, 3),
                                     max_new_tokens=0))
        report = scheduler.run()
        assert report.prefill_tokens == 0
        assert report.prefill_seconds == 0.0
        assert report.decode_steps == 0
        assert engine.n_free_slots == 1
        assert all(c.ok and c.generated_ids == [] for c in report.completions)
        # All three complete on the first tick: none waits for the one slot.
        assert all(c.finished_step == c.admitted_step
                   for c in report.completions)

    def test_zero_token_completes_even_when_batch_is_full(
        self, micro_weights
    ):
        """A zero-token request needs no decode seat, so a full batch
        must not delay it."""
        engine = build_batched_engine(micro_weights, max_batch_size=1)
        scheduler = ContinuousBatchingScheduler(engine)
        scheduler.submit(Request(request_id=0, prompt_ids=(1, 2),
                                 max_new_tokens=20))
        scheduler.submit(Request(request_id=1, prompt_ids=(3, 4),
                                 max_new_tokens=0))
        report = scheduler.run()
        by_id = {c.request_id: c for c in report.completions}
        assert by_id[1].ok and by_id[1].generated_ids == []
        # It finished on the first tick it was considered, long before
        # the decoding request released the only slot.
        assert by_id[1].finished_step < by_id[0].finished_step

    def test_zero_token_with_oversize_prompt_succeeds(self, micro_weights):
        """No prefill means no KV demand: size limits don't apply."""
        engine = build_batched_engine(micro_weights, max_batch_size=1,
                                      max_seq_len=4)
        scheduler = ContinuousBatchingScheduler(engine)
        scheduler.submit(Request(request_id=0,
                                 prompt_ids=tuple(range(1, 11)),
                                 max_new_tokens=0))
        report = scheduler.run()
        assert report.completions[0].ok
        assert report.completions[0].generated_ids == []
        assert report.prefill_tokens == 0

    def test_zero_token_requests_dont_block_real_ones(self, micro_weights):
        engine = build_batched_engine(micro_weights, max_batch_size=1)
        scheduler = ContinuousBatchingScheduler(engine)
        scheduler.submit(Request(request_id=0, prompt_ids=(1, 2),
                                 max_new_tokens=0))
        scheduler.submit(Request(request_id=1, prompt_ids=(1, 2),
                                 max_new_tokens=3))
        report = scheduler.run()
        by_id = {c.request_id: c for c in report.completions}
        assert by_id[0].generated_ids == []
        assert by_id[1].n_generated == 3
        assert report.prefill_tokens == 2      # only request 1 prefilled

    def test_stop_ids_and_zero_budget(self, micro_weights):
        engine = build_batched_engine(micro_weights, max_batch_size=2)
        scheduler = ContinuousBatchingScheduler(engine)
        ref = build_engine(micro_weights)
        first = ref.generate([1, 2], 1).generated_ids[0]
        scheduler.submit(Request(request_id=0, prompt_ids=(1, 2),
                                 max_new_tokens=0))
        scheduler.submit(Request(request_id=1, prompt_ids=(1, 2),
                                 max_new_tokens=5,
                                 stop_ids=frozenset({first})))
        report = scheduler.run()
        by_id = {c.request_id: c for c in report.completions}
        assert by_id[0].generated_ids == []
        assert by_id[1].generated_ids == []     # first token hits stop set

    def test_oversized_request_rejected_at_submit(self, micro_weights):
        """A request that can never fit a slot must not crash a batch."""
        engine = build_batched_engine(
            micro_weights, max_batch_size=2, max_seq_len=8
        )
        scheduler = ContinuousBatchingScheduler(engine)
        with pytest.raises(ValueError, match="KV positions"):
            scheduler.submit(
                Request(request_id=0, prompt_ids=(1, 2, 3),
                        max_new_tokens=20)
            )
        # The largest request that does fit drains cleanly: it feeds
        # prompt (3) + max_new_tokens - 1 (5) = 8 positions.
        scheduler.submit(
            Request(request_id=1, prompt_ids=(1, 2, 3), max_new_tokens=6)
        )
        report = scheduler.run()
        assert report.completions[0].n_generated == 6
        assert report.completions[0].ok

    def test_oversized_request_via_raw_queue_is_rejected_not_fatal(
        self, micro_weights
    ):
        """Admission re-checks capacity when the queue bypasses submit()."""
        queue = RequestQueue()
        queue.submit(Request(request_id=0, prompt_ids=(1, 2, 3),
                             max_new_tokens=50))
        queue.submit(Request(request_id=1, prompt_ids=(4, 5),
                             max_new_tokens=3))
        engine = build_batched_engine(
            micro_weights, max_batch_size=2, max_seq_len=8
        )
        scheduler = ContinuousBatchingScheduler(engine, queue=queue)
        report = scheduler.run()
        by_id = {c.request_id: c for c in report.completions}
        assert not by_id[0].ok and "KV positions" in by_id[0].error
        assert by_id[0].generated_ids == []
        assert by_id[1].ok and by_id[1].n_generated == 3
        assert engine.n_free_slots == engine.max_batch_size

    def test_run_succeeds_when_draining_on_the_last_allowed_step(
        self, micro_weights
    ):
        engine = build_batched_engine(micro_weights, max_batch_size=1)
        scheduler = ContinuousBatchingScheduler(engine)
        scheduler.submit(Request(request_id=0, prompt_ids=(1, 2),
                                 max_new_tokens=4))
        # Four tokens need exactly 3 ticks: the admission tick yields two
        # (one sampled from prefill logits, one decoded), then one per tick.
        report = scheduler.run(max_steps=3)
        assert report.completions[0].n_generated == 4
        scheduler2 = ContinuousBatchingScheduler(
            build_batched_engine(micro_weights, max_batch_size=1)
        )
        scheduler2.submit(Request(request_id=0, prompt_ids=(1, 2),
                                  max_new_tokens=5))
        with pytest.raises(RuntimeError, match="did not drain"):
            scheduler2.run(max_steps=3)

    def test_queue_is_fifo(self):
        queue = RequestQueue()
        for request in make_requests():
            queue.submit(request)
        assert len(queue) == len(PROMPTS)
        assert [queue.pop().request_id for _ in range(len(PROMPTS))] == \
            list(range(len(PROMPTS)))
        with pytest.raises(IndexError):
            queue.pop()


class TestEmptyQueueError:
    def test_typed_error_on_empty_access(self):
        queue = RequestQueue()
        with pytest.raises(EmptyQueueError):
            queue.pop()
        with pytest.raises(EmptyQueueError):
            queue.peek()
        with pytest.raises(EmptyQueueError):
            queue.pop_at(0)
        # Subclass: existing except-IndexError callers keep working.
        assert issubclass(EmptyQueueError, IndexError)

    def test_window_and_pop_at(self):
        queue = RequestQueue()
        for request in make_requests():
            queue.submit(request)
        assert [r.request_id for r in queue.window(3)] == [0, 1, 2]
        assert [r.request_id for r in queue.window(100)] == \
            list(range(len(PROMPTS)))
        with pytest.raises(ValueError):
            queue.window(0)
        assert queue.pop_at(2).request_id == 2
        assert queue.pop_at(0).request_id == 0
        assert [r.request_id for r in queue.window(10)] == [1, 3, 4, 5]
        # Out-of-range / negative indices on a non-empty queue are caller
        # bugs: plain IndexError, never the EmptyQueueError drain loops
        # treat as benign.
        with pytest.raises(IndexError) as exc:
            queue.pop_at(4)
        assert not isinstance(exc.value, EmptyQueueError)
        with pytest.raises(IndexError) as exc:
            queue.pop_at(-1)
        assert not isinstance(exc.value, EmptyQueueError)
        assert len(queue) == 4                 # nothing silently popped

    def test_bookkeeping_bug_is_not_swallowed_as_empty(self, micro_weights):
        """The drain loop catches EmptyQueueError only: a bare
        IndexError from a buggy queue must crash, not read as idle."""
        class BuggyQueue(RequestQueue):
            def peek(self):
                raise IndexError("admission bookkeeping bug")

            def __bool__(self):
                return True

        engine = build_batched_engine(micro_weights, max_batch_size=1)
        scheduler = ContinuousBatchingScheduler(engine, queue=BuggyQueue())
        with pytest.raises(IndexError, match="bookkeeping bug"):
            scheduler.step()

    def test_empty_queue_reads_as_idle(self, micro_weights):
        engine = build_batched_engine(micro_weights, max_batch_size=1)
        scheduler = ContinuousBatchingScheduler(engine)
        assert scheduler.step() == []          # no crash, nothing admitted
        assert scheduler.idle


class TestPrefixIndex:
    def test_insert_lookup_longest_and_cap(self):
        index = PrefixIndex(page_size=4)
        index.insert(0, (1, 2, 3, 4, 5, 6, 7, 8))
        index.insert(1, (1, 2, 3, 4, 9, 9, 9, 9))
        # Longest sharer wins; extension runs past the aligned boundary.
        slot, shared = index.lookup((1, 2, 3, 4, 5, 6, 7, 8, 7))
        assert (slot, shared) == (0, 8)
        # The last prompt token is never shared (logits must come from
        # a real prefill).
        slot, shared = index.lookup((1, 2, 3, 4, 5, 6, 7, 8))
        assert (slot, shared) == (0, 7)
        slot, shared = index.lookup((1, 2, 3, 4, 9, 9, 2))
        assert (slot, shared) == (1, 6)

    def test_sub_page_prompts_never_match(self):
        index = PrefixIndex(page_size=8)
        index.insert(0, (1, 2, 3, 4, 5, 6, 7, 8))
        assert index.lookup((1, 2, 3, 4)) == (None, 0)
        index_small = PrefixIndex(page_size=8)
        index_small.insert(1, (1, 2, 3))       # prompt shorter than a page
        assert index_small.lookup((1, 2, 3, 4, 5, 6, 7, 8, 9)) == (None, 0)

    def test_remove_unregisters_all_buckets(self):
        index = PrefixIndex(page_size=2)
        index.insert(0, (1, 2, 3, 4, 5, 6))
        index.remove(0)
        assert index.lookup((1, 2, 3, 4, 5, 6, 7)) == (None, 0)
        assert len(index) == 0
        assert index._buckets == {}
        index.remove(0)                        # idempotent
        index.insert(0, (1, 2, 3, 4))
        with pytest.raises(ValueError, match="already indexed"):
            index.insert(0, (9, 9))


def shared_prefix_requests(base, n, prefix_len, suffix_len=1,
                           max_new_tokens=4, start_id=0):
    """Requests whose prompts all share ``base[:prefix_len]``."""
    out = []
    for i in range(n):
        suffix = tuple(2 + ((i + j) % 7) for j in range(suffix_len))
        out.append(Request(request_id=start_id + i,
                           prompt_ids=tuple(base[:prefix_len]) + suffix,
                           max_new_tokens=max_new_tokens))
    return out


class TestCorrelationAwareScheduler:
    BASE = (1, 4, 2, 7, 3, 5, 6, 2, 9, 1, 3, 8)

    def test_sharing_keeps_tokens_identical(self, micro_weights):
        requests = shared_prefix_requests(self.BASE, 5, 8, suffix_len=2,
                                          max_new_tokens=5)
        outs = []
        for sharing, window in ((False, 0), (True, 4)):
            engine = build_batched_engine(
                micro_weights, max_batch_size=3, paged=True, page_size=4,
                prefix_sharing=sharing,
            )
            scheduler = ContinuousBatchingScheduler(
                engine, reorder_window=window
            )
            for request in requests:
                scheduler.submit(request)
            report = scheduler.run()
            outs.append((report,
                         {c.request_id: c.generated_ids
                          for c in report.completions}))
        (plain_report, plain), (shared_report, shared) = outs
        assert plain == shared
        assert shared_report.forked_admissions > 0
        assert shared_report.prefill_tokens_saved > 0
        # Saved + run prefill covers exactly the same prompt positions.
        assert shared_report.prefill_tokens + \
            shared_report.prefill_tokens_saved == plain_report.prefill_tokens
        assert shared_report.peak_shared_pages > 0
        assert shared_report.intersection_skip >= 0.0
        assert shared_report.expected_uncorrelated_skip <= \
            shared_report.mean_sequence_skip + 1e-9

    def test_reorder_window_never_starves_head(self, micro_weights):
        """The FIFO head is bypassed at most ``window - 1`` times."""
        window = 3
        donor = Request(request_id=0, prompt_ids=self.BASE[:8],
                        max_new_tokens=9)                 # 4 pages of 4
        head = Request(request_id=1,
                       prompt_ids=(9,) * 12, max_new_tokens=13)  # 6 pages
        sharers = shared_prefix_requests(self.BASE, 5, 8, max_new_tokens=8,
                                         start_id=2)      # forks: 2 pages
        engine = build_batched_engine(
            micro_weights, max_batch_size=8, max_seq_len=32, paged=True,
            page_size=4, n_pages=8, prefix_sharing=True,
        )
        scheduler = ContinuousBatchingScheduler(engine,
                                                reorder_window=window)
        for request in [donor, head] + sharers:
            scheduler.submit(request)
        report = scheduler.run()
        by_id = {c.request_id: c for c in report.completions}
        assert all(by_id[i].ok for i in range(len(by_id)))
        # The head (request 1) never fits while the donor runs, so
        # sharers may jump it -- but at most window - 1 = 2 of them.
        jumped = [i for i in range(2, 7)
                  if by_id[i].admitted_step < by_id[1].admitted_step]
        assert 1 <= len(jumped) <= window - 1
        assert report.forked_admissions >= 2
        # Every sharer admitted after the bound waited behind the head.
        assert max(by_id[i].admitted_step for i in range(2, 7)) > \
            by_id[1].admitted_step

    def test_strict_fifo_when_window_disabled(self, micro_weights):
        requests = shared_prefix_requests(self.BASE, 6, 8, max_new_tokens=6)
        engine = build_batched_engine(
            micro_weights, max_batch_size=2, paged=True, page_size=4,
            prefix_sharing=True,
        )
        scheduler = ContinuousBatchingScheduler(engine)   # window = 0
        for request in requests:
            scheduler.submit(request)
        report = scheduler.run()
        by_id = {c.request_id: c for c in report.completions}
        admitted = [by_id[i].admitted_step for i in range(len(requests))]
        assert admitted == sorted(admitted)
        # FIFO still forks off resident donors when the head shares.
        assert report.forked_admissions > 0

    def test_reservations_never_overcommit_with_forks(self, micro_weights):
        """After every tick: reserved <= free pages, nothing negative."""
        requests = shared_prefix_requests(self.BASE, 8, 8, suffix_len=3,
                                          max_new_tokens=7)
        engine = build_batched_engine(
            micro_weights, max_batch_size=4, max_seq_len=32, paged=True,
            page_size=4, n_pages=10, prefix_sharing=True,
        )
        scheduler = ContinuousBatchingScheduler(engine, reorder_window=4)
        for request in requests:
            scheduler.submit(request)
        pool = engine.cache.pool
        steps = 0
        while not scheduler.idle:
            scheduler.step()
            steps += 1
            assert steps < 500
            assert 0 <= pool._reserved <= pool.n_free_pages
            assert pool.n_available_pages >= 0
            assert pool.n_pages_in_use <= pool.n_pages
        report = scheduler.report
        assert len(report.completions) == len(requests)
        assert pool._reserved == 0 and pool.n_pages_in_use == 0
        assert engine.n_free_slots == 4

    def test_released_donor_is_no_longer_matched(self, micro_weights):
        engine = build_batched_engine(
            micro_weights, max_batch_size=2, paged=True, page_size=4,
            prefix_sharing=True,
        )
        slot = engine.allocate_slot()
        engine.prefill(slot, self.BASE[:8])
        engine.register_prefix(slot, self.BASE[:8])
        donor, shared = engine.find_prefix_donor(self.BASE[:8] + (5,))
        assert donor is slot and shared == 8
        engine.release_slot(slot)
        assert engine.find_prefix_donor(self.BASE[:8] + (5,)) == (None, 0)

    def test_reorder_window_validation(self, micro_weights):
        engine = build_batched_engine(micro_weights, max_batch_size=1)
        with pytest.raises(ValueError, match="reorder_window"):
            ContinuousBatchingScheduler(engine, reorder_window=-1)

    def test_common_prefix_len(self):
        request = Request(request_id=0, prompt_ids=(1, 2, 3, 4),
                          max_new_tokens=1)
        assert request.common_prefix_len((1, 2, 3, 4, 5)) == 4
        assert request.common_prefix_len((1, 2, 9)) == 2
        assert request.common_prefix_len(np.array([1, 2, 3, 4])) == 4
        assert request.common_prefix_len(()) == 0


class TestServingMetrics:
    def test_measurements_and_sweep_table(self, micro_weights):
        requests = make_requests(4)
        baseline = measure_sequential_serving(micro_weights, requests)
        point = measure_batched_serving(micro_weights, requests, 3)
        assert baseline.tokens_generated == point.tokens_generated
        assert point.mean_batch_occupancy > 1.0
        assert point.intersection_skip <= point.sequence_skip + 1e-9
        table = format_serving_sweep(baseline, [point], [0.5])
        assert "speedup" in table and "sequential" in table
        assert "50.0%" in table


class TestServeReportTelemetryContract:
    """Every wall-clock and per-tick ``*_sum`` counter in ServeReport is
    exercised here, so the telemetry stays load-bearing (the
    ``telemetry-docs`` rule in ``repro.analysis`` requires each field to
    be referenced by reporting code or a test)."""

    def test_sum_counters_and_wall_clock_split(self, micro_weights):
        engine = build_batched_engine(
            micro_weights, max_batch_size=2, paged=True, page_size=4,
            n_pages=12, prefix_sharing=True, cache_pages=4,
            batched_attention=True,
        )
        scheduler = ContinuousBatchingScheduler(
            engine, step_budget=2, preemption=True,
        )
        # Request 1 arrives once request 0's chunked prefill has
        # finished, so it admits as a prefix fork and the shared pages
        # are counted on the decode ticks both are resident.  It
        # retires quickly, parking its prefix in the cache while
        # request 0 keeps decoding.  The late VIP arrives page-starved
        # and outranks the resident, forcing a preemption and a
        # resume-with-replay.
        shared = (1, 2, 3, 4, 5)
        scheduler.submit(Request(request_id=0, prompt_ids=shared,
                                 max_new_tokens=20, priority=0))
        ticks = 0
        while not scheduler.idle:
            scheduler.step()
            ticks += 1
            assert ticks < 500
            if ticks == 4:
                scheduler.submit(Request(
                    request_id=1, prompt_ids=shared + (6,),
                    max_new_tokens=3, priority=0,
                ))
            if ticks == 12:
                scheduler.submit(Request(
                    request_id=2,
                    prompt_ids=(6, 7, 8, 9, 10, 11, 12, 13),
                    max_new_tokens=20, priority=5,
                ))
        report = scheduler.report
        assert len(report.completions) == 3
        # Wall-clock split: every phase accumulated real time and the
        # derived rates agree with the parts.
        assert report.decode_seconds > 0.0
        assert report.preemptions >= 1 and report.replayed_tokens >= 1
        assert report.replay_seconds > 0.0
        assert report.wall_seconds == pytest.approx(
            report.prefill_seconds + report.decode_seconds
            + report.replay_seconds + report.sampler_seconds
        )
        # Sampling split: a greedy workload emits only greedy tokens,
        # but the sampler still runs (and is timed) every tick.
        assert report.greedy_tokens == report.tokens_generated
        assert report.sampled_tokens == 0
        assert report.sampler_seconds > 0.0
        assert report.decode_tokens_per_second == pytest.approx(
            report.tokens_generated / report.decode_seconds
        )
        # Per-tick page sums feed the documented means.
        assert report.shared_pages_sum > 0
        assert report.mean_shared_pages == pytest.approx(
            report.shared_pages_sum / report.decode_steps
        )
        assert report.cached_pages_sum > 0
        assert report.mean_cached_pages == pytest.approx(
            report.cached_pages_sum / report.decode_steps
        )
        # Batched attention ran, and its bucket counter is consistent
        # with the derived per-step mean (at least one bucket per step).
        assert report.attn_batched_steps > 0
        assert report.attn_buckets_sum >= report.attn_batched_steps
        assert report.mean_attn_buckets == pytest.approx(
            report.attn_buckets_sum / report.attn_batched_steps
        )


class TestBudgetedScheduling:
    """step_budget / preemption knobs and their telemetry (PR 6)."""

    def test_step_budget_validation(self, micro_weights):
        engine = build_batched_engine(micro_weights, max_batch_size=1)
        with pytest.raises(ValueError, match="step_budget"):
            ContinuousBatchingScheduler(engine, step_budget=-1)

    def test_skip_telemetry_fresh_on_every_return_path(self, micro_weights):
        """Regression: ticks with no decode batch returned early without
        ``_finalise_skip_telemetry``, leaving the report's skip fields
        stale.  A resumed sequence's replay runs the sparse executor on
        restoration-only ticks, so staleness is observable: after every
        single tick the report must agree with the live engine stats.
        """
        engine = build_batched_engine(
            micro_weights, max_batch_size=2, paged=True, page_size=4,
            n_pages=10, prefix_sharing=True, cache_pages=4,
        )
        scheduler = ContinuousBatchingScheduler(
            engine, step_budget=1, preemption=True,
        )
        scheduler.submit(Request(request_id=0, prompt_ids=(1, 2, 3, 4, 5),
                                 max_new_tokens=20, priority=0))
        stats = engine.sparse.stats
        ticks = 0
        submitted_vip = False
        while not scheduler.idle:
            scheduler.step()
            ticks += 1
            assert ticks < 500
            assert scheduler.report.intersection_skip == \
                stats.intersection_skip_fraction
            assert scheduler.report.mean_sequence_skip == \
                stats.mean_sequence_skip_fraction
            if ticks == 10 and not submitted_vip:
                # Arrives page-starved and outranks the resident.
                scheduler.submit(Request(
                    request_id=1, prompt_ids=(6, 7, 8, 9, 10, 11, 12, 13),
                    max_new_tokens=20, priority=5,
                ))
                submitted_vip = True
        report = scheduler.report
        assert report.preemptions >= 1
        assert report.replayed_tokens >= 1
        assert len(report.completions) == 2

    def test_run_max_steps_overflow_then_resumes(self, micro_weights):
        engine = build_batched_engine(micro_weights, max_batch_size=1)
        scheduler = ContinuousBatchingScheduler(engine)
        for request in make_requests(6)[:3]:
            scheduler.submit(request)
        with pytest.raises(RuntimeError, match="did not drain"):
            scheduler.run(max_steps=2)
        # The overflow is a deadline, not corruption: the same scheduler
        # keeps draining and every request still completes exactly once.
        report = scheduler.run()
        assert scheduler.idle
        assert len(report.completions) == 3
        assert sorted(c.request_id for c in report.completions) == [0, 1, 2]

    def test_run_max_steps_exact_finish_does_not_raise(self, micro_weights):
        engine = build_batched_engine(micro_weights, max_batch_size=1)
        scheduler = ContinuousBatchingScheduler(engine)
        # max_new=2 drains in exactly one tick: admit + first token,
        # then the tick's decode emits the second.
        scheduler.submit(Request(request_id=0, prompt_ids=(1, 2),
                                 max_new_tokens=2))
        report = scheduler.run(max_steps=1)
        assert scheduler.idle
        assert report.completions[0].n_generated == 2

    def test_mid_run_submit_keeps_report_consistent(self, micro_weights):
        """Interleaving submit() with step() mid-run keeps every
        ServeReport/Completion cross-sum consistent."""
        engine = build_batched_engine(
            micro_weights, max_batch_size=2, paged=True, page_size=4,
            n_pages=40,
        )
        scheduler = ContinuousBatchingScheduler(engine, step_budget=3)
        early = make_requests(4)[:2]
        for request in early:
            scheduler.submit(request)
        for _ in range(3):
            scheduler.step()
        late = [
            Request(request_id=10 + i, prompt_ids=tuple(p),
                    max_new_tokens=3)
            for i, p in enumerate(PROMPTS[2:5])
        ]
        for request in late:
            scheduler.submit(request)
        report = scheduler.run()
        assert len(report.completions) == len(early) + len(late)
        assert report.tokens_generated == sum(
            c.n_generated for c in report.completions
        )
        # Every decode participation is counted exactly once on each side.
        assert report.occupancy_sum == sum(
            c.decode_steps for c in report.completions
        )
        for c in report.completions:
            assert c.ok and c.n_generated > 0
            assert c.ttft_seconds is not None and c.ttft_seconds >= 0.0
            assert len(c.itl_seconds) == c.n_generated - 1
            assert all(gap >= 0.0 for gap in c.itl_seconds)
            assert c.admitted_step <= c.first_token_step <= c.finished_step
        assert report.ttft_seconds_percentile(50) > 0.0
        assert report.itl_seconds_percentile(50) <= \
            report.itl_seconds_percentile(99) <= report.max_itl_seconds

    def test_measure_batched_serving_budget_knobs(self, micro_weights):
        requests = make_requests(3)
        point = measure_batched_serving(
            micro_weights, requests, 2, paged=True, page_size=4,
            step_budget=4, preemption=True,
        )
        assert "+budget4" in point.label and "+preempt" in point.label
        assert point.step_budget == 4
        assert point.peak_tick_prefill_tokens <= 4
        assert point.piggybacked_tokens == sum(
            len(r.prompt_ids) for r in requests
        )
        assert point.max_itl_seconds >= point.itl_p99_seconds >= 0.0
        table = format_tail_latency([point])
        assert "max ITL" in table and point.label in table


def drain_bursty(engine, requests):
    """Drain requests one at a time (non-overlapping lifetimes).

    Each request is fully decoded before the next is submitted, so no
    sequence is ever resident when its successor is admitted -- the
    resident ``PrefixIndex`` can never match, and only the cross-request
    prefix cache can save prefill.  One scheduler accumulates the report
    across bursts.
    """
    scheduler = ContinuousBatchingScheduler(engine)
    for request in requests:
        scheduler.submit(request)
        scheduler.run()
    return scheduler.report


class TestPrefixCache:
    BASE = (1, 4, 2, 7, 3, 5, 6, 2, 9, 1, 3, 8)

    def _engine(self, weights, cache_pages, max_batch_size=2, n_pages=16):
        return build_batched_engine(
            weights, max_batch_size=max_batch_size, max_seq_len=32,
            paged=True, page_size=4, n_pages=n_pages,
            prefix_sharing=True, cache_pages=cache_pages,
        )

    def test_cache_pages_requires_prefix_sharing(self, micro_weights):
        with pytest.raises(ValueError, match="requires prefix_sharing"):
            build_batched_engine(micro_weights, paged=True, cache_pages=4)

    def test_bursty_revive_matches_cold_prefill(self, micro_weights):
        """Non-overlapping same-prefix bursts: the cache (and only the
        cache) saves the shared prefill, and tokens never change."""
        requests = shared_prefix_requests(self.BASE, 5, 8, suffix_len=2,
                                          max_new_tokens=4)
        cold = drain_bursty(self._engine(micro_weights, 0), requests)
        hot = drain_bursty(self._engine(micro_weights, 8), requests)
        assert {c.request_id: c.generated_ids for c in cold.completions} \
            == {c.request_id: c.generated_ids for c in hot.completions}
        # Resident-only matching saves nothing across bursts...
        assert cold.forked_admissions == 0
        assert cold.revived_admissions == 0
        assert cold.prefill_tokens_saved == 0
        # ...the cache revives every burst after the first.
        assert hot.forked_admissions == 0
        assert hot.revived_admissions == len(requests) - 1
        assert hot.revived_tokens == (len(requests) - 1) * 8
        assert hot.prefill_tokens + hot.revived_tokens == cold.prefill_tokens
        assert hot.prefill_cache_fraction > 0.5
        assert hot.peak_cached_pages >= 2
        assert hot.cache_pages == 8 and cold.cache_pages == 0

    def test_revive_then_fork_chain_bit_identical(self, micro_weights):
        """A revived sequence immediately serves as a fork donor; the
        whole chain decodes exactly what cold prefill decodes."""
        seed = shared_prefix_requests(self.BASE, 1, 8, suffix_len=2,
                                      max_new_tokens=4)
        chain = shared_prefix_requests(self.BASE, 2, 8, suffix_len=2,
                                       max_new_tokens=4, start_id=1)
        engine = self._engine(micro_weights, 8)
        scheduler = ContinuousBatchingScheduler(engine)
        scheduler.submit(seed[0])
        scheduler.run()                      # retire -> prefix parked
        for request in chain:
            scheduler.submit(request)
        scheduler.run()                      # revive, then fork the revived
        report = scheduler.report
        assert report.revived_admissions == 1
        assert report.forked_admissions == 1
        ref = build_engine(micro_weights)
        got = {c.request_id: c.generated_ids for c in report.completions}
        for request in seed + chain:
            expect = ref.generate(list(request.prompt_ids),
                                  max_new_tokens=4).generated_ids
            assert got[request.request_id] == expect

    def test_resident_donor_preferred_over_cache(self, micro_weights):
        """Lookup order: a live donor forks even when the cache holds
        the same prefix."""
        requests = shared_prefix_requests(self.BASE, 3, 8, suffix_len=2,
                                          max_new_tokens=6)
        engine = self._engine(micro_weights, 8, max_batch_size=2)
        scheduler = ContinuousBatchingScheduler(engine)
        scheduler.submit(requests[0])
        scheduler.run()                      # parked
        scheduler.submit(requests[1])        # revives the parked prefix
        scheduler.submit(requests[2])        # donor (request 1) is resident
        scheduler.run()
        assert scheduler.report.revived_admissions == 1
        assert scheduler.report.forked_admissions == 1

    def test_eviction_under_pressure_is_counted(self, micro_weights):
        """Cold admissions of a different prefix reclaim cached pages on
        demand and the report counts the evictions."""
        same = shared_prefix_requests(self.BASE, 2, 8, suffix_len=2,
                                      max_new_tokens=4)
        other_base = tuple(9 - b for b in self.BASE)
        other = shared_prefix_requests(other_base, 2, 8, suffix_len=2,
                                       max_new_tokens=4, start_id=2)
        # 4 pages: exactly one request's worst case (10 + 4 - 1 -> 13
        # positions), so any cached pages must be evicted to admit the
        # next cold request.
        engine = self._engine(micro_weights, 8, n_pages=4)
        report = drain_bursty(engine, [same[0], other[0], same[1], other[1]])
        assert report.cache_evictions > 0
        assert report.revived_admissions == 0   # every prefix was evicted
        assert all(c.ok for c in report.completions)

    def test_cached_prefix_never_covers_whole_prompt(self, micro_weights):
        """At least one prompt token is always left to prefill."""
        prompt = self.BASE[:8]                   # exactly 2 pages
        request = Request(request_id=0, prompt_ids=prompt, max_new_tokens=3)
        engine = self._engine(micro_weights, 8)
        report = drain_bursty(engine, [request])
        pages, positions = engine.find_cached_prefix(prompt)
        assert positions == 4                    # 1 page, not 2
        assert len(pages) == 1
        ref = build_engine(micro_weights)
        engine2 = self._engine(micro_weights, 8)
        rep = drain_bursty(engine2, [
            Request(request_id=0, prompt_ids=prompt, max_new_tokens=3),
            Request(request_id=1, prompt_ids=prompt, max_new_tokens=3),
        ])
        expect = ref.generate(list(prompt), max_new_tokens=3).generated_ids
        for completion in rep.completions:
            assert completion.generated_ids == expect
        assert rep.revived_admissions == 1
        assert rep.revived_tokens == 4

    def test_measure_batched_serving_carries_cache_telemetry(
        self, micro_weights
    ):
        requests = shared_prefix_requests(self.BASE, 3, 8, suffix_len=2,
                                          max_new_tokens=3)
        point = measure_batched_serving(
            micro_weights, requests, 2, paged=True, page_size=4,
            n_pages=16, prefix_sharing=True, cache_pages=8,
        )
        assert "+cache8" in point.label
        assert point.revived_admissions >= 0
        assert point.revived_tokens >= 0
        assert point.cache_evictions >= 0

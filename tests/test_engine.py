"""Tests for the SparseInfer engine assembly."""

import numpy as np
import pytest

from repro.core.engine import (
    SparseInferSettings,
    build_engine,
    build_predictor,
    dense_engine,
)
from repro.core.sparse_mlp import SparseInferMLP
from repro.model.mlp import DenseMLP


class TestSettings:
    def test_uniform_schedule(self):
        s = SparseInferSettings(alpha=1.02)
        sched = s.schedule(6)
        assert all(sched[i] == 1.02 for i in range(6))

    def test_early_layer_schedule(self):
        s = SparseInferSettings(alpha=1.0, alpha_early=1.03, n_early_layers=2)
        sched = s.schedule(4)
        assert sched.alphas == (1.03, 1.03, 1.0, 1.0)


class TestBuildEngine:
    def test_default_wiring(self, micro_weights):
        engine = build_engine(micro_weights)
        assert isinstance(engine.mlp, SparseInferMLP)
        assert isinstance(engine.prefill_mlp, DenseMLP)  # dense prefill

    def test_sparse_prefill_option(self, micro_weights):
        engine = build_engine(
            micro_weights, SparseInferSettings(sparse_prefill=True)
        )
        assert engine.prefill_mlp is engine.mlp

    def test_reuses_prebuilt_predictor(self, micro_weights):
        settings = SparseInferSettings(alpha=1.0)
        predictor = build_predictor(micro_weights, settings)
        engine = build_engine(micro_weights, settings, predictor=predictor)
        # Packing shared, not recomputed.
        assert engine.mlp.predictor.packed_gate(0) is predictor.packed_gate(0)

    def test_conservative_engine_matches_dense(self, micro_weights):
        prompt = [1, 4, 2]
        sparse = build_engine(micro_weights, SparseInferSettings(alpha=1e9))
        dense = dense_engine(micro_weights)
        assert (
            sparse.generate(prompt, 4).generated_ids
            == dense.generate(prompt, 4).generated_ids
        )

    def test_generation_runs_with_default_alpha(self, micro_weights):
        engine = build_engine(micro_weights)
        result = engine.generate([1, 2, 3], 3)
        assert len(result.generated_ids) <= 3
        assert all(
            0 <= t < micro_weights.config.vocab_size
            for t in result.generated_ids
        )

    def test_aggressive_alpha_skips_more_than_conservative(self, micro_weights):
        prompt = [1, 2, 3]
        aggressive = build_engine(micro_weights, SparseInferSettings(alpha=0.9))
        conservative = build_engine(micro_weights, SparseInferSettings(alpha=1.2))
        aggressive.generate(prompt, 3)
        conservative.generate(prompt, 3)
        assert (
            aggressive.mlp.stats.gate_skip_fraction
            >= conservative.mlp.stats.gate_skip_fraction
        )

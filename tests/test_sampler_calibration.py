"""Tests for the sampler, trace-driven calibration, TEAL and energy model."""

import numpy as np
import pytest

from repro.core.calibration import (
    calibrate_schedule,
    collect_calibration_traces,
    measure_precision_grid,
)
from repro.model.sampler import Sampler, SamplerConfig, greedy


class TestSampler:
    def test_greedy_default(self):
        s = Sampler()
        assert s.sample(np.array([0.1, 3.0, 0.2])) == 1

    def test_greedy_helper(self):
        assert greedy(np.array([5.0, 1.0])) == 0

    def test_temperature_sampling_reproducible(self):
        logits = np.array([1.0, 1.1, 0.9, 2.0])
        a = Sampler(SamplerConfig(temperature=1.0, seed=3))
        b = Sampler(SamplerConfig(temperature=1.0, seed=3))
        assert [a.sample(logits) for _ in range(10)] == [
            b.sample(logits) for _ in range(10)
        ]

    def test_top_k_restricts_support(self):
        logits = np.array([0.0, 1.0, 2.0, 3.0])
        s = Sampler(SamplerConfig(temperature=1.0, top_k=2, seed=0))
        picks = {s.sample(logits) for _ in range(50)}
        assert picks <= {2, 3}

    def test_top_p_restricts_support(self):
        logits = np.array([10.0, 9.9, -10.0, -10.0])
        s = Sampler(SamplerConfig(temperature=1.0, top_p=0.9, seed=0))
        picks = {s.sample(logits) for _ in range(50)}
        assert picks <= {0, 1}

    def test_low_temperature_approaches_greedy(self):
        logits = np.array([1.0, 2.0, 0.5])
        s = Sampler(SamplerConfig(temperature=1e-4, seed=0))
        assert all(s.sample(logits) == 1 for _ in range(10))

    def test_validation(self):
        with pytest.raises(ValueError):
            SamplerConfig(temperature=-1)
        with pytest.raises(ValueError):
            SamplerConfig(top_k=-1)
        with pytest.raises(ValueError):
            SamplerConfig(top_p=1.5)
        with pytest.raises(ValueError):
            Sampler().sample(np.zeros((2, 2)))


class TestCalibration:
    @pytest.fixture(scope="class")
    def calib(self, request):
        from repro.model.config import ModelConfig
        from repro.model.tokenizer import CharTokenizer
        from repro.model.weights import random_weights
        from repro.workloads import gsm8k_like

        tok = CharTokenizer(gsm8k_like.ALPHABET)
        cfg = ModelConfig(name="calib", vocab_size=tok.vocab_size,
                          d_model=64, n_layers=3, n_heads=2, d_ff=96,
                          max_seq_len=64, dtype_bytes=4)
        weights = random_weights(cfg, seed=2)
        prompts = [s.prompt for s in gsm8k_like.generate(3, seed=0)]
        return weights, tok, prompts

    def test_collect_traces(self, calib):
        weights, tok, prompts = calib
        traces = collect_calibration_traces(weights, tok, prompts,
                                            max_new_tokens=2)
        assert len(traces) > 0
        assert {t.layer for t in traces} == {0, 1, 2}

    def test_empty_prompts_rejected(self, calib):
        weights, tok, _ = calib
        with pytest.raises(ValueError):
            collect_calibration_traces(weights, tok, [])

    def test_precision_grid_monotone_in_alpha(self, calib):
        weights, tok, prompts = calib
        traces = collect_calibration_traces(weights, tok, prompts, 2)
        grid = measure_precision_grid(
            traces, weights.gate_matrices(), alphas=(1.0, 1.5)
        )
        for layer in range(weights.config.n_layers):
            assert grid[(layer, 1.5)] >= grid[(layer, 1.0)] - 0.05

    def test_calibrate_schedule_end_to_end(self, calib):
        weights, tok, prompts = calib
        result = calibrate_schedule(
            weights, tok, prompts, target_precision=0.8,
            alphas=(1.0, 1.2, 2.0),
        )
        assert result.schedule.n_layers == weights.config.n_layers
        for layer in range(weights.config.n_layers):
            alpha = result.schedule[layer]
            # Chosen alpha meets the target unless even the largest missed.
            if alpha != 2.0:
                assert result.precision(layer, alpha) >= 0.8

    def test_no_traces_rejected(self, calib):
        weights, _, _ = calib
        with pytest.raises(ValueError):
            measure_precision_grid([], weights.gate_matrices(), (1.0,))


class TestTeal:
    @pytest.fixture
    def teal(self, micro_weights):
        import numpy as np

        from repro.baselines.teal import TealMLP

        thresholds = np.full(micro_weights.config.n_layers, 0.5)
        return TealMLP(micro_weights, thresholds)

    def test_zero_threshold_matches_dense(self, micro_weights, rng):
        import numpy as np

        from repro.baselines.teal import TealMLP
        from repro.model.mlp import DenseMLP

        teal = TealMLP(micro_weights,
                       np.zeros(micro_weights.config.n_layers))
        dense = DenseMLP(micro_weights)
        x = rng.standard_normal(micro_weights.config.d_model).astype(np.float32)
        np.testing.assert_allclose(teal.run(0, x), dense.run(0, x), atol=1e-5)

    def test_columns_skipped(self, teal, micro_weights, rng):
        x = rng.standard_normal(micro_weights.config.d_model).astype(np.float32)
        teal.run(0, x)
        assert teal.column_skip_fraction > 0.1

    def test_threshold_calibration(self, rng):
        from repro.baselines.teal import calibrate_input_thresholds

        inputs = [rng.standard_normal(1000) for _ in range(2)]
        thr = calibrate_input_thresholds(inputs, 0.6)
        for t, x in zip(thr, inputs):
            assert np.mean(np.abs(x) < t) == pytest.approx(0.6, abs=0.05)

    def test_operator_validation(self):
        from repro.baselines.teal import (
            input_threshold_for_sparsity,
            sparsify_input,
        )

        with pytest.raises(ValueError):
            sparsify_input(np.zeros(3), -1.0)
        with pytest.raises(ValueError):
            input_threshold_for_sparsity(np.zeros(3), 1.5)

    def test_threshold_count_checked(self, micro_weights):
        import numpy as np

        from repro.baselines.teal import TealMLP

        with pytest.raises(ValueError):
            TealMLP(micro_weights, np.zeros(9))


class TestEnergy:
    def test_sparse_saves_energy(self):
        from repro.gpu.device import jetson_orin_agx_64gb
        from repro.gpu.energy import decode_energy
        from repro.gpu.pipeline import (
            EngineSpec,
            SparsityProfile,
            dense_engine,
        )
        from repro.model.config import prosparse_llama2_13b

        cfg = prosparse_llama2_13b()
        dev = jetson_orin_agx_64gb()
        dense = decode_energy(cfg, dense_engine(), dev, seq_len=700)
        sparse = decode_energy(
            cfg,
            EngineSpec(kind="sparseinfer", kernel_fusion=True,
                       actual_sparsity=True),
            dev,
            SparsityProfile.uniform(cfg.n_layers, 0.9, 0.92),
            seq_len=700,
        )
        assert sparse.joules_per_token < dense.joules_per_token
        assert sparse.energy_delay_product < dense.energy_delay_product
        # Jetson-scale energy: single-digit joules per 13B token.
        assert 0.5 < dense.joules_per_token < 20.0

    def test_model_validation(self):
        from repro.gpu.energy import EnergyModel

        with pytest.raises(ValueError):
            EnergyModel(static_power=-1)
        with pytest.raises(ValueError):
            EnergyModel(op_energy=0)

"""Tests for the Eq. (2) decision rule and the predictor object."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.alpha import AlphaSchedule
from repro.core.predictor import (
    SparseInferPredictor,
    predict_skip_from_counts,
    true_skip_mask,
)


class TestDecisionRule:
    def test_majority_negative_skips(self):
        # d=100 positions, 60 negative -> alpha=1 skips.
        assert predict_skip_from_counts(np.array([60]), 100, 1.0)[0]

    def test_majority_positive_keeps(self):
        assert not predict_skip_from_counts(np.array([40]), 100, 1.0)[0]

    def test_tie_keeps(self):
        # alpha*Npos < Nneg is strict: 50 < 50 is false -> keep.
        assert not predict_skip_from_counts(np.array([50]), 100, 1.0)[0]

    def test_alpha_shifts_threshold(self):
        # At alpha=1.03 with 5120 bits the threshold moves from 2561 to
        # ceil(103*5120/203) = 2598 -- the paper's conservative margin.
        n = np.arange(2550, 2650)
        base = predict_skip_from_counts(n, 5120, 1.0)
        conservative = predict_skip_from_counts(n, 5120, 1.03)
        assert base.sum() > conservative.sum()
        # First skipped count moves from 2561 to 2598.
        assert n[base.argmax()] == 2561
        assert n[conservative.argmax()] == 2598

    def test_aggressive_alpha_skips_more(self):
        n = np.arange(0, 101)
        aggressive = predict_skip_from_counts(n, 100, 0.9)
        base = predict_skip_from_counts(n, 100, 1.0)
        assert aggressive.sum() > base.sum()

    def test_fixed_point_quantisation(self):
        # alpha = 1.004999 rounds to the same percent as 1.00.
        n = np.array([51])
        assert (
            predict_skip_from_counts(n, 100, 1.004)[0]
            == predict_skip_from_counts(n, 100, 1.0)[0]
        )

    def test_invalid_total_bits(self):
        with pytest.raises(ValueError):
            predict_skip_from_counts(np.array([1]), 0, 1.0)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            predict_skip_from_counts(np.array([1]), 10, -1.0)


@settings(max_examples=80, deadline=None)
@given(
    total=st.integers(32, 4096),
    alpha_lo=st.floats(0.5, 2.0),
    alpha_hi=st.floats(0.5, 2.0),
    seed=st.integers(0, 9999),
)
def test_property_skip_set_shrinks_with_alpha(total, alpha_lo, alpha_hi, seed):
    """Conservativeness is monotone: higher alpha never adds skips."""
    if alpha_lo > alpha_hi:
        alpha_lo, alpha_hi = alpha_hi, alpha_lo
    rng = np.random.default_rng(seed)
    n_neg = rng.integers(0, total + 1, size=50)
    skip_lo = predict_skip_from_counts(n_neg, total, alpha_lo)
    skip_hi = predict_skip_from_counts(n_neg, total, alpha_hi)
    assert np.all(skip_hi <= skip_lo)  # hi-alpha skips subset of lo-alpha


class TestTrueSkipMask:
    def test_relu_semantics(self):
        pre = np.array([-1.0, 0.0, 1e-9, 2.0])
        assert true_skip_mask(pre).tolist() == [True, True, False, False]


class TestSparseInferPredictor:
    @pytest.fixture
    def gates(self, rng):
        return [rng.standard_normal((48, 64)).astype(np.float32) for _ in range(3)]

    def test_from_gate_weights(self, gates):
        p = SparseInferPredictor.from_gate_weights(gates)
        assert p.n_layers == 3
        assert p.d_model == 64

    def test_predict_shape_and_dtype(self, gates, rng):
        p = SparseInferPredictor.from_gate_weights(gates)
        x = rng.standard_normal(64).astype(np.float32)
        pred = p.predict(1, x)
        assert pred.skip.shape == (48,)
        assert pred.skip.dtype == bool
        assert pred.n_neg.shape == (48,)

    def test_predict_matches_manual_rule(self, gates, rng):
        p = SparseInferPredictor.from_gate_weights(gates)
        x = rng.standard_normal(64).astype(np.float32)
        pred = p.predict(0, x, alpha=1.0)
        n_neg = (np.signbit(gates[0]) ^ np.signbit(x)).sum(axis=1)
        expected = 100 * n_neg > 100 * (64 - n_neg)
        assert np.array_equal(pred.skip, expected)

    def test_schedule_is_used(self, gates, rng):
        sched = AlphaSchedule.from_values([1.0, 5.0, 1.0])
        p = SparseInferPredictor.from_gate_weights(gates, sched)
        x = rng.standard_normal(64).astype(np.float32)
        conservative = p.predict(1, x)
        assert conservative.alpha == 5.0
        # Layer 1 at alpha=5 must skip no more than at alpha=1.
        base = p.predict(1, x, alpha=1.0)
        assert conservative.skip.sum() <= base.skip.sum()

    def test_batch_matches_single(self, gates, rng):
        p = SparseInferPredictor.from_gate_weights(gates)
        xs = rng.standard_normal((5, 64)).astype(np.float32)
        batch = p.predict_batch(0, xs)
        for i in range(5):
            assert np.array_equal(batch[i], p.predict(0, xs[i]).skip)

    def test_wrong_input_shape_rejected(self, gates):
        p = SparseInferPredictor.from_gate_weights(gates)
        with pytest.raises(ValueError):
            p.predict(0, np.zeros(65, dtype=np.float32))

    def test_mismatched_layer_widths_rejected(self, rng):
        gates = [
            rng.standard_normal((8, 64)).astype(np.float32),
            rng.standard_normal((8, 32)).astype(np.float32),
        ]
        with pytest.raises(ValueError):
            SparseInferPredictor.from_gate_weights(gates)

    def test_schedule_length_mismatch_rejected(self, gates):
        with pytest.raises(ValueError):
            SparseInferPredictor.from_gate_weights(
                gates, AlphaSchedule.uniform(1.0, 5)
            )

    def test_nbytes_counts_all_layers(self, gates):
        p = SparseInferPredictor.from_gate_weights(gates)
        assert p.nbytes == 3 * 48 * 2 * 4  # 64 bits -> 2 words -> 8 bytes/row

    def test_with_schedule_shares_packing(self, gates):
        p = SparseInferPredictor.from_gate_weights(gates)
        p2 = p.with_schedule(AlphaSchedule.uniform(1.03, 3))
        assert p2.packed_gate(0) is p.packed_gate(0)

    def test_empty_layer_list_rejected(self):
        with pytest.raises(ValueError):
            SparseInferPredictor([])

    def test_predicted_sparsity_property(self, gates, rng):
        p = SparseInferPredictor.from_gate_weights(gates)
        x = rng.standard_normal(64).astype(np.float32)
        pred = p.predict(0, x)
        assert pred.predicted_sparsity == pytest.approx(pred.skip.mean())

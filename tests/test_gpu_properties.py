"""Property-based tests of the GPU roofline model's invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.device import jetson_orin_agx_64gb
from repro.gpu.kernels import dense_gemv, sparse_gemv
from repro.gpu.pipeline import (
    EngineSpec,
    SparsityProfile,
    decode_latency,
    dense_engine,
)
from repro.model.config import ModelConfig

ORIN = jetson_orin_agx_64gb()


@settings(max_examples=40, deadline=None)
@given(
    nrows=st.integers(64, 16384),
    ncols=st.integers(64, 8192),
    d1=st.floats(0.0, 1.0),
    d2=st.floats(0.0, 1.0),
)
def test_property_sparse_latency_monotone_in_density(nrows, ncols, d1, d2):
    """More surviving rows never get cheaper."""
    lo, hi = sorted((d1, d2))
    k_lo = sparse_gemv("g", nrows, ncols, lo)
    k_hi = sparse_gemv("g", nrows, ncols, hi)
    assert k_lo.latency(ORIN) <= k_hi.latency(ORIN) + 1e-15


@settings(max_examples=40, deadline=None)
@given(nrows=st.integers(64, 16384), ncols=st.integers(64, 8192))
def test_property_sparse_never_beats_free_and_never_exceeds_dense(
    nrows, ncols
):
    dense = dense_gemv("g", nrows, ncols)
    sparse_full = sparse_gemv("g", nrows, ncols, 1.0)
    # Full-density sparse pays only the skip-flag read extra (4 B/row).
    flag_time = nrows * 4 / ORIN.effective_bandwidth
    assert sparse_full.latency(ORIN) <= dense.latency(ORIN) + flag_time + 1e-9
    empty = sparse_gemv("g", nrows, ncols, 0.0)
    assert empty.latency(ORIN) >= ORIN.kernel_launch_latency


@settings(max_examples=15, deadline=None)
@given(
    skip1=st.floats(0.0, 0.95),
    skip2=st.floats(0.0, 0.95),
    seed=st.integers(0, 100),
)
def test_property_decode_latency_monotone_in_skip(skip1, skip2, seed):
    """A profile that skips more is never slower."""
    del seed
    cfg = ModelConfig(name="prop", vocab_size=1000, d_model=1024,
                      n_layers=4, n_heads=8, d_ff=4096)
    lo, hi = sorted((skip1, skip2))
    spec = EngineSpec(kind="sparseinfer", actual_sparsity=True)
    slow = decode_latency(
        cfg, spec, ORIN, SparsityProfile.uniform(4, lo, lo), seq_len=128
    )
    fast = decode_latency(
        cfg, spec, ORIN, SparsityProfile.uniform(4, hi, hi), seq_len=128
    )
    assert fast.seconds_per_token <= slow.seconds_per_token + 1e-12


def test_dense_latency_scales_with_model_size():
    small = ModelConfig(name="s", vocab_size=1000, d_model=1024, n_layers=4,
                        n_heads=8, d_ff=2048)
    large = ModelConfig(name="l", vocab_size=1000, d_model=2048, n_layers=8,
                        n_heads=8, d_ff=4096)
    a = decode_latency(small, dense_engine(), ORIN, seq_len=128)
    b = decode_latency(large, dense_engine(), ORIN, seq_len=128)
    assert b.seconds_per_token > a.seconds_per_token


def test_faster_device_decodes_faster():
    from repro.gpu.device import rtx_4090

    cfg = ModelConfig(name="m", vocab_size=1000, d_model=2048, n_layers=8,
                      n_heads=8, d_ff=4096)
    orin_t = decode_latency(cfg, dense_engine(), ORIN, seq_len=128)
    rtx_t = decode_latency(cfg, dense_engine(), rtx_4090(), seq_len=128)
    assert rtx_t.seconds_per_token < orin_t.seconds_per_token


@settings(max_examples=25, deadline=None)
@given(
    pred=st.floats(0.0, 1.0),
    extra=st.floats(0.0, 1.0),
)
def test_property_as_never_hurts(pred, extra):
    """union_skip >= predicted_skip implies +AS latency <= base latency."""
    union = min(1.0, pred + (1.0 - pred) * extra)
    cfg = ModelConfig(name="p", vocab_size=1000, d_model=1024, n_layers=2,
                      n_heads=8, d_ff=4096)
    profile = SparsityProfile.uniform(2, pred, union)
    base = decode_latency(
        cfg, EngineSpec(kind="sparseinfer"), ORIN, profile, seq_len=64
    )
    with_as = decode_latency(
        cfg, EngineSpec(kind="sparseinfer", actual_sparsity=True),
        ORIN, profile, seq_len=64,
    )
    assert with_as.seconds_per_token <= base.seconds_per_token + 1e-12


def test_timeline_bytes_conserved():
    """Total bytes equal the sum over kernels regardless of grouping."""
    from repro.gpu.kernels import KernelCost
    from repro.gpu.simulator import Timeline

    ks = [KernelCost(name=f"k{i}", bytes_streamed=10.0 * (i + 1))
          for i in range(4)]
    seq = Timeline().extend(ks)
    grouped = Timeline().concurrent(ks[:2]).concurrent(ks[2:])
    assert seq.total_bytes == pytest.approx(grouped.total_bytes)


def test_prediction_cost_independent_of_sparsity():
    """The predictor reads all packed signs regardless of the outcome."""
    from repro.gpu.kernels import sparseinfer_predict_kernel

    k = sparseinfer_predict_kernel(13824, 5120)
    assert k.bytes_streamed == pytest.approx(
        13824 * 5120 / 8 + 5120 / 8 + 13824 * 4
    )
    assert np.isfinite(k.latency(ORIN))

"""Shared fixtures.

The thread-limiting env vars must be set before numpy initialises its
BLAS thread pool: the role models are small enough that thread fan-out
costs far more than it saves.
"""

import os

for _var in ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS", "MKL_NUM_THREADS",
             "NUMEXPR_NUM_THREADS"):
    os.environ.setdefault(_var, "1")

import numpy as np
import pytest

from repro.model.config import ModelConfig, tiny_7b_role
from repro.model.tokenizer import CharTokenizer
from repro.model.weights import ModelWeights, random_weights
from repro.workloads import gsm8k_like


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def gsm_tokenizer() -> CharTokenizer:
    return CharTokenizer(gsm8k_like.ALPHABET)


@pytest.fixture(scope="session")
def tiny_config(gsm_tokenizer) -> ModelConfig:
    return tiny_7b_role(vocab_size=gsm_tokenizer.vocab_size)


@pytest.fixture(scope="session")
def tiny_weights(tiny_config) -> ModelWeights:
    return random_weights(tiny_config, seed=7)


@pytest.fixture(scope="session")
def micro_config() -> ModelConfig:
    """Very small config for expensive per-test model construction."""
    return ModelConfig(
        name="micro",
        vocab_size=19,
        d_model=32,
        n_layers=2,
        n_heads=2,
        d_ff=64,
        max_seq_len=64,
        dtype_bytes=4,
    )


@pytest.fixture(scope="session")
def micro_weights(micro_config) -> ModelWeights:
    return random_weights(micro_config, seed=11)

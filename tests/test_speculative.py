"""Speculative self-drafting (PR 9).

Covers the `SpecConfig` knob surface, KV rollback (`truncate`) on both
cache backends, the engine's draft/verify primitives, and the serving
contract: speculation-on output is token-identical to
``speculation=None`` across the batch x cache/sharing/budget/preemption
matrix for greedy and seeded-sampled requests, adaptive draft depth
reacts to the acceptance EMA, and the `ServeReport` speculation
telemetry (``drafted_tokens`` / ``accepted_tokens`` /
``acceptance_rate`` / ``draft_seconds`` / ``verify_seconds``) adds up.
"""

import numpy as np
import pytest

from repro.core.engine import build_batched_engine, build_engine
from repro.eval.latency import measure_batched_serving
from repro.eval.reporting import format_speculation
from repro.model.kvcache import BatchedKVCache
from repro.model.paged_kvcache import PagedKVCache
from repro.model.sampler import SamplerConfig
from repro.serving import ContinuousBatchingScheduler, Request, SpecConfig

SPEC = SpecConfig(k=3, draft_alpha=0.8)
CFG = SamplerConfig(temperature=0.9, top_k=8, top_p=0.95, seed=17)
PROMPTS = [[1, 4, 2], [3, 5], [6, 7, 8, 9], [2, 2, 1], [10, 3], [4, 4, 4]]

# Same serving knob matrix as the sampling acceptance sweep: every
# cache/sharing/budget/preemption shape the scheduler supports.
MATRIX = [
    dict(),
    dict(paged=True),
    dict(paged=True, prefix_sharing=True),
    dict(paged=True, prefix_sharing=True, cache_pages=8),
    dict(paged=True, prefix_sharing=True, cache_pages=8, step_budget=4),
    dict(paged=True, prefix_sharing=True, cache_pages=8, preemption=True),
]


def run_scheduler(weights, requests, max_batch_size, sampling=None,
                  speculation=None, **knobs):
    """Drain ``requests``; return ({request_id: generated_ids}, report)."""
    scheduler_keys = ("step_budget", "preemption")
    engine_knobs = {k: v for k, v in knobs.items() if k not in scheduler_keys}
    sched_knobs = {k: v for k, v in knobs.items() if k in scheduler_keys}
    engine = build_batched_engine(
        weights, max_batch_size=max_batch_size, sampling=sampling,
        speculation=speculation, **engine_knobs,
    )
    scheduler = ContinuousBatchingScheduler(engine, **sched_knobs)
    for request in requests:
        scheduler.submit(request)
    report = scheduler.run()
    assert all(c.ok for c in report.completions)
    return {c.request_id: list(c.generated_ids) for c in report.completions}, report


def make_requests(n=6, max_new=6, sampling=None):
    return [
        Request(request_id=i, prompt_ids=tuple(PROMPTS[i]),
                max_new_tokens=max_new, sampling=sampling)
        for i in range(n)
    ]


class TestSpecConfig:
    def test_defaults(self):
        spec = SpecConfig()
        assert spec.k >= 1 and 0 < spec.draft_alpha and spec.adaptive

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError, match="k"):
            SpecConfig(k=0)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError, match="draft_alpha"):
            SpecConfig(draft_alpha=0.0)

    def test_rejects_bad_ema_decay(self):
        with pytest.raises(ValueError, match="ema_decay"):
            SpecConfig(ema_decay=1.0)

    def test_rejects_inverted_thresholds(self):
        with pytest.raises(ValueError, match="threshold"):
            SpecConfig(raise_threshold=0.3, lower_threshold=0.6)

    def test_frozen(self):
        with pytest.raises(Exception):
            SpecConfig().k = 5


class TestTruncate:
    """KV rollback on both cache backends (the speculation primitive)."""

    def test_fixed_slot_truncate_and_reappend(self, micro_config):
        cache = BatchedKVCache(micro_config, n_slots=1)
        slot = cache.allocate()
        d = micro_config.d_model
        for pos in range(5):
            for layer in range(micro_config.n_layers):
                slot.append(layer, np.full(d, pos + 1.0),
                            np.full(d, -(pos + 1.0)), pos)
            slot.advance()
        slot.truncate(3)
        assert slot.length == 3
        for pos in (3, 4):
            for layer in range(micro_config.n_layers):
                slot.append(layer, np.full(d, 100.0 + pos),
                            np.full(d, -(100.0 + pos)), pos)
            slot.advance()
        keys, _ = slot.view(0, slot.length)
        assert keys[2, 0] == 3.0          # kept prefix untouched
        assert keys[3, 0] == 103.0        # rewritten tail
        cache.release(slot)

    def test_fixed_slot_truncate_validates(self, micro_config):
        cache = BatchedKVCache(micro_config, n_slots=1)
        slot = cache.allocate()
        with pytest.raises(ValueError, match="truncate"):
            slot.truncate(1)              # beyond current length
        with pytest.raises(ValueError, match="truncate"):
            slot.truncate(-1)

    def test_paged_truncate_frees_tail_pages_and_recredits(
            self, micro_config):
        cache = PagedKVCache(micro_config, n_slots=2, page_size=2, n_pages=8)
        slot = cache.allocate(max_positions=7)     # reserves 4 pages
        d = micro_config.d_model
        for pos in range(6):                        # 3 pages mapped
            for layer in range(micro_config.n_layers):
                slot.append(layer, np.full(d, 1.0), np.full(d, 2.0), pos)
            slot.advance()
        pool = cache.pool
        free_before = pool.n_free_pages
        slot.truncate(3)                            # keep 2 pages
        assert slot.length == 3
        assert len(slot.page_table) == 2
        assert pool.n_free_pages == free_before + 1
        # The freed page went back onto the slot's reservation, so the
        # sequence can still regrow to its worst case.
        for pos in range(3, 7):
            for layer in range(micro_config.n_layers):
                slot.append(layer, np.full(d, 1.0), np.full(d, 2.0), pos)
            slot.advance()
        assert slot.length == 7
        cache.release(slot)

    def test_paged_truncate_noop_keeps_pages(self, micro_config):
        cache = PagedKVCache(micro_config, n_slots=1, page_size=4, n_pages=4)
        slot = cache.allocate(max_positions=8)
        d = micro_config.d_model
        for pos in range(5):
            for layer in range(micro_config.n_layers):
                slot.append(layer, np.full(d, 1.0), np.full(d, 2.0), pos)
            slot.advance()
        pages_before = list(slot.page_table)
        generation = slot.generation
        slot.truncate(5)
        assert slot.page_table == pages_before
        assert slot.generation == generation       # no gather-plan bump
        cache.release(slot)


class TestEnginePrimitives:
    def test_verify_chunk_rows_match_decode_steps(self, micro_weights):
        """Row i of the verify chunk == the decode logits after token i."""
        prompt = [1, 4, 2, 7]
        drafts = [5, 9, 3]
        ref = build_batched_engine(micro_weights, max_batch_size=1)
        slot = ref.allocate_slot()
        logits = ref.prefill(slot, prompt)
        t0 = int(np.argmax(logits))
        expected = []
        feed = [t0] + drafts
        for tok in feed:
            expected.append(ref.decode_step([slot], [tok])[0])

        spec_engine = build_batched_engine(
            micro_weights, max_batch_size=1, speculation=SPEC,
        )
        vslot = spec_engine.allocate_slot()
        spec_engine.prefill(vslot, prompt)
        chunk = spec_engine.verify_chunk(vslot, feed)
        assert chunk.shape == (len(feed), ref.config.vocab_size)
        for i, row in enumerate(expected):
            np.testing.assert_allclose(chunk[i], row, rtol=1e-6, atol=1e-6)

    def test_draft_step_needs_an_alpha(self, micro_weights):
        engine = build_batched_engine(micro_weights, max_batch_size=1)
        slot = engine.allocate_slot()
        engine.prefill(slot, [1, 2, 3])
        with pytest.raises(ValueError, match="draft_alpha"):
            engine.draft_step([slot], [4])

    def test_draft_executors_are_memoized_views(self, micro_weights):
        engine = build_batched_engine(
            micro_weights, max_batch_size=1, speculation=SPEC,
        )
        a = engine._draft_mlp(0.8)
        b = engine._draft_mlp(0.8)
        assert a is b
        # Same packed predictor bits, no re-packing, no weight copy.
        assert a.weights is engine.weights
        assert a.predictor._packed[0] is engine.sparse.predictor._packed[0]

    def test_draft_stats_stay_out_of_serving_telemetry(self, micro_weights):
        engine = build_batched_engine(
            micro_weights, max_batch_size=1, speculation=SPEC,
        )
        slot = engine.allocate_slot()
        engine.prefill(slot, [1, 2, 3])
        before = engine.sparse.stats.rows_total
        engine.draft_step([slot], [4])
        assert engine.sparse.stats.rows_total == before


class TestTokenIdentityMatrix:
    """The acceptance contract: speculation changes how many model
    passes produce the tokens, never the tokens."""

    @pytest.mark.parametrize("batch", [1, 2, 4, 8])
    @pytest.mark.parametrize("knobs", MATRIX,
                             ids=lambda k: "+".join(k) or "fixed")
    def test_greedy_identical_to_plain(self, micro_weights, batch, knobs):
        requests = make_requests()
        plain, _ = run_scheduler(micro_weights, requests, batch, **knobs)
        spec, report = run_scheduler(
            micro_weights, requests, batch, speculation=SPEC, **knobs,
        )
        assert spec == plain, (batch, knobs)
        assert report.drafted_tokens > 0

    @pytest.mark.parametrize("batch", [1, 2, 4, 8])
    @pytest.mark.parametrize("knobs", MATRIX,
                             ids=lambda k: "+".join(k) or "fixed")
    def test_sampled_identical_to_plain(self, micro_weights, batch, knobs):
        requests = make_requests(max_new=5, sampling=CFG)
        plain, _ = run_scheduler(micro_weights, requests, batch, **knobs)
        spec, report = run_scheduler(
            micro_weights, requests, batch, speculation=SPEC, **knobs,
        )
        assert spec == plain, (batch, knobs)
        assert report.sampled_tokens == report.tokens_generated

    def test_greedy_matches_single_sequence_reference(self, micro_weights):
        # Transitively: speculation == plain == build_engine.generate.
        requests = make_requests()
        spec, _ = run_scheduler(
            micro_weights, requests, 4, paged=True, speculation=SPEC,
        )
        reference = build_engine(micro_weights)
        for i, prompt in enumerate(PROMPTS):
            expected = reference.generate(prompt, max_new_tokens=6)
            assert spec[i] == list(expected.generated_ids), i

    def test_mixed_greedy_and_sampled_batch(self, micro_weights):
        requests = [
            Request(request_id=0, prompt_ids=tuple(PROMPTS[0]),
                    max_new_tokens=6, sampling=CFG),
            Request(request_id=1, prompt_ids=tuple(PROMPTS[2]),
                    max_new_tokens=6),
        ]
        plain, _ = run_scheduler(micro_weights, requests, 2, paged=True)
        spec, _ = run_scheduler(
            micro_weights, requests, 2, paged=True, speculation=SPEC,
        )
        assert spec == plain

    def test_stop_ids_respected_mid_chunk(self, micro_weights):
        # A stop token inside an accepted run must end the request at
        # exactly the same emission as plain decode.
        reference = build_engine(micro_weights)
        full = reference.generate(PROMPTS[0], max_new_tokens=6).generated_ids
        stop = frozenset({int(full[2])})
        requests = [Request(request_id=0, prompt_ids=tuple(PROMPTS[0]),
                            max_new_tokens=6, stop_ids=stop)]
        plain, _ = run_scheduler(micro_weights, requests, 1)
        spec, _ = run_scheduler(
            micro_weights, requests, 1, speculation=SPEC,
        )
        assert spec == plain == {0: list(full[:2])}

    def test_speculation_none_is_the_default(self, micro_weights):
        engine = build_batched_engine(micro_weights, max_batch_size=2)
        assert engine.speculation is None
        scheduler = ContinuousBatchingScheduler(engine)
        assert scheduler.speculation is None

    def test_scheduler_side_knob_enables_drafting(self, micro_weights):
        # The engine was built without the knob; the scheduler turns it
        # on -- the draft executors are built lazily.
        engine = build_batched_engine(micro_weights, max_batch_size=2)
        scheduler = ContinuousBatchingScheduler(engine, speculation=SPEC)
        for request in make_requests(n=2):
            scheduler.submit(request)
        report = scheduler.run()
        assert report.drafted_tokens > 0
        plain, _ = run_scheduler(micro_weights, make_requests(n=2), 2)
        got = {c.request_id: list(c.generated_ids)
               for c in report.completions}
        assert got == plain


class TestTelemetryAndAdaptivity:
    def test_report_accounting_adds_up(self, micro_weights):
        _, report = run_scheduler(
            micro_weights, make_requests(), 4, paged=True, speculation=SPEC,
        )
        assert 0 < report.accepted_tokens <= report.drafted_tokens
        assert report.acceptance_rate == pytest.approx(
            report.accepted_tokens / report.drafted_tokens
        )
        assert report.draft_seconds > 0.0
        assert report.verify_seconds > 0.0
        assert report.wall_seconds >= (
            report.draft_seconds + report.verify_seconds
        )
        # Speculation emits >= 1 token per drafter tick, so it can only
        # shrink the tick count relative to one-token-per-tick decode.
        _, plain = run_scheduler(micro_weights, make_requests(), 4, paged=True)
        assert report.decode_steps < plain.decode_steps
        assert report.tokens_generated == plain.tokens_generated

    def test_no_speculation_means_zero_telemetry(self, micro_weights):
        _, report = run_scheduler(micro_weights, make_requests(n=2), 2)
        assert report.drafted_tokens == 0
        assert report.accepted_tokens == 0
        assert report.acceptance_rate == 0.0
        assert report.draft_seconds == 0.0 and report.verify_seconds == 0.0

    def test_adaptive_depth_tracks_acceptance(self, micro_weights):
        # draft_alpha == serving alpha -> drafts are the serving
        # engine's own argmax -> greedy acceptance is perfect and every
        # sequence's depth climbs to k.  A floor-low EMA start plus
        # adaptive=False must instead stay pinned.
        perfect = SpecConfig(k=4, draft_alpha=1.0, adaptive=True,
                             raise_threshold=0.75)
        engine = build_batched_engine(
            micro_weights, max_batch_size=1, speculation=perfect,
        )
        scheduler = ContinuousBatchingScheduler(engine)
        scheduler.submit(Request(request_id=0, prompt_ids=(1, 4, 2),
                                 max_new_tokens=12))
        depths = []
        while not scheduler.idle:
            scheduler.step()
            depths.extend(s.spec_k for s in scheduler.active)
        report = scheduler.report
        assert report.accepted_tokens == report.drafted_tokens > 0
        assert max(depths) == perfect.k

    def test_fixed_depth_when_adaptive_off(self, micro_weights):
        spec = SpecConfig(k=2, draft_alpha=0.5, adaptive=False)
        engine = build_batched_engine(
            micro_weights, max_batch_size=1, speculation=spec,
        )
        scheduler = ContinuousBatchingScheduler(engine)
        scheduler.submit(Request(request_id=0, prompt_ids=(6, 7, 8, 9),
                                 max_new_tokens=10))
        while not scheduler.idle:
            scheduler.step()
            assert all(s.spec_k == 2 for s in scheduler.active)
        assert scheduler.report.drafted_tokens > 0

    def test_preemption_preserves_spec_state(self, micro_weights):
        # A victim's adaptive depth and EMA survive eviction: the
        # resume restores spec_k/spec_ema along with its tokens.
        spec = SpecConfig(k=3, draft_alpha=0.8)
        low = Request(request_id=0, prompt_ids=(1, 2, 3, 4, 5, 6, 7, 8),
                      max_new_tokens=8, priority=0, sampling=CFG)
        vip = Request(request_id=1, prompt_ids=(9, 10, 11, 12, 13, 14, 15, 16),
                      max_new_tokens=8, priority=5, sampling=CFG)
        engine = build_batched_engine(
            micro_weights, max_batch_size=2, paged=True, page_size=4,
            n_pages=6, prefix_sharing=True, cache_pages=4, speculation=spec,
        )
        scheduler = ContinuousBatchingScheduler(engine, preemption=True)
        scheduler.submit(low)
        ticks = 0
        saved = {}
        while not scheduler.idle:
            scheduler.step()
            ticks += 1
            assert ticks < 300
            if ticks == 3:
                scheduler.submit(vip)
            if 0 in scheduler._resume_state and not saved:
                state = scheduler._resume_state[0]
                saved = {"spec_k": state["spec_k"],
                         "spec_ema": state["spec_ema"]}
        assert scheduler.report.preemptions > 0
        assert saved and saved["spec_k"] >= 1
        report = scheduler.report
        interrupted = {c.request_id: list(c.generated_ids)
                       for c in report.completions}
        smooth, _ = run_scheduler(micro_weights, [low], 1, speculation=spec)
        assert interrupted[0] == smooth[0]

    def test_measurement_knob_and_label(self, micro_weights):
        requests = make_requests(n=4, max_new=5)
        point = measure_batched_serving(
            micro_weights, requests, max_batch_size=2, paged=True,
            speculation=SPEC,
        )
        assert "+spec(a=0.8,k=3)" in point.label
        assert 0 < point.accepted_tokens <= point.drafted_tokens
        assert point.acceptance_rate == pytest.approx(
            point.accepted_tokens / point.drafted_tokens
        )
        assert point.draft_seconds > 0.0 and point.verify_seconds > 0.0
        assert point.wall_seconds >= point.draft_seconds + point.verify_seconds
        table = format_speculation([point])
        assert str(point.drafted_tokens) in table
        plain = measure_batched_serving(
            micro_weights, requests, max_batch_size=2, paged=True,
        )
        assert "+spec" not in plain.label
        assert plain.drafted_tokens == 0
        assert point.tokens_generated == plain.tokens_generated

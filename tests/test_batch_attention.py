"""Batched decode attention + chunked prefill: equivalence and masking.

The contract under test: ``batched_attention=True`` and
``prefill_chunk > 0`` change *how fast* the engine computes, never *what*
it decodes -- token-identical to the scalar per-sequence loops across
the serving/paged/prefix-sharing matrix, with batch=1 staying
bit-identical to ``build_engine``.  Plus the supporting pieces: the
shared RoPE memo, length bucketing, the padded-gather plans, and the
padding-mask property (garbage in padded K/V cells can never reach a
logit).
"""

import numpy as np
import pytest

from repro.core.engine import (
    SparseInferSettings,
    build_batched_engine,
    build_engine,
)
from repro.eval.latency import measure_batched_serving
from repro.model.batch_attention import (
    AttentionTelemetry,
    BatchedAttention,
    length_buckets,
)
from repro.model.inference import attend_single
from repro.model.kvcache import KVCache
from repro.model.rope import rope_for_position, rope_tables
from repro.serving import ContinuousBatchingScheduler, Request

# 17 tokens: spans at least one full page at every page_size in the
# sweep (1, 3, 16), so the prefix index can always match it.
SHARED_PREFIX = (3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3, 2)
MIXED_PROMPTS = [
    (2, 7, 1),
    (5, 3, 8, 6, 2, 9, 4),
    SHARED_PREFIX + (8, 2),
    SHARED_PREFIX + (1, 7, 3, 2),
    (6, 2),
    (9, 8, 7, 6, 5, 4, 3, 2, 1, 1, 2, 3),
    SHARED_PREFIX + (4,),
    (1, 2, 3, 4, 5),
]


def make_requests(max_new: int = 7):
    return [
        Request(request_id=i, prompt_ids=prompt,
                max_new_tokens=max_new - (i % 3))
        for i, prompt in enumerate(MIXED_PROMPTS)
    ]


def drain(weights, requests, **kwargs):
    reorder = kwargs.pop("reorder_window", 0)
    engine = build_batched_engine(weights, **kwargs)
    scheduler = ContinuousBatchingScheduler(engine, reorder_window=reorder)
    for request in requests:
        scheduler.submit(request)
    report = scheduler.run()
    tokens = {c.request_id: c.generated_ids for c in report.completions}
    return tokens, report


class TestRopeMemo:
    def test_matches_rope_tables_bitwise(self):
        cos, sin = rope_for_position(7, 8)
        ref_cos, ref_sin = rope_tables(np.array([7]), 8)
        np.testing.assert_array_equal(cos, ref_cos)
        np.testing.assert_array_equal(sin, ref_sin)

    def test_same_position_shares_one_object(self):
        a = rope_for_position(13, 8)
        b = rope_for_position(13, 8)
        assert a[0] is b[0] and a[1] is b[1]
        # ...including via a numpy integer position (same cache key).
        c = rope_for_position(np.int64(13), 8)
        assert c[0] is a[0]

    def test_distinct_geometry_distinct_entries(self):
        assert rope_for_position(2, 8)[0] is not rope_for_position(3, 8)[0]
        assert rope_for_position(2, 8)[0] is not rope_for_position(2, 4)[0]
        assert (rope_for_position(2, 8, 10000.0)[0]
                is not rope_for_position(2, 8, 500.0)[0])

    def test_cached_tables_are_frozen(self):
        cos, _ = rope_for_position(21, 8)
        with pytest.raises(ValueError):
            cos[0, 0] = 0.0

    def test_attend_single_default_rope_is_memoized(self, micro_config, rng):
        """rope=None funnels through the memo, bit-identical to before."""
        d = micro_config.d_model
        q, k, v = (rng.standard_normal(d).astype(np.float32)
                   for _ in range(3))
        explicit_cache = KVCache(micro_config)
        memo_cache = KVCache(micro_config)
        explicit = attend_single(
            micro_config, q, k, v, 0, explicit_cache, 0,
            rope=rope_tables(np.array([0]), micro_config.head_dim,
                             micro_config.rope_theta),
        )
        memoized = attend_single(micro_config, q, k, v, 0, memo_cache, 0)
        np.testing.assert_array_equal(explicit, memoized)
        np.testing.assert_array_equal(explicit_cache.keys, memo_cache.keys)


class TestLengthBuckets:
    def test_equal_lengths_one_bucket(self):
        assert length_buckets([5, 5, 5, 5]) == [[0, 1, 2, 3]]

    def test_large_spread_splits(self):
        buckets = length_buckets([100, 10, 90, 9], min_fill=0.5)
        assert len(buckets) == 2
        assert sorted(buckets[0]) == [0, 2]
        assert sorted(buckets[1]) == [1, 3]

    def test_min_fill_zero_never_splits(self):
        assert len(length_buckets([500, 1, 3, 2], min_fill=0.0)) == 1

    def test_min_fill_one_groups_equal_only(self):
        buckets = length_buckets([4, 3, 4, 3], min_fill=1.0)
        assert len(buckets) == 2
        assert sorted(buckets[0]) == [0, 2]
        assert sorted(buckets[1]) == [1, 3]

    def test_partition_is_exact(self):
        lengths = [17, 3, 64, 64, 2, 9, 33]
        buckets = length_buckets(lengths, min_fill=0.7)
        flat = sorted(i for bucket in buckets for i in bucket)
        assert flat == list(range(len(lengths)))

    def test_invalid_min_fill_rejected(self):
        with pytest.raises(ValueError):
            length_buckets([1, 2], min_fill=1.5)
        with pytest.raises(ValueError):
            length_buckets([1], min_fill=-0.1)


class TestBatchedDecodeEquivalence:
    """The issue's sweep: batch {2,4,8} x page_size {1,3,16} x mixed
    lengths including a just-forked prefix sharer, token-identical."""

    @pytest.mark.parametrize("batch_size", [2, 4, 8])
    @pytest.mark.parametrize("page_size", [1, 3, 16])
    def test_paged_prefix_sharing_sweep(self, micro_weights, batch_size,
                                        page_size):
        requests = make_requests()
        scalar, scalar_report = drain(
            micro_weights, requests, max_batch_size=batch_size,
            paged=True, page_size=page_size, prefix_sharing=True,
            reorder_window=4,
        )
        batched, report = drain(
            micro_weights, requests, max_batch_size=batch_size,
            paged=True, page_size=page_size, prefix_sharing=True,
            reorder_window=4, batched_attention=True,
        )
        assert scalar_report.forked_admissions > 0   # sharers really fork
        assert batched == scalar
        assert report.attn_batched_steps > 0

    @pytest.mark.parametrize("batch_size", [2, 4, 8])
    def test_fixed_cache_sweep(self, micro_weights, batch_size):
        requests = make_requests()
        scalar, _ = drain(micro_weights, requests,
                          max_batch_size=batch_size)
        batched, report = drain(micro_weights, requests,
                                max_batch_size=batch_size,
                                batched_attention=True)
        assert batched == scalar
        assert report.attn_batched_steps > 0

    def test_single_bucket_and_equal_length_paths(self, micro_weights):
        """bucket_min_fill extremes agree with the scalar loop too."""
        requests = make_requests()
        scalar, _ = drain(micro_weights, requests, max_batch_size=4)
        for min_fill in (0.0, 1.0):
            batched, _ = drain(micro_weights, requests, max_batch_size=4,
                               batched_attention=True,
                               attn_bucket_min_fill=min_fill)
            assert batched == scalar

    def test_just_forked_sharer_in_decode_batch(self, micro_weights):
        """Donor + fresh fork decode together, scalar vs batched."""
        prompt_a = SHARED_PREFIX + (8, 2)
        suffix = (1, 7)

        def build(batched_attention):
            engine = build_batched_engine(
                micro_weights, max_batch_size=2, paged=True, page_size=3,
                prefix_sharing=True, batched_attention=batched_attention,
            )
            slot_a = engine.allocate_slot()
            logits_a = engine.prefill(slot_a, prompt_a)
            slot_b = engine.fork_slot(slot_a, len(SHARED_PREFIX))
            logits_b = engine.prefill(slot_b, suffix)
            return engine, (slot_a, slot_b), (logits_a, logits_b)

        scalar_engine, scalar_slots, scalar_logits = build(False)
        batched_engine, batched_slots, batched_logits = build(True)
        np.testing.assert_array_equal(scalar_logits[0], batched_logits[0])
        np.testing.assert_array_equal(scalar_logits[1], batched_logits[1])

        tokens = [int(np.argmax(l)) for l in scalar_logits]
        for _ in range(4):
            scalar_step = scalar_engine.decode_step(scalar_slots, tokens)
            batched_step = batched_engine.decode_step(batched_slots, tokens)
            np.testing.assert_allclose(batched_step, scalar_step,
                                       rtol=1e-5, atol=1e-5)
            assert [int(np.argmax(row)) for row in batched_step] == \
                [int(np.argmax(row)) for row in scalar_step]
            tokens = [int(np.argmax(row)) for row in scalar_step]

    def test_batch1_stays_bit_identical_to_build_engine(self, micro_weights):
        """batched_attention=True must not touch the batch=1 path."""
        prompt = MIXED_PROMPTS[1]
        reference = build_engine(micro_weights)
        reference.reset()
        ref_logits = reference.prefill(prompt)

        engine = build_batched_engine(micro_weights, max_batch_size=1,
                                      batched_attention=True)
        slot = engine.allocate_slot()
        logits = engine.prefill(slot, prompt)
        np.testing.assert_array_equal(logits, ref_logits)
        token = int(np.argmax(ref_logits))
        for _ in range(4):
            step = engine.decode_step([slot], [token])
            ref_step = reference.forward_token(token,
                                               reference.cache.length)
            np.testing.assert_array_equal(step[0], ref_step)
            token = int(np.argmax(ref_step))
        assert engine.attn_telemetry.batched_steps == 0


def _poison_unowned_cells(engine, slots, rng):
    """Overwrite every K/V cell no live position owns with garbage."""
    pool = engine.cache.pool
    page_size = pool.page_size
    owned = set()
    for slot in slots:
        for pos in range(slot.length):
            owned.add((slot.page_table[pos // page_size], pos % page_size))
    for page in range(pool.n_pages):
        for offset in range(page_size):
            if (page, offset) not in owned:
                garbage = rng.standard_normal(
                    (pool.config.n_layers, pool.config.d_model)
                ).astype(np.float32) * 1e3
                pool.keys[page, :, offset] = garbage
                pool.values[page, :, offset] = -garbage


class TestPaddingMaskProperty:
    """Masked positions never contribute: perturbing padded K/V entries
    leaves the decode logits bit-unchanged."""

    @pytest.mark.parametrize("page_size", [1, 3, 16])
    def test_poisoned_padding_changes_nothing(self, micro_weights,
                                              page_size, rng):
        prompts = [MIXED_PROMPTS[0], MIXED_PROMPTS[1], MIXED_PROMPTS[5]]

        def build():
            engine = build_batched_engine(
                micro_weights, max_batch_size=4, paged=True,
                page_size=page_size, batched_attention=True,
            )
            slots, tokens = [], []
            for prompt in prompts:
                slot = engine.allocate_slot()
                logits = engine.prefill(slot, prompt)
                slots.append(slot)
                tokens.append(int(np.argmax(logits)))
            return engine, slots, tokens

        clean_engine, clean_slots, tokens = build()
        dirty_engine, dirty_slots, dirty_tokens = build()
        assert tokens == dirty_tokens
        _poison_unowned_cells(dirty_engine, dirty_slots, rng)

        for _ in range(3):
            clean = clean_engine.decode_step(clean_slots, tokens)
            dirty = dirty_engine.decode_step(dirty_slots, tokens)
            np.testing.assert_array_equal(clean, dirty)
            tokens = [int(np.argmax(row)) for row in clean]

    def test_fixed_cache_padding_immune(self, micro_weights, rng):
        """Same property on the fixed-slot cache: garbage past each
        slot's length is masked out of the padded stack."""
        prompts = [MIXED_PROMPTS[0], MIXED_PROMPTS[5]]

        def build():
            engine = build_batched_engine(micro_weights, max_batch_size=2,
                                          batched_attention=True)
            slots, tokens = [], []
            for prompt in prompts:
                slot = engine.allocate_slot()
                logits = engine.prefill(slot, prompt)
                slots.append(slot)
                tokens.append(int(np.argmax(logits)))
            return engine, slots, tokens

        clean_engine, clean_slots, tokens = build()
        dirty_engine, dirty_slots, _ = build()
        cache = dirty_engine.cache
        for slot in dirty_slots:
            cache.keys[slot.index, :, slot.length:] = 1e3 * rng.standard_normal(
                cache.keys[slot.index, :, slot.length:].shape
            ).astype(np.float32)
            cache.values[slot.index, :, slot.length:] = -1e3
        clean = clean_engine.decode_step(clean_slots, tokens)
        dirty = dirty_engine.decode_step(dirty_slots, tokens)
        np.testing.assert_array_equal(clean, dirty)


class TestGatherPlans:
    def test_plan_extends_append_only_between_steps(self, micro_weights):
        engine = build_batched_engine(micro_weights, max_batch_size=2,
                                      paged=True, page_size=2,
                                      batched_attention=True)
        slots = []
        tokens = []
        for prompt in (MIXED_PROMPTS[1], MIXED_PROMPTS[5]):
            slot = engine.allocate_slot()
            logits = engine.prefill(slot, prompt)
            slots.append(slot)
            tokens.append(int(np.argmax(logits)))
        for _ in range(5):
            step = engine.decode_step(slots, tokens)
            tokens = [int(np.argmax(row)) for row in step]
            for slot in slots:
                plan = engine.cache._gather_plans[slot.index]
                assert plan.generation == slot.generation
                n = plan.n_pages
                assert list(plan.pages[:n]) == slot.page_table[:n]

    def test_generation_bump_invalidates_plan(self, micro_config):
        from repro.model.paged_kvcache import PagedKVCache

        cache = PagedKVCache(micro_config, n_slots=2, max_seq_len=16,
                             page_size=2)
        k = np.ones(micro_config.d_model, dtype=np.float32)
        slot = cache.allocate()
        for pos in range(4):
            for layer in range(micro_config.n_layers):
                slot.append(layer, k * pos, k * pos, pos)
            slot.advance()
        view = cache.view_batch([slot], [4])
        first_pages = list(cache._gather_plans[slot.index].pages[:2])
        assert first_pages == slot.page_table

        cache.release(slot)
        slot2 = cache.allocate()
        assert slot2.index == slot.index
        for pos in range(2):
            for layer in range(micro_config.n_layers):
                slot2.append(layer, k * 7, k * 7, pos)
            slot2.advance()
        keys, _ = cache.view_batch([slot2], [2]).gather(0)
        np.testing.assert_array_equal(keys[0, 0], k * 7)
        plan = cache._gather_plans[slot2.index]
        assert plan.generation == slot2.generation
        assert list(plan.pages[:plan.n_pages]) == slot2.page_table

    def test_view_batch_matches_per_slot_views(self, micro_config, rng):
        from repro.model.paged_kvcache import PagedKVCache

        cache = PagedKVCache(micro_config, n_slots=3, max_seq_len=32,
                             page_size=3)
        lengths = [7, 3, 12]
        slots = []
        for length in lengths:
            slot = cache.allocate()
            for pos in range(length):
                for layer in range(micro_config.n_layers):
                    slot.append(
                        layer,
                        rng.standard_normal(micro_config.d_model)
                        .astype(np.float32),
                        rng.standard_normal(micro_config.d_model)
                        .astype(np.float32),
                        pos,
                    )
                slot.advance()
            slots.append(slot)
        view = cache.view_batch(slots, lengths)
        assert view.l_max == max(lengths)
        for layer in range(micro_config.n_layers):
            keys, values = view.gather(layer)
            assert keys.shape == (3, max(lengths), micro_config.d_model)
            for i, (slot, length) in enumerate(zip(slots, lengths)):
                ref_k, ref_v = slot.view(layer, length)
                np.testing.assert_array_equal(keys[i, :length], ref_k)
                np.testing.assert_array_equal(values[i, :length], ref_v)

    def test_contiguous_run_detection(self, micro_config):
        """Consecutively-claimed equal-length slots gather via a slice."""
        from repro.model.paged_kvcache import PagedKVCache

        cache = PagedKVCache(micro_config, n_slots=3, max_seq_len=8,
                             page_size=4)
        k = np.arange(micro_config.d_model, dtype=np.float32)
        slots = []
        for s in range(3):
            slot = cache.allocate()        # pages claimed in order: 0,1,2
            for layer in range(micro_config.n_layers):
                slot.append(layer, k + s, k - s, 0)
            slot.advance()
            slots.append(slot)
        view = cache.view_batch(slots, [1, 1, 1])
        assert view._contig_start == 0
        keys, values = view.gather(1)
        for s in range(3):
            np.testing.assert_array_equal(keys[s, 0], k + s)
            np.testing.assert_array_equal(values[s, 0], k - s)


class TestChunkedPrefill:
    @pytest.mark.parametrize("chunk", [1, 2, 5, 64])
    def test_token_identical_generation(self, micro_weights, chunk):
        requests = make_requests()
        scalar, _ = drain(micro_weights, requests, max_batch_size=4)
        chunked, _ = drain(micro_weights, requests, max_batch_size=4,
                           prefill_chunk=chunk)
        assert chunked == scalar

    def test_prefill_logits_close_and_same_argmax(self, micro_weights):
        prompt = MIXED_PROMPTS[5]
        scalar_engine = build_batched_engine(micro_weights,
                                             max_batch_size=1)
        scalar_slot = scalar_engine.allocate_slot()
        scalar_logits = scalar_engine.prefill(scalar_slot, prompt)

        chunked_engine = build_batched_engine(micro_weights,
                                              max_batch_size=1,
                                              prefill_chunk=4)
        chunked_slot = chunked_engine.allocate_slot()
        chunked_logits = chunked_engine.prefill(chunked_slot, prompt)
        assert chunked_slot.length == len(prompt)
        np.testing.assert_allclose(chunked_logits, scalar_logits,
                                   rtol=1e-4, atol=1e-4)
        assert int(np.argmax(chunked_logits)) == int(np.argmax(scalar_logits))

    @pytest.mark.parametrize("page_size", [1, 3, 16])
    def test_chunked_prefill_on_forked_slot(self, micro_weights, page_size):
        """Forked admission prefills only the suffix -- chunked or not,
        the decoded tokens match."""
        requests = [
            Request(request_id=i,
                    prompt_ids=SHARED_PREFIX + (7 + i, 2, i + 1),
                    max_new_tokens=6)
            for i in range(4)
        ]
        scalar, ref_report = drain(
            micro_weights, requests, max_batch_size=4, paged=True,
            page_size=page_size, prefix_sharing=True, reorder_window=4,
        )
        chunked, report = drain(
            micro_weights, requests, max_batch_size=4, paged=True,
            page_size=page_size, prefix_sharing=True, reorder_window=4,
            prefill_chunk=3, batched_attention=True,
        )
        assert report.forked_admissions == ref_report.forked_admissions > 0
        assert chunked == scalar

    def test_sparse_prefill_executor_fallback(self, micro_weights):
        """Executors without run_tokens (sparse prefill) still work."""
        settings = SparseInferSettings(sparse_prefill=True)
        requests = make_requests(max_new=4)
        scalar, _ = drain(micro_weights, requests, max_batch_size=2,
                          settings=settings)
        chunked, _ = drain(micro_weights, requests, max_batch_size=2,
                           settings=settings, prefill_chunk=4)
        assert chunked == scalar

    def test_validation(self, micro_weights):
        with pytest.raises(ValueError):
            build_batched_engine(micro_weights, prefill_chunk=-1)
        engine = build_batched_engine(micro_weights, prefill_chunk=4)
        slot = engine.allocate_slot()
        with pytest.raises(ValueError):
            engine.prefill(slot, [])


class TestTelemetry:
    def test_report_populated_only_when_batched(self, micro_weights):
        requests = make_requests()
        _, scalar_report = drain(micro_weights, requests, max_batch_size=4)
        assert scalar_report.attn_batched_steps == 0
        assert scalar_report.attn_padding_waste == 0.0
        assert scalar_report.mean_attn_buckets == 0.0

        _, report = drain(micro_weights, requests, max_batch_size=4,
                          batched_attention=True)
        assert report.attn_batched_steps > 0
        assert 0.0 <= report.attn_padding_waste < 1.0
        assert report.mean_attn_buckets >= 1.0
        assert report.attn_useful_positions <= report.attn_padded_positions

    def test_bucket_knob_bounds_waste(self, micro_weights):
        requests = make_requests()
        _, loose = drain(micro_weights, requests, max_batch_size=4,
                         batched_attention=True, attn_bucket_min_fill=0.0)
        _, tight = drain(micro_weights, requests, max_batch_size=4,
                         batched_attention=True, attn_bucket_min_fill=1.0)
        assert tight.attn_padding_waste == 0.0   # equal lengths only
        assert tight.mean_attn_buckets >= loose.mean_attn_buckets
        assert loose.attn_padding_waste >= tight.attn_padding_waste

    def test_measurement_carries_attention_fields(self, micro_weights):
        requests = make_requests(max_new=4)
        point = measure_batched_serving(
            micro_weights, requests, 4,
            batched_attention=True, prefill_chunk=4,
        )
        assert "+battn" in point.label and "+chunk4" in point.label
        assert 0.0 <= point.attn_padding_waste < 1.0
        assert point.mean_attn_buckets >= 1.0

    def test_reused_engine_reports_per_run_telemetry(self, micro_weights):
        """A second scheduler on the same engine must not inherit the
        first run's attention counters."""
        engine = build_batched_engine(micro_weights, max_batch_size=4,
                                      batched_attention=True)
        first = ContinuousBatchingScheduler(engine)
        for request in make_requests():
            first.submit(request)
        first_report = first.run()
        assert first_report.attn_batched_steps > 0

        second = ContinuousBatchingScheduler(engine)
        for request in make_requests(max_new=3):
            second.submit(request)
        second_report = second.run()
        assert 0 < second_report.attn_batched_steps < \
            engine.attn_telemetry.batched_steps
        assert second_report.attn_padded_positions < \
            engine.attn_telemetry.padded_positions
        assert 0.0 <= second_report.attn_padding_waste < 1.0

    def test_telemetry_dataclass_edges(self):
        t = AttentionTelemetry()
        assert t.padding_waste_fraction == 0.0
        assert t.mean_buckets_per_step == 0.0

    def test_singleton_buckets_excluded_from_padding_counts(
            self, micro_config):
        """Singletons go through attend_single -- they gather no
        padding, so they must not dilute the waste fraction."""
        attention = BatchedAttention(micro_config, bucket_min_fill=0.5)
        plan = attention.plan_step([99, 9], slots=[None, None])
        assert len(plan.buckets) == 2             # both singletons
        assert attention.telemetry.padded_positions == 0
        assert attention.telemetry.useful_positions == 0
        assert attention.telemetry.buckets_sum == 2

        attention.plan_step([7, 5], slots=[None, None])  # one real bucket
        assert attention.telemetry.padded_positions == 2 * 8
        assert attention.telemetry.useful_positions == 8 + 6

    def test_invalid_bucket_min_fill_rejected(self, micro_weights):
        with pytest.raises(ValueError):
            build_batched_engine(micro_weights, batched_attention=True,
                                 attn_bucket_min_fill=2.0)

"""Randomized property tests for the paged KV cache's fork/COW lifecycle.

Drives :class:`PagePool` / :class:`PagedKVSlot` / :meth:`PagedKVCache.fork`
through random interleavings of allocate / fork / append / rewrite /
release against a pure-python model of the expected contents, asserting
after every operation:

* ``free + in_use == n_pages`` (no page is ever lost or double-counted);
* ``0 <= reserved <= free`` (admission promises are always backable);
* every page's refcount equals the number of live page tables mapping
  it, and exactly the zero-refcount pages are on the free list;
* releasing a forked slot never frees (or corrupts) a page its donor
  still maps -- every surviving slot's K/V always matches the model.
"""

from collections import Counter

import numpy as np
import pytest

from repro.model.paged_kvcache import PagedKVCache

N_SLOTS = 4
N_PAGES = 10


def check_invariants(cache: PagedKVCache, live: dict) -> None:
    pool = cache.pool
    assert pool.n_free_pages + pool.n_pages_in_use == pool.n_pages
    assert 0 <= pool._reserved <= pool.n_free_pages
    refs = Counter()
    for slot, _ in live.values():
        refs.update(slot.page_table)
    for page in range(pool.n_pages):
        assert pool.refcount(page) == refs.get(page, 0), (
            f"page {page}: refcount {pool.refcount(page)} != "
            f"{refs.get(page, 0)} table references"
        )
        assert (page in pool._free_set) == (refs.get(page, 0) == 0)
    shared = sum(1 for page, n in refs.items() if n > 1)
    assert pool.n_shared_pages == shared


def check_contents(cache: PagedKVCache, live: dict, n_layers: int) -> None:
    """Every live slot's K/V matches its model, on every layer."""
    for slot, stamps in live.values():
        if not stamps:
            continue
        for layer in range(n_layers):
            keys, values = slot.view(layer, len(stamps))
            np.testing.assert_array_equal(keys[:, 0], np.array(stamps))
            np.testing.assert_array_equal(values[:, 0], -np.array(stamps))


def write_position(slot, n_layers: int, d_model: int, position: int,
                   stamp: float) -> None:
    for layer in range(n_layers):
        slot.append(layer, np.full(d_model, stamp),
                    np.full(d_model, -stamp), position)


@pytest.mark.parametrize("page_size", [1, 3, 4])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_random_interleavings_hold_invariants(micro_config, page_size, seed):
    rng = np.random.default_rng(seed)
    max_seq_len = page_size * 6
    cache = PagedKVCache(micro_config, n_slots=N_SLOTS,
                         max_seq_len=max_seq_len, page_size=page_size,
                         n_pages=N_PAGES)
    n_layers, d = micro_config.n_layers, micro_config.d_model
    live: dict = {}               # slot index -> (slot, expected stamps)
    stamp = 0.0

    for op_index in range(150):
        op = rng.choice(["allocate", "fork", "append", "rewrite", "release"])
        if op == "allocate":
            max_positions = int(rng.integers(0, max_seq_len + 1))
            if cache.n_free == 0 or \
                    (max_positions and not cache.can_admit(max_positions)):
                with pytest.raises(RuntimeError):
                    cache.allocate(max_positions)
                continue
            slot = cache.allocate(max_positions)
            live[slot.index] = (slot, [])
        elif op == "fork":
            donors = [(s, st) for s, st in live.values() if s.length > 0]
            if not donors:
                continue
            donor, donor_stamps = donors[int(rng.integers(len(donors)))]
            shared = int(rng.integers(1, donor.length + 1))
            max_positions = int(rng.choice([0, shared, max_seq_len]))
            if not cache.can_fork(donor, shared, max_positions):
                with pytest.raises((RuntimeError, ValueError)):
                    cache.fork(donor, shared, max_positions)
                continue
            slot = cache.fork(donor, shared, max_positions)
            assert slot.length == shared
            live[slot.index] = (slot, list(donor_stamps[:shared]))
        elif op == "append":
            growable = [(s, st) for s, st in live.values()
                        if s.length < max_seq_len]
            if not growable:
                continue
            slot, stamps = growable[int(rng.integers(len(growable)))]
            stamp += 1.0
            try:
                write_position(slot, n_layers, d, slot.length, stamp)
            except RuntimeError:
                continue          # pool exhausted / all free pages reserved
            slot.advance()
            stamps.append(stamp)
        elif op == "rewrite":
            writable = [(s, st) for s, st in live.values() if s.length > 0]
            if not writable:
                continue
            slot, stamps = writable[int(rng.integers(len(writable)))]
            position = int(rng.integers(slot.length))
            stamp += 1.0
            try:
                # May land on a shared page: copy-on-write must detach
                # this slot without touching the other mappers.
                write_position(slot, n_layers, d, position, stamp)
            except RuntimeError:
                continue          # COW could not claim an unreserved page
            stamps[position] = stamp
        else:   # release
            if not live:
                continue
            index = int(rng.choice(list(live)))
            slot, _ = live.pop(index)
            cache.release(slot)
        check_invariants(cache, live)
        if op_index % 10 == 0:
            check_contents(cache, live, n_layers)

    check_contents(cache, live, n_layers)
    for slot, _ in list(live.values()):
        cache.release(slot)
    live.clear()
    check_invariants(cache, live)
    assert cache.n_pages_in_use == 0
    assert cache.pool._reserved == 0


def test_release_of_fork_keeps_donor_pages(micro_config):
    """The named invariant, deterministically: forked release must not
    free or alter any page the donor still maps."""
    cache = PagedKVCache(micro_config, n_slots=2, max_seq_len=24,
                         page_size=4, n_pages=12)
    n_layers, d = micro_config.n_layers, micro_config.d_model
    donor = cache.allocate()
    for pos in range(10):
        write_position(donor, n_layers, d, pos, float(pos + 1))
        donor.advance()
    fork = cache.fork(donor, 10)        # 2 full shared pages + 1 copied
    donor_pages = list(donor.page_table)
    cache.release(fork)
    for page in donor_pages:
        assert cache.pool.refcount(page) == 1
        assert page not in cache.pool._free_set
    keys, values = donor.view(0, 10)
    np.testing.assert_array_equal(keys[:, 0], np.arange(1.0, 11.0))
    np.testing.assert_array_equal(values[:, 0], -np.arange(1.0, 11.0))


def test_cow_write_detaches_without_touching_donor(micro_config):
    """A rewrite landing inside a shared full page copies first."""
    cache = PagedKVCache(micro_config, n_slots=2, max_seq_len=16,
                         page_size=4, n_pages=8)
    n_layers, d = micro_config.n_layers, micro_config.d_model
    donor = cache.allocate()
    for pos in range(8):
        write_position(donor, n_layers, d, pos, float(pos + 1))
        donor.advance()
    fork = cache.fork(donor, 8)          # page-aligned: both pages shared
    assert cache.n_shared_pages == 2
    shared_page = fork.page_table[0]
    write_position(fork, n_layers, d, 1, 99.0)
    assert fork.page_table[0] != shared_page          # detached
    assert cache.pool.refcount(shared_page) == 1      # donor keeps it
    assert cache.n_shared_pages == 1
    donor_keys, _ = donor.view(0, 8)
    fork_keys, _ = fork.view(0, 8)
    assert donor_keys[1, 0] == 2.0
    assert fork_keys[1, 0] == 99.0
    np.testing.assert_array_equal(donor_keys[[0, 2, 3], 0],
                                  fork_keys[[0, 2, 3], 0])


def test_fork_reserves_only_unshared_worst_case(micro_config):
    cache = PagedKVCache(micro_config, n_slots=3, max_seq_len=32,
                         page_size=4, n_pages=10)
    donor = cache.allocate(max_positions=12)          # reserves 3
    n_layers, d = micro_config.n_layers, micro_config.d_model
    for pos in range(12):
        write_position(donor, n_layers, d, pos, 1.0)
        donor.advance()
    assert cache.n_available_pages == 7
    # Fork sharing 8 aligned positions of a 16-position worst case:
    # 4 total pages, 2 shared -> only 2 charged.
    assert cache.fork_page_demand(8, 16) == 2
    fork = cache.fork(donor, 8, max_positions=16)
    assert cache.n_available_pages == 5
    assert fork.n_pages == 2                          # shared pages only
    assert cache.pool._reserved == 2
    cache.release(fork)
    assert cache.n_available_pages == 7


def test_fork_validation_errors(micro_config):
    cache = PagedKVCache(micro_config, n_slots=2, max_seq_len=16,
                         page_size=4, n_pages=8)
    other = PagedKVCache(micro_config, n_slots=1, max_seq_len=16,
                         page_size=4, n_pages=4)
    donor = cache.allocate()
    n_layers, d = micro_config.n_layers, micro_config.d_model
    for pos in range(5):
        write_position(donor, n_layers, d, pos, 1.0)
        donor.advance()
    with pytest.raises(ValueError, match="different cache"):
        other.fork(donor, 2)
    with pytest.raises(ValueError, match="shared_positions"):
        cache.fork(donor, 0)
    with pytest.raises(ValueError, match="shared_positions"):
        cache.fork(donor, 6)                          # beyond donor length
    with pytest.raises(ValueError, match="below the shared"):
        cache.fork(donor, 4, max_positions=3)
    released = cache.fork(donor, 4)
    cache.release(released)
    with pytest.raises(ValueError, match="not allocated"):
        cache.fork(released, 2)


def test_share_free_page_rejected(micro_config):
    cache = PagedKVCache(micro_config, n_slots=1, max_seq_len=16,
                         page_size=4, n_pages=4)
    with pytest.raises(ValueError, match="share free page"):
        cache.pool._share_page(0)

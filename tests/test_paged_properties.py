"""Randomized property tests for the paged KV cache's fork/COW/prefix-cache lifecycle.

Drives :class:`PagePool` / :class:`PagedKVSlot` / :meth:`PagedKVCache.fork`
/ :class:`PrefixCache` through random interleavings of allocate / fork /
append / truncate / rewrite / release / retire / revive against a pure-python
model of the expected contents, asserting after every operation:

* ``free + in_use + cached == n_pages`` (no page is ever lost or
  double-counted; every page is exactly one of free, pinned, cached);
* ``0 <= reserved <= free + cached`` (admission promises are always
  backable -- cached pages are reclaimable on demand);
* every page's refcount equals the number of live page tables mapping
  it; exactly the refcount-0 pages are free or cached, and the cached
  set is exactly the prefix cache's entries;
* releasing a forked slot never frees (or corrupts) a page its donor
  still maps, and LRU eviction under page pressure never touches a
  pinned (refcounted) page -- every surviving slot's K/V always matches
  the model;
* truncating a slot (the PR 9 speculation rollback) returns only pages
  no other slot maps -- a sharer's page is unpinned, never freed -- and
  re-credits actually-freed pages to the slot's reservation, so the
  sequence can always regrow to its admitted worst case;
* a revived prefix chain holds bit-for-bit the K/V its retired writer
  parked.
"""

from collections import Counter

import numpy as np
import pytest

from repro.model.paged_kvcache import PagedKVCache

N_SLOTS = 4
N_PAGES = 10


def check_invariants(cache: PagedKVCache, live: dict) -> None:
    pool = cache.pool
    assert pool.n_free_pages + pool.n_pages_in_use + pool.n_cached_pages \
        == pool.n_pages
    assert 0 <= pool._reserved <= pool.n_free_pages + pool.n_cached_pages
    assert not (pool._free_set & pool._cached_set)
    refs = Counter()
    for slot, _ in live.values():
        refs.update(slot.page_table)
    for page in range(pool.n_pages):
        assert pool.refcount(page) == refs.get(page, 0), (
            f"page {page}: refcount {pool.refcount(page)} != "
            f"{refs.get(page, 0)} table references"
        )
        unmapped = page in pool._free_set or page in pool._cached_set
        assert unmapped == (refs.get(page, 0) == 0)
    shared = sum(1 for page, n in refs.items() if n > 1)
    assert pool.n_shared_pages == shared
    if cache.prefix_cache is not None:
        entry_pages = {page for page, _ in
                       cache.prefix_cache._entries.values()}
        assert entry_pages == pool._cached_set
        assert len(cache.prefix_cache) <= cache.prefix_cache.cache_pages
        assert set(cache.prefix_cache._key_by_page) == entry_pages
    else:
        assert not pool._cached_set


def check_contents(cache: PagedKVCache, live: dict, n_layers: int) -> None:
    """Every live slot's K/V matches its model, on every layer."""
    for slot, stamps in live.values():
        if not stamps:
            continue
        for layer in range(n_layers):
            keys, values = slot.view(layer, len(stamps))
            np.testing.assert_array_equal(keys[:, 0], np.array(stamps))
            np.testing.assert_array_equal(values[:, 0], -np.array(stamps))


def write_position(slot, n_layers: int, d_model: int, position: int,
                   stamp: float) -> None:
    for layer in range(n_layers):
        slot.append(layer, np.full(d_model, stamp),
                    np.full(d_model, -stamp), position)


@pytest.mark.parametrize("page_size", [1, 3, 4])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_random_interleavings_hold_invariants(micro_config, page_size, seed):
    rng = np.random.default_rng(seed)
    max_seq_len = page_size * 6
    cache = PagedKVCache(micro_config, n_slots=N_SLOTS,
                         max_seq_len=max_seq_len, page_size=page_size,
                         n_pages=N_PAGES)
    n_layers, d = micro_config.n_layers, micro_config.d_model
    live: dict = {}               # slot index -> (slot, expected stamps)
    stamp = 0.0

    for op_index in range(150):
        op = rng.choice(["allocate", "fork", "append", "truncate",
                         "rewrite", "release"])
        if op == "allocate":
            max_positions = int(rng.integers(0, max_seq_len + 1))
            if cache.n_free == 0 or \
                    (max_positions and not cache.can_admit(max_positions)):
                with pytest.raises(RuntimeError):
                    cache.allocate(max_positions)
                continue
            slot = cache.allocate(max_positions)
            live[slot.index] = (slot, [])
        elif op == "fork":
            donors = [(s, st) for s, st in live.values() if s.length > 0]
            if not donors:
                continue
            donor, donor_stamps = donors[int(rng.integers(len(donors)))]
            shared = int(rng.integers(1, donor.length + 1))
            max_positions = int(rng.choice([0, shared, max_seq_len]))
            if not cache.can_fork(donor, shared, max_positions):
                with pytest.raises((RuntimeError, ValueError)):
                    cache.fork(donor, shared, max_positions)
                continue
            slot = cache.fork(donor, shared, max_positions)
            assert slot.length == shared
            live[slot.index] = (slot, list(donor_stamps[:shared]))
        elif op == "append":
            growable = [(s, st) for s, st in live.values()
                        if s.length < max_seq_len]
            if not growable:
                continue
            slot, stamps = growable[int(rng.integers(len(growable)))]
            stamp += 1.0
            try:
                write_position(slot, n_layers, d, slot.length, stamp)
            except RuntimeError:
                continue          # pool exhausted / all free pages reserved
            slot.advance()
            stamps.append(stamp)
        elif op == "truncate":
            # The speculation rollback: dropped tail pages a sharer
            # still maps are unpinned (not freed); actually-freed pages
            # flow back into the slot's reservation.
            if not live:
                continue
            index = int(rng.choice(list(live)))
            slot, stamps = live[index]
            n_keep = int(rng.integers(0, slot.length + 1))
            slot.truncate(n_keep)
            del stamps[n_keep:]
        elif op == "rewrite":
            writable = [(s, st) for s, st in live.values() if s.length > 0]
            if not writable:
                continue
            slot, stamps = writable[int(rng.integers(len(writable)))]
            position = int(rng.integers(slot.length))
            stamp += 1.0
            try:
                # May land on a shared page: copy-on-write must detach
                # this slot without touching the other mappers.
                write_position(slot, n_layers, d, position, stamp)
            except RuntimeError:
                continue          # COW could not claim an unreserved page
            stamps[position] = stamp
        else:   # release
            if not live:
                continue
            index = int(rng.choice(list(live)))
            slot, _ = live.pop(index)
            cache.release(slot)
        check_invariants(cache, live)
        if op_index % 10 == 0:
            check_contents(cache, live, n_layers)

    check_contents(cache, live, n_layers)
    for slot, _ in list(live.values()):
        cache.release(slot)
    live.clear()
    check_invariants(cache, live)
    assert cache.n_pages_in_use == 0
    assert cache.pool._reserved == 0


def test_release_of_fork_keeps_donor_pages(micro_config):
    """The named invariant, deterministically: forked release must not
    free or alter any page the donor still maps."""
    cache = PagedKVCache(micro_config, n_slots=2, max_seq_len=24,
                         page_size=4, n_pages=12)
    n_layers, d = micro_config.n_layers, micro_config.d_model
    donor = cache.allocate()
    for pos in range(10):
        write_position(donor, n_layers, d, pos, float(pos + 1))
        donor.advance()
    fork = cache.fork(donor, 10)        # 2 full shared pages + 1 copied
    donor_pages = list(donor.page_table)
    cache.release(fork)
    for page in donor_pages:
        assert cache.pool.refcount(page) == 1
        assert page not in cache.pool._free_set
    keys, values = donor.view(0, 10)
    np.testing.assert_array_equal(keys[:, 0], np.arange(1.0, 11.0))
    np.testing.assert_array_equal(values[:, 0], -np.arange(1.0, 11.0))


def test_cow_write_detaches_without_touching_donor(micro_config):
    """A rewrite landing inside a shared full page copies first."""
    cache = PagedKVCache(micro_config, n_slots=2, max_seq_len=16,
                         page_size=4, n_pages=8)
    n_layers, d = micro_config.n_layers, micro_config.d_model
    donor = cache.allocate()
    for pos in range(8):
        write_position(donor, n_layers, d, pos, float(pos + 1))
        donor.advance()
    fork = cache.fork(donor, 8)          # page-aligned: both pages shared
    assert cache.n_shared_pages == 2
    shared_page = fork.page_table[0]
    write_position(fork, n_layers, d, 1, 99.0)
    assert fork.page_table[0] != shared_page          # detached
    assert cache.pool.refcount(shared_page) == 1      # donor keeps it
    assert cache.n_shared_pages == 1
    donor_keys, _ = donor.view(0, 8)
    fork_keys, _ = fork.view(0, 8)
    assert donor_keys[1, 0] == 2.0
    assert fork_keys[1, 0] == 99.0
    np.testing.assert_array_equal(donor_keys[[0, 2, 3], 0],
                                  fork_keys[[0, 2, 3], 0])


def test_fork_reserves_only_unshared_worst_case(micro_config):
    cache = PagedKVCache(micro_config, n_slots=3, max_seq_len=32,
                         page_size=4, n_pages=10)
    donor = cache.allocate(max_positions=12)          # reserves 3
    n_layers, d = micro_config.n_layers, micro_config.d_model
    for pos in range(12):
        write_position(donor, n_layers, d, pos, 1.0)
        donor.advance()
    assert cache.n_available_pages == 7
    # Fork sharing 8 aligned positions of a 16-position worst case:
    # 4 total pages, 2 shared -> only 2 charged.
    assert cache.fork_page_demand(8, 16) == 2
    fork = cache.fork(donor, 8, max_positions=16)
    assert cache.n_available_pages == 5
    assert fork.n_pages == 2                          # shared pages only
    assert cache.pool._reserved == 2
    cache.release(fork)
    assert cache.n_available_pages == 7


def test_fork_validation_errors(micro_config):
    cache = PagedKVCache(micro_config, n_slots=2, max_seq_len=16,
                         page_size=4, n_pages=8)
    other = PagedKVCache(micro_config, n_slots=1, max_seq_len=16,
                         page_size=4, n_pages=4)
    donor = cache.allocate()
    n_layers, d = micro_config.n_layers, micro_config.d_model
    for pos in range(5):
        write_position(donor, n_layers, d, pos, 1.0)
        donor.advance()
    with pytest.raises(ValueError, match="different cache"):
        other.fork(donor, 2)
    with pytest.raises(ValueError, match="shared_positions"):
        cache.fork(donor, 0)
    with pytest.raises(ValueError, match="shared_positions"):
        cache.fork(donor, 6)                          # beyond donor length
    with pytest.raises(ValueError, match="below the shared"):
        cache.fork(donor, 4, max_positions=3)
    released = cache.fork(donor, 4)
    cache.release(released)
    with pytest.raises(ValueError, match="not allocated"):
        cache.fork(released, 2)


def test_share_free_page_rejected(micro_config):
    cache = PagedKVCache(micro_config, n_slots=1, max_seq_len=16,
                         page_size=4, n_pages=4)
    with pytest.raises(ValueError, match="share free page"):
        cache.pool._share_page(0)


# -- KV rollback (speculation's truncate) -----------------------------------


def test_truncate_never_frees_a_sharers_pages(micro_config):
    """Rolling a fork back through the shared prefix unpins, never
    frees: the donor keeps every page it maps, contents intact."""
    cache = PagedKVCache(micro_config, n_slots=2, max_seq_len=16,
                         page_size=4, n_pages=8)
    n_layers, d = micro_config.n_layers, micro_config.d_model
    donor = cache.allocate()
    for pos in range(8):
        write_position(donor, n_layers, d, pos, float(pos + 1))
        donor.advance()
    fork = cache.fork(donor, 8)            # page-aligned: 2 shared pages
    assert cache.n_shared_pages == 2
    donor_pages = list(donor.page_table)
    fork.truncate(0)                       # drop the whole shared prefix
    assert fork.page_table == []
    for page in donor_pages:
        assert cache.pool.refcount(page) == 1      # unpinned, not freed
        assert page not in cache.pool._free_set
    assert cache.n_shared_pages == 0
    keys, values = donor.view(0, 8)
    np.testing.assert_array_equal(keys[:, 0], np.arange(1.0, 9.0))
    np.testing.assert_array_equal(values[:, 0], -np.arange(1.0, 9.0))
    check_invariants(cache, {donor.index: (donor, [float(p + 1)
                                                   for p in range(8)])})


def test_truncate_recredits_freed_pages_to_the_reservation(micro_config):
    """Freed tail pages flow back into the slot's worst-case budget, so
    a rolled-back sequence can always regrow to what admission promised
    -- even when the rest of the pool is spoken for."""
    cache = PagedKVCache(micro_config, n_slots=2, max_seq_len=16,
                         page_size=2, n_pages=8)
    n_layers, d = micro_config.n_layers, micro_config.d_model
    slot = cache.allocate(max_positions=8)           # reserves 4 pages
    for pos in range(8):
        write_position(slot, n_layers, d, pos, float(pos + 1))
        slot.advance()
    assert cache.pool._reserved == 0                 # fully materialised
    hog = cache.allocate(max_positions=8)            # claims the other 4
    slot.truncate(3)                                 # frees 2 pages...
    assert cache.pool._reserved == 4 + 2             # ...back on reserve
    for pos in range(3, 8):                          # regrow to worst case
        write_position(slot, n_layers, d, pos, float(pos + 1))
        slot.advance()
    assert slot.length == 8
    cache.release(hog)
    cache.release(slot)
    assert cache.pool._reserved == 0


def test_truncate_then_reappend_is_bit_identical(micro_config):
    """Rollback leaves no trace: re-appending the same K/V reproduces
    the original contents exactly (the accept-path contract)."""
    cache = PagedKVCache(micro_config, n_slots=1, max_seq_len=16,
                         page_size=4, n_pages=4)
    n_layers, d = micro_config.n_layers, micro_config.d_model
    slot = cache.allocate()
    for pos in range(7):
        write_position(slot, n_layers, d, pos, float(pos + 1))
        slot.advance()
    before_k, before_v = (arr.copy() for arr in slot.view(0, 7))
    slot.truncate(3)                       # drops the second page
    for pos in range(3, 7):
        write_position(slot, n_layers, d, pos, float(pos + 1))
        slot.advance()
    after_k, after_v = slot.view(0, 7)
    np.testing.assert_array_equal(after_k, before_k)
    np.testing.assert_array_equal(after_v, before_v)


def test_reappend_onto_kept_shared_page_copies_on_write(micro_config):
    """Truncating into a shared full page keeps it mapped; the next
    append must detach this slot instead of scribbling on the donor."""
    cache = PagedKVCache(micro_config, n_slots=2, max_seq_len=16,
                         page_size=4, n_pages=8)
    n_layers, d = micro_config.n_layers, micro_config.d_model
    donor = cache.allocate()
    for pos in range(8):
        write_position(donor, n_layers, d, pos, float(pos + 1))
        donor.advance()
    fork = cache.fork(donor, 8)
    fork.truncate(5)                       # position 5 lives on shared page 1
    shared_page = fork.page_table[1]
    assert cache.pool.refcount(shared_page) == 2
    write_position(fork, n_layers, d, 5, 99.0)
    fork.advance()
    assert fork.page_table[1] != shared_page         # detached
    assert cache.pool.refcount(shared_page) == 1     # donor keeps it
    donor_keys, _ = donor.view(0, 8)
    np.testing.assert_array_equal(donor_keys[:, 0], np.arange(1.0, 9.0))
    fork_keys, _ = fork.view(0, 6)
    np.testing.assert_array_equal(fork_keys[:, 0],
                                  [1.0, 2.0, 3.0, 4.0, 5.0, 99.0])


def test_truncate_validation_errors(micro_config):
    cache = PagedKVCache(micro_config, n_slots=1, max_seq_len=16,
                         page_size=4, n_pages=4)
    n_layers, d = micro_config.n_layers, micro_config.d_model
    slot = cache.allocate()
    for pos in range(4):
        write_position(slot, n_layers, d, pos, 1.0)
        slot.advance()
    with pytest.raises(ValueError, match="truncate"):
        slot.truncate(5)                   # beyond current length
    with pytest.raises(ValueError, match="truncate"):
        slot.truncate(-1)
    slot.truncate(4)                       # no-op keeps everything
    assert slot.length == 4 and len(slot.page_table) == 1


# -- cross-request prefix cache (LRU page retention) ------------------------


@pytest.mark.parametrize("page_size", [1, 3, 4])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_random_interleavings_with_prefix_cache(micro_config, page_size,
                                                seed):
    """The fork/COW interleaving property, extended with retire/revive.

    ``retire`` releases a slot *with its prompt* (current stamps), so
    eligible prefix pages are parked rather than freed; ``revive`` looks
    up a previously retired prompt and, if a chain is cached, pins it
    into a fresh slot -- whose contents must then equal the stamps the
    retired sequence wrote, bit for bit.  All the shared-pool invariants
    (including ``free + in_use + cached == n_pages``) hold after every
    operation.
    """
    rng = np.random.default_rng(seed)
    max_seq_len = page_size * 6
    cache = PagedKVCache(micro_config, n_slots=N_SLOTS,
                         max_seq_len=max_seq_len, page_size=page_size,
                         n_pages=N_PAGES, cache_pages=N_PAGES // 2)
    n_layers, d = micro_config.n_layers, micro_config.d_model
    live: dict = {}               # slot index -> (slot, expected stamps)
    retired: list = []            # prompts (stamp tuples) seen by the cache
    stamp = 0.0

    for op_index in range(200):
        op = rng.choice(["allocate", "fork", "append", "truncate",
                         "rewrite", "release", "retire", "revive"])
        if op == "allocate":
            max_positions = int(rng.integers(0, max_seq_len + 1))
            if cache.n_free == 0 or \
                    (max_positions and not cache.can_admit(max_positions)):
                with pytest.raises(RuntimeError):
                    cache.allocate(max_positions)
                continue
            slot = cache.allocate(max_positions)
            live[slot.index] = (slot, [])
        elif op == "fork":
            donors = [(s, st) for s, st in live.values() if s.length > 0]
            if not donors:
                continue
            donor, donor_stamps = donors[int(rng.integers(len(donors)))]
            shared = int(rng.integers(1, donor.length + 1))
            max_positions = int(rng.choice([0, shared, max_seq_len]))
            if not cache.can_fork(donor, shared, max_positions):
                with pytest.raises((RuntimeError, ValueError)):
                    cache.fork(donor, shared, max_positions)
                continue
            slot = cache.fork(donor, shared, max_positions)
            live[slot.index] = (slot, list(donor_stamps[:shared]))
        elif op == "append":
            growable = [(s, st) for s, st in live.values()
                        if s.length < max_seq_len]
            if not growable:
                continue
            slot, stamps = growable[int(rng.integers(len(growable)))]
            stamp += 1.0
            try:
                write_position(slot, n_layers, d, slot.length, stamp)
            except RuntimeError:
                continue          # pool exhausted / all free pages reserved
            slot.advance()
            stamps.append(stamp)
        elif op == "truncate":
            if not live:
                continue
            index = int(rng.choice(list(live)))
            slot, stamps = live[index]
            n_keep = int(rng.integers(0, slot.length + 1))
            slot.truncate(n_keep)
            del stamps[n_keep:]
        elif op == "rewrite":
            writable = [(s, st) for s, st in live.values() if s.length > 0]
            if not writable:
                continue
            slot, stamps = writable[int(rng.integers(len(writable)))]
            position = int(rng.integers(slot.length))
            stamp += 1.0
            try:
                write_position(slot, n_layers, d, position, stamp)
            except RuntimeError:
                continue          # COW could not claim an unreserved page
            stamps[position] = stamp
        elif op == "release":
            if not live:
                continue
            index = int(rng.choice(list(live)))
            slot, _ = live.pop(index)
            cache.release(slot)
        elif op == "retire":
            # Release with the prompt: prefix pages get parked.  The
            # "prompt" is the stamps the slot currently holds, so a
            # later revive can be checked against them.
            if not live:
                continue
            index = int(rng.choice(list(live)))
            slot, stamps = live.pop(index)
            prompt = tuple(int(s) for s in stamps)
            cache.release(slot, prompt_ids=prompt)
            if len(prompt) >= page_size + 1:
                retired.append(prompt)
        else:   # revive
            if not retired:
                continue
            prompt = retired[int(rng.integers(len(retired)))]
            pages = cache.prefix_cache.lookup(prompt)
            if not pages:
                continue
            max_positions = int(rng.choice([0, len(pages) * page_size,
                                            max_seq_len]))
            if not cache.can_revive(len(pages), max_positions):
                with pytest.raises((RuntimeError, ValueError)):
                    cache.revive(pages, max_positions)
                continue
            slot = cache.revive(pages, max_positions)
            revived = len(pages) * page_size
            assert slot.length == revived
            # Revived K/V is bit-for-bit what the retired writer parked.
            for layer in range(n_layers):
                keys, values = slot.view(layer, revived)
                expect = np.array([float(t) for t in prompt[:revived]])
                np.testing.assert_array_equal(keys[:, 0], expect)
                np.testing.assert_array_equal(values[:, 0], -expect)
            live[slot.index] = (slot, [float(t) for t in prompt[:revived]])
        check_invariants(cache, live)
        if op_index % 10 == 0:
            check_contents(cache, live, n_layers)

    check_contents(cache, live, n_layers)
    for slot, _ in list(live.values()):
        cache.release(slot)
    live.clear()
    check_invariants(cache, live)
    assert cache.n_pages_in_use == 0
    assert cache.pool._reserved == 0


def test_eviction_under_pressure_never_frees_pinned_pages(micro_config):
    """Filling the pool on top of a populated cache evicts only cached
    pages -- pinned (refcounted) pages and their contents survive."""
    cache = PagedKVCache(micro_config, n_slots=3, max_seq_len=16,
                         page_size=4, n_pages=8, cache_pages=8)
    n_layers, d = micro_config.n_layers, micro_config.d_model
    writer = cache.allocate()
    for pos in range(8):
        write_position(writer, n_layers, d, pos, float(pos + 1))
        writer.advance()
    prompt = tuple(range(1, 9))
    cache.release(writer, prompt_ids=prompt)     # parks both full pages
    assert cache.n_cached_pages == 2

    survivor = cache.allocate()
    for pos in range(8):
        write_position(survivor, n_layers, d, pos, 100.0 + pos)
        survivor.advance()
    # 2 cached + 2 pinned; claim the remaining 6 pages -> the allocator
    # must reclaim both cached pages, never the survivor's.
    hog = cache.allocate()
    for pos in range(16):
        write_position(hog, n_layers, d, pos, 200.0 + pos)
        hog.advance()
    evicting = cache.allocate()
    for pos in range(8):
        write_position(evicting, n_layers, d, pos, 300.0 + pos)
        evicting.advance()
    assert cache.n_cached_pages == 0
    assert cache.prefix_cache.evictions == 2
    assert cache.pool.n_free_pages == 0
    keys, _ = survivor.view(0, 8)
    np.testing.assert_array_equal(keys[:, 0], 100.0 + np.arange(8))
    # The parked prefix is gone -- lookup must now miss, not resurrect
    # freed (since overwritten) pages.
    assert cache.prefix_cache.lookup(prompt) == []
    # Pool exhausted and cache empty: further claims fail loudly.
    extra_slot_cache = cache  # same pool
    with pytest.raises(RuntimeError, match="exhausted"):
        extra_slot_cache.pool._claim_page(reserved=False)


def test_eviction_prefers_deep_pages_of_a_parked_run(micro_config):
    """Budget pressure drops a retired prefix's tail before its head, so
    the widely-shared head of a prefix family stays revivable."""
    cache = PagedKVCache(micro_config, n_slots=2, max_seq_len=16,
                         page_size=4, n_pages=8, cache_pages=2)
    n_layers, d = micro_config.n_layers, micro_config.d_model
    writer = cache.allocate()
    for pos in range(12):
        write_position(writer, n_layers, d, pos, float(pos + 1))
        writer.advance()
    prompt = tuple(range(1, 13))
    cache.release(writer, prompt_ids=prompt)     # 3 full pages, budget 2
    assert cache.n_cached_pages == 2
    pages = cache.prefix_cache.lookup(prompt)
    assert len(pages) == 2                       # head survived, tail evicted


def test_park_is_prefix_closed_past_a_resident_sharer(micro_config):
    """A page still mapped by a resident fork ends the parked run: deeper
    pages are released, not parked unreachable (lookup walks from page 0,
    so an entry behind a gap could never be revived yet would hold cache
    budget)."""
    cache = PagedKVCache(micro_config, n_slots=2, max_seq_len=16,
                         page_size=4, n_pages=8, cache_pages=8)
    n_layers, d = micro_config.n_layers, micro_config.d_model
    donor = cache.allocate()
    for pos in range(12):
        write_position(donor, n_layers, d, pos, float(pos + 1))
        donor.advance()
    holder = cache.fork(donor, 4)          # keeps page 0 mapped
    prompt = tuple(range(1, 13))
    cache.release(donor, prompt_ids=prompt)
    # Page 0 is still the holder's; pages 1 and 2 would be unreachable
    # behind the gap, so nothing may be parked.
    assert cache.n_cached_pages == 0
    assert len(cache.prefix_cache) == 0
    assert cache.prefix_cache.lookup(prompt) == []
    check_invariants(cache, {holder.index: (holder, [1.0, 2.0, 3.0, 4.0])})
    # When the holder itself retires, its (shorter) prefix parks fine.
    cache.release(holder, prompt_ids=prompt[:4])
    # holder held 4 positions = 1 full page -> lookup caps at 0 pages of
    # a 4-token prompt... but the page itself is parked for longer twins.
    assert cache.n_cached_pages == 1
    pages = cache.prefix_cache.lookup(prompt)
    assert len(pages) == 1                 # head revivable again


def test_duplicate_park_refreshes_chain_head_recency(micro_config):
    """A later retirement extending an already-cached prefix must leave
    the shared head *newer* in LRU order than its own tail, so eviction
    breaks the chain tail-first (a head aged out before its tail would
    strand unreachable entries in the budget)."""
    cache = PagedKVCache(micro_config, n_slots=1, max_seq_len=16,
                         page_size=4, n_pages=16, cache_pages=8)
    n_layers, d = micro_config.n_layers, micro_config.d_model
    prompt = tuple(range(1, 13))
    first = cache.allocate()
    for pos in range(4):
        write_position(first, n_layers, d, pos, float(pos + 1))
        first.advance()
    cache.release(first, prompt_ids=prompt[:4])      # parks the head page
    second = cache.allocate()
    for pos in range(12):
        write_position(second, n_layers, d, pos, float(pos + 1))
        second.advance()
    cache.release(second, prompt_ids=prompt)         # extends the chain
    assert cache.n_cached_pages == 3
    # One eviction must shed the *deepest* page, not the (older) head.
    cache.prefix_cache.evict_lru()
    pages = cache.prefix_cache.lookup(prompt)
    assert len(pages) == 2                           # chain 0..1 intact
    cache.prefix_cache.evict_lru()
    assert len(cache.prefix_cache.lookup(prompt)) == 1
    check_invariants(cache, {})


def test_revive_reserves_only_beyond_the_chain(micro_config):
    cache = PagedKVCache(micro_config, n_slots=2, max_seq_len=32,
                         page_size=4, n_pages=10, cache_pages=4)
    n_layers, d = micro_config.n_layers, micro_config.d_model
    writer = cache.allocate()
    for pos in range(8):
        write_position(writer, n_layers, d, pos, float(pos + 1))
        writer.advance()
    cache.release(writer, prompt_ids=tuple(range(1, 9)))
    assert cache.n_cached_pages == 2
    assert cache.revive_page_demand(2, 16) == 2      # 4 total - 2 revived
    pages = cache.prefix_cache.lookup(tuple(range(1, 9)) + (7, 7, 7))
    assert len(pages) == 2
    slot = cache.revive(pages, max_positions=16)
    assert slot.length == 8
    assert cache.pool._reserved == 2
    assert cache.n_cached_pages == 0
    cache.release(slot)
    assert cache.pool._reserved == 0


def test_revive_validation_errors(micro_config):
    plain = PagedKVCache(micro_config, n_slots=1, max_seq_len=16,
                         page_size=4, n_pages=4)
    with pytest.raises(RuntimeError, match="cannot revive"):
        plain.revive([0])
    cached = PagedKVCache(micro_config, n_slots=1, max_seq_len=16,
                          page_size=4, n_pages=8, cache_pages=2)
    with pytest.raises(ValueError, match="at least one cached page"):
        cached.revive([])
    n_layers, d = micro_config.n_layers, micro_config.d_model
    writer = cached.allocate()
    for pos in range(8):
        write_position(writer, n_layers, d, pos, float(pos + 1))
        writer.advance()
    cached.release(writer, prompt_ids=tuple(range(1, 9)))
    pages = cached.prefix_cache.lookup(tuple(range(1, 9)) + (3,))
    with pytest.raises(ValueError, match="below the revived"):
        cached.revive(pages, max_positions=4)


def test_cache_pages_zero_changes_nothing(micro_config):
    """``cache_pages=0`` must release exactly as the pre-cache code."""
    cache = PagedKVCache(micro_config, n_slots=1, max_seq_len=16,
                         page_size=4, n_pages=4)
    assert cache.prefix_cache is None
    n_layers, d = micro_config.n_layers, micro_config.d_model
    slot = cache.allocate()
    for pos in range(8):
        write_position(slot, n_layers, d, pos, 1.0)
        slot.advance()
    cache.release(slot, prompt_ids=tuple(range(8)))   # prompt is ignored
    assert cache.n_cached_pages == 0
    assert cache.pool.n_free_pages == 4
    assert cache.find_cached_prefix(tuple(range(8))) == ([], 0)

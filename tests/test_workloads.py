"""Tests for the synthetic task generators (ground-truth correctness)."""

import numpy as np
import pytest

from repro.workloads import bbh_like, gsm8k_like
from repro.workloads.fewshot import build_fewshot_prompt, fewshot_set


def arith_chain(expr: str) -> str:
    """Independent reference evaluator: running partial sums mod 10."""
    import re

    tokens = re.findall(r"[+-]?\d", expr)
    value = int(tokens[0])
    partials = []
    for tok in tokens[1:]:
        value = (value + int(tok)) % 10
        partials.append(str(value))
    return "".join(partials)


class TestGsm8kLike:
    def test_answers_are_correct(self):
        for s in gsm8k_like.generate(100, seed=3):
            expr = s.prompt[len("Q:"):-len("=A:")]
            assert s.answer == arith_chain(expr), s.prompt

    def test_final_digit_matches_full_expression(self):
        for s in gsm8k_like.generate(50, seed=4):
            expr = s.prompt[len("Q:"):-len("=A:")]
            assert int(s.answer[-1]) == eval(expr) % 10  # noqa: S307

    def test_deterministic(self):
        a = gsm8k_like.generate(10, seed=5)
        b = gsm8k_like.generate(10, seed=5)
        assert [s.text for s in a] == [s.text for s in b]

    def test_seeds_differ(self):
        a = gsm8k_like.generate(10, seed=1)
        b = gsm8k_like.generate(10, seed=2)
        assert [s.text for s in a] != [s.text for s in b]

    def test_alphabet_covers_samples(self):
        allowed = set(gsm8k_like.ALPHABET)
        for s in gsm8k_like.generate(50, seed=0, n_terms=4):
            assert set(s.text) <= allowed

    def test_answer_length_is_terms_minus_one(self):
        for s in gsm8k_like.generate(50, seed=0, n_terms=4):
            assert len(s.answer) == 3 and s.answer.isdigit()

    def test_n_terms_respected(self):
        s = gsm8k_like.make_problem(np.random.default_rng(0), n_terms=5)
        digits = [c for c in s.prompt if c.isdigit()]
        assert len(digits) == 5

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            gsm8k_like.generate(0)
        with pytest.raises(ValueError):
            gsm8k_like.make_problem(np.random.default_rng(0), n_terms=1)


class TestBbhLike:
    def test_answers_are_correct(self):
        for s in bbh_like.generate(100, seed=7):
            expr = s.prompt[len("Q:"):-len("=A:")]
            assert s.answer == _left_to_right_chain(expr), s.prompt

    def test_deterministic(self):
        a = bbh_like.generate(8, seed=9)
        b = bbh_like.generate(8, seed=9)
        assert [s.text for s in a] == [s.text for s in b]

    def test_alphabet_covers_samples(self):
        allowed = set(bbh_like.ALPHABET)
        for s in bbh_like.generate(50, seed=0, n_terms=4):
            assert set(s.text) <= allowed

    def test_answers_boolean_chain(self):
        for s in bbh_like.generate(30, seed=0, n_terms=3):
            assert len(s.answer) == 3
            assert set(s.answer) <= {"T", "F"}


def _left_to_right_chain(expr: str) -> str:
    """Reference evaluator: strict left-to-right with prefix !, emitting
    the resolved first term and every running result."""
    tokens = []
    i = 0
    while i < len(expr):
        if expr[i] == "!":
            tokens.append(("val", expr[i + 1] == "T", True))
            i += 2
        elif expr[i] in "TF":
            tokens.append(("val", expr[i] == "T", False))
            i += 1
        else:
            tokens.append(("op", expr[i], False))
            i += 1
    acc = None
    pending_op = None
    chain = []
    for kind, value, negated in tokens:
        if kind == "val":
            v = (not value) if negated else value
            if acc is None:
                acc = v
            elif pending_op == "&":
                acc = acc and v
            else:
                acc = acc or v
            chain.append(acc)
        else:
            pending_op = value
    return "".join("T" if v else "F" for v in chain)


class TestFewShot:
    def test_prompt_carries_exemplars(self):
        exemplars = gsm8k_like.generate(2, seed=1)
        test = gsm8k_like.generate(1, seed=2)[0]
        fs = build_fewshot_prompt(exemplars, test)
        assert fs.prompt.endswith(test.prompt)
        assert exemplars[0].text in fs.prompt
        assert fs.answer == test.answer

    def test_fewshot_set_disjoint_seeds(self):
        samples = fewshot_set(gsm8k_like.generate, 5, n_shots=3, seed=0)
        assert len(samples) == 5
        # Every prompt shares the same 3-exemplar prefix.
        prefix = samples[0].prompt[: samples[0].prompt.index("Q:", 1)]
        assert all(s.prompt.startswith(prefix) for s in samples)

    def test_zero_shots(self):
        samples = fewshot_set(gsm8k_like.generate, 3, n_shots=0, seed=0)
        plain = gsm8k_like.generate(3, seed=0)
        assert [s.prompt for s in samples] == [p.prompt for p in plain]

    def test_negative_shots_rejected(self):
        with pytest.raises(ValueError):
            fewshot_set(gsm8k_like.generate, 3, n_shots=-1)

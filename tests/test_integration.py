"""End-to-end integration tests across substrates.

These exercise whole pipelines: train -> export -> sparse decode,
trace -> DejaVu -> PowerInfer, quantise -> predict, and the full
SparseInfer protocol invariants on a trained network.
"""

import numpy as np
import pytest

from repro.core.engine import SparseInferSettings, build_engine, dense_engine
from repro.eval.harness import evaluate
from repro.model.config import ModelConfig
from repro.model.inference import InferenceModel
from repro.model.tokenizer import CharTokenizer
from repro.train.data import batches_from_task
from repro.train.lm import TrainableLM
from repro.train.trainer import TrainSettings, train
from repro.workloads import gsm8k_like


@pytest.fixture(scope="module")
def trained_setup():
    """A briefly-trained ReLU-fied model plus its tokenizer."""
    tok = CharTokenizer(gsm8k_like.ALPHABET)
    cfg = ModelConfig(
        name="integration", vocab_size=tok.vocab_size, d_model=64,
        n_layers=2, n_heads=2, d_ff=96, max_seq_len=64, dtype_bytes=4,
    )
    batches = batches_from_task(
        gsm8k_like.generate, tok, n_batches=4, batch_size=16, seed=0
    )
    model = TrainableLM(cfg, seed=0)
    train(model, batches, TrainSettings(steps=80, lr=5e-3, l1_peak=5e-3))
    return model.export_weights(), tok


class TestTrainedPipeline:
    def test_training_induced_gate_sparsity(self, trained_setup):
        """ProSparse L1 must push gate sparsity well above random init."""
        weights, tok = trained_setup
        engine = InferenceModel(weights, trace_mlp_inputs=True)
        engine.generate(tok.encode("Q:1+2+3=A:", add_bos=True), 3)
        sparsity = np.mean(
            [np.mean(t.gate_preact <= 0) for t in engine.traces]
        )
        assert sparsity > 0.6

    def test_sparse_engine_tracks_dense_closely(self, trained_setup):
        """On a trained sparse model, SparseInfer decoding should agree
        with dense decoding for most prompts at alpha=1."""
        weights, tok = trained_setup
        sparse = build_engine(weights, SparseInferSettings(alpha=1.0))
        dense = dense_engine(weights)
        samples = gsm8k_like.generate(12, seed=99)
        agree = 0
        for s in samples:
            ids = tok.encode(s.prompt, add_bos=True)
            if (sparse.generate(ids, 4).generated_ids
                    == dense.generate(ids, 4).generated_ids):
                agree += 1
        assert agree >= 9  # >= 75% exact agreement

    def test_predictor_precision_on_trained_model(self, trained_setup):
        """Sign prediction precision should be high on a genuinely
        ProSparse-regularised network."""
        from repro.eval.precision_recall import quality_from_traces

        weights, tok = trained_setup
        engine = InferenceModel(weights, trace_mlp_inputs=True)
        for s in gsm8k_like.generate(4, seed=5):
            engine.reset()
            engine.generate(tok.encode(s.prompt, add_bos=True), 3)
        points = quality_from_traces(engine.traces, weights.gate_matrices())
        assert np.mean([p.precision for p in points]) > 0.9

    def test_alpha_monotone_skip_on_trained_model(self, trained_setup):
        weights, tok = trained_setup
        prompt = tok.encode("Q:5-3+1=A:", add_bos=True)
        fracs = []
        for alpha in (0.9, 1.0, 1.2):
            engine = build_engine(weights, SparseInferSettings(alpha=alpha))
            engine.generate(prompt, 3)
            fracs.append(engine.mlp.stats.gate_skip_fraction)
        assert fracs[0] >= fracs[1] >= fracs[2]

    def test_harness_scores_trained_model(self, trained_setup):
        weights, tok = trained_setup
        result = evaluate(
            dense_engine(weights), tok, gsm8k_like.generate(10, seed=1),
            task="gsm",
        )
        assert result.n_samples == 10


class TestTraceToDejaVuPipeline:
    def test_full_powerinfer_flow(self, trained_setup):
        """Trace collection -> DejaVu training -> PowerInfer decoding."""
        from repro.baselines.dejavu import (
            DejaVuTrainConfig,
            train_dejavu_predictor,
        )
        from repro.baselines.powerinfer import build_powerinfer_engine

        weights, tok = trained_setup
        tracer = InferenceModel(weights, trace_mlp_inputs=True)
        for s in gsm8k_like.generate(6, seed=3):
            tracer.reset()
            tracer.generate(tok.encode(s.prompt, add_bos=True), 3)
        predictor = train_dejavu_predictor(
            tracer.traces, weights.config.n_layers,
            DejaVuTrainConfig(rank=8, steps=80), seed=0,
        )
        engine = build_powerinfer_engine(weights, predictor)
        out = engine.generate(tok.encode("Q:2+2+2=A:", add_bos=True), 3)
        assert len(out.generated_ids) <= 3
        assert engine.mlp.stats.gate_skip_fraction > 0.2

    def test_dejavu_memory_exceeds_sparseinfer(self, trained_setup):
        """Even at tiny scale, the trained predictor's FP16 footprint
        exceeds the packed sign bits (paper: 4.38x at 13B)."""
        from repro.baselines.dejavu import (
            DejaVuTrainConfig,
            train_dejavu_predictor,
        )
        from repro.core.predictor import SparseInferPredictor

        weights, tok = trained_setup
        tracer = InferenceModel(weights, trace_mlp_inputs=True)
        tracer.generate(tok.encode("Q:1+1=A:", add_bos=True), 2)
        dejavu = train_dejavu_predictor(
            tracer.traces, weights.config.n_layers,
            DejaVuTrainConfig(rank=16, steps=5), seed=0,
        )
        signs = SparseInferPredictor.from_gate_weights(
            weights.gate_matrices()
        )
        assert dejavu.nbytes > signs.nbytes


class TestQuantisedPredictionPipeline:
    def test_int8_predictor_state_runs_engine(self, trained_setup):
        """Predictor state built from INT8 weights drives the engine to
        the same generations as FP32 state (robustness claim, IV-A)."""
        from repro.core.predictor import SparseInferPredictor
        from repro.core.signpack import PackedSigns
        from repro.quant.int8 import quantize_int8
        from repro.quant.signbits import packed_signs_from

        weights, tok = trained_setup
        fp32_pred = SparseInferPredictor.from_gate_weights(
            weights.gate_matrices()
        )
        int8_packed = [
            packed_signs_from(quantize_int8(w))
            for w in weights.gate_matrices()
        ]
        int8_pred = SparseInferPredictor(int8_packed)

        prompt = tok.encode("Q:4+4-4=A:", add_bos=True)
        eng_a = build_engine(weights, predictor=fp32_pred)
        eng_b = build_engine(weights, predictor=int8_pred)
        ga = eng_a.generate(prompt, 4).generated_ids
        gb = eng_b.generate(prompt, 4).generated_ids
        assert ga == gb

"""Tests for ``repro.analysis``, the AST invariant linter.

Three layers of coverage:

* **per-rule fixtures** -- each rule gets a must-fire tree (a synthetic
  violation it has to flag) and a must-not-fire tree (the idioms the
  repo actually uses, which must stay clean);
* **framework round-trips** -- inline suppressions, the baseline file,
  and the CLI exit codes;
* **acceptance gates** -- the analyzer is clean on this checkout, and
  deleting a knob/field row from a *temporary copy* of
  ``docs/serving.md`` makes the docs rules fire (the property
  ``scripts/check.sh`` relies on).
"""

import shutil
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    Baseline,
    DocsKnobsRule,
    Project,
    RngPurityRule,
    ScalarLoopRule,
    SlotPairingRule,
    TelemetryDocsRule,
    default_rules,
    run_analysis,
)
from repro.analysis.__main__ import main

REPO_ROOT = Path(__file__).resolve().parents[1]


def make_tree(tmp_path, files):
    """Write ``{relpath: source}`` under ``tmp_path`` and return it."""
    for relpath, source in files.items():
        p = tmp_path / relpath
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(textwrap.dedent(source), encoding="utf-8")
    return tmp_path


def findings_of(report, rule_id):
    return [f for f in report.findings if f.rule == rule_id]


# ---------------------------------------------------------------------------
# rng-purity


class TestRngPurityRule:
    def test_must_fire_on_unseeded_rng_and_wall_clock(self, tmp_path):
        root = make_tree(tmp_path, {
            "src/repro/model/bad.py": """
                import random
                import time

                import numpy as np
                from numpy.random import randint

                def sample():
                    a = np.random.rand(3)
                    b = np.random.default_rng()
                    c = random.random()
                    t = time.time()
                    return a, b, c, t
            """,
        })
        report = run_analysis(root, [RngPurityRule()])
        details = {f.fingerprint.rsplit("::", 1)[1]
                   for f in findings_of(report, "rng-purity")}
        assert "np.random.rand" in details
        assert "np.random.default_rng" in details
        assert "random.random" in details
        assert "time.time" in details
        assert "import:randint" in details

    def test_must_not_fire_on_seeded_rng_and_perf_counter(self, tmp_path):
        root = make_tree(tmp_path, {
            "src/repro/model/good.py": """
                import time

                import numpy as np

                def sample(rng: np.random.Generator):
                    t0 = time.perf_counter()
                    rng2 = np.random.default_rng(1234)
                    x = rng.normal(size=3) + rng2.normal(size=3)
                    return x, time.perf_counter() - t0
            """,
        })
        report = run_analysis(root, [RngPurityRule()])
        assert report.clean

    def test_wall_clock_allowed_outside_engine_paths(self, tmp_path):
        # benchmarks/ may stamp wall-clock times into result JSON; only
        # unseeded RNG is forbidden there.
        root = make_tree(tmp_path, {
            "benchmarks/bench.py": """
                import time

                def stamp():
                    return time.time()
            """,
        })
        report = run_analysis(root, [RngPurityRule()])
        assert report.clean

    def test_numpy_alias_is_tracked(self, tmp_path):
        root = make_tree(tmp_path, {
            "src/repro/model/aliased.py": """
                import numpy as xp

                def draw():
                    return xp.random.standard_normal(4)
            """,
        })
        report = run_analysis(root, [RngPurityRule()])
        assert len(findings_of(report, "rng-purity")) == 1


# ---------------------------------------------------------------------------
# slot-pairing


class TestSlotPairingRule:
    def test_must_fire_on_each_violation_shape(self, tmp_path):
        root = make_tree(tmp_path, {
            "src/repro/serving/bad.py": """
                class S:
                    def leaks_on_exit(self):
                        slot = self.engine.allocate_slot()
                        self.counter += 1

                    def discards_handle(self):
                        self.engine.allocate_slot()

                    def leaks_on_exception(self, prompt):
                        slot = self.engine.allocate_slot()
                        logits = self.engine.prefill(slot, prompt)
                        self.engine.release_slot(slot)
                        return logits

                    def releases_twice(self):
                        slot = self.engine.allocate_slot()
                        self.engine.release_slot(slot)
                        self.engine.release_slot(slot)
            """,
        })
        report = run_analysis(root, [SlotPairingRule()])
        kinds = {f.fingerprint.rsplit("::", 1)[1].split(":", 1)[0]
                 for f in findings_of(report, "slot-pairing")}
        assert kinds == {"leak", "discard", "exception-path",
                         "double-release"}

    def test_must_not_fire_on_repo_idioms(self, tmp_path):
        root = make_tree(tmp_path, {
            "src/repro/serving/good.py": """
                class S:
                    def admit(self, prompt):
                        slot = self.engine.allocate_slot()
                        try:
                            logits = self.engine.prefill(slot, prompt)
                        except BaseException:
                            self.engine.release_slot(slot)
                            raise
                        seq = _ActiveSequence(slot=slot, logits=logits)
                        self.active.append(seq)
                        return logits

                    def transfer_to_caller(self, n):
                        return self.pool.allocate(n)

                    def finally_guard(self):
                        slot = self.engine.fork_slot(0)
                        try:
                            out = self.engine.decode_step([slot], [1])
                        finally:
                            self.engine.release_slot(slot)
                        return out

                    def branchy_release(self, keep):
                        slot = self.engine.revive_slot(0)
                        if keep:
                            self.residents.append(slot)
                        else:
                            self.engine.release_slot(slot)
            """,
        })
        report = run_analysis(root, [SlotPairingRule()])
        assert report.clean, [f.render() for f in report.findings]

    def test_out_of_scope_files_are_ignored(self, tmp_path):
        root = make_tree(tmp_path, {
            "src/repro/eval/not_serving.py": """
                def leak(engine):
                    slot = engine.allocate_slot()
            """,
        })
        report = run_analysis(root, [SlotPairingRule()])
        assert report.clean


# ---------------------------------------------------------------------------
# scalar-loop


HOT_REGISTRY = {
    ("src/repro/serving/hot.py", "Eng.decode"): frozenset({"slots"}),
}


class TestScalarLoopRule:
    def test_must_fire_on_batch_loop_with_real_work(self, tmp_path):
        root = make_tree(tmp_path, {
            "src/repro/serving/hot.py": """
                class Eng:
                    def decode(self, slots):
                        for slot in slots:
                            self.model.forward(slot)
            """,
        })
        report = run_analysis(root, [ScalarLoopRule(registry=HOT_REGISTRY)])
        found = findings_of(report, "scalar-loop")
        assert len(found) == 1
        assert "slots" in found[0].message

    def test_must_not_fire_on_comprehensions_or_cheap_bodies(self, tmp_path):
        root = make_tree(tmp_path, {
            "src/repro/serving/hot.py": """
                class Eng:
                    def decode(self, slots):
                        ids = [s.slot_id for s in slots]
                        for slot in slots:
                            slot.advance()
                        for k in range(self.n_layers):
                            self.model.forward_layer(k, ids)
                        return ids
            """,
        })
        report = run_analysis(root, [ScalarLoopRule(registry=HOT_REGISTRY)])
        assert report.clean, [f.render() for f in report.findings]

    def test_registry_staleness_is_a_finding(self, tmp_path):
        root = make_tree(tmp_path, {
            "src/repro/serving/hot.py": """
                class Eng:
                    def renamed(self, slots):
                        return slots
            """,
        })
        report = run_analysis(root, [ScalarLoopRule(registry=HOT_REGISTRY)])
        found = findings_of(report, "scalar-loop")
        assert len(found) == 1
        assert "no longer exists" in found[0].message

    def test_default_registry_targets_exist_in_repo(self):
        # The real registry must never rot: every registered hot
        # function resolves on this checkout (missing ones would fire).
        project = Project(REPO_ROOT)
        rule = ScalarLoopRule()
        staleness = [
            f for f in rule.check(project)
            if "registry" in f.fingerprint.rsplit("::", 1)[1]
            or "missing" in f.fingerprint.rsplit("::", 1)[1]
        ]
        assert staleness == []


# ---------------------------------------------------------------------------
# telemetry-docs


class TestTelemetryDocsRule:
    def test_must_fire_on_undocumented_and_unused_field(self, tmp_path):
        root = make_tree(tmp_path, {
            "src/repro/serving/scheduler.py": """
                from dataclasses import dataclass

                @dataclass
                class ServeReport:
                    decode_steps: int = 0
                    mystery_gauge: float = 0.0
                    _private: int = 0
            """,
            "docs/serving.md": "| `decode_steps` | ticks |\n",
            "src/repro/eval/reporting.py": "KEY = 'decode_steps'\n",
        })
        report = run_analysis(root, [TelemetryDocsRule()])
        details = {f.fingerprint.rsplit("::", 1)[1]
                   for f in findings_of(report, "telemetry-docs")}
        # Both halves fire for the phantom field, neither for the
        # documented+used one, and the private field is ignored.
        assert details == {"docs:mystery_gauge", "usage:mystery_gauge"}

    def test_word_boundary_matching(self, tmp_path):
        # ``decode_steps_total`` must not count as a use of
        # ``decode_steps``.
        root = make_tree(tmp_path, {
            "src/repro/serving/scheduler.py": """
                from dataclasses import dataclass

                @dataclass
                class ServeReport:
                    decode_steps: int = 0
            """,
            "docs/serving.md": "| `decode_steps` | ticks |\n",
            "src/repro/eval/reporting.py": "KEY = 'decode_steps_total'\n",
        })
        report = run_analysis(root, [TelemetryDocsRule()])
        details = {f.fingerprint.rsplit("::", 1)[1]
                   for f in findings_of(report, "telemetry-docs")}
        assert details == {"usage:decode_steps"}

    def test_missing_report_class_is_a_finding(self, tmp_path):
        root = make_tree(tmp_path, {
            "src/repro/serving/scheduler.py": "X = 1\n",
            "docs/serving.md": "",
        })
        report = run_analysis(root, [TelemetryDocsRule()])
        assert any("not found" in f.message
                   for f in findings_of(report, "telemetry-docs"))


# ---------------------------------------------------------------------------
# docs-knobs


class TestDocsKnobsRule:
    SOURCES = (("src/repro/core/engine.py", "build_batched_engine"),)

    def test_must_fire_on_undocumented_knob(self, tmp_path):
        root = make_tree(tmp_path, {
            "src/repro/core/engine.py": """
                def build_batched_engine(weights, page_size=16,
                                         new_knob=False):
                    pass
            """,
            "docs/serving.md": "`weights` and `page_size` are documented.\n",
        })
        report = run_analysis(root, [DocsKnobsRule(sources=self.SOURCES)])
        details = {f.fingerprint.rsplit("::", 1)[1]
                   for f in findings_of(report, "docs-knobs")}
        assert details == {"knob:new_knob"}

    def test_renamed_function_is_a_finding(self, tmp_path):
        root = make_tree(tmp_path, {
            "src/repro/core/engine.py": "def something_else():\n    pass\n",
            "docs/serving.md": "",
        })
        report = run_analysis(root, [DocsKnobsRule(sources=self.SOURCES)])
        assert any("not found" in f.message
                   for f in findings_of(report, "docs-knobs"))


# ---------------------------------------------------------------------------
# suppressions and baseline


class TestSuppressions:
    def _report(self, tmp_path, source):
        root = make_tree(
            tmp_path, {"src/repro/model/s.py": source}
        )
        return run_analysis(root, [RngPurityRule()])

    def test_same_line_and_line_above(self, tmp_path):
        report = self._report(tmp_path, """
            import numpy as np

            a = np.random.rand(3)  # repro: ignore[rng-purity]
            # repro: ignore[rng-purity] -- seeded by the harness
            b = np.random.rand(3)
            c = np.random.rand(3)
        """)
        assert len(report.findings) == 1          # only ``c``
        assert len(report.suppressed) == 2

    def test_bare_ignore_suppresses_all_rules(self, tmp_path):
        report = self._report(tmp_path, """
            import numpy as np

            a = np.random.rand(3)  # repro: ignore
        """)
        assert report.clean and len(report.suppressed) == 1

    def test_wrong_rule_id_does_not_suppress(self, tmp_path):
        report = self._report(tmp_path, """
            import numpy as np

            a = np.random.rand(3)  # repro: ignore[scalar-loop]
        """)
        assert len(report.findings) == 1

    def test_comment_two_lines_above_does_not_suppress(self, tmp_path):
        report = self._report(tmp_path, """
            import numpy as np

            # repro: ignore[rng-purity]

            a = np.random.rand(3)
        """)
        assert len(report.findings) == 1


class TestBaseline:
    def test_round_trip_accepts_and_goes_stale(self, tmp_path):
        root = make_tree(tmp_path, {
            "src/repro/model/b.py": """
                import numpy as np

                a = np.random.rand(3)
            """,
        })
        first = run_analysis(root, [RngPurityRule()])
        assert len(first.findings) == 1
        fingerprint = first.findings[0].fingerprint

        path = root / "analysis_baseline.txt"
        path.write_text(
            Baseline(entries={fingerprint: "accepted for the test"}).render(),
            encoding="utf-8",
        )
        loaded = Baseline.load(path)
        assert loaded.entries == {fingerprint: "accepted for the test"}

        second = run_analysis(root, [RngPurityRule()], baseline=loaded)
        assert second.clean
        assert [f.fingerprint for f in second.baselined] == [fingerprint]
        assert second.stale_baseline == []

        # Fix the violation: the entry must be reported stale, not
        # silently retained.
        (root / "src/repro/model/b.py").write_text(
            "import numpy as np\n", encoding="utf-8"
        )
        third = run_analysis(root, [RngPurityRule()], baseline=loaded)
        assert third.clean
        assert third.stale_baseline == [fingerprint]

    def test_fingerprint_survives_unrelated_edits(self, tmp_path):
        src = "import numpy as np\n\ndef f():\n    return np.random.rand()\n"
        root = make_tree(tmp_path, {"src/repro/model/b.py": src})
        before = run_analysis(root, [RngPurityRule()]).findings[0]
        (root / "src/repro/model/b.py").write_text(
            "import numpy as np\n\nPAD = 1\n\n\ndef f():\n"
            "    return np.random.rand()\n",
            encoding="utf-8",
        )
        after = run_analysis(root, [RngPurityRule()]).findings[0]
        assert before.fingerprint == after.fingerprint
        assert before.line != after.line


# ---------------------------------------------------------------------------
# CLI


class TestCli:
    def test_exit_codes(self, tmp_path):
        # Synthetic trees lack the repo files the docs/registry rules
        # expect, so exit-code checks run the self-contained rng rule.
        clean = make_tree(tmp_path / "clean", {
            "src/repro/model/ok.py": "X = 1\n",
        })
        assert main(["--root", str(clean), "--rules", "rng-purity"]) == 0

        dirty = make_tree(tmp_path / "dirty", {
            "src/repro/model/bad.py":
                "import numpy as np\n\na = np.random.rand(3)\n",
        })
        assert main(["--root", str(dirty), "--rules", "rng-purity"]) == 1
        assert main(["--root", str(dirty), "--rules", "bogus"]) == 2
        assert main(["--root", str(tmp_path / "missing-dir")]) == 2

    def test_rule_subset_and_list(self, tmp_path, capsys):
        dirty = make_tree(tmp_path, {
            "src/repro/model/bad.py":
                "import numpy as np\n\na = np.random.rand(3)\n",
        })
        # The violation is rng-purity; running only slot-pairing is clean.
        assert main(["--root", str(dirty), "--rules", "slot-pairing"]) == 0
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in default_rules():
            assert rule.rule_id in out

    def test_write_baseline_round_trip(self, tmp_path, capsys):
        dirty = make_tree(tmp_path, {
            "src/repro/model/bad.py":
                "import numpy as np\n\na = np.random.rand(3)\n",
        })
        assert main(["--root", str(dirty)]) == 1
        assert main(["--root", str(dirty), "--write-baseline"]) == 0
        baseline = (dirty / "analysis_baseline.txt").read_text()
        assert "TODO: justify" in baseline
        # Accepted now; --no-baseline resurfaces it.
        assert main(["--root", str(dirty)]) == 0
        assert main(["--root", str(dirty), "--no-baseline"]) == 1
        capsys.readouterr()

    def test_syntax_error_is_a_finding_not_a_crash(self, tmp_path, capsys):
        broken = make_tree(tmp_path, {
            "src/repro/model/broken.py": "def f(:\n",
        })
        assert main(["--root", str(broken)]) == 1
        assert "syntax-error" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# acceptance gates on the real checkout


class TestRepoAcceptance:
    def test_analyzer_is_clean_on_this_checkout(self, capsys):
        """The self-clean gate check.sh runs: exit 0 on the repo."""
        assert main(["--root", str(REPO_ROOT)]) == 0
        capsys.readouterr()

    def _doc_edit_tree(self, tmp_path):
        """A minimal copy of the checkout the docs rules read."""
        for rel in (
            "src/repro/core/engine.py",
            "src/repro/serving/scheduler.py",
            "src/repro/eval/reporting.py",
            "docs/serving.md",
        ):
            dst = tmp_path / rel
            dst.parent.mkdir(parents=True, exist_ok=True)
            shutil.copyfile(REPO_ROOT / rel, dst)
        # A tests/ stub that mentions every ServeReport field (the real
        # scheduler source does), so only the *docs* half can fire.
        tests_dir = tmp_path / "tests"
        tests_dir.mkdir()
        shutil.copyfile(
            REPO_ROOT / "src/repro/serving/scheduler.py",
            tests_dir / "test_stub.py",
        )
        return tmp_path

    DOC_RULES = (TelemetryDocsRule, DocsKnobsRule)

    def _run_doc_rules(self, root):
        return run_analysis(root, [cls() for cls in self.DOC_RULES])

    def test_doc_tree_copy_is_clean_before_edits(self, tmp_path):
        root = self._doc_edit_tree(tmp_path)
        report = self._run_doc_rules(root)
        assert report.clean, [f.render() for f in report.findings]

    def test_removing_a_knob_row_fails_the_gate(self, tmp_path):
        root = self._doc_edit_tree(tmp_path)
        doc = root / "docs/serving.md"
        doc.write_text(
            doc.read_text(encoding="utf-8").replace("`page_size`",
                                                    "`page_zzz`"),
            encoding="utf-8",
        )
        report = self._run_doc_rules(root)
        details = {f.fingerprint.rsplit("::", 1)[1]
                   for f in findings_of(report, "docs-knobs")}
        assert "knob:page_size" in details

    def test_removing_a_telemetry_row_fails_the_gate(self, tmp_path):
        root = self._doc_edit_tree(tmp_path)
        doc = root / "docs/serving.md"
        doc.write_text(
            doc.read_text(encoding="utf-8").replace("`decode_seconds`",
                                                    "`decode_zzz`"),
            encoding="utf-8",
        )
        report = self._run_doc_rules(root)
        details = {f.fingerprint.rsplit("::", 1)[1]
                   for f in findings_of(report, "telemetry-docs")}
        assert "docs:decode_seconds" in details

    def test_check_sh_runs_the_analyzer(self):
        """check.sh replaced its docs heredoc with the linter."""
        script = (REPO_ROOT / "scripts/check.sh").read_text(encoding="utf-8")
        assert "python -m repro.analysis" in script
        assert "inspect.signature" not in script

    def test_baseline_entries_all_match_current_findings(self):
        """No stale baseline entries on this checkout, and every entry
        carries a human justification (no TODO markers)."""
        baseline = Baseline.load(REPO_ROOT / "analysis_baseline.txt")
        assert baseline.entries, "expected the accepted _forward_chunk entry"
        for fingerprint, justification in baseline.entries.items():
            assert justification and "TODO" not in justification, fingerprint
        report = run_analysis(REPO_ROOT, default_rules(), baseline=baseline)
        assert report.stale_baseline == []
        # ROADMAP item 5's per-sequence argmax loop was *fixed* in PR 8
        # (batched sampling), not suppressed: its baseline entry must
        # stay deleted.  Re-adding it would mean the scalar loop grew
        # back and someone baselined it instead of vectorising.
        roadmap_entries = [
            fp for fp in baseline.entries
            if "ContinuousBatchingScheduler.step" in fp
        ]
        assert not roadmap_entries, (
            "the scheduler argmax scalar-loop was fixed in PR 8; "
            "vectorise the regression instead of re-baselining it"
        )

"""Tests for config, tokenizer, norm, rope, KV cache and weights."""

import numpy as np
import pytest

from repro.model.config import (
    ModelConfig,
    prosparse_llama2_7b,
    prosparse_llama2_13b,
    tiny_7b_role,
)
from repro.model.kvcache import KVCache
from repro.model.norm import rmsnorm
from repro.model.rope import apply_rope, rope_tables
from repro.model.tokenizer import CharTokenizer
from repro.model.weights import ModelWeights, random_weights


class TestModelConfig:
    def test_paper_13b_dimensions(self):
        cfg = prosparse_llama2_13b()
        assert cfg.d_model == 5120
        assert cfg.d_ff == 13824
        assert cfg.n_layers == 40

    def test_paper_7b_dimensions(self):
        cfg = prosparse_llama2_7b()
        assert cfg.d_model == 4096
        assert cfg.d_ff == 11008
        assert cfg.n_layers == 32

    def test_param_counts(self):
        cfg = prosparse_llama2_13b()
        # MLP per layer: 3 * 5120 * 13824 = 2.123e8 params (Table I basis).
        assert cfg.mlp_params_per_layer == 3 * 5120 * 13824
        # Rough total should land near 13B.
        assert 12e9 < cfg.total_params < 14e9

    def test_head_divisibility_enforced(self):
        with pytest.raises(ValueError):
            ModelConfig(name="bad", vocab_size=10, d_model=30, n_layers=1,
                        n_heads=4, d_ff=64)

    def test_unknown_activation_rejected(self):
        with pytest.raises(ValueError):
            ModelConfig(name="bad", vocab_size=10, d_model=32, n_layers=1,
                        n_heads=2, d_ff=64, activation="gelu")

    def test_relufied_transform(self):
        cfg = ModelConfig(name="m", vocab_size=10, d_model=32, n_layers=1,
                          n_heads=2, d_ff=64, activation="silu")
        r = cfg.relufied()
        assert r.activation == "relu"
        assert "relufied" in r.name

    def test_role_configs_word_aligned(self):
        # d_model should be a multiple of 32 so sign packing has no padding.
        for cfg in (tiny_7b_role(), prosparse_llama2_7b(), prosparse_llama2_13b()):
            assert cfg.d_model % 32 == 0


class TestTokenizer:
    def test_roundtrip(self):
        tok = CharTokenizer("abc123")
        assert tok.decode(tok.encode("a1c2")) == "a1c2"

    def test_specials(self):
        tok = CharTokenizer("ab")
        ids = tok.encode("ab", add_bos=True, add_eos=True)
        assert ids[0] == tok.bos_id
        assert ids[-1] == tok.eos_id
        assert tok.decode(ids) == "ab"

    def test_unknown_char_rejected(self):
        tok = CharTokenizer("ab")
        with pytest.raises(ValueError):
            tok.encode("x")

    def test_from_corpus(self):
        tok = CharTokenizer.from_corpus(["hi", "ho"])
        assert tok.decode(tok.encode("hiho")) == "hiho"

    def test_duplicate_alphabet_deduped(self):
        tok = CharTokenizer("aab")
        assert tok.vocab_size == 3 + 2  # 3 specials + a, b

    def test_multichar_alphabet_entry_impossible(self):
        # alphabet is a string, so every entry is one char by construction;
        # verify vocab ids are dense and stable.
        tok = CharTokenizer("xyz")
        assert sorted(tok.encode("zyx")) == [3, 4, 5]


class TestNorm:
    def test_unit_rms(self, rng):
        x = rng.standard_normal((4, 16)).astype(np.float32) * 7
        out = rmsnorm(x, np.ones(16, dtype=np.float32))
        np.testing.assert_allclose(
            np.sqrt(np.mean(out**2, axis=-1)), 1.0, atol=1e-3
        )

    def test_weight_scales(self, rng):
        x = rng.standard_normal(8).astype(np.float32)
        w = np.full(8, 2.0, dtype=np.float32)
        np.testing.assert_allclose(
            rmsnorm(x, w), 2 * rmsnorm(x, np.ones(8, dtype=np.float32)),
            atol=1e-6,
        )


class TestRope:
    def test_norm_preserved(self, rng):
        cos, sin = rope_tables(np.arange(5), 8)
        x = rng.standard_normal((2, 5, 8)).astype(np.float32)
        out = apply_rope(x, cos, sin)
        np.testing.assert_allclose(
            np.linalg.norm(out, axis=-1), np.linalg.norm(x, axis=-1), atol=1e-4
        )

    def test_matches_training_path(self, rng):
        """Inference rope must agree with the autograd rope."""
        from repro.autograd.functional import (
            apply_rope as train_rope,
            rope_rotation,
        )
        from repro.autograd.tensor import Tensor

        x = rng.standard_normal((1, 6, 8)).astype(np.float32)
        cos_t, sin_t = rope_rotation(6, 8)
        cos_i, sin_i = rope_tables(np.arange(6), 8)
        np.testing.assert_allclose(cos_t, cos_i, atol=1e-6)
        np.testing.assert_allclose(
            train_rope(Tensor(x), cos_t, sin_t).data,
            apply_rope(x, cos_i, sin_i),
            atol=1e-5,
        )

    def test_arbitrary_positions(self):
        cos, sin = rope_tables(np.array([7]), 4)
        cos_full, sin_full = rope_tables(np.arange(8), 4)
        np.testing.assert_allclose(cos[0], cos_full[7])

    def test_odd_head_dim_rejected(self):
        with pytest.raises(ValueError):
            rope_tables(np.arange(3), 5)


class TestKVCache:
    def test_append_and_view(self, micro_config, rng):
        cache = KVCache(micro_config, max_seq_len=8)
        k = rng.standard_normal(micro_config.d_model).astype(np.float32)
        v = rng.standard_normal(micro_config.d_model).astype(np.float32)
        cache.append(0, k, v, 0)
        cache.advance()
        keys, values = cache.view(0, 1)
        np.testing.assert_allclose(keys[0], k)
        np.testing.assert_allclose(values[0], v)

    def test_overflow_rejected(self, micro_config):
        cache = KVCache(micro_config, max_seq_len=2)
        z = np.zeros(micro_config.d_model, dtype=np.float32)
        with pytest.raises(ValueError):
            cache.append(0, z, z, 2)

    def test_reset(self, micro_config):
        cache = KVCache(micro_config, max_seq_len=4)
        cache.advance()
        cache.reset()
        assert cache.length == 0


class TestWeights:
    def test_random_weights_validate(self, micro_config):
        random_weights(micro_config).validate()

    def test_save_load_roundtrip(self, micro_config, tmp_path):
        w = random_weights(micro_config, seed=5)
        path = tmp_path / "w.npz"
        w.save(path)
        loaded = ModelWeights.load(path, micro_config)
        np.testing.assert_allclose(loaded.tok_embed, w.tok_embed)
        np.testing.assert_allclose(
            loaded.layers[1].w_gate_rows, w.layers[1].w_gate_rows
        )

    def test_validate_catches_bad_shape(self, micro_config):
        w = random_weights(micro_config)
        w.layers[0].wq = w.layers[0].wq[:-1]
        with pytest.raises(ValueError):
            w.validate()

    def test_gate_matrices_shape(self, micro_config):
        w = random_weights(micro_config)
        gates = w.gate_matrices()
        assert len(gates) == micro_config.n_layers
        assert gates[0].shape == (micro_config.d_ff, micro_config.d_model)

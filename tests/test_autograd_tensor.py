"""Numeric gradient checks for the autograd engine."""

import numpy as np
import pytest

from helpers import check_gradient
from repro.autograd.tensor import Tensor, parameter, unbroadcast, zeros


@pytest.fixture
def x3(rng):
    return rng.standard_normal((3, 4)).astype(np.float32)


class TestArithmeticGradients:
    def test_add(self, x3):
        check_gradient(lambda t: (t + 2.0).sum(), x3)

    def test_mul(self, x3):
        check_gradient(lambda t: (t * t).sum(), x3)

    def test_sub_and_neg(self, x3):
        check_gradient(lambda t: (1.0 - t).sum(), x3)

    def test_div(self, x3):
        check_gradient(lambda t: (t / 2.0 + 1.0 / (t + 5.0)).sum(), x3)

    def test_pow(self, x3):
        check_gradient(lambda t: ((t * t + 1.0) ** 1.5).sum(), x3)

    def test_broadcast_add(self, rng):
        a = rng.standard_normal((3, 4)).astype(np.float32)
        b = Tensor(rng.standard_normal((4,)).astype(np.float32),
                   requires_grad=True)
        out = (Tensor(a) + b).sum()
        out.backward()
        np.testing.assert_allclose(b.grad, np.full(4, 3.0), atol=1e-5)

    def test_matmul(self, rng):
        a = rng.standard_normal((3, 4)).astype(np.float32)
        w = rng.standard_normal((4, 5)).astype(np.float32)
        check_gradient(lambda t: (t @ Tensor(w)).sum(), a)

    def test_batched_matmul_grad_shapes(self, rng):
        a = Tensor(rng.standard_normal((2, 3, 4)).astype(np.float32),
                   requires_grad=True)
        b = Tensor(rng.standard_normal((2, 4, 5)).astype(np.float32),
                   requires_grad=True)
        (a @ b).sum().backward()
        assert a.grad.shape == (2, 3, 4)
        assert b.grad.shape == (2, 4, 5)


class TestReductionsAndShapes:
    def test_sum_axis(self, x3):
        check_gradient(lambda t: (t.sum(axis=0) * 2.0).sum(), x3)

    def test_sum_keepdims(self, x3):
        check_gradient(lambda t: (t * t.sum(axis=1, keepdims=True)).sum(), x3)

    def test_mean(self, x3):
        check_gradient(lambda t: (t.mean(axis=1) ** 2.0).sum(), x3)

    def test_max_routes_to_argmax(self):
        t = Tensor(np.array([[1.0, 5.0, 2.0]]), requires_grad=True)
        t.max(axis=1).sum().backward()
        np.testing.assert_allclose(t.grad, [[0.0, 1.0, 0.0]])

    def test_reshape(self, x3):
        check_gradient(lambda t: (t.reshape(12) * np.arange(12)).sum(), x3)

    def test_transpose(self, x3):
        check_gradient(lambda t: (t.transpose(1, 0) @ Tensor(
            np.ones((3, 2), dtype=np.float32))).sum(), x3)

    def test_getitem(self, x3):
        check_gradient(lambda t: (t[1:, :2] * 3.0).sum(), x3)


class TestNonlinearityGradients:
    def test_relu(self, x3):
        check_gradient(lambda t: t.relu().sum(), x3 + 0.05)

    def test_silu(self, x3):
        check_gradient(lambda t: t.silu().sum(), x3)

    def test_fatrelu(self, x3):
        check_gradient(lambda t: t.fatrelu(0.3).sum(), x3 + 0.05)

    def test_sigmoid(self, x3):
        check_gradient(lambda t: t.sigmoid().sum(), x3)

    def test_tanh(self, x3):
        check_gradient(lambda t: t.tanh().sum(), x3)

    def test_exp_log(self, x3):
        check_gradient(lambda t: ((t * t + 1.0).log() + (t * 0.1).exp()).sum(), x3)

    def test_abs(self, x3):
        check_gradient(lambda t: t.abs().sum(), x3 + 0.05)

    def test_silu_matches_definition(self, rng):
        x = rng.standard_normal(10).astype(np.float32)
        out = Tensor(x).silu()
        np.testing.assert_allclose(
            out.data, x / (1 + np.exp(-x)), atol=1e-6
        )


class TestGraphMechanics:
    def test_grad_accumulates_over_reuse(self):
        t = Tensor(np.array([2.0]), requires_grad=True)
        (t * t + t).backward()  # d/dt (t^2 + t) = 2t + 1 = 5
        np.testing.assert_allclose(t.grad, [5.0])

    def test_diamond_graph(self):
        t = Tensor(np.array([3.0]), requires_grad=True)
        a = t * 2.0
        b = t * 3.0
        (a * b).backward()  # 6 t^2 -> 12 t = 36
        np.testing.assert_allclose(t.grad, [36.0])

    def test_backward_requires_scalar(self):
        t = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(ValueError):
            (t * 2.0).backward()

    def test_detach_stops_gradient(self):
        t = Tensor(np.array([2.0]), requires_grad=True)
        (t.detach() * t).backward()
        np.testing.assert_allclose(t.grad, [2.0])  # only the live branch

    def test_no_grad_tensors_skip_tape(self):
        a = Tensor(np.ones(3))
        b = a * 2.0
        assert not b.requires_grad
        assert b._backward is None

    def test_deep_chain_iterative_topo(self):
        # Would overflow a recursive topological sort.
        t = Tensor(np.array([1.0]), requires_grad=True)
        out = t
        for _ in range(3000):
            out = out + 1.0
        out.backward()
        np.testing.assert_allclose(t.grad, [1.0])


class TestUnbroadcast:
    def test_identity(self):
        g = np.ones((2, 3))
        assert unbroadcast(g, (2, 3)).shape == (2, 3)

    def test_sums_prepended_axes(self):
        g = np.ones((4, 2, 3))
        np.testing.assert_allclose(unbroadcast(g, (2, 3)), np.full((2, 3), 4.0))

    def test_sums_size_one_axes(self):
        g = np.ones((2, 3))
        np.testing.assert_allclose(unbroadcast(g, (2, 1)), np.full((2, 1), 3.0))


class TestHelpers:
    def test_parameter_requires_grad(self, rng):
        p = parameter((3, 3), rng, 0.1)
        assert p.requires_grad

    def test_zeros(self):
        z = zeros((2, 2))
        assert not z.requires_grad
        assert z.data.sum() == 0.0

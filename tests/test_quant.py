"""Tests for quantisation and the sign-robustness property."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.signpack import pack_signs
from repro.quant.fp16 import fp16_roundtrip, to_fp16
from repro.quant.int8 import Int8Matrix, quantize_int8
from repro.quant.signbits import packed_signs_from, sign_bits


class TestInt8:
    def test_roundtrip_error_bounded(self, rng):
        w = rng.standard_normal((8, 32)).astype(np.float32)
        q = quantize_int8(w)
        err = np.abs(q.dequantize() - w)
        # Max error is half a quantisation step per row.
        steps = q.scales[:, None]
        assert np.all(err <= steps * 0.5 + 1e-6)

    def test_scales_per_row(self, rng):
        w = rng.standard_normal((4, 16)).astype(np.float32)
        w[2] *= 100
        q = quantize_int8(w)
        assert q.scales[2] > 10 * q.scales[0]

    def test_all_zero_row(self):
        q = quantize_int8(np.zeros((2, 8), dtype=np.float32))
        assert np.all(q.values == 0)
        np.testing.assert_allclose(q.dequantize(), 0.0)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            quantize_int8(np.zeros(8, dtype=np.float32))

    def test_nbytes(self, rng):
        q = quantize_int8(rng.standard_normal((4, 16)).astype(np.float32))
        assert q.nbytes == 4 * 16 + 4 * 4


class TestFp16:
    def test_sign_bits_identical(self, rng):
        """FP16 casting preserves every sign bit exactly."""
        w = rng.standard_normal((6, 64)).astype(np.float32)
        assert np.array_equal(pack_signs(w), pack_signs(to_fp16(w)))

    def test_roundtrip_close(self, rng):
        w = rng.standard_normal(100).astype(np.float32)
        np.testing.assert_allclose(fp16_roundtrip(w), w, atol=1e-2)


class TestSignBits:
    def test_float_signbit_semantics(self):
        x = np.array([-1.0, 0.0, -0.0, 2.0], dtype=np.float32)
        assert sign_bits(x).tolist() == [True, False, True, False]

    def test_int8_semantics(self):
        m = Int8Matrix(
            values=np.array([[-3, 0, 5]], dtype=np.int8),
            scales=np.ones(1, dtype=np.float32),
        )
        assert sign_bits(m).tolist() == [[True, False, False]]

    def test_unsupported_dtype_rejected(self):
        with pytest.raises(TypeError):
            sign_bits(np.array(["a"]))

    def test_packed_signs_from_int8_matches_dequant_nonzero(self, rng):
        """Predictor state built from INT8 equals state built from the
        dequantised floats wherever quantisation did not round to zero."""
        w = rng.standard_normal((8, 64)).astype(np.float32)
        q = quantize_int8(w)
        from_int8 = packed_signs_from(q)
        from_dequant = packed_signs_from(q.dequantize())
        assert np.array_equal(from_int8.words, from_dequant.words)

    def test_rounded_to_zero_packs_positive(self):
        """Tiny negatives that quantise to 0 become positive sign bits --
        the conservative direction (keep, never wrongly skip)."""
        w = np.array([[-1e-6, -1.0] + [1.0] * 30], dtype=np.float32)
        q = quantize_int8(w)
        assert q.values[0, 0] == 0
        bits = sign_bits(q)
        assert not bits[0, 0]   # packed as positive
        assert bits[0, 1]

    def test_packed_signs_from_raw_int_array(self):
        arr = np.array([[-1, 2, -3, 4] * 8], dtype=np.int32)
        p = packed_signs_from(arr)
        assert p.n_elements == 32
        assert p.words.shape == (1, 1)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 9999), rows=st.integers(1, 6), cols=st.integers(1, 80))
def test_property_int8_preserves_nonzero_signs(seed, rows, cols):
    rng = np.random.default_rng(seed)
    w = rng.standard_normal((rows, cols)).astype(np.float32)
    q = quantize_int8(w)
    nonzero = q.values != 0
    assert np.array_equal(
        (q.values < 0)[nonzero], np.signbit(w)[nonzero]
    )

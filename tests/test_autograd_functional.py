"""Gradient and semantics checks for the fused NN ops."""

import numpy as np
import pytest

from repro.autograd.functional import (
    apply_rope,
    causal_attention,
    cross_entropy,
    embedding,
    rmsnorm,
    rope_rotation,
    softmax,
)
from repro.autograd.tensor import Tensor

from helpers import check_gradient


class TestEmbedding:
    def test_lookup(self, rng):
        table = Tensor(rng.standard_normal((7, 4)).astype(np.float32))
        ids = np.array([[0, 3], [6, 3]])
        out = embedding(table, ids)
        np.testing.assert_allclose(out.data[1, 0], table.data[6])

    def test_gradient_scatter_adds_duplicates(self, rng):
        table = Tensor(rng.standard_normal((5, 3)).astype(np.float32),
                       requires_grad=True)
        ids = np.array([[1, 1, 2]])
        embedding(table, ids).sum().backward()
        np.testing.assert_allclose(table.grad[1], [2.0, 2.0, 2.0])
        np.testing.assert_allclose(table.grad[2], [1.0, 1.0, 1.0])
        np.testing.assert_allclose(table.grad[0], [0.0, 0.0, 0.0])


class TestRMSNorm:
    def test_unit_rms_output(self, rng):
        x = Tensor(rng.standard_normal((2, 8)).astype(np.float32) * 3.0)
        w = Tensor(np.ones(8, dtype=np.float32))
        out = rmsnorm(x, w)
        rms = np.sqrt(np.mean(out.data ** 2, axis=-1))
        np.testing.assert_allclose(rms, 1.0, atol=1e-3)

    def test_gradient_x(self, rng):
        w = Tensor(rng.standard_normal(6).astype(np.float32))
        x0 = rng.standard_normal((2, 6)).astype(np.float32)
        check_gradient(
            lambda t: (rmsnorm(t, w) * np.arange(6, dtype=np.float32)).sum(),
            x0,
        )

    def test_gradient_weight(self, rng):
        x = Tensor(rng.standard_normal((3, 6)).astype(np.float32))
        w0 = rng.standard_normal(6).astype(np.float32)

        def fn(t):
            return (rmsnorm(x, t) ** 2.0).sum()

        check_gradient(fn, w0)


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        x = Tensor(rng.standard_normal((4, 9)).astype(np.float32) * 5.0)
        out = softmax(x)
        np.testing.assert_allclose(out.data.sum(axis=-1), 1.0, atol=1e-5)

    def test_shift_invariance(self, rng):
        x = rng.standard_normal((2, 5)).astype(np.float32)
        a = softmax(Tensor(x)).data
        b = softmax(Tensor(x + 100.0)).data
        np.testing.assert_allclose(a, b, atol=1e-5)

    def test_gradient(self, rng):
        x0 = rng.standard_normal((2, 5)).astype(np.float32)
        weights = rng.standard_normal((2, 5)).astype(np.float32)
        check_gradient(lambda t: (softmax(t) * weights).sum(), x0)


class TestCrossEntropy:
    def test_matches_manual_nll(self, rng):
        logits = rng.standard_normal((4, 6)).astype(np.float32)
        targets = np.array([0, 2, 5, 1])
        loss = cross_entropy(Tensor(logits), targets)
        probs = np.exp(logits - logits.max(axis=1, keepdims=True))
        probs /= probs.sum(axis=1, keepdims=True)
        expected = -np.mean(np.log(probs[np.arange(4), targets]))
        assert float(loss.data) == pytest.approx(expected, abs=1e-5)

    def test_ignore_index_masks_positions(self, rng):
        logits = rng.standard_normal((4, 6)).astype(np.float32)
        targets = np.array([0, -1, -1, 1])
        loss = cross_entropy(Tensor(logits), targets)
        sub = cross_entropy(Tensor(logits[[0, 3]]), np.array([0, 1]))
        assert float(loss.data) == pytest.approx(float(sub.data), abs=1e-6)

    def test_gradient(self, rng):
        targets = np.array([1, 0, 3])
        x0 = rng.standard_normal((3, 4)).astype(np.float32)
        check_gradient(lambda t: cross_entropy(t, targets), x0)

    def test_gradient_zero_at_ignored(self, rng):
        logits = Tensor(rng.standard_normal((2, 4)).astype(np.float32),
                        requires_grad=True)
        cross_entropy(logits, np.array([-1, 2])).backward()
        np.testing.assert_allclose(logits.grad[0], 0.0, atol=1e-8)
        assert np.abs(logits.grad[1]).sum() > 0


class TestRoPE:
    def test_rotation_preserves_norm(self, rng):
        cos, sin = rope_rotation(5, 8)
        x = rng.standard_normal((2, 5, 8)).astype(np.float32)
        out = apply_rope(Tensor(x), cos, sin)
        np.testing.assert_allclose(
            np.linalg.norm(out.data, axis=-1),
            np.linalg.norm(x, axis=-1),
            atol=1e-4,
        )

    def test_position_zero_is_identity(self, rng):
        cos, sin = rope_rotation(1, 8)
        x = rng.standard_normal((1, 1, 8)).astype(np.float32)
        out = apply_rope(Tensor(x), cos, sin)
        np.testing.assert_allclose(out.data, x, atol=1e-6)

    def test_offset_matches_shifted_table(self):
        cos_a, sin_a = rope_rotation(6, 4)
        cos_b, sin_b = rope_rotation(3, 4, offset=3)
        np.testing.assert_allclose(cos_a[3:], cos_b, atol=1e-6)
        np.testing.assert_allclose(sin_a[3:], sin_b, atol=1e-6)

    def test_gradient_is_inverse_rotation(self, rng):
        cos, sin = rope_rotation(3, 4)
        x0 = rng.standard_normal((1, 3, 4)).astype(np.float32)
        w = rng.standard_normal((1, 3, 4)).astype(np.float32)
        check_gradient(lambda t: (apply_rope(t, cos, sin) * w).sum(), x0)

    def test_odd_head_dim_rejected(self):
        with pytest.raises(ValueError):
            rope_rotation(4, 5)


class TestCausalAttention:
    def test_causality(self, rng):
        """Changing a later token must not affect earlier outputs."""
        q = rng.standard_normal((1, 4, 8)).astype(np.float32)
        k = rng.standard_normal((1, 4, 8)).astype(np.float32)
        v = rng.standard_normal((1, 4, 8)).astype(np.float32)
        out1 = causal_attention(Tensor(q), Tensor(k), Tensor(v), 2).data
        k2, v2 = k.copy(), v.copy()
        k2[0, 3] += 10.0
        v2[0, 3] -= 5.0
        out2 = causal_attention(Tensor(q), Tensor(k2), Tensor(v2), 2).data
        np.testing.assert_allclose(out1[0, :3], out2[0, :3], atol=1e-5)
        assert not np.allclose(out1[0, 3], out2[0, 3])

    def test_first_position_attends_only_itself(self, rng):
        q = rng.standard_normal((1, 3, 4)).astype(np.float32)
        k = rng.standard_normal((1, 3, 4)).astype(np.float32)
        v = rng.standard_normal((1, 3, 4)).astype(np.float32)
        out = causal_attention(Tensor(q), Tensor(k), Tensor(v), 1).data
        np.testing.assert_allclose(out[0, 0], v[0, 0], atol=1e-5)

    def test_gradient_flows(self, rng):
        q = Tensor(rng.standard_normal((1, 3, 4)).astype(np.float32),
                   requires_grad=True)
        k = Tensor(rng.standard_normal((1, 3, 4)).astype(np.float32),
                   requires_grad=True)
        v = Tensor(rng.standard_normal((1, 3, 4)).astype(np.float32),
                   requires_grad=True)
        causal_attention(q, k, v, 2).sum().backward()
        assert q.grad is not None and k.grad is not None and v.grad is not None

    def test_head_mismatch_rejected(self, rng):
        q = Tensor(rng.standard_normal((1, 2, 6)).astype(np.float32))
        with pytest.raises(ValueError):
            causal_attention(q, q, q, 4)

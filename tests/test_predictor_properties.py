"""Property-based regression tests for the Eq. (2) decision polarity.

The paper's Listing 1 sets its skip flag with the opposite polarity to
Eq. (2) and the prose; this repo implements Eq. (2) (see the note in
:mod:`repro.core.predictor`).  These tests pin that decision:

* against a naive float reference -- ``ReLU(x @ Wgate) == 0`` -- the
  packed predictor at alpha=1.0 must hit the paper's Fig. 3 quality on
  the synthetic activation model (precision ~99%, recall ~99% on late
  layers);
* the decision must move the right way under forced sign structure and
  under alpha (flipping the polarity inverts every one of these).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import evaluate_skip_prediction
from repro.core.predictor import (
    SparseInferPredictor,
    predict_skip_from_counts,
    true_skip_mask,
)
from repro.model.config import prosparse_llama2_7b
from repro.model.synthetic import SyntheticActivationModel

# Fig. 3 floor for non-early layers at alpha=1.0: the paper reports >99%
# precision with an early-layer dip, and the repo's Fig. 3 bench asserts
# 0.985/0.99 at full width/sample size; slightly relaxed for the smaller
# per-example sample here.
PAPER_PRECISION_FLOOR = 0.97
PAPER_RECALL_FLOOR = 0.99


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 1_000), layer=st.integers(8, 31))
def test_property_eq2_matches_relu_reference_on_late_layers(seed, layer):
    """Packed Eq. (2) vs naive ``ReLU(x @ Wgate) == 0`` at alpha=1.0.

    Runs at the true 7B width (the predictor's quality depends on the
    majority vote over ``d`` sign bits, so narrow test models understate
    it).
    """
    model = SyntheticActivationModel(prosparse_llama2_7b(), seed=seed)
    sample = model.sample_layer(layer, n_tokens=4, n_rows=384)
    predictor = SparseInferPredictor.from_gate_weights([sample.w_gate])
    predicted = predictor.predict_batch(0, sample.x, alpha=1.0)
    reference = true_skip_mask(sample.x @ sample.w_gate.T)
    np.testing.assert_array_equal(reference, sample.true_sparse)
    quality = evaluate_skip_prediction(predicted, reference)
    assert quality.precision >= PAPER_PRECISION_FLOOR, quality
    assert quality.recall >= PAPER_RECALL_FLOOR, quality


@settings(max_examples=60, deadline=None)
@given(
    k=st.integers(1, 64),
    total_bits=st.integers(32, 4096),
    seed=st.integers(0, 10_000),
)
def test_property_majority_negative_is_skipped(k, total_bits, seed):
    """Eq. (2) at alpha=1.0 is exactly the majority-sign test.

    ``alpha * Npos < Nneg`` with alpha=1.0 skips iff strictly more than
    half the predicted product signs are negative -- the Listing-1 typo
    would keep exactly those rows instead.
    """
    rng = np.random.default_rng(seed)
    n_neg = rng.integers(0, total_bits + 1, size=k)
    skip = predict_skip_from_counts(n_neg, total_bits, alpha=1.0)
    np.testing.assert_array_equal(skip, n_neg > total_bits - n_neg)


@settings(max_examples=40, deadline=None)
@given(d_words=st.integers(1, 8), k=st.integers(4, 64),
       seed=st.integers(0, 10_000))
def test_property_forced_polarity_rows(d_words, k, seed):
    """Rows anti-aligned with x are skipped; aligned rows are kept.

    A row equal to ``-sign(x) * |w|`` has every product negative (the
    archetypal "usually off" neuron); a row equal to ``+sign(x) * |w|``
    has every product positive.  Eq. (2) must skip all of the former and
    none of the latter at any alpha -- with the typo polarity it would do
    the exact opposite.  ``d`` is a multiple of 32, as in real LLM dims;
    otherwise the positive-packed padding bits deliberately bias the
    majority vote toward keeping (the documented conservative choice).
    """
    d = 32 * d_words
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(d).astype(np.float32)
    x[x == 0.0] = 1.0
    magnitudes = np.abs(rng.standard_normal((k, d)).astype(np.float32)) + 1e-3
    sign_x = np.where(np.signbit(x), -1.0, 1.0).astype(np.float32)
    off_rows = (-sign_x * magnitudes).astype(np.float32)
    on_rows = (sign_x * magnitudes).astype(np.float32)
    gate = np.concatenate([off_rows, on_rows], axis=0)
    predictor = SparseInferPredictor.from_gate_weights([gate])
    skip = predictor.predict(0, x).skip
    assert skip[:k].all(), "fully negative rows must be predicted sparse"
    assert not skip[k:].any(), "fully positive rows must be kept"
    # And the float reference agrees -- these rows are unambiguous.
    reference = true_skip_mask(gate @ x)
    np.testing.assert_array_equal(skip, reference)


@settings(max_examples=30, deadline=None)
@given(
    d=st.integers(32, 256),
    k=st.integers(8, 128),
    seed=st.integers(0, 10_000),
    alpha_lo=st.floats(0.5, 1.0),
    alpha_hi=st.floats(1.0, 2.0),
)
def test_property_alpha_moves_conservative(d, k, seed, alpha_lo, alpha_hi):
    """Raising alpha can only shrink the skip set (Eq. (2) direction)."""
    rng = np.random.default_rng(seed)
    gate = rng.standard_normal((k, d)).astype(np.float32)
    x = rng.standard_normal(d).astype(np.float32)
    predictor = SparseInferPredictor.from_gate_weights([gate])
    skip_lo = predictor.predict(0, x, alpha=alpha_lo).skip
    skip_hi = predictor.predict(0, x, alpha=alpha_hi).skip
    assert (skip_hi <= skip_lo).all(), "alpha up must not add skips"


@settings(max_examples=30, deadline=None)
@given(n=st.integers(2, 6), d=st.integers(32, 128), seed=st.integers(0, 10_000))
def test_property_intersection_subset_of_every_sequence(n, d, seed):
    """The batched intersection never skips a row some sequence keeps."""
    rng = np.random.default_rng(seed)
    gate = rng.standard_normal((48, d)).astype(np.float32)
    xs = rng.standard_normal((n, d)).astype(np.float32)
    predictor = SparseInferPredictor.from_gate_weights([gate])
    pred = predictor.predict_intersection(0, xs)
    for i in range(n):
        assert (pred.intersection_skip <= pred.skip[i]).all()

"""Smoke tests for the example scripts.

Importing an example validates its syntax and top-level imports without
running ``main()``; the quickstart (fast, no training) is executed fully.
"""

import importlib.util
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"
ALL_EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_expected_examples_present():
    assert {"quickstart.py", "ondevice_latency_model.py",
            "compare_predictors.py", "dse_alpha_sweep.py",
            "accuracy_tables.py", "train_relufied_lm.py",
            "fewshot_eval.py"} <= set(ALL_EXAMPLES)


@pytest.mark.parametrize("name", ALL_EXAMPLES)
def test_example_imports(name):
    spec = importlib.util.spec_from_file_location(
        f"example_{name[:-3]}", EXAMPLES_DIR / name
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert hasattr(module, "main")


def test_quickstart_runs_end_to_end():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True, text=True, timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert "predictor precision" in result.stdout
    assert "gate rows skipped" in result.stdout

"""Tests for prediction-quality metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import (
    PredictionQuality,
    evaluate_skip_prediction,
    sparsity,
)


class TestEvaluateSkipPrediction:
    def test_perfect_prediction(self):
        actual = np.array([True, True, False, False])
        q = evaluate_skip_prediction(actual, actual)
        assert q.precision == 1.0
        assert q.recall == 1.0
        assert q.accuracy == 1.0

    def test_confusion_counts(self):
        predicted = np.array([True, True, False, False])
        actual = np.array([True, False, True, False])
        q = evaluate_skip_prediction(predicted, actual)
        assert (q.true_positive, q.false_positive,
                q.false_negative, q.true_negative) == (1, 1, 1, 1)
        assert q.precision == 0.5
        assert q.recall == 0.5

    def test_no_predictions_precision_is_one(self):
        q = evaluate_skip_prediction(
            np.zeros(4, dtype=bool), np.array([True, False, True, False])
        )
        assert q.precision == 1.0
        assert q.recall == 0.0

    def test_nothing_sparse_recall_is_one(self):
        q = evaluate_skip_prediction(
            np.zeros(4, dtype=bool), np.zeros(4, dtype=bool)
        )
        assert q.recall == 1.0

    def test_sparsity_properties(self):
        predicted = np.array([True, False, True, False])
        actual = np.array([True, True, True, False])
        q = evaluate_skip_prediction(predicted, actual)
        assert q.actual_sparsity == 0.75
        assert q.predicted_sparsity == 0.5

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            evaluate_skip_prediction(np.zeros(3, dtype=bool),
                                     np.zeros(4, dtype=bool))

    def test_merge_pools_counts(self):
        a = PredictionQuality(1, 2, 3, 4)
        b = PredictionQuality(10, 20, 30, 40)
        m = a.merge(b)
        assert (m.true_positive, m.false_positive,
                m.true_negative, m.false_negative) == (11, 22, 33, 44)

    def test_f1_harmonic_mean(self):
        q = PredictionQuality(true_positive=2, false_positive=2,
                              true_negative=0, false_negative=2)
        assert q.f1 == pytest.approx(0.5)

    def test_f1_zero_when_degenerate(self):
        q = PredictionQuality(0, 0, 4, 4)
        # precision=1 (vacuous), recall=0 -> f1 well-defined
        assert q.f1 == pytest.approx(0.0, abs=1e-12) or q.f1 < 1.0


@settings(max_examples=50, deadline=None)
@given(n=st.integers(1, 200), seed=st.integers(0, 9999))
def test_property_counts_partition_total(n, seed):
    rng = np.random.default_rng(seed)
    predicted = rng.random(n) < 0.5
    actual = rng.random(n) < 0.5
    q = evaluate_skip_prediction(predicted, actual)
    assert q.total == n
    assert 0.0 <= q.precision <= 1.0
    assert 0.0 <= q.recall <= 1.0
    assert q.actual_sparsity == pytest.approx(actual.mean())
    assert q.predicted_sparsity == pytest.approx(predicted.mean())


class TestSparsity:
    def test_zeros_counted(self):
        assert sparsity(np.array([0.0, 1.0, 0.0, 2.0])) == 0.5

    def test_threshold(self):
        assert sparsity(np.array([0.05, 1.0]), threshold=0.1) == 0.5

    def test_empty(self):
        assert sparsity(np.array([])) == 0.0

"""Tests for the training substrate: data, trainer, ProSparse, ReLUfication."""

import numpy as np
import pytest

from repro.model.config import ModelConfig
from repro.model.tokenizer import CharTokenizer
from repro.train.data import IGNORE_INDEX, batches_from_task, encode_sample, make_batch
from repro.train.lm import TrainableLM
from repro.train.prosparse import (
    ProgressiveL1Schedule,
    calibrate_fatrelu_threshold,
    gate_l1_penalty,
    measured_gate_sparsity,
)
from repro.train.relufication import relufy
from repro.train.trainer import TrainSettings, train, train_or_load
from repro.workloads import gsm8k_like


@pytest.fixture(scope="module")
def train_config(request):
    tok = CharTokenizer(gsm8k_like.ALPHABET)
    cfg = ModelConfig(
        name="train-test", vocab_size=tok.vocab_size, d_model=32,
        n_layers=2, n_heads=2, d_ff=64, max_seq_len=64, dtype_bytes=4,
    )
    return cfg, tok


class TestData:
    def test_encode_sample_offsets(self, train_config):
        _, tok = train_config
        sample = gsm8k_like.generate(1, seed=0)[0]
        ids, answer_start = encode_sample(sample, tok)
        assert ids[0] == tok.bos_id
        assert ids[-1] == tok.eos_id
        decoded = tok.decode(ids)
        assert decoded == sample.text
        assert tok.decode(ids[answer_start:]) == sample.answer

    def test_targets_masked_outside_answer(self, train_config):
        _, tok = train_config
        samples = gsm8k_like.generate(3, seed=1)
        batch = make_batch(samples, tok)
        for row, sample in enumerate(samples):
            ids, answer_start = encode_sample(sample, tok)
            # Everything before answer_start-1 is masked.
            assert np.all(batch.targets[row, : answer_start - 1] == IGNORE_INDEX)
            # The position just before the answer predicts the answer token.
            assert batch.targets[row, answer_start - 1] == ids[answer_start]

    def test_full_lm_loss_mode(self, train_config):
        _, tok = train_config
        samples = gsm8k_like.generate(2, seed=1)
        batch = make_batch(samples, tok, answer_only_loss=False)
        ids, _ = encode_sample(samples[0], tok)
        assert batch.targets[0, 0] == ids[1]

    def test_padding(self, train_config):
        _, tok = train_config
        samples = [
            gsm8k_like.TaskSample(prompt="Q:1+1=A:", answer="2"),
            gsm8k_like.TaskSample(prompt="Q:1+1+1+1=A:", answer="4"),
        ]
        batch = make_batch(samples, tok)
        assert batch.tokens.shape[0] == 2
        ids0, _ = encode_sample(samples[0], tok)
        assert np.all(batch.tokens[0, len(ids0):] == tok.pad_id)
        assert np.all(batch.targets[0, len(ids0):] == IGNORE_INDEX)

    def test_empty_batch_rejected(self, train_config):
        _, tok = train_config
        with pytest.raises(ValueError):
            make_batch([], tok)

    def test_batches_from_task(self, train_config):
        _, tok = train_config
        batches = batches_from_task(
            gsm8k_like.generate, tok, n_batches=3, batch_size=4, seed=0
        )
        assert len(batches) == 3
        assert all(b.batch_size == 4 for b in batches)


class TestTrainableLM:
    def test_loss_decreases(self, train_config):
        cfg, tok = train_config
        batches = batches_from_task(
            gsm8k_like.generate, tok, n_batches=2, batch_size=8, seed=0
        )
        model = TrainableLM(cfg, seed=0)
        report = train(model, batches, TrainSettings(steps=30, lr=5e-3,
                                                     log_every=29))
        assert report.losses[-1] < report.losses[0]

    def test_export_roundtrip_logits(self, train_config):
        cfg, _ = train_config
        model = TrainableLM(cfg, seed=1)
        weights = model.export_weights()
        weights.validate()
        from repro.model.inference import InferenceModel

        tokens = np.array([[1, 3, 5]])
        train_logits = model.forward(tokens).logits.data[0, -1]
        engine = InferenceModel(weights)
        engine.prefill([1, 3])
        infer_logits = engine.forward_token(5, 2)
        np.testing.assert_allclose(infer_logits, train_logits, atol=2e-3)

    def test_activation_swap(self, train_config):
        cfg, _ = train_config
        model = TrainableLM(cfg, seed=0)
        model.set_activation("silu")
        assert model.config.activation == "silu"
        model.set_activation("fatrelu", 0.1)
        assert model.config.fatrelu_threshold == 0.1

    def test_gate_activation_collection(self, train_config):
        cfg, _ = train_config
        model = TrainableLM(cfg, seed=0)
        out = model.forward(np.array([[1, 2]]), collect_gate_activations=True)
        assert len(out.gate_activations) == cfg.n_layers
        assert out.gate_activations[0].shape == (1, 2, cfg.d_ff)
        # ReLU output is non-negative.
        assert np.all(out.gate_activations[0].data >= 0)

    def test_rejects_1d_tokens(self, train_config):
        cfg, _ = train_config
        model = TrainableLM(cfg, seed=0)
        with pytest.raises(ValueError):
            model.forward(np.array([1, 2, 3]))


class TestProSparse:
    def test_schedule_ramps_and_holds(self):
        s = ProgressiveL1Schedule(peak=1.0, total_steps=100, warmup_fraction=0.5)
        assert s.coefficient(0) == 0.0
        assert s.coefficient(25) == pytest.approx(0.5)
        assert s.coefficient(50) == pytest.approx(1.0)
        assert s.coefficient(99) == pytest.approx(1.0)

    def test_schedule_validation(self):
        with pytest.raises(ValueError):
            ProgressiveL1Schedule(peak=-1, total_steps=10)
        with pytest.raises(ValueError):
            ProgressiveL1Schedule(peak=1, total_steps=0)

    def test_l1_penalty_positive_and_differentiable(self, train_config):
        cfg, _ = train_config
        model = TrainableLM(cfg, seed=0)
        out = model.forward(np.array([[1, 2, 3]]), collect_gate_activations=True)
        penalty = gate_l1_penalty(out.gate_activations)
        assert float(penalty.data) >= 0.0
        penalty.backward()
        assert model.layers[0]["w_gate"].grad is not None

    def test_l1_increases_gate_sparsity(self, train_config):
        """The ProSparse recipe must visibly raise measured sparsity."""
        cfg, tok = train_config
        batches = batches_from_task(
            gsm8k_like.generate, tok, n_batches=2, batch_size=8, seed=0
        )
        plain = TrainableLM(cfg, seed=2)
        train(plain, batches, TrainSettings(steps=40, l1_peak=0.0))
        sparse = TrainableLM(cfg, seed=2)
        train(sparse, batches, TrainSettings(steps=40, l1_peak=2e-2,
                                             l1_warmup_fraction=0.3))
        out_p = plain.forward(batches[0].tokens, collect_gate_activations=True)
        out_s = sparse.forward(batches[0].tokens, collect_gate_activations=True)
        assert (
            measured_gate_sparsity(out_s.gate_activations)
            > measured_gate_sparsity(out_p.gate_activations)
        )

    def test_fatrelu_threshold_quantile(self, rng):
        preacts = rng.standard_normal(10_000)
        thr = calibrate_fatrelu_threshold(preacts, 0.9)
        assert thr > 0
        assert np.mean(preacts < thr) == pytest.approx(0.9, abs=0.02)

    def test_fatrelu_threshold_never_negative(self, rng):
        preacts = rng.standard_normal(1000) - 10.0  # mostly negative
        assert calibrate_fatrelu_threshold(preacts, 0.2) == 0.0


class TestRelufication:
    def test_swaps_activation_and_trains(self, train_config):
        cfg, tok = train_config
        from dataclasses import replace

        silu_cfg = replace(cfg, activation="silu")
        model = TrainableLM(silu_cfg, seed=0)
        batches = batches_from_task(
            gsm8k_like.generate, tok, n_batches=2, batch_size=8, seed=0
        )
        result = relufy(model, batches, TrainSettings(steps=10))
        assert model.config.activation == "relu"
        assert len(result.finetune_report.losses) > 0

    def test_fatrelu_stage(self, train_config):
        cfg, tok = train_config
        model = TrainableLM(cfg, seed=0)
        batches = batches_from_task(
            gsm8k_like.generate, tok, n_batches=1, batch_size=4, seed=0
        )
        result = relufy(
            model, batches, TrainSettings(steps=5),
            fatrelu_target_sparsity=0.8,
        )
        assert model.config.activation == "fatrelu"
        assert model.config.fatrelu_threshold == result.fatrelu_threshold >= 0.0


class TestCache:
    def test_train_or_load_caches(self, train_config, tmp_path):
        cfg, tok = train_config
        batches = batches_from_task(
            gsm8k_like.generate, tok, n_batches=1, batch_size=4, seed=0
        )
        settings = TrainSettings(steps=5)
        w1 = train_or_load(cfg, "gsm", batches, settings, cache_dir=tmp_path)
        files = list(tmp_path.glob("*.npz"))
        assert len(files) == 1
        w2 = train_or_load(cfg, "gsm", batches, settings, cache_dir=tmp_path)
        np.testing.assert_array_equal(w1.tok_embed, w2.tok_embed)

    def test_cache_key_varies_with_settings(self, train_config, tmp_path):
        cfg, tok = train_config
        batches = batches_from_task(
            gsm8k_like.generate, tok, n_batches=1, batch_size=4, seed=0
        )
        train_or_load(cfg, "gsm", batches, TrainSettings(steps=5),
                      cache_dir=tmp_path)
        train_or_load(cfg, "gsm", batches, TrainSettings(steps=6),
                      cache_dir=tmp_path)
        assert len(list(tmp_path.glob("*.npz"))) == 2

"""Tests for the prefill cost model and the reproduce driver."""

import numpy as np
import pytest

from repro.gpu.device import jetson_orin_agx_64gb
from repro.gpu.kernels import prefill_gemm
from repro.gpu.pipeline import dense_engine, decode_latency, prefill_timeline
from repro.model.config import prosparse_llama2_13b


@pytest.fixture(scope="module")
def orin():
    return jetson_orin_agx_64gb()


@pytest.fixture(scope="module")
def cfg13():
    return prosparse_llama2_13b()


class TestPrefillModel:
    def test_per_token_cost_far_below_decode(self, orin, cfg13):
        """Amortising weight reads makes prefill tokens much cheaper than
        decode tokens -- the reason decode, not prefill, is the target."""
        n = 512
        prefill = prefill_timeline(cfg13, n).latency(orin) / n
        decode = decode_latency(cfg13, dense_engine(), orin,
                                seq_len=n).seconds_per_token
        assert prefill < 0.25 * decode

    def test_prefill_becomes_compute_bound(self, orin, cfg13):
        """For long prompts the GEMMs hit the FLOP roof, not the BW roof."""
        k = prefill_gemm("gate", cfg13.d_ff, cfg13.d_model, 4096)
        assert k.compute_time(orin) > k.memory_time(orin)

    def test_short_prefill_memory_bound(self, orin, cfg13):
        k = prefill_gemm("gate", cfg13.d_ff, cfg13.d_model, 1)
        assert k.memory_time(orin) > k.compute_time(orin)

    def test_latency_grows_with_prompt(self, orin, cfg13):
        a = prefill_timeline(cfg13, 64).latency(orin)
        b = prefill_timeline(cfg13, 1024).latency(orin)
        assert b > a

    def test_invalid_tokens_rejected(self, cfg13):
        with pytest.raises(ValueError):
            prefill_gemm("g", 8, 8, 0)


@pytest.mark.slow
class TestReproduceDriver:
    def test_analytical_run_writes_artifacts(self, tmp_path, capsys):
        from repro.reproduce import run_analytical

        run_analytical(tmp_path, quick=True)
        names = {p.name for p in tmp_path.iterdir()}
        assert {"table1.txt", "sec5a.txt", "fig2.txt", "fig3_13B.txt",
                "fig3_7B.txt", "fig4_13B.txt", "fig4_7B.txt"} <= names
        table1 = (tmp_path / "table1.txt").read_text()
        assert "2.123e+08" in table1
        capsys.readouterr()  # swallow the console echo

    def test_cli_parses(self, tmp_path):
        from repro.reproduce import main

        assert main(["--results-dir", str(tmp_path), "--quick"]) == 0

"""Tests for the batched-decoding sparsity-decay analysis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.batching import (
    batch_skip_fraction,
    batch_sweep,
    batched_decode_latency,
)
from repro.gpu.device import jetson_orin_agx_64gb
from repro.gpu.pipeline import SparsityProfile
from repro.model.config import prosparse_llama2_7b

ORIN = jetson_orin_agx_64gb()


class TestBatchSkipFraction:
    def test_batch_one_is_identity(self):
        assert batch_skip_fraction(0.9, 1) == pytest.approx(0.9)

    def test_independent_decays_exponentially(self):
        assert batch_skip_fraction(0.9, 4, correlation=0.0) == pytest.approx(
            0.9 ** 4
        )

    def test_fully_correlated_never_decays(self):
        assert batch_skip_fraction(0.9, 16, correlation=1.0) == pytest.approx(
            0.9
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            batch_skip_fraction(1.5, 1)
        with pytest.raises(ValueError):
            batch_skip_fraction(0.5, 0)
        with pytest.raises(ValueError):
            batch_skip_fraction(0.5, 2, correlation=2.0)


@settings(max_examples=50, deadline=None)
@given(
    skip=st.floats(0.0, 1.0),
    b1=st.integers(1, 32),
    b2=st.integers(1, 32),
    corr=st.floats(0.0, 1.0),
)
def test_property_skip_decays_with_batch(skip, b1, b2, corr):
    lo, hi = sorted((b1, b2))
    assert (
        batch_skip_fraction(skip, hi, corr)
        <= batch_skip_fraction(skip, lo, corr) + 1e-12
    )


class TestBatchedLatency:
    @pytest.fixture(scope="class")
    def cfg(self):
        return prosparse_llama2_7b()

    @pytest.fixture(scope="class")
    def profile(self, cfg):
        return SparsityProfile.uniform(cfg.n_layers, 0.90, 0.92)

    def test_batch_one_matches_single_scale(self, cfg, profile):
        point = batched_decode_latency(ORIN and cfg, ORIN, 1, profile)
        assert point.exploited_skip == pytest.approx(0.92, abs=0.01)
        assert point.seconds_per_token == point.seconds_per_step

    def test_throughput_grows_with_batch(self, cfg):
        a = batched_decode_latency(cfg, ORIN, 1, None)
        b = batched_decode_latency(cfg, ORIN, 8, None)
        assert b.tokens_per_second > a.tokens_per_second

    def test_sparsity_advantage_decays_with_batch(self, cfg, profile):
        """The headline finding: SparseInfer's edge shrinks as batch grows
        (uncorrelated sequences)."""
        sweep = batch_sweep(cfg, ORIN, profile, batch_sizes=(1, 4, 16))
        speedups = [row["speedup"] for row in sweep]
        assert speedups[0] > speedups[1] > speedups[2]
        assert speedups[0] > 1.5          # batch-1: the paper's regime
        assert speedups[2] < 1.15         # batch-16: advantage mostly gone

    def test_correlated_batch_keeps_advantage(self, cfg, profile):
        indep = batch_sweep(cfg, ORIN, profile, batch_sizes=(8,),
                            correlation=0.0)[0]["speedup"]
        corr = batch_sweep(cfg, ORIN, profile, batch_sizes=(8,),
                           correlation=0.9)[0]["speedup"]
        assert corr > indep

    def test_exploited_skip_reported(self, cfg, profile):
        point = batched_decode_latency(cfg, ORIN, 8, profile)
        assert 0.0 < point.exploited_skip < 0.92

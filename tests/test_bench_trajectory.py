"""Unit tests for the bench-trajectory aggregator's extractors.

The aggregator is the one place every benchmark's JSON shape is read
back, so a silent shape drift turns the trajectory table into
``n/a`` rows without failing anything.  These tests round-trip each
extractor on fixture payloads, lock the ``_max_speedup`` recursive
fallback, and check the unreadable-file row -- the failure modes
``summarise`` is supposed to absorb rather than crash on.
"""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

SCRIPT = Path(__file__).resolve().parent.parent / "scripts" \
    / "bench_trajectory.py"


@pytest.fixture(scope="module")
def bench_trajectory():
    spec = importlib.util.spec_from_file_location("bench_trajectory", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def goodput_payload() -> dict:
    return {
        "benchmark": "overload_goodput",
        "workload": {"overload_factor": 1.5},
        "traces": {
            "poisson": {
                "fifo": {"goodput_tokens": 100, "shed_requests": 0},
                "deadline": {"goodput_tokens": 250, "shed_requests": 9},
            },
            "onoff": {
                "fifo": {"goodput_tokens": 80, "shed_requests": 0},
                "deadline": {"goodput_tokens": 160, "shed_requests": 12},
            },
        },
    }


def test_goodput_extractor(bench_trajectory):
    headline, detail = bench_trajectory._goodput(goodput_payload())
    assert headline == "2.50x goodput"
    assert "poisson" in detail and "1.5x overload" in detail
    assert "9 requests shed" in detail


def test_goodput_extractor_registered(bench_trajectory):
    assert bench_trajectory.EXTRACTORS["overload_goodput"] \
        is bench_trajectory._goodput


def test_interleaved_prefill_extractor(bench_trajectory):
    payload = {
        "inline": {"resident_max_itl_ms": 12.0},
        "budgeted": {"resident_max_itl_ms": 3.0, "step_budget": 32},
    }
    headline, detail = bench_trajectory._interleaved_prefill(payload)
    assert headline == "4.00x lower max ITL"
    assert "step_budget=32" in detail


def test_max_speedup_recurses_nested_containers(bench_trajectory):
    node = {
        "a": [{"speedup": 1.5}, {"speedup_over_sequential": 3.25}],
        "b": {"c": {"speedup_decode": 2.0}, "speedup": "not a number"},
    }
    assert bench_trajectory._max_speedup(node) == 3.25
    assert bench_trajectory._max_speedup({}) == float("-inf")


def test_generic_fallback(bench_trajectory):
    headline, detail = bench_trajectory._generic({"nested": {"speedup": 2.0}})
    assert headline == "2.00x speedup"
    headline, detail = bench_trajectory._generic({"tokens": 4})
    assert headline == "n/a"


def test_summarise_rows_and_fallbacks(bench_trajectory, tmp_path):
    # A known payload, a malformed known payload (extractor KeyError ->
    # generic fallback), an unknown benchmark, and an unreadable file.
    (tmp_path / "goodput.json").write_text(json.dumps(goodput_payload()))
    (tmp_path / "broken.json").write_text(
        json.dumps({"benchmark": "overload_goodput", "traces": {}})
    )
    (tmp_path / "novel.json").write_text(
        json.dumps({"benchmark": "novel_bench", "speedup": 1.75})
    )
    (tmp_path / "garbage.json").write_text("{not json")
    rows = {row[0]: row for row in
            bench_trajectory.summarise(results_dir=tmp_path)}
    assert rows["overload_goodput"][1] == "2.50x goodput"
    # The malformed payload and the known one share a benchmark name;
    # both rows exist (dict keyed by name keeps one -- check by count).
    all_rows = bench_trajectory.summarise(results_dir=tmp_path)
    assert len(all_rows) == 4
    headlines = {row[1] for row in all_rows}
    assert "n/a" in headlines          # broken payload fell back
    assert "1.75x speedup" in headlines  # unknown benchmark via generic
    assert rows["garbage"][1] == "unreadable"


def test_summarise_empty_dir(bench_trajectory, tmp_path):
    assert bench_trajectory.summarise(results_dir=tmp_path) == []

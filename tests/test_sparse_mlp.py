"""Tests for the SparseInfer MLP executor (Section IV semantics)."""

import numpy as np
import pytest

from repro.core.alpha import AlphaSchedule
from repro.core.sparse_mlp import SparseInferMLP
from repro.model.mlp import DenseMLP


@pytest.fixture
def x(micro_config, rng):
    return rng.standard_normal(micro_config.d_model).astype(np.float32)


class TestEquivalenceInvariants:
    def test_infinite_alpha_matches_dense(self, micro_weights, micro_config, x):
        """With alpha -> inf nothing is predicted-skipped and +AS removes
        only exact zeros, so the output equals the dense block."""
        sparse = SparseInferMLP(
            micro_weights,
            schedule=AlphaSchedule.uniform(1e6, micro_config.n_layers),
        )
        dense = DenseMLP(micro_weights)
        for layer in range(micro_config.n_layers):
            np.testing.assert_allclose(
                sparse.run(layer, x), dense.run(layer, x), atol=1e-5
            )

    def test_actual_sparsity_never_changes_values(self, micro_weights,
                                                  micro_config, x):
        """+AS skips only rows whose h1 or h3 is exactly zero; the output
        must be identical with and without it (same alpha)."""
        with_as = SparseInferMLP(micro_weights, use_actual_sparsity=True)
        without_as = SparseInferMLP(micro_weights, use_actual_sparsity=False)
        for layer in range(micro_config.n_layers):
            np.testing.assert_allclose(
                with_as.run(layer, x), without_as.run(layer, x), atol=1e-5
            )

    def test_zero_alpha_skips_everything_negative_majority(
        self, micro_weights, x
    ):
        """A tiny alpha makes any nonzero Nneg a skip."""
        sparse = SparseInferMLP(
            micro_weights,
            schedule=AlphaSchedule.uniform(1e-6, micro_weights.config.n_layers),
            use_actual_sparsity=False,
        )
        sparse.run(0, x)
        assert sparse.stats.gate_skip_fraction > 0.9


class TestStats:
    def test_up_skip_at_least_gate_skip_with_as(self, micro_weights, x):
        """The union (predicted + actual) can only add skips."""
        sparse = SparseInferMLP(micro_weights, use_actual_sparsity=True)
        for layer in range(micro_weights.config.n_layers):
            sparse.run(layer, x)
        assert sparse.stats.rows_skipped_up >= sparse.stats.rows_skipped_gate
        assert sparse.stats.rows_skipped_down >= sparse.stats.rows_skipped_up

    def test_without_as_all_stages_match_prediction(self, micro_weights, x):
        sparse = SparseInferMLP(micro_weights, use_actual_sparsity=False)
        sparse.run(0, x)
        assert sparse.stats.rows_skipped_up == sparse.stats.rows_skipped_gate
        assert sparse.stats.rows_skipped_down == sparse.stats.rows_skipped_gate

    def test_stats_accumulate_and_reset(self, micro_weights, x):
        sparse = SparseInferMLP(micro_weights)
        sparse.run(0, x)
        sparse.run(1, x)
        assert sparse.stats.calls == 2
        assert sparse.stats.rows_total == 2 * micro_weights.config.d_ff
        sparse.reset_stats()
        assert sparse.stats.calls == 0

    def test_skip_fractions_in_unit_range(self, micro_weights, x):
        sparse = SparseInferMLP(micro_weights)
        sparse.run(0, x)
        for frac in (
            sparse.stats.gate_skip_fraction,
            sparse.stats.up_skip_fraction,
            sparse.stats.down_skip_fraction,
        ):
            assert 0.0 <= frac <= 1.0


class TestConstruction:
    def test_predictor_layer_mismatch_rejected(self, micro_weights, rng):
        from repro.core.predictor import SparseInferPredictor

        wrong = SparseInferPredictor.from_gate_weights(
            [rng.standard_normal(
                (micro_weights.config.d_ff, micro_weights.config.d_model)
            ).astype(np.float32)]
        )
        with pytest.raises(ValueError):
            SparseInferMLP(micro_weights, predictor=wrong)

    def test_schedule_overrides_predictor(self, micro_weights, x):
        from repro.core.predictor import SparseInferPredictor

        base = SparseInferPredictor.from_gate_weights(
            micro_weights.gate_matrices()
        )
        sched = AlphaSchedule.uniform(1e6, micro_weights.config.n_layers)
        sparse = SparseInferMLP(micro_weights, predictor=base, schedule=sched)
        sparse.run(0, x)
        assert sparse.stats.rows_skipped_gate == 0

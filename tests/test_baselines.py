"""Tests for the DejaVu, PowerInfer, random-skip and threshold baselines."""

import numpy as np
import pytest

from repro.baselines.dejavu import (
    DejaVuPredictor,
    DejaVuTrainConfig,
    LayerPredictorWeights,
    group_traces_by_layer,
    train_dejavu_predictor,
)
from repro.baselines.powerinfer import PowerInferMLP, build_powerinfer_engine
from repro.baselines.random_skip import RandomSkipMLP
from repro.baselines.threshold import ThresholdMLP, calibrate_thresholds
from repro.model.inference import InferenceModel, MLPTrace
from repro.model.mlp import DenseMLP


@pytest.fixture(scope="module")
def traces(request):
    """Dense-engine traces of the micro model over a short generation."""
    from repro.model.config import ModelConfig
    from repro.model.weights import random_weights

    cfg = ModelConfig(name="micro-b", vocab_size=19, d_model=32, n_layers=2,
                      n_heads=2, d_ff=64, max_seq_len=64, dtype_bytes=4)
    weights = random_weights(cfg, seed=11)
    engine = InferenceModel(weights, trace_mlp_inputs=True)
    for start in range(4):
        engine.reset()
        engine.generate([1 + start, 5, 3, 8], 6)
    return weights, engine.traces


class TestDejaVu:
    def test_group_traces(self, traces):
        weights, trace_list = traces
        grouped = group_traces_by_layer(trace_list, weights.config.n_layers)
        assert len(grouped) == 2
        x, y = grouped[0]
        assert x.shape[1] == weights.config.d_model
        assert y.shape[1] == weights.config.d_ff

    def test_missing_layer_rejected(self, traces):
        _, trace_list = traces
        with pytest.raises(ValueError):
            group_traces_by_layer(trace_list, 99)

    def test_trained_predictor_beats_chance(self, traces):
        """The FC predictor must recover most of the sparsity pattern."""
        weights, trace_list = traces
        predictor = train_dejavu_predictor(
            trace_list, weights.config.n_layers,
            DejaVuTrainConfig(rank=16, steps=120, lr=5e-3), seed=0,
        )
        from repro.core.metrics import evaluate_skip_prediction

        hits = []
        for t in trace_list[:40]:
            predicted = predictor.predict(t.layer, t.x)
            q = evaluate_skip_prediction(predicted, t.gate_preact <= 0)
            hits.append(q.accuracy)
        assert np.mean(hits) > 0.8

    def test_threshold_trades_recall(self, traces):
        weights, trace_list = traces
        predictor = train_dejavu_predictor(
            trace_list, weights.config.n_layers,
            DejaVuTrainConfig(rank=8, steps=60), seed=0,
        )
        t = trace_list[0]
        loose = predictor.with_threshold(0.3).predict(t.layer, t.x)
        strict = predictor.with_threshold(0.9).predict(t.layer, t.x)
        assert strict.sum() <= loose.sum()

    def test_memory_accounting(self):
        lw = LayerPredictorWeights(
            a=np.zeros((8, 4), dtype=np.float32),
            b=np.zeros((4, 16), dtype=np.float32),
        )
        p = DejaVuPredictor([lw, lw])
        assert p.nbytes == 2 * 2 * (8 * 4 + 4 * 16)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DejaVuTrainConfig(rank=0)
        with pytest.raises(ValueError):
            DejaVuTrainConfig(decision_threshold=1.5)

    def test_empty_layers_rejected(self):
        with pytest.raises(ValueError):
            DejaVuPredictor([])


class TestPowerInfer:
    def test_engine_runs(self, traces):
        weights, trace_list = traces
        predictor = train_dejavu_predictor(
            trace_list, weights.config.n_layers,
            DejaVuTrainConfig(rank=8, steps=40), seed=0,
        )
        engine = build_powerinfer_engine(weights, predictor)
        result = engine.generate([1, 2, 3], 3)
        assert len(result.generated_ids) <= 3
        assert isinstance(engine.mlp, PowerInferMLP)
        assert isinstance(engine.prefill_mlp, DenseMLP)

    def test_uniform_skip_across_stages(self, traces):
        """PowerInfer reuses one prediction for gate/up/down (no +AS)."""
        weights, trace_list = traces
        predictor = train_dejavu_predictor(
            trace_list, weights.config.n_layers,
            DejaVuTrainConfig(rank=8, steps=40), seed=0,
        )
        mlp = PowerInferMLP(weights, predictor)
        mlp.run(0, trace_list[0].x)
        assert mlp.stats.rows_skipped_gate == mlp.stats.rows_skipped_up
        assert mlp.stats.rows_skipped_up == mlp.stats.rows_skipped_down

    def test_layer_mismatch_rejected(self, traces):
        weights, trace_list = traces
        lw = LayerPredictorWeights(
            a=np.zeros((32, 4), dtype=np.float32),
            b=np.zeros((4, 64), dtype=np.float32),
        )
        with pytest.raises(ValueError):
            PowerInferMLP(weights, DejaVuPredictor([lw]))  # 1 layer vs 2


class TestRandomSkip:
    def test_skip_fraction_respected(self, micro_weights, rng):
        mlp = RandomSkipMLP(micro_weights, skip_fraction=0.9, seed=1)
        x = rng.standard_normal(micro_weights.config.d_model).astype(np.float32)
        for layer in range(micro_weights.config.n_layers):
            mlp.run(layer, x)
        assert mlp.stats.gate_skip_fraction == pytest.approx(0.9, abs=0.08)

    def test_zero_fraction_matches_dense(self, micro_weights, rng):
        mlp = RandomSkipMLP(micro_weights, skip_fraction=0.0)
        dense = DenseMLP(micro_weights)
        x = rng.standard_normal(micro_weights.config.d_model).astype(np.float32)
        np.testing.assert_allclose(mlp.run(0, x), dense.run(0, x), atol=1e-5)

    def test_invalid_fraction_rejected(self, micro_weights):
        with pytest.raises(ValueError):
            RandomSkipMLP(micro_weights, skip_fraction=1.5)

    def test_output_diverges_from_dense(self, micro_weights, rng):
        """Random 90% skipping must substantially change the output --
        the mechanism behind the paper's 0%-accuracy observation."""
        mlp = RandomSkipMLP(micro_weights, skip_fraction=0.9, seed=2)
        dense = DenseMLP(micro_weights)
        x = rng.standard_normal(micro_weights.config.d_model).astype(np.float32)
        a, b = mlp.run(0, x), dense.run(0, x)
        assert np.linalg.norm(a - b) > 0.1 * np.linalg.norm(b)


class TestThreshold:
    def test_calibration_hits_target(self, traces):
        weights, trace_list = traces
        thresholds = calibrate_thresholds(
            trace_list, weights.config.n_layers, target_sparsity=0.7,
            activation=weights.config.activation,
        )
        assert thresholds.shape == (2,)
        assert np.all(thresholds >= 0)

    def test_executor_sparsifies_up_down_only(self, traces, rng):
        weights, trace_list = traces
        thresholds = calibrate_thresholds(
            trace_list, weights.config.n_layers, target_sparsity=0.7,
            activation=weights.config.activation,
        )
        mlp = ThresholdMLP(weights, thresholds)
        mlp.run(0, trace_list[0].x)
        assert mlp.stats.rows_skipped_gate == 0        # CATS: dense gate
        assert mlp.stats.rows_skipped_up > 0

    def test_zero_threshold_matches_dense(self, micro_weights, rng):
        mlp = ThresholdMLP(
            micro_weights, np.zeros(micro_weights.config.n_layers)
        )
        dense = DenseMLP(micro_weights)
        x = rng.standard_normal(micro_weights.config.d_model).astype(np.float32)
        np.testing.assert_allclose(mlp.run(1, x), dense.run(1, x), atol=1e-5)

    def test_invalid_target_rejected(self, traces):
        weights, trace_list = traces
        with pytest.raises(ValueError):
            calibrate_thresholds(trace_list, 2, target_sparsity=0.0)

    def test_threshold_count_mismatch_rejected(self, micro_weights):
        with pytest.raises(ValueError):
            ThresholdMLP(micro_weights, np.zeros(7))

"""Batched per-request sampling (PR 8).

Covers the three sampler bugfixes (top-k tie over-keep, unstable nucleus
sort, engine-global RNG), the scalar<->batched bit-identity contract, and
the serving integration: greedy bit-identity vs ``build_engine`` across
the batch x paged/sharing/cache/preemption matrix, seeded reproducibility
across batch composition and admission order, stop-id / ``max_new_tokens``
interactions, stream lifecycle across preemption, and the ``on_token``
streaming callback.
"""

import numpy as np
import pytest

from repro.core.engine import build_batched_engine, build_engine
from repro.eval.latency import measure_batched_serving
from repro.eval.reporting import format_sampling
from repro.model.sampler import (
    BatchedSampler,
    Sampler,
    SamplerConfig,
    derive_stream,
    filtered_probs,
    sample_rows,
)
from repro.serving import ContinuousBatchingScheduler, Request

VOCAB_19 = 19   # micro_config's vocab size (tests/conftest.py)


def one_row(logits, temperature=1.0, top_k=0, top_p=0.0):
    """filtered_probs for a single row, as a 1-D array."""
    return filtered_probs(
        np.asarray(logits, dtype=np.float64)[None, :],
        np.array([temperature], dtype=np.float64),
        np.array([top_k], dtype=np.int64),
        np.array([top_p], dtype=np.float64),
    )[0]


def support(probs):
    return set(np.flatnonzero(probs > 0.0).tolist())


class TestTopKTieBreak:
    """Satellite bugfix: ties at the kth logit used to keep > k tokens."""

    def test_exactly_k_survive_on_kth_tie(self):
        # Three-way tie at the top with k=2: the old `scaled >= kth`
        # mask kept all three.  Lowest token ids win now.
        probs = one_row([1.0, 1.0, 1.0, 0.0], top_k=2)
        assert support(probs) == {0, 1}

    def test_tie_straddling_the_boundary(self):
        probs = one_row([2.0, 1.0, 1.0, 1.0, 0.0], top_k=3)
        assert support(probs) == {0, 1, 2}

    def test_tied_survivors_split_mass_equally(self):
        probs = one_row([1.0, 1.0, 1.0, 0.0], top_k=2)
        assert probs[0] == pytest.approx(probs[1])
        assert probs.sum() == pytest.approx(1.0)

    def test_exact_k_across_random_tied_rows(self):
        rng = np.random.default_rng(7)
        for _ in range(50):
            row = rng.integers(0, 4, size=23).astype(np.float64)  # many ties
            k = int(rng.integers(1, 23))
            probs = one_row(row, top_k=k)
            assert len(support(probs)) == k

    def test_top_k_at_least_vocab_keeps_all(self):
        # The old code crashed with an out-of-bounds kth on k > vocab.
        for k in (4, 5, 100):
            probs = one_row([1.0, 2.0, 3.0, 4.0], top_k=k)
            assert support(probs) == {0, 1, 2, 3}

    def test_scalar_sampler_support_respects_exact_k(self):
        sampler = Sampler(SamplerConfig(temperature=1.0, top_k=2, seed=0))
        logits = np.array([1.0, 1.0, 1.0, 0.0])
        draws = {sampler.sample(logits) for _ in range(300)}
        assert draws <= {0, 1}


class TestNucleusStability:
    """Satellite bugfix: unstable argsort made tied-prob keep sets
    tie-order-dependent; the stable sort keeps lowest token ids."""

    def test_tied_probs_keep_lowest_ids(self):
        # Uniform over 4 tokens, p=0.5 -> exactly the two lowest ids.
        probs = one_row([0.0, 0.0, 0.0, 0.0], top_p=0.5)
        assert support(probs) == {0, 1}

    def test_deterministic_across_calls(self):
        row = np.array([1.0, 2.0, 2.0, 2.0, 0.5])
        kept = support(one_row(row, top_p=0.6))
        for _ in range(100):
            assert support(one_row(row, top_p=0.6)) == kept

    def test_top_p_one_keeps_full_support(self):
        probs = one_row([3.0, 1.0, -2.0], top_p=1.0)
        assert support(probs) == {0, 1, 2}

    def test_all_mass_in_one_token(self):
        probs = one_row([100.0, 0.0, 0.0], top_p=0.5)
        assert support(probs) == {0}

    def test_first_token_kept_even_above_p(self):
        # Head token alone exceeds p: the smallest covering set is it.
        probs = one_row([10.0, 1.0, 1.0], top_p=0.01)
        assert support(probs) == {0}

    def test_mirrored_rows_keep_mirrored_sets(self):
        # The same tied values at different indices must keep each
        # row's lowest ids -- the order-dependence the bug allowed.
        row = np.array([0.0, 0.0, 1.0, 1.0])
        assert support(one_row(row, top_p=0.5)) == {2, 3}
        assert support(one_row(row[::-1].copy(), top_p=0.5)) == {0, 1}


class TestScalarBatchedEquivalence:
    """The PR's core contract: batched == scalar, bit for bit."""

    CONFIGS = [
        SamplerConfig(),                                            # greedy
        SamplerConfig(temperature=0.8, seed=3),
        SamplerConfig(temperature=1.3, top_k=5, seed=3),
        SamplerConfig(temperature=0.5, top_p=0.7, seed=9),
        SamplerConfig(temperature=1.0, top_k=4, top_p=0.9, seed=1),
        SamplerConfig(temperature=2.0, top_k=1, seed=4),            # degenerate
    ]

    def test_batched_matches_scalar_token_for_token(self):
        rng = np.random.default_rng(0)
        request_ids = [10 * (i + 1) for i in range(len(self.CONFIGS))]
        batched = BatchedSampler()
        scalars = [
            Sampler.for_request(c, r)
            for c, r in zip(self.CONFIGS, request_ids)
        ]
        for step in range(100):
            logits = rng.normal(size=(len(self.CONFIGS), 17)).astype(np.float32)
            logits[2, 3] = logits[2, 7]   # inject a tie
            batch_tokens = batched.sample(logits, self.CONFIGS, request_ids)
            scalar_tokens = [s.sample(logits[i]) for i, s in enumerate(scalars)]
            assert batch_tokens.tolist() == scalar_tokens, step

    def test_batch_composition_invariance(self):
        # A request's draw depends only on its row/config/stream --
        # never on who shares the batch.
        rng = np.random.default_rng(5)
        cfg = SamplerConfig(temperature=0.9, top_k=6, top_p=0.8, seed=42)
        logits = rng.normal(size=(4, 23))
        alone = BatchedSampler().sample(logits[2:3], [cfg], [7])[0]
        together = BatchedSampler().sample(
            logits, [cfg] * 4, [5, 6, 7, 8]
        )[2]
        assert alone == together

    def test_greedy_rows_are_argmax_and_draw_nothing(self):
        rng = np.random.default_rng(1)
        logits = rng.normal(size=(3, 11))
        sampler = BatchedSampler()
        tokens = sampler.sample(
            logits, [SamplerConfig()] * 3, [1, 2, 3]
        )
        assert tokens.tolist() == np.argmax(logits, axis=-1).tolist()
        assert sampler.n_streams == 0

    def test_same_seed_same_request_reproduces(self):
        cfg = SamplerConfig(temperature=1.0, seed=11)
        rng = np.random.default_rng(2)
        logits = [rng.normal(size=(1, 9)) for _ in range(20)]
        runs = []
        for _ in range(2):
            sampler = BatchedSampler()
            runs.append([int(sampler.sample(l, [cfg], [4])[0]) for l in logits])
        assert runs[0] == runs[1]

    def test_distinct_requests_get_decorrelated_streams(self):
        cfg = SamplerConfig(temperature=5.0, seed=0)
        rng = np.random.default_rng(3)
        logits = rng.normal(size=(2, 64)) * 0.01   # near-uniform
        sampler = BatchedSampler()
        a = [int(sampler.sample(logits, [cfg] * 2, [1, 2])[0]) for _ in range(30)]
        b = [int(sampler.sample(logits, [cfg] * 2, [1, 2])[1]) for _ in range(30)]
        assert a != b

    def test_drop_stream_restarts_the_sequence(self):
        cfg = SamplerConfig(temperature=1.0, seed=8)
        rng = np.random.default_rng(4)
        logits = rng.normal(size=(1, 13))
        sampler = BatchedSampler()
        first = int(sampler.sample(logits, [cfg], [9])[0])
        sampler.sample(logits, [cfg], [9])
        sampler.drop_stream(9)
        assert int(sampler.sample(logits, [cfg], [9])[0]) == first

    def test_shape_and_length_validation(self):
        sampler = BatchedSampler()
        with pytest.raises(ValueError, match="2-D"):
            sampler.sample(np.zeros(5), [SamplerConfig()], [1])
        with pytest.raises(ValueError, match="configs"):
            sampler.sample(np.zeros((2, 5)), [SamplerConfig()], [1, 2])

    def test_sample_rows_never_selects_zero_prob_token(self):
        probs = np.array([[0.5, 0.0, 0.5]])
        for u in (0.0, 0.25, 0.5 - 1e-12, 0.5, 0.75, 1.0 - 1e-12):
            token = int(sample_rows(probs, np.array([u]))[0])
            assert token in (0, 2)

    def test_derive_stream_is_stable(self):
        a = derive_stream(3, 7).random(5)
        b = derive_stream(3, 7).random(5)
        np.testing.assert_array_equal(a, b)
        c = derive_stream(3, 8).random(5)
        assert not np.array_equal(a, c)


# The serving knob matrix of the acceptance sweep: every cache/sharing/
# preemption shape the scheduler supports.  (paged, sharing, cache_pages,
# step_budget, preemption) -- sharing requires paged, cache requires
# sharing, preemption wants a budget-free tick for determinism here.
MATRIX = [
    dict(),
    dict(paged=True),
    dict(paged=True, prefix_sharing=True),
    dict(paged=True, prefix_sharing=True, cache_pages=8),
    dict(paged=True, prefix_sharing=True, cache_pages=8, step_budget=4),
    dict(paged=True, prefix_sharing=True, cache_pages=8, preemption=True),
]


def run_scheduler(weights, requests, max_batch_size, sampling=None,
                  on_token=None, **knobs):
    """Drain ``requests`` and return {request_id: generated_ids}."""
    scheduler_keys = ("step_budget", "preemption")
    engine_knobs = {k: v for k, v in knobs.items() if k not in scheduler_keys}
    sched_knobs = {k: v for k, v in knobs.items() if k in scheduler_keys}
    engine = build_batched_engine(
        weights, max_batch_size=max_batch_size, sampling=sampling,
        **engine_knobs,
    )
    scheduler = ContinuousBatchingScheduler(
        engine, on_token=on_token, **sched_knobs,
    )
    for request in requests:
        scheduler.submit(request)
    report = scheduler.run()
    assert all(c.ok for c in report.completions)
    return {c.request_id: list(c.generated_ids) for c in report.completions}, report


def scalar_reference(weights, request, config):
    """What the single-sequence engine + scalar sampler would generate."""
    engine = build_engine(weights)
    sampler = Sampler.for_request(config, request.request_id)
    logits = engine.prefill(list(request.prompt_ids))
    out = []
    while len(out) < request.max_new_tokens:
        token = sampler.sample(logits)
        if request.stop_ids and token in request.stop_ids:
            break
        out.append(token)
        if len(out) < request.max_new_tokens:
            logits = engine.forward_token(token, engine.cache.length)
    return out


PROMPTS = [[1, 4, 2], [3, 5], [6, 7, 8, 9], [2, 2, 1], [10, 3], [4, 4, 4]]


class TestServingGreedyMatrix:
    """Default (greedy) serving output is unchanged by the sampler
    refactor: bit-identical to ``build_engine`` at batch 1 and
    token-identical at batch > 1, across the whole knob matrix."""

    @pytest.mark.parametrize("batch", [1, 2, 4, 8])
    @pytest.mark.parametrize("knobs", MATRIX,
                             ids=lambda k: "+".join(k) or "fixed")
    def test_greedy_matches_reference(self, micro_weights, batch, knobs):
        requests = [
            Request(request_id=i, prompt_ids=tuple(p), max_new_tokens=6)
            for i, p in enumerate(PROMPTS)
        ]
        generated, report = run_scheduler(
            micro_weights, requests, batch, **knobs
        )
        reference = build_engine(micro_weights)
        for i, prompt in enumerate(PROMPTS):
            expected = reference.generate(prompt, max_new_tokens=6).generated_ids
            assert generated[i] == list(expected), (batch, knobs, i)
        assert report.greedy_tokens == report.tokens_generated
        assert report.sampled_tokens == 0

    def test_greedy_stop_ids_and_budget_interaction(self, micro_weights):
        # Stop id cut one request short; max_new_tokens caps another.
        reference = build_engine(micro_weights)
        full = reference.generate(PROMPTS[0], max_new_tokens=6).generated_ids
        stop = {int(full[2])}
        requests = [
            Request(request_id=0, prompt_ids=tuple(PROMPTS[0]),
                    max_new_tokens=6, stop_ids=frozenset(stop)),
            Request(request_id=1, prompt_ids=tuple(PROMPTS[2]),
                    max_new_tokens=3),
        ]
        generated, _ = run_scheduler(micro_weights, requests, 4, paged=True)
        assert generated[0] == list(full[:2])
        expected = reference.generate(PROMPTS[2], max_new_tokens=3).generated_ids
        assert generated[1] == list(expected)


class TestServingSampling:
    """Stochastic decode through the scheduler: scalar-reference
    equality at batch 1, seeded reproducibility at batch > 1."""

    CFG = SamplerConfig(temperature=0.9, top_k=8, top_p=0.95, seed=17)

    def _requests(self, n=4, max_new=5, config=None, stop_ids=None):
        return [
            Request(request_id=i, prompt_ids=tuple(PROMPTS[i]),
                    max_new_tokens=max_new, stop_ids=stop_ids,
                    sampling=config if config is not None else self.CFG)
            for i in range(n)
        ]

    def test_batch1_bit_identical_to_scalar_reference(self, micro_weights):
        # batch=1 decode is bit-identical to build_engine, and both
        # paths share the (1, vocab) sampler kernel and stream -- so
        # the scheduler must reproduce the scalar loop exactly.
        requests = self._requests(n=3)
        generated, report = run_scheduler(micro_weights, requests, 1)
        for request in requests:
            expected = scalar_reference(micro_weights, request, self.CFG)
            assert generated[request.request_id] == expected
        assert report.sampled_tokens == report.tokens_generated > 0
        assert report.greedy_tokens == 0

    @pytest.mark.parametrize("batch", [2, 4, 8])
    @pytest.mark.parametrize("knobs", MATRIX,
                             ids=lambda k: "+".join(k) or "fixed")
    def test_seeded_tokens_invariant_to_batch_and_knobs(
            self, micro_weights, batch, knobs):
        # Fixed per-request streams: tokens must not depend on batch
        # size, cache backend, sharing, budget, or preemption.  (Logit
        # rows at batch > 1 can differ from solo by ~1e-8, so this is
        # token equality with astronomically-unlikely flips, not float
        # bit-identity -- the seeds below are fixed.)
        requests = self._requests(n=6, max_new=5)
        baseline, _ = run_scheduler(micro_weights, requests, 1)
        generated, report = run_scheduler(
            micro_weights, requests, batch, **knobs
        )
        assert generated == baseline, (batch, knobs)
        assert report.sampled_tokens == report.tokens_generated

    def test_tokens_invariant_to_admission_order(self, micro_weights):
        requests = self._requests(n=4)
        forward, _ = run_scheduler(micro_weights, requests, 2, paged=True)
        backward, _ = run_scheduler(
            micro_weights, list(reversed(requests)), 2, paged=True
        )
        assert forward == backward

    def test_engine_default_sampling_knob(self, micro_weights):
        # Requests without a config inherit the engine default; the
        # result equals tagging each request explicitly.
        plain = [
            Request(request_id=i, prompt_ids=tuple(PROMPTS[i]),
                    max_new_tokens=4)
            for i in range(3)
        ]
        via_engine, report = run_scheduler(
            micro_weights, plain, 2, sampling=self.CFG
        )
        tagged = self._requests(n=3, max_new=4)
        via_request, _ = run_scheduler(micro_weights, tagged, 2)
        assert via_engine == via_request
        assert report.sampled_tokens == report.tokens_generated

    def test_mixed_greedy_and_sampled_batch(self, micro_weights):
        # Greedy and stochastic requests co-resident in one batch:
        # greedy rows stay bit-identical to build_engine, sampled rows
        # stay stream-reproducible, and the telemetry splits add up.
        sampled = Request(request_id=0, prompt_ids=tuple(PROMPTS[0]),
                          max_new_tokens=5, sampling=self.CFG)
        greedy = Request(request_id=1, prompt_ids=tuple(PROMPTS[2]),
                         max_new_tokens=5)
        generated, report = run_scheduler(
            micro_weights, [sampled, greedy], 2, paged=True
        )
        reference = build_engine(micro_weights)
        expected = reference.generate(PROMPTS[2], max_new_tokens=5).generated_ids
        assert generated[1] == list(expected)
        solo, _ = run_scheduler(micro_weights, [sampled], 1)
        assert generated[0] == solo[0]
        assert report.greedy_tokens == 5
        assert report.sampled_tokens == 5
        assert report.greedy_tokens + report.sampled_tokens \
            == report.tokens_generated

    def test_sampled_stop_ids_respected(self, micro_weights):
        request = self._requests(n=1, max_new=6)[0]
        unstopped = scalar_reference(micro_weights, request, self.CFG)
        assert len(unstopped) >= 3, "workload too short to cut"
        stop = frozenset({int(unstopped[2])})
        stopped_req = Request(
            request_id=request.request_id, prompt_ids=request.prompt_ids,
            max_new_tokens=6, stop_ids=stop, sampling=self.CFG,
        )
        generated, _ = run_scheduler(micro_weights, [stopped_req], 1)
        expected = scalar_reference(micro_weights, stopped_req, self.CFG)
        assert generated[request.request_id] == expected
        assert len(generated[request.request_id]) < len(unstopped)
        assert not set(generated[request.request_id]) & stop

    def test_preemption_resume_does_not_redraw(self, micro_weights):
        # A preempted sampled request must finish with exactly the
        # tokens an uninterrupted run produces: replay never samples,
        # so the stream position survives eviction.
        low = Request(request_id=0, prompt_ids=(1, 2, 3, 4, 5, 6, 7, 8),
                      max_new_tokens=8, priority=0, sampling=self.CFG)
        vip = Request(request_id=1, prompt_ids=(9, 10, 11, 12, 13, 14, 15, 16),
                      max_new_tokens=8, priority=5, sampling=self.CFG)
        engine = build_batched_engine(
            micro_weights, max_batch_size=2, paged=True, page_size=4,
            n_pages=6, prefix_sharing=True, cache_pages=4,
        )
        scheduler = ContinuousBatchingScheduler(engine, preemption=True)
        scheduler.submit(low)
        ticks = 0
        preempted = False
        while not scheduler.idle:
            scheduler.step()
            ticks += 1
            assert ticks < 300
            if ticks == 3:
                scheduler.submit(vip)
            preempted = preempted or scheduler.report.preemptions > 0
        assert preempted, "workload failed to trigger a preemption"
        report = scheduler.report
        assert all(c.ok for c in report.completions)
        interrupted = {c.request_id: list(c.generated_ids)
                       for c in report.completions}
        smooth, _ = run_scheduler(micro_weights, [low], 1)
        assert interrupted[0] == smooth[0]
        smooth_vip, _ = run_scheduler(micro_weights, [vip], 1)
        assert interrupted[1] == smooth_vip[1]

    def test_streams_dropped_at_completion_kept_across_preemption(
            self, micro_weights):
        engine = build_batched_engine(
            micro_weights, max_batch_size=2, paged=True, page_size=4,
            n_pages=6, prefix_sharing=True, cache_pages=4,
        )
        scheduler = ContinuousBatchingScheduler(engine, preemption=True)
        low = Request(request_id=0, prompt_ids=(1, 2, 3, 4, 5, 6, 7, 8),
                      max_new_tokens=8, priority=0, sampling=self.CFG)
        scheduler.submit(low)
        ticks = 0
        saw_preempted_stream = False
        while not scheduler.idle:
            scheduler.step()
            ticks += 1
            assert ticks < 300
            if ticks == 3:
                scheduler.submit(Request(
                    request_id=1, prompt_ids=(9, 10, 11, 12, 13, 14, 15, 16),
                    max_new_tokens=8, priority=5, sampling=self.CFG,
                ))
            if 0 in scheduler._resume_state:
                # Evicted mid-flight: the stream must survive for resume.
                saw_preempted_stream = 0 in engine.sampler._streams
        assert saw_preempted_stream
        assert engine.sampler.n_streams == 0   # all dropped at completion


class TestOnTokenCallback:
    def test_streams_every_emitted_token_in_order(self, micro_weights):
        events = []
        requests = [
            Request(request_id=i, prompt_ids=tuple(PROMPTS[i]),
                    max_new_tokens=4,
                    sampling=SamplerConfig(temperature=0.8, seed=2)
                    if i % 2 else None)
            for i in range(4)
        ]
        generated, _ = run_scheduler(
            micro_weights, requests, 2, paged=True,
            on_token=lambda rid, tok, step: events.append((rid, tok, step)),
        )
        streamed = {}
        last_step = 0
        for rid, tok, step in events:
            streamed.setdefault(rid, []).append(tok)
            assert step >= last_step or True   # steps come from ticks
        for rid, tokens in generated.items():
            assert streamed.get(rid, []) == tokens

    def test_stop_token_is_never_streamed(self, micro_weights):
        reference = build_engine(micro_weights)
        full = reference.generate(PROMPTS[0], max_new_tokens=6).generated_ids
        stop = frozenset({int(full[2])})
        events = []
        run_scheduler(
            micro_weights,
            [Request(request_id=0, prompt_ids=tuple(PROMPTS[0]),
                     max_new_tokens=6, stop_ids=stop)],
            1,
            on_token=lambda rid, tok, step: events.append(tok),
        )
        assert events == list(full[:2])
        assert not set(events) & stop

    def test_non_callable_rejected(self, micro_weights):
        engine = build_batched_engine(micro_weights, max_batch_size=2)
        with pytest.raises(ValueError, match="on_token"):
            ContinuousBatchingScheduler(engine, on_token=42)


class TestRequestSamplingField:
    def test_rejects_non_config(self):
        with pytest.raises(ValueError, match="sampling"):
            Request(request_id=0, prompt_ids=(1,), max_new_tokens=1,
                    sampling={"temperature": 1.0})

    def test_defaults_to_none(self):
        request = Request(request_id=0, prompt_ids=(1,), max_new_tokens=1)
        assert request.sampling is None


class TestSamplingMeasurement:
    def test_measure_batched_serving_sampling_knob(self, micro_weights):
        requests = [
            Request(request_id=i, prompt_ids=tuple(PROMPTS[i]),
                    max_new_tokens=4)
            for i in range(4)
        ]
        cfg = SamplerConfig(temperature=0.7, seed=5)
        point = measure_batched_serving(
            micro_weights, requests, max_batch_size=2, sampling=cfg,
        )
        assert point.sampled_tokens == point.tokens_generated > 0
        assert point.greedy_tokens == 0
        assert point.sampler_seconds > 0.0
        assert "+sampled(T=0.7)" in point.label
        assert point.wall_seconds >= point.sampler_seconds
        table = format_sampling([point])
        assert str(point.sampled_tokens) in table
        greedy_point = measure_batched_serving(
            micro_weights, requests, max_batch_size=2,
        )
        assert greedy_point.greedy_tokens == greedy_point.tokens_generated
        assert greedy_point.sampled_tokens == 0
        assert "+sampled" not in greedy_point.label

"""Randomized property tests for the budgeted / preemptive scheduler.

Draws hundreds of random serving schedules -- request mixes (prompt
lengths, token budgets, priorities, zero-token requests, mid-run
arrivals) crossed with scheduler/engine knobs (page size, tight page
budgets, step budgets, preemption, prefix sharing, prefix cache,
chunked prefill) -- and asserts, for every drawn schedule:

* **Token identity**: every request's generated tokens (and error
  status) are identical to an unconstrained reference run
  (``step_budget=0``, ``preemption=False``) of the same workload on the
  same engine geometry.  Budgets and preemption change *when* work
  happens, never what is decoded.
* **Page conservation**: after every tick -- so across every
  preemption, park, revive and resume -- ``free + in_use + cached ==
  n_pages``, reservations stay backable, and no page is both free and
  cached.
* **No page freed under a sharer**: every page referenced by a live
  sequence's page table has a matching refcount and is in neither the
  free nor the cached set; preempting one sharer of a forked prefix
  can therefore never free (or park) pages its donor still maps.
* **No lost sequences**: every submitted request completes exactly once
  (preempted ones are always eventually resumed and finished), the
  queue/batch/resume-state all drain empty, and the report's token
  count matches the completions.

The driver steps the scheduler tick-by-tick (checking invariants after
every tick) rather than using ``run()``, and a draw-level accumulator
asserts the random schedules actually exercised preemption, resume,
replay and piggybacked prefill -- a suite that never preempts proves
nothing.
"""

from collections import Counter

import numpy as np
import pytest

from repro.core.predictor import SparseInferPredictor
from repro.serving.engine import BatchedEngine
from repro.serving.request import Request
from repro.serving.scheduler import ContinuousBatchingScheduler

N_DRAWS = 70           # workloads drawn ...
RUNS_PER_DRAW = 3      # ... each drained as reference + 2 constrained runs
MAX_TICKS = 1500
VOCAB = 19             # micro_config vocabulary


@pytest.fixture(scope="module")
def packed_predictor(micro_weights):
    """Pack the predictor once; packing dominates engine construction."""
    return SparseInferPredictor.from_gate_weights(
        micro_weights.gate_matrices()
    )


def check_pool_invariants(engine, scheduler) -> None:
    """Conservation + refcount cross-check against the live batch."""
    cache = engine.cache
    pool = cache.pool
    assert pool.n_free_pages + pool.n_pages_in_use + pool.n_cached_pages \
        == pool.n_pages
    assert 0 <= pool._reserved <= pool.n_free_pages + pool.n_cached_pages
    assert not (pool._free_set & pool._cached_set)
    refs = Counter()
    for seq in scheduler.active:
        refs.update(seq.slot.page_table)
    for page in range(pool.n_pages):
        assert pool.refcount(page) == refs.get(page, 0), (
            f"page {page}: refcount {pool.refcount(page)} != "
            f"{refs.get(page, 0)} live table references"
        )
        unmapped = page in pool._free_set or page in pool._cached_set
        # A page a live sequence still maps must never be freed or
        # parked -- the preemption-vs-sharer property.
        assert unmapped == (refs.get(page, 0) == 0)


def draw_workload(rng) -> list:
    """``(arrival_tick, Request)`` pairs, shared prefixes included."""
    n_requests = int(rng.integers(3, 8))
    base_prefix = tuple(int(t) for t in
                        rng.integers(1, VOCAB, size=int(rng.integers(4, 9))))
    schedule = []
    for i in range(n_requests):
        if rng.random() < 0.4:
            suffix = tuple(int(t) for t in
                           rng.integers(1, VOCAB,
                                        size=int(rng.integers(1, 6))))
            prompt = base_prefix + suffix
        else:
            prompt = tuple(int(t) for t in
                           rng.integers(1, VOCAB,
                                        size=int(rng.integers(2, 17))))
        max_new = int(rng.integers(0, 8)) if rng.random() < 0.15 \
            else int(rng.integers(1, 8))
        request = Request(
            request_id=i, prompt_ids=prompt, max_new_tokens=max_new,
            priority=int(rng.integers(0, 3)),
        )
        arrival = 0 if rng.random() < 0.5 else int(rng.integers(1, 7))
        schedule.append((arrival, request))
    return schedule


def draw_geometry(rng, schedule) -> dict:
    """Engine knobs, with a page budget tight enough to starve."""
    page_size = int(rng.choice([1, 3, 8]))
    worsts = [
        -(-(r.prompt_len + r.max_new_tokens - 1) // page_size)
        for _, r in schedule if r.max_new_tokens > 0
    ]
    max_w = max(worsts) if worsts else 1
    n_pages = max_w + int(rng.integers(0, max_w + 1))
    prefix_sharing = bool(rng.random() < 0.6)
    cache_pages = int(min(4, n_pages // 2)) \
        if prefix_sharing and rng.random() < 0.6 else 0
    return dict(
        max_batch_size=int(rng.integers(2, 5)),
        page_size=page_size,
        n_pages=n_pages,
        prefix_sharing=prefix_sharing,
        cache_pages=cache_pages,
        prefill_chunk=int(rng.choice([0, 3])),
    )


def drive(weights, predictor, schedule, geometry,
          step_budget, preemption, check_pool=True):
    """Drain one schedule tick-by-tick, checking pool state each tick."""
    engine = BatchedEngine(
        weights, predictor=predictor, paged=True, **geometry
    )
    scheduler = ContinuousBatchingScheduler(
        engine, step_budget=step_budget, preemption=preemption,
    )
    pending = sorted(schedule, key=lambda pair: pair[0])
    tick = 0
    while pending or not scheduler.idle:
        while pending and pending[0][0] <= tick:
            scheduler.submit(pending.pop(0)[1])
        scheduler.step()
        tick += 1
        assert tick < MAX_TICKS, "schedule did not drain"
        if check_pool:
            check_pool_invariants(engine, scheduler)
    # Fully drained: nothing resident, nothing queued, nothing evicted
    # awaiting resume, and no page still pinned or reserved.
    assert not scheduler.active and not scheduler.queue
    assert not scheduler._resume_state
    assert engine.cache.n_pages_in_use == 0
    assert engine.cache.pool._reserved == 0
    return scheduler.report


def outcomes(report) -> dict:
    return {
        c.request_id: (tuple(c.generated_ids), c.error is None)
        for c in report.completions
    }


def test_random_schedules_hold_invariants(micro_weights, packed_predictor):
    rng = np.random.default_rng(2026)
    totals = Counter()
    for draw in range(N_DRAWS):
        schedule = draw_workload(rng)
        geometry = draw_geometry(rng, schedule)
        reference = drive(
            micro_weights, packed_predictor, schedule, geometry,
            step_budget=0, preemption=False,
        )
        expected = outcomes(reference)
        assert len(expected) == len(schedule)
        for _ in range(RUNS_PER_DRAW - 1):
            budget = int(rng.choice([1, 2, 4, 9]))
            report = drive(
                micro_weights, packed_predictor, schedule, geometry,
                step_budget=budget, preemption=True,
            )
            # (a) identical tokens and error statuses per request.
            assert outcomes(report) == expected
            # (c) every submitted request completed exactly once.
            assert len(report.completions) == len(schedule)
            assert report.tokens_generated == sum(
                len(c.generated_ids) for c in report.completions
            )
            assert report.preemptions == sum(
                c.preemptions for c in report.completions
            )
            totals["preemptions"] += report.preemptions
            totals["resumed"] += report.resumed_admissions
            totals["replayed"] += report.replayed_tokens
            totals["piggybacked"] += report.piggybacked_chunks
            totals["revived"] += report.revived_admissions
            totals["forked"] += report.forked_admissions
    # The draws must actually exercise the machinery under test.
    assert totals["preemptions"] > 0, "no schedule ever preempted"
    assert totals["resumed"] == totals["preemptions"]
    assert totals["replayed"] > 0, "no resumed sequence replayed decode"
    assert totals["piggybacked"] > 0, "no prefill was piggybacked"
    assert totals["forked"] > 0, "no schedule exercised prefix forks"
    assert totals["revived"] > 0, "no schedule exercised cache revival"


def test_budget_matches_inline_on_shared_geometry(
    micro_weights, packed_predictor
):
    """An effectively unbounded budget stays token-identical to inline."""
    rng = np.random.default_rng(7)
    schedule = draw_workload(rng)
    geometry = draw_geometry(rng, schedule)
    inline = drive(micro_weights, packed_predictor, schedule, geometry,
                   step_budget=0, preemption=False)
    unbounded = drive(micro_weights, packed_predictor, schedule, geometry,
                      step_budget=10**9, preemption=False)
    assert outcomes(unbounded) == outcomes(inline)
    # One admission piece per prompt: nothing was ever split.
    assert unbounded.peak_tick_prefill_tokens >= \
        max(r.prompt_len for _, r in schedule if r.max_new_tokens > 0)


def test_preemption_spares_shared_donor_pages(
    micro_weights, packed_predictor
):
    """Evicting one sharer of a forked prefix never corrupts the donor.

    Two same-prefix requests are admitted together (the second forks the
    first's pages); a late high-priority arrival preempts one sharer.
    The survivor must keep decoding to exactly its reference tokens and
    every page it maps must stay pinned throughout -- checked tick by
    tick by the pool cross-check in :func:`drive`.
    """
    prefix = tuple(range(1, 9))
    sharer_a = Request(request_id=0, prompt_ids=prefix + (9,),
                       max_new_tokens=10, priority=0)
    sharer_b = Request(request_id=1, prompt_ids=prefix + (10,),
                       max_new_tokens=10, priority=1)
    vip = Request(request_id=2, prompt_ids=tuple(range(3, 15)),
                  max_new_tokens=10, priority=5)
    schedule = [(0, sharer_a), (0, sharer_b), (4, vip)]
    geometry = dict(max_batch_size=3, page_size=4, n_pages=9,
                    prefix_sharing=True, cache_pages=4, prefill_chunk=0)
    reference = drive(micro_weights, packed_predictor, schedule, geometry,
                      step_budget=0, preemption=False)
    report = drive(micro_weights, packed_predictor, schedule, geometry,
                   step_budget=2, preemption=True)
    assert report.preemptions >= 1
    assert report.forked_admissions >= 1
    assert outcomes(report) == outcomes(reference)


def test_blocked_head_keeps_queue_priority(micro_weights, packed_predictor):
    """A head that preempts but still cannot fit is not queue-jumped.

    The eviction frees too little for the head, so the victim is
    re-enqueued *behind* the still-blocked head -- were it pushed in
    front, the lower-priority victim would re-admit, be preempted
    again, and the pair would livelock.  The drain itself (bounded
    ticks, every request completing once) is the regression check.
    """
    holder = Request(request_id=0, prompt_ids=tuple(range(1, 7)),
                     max_new_tokens=12, priority=2)
    victim = Request(request_id=1, prompt_ids=tuple(range(2, 8)),
                     max_new_tokens=12, priority=0)
    # Needs more pages than evicting `victim` alone can free while
    # `holder` (equal-or-higher priority than nobody -- it outranks the
    # head's victims but not the head) is still resident.
    big = Request(request_id=2, prompt_ids=tuple(range(1, 13)),
                  max_new_tokens=12, priority=3)
    schedule = [(0, holder), (0, victim), (3, big)]
    geometry = dict(max_batch_size=3, page_size=4, n_pages=11,
                    prefix_sharing=False, cache_pages=0, prefill_chunk=0)
    reference = drive(micro_weights, packed_predictor, schedule, geometry,
                      step_budget=0, preemption=False)
    report = drive(micro_weights, packed_predictor, schedule, geometry,
                   step_budget=0, preemption=True)
    assert outcomes(report) == outcomes(reference)
    assert len(report.completions) == 3


def test_equal_priorities_never_preempt(micro_weights, packed_predictor):
    """Default priorities keep ``preemption=True`` a strict no-op."""
    rng = np.random.default_rng(11)
    schedule = [
        (arrival, Request(request_id=r.request_id,
                          prompt_ids=r.prompt_ids,
                          max_new_tokens=r.max_new_tokens))
        for arrival, r in draw_workload(rng)
    ]
    geometry = draw_geometry(rng, schedule)
    off = drive(micro_weights, packed_predictor, schedule, geometry,
                step_budget=0, preemption=False)
    on = drive(micro_weights, packed_predictor, schedule, geometry,
               step_budget=0, preemption=True)
    assert on.preemptions == 0
    assert outcomes(on) == outcomes(off)

"""Tests for the decode engine, including train/infer cross-validation."""

import numpy as np
import pytest

from repro.model.inference import InferenceModel
from repro.model.mlp import DenseMLP
from repro.train.lm import TrainableLM


class TestForward:
    def test_logit_shape(self, micro_weights, micro_config):
        engine = InferenceModel(micro_weights)
        logits = engine.forward_token(1, 0)
        assert logits.shape == (micro_config.vocab_size,)

    def test_decode_matches_training_forward(self, micro_config):
        """Sequential KV-cache decode must reproduce the full-sequence
        training forward pass position by position."""
        lm = TrainableLM(micro_config, seed=3)
        weights = lm.export_weights()
        tokens = np.array([[1, 4, 7, 2, 9]])
        train_logits = lm.forward(tokens).logits.data[0]   # (T, vocab)

        engine = InferenceModel(weights)
        for pos, tok in enumerate(tokens[0]):
            infer_logits = engine.forward_token(int(tok), pos)
            np.testing.assert_allclose(
                infer_logits, train_logits[pos], atol=2e-3,
                err_msg=f"mismatch at position {pos}",
            )

    def test_generation_deterministic(self, micro_weights, gsm_tokenizer):
        engine = InferenceModel(micro_weights)
        a = engine.generate([1, 5, 3], 4).generated_ids
        b = engine.generate([1, 5, 3], 4).generated_ids
        assert a == b

    def test_stop_ids_halt_generation(self, micro_weights):
        engine = InferenceModel(micro_weights)
        probe = engine.generate([1, 5, 3], 6)
        if probe.generated_ids:
            stop = {probe.generated_ids[0]}
            halted = engine.generate([1, 5, 3], 6, stop_ids=stop)
            assert len(halted.generated_ids) == 0

    def test_empty_prompt_rejected(self, micro_weights):
        with pytest.raises(ValueError):
            InferenceModel(micro_weights).prefill([])

    def test_negative_max_tokens_rejected(self, micro_weights):
        with pytest.raises(ValueError):
            InferenceModel(micro_weights).generate([1], -1)


class TestTracing:
    def test_traces_cover_layers_and_tokens(self, micro_weights, micro_config):
        engine = InferenceModel(micro_weights, trace_mlp_inputs=True)
        engine.generate([1, 2, 3], 2)
        n_tokens = 3 + 2
        assert len(engine.traces) == n_tokens * micro_config.n_layers
        t = engine.traces[0]
        assert t.x.shape == (micro_config.d_model,)
        assert t.gate_preact.shape == (micro_config.d_ff,)

    def test_trace_preact_matches_weights(self, micro_weights):
        engine = InferenceModel(micro_weights, trace_mlp_inputs=True)
        engine.forward_token(2, 0)
        t = engine.traces[0]
        np.testing.assert_allclose(
            t.gate_preact,
            micro_weights.layers[t.layer].w_gate_rows @ t.x,
            atol=1e-5,
        )

    def test_clear_traces(self, micro_weights):
        engine = InferenceModel(micro_weights, trace_mlp_inputs=True)
        engine.forward_token(0, 0)
        engine.clear_traces()
        assert engine.traces == []


class TestPrefillExecutorSplit:
    def test_prefill_uses_dense_decode_uses_sparse(self, micro_weights):
        """With a separate prefill executor the sparse stats must count
        only decode tokens (Section V-C semantics)."""
        from repro.core.sparse_mlp import SparseInferMLP

        sparse = SparseInferMLP(micro_weights)
        dense = DenseMLP(micro_weights)
        engine = InferenceModel(micro_weights, mlp=sparse, prefill_mlp=dense)
        engine.generate([1, 2, 3, 4], 2)
        n_layers = micro_weights.config.n_layers
        assert dense.stats.calls == 4 * n_layers       # prompt tokens
        assert sparse.stats.calls == 2 * n_layers      # generated tokens

    def test_default_prefill_is_decode_executor(self, micro_weights):
        dense = DenseMLP(micro_weights)
        engine = InferenceModel(micro_weights, mlp=dense)
        engine.generate([1, 2], 1)
        assert dense.stats.calls == 3 * micro_weights.config.n_layers

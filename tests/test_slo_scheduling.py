"""Property tests for deadline admission, load shedding and goodput.

Mirrors :mod:`test_scheduler_properties` for the PR 10 surface: draws
random SLO-carrying workloads (tight/loose/absent deadlines, priority
ties, overload arrival bursts) crossed with engine geometries, drains
each tick-by-tick under both ``admission`` modes, and asserts:

* **FIFO unchanged**: with ``admission="fifo"`` (the default), SLO
  specs are *telemetry only* -- every request's tokens and error status
  are identical to the same workload with the SLOs stripped, and
  nothing is ever shed.
* **Accounting identities**: ``slo_met_requests + slo_missed_requests
  + shed_requests == len(completions)`` exactly, ``goodput_tokens <=
  tokens_generated``, and the per-class ``class_stats`` counters sum to
  the report totals -- no completion is ever dropped from or
  double-counted in the goodput books.
* **Pool invariants under overload**: the page-conservation and
  refcount cross-checks of the preemption suite hold after every tick
  while deadline admission is reordering, shedding, and preempting.
* **Bounded bypass**: a no-deadline request at the queue head is
  admitted after at most ``deadline_window - 1`` consecutive bypasses,
  even under a sustained stream of tight-deadline arrivals.
* **Shed is rejected-typed**: shed requests complete exactly once with
  ``shed=True``, a ``"shed: ..."`` error, and zero tokens -- never
  silently dropped.
"""

from collections import Counter

import numpy as np
import pytest

from repro.core.predictor import SparseInferPredictor
from repro.serving.engine import BatchedEngine
from repro.serving.request import Request, SLOSpec
from repro.serving.scheduler import ContinuousBatchingScheduler

from test_scheduler_properties import check_pool_invariants, outcomes

N_DRAWS = 40
MAX_TICKS = 3000
VOCAB = 19             # micro_config vocabulary


@pytest.fixture(scope="module")
def packed_predictor(micro_weights):
    return SparseInferPredictor.from_gate_weights(
        micro_weights.gate_matrices()
    )


def draw_slo(rng):
    """None / TTFT-only / ITL-only / both, spanning tight to loose."""
    roll = rng.random()
    if roll < 0.3:
        return None
    ttft = int(rng.integers(1, 40)) if rng.random() < 0.8 else None
    itl = int(rng.integers(1, 12)) if rng.random() < 0.5 else None
    tag = rng.choice(["interactive", "fleet", "batch"])
    return SLOSpec(slo_class=str(tag), ttft_steps=ttft, itl_steps=itl)


def draw_workload(rng) -> list:
    """``(arrival_tick, Request)`` pairs with mixed SLO contracts."""
    n_requests = int(rng.integers(4, 10))
    schedule = []
    for i in range(n_requests):
        prompt = tuple(int(t) for t in
                       rng.integers(1, VOCAB,
                                    size=int(rng.integers(2, 14))))
        max_new = int(rng.integers(0, 8)) if rng.random() < 0.1 \
            else int(rng.integers(1, 8))
        request = Request(
            request_id=i, prompt_ids=prompt, max_new_tokens=max_new,
            priority=int(rng.integers(0, 3)), slo=draw_slo(rng),
        )
        # Half the requests land in one tick-0 burst (overload), the
        # rest trickle in -- both shapes must hold the invariants.
        arrival = 0 if rng.random() < 0.5 else int(rng.integers(1, 10))
        schedule.append((arrival, request))
    return schedule


def draw_geometry(rng, schedule) -> dict:
    page_size = int(rng.choice([1, 3, 8]))
    worsts = [
        -(-(r.prompt_len + r.max_new_tokens - 1) // page_size)
        for _, r in schedule if r.max_new_tokens > 0
    ]
    max_w = max(worsts) if worsts else 1
    n_pages = max_w + int(rng.integers(0, max_w + 1))
    return dict(
        max_batch_size=int(rng.integers(1, 4)),
        page_size=page_size,
        n_pages=n_pages,
        prefix_sharing=bool(rng.random() < 0.5),
        cache_pages=0,
        prefill_chunk=int(rng.choice([0, 3])),
    )


def drive(weights, predictor, schedule, geometry, admission="fifo",
          deadline_window=4, step_budget=0, preemption=False,
          check_pool=True):
    engine = BatchedEngine(
        weights, predictor=predictor, paged=True, **geometry
    )
    scheduler = ContinuousBatchingScheduler(
        engine, step_budget=step_budget, preemption=preemption,
        admission=admission, deadline_window=deadline_window,
    )
    pending = sorted(schedule, key=lambda pair: pair[0])
    tick = 0
    while pending or not scheduler.idle:
        while pending and pending[0][0] <= tick:
            scheduler.submit(pending.pop(0)[1])
        scheduler.step()
        tick += 1
        assert tick < MAX_TICKS, "schedule did not drain"
        if check_pool:
            check_pool_invariants(engine, scheduler)
    assert not scheduler.active and not scheduler.queue
    assert not scheduler._resume_state
    assert engine.cache.n_pages_in_use == 0
    return scheduler.report


def strip_slos(schedule) -> list:
    return [
        (arrival, Request(
            request_id=r.request_id, prompt_ids=r.prompt_ids,
            max_new_tokens=r.max_new_tokens, stop_ids=r.stop_ids,
            priority=r.priority, sampling=r.sampling, slo=None,
        ))
        for arrival, r in schedule
    ]


def check_accounting(report, schedule) -> None:
    """The goodput books balance exactly -- totals and per-class."""
    completions = report.completions
    assert len(completions) == len(schedule)
    assert report.slo_met_requests + report.slo_missed_requests \
        + report.shed_requests == len(completions)
    assert report.shed_requests == sum(1 for c in completions if c.shed)
    assert 0 <= report.goodput_tokens <= report.tokens_generated
    # goodput == the SLO-met completions' tokens, reconstructed
    # independently from the raw completion records.
    expected_goodput = sum(
        c.n_generated for c in completions
        if not c.shed and c.error is None
        and (c.request.slo is None
             or c.request.slo.met(c.submitted_step, c.emit_steps))
    )
    assert report.goodput_tokens == expected_goodput
    # Per-class counters sum to the report totals, key by key.
    stats = report.class_stats
    assert sum(s["requests"] for s in stats.values()) == len(completions)
    assert sum(s["slo_met"] for s in stats.values()) \
        == report.slo_met_requests
    assert sum(s["slo_missed"] for s in stats.values()) \
        == report.slo_missed_requests
    assert sum(s["shed"] for s in stats.values()) == report.shed_requests
    assert sum(s["goodput_tokens"] for s in stats.values()) \
        == report.goodput_tokens
    assert sum(s["tokens"] for s in stats.values()) \
        == report.tokens_generated
    if report.tokens_generated:
        assert report.goodput_fraction == pytest.approx(
            report.goodput_tokens / report.tokens_generated
        )


def test_fifo_with_slos_token_identical_and_never_sheds(
    micro_weights, packed_predictor
):
    """Under fifo admission an SLOSpec is pure telemetry."""
    rng = np.random.default_rng(101)
    saw_slo = False
    for _ in range(N_DRAWS):
        schedule = draw_workload(rng)
        saw_slo |= any(r.slo is not None for _, r in schedule)
        geometry = draw_geometry(rng, schedule)
        with_slo = drive(micro_weights, packed_predictor, schedule,
                         geometry, admission="fifo", check_pool=False)
        stripped = drive(micro_weights, packed_predictor,
                         strip_slos(schedule), geometry,
                         admission="fifo", check_pool=False)
        assert outcomes(with_slo) == outcomes(stripped)
        assert with_slo.shed_requests == 0
        assert not any(c.shed for c in with_slo.completions)
        assert with_slo.admission == "fifo"
        check_accounting(with_slo, schedule)
    assert saw_slo


def test_deadline_admission_invariants(micro_weights, packed_predictor):
    """Pool conservation + exactly-once completion + balanced books
    hold under deadline admission across random overloaded draws."""
    rng = np.random.default_rng(202)
    totals = Counter()
    for _ in range(N_DRAWS):
        schedule = draw_workload(rng)
        geometry = draw_geometry(rng, schedule)
        preemption = bool(rng.random() < 0.5)
        report = drive(
            micro_weights, packed_predictor, schedule, geometry,
            admission="deadline",
            deadline_window=int(rng.integers(1, 6)),
            step_budget=int(rng.choice([0, 2, 6])),
            preemption=preemption,
        )
        assert report.admission == "deadline"
        # Every submitted request completed exactly once -- shed
        # requests included, never silently dropped.
        assert sorted(c.request_id for c in report.completions) \
            == sorted(r.request_id for _, r in schedule)
        check_accounting(report, schedule)
        for completion in report.completions:
            if completion.shed:
                assert completion.error is not None
                assert completion.error.startswith("shed:")
                assert completion.generated_ids == []
                assert completion.slo_met is False
                # Only TTFT-bearing requests can ever be shed.
                assert completion.request.slo is not None
                assert completion.request.slo.ttft_steps is not None
        totals["shed"] += report.shed_requests
        totals["missed"] += report.slo_missed_requests
        totals["met"] += report.slo_met_requests
        totals["preemptions"] += report.preemptions
    # The draws must actually exercise the machinery under test.
    assert totals["met"] > 0, "no draw ever met an SLO"
    assert totals["missed"] > 0, "no draw ever missed an SLO"
    assert totals["shed"] > 0, "no draw ever shed a request"


def test_slo_verdicts_match_completion_records(
    micro_weights, packed_predictor
):
    """``slo_met`` on each completion agrees with ``SLOSpec.met`` applied
    to its own (submitted_step, emit_steps) record."""
    rng = np.random.default_rng(303)
    schedule = draw_workload(rng)
    geometry = draw_geometry(rng, schedule)
    report = drive(micro_weights, packed_predictor, schedule, geometry,
                   admission="deadline", check_pool=False)
    for c in report.completions:
        if c.shed:
            continue
        if c.request.slo is None:
            assert c.slo_met is None
        else:
            assert c.slo_met == (
                c.error is None
                and c.request.slo.met(c.submitted_step, c.emit_steps)
            )
        # emit_steps is the full emission record.  Gaps are >= 0, not
        # strictly positive: the admission tick's inline prefill and its
        # decode pass can emit two tokens under the same tick stamp.
        assert len(c.emit_steps) == c.n_generated
        assert all(a <= b for a, b in zip(c.emit_steps, c.emit_steps[1:]))


def test_bounded_bypass_prevents_starvation(
    micro_weights, packed_predictor
):
    """A no-deadline head request cannot be bypassed forever.

    One no-SLO request lands first; a sustained stream of tight-TTFT
    requests lands behind it, one per tick, always sorting ahead of it
    under EDF.  With ``deadline_window=W`` the head must be forced
    through after at most ``W - 1`` consecutive bypasses: its admission
    tick is bounded regardless of how long the stream continues.
    """
    window = 4
    starved = Request(request_id=0, prompt_ids=(1, 2, 3),
                      max_new_tokens=3, slo=None)
    schedule = [(0, starved)]
    for i in range(1, 25):
        schedule.append((i // 2, Request(
            request_id=i, prompt_ids=(2, 3, 4), max_new_tokens=2,
            slo=SLOSpec("interactive", ttft_steps=2),
        )))
    geometry = dict(max_batch_size=1, page_size=4, n_pages=2,
                    prefix_sharing=False, cache_pages=0, prefill_chunk=0)
    report = drive(micro_weights, packed_predictor, schedule, geometry,
                   admission="deadline", deadline_window=window,
                   check_pool=False)
    starved_done = next(
        c for c in report.completions if c.request_id == 0
    )
    assert starved_done.error is None
    assert starved_done.n_generated == 3
    # max_batch_size=1 with 2-token stream requests opens one admission
    # slot every 2 ticks, so at most W-1 bypasses bounds the head's
    # admission by tick 2*(W-1) -- far before the stream ends (~tick 12).
    assert starved_done.admitted_step <= 2 * window
    check_accounting(report, schedule)


def test_priority_breaks_deadline_ties(micro_weights, packed_predictor):
    """Equal TTFT deadlines: higher priority admits first; equal
    priority falls back to FIFO submission order."""
    slo = SLOSpec("fleet", ttft_steps=30)
    low = Request(request_id=0, prompt_ids=(1, 2, 3), max_new_tokens=2,
                  priority=0, slo=slo)
    high = Request(request_id=1, prompt_ids=(4, 5, 6), max_new_tokens=2,
                   priority=5, slo=slo)
    geometry = dict(max_batch_size=1, page_size=4, n_pages=2,
                    prefix_sharing=False, cache_pages=0, prefill_chunk=0)
    report = drive(micro_weights, packed_predictor,
                   [(0, low), (0, high)], geometry,
                   admission="deadline", check_pool=False)
    by_id = {c.request_id: c for c in report.completions}
    assert by_id[1].admitted_step < by_id[0].admitted_step

    # Same deadline, same priority: FIFO order wins -- request 0 was
    # submitted first and must be admitted first.
    peer = Request(request_id=1, prompt_ids=(4, 5, 6), max_new_tokens=2,
                   priority=0, slo=slo)
    report = drive(micro_weights, packed_predictor,
                   [(0, low), (0, peer)], geometry,
                   admission="deadline", check_pool=False)
    by_id = {c.request_id: c for c in report.completions}
    assert by_id[0].admitted_step < by_id[1].admitted_step


def test_deadline_beats_fifo_goodput_under_overload(
    micro_weights, packed_predictor
):
    """The bench gate in miniature: a stale tick-0 burst plus a fresh
    trickle.  FIFO burns its decode slot on burst requests whose TTFT
    deadlines have already passed, arriving at the trickle too late;
    deadline admission sheds the hopeless burst tail and serves every
    trickle request inside its deadline -- strictly more goodput."""
    slo = SLOSpec("interactive", ttft_steps=3, itl_steps=6)
    # Capacity is one request per tick (max_batch_size=1, inline
    # prefill + same-tick decode finish a 2-token request in its
    # admission tick).  The tick-0 burst of 6 exceeds what ttft=3 can
    # absorb; the trickle at ticks 3-5 is individually feasible but
    # FIFO reaches it only after burning ticks 4-6 on the stale burst.
    schedule = [
        (0, Request(request_id=i, prompt_ids=(1 + i % 8, 2, 3),
                    max_new_tokens=2, slo=slo))
        for i in range(6)
    ] + [
        (i - 3, Request(request_id=i, prompt_ids=(1 + i % 8, 3, 2),
                        max_new_tokens=2, slo=slo))
        for i in range(6, 9)
    ]
    geometry = dict(max_batch_size=1, page_size=4, n_pages=2,
                    prefix_sharing=False, cache_pages=0, prefill_chunk=0)
    fifo = drive(micro_weights, packed_predictor, schedule, geometry,
                 admission="fifo", check_pool=False)
    edf = drive(micro_weights, packed_predictor, schedule, geometry,
                admission="deadline", check_pool=False)
    assert edf.shed_requests > 0
    assert edf.goodput_tokens > fifo.goodput_tokens
    check_accounting(fifo, schedule)
    check_accounting(edf, schedule)


def test_class_telemetry_merges_percentiles(
    micro_weights, packed_predictor
):
    rng = np.random.default_rng(404)
    schedule = draw_workload(rng)
    geometry = draw_geometry(rng, schedule)
    report = drive(micro_weights, packed_predictor, schedule, geometry,
                   admission="deadline", check_pool=False)
    telemetry = report.class_telemetry()
    assert list(telemetry) == sorted(report.class_stats)
    for tag, stats in telemetry.items():
        for key in ("requests", "slo_met", "slo_missed", "shed",
                    "goodput_tokens", "tokens",
                    "ttft_p99_steps", "itl_p99_steps"):
            assert key in stats, (tag, key)
    # Percentile helpers filter by class and tolerate empty classes.
    assert report.ttft_steps_percentile(50, slo_class="no-such-class") \
        == 0.0


def test_validation():
    with pytest.raises(ValueError):
        ContinuousBatchingScheduler(None, admission="lifo")
    with pytest.raises(ValueError):
        ContinuousBatchingScheduler(None, admission="deadline",
                                    deadline_window=0)
    with pytest.raises(ValueError):
        ContinuousBatchingScheduler(None, admission="deadline",
                                    reorder_window=2)

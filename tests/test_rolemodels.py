"""Tests for role-model specs and task plumbing (no training here)."""

import pytest

from repro.eval.rolemodels import (
    build_tokenizer,
    evaluation_tasks,
    spec_13b_role,
    spec_7b_role,
    training_batches,
    union_alphabet,
)
from repro.workloads import bbh_like, gsm8k_like


class TestAlphabet:
    def test_union_covers_both_tasks(self):
        alphabet = set(union_alphabet())
        assert set(gsm8k_like.ALPHABET) <= alphabet
        assert set(bbh_like.ALPHABET) <= alphabet

    def test_no_duplicates(self):
        a = union_alphabet()
        assert len(a) == len(set(a))

    def test_tokenizer_encodes_both_tasks(self):
        tok = build_tokenizer()
        for s in gsm8k_like.generate(5, seed=0) + bbh_like.generate(5, seed=0):
            assert tok.decode(tok.encode(s.text)) == s.text


class TestSpecs:
    def test_13b_role_larger_than_7b_role(self):
        tok = build_tokenizer()
        s7, s13 = spec_7b_role(tok), spec_13b_role(tok)
        assert s13.config.d_model > s7.config.d_model
        assert s13.config.n_layers > s7.config.n_layers
        assert s13.config.d_ff > s7.config.d_ff

    def test_specs_are_relufied(self):
        for spec in (spec_7b_role(), spec_13b_role()):
            assert spec.config.activation == "relu"
            assert spec.train_settings.l1_peak > 0  # ProSparse recipe

    def test_training_batches_interleave_tasks(self):
        tok = build_tokenizer()
        spec = spec_7b_role(tok)
        batches = training_batches(spec, tok)
        assert len(batches) == 2 * spec.n_batches_per_task
        # Even indices are GSM (digit answers), odd are BBH (T/F answers).
        gsm_chars = set("0123456789")
        first = tok.decode(batches[0].tokens[0])
        second = tok.decode(batches[1].tokens[0])
        assert any(c in gsm_chars for c in first.split("A:")[-1])
        assert set(second.split("A:")[-1]) <= {"T", "F"}


class TestEvaluationTasks:
    def test_both_tasks_present(self):
        tasks = evaluation_tasks(n_samples=5)
        assert set(tasks) == {"GSM8K-like", "BBH-like"}
        assert all(len(v) == 5 for v in tasks.values())

    def test_deterministic(self):
        a = evaluation_tasks(n_samples=3)
        b = evaluation_tasks(n_samples=3)
        assert [s.text for s in a["GSM8K-like"]] == [
            s.text for s in b["GSM8K-like"]
        ]

    def test_disjoint_from_training_seeds(self):
        """Eval seed region (>=900) never overlaps training seeds (0..2)."""
        tok = build_tokenizer()
        spec = spec_7b_role(tok)
        train_texts = {
            tok.decode(b.tokens[i])
            for b in training_batches(spec, tok)[:4]
            for i in range(4)
        }
        eval_texts = {s.text for s in evaluation_tasks(60)["GSM8K-like"]}
        # Some rare collisions are possible in a small problem space, but
        # wholesale overlap would indicate seed reuse.
        overlap = len(train_texts & eval_texts) / max(len(eval_texts), 1)
        assert overlap < 0.2

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError):
            evaluation_tasks(0)

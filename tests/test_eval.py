"""Tests for the per-table/figure evaluation harnesses."""

import numpy as np
import pytest

from repro.eval.accuracy import (
    AccuracyRow,
    AccuracyTable,
    accuracy_table,
    effective_alpha,
    format_table,
)
from repro.eval.distributions import (
    DistributionSummary,
    figure2,
    histogram,
    layer_distributions,
)
from repro.eval.harness import evaluate
from repro.eval.latency import (
    PAPER_ALPHA_GRID,
    figure4,
    format_figure4,
    measure_sparsity,
)
from repro.eval.memusage import compare_predictor_memory, format_comparison
from repro.eval.opcounts import (
    dejavu_prediction_ops,
    dense_mlp_ops,
    format_table1,
    sparse_mlp_ops,
    sparseinfer_prediction_ops,
    table1,
)
from repro.eval.overhead import predictor_overhead
from repro.eval.precision_recall import (
    figure3_synthetic,
    quality_from_traces,
)
from repro.gpu.device import jetson_orin_agx_64gb
from repro.model.config import ModelConfig, prosparse_llama2_13b
from repro.model.synthetic import SyntheticActivationModel


@pytest.fixture(scope="module")
def cfg13():
    return prosparse_llama2_13b()


@pytest.fixture(scope="module")
def small_cfg():
    return ModelConfig(name="small-synth", vocab_size=32, d_model=768,
                       n_layers=8, n_heads=8, d_ff=1536)


@pytest.fixture(scope="module")
def small_synth(small_cfg):
    return SyntheticActivationModel(small_cfg, seed=3)


class TestTable1:
    """Acceptance: Table I numbers exactly (same counting conventions)."""

    def test_dense_mlp_ops(self, cfg13):
        assert dense_mlp_ops(cfg13) == pytest.approx(2.123e8, rel=1e-3)

    def test_powerinfer_prediction_ops(self, cfg13):
        assert dejavu_prediction_ops(cfg13) == pytest.approx(1.940e7, rel=1e-3)

    def test_sparseinfer_prediction_ops(self, cfg13):
        assert sparseinfer_prediction_ops(cfg13) == pytest.approx(
            2.211e6, rel=1e-3
        )

    def test_sparse_mlp_ops(self, cfg13):
        assert sparse_mlp_ops(cfg13, 0.92) == pytest.approx(1.699e7, rel=1e-3)

    def test_table_rows(self, cfg13):
        rows = table1(cfg13)
        assert [r.method for r in rows] == [
            "llama.cpp (dense)", "PowerInfer", "SparseInfer (proposed)"
        ]
        assert rows[0].prediction_ops == 0
        # SparseInfer prediction is ~an order of magnitude cheaper.
        assert rows[1].prediction_ops / rows[2].prediction_ops > 8

    def test_format(self, cfg13):
        text = format_table1(table1(cfg13))
        assert "SparseInfer" in text and "2.123e+08" in text

    def test_invalid_sparsity_rejected(self, cfg13):
        with pytest.raises(ValueError):
            sparse_mlp_ops(cfg13, 1.2)


class TestMemusage:
    def test_paper_numbers(self, cfg13):
        cmp = compare_predictor_memory(cfg13)
        assert cmp.powerinfer_mib == pytest.approx(1480, rel=1e-3)
        assert cmp.sparseinfer_mib == pytest.approx(337.5, rel=1e-3)
        assert cmp.reduction_factor == pytest.approx(4.38, abs=0.05)

    def test_format(self, cfg13):
        assert "4.3" in format_comparison(compare_predictor_memory(cfg13))


class TestOverhead:
    def test_report(self, cfg13):
        rep = predictor_overhead(cfg13, jetson_orin_agx_64gb())
        assert 50 < rep.sparseinfer_us < 90
        assert 3.0 < rep.speedup < 4.5


class TestDistributions:
    def test_summary_fields(self, rng):
        s = DistributionSummary.from_values(rng.standard_normal(4000))
        assert abs(s.mean) < 0.1
        assert 0.9 < s.std < 1.1
        assert abs(s.positive_fraction - 0.5) < 0.05
        assert abs(s.kurtosis) < 0.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            DistributionSummary.from_values(np.array([]))

    def test_figure2_paper_properties(self, small_synth):
        """X/W symmetric, products near-zero-mean, early X concentrated."""
        reports = figure2(small_synth, layers=[0, 4, 7], n_tokens=4, n_rows=64)
        for rep in reports:
            assert abs(rep.x.positive_fraction - 0.5) < 0.1
            assert abs(rep.w_row.positive_fraction - 0.5) < 0.1
            assert abs(rep.product_mean_normalised) < 0.15
        early, late = reports[0], reports[-1]
        # Early-layer X dominated by near-zero values (heavier tails).
        assert early.x.near_zero_fraction > late.x.near_zero_fraction
        assert early.x.kurtosis > late.x.kurtosis
        assert early.x.std < late.x.std

    def test_histogram_symmetric_range(self, rng):
        counts, edges = histogram(rng.standard_normal(1000))
        assert edges[0] == pytest.approx(-edges[-1])
        assert counts.sum() <= 1000

    def test_layer_distributions_shapes(self, small_synth):
        rep = layer_distributions(small_synth, 2, n_tokens=2, n_rows=16)
        assert rep.layer == 2


class TestPrecisionRecall:
    def test_figure3_layer_trend(self, small_synth):
        points = figure3_synthetic(small_synth, n_tokens=6, n_rows=192)
        assert len(points) == small_synth.config.n_layers
        precisions = [p.precision for p in points]
        # Early dip, later plateau above it (Fig. 3 shape).
        assert precisions[0] < max(precisions[4:])
        assert max(precisions[4:]) > 0.95

    def test_selected_layers(self, small_synth):
        points = figure3_synthetic(small_synth, layers=[0, 3], n_tokens=2,
                                   n_rows=64)
        assert [p.layer for p in points] == [0, 3]

    def test_quality_from_traces_matches_direct(self, micro_weights, rng):
        from repro.model.inference import InferenceModel

        engine = InferenceModel(micro_weights, trace_mlp_inputs=True)
        engine.generate([1, 2, 3], 3)
        points = quality_from_traces(
            engine.traces, micro_weights.gate_matrices()
        )
        assert len(points) == micro_weights.config.n_layers
        for p in points:
            assert 0.0 <= p.precision <= 1.0
            assert 0.0 <= p.recall <= 1.0
            assert p.quality.total == 6 * micro_weights.config.d_ff


class TestMeasureSparsity:
    def test_union_at_least_predicted(self, small_synth):
        m = measure_sparsity(small_synth, alpha=1.0, n_tokens=3, n_rows=128)
        assert np.all(m.union_skip >= m.predicted_skip - 1e-12)

    def test_higher_alpha_lowers_predicted_skip(self, small_synth):
        lo = measure_sparsity(small_synth, alpha=1.0, n_tokens=3, n_rows=128,
                              n_early=99)
        hi = measure_sparsity(small_synth, alpha=1.2, n_tokens=3, n_rows=128,
                              n_early=99)
        assert hi.predicted_skip.mean() < lo.predicted_skip.mean()

    def test_profile_roundtrip(self, small_synth):
        m = measure_sparsity(small_synth, alpha=1.0, n_tokens=2, n_rows=64)
        prof = m.profile()
        assert len(prof) == small_synth.config.n_layers


class TestFigure4:
    @pytest.fixture(scope="class")
    def fig4(self):
        # True 7B dimensions: at toy scale the per-token host overhead
        # dominates and the engine ordering loses meaning.
        from repro.model.config import prosparse_llama2_7b

        return figure4(prosparse_llama2_7b(), alphas=(1.0, 1.2), n_tokens=2,
                       n_rows=96, seq_len=256)

    def test_engine_ordering(self, fig4):
        """SparseInfer (full) beats PowerInfer beats llama.cpp."""
        best = fig4.sparseinfer[1.0]["+KF+AS"]
        assert best.seconds_per_token < fig4.powerinfer.seconds_per_token
        assert (
            fig4.powerinfer.seconds_per_token
            < fig4.llamacpp.seconds_per_token
        )

    def test_alpha_slows_decode(self, fig4):
        """Higher alpha -> fewer skips -> slightly slower (Fig. 4 trend)."""
        fast = fig4.sparseinfer[1.0]["base"]
        slow = fig4.sparseinfer[1.2]["base"]
        assert slow.seconds_per_token >= fast.seconds_per_token

    def test_as_contribution_grows_with_alpha(self, fig4):
        """+AS recovers what conservative prediction leaves on the table."""
        def gain(alpha):
            v = fig4.sparseinfer[alpha]
            return v["base"].seconds_per_token - v["+AS"].seconds_per_token

        assert gain(1.2) > gain(1.0) - 1e-9

    def test_kf_gain_small(self, fig4):
        """Paper: kernel-fusion gain is insignificant."""
        v = fig4.sparseinfer[1.0]
        gain = (v["base"].seconds_per_token - v["+KF"].seconds_per_token)
        assert gain / v["base"].seconds_per_token < 0.05

    def test_format(self, fig4):
        text = format_figure4(fig4)
        assert "llama.cpp" in text and "PowerInfer" in text


class TestHarnessAndAccuracy:
    def test_exact_match_scoring(self, micro_weights, gsm_tokenizer):
        from repro.core.engine import dense_engine as build_dense
        from repro.workloads import gsm8k_like

        engine = build_dense(micro_weights)
        samples = gsm8k_like.generate(4, seed=0)
        result = evaluate(engine, gsm_tokenizer, samples, task="gsm")
        assert result.n_samples == 4
        assert 0.0 <= result.accuracy <= 100.0

    def test_empty_samples_rejected(self, micro_weights, gsm_tokenizer):
        from repro.core.engine import dense_engine as build_dense

        with pytest.raises(ValueError):
            evaluate(build_dense(micro_weights), gsm_tokenizer, [])

    def test_effective_alpha_mapping(self):
        # Defaults: paper 1.00..1.03 -> effective 0.70..1.00.
        assert effective_alpha(1.0) == pytest.approx(0.7)
        assert effective_alpha(1.03) == pytest.approx(1.0)
        # Identity mapping available for full-scale sweeps.
        assert effective_alpha(1.02, alpha_scale=1.0, alpha_base=1.0) == (
            pytest.approx(1.02)
        )

    def test_accuracy_table_structure(self, micro_weights, gsm_tokenizer):
        from repro.workloads import gsm8k_like

        tasks = {"GSM8K-like": gsm8k_like.generate(3, seed=0)}
        table = accuracy_table(
            micro_weights, gsm_tokenizer, tasks,
            alphas=(1.0, 1.03), include_random_baseline=True,
        )
        methods = [r.method for r in table.rows]
        assert methods == ["Baseline", "SparseInfer", "SparseInfer", "Random-90%"]
        text = format_table(table)
        assert "Baseline" in text and "GSM8K-like" in text

    def test_delta_vs_baseline(self):
        table = AccuracyTable(
            model_name="m",
            rows=[
                AccuracyRow("Baseline", None, {"t": 30.0}),
                AccuracyRow("SparseInfer", 1.0, {"t": 27.0}),
            ],
        )
        assert table.delta(table.rows[1], "t") == pytest.approx(-3.0)
        assert table.rows[1].average == 27.0

"""Tests for the statistical activation model (Figs. 2-3 substrate)."""

import numpy as np
import pytest

from repro.core.metrics import evaluate_skip_prediction
from repro.core.predictor import SparseInferPredictor
from repro.model.config import ModelConfig, prosparse_llama2_13b
from repro.model.synthetic import LayerStats, SyntheticActivationModel


@pytest.fixture(scope="module")
def small_scale_model():
    """Reduced-width model so tests run fast; same generative process."""
    cfg = ModelConfig(
        name="synthetic-test", vocab_size=32, d_model=1024, n_layers=12,
        n_heads=8, d_ff=2048,
    )
    return SyntheticActivationModel(cfg, seed=42)


class TestLayerStats:
    def test_flip_probabilities_valid(self, small_scale_model):
        for layer in range(small_scale_model.config.n_layers):
            stats = small_scale_model.layer_stats(layer)
            assert 0 <= stats.q_x < 0.5
            assert 0 <= stats.q_w_lo <= stats.q_w_hi < 0.5

    def test_product_negative_prob_above_half(self, small_scale_model):
        """Off rows must have a negative-product majority."""
        for layer in (0, 5, 11):
            stats = small_scale_model.layer_stats(layer)
            assert stats.product_negative_prob > 0.5

    def test_early_layers_heavier_tails(self, small_scale_model):
        early = small_scale_model.layer_stats(0)
        late = small_scale_model.layer_stats(11)
        assert early.x_log_sigma > late.x_log_sigma
        assert early.x_scale < late.x_scale

    def test_invalid_stats_rejected(self):
        with pytest.raises(ValueError):
            LayerStats(q_x=0.6, q_w_lo=0.1, q_w_hi=0.2, x_scale=1, x_log_sigma=1,
                       w_scale=1, w_log_sigma=1, off_fraction=0.9)
        with pytest.raises(ValueError):
            LayerStats(q_x=0.1, q_w_lo=0.1, q_w_hi=0.2, x_scale=1, x_log_sigma=1,
                       w_scale=1, w_log_sigma=1, off_fraction=1.5)


class TestSampling:
    def test_shapes(self, small_scale_model):
        s = small_scale_model.sample_layer(3, n_tokens=4, n_rows=64)
        d = small_scale_model.config.d_model
        assert s.x.shape == (4, d)
        assert s.w_gate.shape == (64, d)
        assert s.preact.shape == (4, 64)

    def test_weights_deterministic(self, small_scale_model):
        w1, p1 = small_scale_model.gate_rows(2, 32)
        w2, p2 = small_scale_model.gate_rows(2, 32)
        np.testing.assert_array_equal(w1, w2)
        np.testing.assert_array_equal(p1, p2)

    def test_activations_vary_across_calls(self, small_scale_model):
        x1 = small_scale_model.sample_x(2, 2)
        x2 = small_scale_model.sample_x(2, 2)
        assert not np.allclose(x1, x2)

    def test_reset_tokens_replays_stream(self):
        cfg = ModelConfig(name="t", vocab_size=8, d_model=64, n_layers=2,
                          n_heads=2, d_ff=128)
        m = SyntheticActivationModel(cfg, seed=1)
        a = m.sample_x(0, 2)
        m.reset_tokens()
        b = m.sample_x(0, 2)
        np.testing.assert_array_equal(a, b)

    def test_marginal_sign_symmetry(self, small_scale_model):
        """Fig. 2: X and W have near-equal positive/negative fractions."""
        s = small_scale_model.sample_layer(8, n_tokens=8, n_rows=128)
        assert abs(np.mean(s.x > 0) - 0.5) < 0.05
        assert abs(np.mean(s.w_gate > 0) - 0.5) < 0.05

    def test_layer_out_of_range(self, small_scale_model):
        with pytest.raises(ValueError):
            small_scale_model.sample_x(99, 1)
        with pytest.raises(ValueError):
            small_scale_model.gate_rows(-1, 4)

    def test_invalid_counts_rejected(self, small_scale_model):
        with pytest.raises(ValueError):
            small_scale_model.sample_x(0, 0)
        with pytest.raises(ValueError):
            small_scale_model.gate_rows(0, 0)


class TestEmergentProperties:
    """The calibrated generative process must reproduce the paper's
    qualitative observations (these are the Fig. 2/3 acceptance tests)."""

    def test_high_activation_sparsity(self, small_scale_model):
        for layer in (4, 8, 11):
            s = small_scale_model.sample_layer(layer, n_tokens=6, n_rows=256)
            assert 0.8 < s.actual_sparsity < 0.98

    def test_predictor_precision_improves_with_depth(self, small_scale_model):
        def precision(layer):
            s = small_scale_model.sample_layer(layer, n_tokens=8, n_rows=256)
            p = SparseInferPredictor.from_gate_weights([s.w_gate])
            masks = p.predict_batch(0, s.x)
            return evaluate_skip_prediction(masks, s.true_sparse).precision

        # At the reduced test width (d=1024) the count-majority margin is
        # ~sqrt(5) weaker than at d=5120, so the late-layer floor is lower.
        assert precision(0) < precision(11)
        assert precision(11) > 0.94

    def test_alpha_trades_recall_for_precision(self, small_scale_model):
        s = small_scale_model.sample_layer(1, n_tokens=8, n_rows=256)
        p = SparseInferPredictor.from_gate_weights([s.w_gate])
        base = evaluate_skip_prediction(
            p.predict_batch(0, s.x, alpha=1.0), s.true_sparse
        )
        conservative = evaluate_skip_prediction(
            p.predict_batch(0, s.x, alpha=1.1), s.true_sparse
        )
        assert conservative.precision >= base.precision
        assert conservative.recall <= base.recall

    def test_full_scale_13b_layer0_runs(self):
        """Smoke: true 13B width (d=5120) stays tractable per layer."""
        m = SyntheticActivationModel(prosparse_llama2_13b(), seed=0)
        s = m.sample_layer(0, n_tokens=2, n_rows=64)
        assert s.preact.shape == (2, 64)

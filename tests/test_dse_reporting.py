"""Tests for the DSE sweep and reporting helpers."""

import numpy as np
import pytest

from repro.core.dse import DSEPoint, pareto_front, sweep
from repro.eval.reporting import ascii_curve, ascii_histogram, markdown_table
from repro.model.config import ModelConfig


class TestDSE:
    @pytest.fixture(scope="class")
    def points(self):
        cfg = ModelConfig(name="dse-test", vocab_size=16, d_model=768,
                          n_layers=6, n_heads=8, d_ff=1536)
        return sweep(cfg, alphas=(0.9, 1.0, 1.2), n_tokens=2, n_rows=96)

    def test_sweep_produces_one_point_per_alpha(self, points):
        assert [p.alpha for p in points] == [0.9, 1.0, 1.2]

    def test_conservative_alpha_more_precise(self, points):
        by_alpha = {p.alpha: p for p in points}
        assert by_alpha[1.2].mean_precision >= by_alpha[0.9].mean_precision
        assert by_alpha[1.2].mean_predicted_skip <= by_alpha[0.9].mean_predicted_skip

    def test_all_points_speed_up(self, points):
        assert all(p.speedup_over_dense > 1.0 for p in points)

    def test_pareto_front_not_dominated(self, points):
        front = pareto_front(points)
        assert front
        for p in front:
            assert not any(
                q.seconds_per_token < p.seconds_per_token
                and q.mean_precision > p.mean_precision
                for q in points
            )

    def test_pareto_front_handles_duplicates(self):
        p = DSEPoint(alpha=1.0, device_name="d", seconds_per_token=1.0,
                     speedup_over_dense=1.0, mean_precision=0.9,
                     mean_recall=0.9, mean_predicted_skip=0.9)
        assert pareto_front([p, p]) == [p, p]

    def test_tokens_per_second(self):
        p = DSEPoint(alpha=1.0, device_name="d", seconds_per_token=0.05,
                     speedup_over_dense=2.0, mean_precision=1.0,
                     mean_recall=1.0, mean_predicted_skip=0.9)
        assert p.tokens_per_second == pytest.approx(20.0)


class TestReporting:
    def test_histogram_renders(self, rng):
        text = ascii_histogram(rng.standard_normal(500), bins=11)
        assert text.count("\n") == 10
        assert "#" in text

    def test_histogram_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_histogram(np.array([]))

    def test_curve_renders(self):
        text = ascii_curve([0, 1, 2], [0.5, 0.9, 1.0], label="precision")
        assert text.startswith("precision")
        assert "1.0000" in text

    def test_curve_length_mismatch(self):
        with pytest.raises(ValueError):
            ascii_curve([1], [1, 2])

    def test_curve_bad_range(self):
        with pytest.raises(ValueError):
            ascii_curve([1], [1], y_min=1.0, y_max=1.0)

    def test_markdown_table(self):
        text = markdown_table(["a", "b"], [[1, 2], [3, 4]])
        assert text.splitlines()[0] == "| a | b |"
        assert "| 3 | 4 |" in text

    def test_markdown_table_empty_headers(self):
        with pytest.raises(ValueError):
            markdown_table([], [])

"""Shared test helpers importable from any test module.

Lives next to the tests (not inside ``conftest.py``) so test modules can
import it absolutely -- ``from helpers import check_gradient`` -- without
requiring the ``tests`` directory to be a package.
"""

import numpy as np

from repro.autograd.tensor import Tensor


def numeric_grad(fn, x: np.ndarray, eps: float = 1e-3) -> np.ndarray:
    """Central-difference gradient of a scalar-valued fn."""
    grad = np.zeros_like(x, dtype=np.float64)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        hi = fn(x)
        x[idx] = orig - eps
        lo = fn(x)
        x[idx] = orig
        grad[idx] = (hi - lo) / (2 * eps)
        it.iternext()
    return grad


def check_gradient(make_output, x0: np.ndarray, atol: float = 2e-2):
    """Compare autograd gradient to central differences."""
    t = Tensor(x0.copy(), requires_grad=True)
    out = make_output(t)
    out.backward()
    auto = t.grad.astype(np.float64)

    def scalar_fn(arr):
        return float(make_output(Tensor(arr.copy())).data)

    num = numeric_grad(scalar_fn, x0.copy().astype(np.float64))
    np.testing.assert_allclose(auto, num, atol=atol, rtol=1e-2)

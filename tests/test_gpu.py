"""Tests for the GPU roofline model: device, kernels, simulator, pipeline,
memory accounting.  Includes the paper's Section V-A acceptance numbers."""

import numpy as np
import pytest

from repro.gpu.device import (
    DeviceSpec,
    jetson_orin_agx_64gb,
    jetson_orin_nx_16gb,
    rtx_4090,
)
from repro.gpu.kernels import (
    KernelCost,
    attention_kernels,
    dejavu_predict_kernel,
    dense_gemv,
    fused_sparse_mlp_kernel,
    merge,
    sign_pack_kernel,
    sparse_gemv,
    sparseinfer_predict_kernel,
)
from repro.gpu.memory import (
    MIB,
    dejavu_predictor_bytes,
    engine_memory,
    kv_cache_bytes,
    sparseinfer_predictor_bytes,
    weight_bytes,
)
from repro.gpu.pipeline import (
    EngineSpec,
    LayerSparsity,
    SparsityProfile,
    decode_latency,
    decode_step_timeline,
    dense_engine,
    powerinfer_engine,
    sparseinfer_engine,
)
from repro.gpu.simulator import ConcurrentGroup, Timeline
from repro.model.config import prosparse_llama2_7b, prosparse_llama2_13b


@pytest.fixture(scope="module")
def orin():
    return jetson_orin_agx_64gb()


@pytest.fixture(scope="module")
def cfg13():
    return prosparse_llama2_13b()


class TestDeviceSpec:
    def test_presets_valid(self):
        for dev in (jetson_orin_agx_64gb(), jetson_orin_nx_16gb(), rtx_4090()):
            assert dev.effective_bandwidth < dev.dram_bandwidth
            assert dev.effective_sparse_bandwidth < dev.effective_bandwidth

    def test_validation(self):
        with pytest.raises(ValueError):
            jetson_orin_agx_64gb().scaled(dram_bandwidth=-1)
        with pytest.raises(ValueError):
            jetson_orin_agx_64gb().scaled(mem_efficiency=0.0)

    def test_scaled_override(self, orin):
        fast = orin.scaled(dram_bandwidth=400e9)
        assert fast.dram_bandwidth == 400e9
        assert fast.cuda_flops_fp32 == orin.cuda_flops_fp32


class TestKernelCosts:
    def test_memory_bound_gemv(self, orin, cfg13):
        """A 13B-layer GEMV is firmly memory bound on Orin."""
        k = dense_gemv("gate", cfg13.d_ff, cfg13.d_model)
        assert k.memory_time(orin) > k.compute_time(orin)

    def test_latency_includes_launch(self, orin):
        k = KernelCost(name="noop")
        assert k.latency(orin) == pytest.approx(orin.kernel_launch_latency)

    def test_sparse_gemv_scales_with_density(self, orin, cfg13):
        full = sparse_gemv("g", cfg13.d_ff, cfg13.d_model, 1.0)
        tenth = sparse_gemv("g", cfg13.d_ff, cfg13.d_model, 0.1)
        # 10x fewer bytes, but moved at gather (not streaming) efficiency.
        assert tenth.latency(orin) < 0.45 * full.latency(orin)
        assert tenth.latency(orin) > 0.1 * full.latency(orin)

    def test_sparse_gemv_at_full_density_matches_dense_bandwidth(
        self, orin, cfg13
    ):
        """density=1 must not pay the gather penalty (CATS gate case)."""
        dense = dense_gemv("g", cfg13.d_ff, cfg13.d_model)
        sparse_full = sparse_gemv("g", cfg13.d_ff, cfg13.d_model, 1.0)
        assert sparse_full.latency(orin) == pytest.approx(
            dense.latency(orin), rel=0.01
        )

    def test_sparse_density_validated(self):
        with pytest.raises(ValueError):
            sparse_gemv("g", 10, 10, 1.5)

    def test_negative_work_rejected(self):
        with pytest.raises(ValueError):
            KernelCost(name="bad", bytes_streamed=-1)

    def test_atomic_output_costs_extra(self, orin, cfg13):
        plain = sparse_gemv("d", cfg13.d_model, cfg13.d_ff, 0.1)
        atomic = sparse_gemv("d", cfg13.d_model, cfg13.d_ff, 0.1,
                             atomic_output=True)
        assert atomic.latency(orin) > plain.latency(orin)

    def test_merge_sums_work(self):
        a = KernelCost(name="a", bytes_streamed=100, flops_cuda=10)
        b = KernelCost(name="b", bytes_streamed=50, int_ops=5)
        m = merge("ab", a, b)
        assert m.bytes_streamed == 150
        assert m.flops_cuda == 10
        assert m.int_ops == 5

    def test_fused_mlp_cheaper_than_parts(self, orin, cfg13):
        d, k = cfg13.d_model, cfg13.d_ff
        fused = fused_sparse_mlp_kernel(d, k, 0.1, 0.08)
        parts = (
            sparse_gemv("gate", k, d, 0.1).latency(orin)
            + sparse_gemv("up", k, d, 0.08).latency(orin)
            + KernelCost(name="mul", bytes_streamed=3 * k * 2).latency(orin)
        )
        assert fused.latency(orin) < parts


class TestPaperSectionVA:
    """Acceptance: the Section V-A numbers within tolerance bands."""

    def test_predictor_latency_near_70us(self, orin, cfg13):
        lat = (
            sign_pack_kernel(cfg13.d_model).latency(orin)
            + sparseinfer_predict_kernel(cfg13.d_ff, cfg13.d_model).latency(orin)
        )
        assert 50e-6 < lat < 90e-6  # paper: ~70 us

    def test_predictor_speedup_near_3_66(self, orin, cfg13):
        si = (
            sign_pack_kernel(cfg13.d_model).latency(orin)
            + sparseinfer_predict_kernel(cfg13.d_ff, cfg13.d_model).latency(orin)
        )
        pi = dejavu_predict_kernel(cfg13.d_model, 1024, cfg13.d_ff).latency(orin)
        assert 3.0 < pi / si < 4.5  # paper: 3.66x

    def test_powerinfer_memory_1480mb(self, cfg13):
        assert dejavu_predictor_bytes(cfg13, 1024) / MIB == pytest.approx(
            1480.0, rel=1e-3
        )

    def test_sparseinfer_memory_337mb(self, cfg13):
        assert sparseinfer_predictor_bytes(cfg13) / MIB == pytest.approx(
            337.5, rel=1e-3
        )

    def test_memory_reduction_4_38x(self, cfg13):
        ratio = dejavu_predictor_bytes(cfg13) / sparseinfer_predictor_bytes(cfg13)
        assert ratio == pytest.approx(4.38, abs=0.05)


class TestMemoryAccounting:
    def test_weight_bytes_near_26gb(self, cfg13):
        assert 24e9 < weight_bytes(cfg13) < 28e9  # 13B params FP16

    def test_kv_cache_linear_in_seq(self, cfg13):
        assert kv_cache_bytes(cfg13, 200) == 2 * kv_cache_bytes(cfg13, 100)

    def test_engine_memory_variants(self, cfg13):
        dense = engine_memory(cfg13, "dense")
        pi = engine_memory(cfg13, "powerinfer")
        si = engine_memory(cfg13, "sparseinfer")
        assert dense.predictor_bytes == 0
        assert pi.predictor_bytes > si.predictor_bytes > 0
        assert pi.total_bytes > si.total_bytes > dense.total_bytes

    def test_unknown_engine_rejected(self, cfg13):
        with pytest.raises(ValueError):
            engine_memory(cfg13, "magic")

    def test_negative_seq_rejected(self, cfg13):
        with pytest.raises(ValueError):
            kv_cache_bytes(cfg13, -1)


class TestSimulator:
    def test_sequential_latency_adds(self, orin):
        k = KernelCost(name="k", bytes_streamed=1e6)
        t = Timeline().add(k).add(k)
        assert t.latency(orin) == pytest.approx(2 * k.latency(orin))

    def test_cke_shares_bandwidth(self, orin):
        """Memory-bound kernels gain ~nothing from concurrency."""
        k = KernelCost(name="k", bytes_streamed=1e8)
        seq = Timeline().add(k).add(k).latency(orin)
        cke = Timeline().concurrent([k, k]).latency(orin)
        assert cke == pytest.approx(seq, rel=1e-6)

    def test_cke_overlaps_compute(self, orin):
        mem = KernelCost(name="mem", bytes_streamed=1e8)
        compute = KernelCost(name="fma", flops_cuda=5e8)
        seq = Timeline().add(mem).add(compute).latency(orin)
        cke = Timeline().concurrent([mem, compute]).latency(orin)
        assert cke < seq

    def test_breakdown_accounts_everything(self, orin):
        t = Timeline(fixed_overhead=1e-3)
        t.add(KernelCost(name="a", bytes_streamed=1e6))
        t.add(KernelCost(name="a", bytes_streamed=1e6))
        t.add(KernelCost(name="b", flops_cuda=1e7))
        bd = t.breakdown(orin)
        assert bd["host_overhead"] == 1e-3
        assert sum(bd.values()) == pytest.approx(t.latency(orin))

    def test_launch_counting(self):
        t = Timeline().add(KernelCost(name="a")).concurrent(
            [KernelCost(name="b"), KernelCost(name="c")]
        )
        assert t.n_launches == 3

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            ConcurrentGroup(kernels=())


class TestPipeline:
    def test_dense_13b_tokens_per_second_plausible(self, orin, cfg13):
        """llama.cpp-class 13B FP16 decode on Orin: single-digit tok/s."""
        report = decode_latency(cfg13, dense_engine(), orin, seq_len=700)
        assert 2.0 < report.tokens_per_second < 12.0

    def test_headline_speedups(self, orin):
        """Fig. 4 headline: ~1.79x (13B) and ~1.74x (7B) over llama.cpp,
        ~1.27x / ~1.30x over PowerInfer, at alpha=1.0."""
        for cfg, si_target, pi_target in (
            (prosparse_llama2_13b(), 1.79, 1.27),
            (prosparse_llama2_7b(), 1.74, 1.30),
        ):
            prof = SparsityProfile.uniform(cfg.n_layers, 0.90, 0.92)
            pi_prof = SparsityProfile.uniform(cfg.n_layers, 0.86)
            base = decode_latency(cfg, dense_engine(), orin, seq_len=700)
            si = decode_latency(cfg, sparseinfer_engine(), orin, prof,
                                seq_len=700)
            pi = decode_latency(cfg, powerinfer_engine(), orin, pi_prof,
                                seq_len=700)
            assert si.speedup_over(base) == pytest.approx(si_target, abs=0.15)
            assert si.speedup_over(pi) == pytest.approx(pi_target, abs=0.15)

    def test_variant_ordering(self, orin, cfg13):
        """+AS must not be slower than base; full variant fastest."""
        prof = SparsityProfile.uniform(cfg13.n_layers, 0.88, 0.93)
        variants = {}
        for kf in (False, True):
            for as_ in (False, True):
                spec = EngineSpec(kind="sparseinfer", kernel_fusion=kf,
                                  actual_sparsity=as_)
                variants[(kf, as_)] = decode_latency(
                    cfg13, spec, orin, prof, seq_len=700
                ).seconds_per_token
        assert variants[(True, True)] <= variants[(False, False)]
        assert variants[(False, True)] <= variants[(False, False)]
        assert variants[(True, False)] <= variants[(False, False)]

    def test_sparse_engines_require_profile(self, cfg13):
        with pytest.raises(ValueError):
            decode_step_timeline(cfg13, sparseinfer_engine())

    def test_profile_length_checked(self, cfg13):
        with pytest.raises(ValueError):
            decode_step_timeline(
                cfg13, sparseinfer_engine(),
                SparsityProfile.uniform(3, 0.9),
            )

    def test_layer_sparsity_validation(self):
        with pytest.raises(ValueError):
            LayerSparsity(predicted_skip=0.9, union_skip=0.5)
        with pytest.raises(ValueError):
            LayerSparsity(predicted_skip=1.2, union_skip=1.3)

    def test_unknown_engine_kind_rejected(self):
        with pytest.raises(ValueError):
            EngineSpec(kind="tpu")

    def test_attention_cost_grows_with_seq(self, orin, cfg13):
        short = sum(
            k.latency(orin) for k in attention_kernels(cfg13.d_model, 40, 10)
        )
        long = sum(
            k.latency(orin) for k in attention_kernels(cfg13.d_model, 40, 4000)
        )
        assert long > short

    def test_mlp_share_matches_profiling_footnote(self, orin, cfg13):
        """Paper footnote 1: MLP ~62%, attention ~38% of decode compute.

        Our roofline should land in that neighbourhood for the dense 13B
        at GSM8K-scale context."""
        timeline = decode_step_timeline(cfg13, dense_engine(), seq_len=700)
        bd = timeline.breakdown(orin)
        mlp = sum(v for k, v in bd.items() if k in ("gate", "up", "down", "gate_mul"))
        attn = sum(
            v for k, v in bd.items()
            if k in ("wq", "wk", "wv", "wo", "rope", "attn_scores_softmax_wsum")
        )
        share = mlp / (mlp + attn)
        assert 0.55 < share < 0.72

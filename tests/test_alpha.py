"""Tests for alpha schedules and calibration."""

import pytest

from repro.core.alpha import (
    ALPHA_SCALE,
    AlphaSchedule,
    alpha_to_fixed_point,
    calibrate_alpha,
    sweep_grid,
)


class TestFixedPoint:
    def test_scale(self):
        assert alpha_to_fixed_point(1.0) == 100
        assert alpha_to_fixed_point(1.03) == 103
        assert ALPHA_SCALE == 100

    def test_rounding(self):
        assert alpha_to_fixed_point(1.014) == 101
        assert alpha_to_fixed_point(1.016) == 102

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            alpha_to_fixed_point(0.0)


class TestAlphaSchedule:
    def test_uniform(self):
        s = AlphaSchedule.uniform(1.02, 4)
        assert len(s) == 4
        assert all(s[i] == 1.02 for i in range(4))

    def test_early_layers_matches_paper(self):
        # Paper: alpha > 1 on the first 20 layers, 1.0 on the rest.
        s = AlphaSchedule.early_layers(40, alpha_early=1.03, n_early=20)
        assert s[0] == 1.03
        assert s[19] == 1.03
        assert s[20] == 1.0
        assert s[39] == 1.0

    def test_early_clamped_to_model_depth(self):
        s = AlphaSchedule.early_layers(4, alpha_early=1.1, n_early=20)
        assert all(s[i] == 1.1 for i in range(4))

    def test_fixed_point_per_layer(self):
        s = AlphaSchedule.from_values([1.0, 1.03])
        assert s.fixed_point(0) == 100
        assert s.fixed_point(1) == 103

    def test_with_layer(self):
        s = AlphaSchedule.uniform(1.0, 3).with_layer(1, 1.05)
        assert s[1] == 1.05
        assert s[0] == 1.0

    def test_rejects_non_positive_values(self):
        with pytest.raises(ValueError):
            AlphaSchedule.from_values([1.0, -0.5])

    def test_rejects_empty_model(self):
        with pytest.raises(ValueError):
            AlphaSchedule.uniform(1.0, 0)


class TestCalibration:
    def test_picks_smallest_sufficient_alpha(self):
        # Layer 0 needs 1.02 to reach 0.99, layer 1 is fine at 1.0.
        table = {
            (0, 1.0): 0.95, (0, 1.01): 0.97, (0, 1.02): 0.992, (0, 1.03): 0.995,
            (1, 1.0): 0.995, (1, 1.01): 0.996, (1, 1.02): 0.997, (1, 1.03): 0.998,
        }
        s = calibrate_alpha(
            lambda layer, alpha: table[(layer, alpha)],
            n_layers=2,
            target_precision=0.99,
            candidates=(1.0, 1.01, 1.02, 1.03),
        )
        assert s[0] == 1.02
        assert s[1] == 1.0

    def test_unreachable_target_uses_largest(self):
        s = calibrate_alpha(
            lambda layer, alpha: 0.5,
            n_layers=1,
            target_precision=0.99,
            candidates=(1.0, 1.05),
        )
        assert s[0] == 1.05

    def test_invalid_target_rejected(self):
        with pytest.raises(ValueError):
            calibrate_alpha(lambda l, a: 1.0, 1, target_precision=0.0)

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            calibrate_alpha(lambda l, a: 1.0, 1, candidates=())


def test_sweep_grid_sorted():
    grid = sweep_grid((1.03, 1.0, 1.01))
    assert grid.tolist() == [1.0, 1.01, 1.03]

"""Tests for optimizers and gradient clipping."""

import numpy as np
import pytest

from repro.autograd.optim import SGD, Adam, clip_grad_norm
from repro.autograd.tensor import Tensor


def quadratic_loss(p: Tensor) -> Tensor:
    return ((p - 3.0) * (p - 3.0)).sum()


class TestSGD:
    def test_minimises_quadratic(self):
        p = Tensor(np.zeros(4), requires_grad=True)
        opt = SGD([p], lr=0.1)
        for _ in range(100):
            opt.zero_grad()
            quadratic_loss(p).backward()
            opt.step()
        np.testing.assert_allclose(p.data, 3.0, atol=1e-3)

    def test_momentum_accelerates(self):
        p1 = Tensor(np.zeros(1), requires_grad=True)
        p2 = Tensor(np.zeros(1), requires_grad=True)
        plain = SGD([p1], lr=0.01)
        momentum = SGD([p2], lr=0.01, momentum=0.9)
        for _ in range(20):
            for p, opt in ((p1, plain), (p2, momentum)):
                opt.zero_grad()
                quadratic_loss(p).backward()
                opt.step()
        assert abs(p2.data[0] - 3.0) < abs(p1.data[0] - 3.0)

    def test_rejects_bad_lr(self):
        with pytest.raises(ValueError):
            SGD([Tensor(np.zeros(1), requires_grad=True)], lr=0.0)


class TestAdam:
    def test_minimises_quadratic(self):
        p = Tensor(np.zeros(4), requires_grad=True)
        opt = Adam([p], lr=0.2)
        for _ in range(200):
            opt.zero_grad()
            quadratic_loss(p).backward()
            opt.step()
        np.testing.assert_allclose(p.data, 3.0, atol=1e-2)

    def test_weight_decay_shrinks_params(self):
        p = Tensor(np.full(3, 10.0), requires_grad=True)
        opt = Adam([p], lr=0.01, weight_decay=0.5)
        opt.zero_grad()
        (p * 0.0).sum().backward()  # zero gradient
        opt.step()
        assert np.all(np.abs(p.data) < 10.0)

    def test_skips_params_without_grad(self):
        p = Tensor(np.ones(2), requires_grad=True)
        q = Tensor(np.ones(2), requires_grad=True)
        opt = Adam([p, q], lr=0.1)
        opt.zero_grad()
        (p * p).sum().backward()
        opt.step()
        np.testing.assert_allclose(q.data, 1.0)
        assert not np.allclose(p.data, 1.0)

    def test_rejects_empty_params(self):
        with pytest.raises(ValueError):
            Adam([Tensor(np.zeros(1))])  # no requires_grad


class TestClipGradNorm:
    def test_clips_to_max(self):
        p = Tensor(np.zeros(4), requires_grad=True)
        p.grad = np.full(4, 10.0, dtype=np.float32)
        norm = clip_grad_norm([p], max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0, abs=1e-5)

    def test_leaves_small_grads_alone(self):
        p = Tensor(np.zeros(4), requires_grad=True)
        p.grad = np.full(4, 0.01, dtype=np.float32)
        before = p.grad.copy()
        clip_grad_norm([p], max_norm=1.0)
        np.testing.assert_allclose(p.grad, before)

    def test_rejects_bad_norm(self):
        with pytest.raises(ValueError):
            clip_grad_norm([], max_norm=0.0)

"""Statistical + determinism tests for the seeded load generator.

The arrival processes are the foundation the overload benchmark's
*strict* (non-statistical) goodput gates stand on: those gates only
make sense if the same seed always produces the same trace.  So the
suite locks bit-identical determinism first, then sanity-checks each
process's statistics (empirical mean rate near the configured rate,
on/off dwell structure, diurnal rate modulation) with generous
tolerances -- they guard against "wrong process" bugs (rate inverted,
thinning backwards), not against sampling noise.
"""

import numpy as np
import pytest

from repro.model.config import ModelConfig
from repro.model.weights import random_weights
from repro.core.predictor import SparseInferPredictor
from repro.serving import (
    BatchedEngine,
    ContinuousBatchingScheduler,
    DiurnalProcess,
    LoadGenerator,
    OnOffProcess,
    PoissonProcess,
    Request,
    SLOSpec,
    TimedRequest,
    run_trace,
)
from repro.workloads.scenarios import (
    ScenarioMix,
    chat_style,
    default_mix,
    fewshot_fleet,
    scenario_tokenizer,
    summarise_style,
)

ALL_PROCESSES = [
    PoissonProcess(rate=2.0),
    OnOffProcess(burst_rate=8.0, mean_on=1.0, mean_off=3.0),
    DiurnalProcess(low_rate=0.5, high_rate=4.0, period=25.0),
]


def simple_factory(rng, request_id):
    prompt_len = int(rng.integers(2, 6))
    prompt = tuple(int(t) for t in rng.integers(3, 10, size=prompt_len))
    return Request(
        request_id=request_id, prompt_ids=prompt,
        max_new_tokens=int(rng.integers(1, 5)),
    )


# -- determinism -----------------------------------------------------------


@pytest.mark.parametrize("process", ALL_PROCESSES,
                         ids=lambda p: type(p).__name__)
def test_same_seed_bit_identical_arrivals(process):
    a = process.arrival_times(300, np.random.default_rng(42))
    b = process.arrival_times(300, np.random.default_rng(42))
    assert np.array_equal(a, b)


@pytest.mark.parametrize("process", ALL_PROCESSES,
                         ids=lambda p: type(p).__name__)
def test_different_seeds_differ(process):
    a = process.arrival_times(100, np.random.default_rng(1))
    b = process.arrival_times(100, np.random.default_rng(2))
    assert not np.array_equal(a, b)


def test_same_seed_bit_identical_trace():
    gen = LoadGenerator(PoissonProcess(1.5), simple_factory, seed=9)
    first = gen.trace(50)
    second = gen.trace(50)
    assert [
        (e.time, e.request.request_id, e.request.prompt_ids,
         e.request.max_new_tokens)
        for e in first
    ] == [
        (e.time, e.request.request_id, e.request.prompt_ids,
         e.request.max_new_tokens)
        for e in second
    ]


def test_arrival_and_shape_streams_independent():
    """Changing the shape factory must not move arrival times."""
    def other_factory(rng, request_id):
        rng.integers(0, 100, size=17)   # consume extra shape draws
        return simple_factory(rng, request_id)

    base = LoadGenerator(PoissonProcess(1.5), simple_factory, seed=9)
    other = LoadGenerator(PoissonProcess(1.5), other_factory, seed=9)
    assert [e.time for e in base.trace(40)] == \
        [e.time for e in other.trace(40)]


def test_request_ids_sequential_from_start_id():
    gen = LoadGenerator(PoissonProcess(3.0), simple_factory, seed=0)
    trace = gen.trace(10, start_id=100)
    assert sorted(e.request.request_id for e in trace) == list(range(100, 110))


# -- monotonicity + mean rate ---------------------------------------------


@pytest.mark.parametrize("process", ALL_PROCESSES,
                         ids=lambda p: type(p).__name__)
def test_arrivals_monotone_nonneg(process):
    times = process.arrival_times(500, np.random.default_rng(7))
    assert len(times) == 500
    assert times[0] >= 0.0
    assert np.all(np.diff(times) >= 0)


@pytest.mark.parametrize("process,expected_rate", [
    (PoissonProcess(rate=2.0), 2.0),
    (OnOffProcess(burst_rate=8.0, mean_on=1.0, mean_off=3.0), 2.0),
    # Diurnal mean rate over whole periods is (low + high) / 2.
    (DiurnalProcess(low_rate=1.0, high_rate=3.0, period=10.0), 2.0),
], ids=["poisson", "onoff", "diurnal"])
def test_empirical_mean_rate_within_tolerance(process, expected_rate):
    """Averaged over several seeds, arrivals/second ~= configured rate."""
    rates = []
    for seed in range(8):
        times = process.arrival_times(400, np.random.default_rng(seed))
        rates.append(400 / times[-1])
    mean = float(np.mean(rates))
    assert expected_rate * 0.7 < mean < expected_rate * 1.3, mean


def test_onoff_mean_rate_property():
    proc = OnOffProcess(burst_rate=10.0, mean_on=2.0, mean_off=3.0)
    assert proc.mean_rate == pytest.approx(10.0 * 2.0 / 5.0)


# -- process-shape sanity --------------------------------------------------


def test_onoff_burstier_than_poisson():
    """On/off gaps are bimodal: more tight gaps AND more huge gaps.

    Within a burst, gaps are ~Exp(burst_rate) (much tighter than the
    mean rate suggests); between bursts they include an OFF dwell.  A
    Poisson process at the same mean rate has neither excess.  The
    dispersion index (var/mean^2 of inter-arrival gaps, = 1 for
    exponential) separates the two cleanly.
    """
    onoff = OnOffProcess(burst_rate=16.0, mean_on=0.5, mean_off=3.5)
    poisson = PoissonProcess(rate=onoff.mean_rate)
    rng_a, rng_b = np.random.default_rng(3), np.random.default_rng(3)
    gaps_onoff = np.diff(onoff.arrival_times(2000, rng_a))
    gaps_poisson = np.diff(poisson.arrival_times(2000, rng_b))
    cv2_onoff = np.var(gaps_onoff) / np.mean(gaps_onoff) ** 2
    cv2_poisson = np.var(gaps_poisson) / np.mean(gaps_poisson) ** 2
    assert cv2_poisson < 2.0          # exponential gaps: CV^2 ~= 1
    assert cv2_onoff > 2.0 * cv2_poisson


def test_onoff_dwell_times_sane():
    """Bursts actually cluster: the median gap is a burst-internal gap."""
    proc = OnOffProcess(burst_rate=16.0, mean_on=0.5, mean_off=3.5)
    gaps = np.diff(proc.arrival_times(2000, np.random.default_rng(11)))
    # Median gap should look like Exp(burst_rate), far below the mean
    # inter-arrival time at the long-run rate (1 / 2 = 0.5s here).
    assert np.median(gaps) < 1.0 / proc.mean_rate
    # And the tail must contain genuine idle dwells.
    assert np.max(gaps) > proc.mean_off / 2


def test_diurnal_peak_vs_trough_density():
    """More arrivals land near the rate peak than near the trough."""
    proc = DiurnalProcess(low_rate=0.5, high_rate=8.0, period=20.0)
    times = proc.arrival_times(3000, np.random.default_rng(5))
    phase = np.mod(times, proc.period) / proc.period
    # Trough at phase 0/1, peak at phase 0.5.
    near_peak = np.sum((phase > 0.35) & (phase < 0.65))
    near_trough = np.sum((phase < 0.15) | (phase > 0.85))
    assert near_peak > 2 * near_trough


def test_diurnal_rate_at_endpoints():
    proc = DiurnalProcess(low_rate=1.0, high_rate=5.0, period=12.0)
    assert proc.rate_at(0.0) == pytest.approx(1.0)
    assert proc.rate_at(6.0) == pytest.approx(5.0)
    assert proc.rate_at(12.0) == pytest.approx(1.0)


# -- validation ------------------------------------------------------------


def test_process_validation():
    with pytest.raises(ValueError):
        PoissonProcess(rate=0.0)
    with pytest.raises(ValueError):
        OnOffProcess(burst_rate=-1.0, mean_on=1.0, mean_off=1.0)
    with pytest.raises(ValueError):
        OnOffProcess(burst_rate=1.0, mean_on=0.0, mean_off=1.0)
    with pytest.raises(ValueError):
        DiurnalProcess(low_rate=2.0, high_rate=1.0, period=10.0)
    with pytest.raises(ValueError):
        DiurnalProcess(low_rate=1.0, high_rate=2.0, period=0.0)
    with pytest.raises(ValueError):
        PoissonProcess(1.0).arrival_times(-1, np.random.default_rng(0))


def test_loadgen_validation():
    with pytest.raises(ValueError):
        LoadGenerator(object(), simple_factory)
    with pytest.raises(ValueError):
        LoadGenerator(PoissonProcess(1.0), "not callable")
    gen = LoadGenerator(PoissonProcess(1.0), simple_factory)
    with pytest.raises(ValueError):
        gen.trace(-1)
    with pytest.raises(ValueError):
        run_trace(None, [], ticks_per_second=0.0)


# -- scenarios -------------------------------------------------------------


def test_scenario_shapes():
    tok = scenario_tokenizer()
    rng = np.random.default_rng(0)
    fleet = fewshot_fleet(n_shots=4)
    summarise = summarise_style(n_documents=6)
    chat = chat_style()
    fleet_reqs = [fleet.build(rng, i, tok) for i in range(10)]
    summ_reqs = [summarise.build(rng, i, tok) for i in range(10)]
    chat_reqs = [chat.build(rng, i, tok) for i in range(10)]
    # Fleet requests share the full exemplar prefix.
    shared = fleet_reqs[0].common_prefix_len(fleet_reqs[1].prompt_ids)
    assert shared > fleet_reqs[0].prompt_len // 2
    # Summarise: long prompt, short output.  Chat: the opposite balance.
    assert min(r.prompt_len for r in summ_reqs) > \
        max(r.prompt_len for r in chat_reqs)
    assert min(r.max_new_tokens for r in chat_reqs) > \
        max(r.max_new_tokens for r in summ_reqs)
    # SLO class tags ride along.
    assert {r.slo.slo_class for r in fleet_reqs} == {"fleet"}
    assert {r.slo.slo_class for r in chat_reqs} == {"interactive"}


def test_scenario_mix_weights_and_determinism():
    mix = ScenarioMix(
        [chat_style(), summarise_style()], weights=[0.9, 0.1]
    )
    rng = np.random.default_rng(1)
    names = [mix.draw(rng).name for _ in range(300)]
    assert names.count("chat_style") > names.count("summarise_style") * 3
    factory = mix.factory()
    a = LoadGenerator(PoissonProcess(2.0), factory, seed=4).trace(30)
    b = LoadGenerator(PoissonProcess(2.0), factory, seed=4).trace(30)
    assert [e.request.prompt_ids for e in a] == \
        [e.request.prompt_ids for e in b]


def test_scenario_mix_validation():
    with pytest.raises(ValueError):
        ScenarioMix([])
    with pytest.raises(ValueError):
        ScenarioMix([chat_style()], weights=[1.0, 2.0])
    with pytest.raises(ValueError):
        ScenarioMix([chat_style()], weights=[-1.0])
    with pytest.raises(ValueError):
        chat_style(min_turn_tokens=9, max_turn_tokens=3)


# -- run_trace integration -------------------------------------------------


def _scenario_engine(max_batch_size=4):
    tok = scenario_tokenizer()
    config = ModelConfig(
        name="micro-scenario", vocab_size=tok.vocab_size, d_model=32,
        n_layers=2, n_heads=2, d_ff=64, max_seq_len=192, dtype_bytes=4,
    )
    weights = random_weights(config, seed=11)
    predictor = SparseInferPredictor.from_gate_weights(
        weights.gate_matrices()
    )
    return BatchedEngine(
        weights, predictor=predictor, paged=True,
        max_batch_size=max_batch_size, n_pages=96, page_size=16,
    )


def test_run_trace_drains_and_respects_arrival_order():
    submitted = []
    trace = LoadGenerator(
        PoissonProcess(1.0), default_mix().factory(), seed=7
    ).trace(12)
    scheduler = ContinuousBatchingScheduler(_scenario_engine())
    original_submit = scheduler.submit

    def spy(request):
        submitted.append((scheduler.step_count, request.request_id))
        original_submit(request)

    scheduler.submit = spy
    report = run_trace(scheduler, trace, ticks_per_second=2.0)
    assert len(report.completions) == 12
    assert scheduler.idle
    # Submissions happen in trace order, at non-decreasing ticks, and
    # no earlier than each arrival time allows.
    ticks = [t for t, _ in submitted]
    assert ticks == sorted(ticks)
    by_id = {e.request.request_id: e.time for e in trace}
    for tick, rid in submitted:
        assert tick / 2.0 >= by_id[rid] or tick == 0


def test_run_trace_submitted_step_matches_virtual_clock():
    trace = LoadGenerator(
        PoissonProcess(0.5), default_mix().factory(), seed=3
    ).trace(8)
    scheduler = ContinuousBatchingScheduler(_scenario_engine())
    report = run_trace(scheduler, trace, ticks_per_second=1.0)
    by_id = {e.request.request_id: e.time for e in trace}
    for completion in report.completions:
        arrival = by_id[completion.request.request_id]
        # Submitted at the first tick whose virtual time covers the
        # arrival -- never before it.
        assert completion.submitted_step >= arrival - 1
        assert completion.submitted_step <= arrival + 1 + 1


def test_run_trace_max_steps_guard():
    # One request arriving far in the future forces tick spinning.
    request = Request(request_id=0, prompt_ids=(3, 4), max_new_tokens=1)
    trace = [TimedRequest(time=10_000.0, request=request)]
    scheduler = ContinuousBatchingScheduler(_scenario_engine())
    with pytest.raises(RuntimeError):
        run_trace(scheduler, trace, ticks_per_second=1.0, max_steps=50)


def test_slospec_validation():
    with pytest.raises(ValueError):
        SLOSpec(slo_class="")
    with pytest.raises(ValueError):
        SLOSpec(ttft_steps=0)
    with pytest.raises(ValueError):
        SLOSpec(itl_steps=-2)
    spec = SLOSpec("x", ttft_steps=3, itl_steps=2)
    assert spec.met(0, [3]) and not spec.met(0, [4])
    assert spec.met(5, [6, 8]) and not spec.met(5, [6, 9])
    assert spec.met(0, [])   # vacuous: no token ever owed... emitted

"""Tests for the page-granular KV cache and its serving integration."""

import numpy as np
import pytest

from repro.core.engine import build_batched_engine, build_engine
from repro.eval.memusage import (
    compare_kv_footprint,
    fixed_slot_kv_bytes,
    format_kv_footprint,
    paged_kv_bytes,
    pages_for_lengths,
)
from repro.model.kvcache import BatchedKVCache, KVCache
from repro.model.paged_kvcache import PagedKVCache, PagePool
from repro.serving import ContinuousBatchingScheduler, Request

PROMPTS = [[1, 4, 2], [3, 5], [6, 7, 8, 9], [2, 2, 1], [10, 3], [4, 4, 4]]


def make_requests(max_new_tokens=6, prompts=PROMPTS):
    return [
        Request(request_id=i, prompt_ids=tuple(p),
                max_new_tokens=max_new_tokens if isinstance(max_new_tokens, int)
                else max_new_tokens[i])
        for i, p in enumerate(prompts)
    ]


class TestPagePool:
    def test_pages_for_and_accounting(self, micro_config):
        pool = PagePool(micro_config, n_pages=4, page_size=8)
        assert pool.pages_for(0) == 0
        assert pool.pages_for(1) == 1
        assert pool.pages_for(8) == 1
        assert pool.pages_for(9) == 2
        assert pool.n_free_pages == 4
        assert pool.n_available_pages == 4
        assert pool.n_pages_in_use == 0
        assert pool.arena_bytes == 2 * 4 * micro_config.n_layers * 8 * \
            micro_config.d_model * 4

    def test_reservation_blocks_unreserved_claims(self, micro_config):
        pool = PagePool(micro_config, n_pages=3, page_size=4)
        pool._reserve(2)
        assert pool.n_available_pages == 1
        assert pool.can_reserve(4) and not pool.can_reserve(5)
        pool._claim_page(reserved=False)        # the one unreserved page
        with pytest.raises(RuntimeError, match="reserved"):
            pool._claim_page(reserved=False)
        pool._claim_page(reserved=True)         # reservations still honoured
        assert pool.n_available_pages == 0

    def test_page_double_release_raises(self, micro_config):
        pool = PagePool(micro_config, n_pages=2, page_size=4)
        page = pool._claim_page(reserved=False)
        pool._release_pages([page])
        with pytest.raises(ValueError, match="released twice"):
            pool._release_pages([page])


class TestPagedKVSlot:
    def test_lazy_growth_across_page_boundary(self, micro_config):
        cache = PagedKVCache(micro_config, n_slots=1, max_seq_len=16,
                             page_size=4)
        slot = cache.allocate()
        assert slot.n_pages == 0
        d = micro_config.d_model
        for pos in range(6):                   # crosses the 4-position page
            for layer in range(micro_config.n_layers):
                slot.append(layer, np.full(d, pos + 1.0),
                            np.full(d, -(pos + 1.0)), pos)
            slot.advance()
        assert slot.n_pages == 2               # one claim per page, not per layer
        assert cache.n_pages_in_use == 2
        keys, values = slot.view(1, 6)
        np.testing.assert_array_equal(keys[:, 0], np.arange(1.0, 7.0))
        np.testing.assert_array_equal(values[:, 0], -np.arange(1.0, 7.0))

    def test_single_page_view_is_zero_copy(self, micro_config):
        cache = PagedKVCache(micro_config, n_slots=1, max_seq_len=16,
                             page_size=8)
        slot = cache.allocate()
        d = micro_config.d_model
        slot.append(0, np.ones(d), np.ones(d), 0)
        keys, _ = slot.view(0, 1)
        assert np.shares_memory(keys, cache.pool.keys)

    def test_scattered_pages_gather_correctly(self, micro_config):
        """Interleaved allocation scatters page tables; view must reorder."""
        cache = PagedKVCache(micro_config, n_slots=2, max_seq_len=16,
                             page_size=2)
        a, b = cache.allocate(), cache.allocate()
        d = micro_config.d_model
        for pos in range(6):                   # alternate claims: a,b,a,b,...
            a.append(0, np.full(d, 10.0 + pos), np.zeros(d), pos)
            b.append(0, np.full(d, 20.0 + pos), np.zeros(d), pos)
        assert a.page_table != sorted(a.page_table) or \
            b.page_table != list(range(b.page_table[0], b.page_table[0] + 3))
        keys_a, _ = a.view(0, 6)
        keys_b, _ = b.view(0, 6)
        np.testing.assert_array_equal(keys_a[:, 0], 10.0 + np.arange(6))
        np.testing.assert_array_equal(keys_b[:, 0], 20.0 + np.arange(6))

    def test_matches_plain_kvcache_contents(self, micro_config, rng):
        plain = KVCache(micro_config, max_seq_len=12)
        cache = PagedKVCache(micro_config, n_slots=1, max_seq_len=12,
                             page_size=4)
        slot = cache.allocate()
        d = micro_config.d_model
        for pos in range(11):
            for layer in range(micro_config.n_layers):
                k = rng.standard_normal(d).astype(np.float32)
                v = rng.standard_normal(d).astype(np.float32)
                plain.append(layer, k, v, pos)
                slot.append(layer, k, v, pos)
            plain.advance()
            slot.advance()
        for layer in range(micro_config.n_layers):
            for length in (1, 4, 5, 11):
                pk, pv = plain.view(layer, length)
                sk, sv = slot.view(layer, length)
                np.testing.assert_array_equal(pk, sk)
                np.testing.assert_array_equal(pv, sv)

    def test_capacity_and_exhaustion_errors(self, micro_config):
        cache = PagedKVCache(micro_config, n_slots=1, max_seq_len=8,
                             page_size=4, n_pages=1)
        slot = cache.allocate()
        d = micro_config.d_model
        with pytest.raises(ValueError, match="exceeds slot capacity"):
            slot.append(0, np.zeros(d), np.zeros(d), 8)
        for pos in range(4):
            slot.append(0, np.zeros(d), np.zeros(d), pos)
        with pytest.raises(RuntimeError, match="exhausted"):
            slot.append(0, np.zeros(d), np.zeros(d), 4)

    def test_release_returns_pages_and_reservation(self, micro_config):
        cache = PagedKVCache(micro_config, n_slots=2, max_seq_len=16,
                             page_size=4, n_pages=4)
        slot = cache.allocate(max_positions=10)   # reserves 3 pages
        assert cache.n_available_pages == 1
        d = micro_config.d_model
        slot.append(0, np.zeros(d), np.zeros(d), 0)   # claims 1 of the 3
        assert cache.n_pages_in_use == 1
        assert cache.n_available_pages == 1
        cache.release(slot)
        assert cache.n_pages_in_use == 0
        assert cache.n_available_pages == 4
        with pytest.raises(ValueError, match="released twice"):
            cache.release(slot)

    def test_can_admit_tracks_reservations(self, micro_config):
        cache = PagedKVCache(micro_config, n_slots=3, max_seq_len=16,
                             page_size=4, n_pages=4)
        assert cache.can_admit(16)
        cache.allocate(max_positions=12)          # 3 pages reserved
        assert cache.can_admit(4) and not cache.can_admit(5)
        cache.allocate(max_positions=4)
        assert not cache.can_admit(1)


class TestFixedCacheRelease:
    def test_double_release_still_caught_with_set_tracking(self, micro_config):
        cache = BatchedKVCache(micro_config, n_slots=3, max_seq_len=8)
        a = cache.allocate()
        cache.release(a)
        with pytest.raises(ValueError, match="released twice"):
            cache.release(a)
        # Free tracking stays consistent across many recycle rounds.
        for _ in range(5):
            slots = [cache.allocate() for _ in range(3)]
            for slot in slots:
                cache.release(slot)
        assert cache.n_free == 3
        assert sorted(cache._free) == sorted(cache._free_set)


class TestPagedEngineEquivalence:
    def test_batch1_decode_bit_identical_to_build_engine(self, micro_weights):
        prompt = [1, 4, 2, 7, 3, 5, 6]      # crosses page boundaries at 4
        ref = build_engine(micro_weights)
        ref.reset()
        ref_logits = ref.prefill(prompt)
        engine = build_batched_engine(micro_weights, max_batch_size=1,
                                      paged=True, page_size=4)
        slot = engine.allocate_slot()
        logits = engine.prefill(slot, prompt)
        np.testing.assert_array_equal(logits, ref_logits)
        token = int(np.argmax(ref_logits))
        for _ in range(6):
            step = engine.decode_step([slot], [token])
            ref_step = ref.forward_token(token, ref.cache.length)
            np.testing.assert_array_equal(step[0], ref_step)
            token = int(np.argmax(ref_step))

    def test_paged_vs_fixed_mixed_length_batch_token_identical(
        self, micro_weights
    ):
        lengths = [3, 9, 2, 7, 4, 11]
        requests = lambda: make_requests(lengths)  # noqa: E731
        fixed = build_batched_engine(micro_weights, max_batch_size=3)
        paged = build_batched_engine(micro_weights, max_batch_size=3,
                                     paged=True, page_size=4)
        outs = []
        for engine in (fixed, paged):
            scheduler = ContinuousBatchingScheduler(engine)
            for request in requests():
                scheduler.submit(request)
            report = scheduler.run()
            outs.append({c.request_id: c.generated_ids
                         for c in report.completions})
        assert outs[0] == outs[1]
        assert all(len(outs[0][i]) == lengths[i] for i in range(len(lengths)))

    def test_default_page_budget_matches_fixed_worst_case(self, micro_weights):
        engine = build_batched_engine(micro_weights, max_batch_size=2,
                                      max_seq_len=64, paged=True,
                                      page_size=16)
        assert engine.cache.n_pages == 2 * 4
        assert engine.cache.kv_bytes == \
            build_batched_engine(micro_weights, max_batch_size=2,
                                 max_seq_len=64).cache.kv_bytes


class TestPrefixSharingEquivalence:
    """Forked decode must be bit-identical to unshared paged decode and
    to ``build_engine``, wherever the shared prefix lands on the page
    grid."""

    PROMPT_A = [1, 4, 2, 7, 3, 5, 6, 2, 9, 1, 3, 8]      # 12 tokens
    SUFFIX = [9, 2, 5]
    # page_size -> shared prefix lengths: on a page boundary, mid-page,
    # and past the donor's end (the fork shares the donor's entire
    # resident prompt and the new prompt strictly extends it).
    CASES = {1: [3, 12], 3: [6, 7, 11, 12], 16: [5, 11, 12]}

    @pytest.mark.parametrize("page_size", [1, 3, 16])
    def test_forked_prefill_and_decode_bit_identical(self, micro_weights,
                                                     page_size):
        for shared in self.CASES[page_size]:
            prompt_b = self.PROMPT_A[:shared] + self.SUFFIX
            worst = len(prompt_b) + 8

            forked = build_batched_engine(micro_weights, max_batch_size=2,
                                          paged=True, page_size=page_size,
                                          prefix_sharing=True)
            slot_a = forked.allocate_slot()
            logits_a = forked.prefill(slot_a, self.PROMPT_A)
            slot_b = forked.fork_slot(slot_a, shared, worst)
            assert slot_b.length == shared
            logits_b = forked.prefill(slot_b, self.SUFFIX)

            plain = build_batched_engine(micro_weights, max_batch_size=2,
                                         paged=True, page_size=page_size)
            ref_a = plain.allocate_slot()
            plain.prefill(ref_a, self.PROMPT_A)
            ref_b = plain.allocate_slot()
            ref_logits_b = plain.prefill(ref_b, prompt_b)

            single = build_engine(micro_weights)
            single.reset()
            single_logits = single.prefill(prompt_b)

            np.testing.assert_array_equal(logits_b, ref_logits_b)
            np.testing.assert_array_equal(logits_b, single_logits)

            # Decode the forked sequence alone: batch=1 stays
            # bit-identical across all three engines.
            token = int(np.argmax(logits_b))
            for _ in range(3):
                step = forked.decode_step([slot_b], [token])
                ref_step = plain.decode_step([ref_b], [token])
                single_step = single.forward_token(
                    token, single.cache.length
                )
                np.testing.assert_array_equal(step[0], ref_step[0])
                np.testing.assert_array_equal(step[0], single_step)
                token = int(np.argmax(single_step))

            # Decode donor and fork together: the batched path sees
            # identical inputs on both engines, bit for bit.
            token_a = int(np.argmax(logits_a))
            for _ in range(3):
                step = forked.decode_step([slot_a, slot_b],
                                          [token_a, token])
                ref_step = plain.decode_step([ref_a, ref_b],
                                             [token_a, token])
                np.testing.assert_array_equal(step, ref_step)
                token_a = int(np.argmax(step[0]))
                token = int(np.argmax(step[1]))

    def test_fork_shares_and_cow_isolates_through_engine(self, micro_weights):
        engine = build_batched_engine(micro_weights, max_batch_size=2,
                                      paged=True, page_size=4,
                                      prefix_sharing=True)
        slot_a = engine.allocate_slot()
        engine.prefill(slot_a, self.PROMPT_A)
        slot_b = engine.fork_slot(slot_a, 8)          # 2 full pages shared
        assert engine.cache.n_shared_pages == 2
        assert slot_b.page_table[:2] == slot_a.page_table[:2]
        engine.prefill(slot_b, self.SUFFIX)           # appends past prefix
        assert slot_b.page_table[:2] == slot_a.page_table[:2]
        engine.release_slot(slot_b)
        assert engine.cache.n_shared_pages == 0
        keys_a, _ = slot_a.view(0, 12)                # donor K/V intact
        assert keys_a.any()

    def test_prefix_sharing_requires_paged(self, micro_weights):
        from repro.serving import BatchedEngine
        with pytest.raises(ValueError, match="requires paged"):
            BatchedEngine(micro_weights, max_batch_size=2,
                          prefix_sharing=True)


class TestSharedPrefixFootprint:
    def test_pages_for_shared_prefix(self):
        from repro.eval.memusage import pages_for_shared_prefix
        # 3 requests of 40 positions sharing a 20-position prefix at
        # page 16: one shared full page + 3 x (3 - 1) private pages.
        assert pages_for_shared_prefix([40, 40, 40], 20, page_size=16) == 7
        # Aligned prefix: 2 shared + 3 x 1 private.
        assert pages_for_shared_prefix([40, 40, 40], 32, page_size=16) == 5
        # No sharing degenerates to pages_for_lengths.
        assert pages_for_shared_prefix([40, 40, 40], 0, page_size=16) == \
            pages_for_lengths([40, 40, 40], page_size=16)
        # No sequences -> no resident pages, shared prefix or not.
        assert pages_for_shared_prefix([], 20, page_size=16) == 0
        with pytest.raises(ValueError, match="below the shared"):
            pages_for_shared_prefix([10], 20, page_size=16)

    def test_comparison_matches_live_fork(self, micro_config):
        """The accounting must equal what forked slots actually claim."""
        from repro.eval.memusage import compare_shared_prefix_footprint
        cache = PagedKVCache(micro_config, n_slots=3, max_seq_len=64,
                             page_size=4, n_pages=32)
        d = micro_config.d_model
        donor = cache.allocate()
        for pos in range(22):
            for layer in range(micro_config.n_layers):
                donor.append(layer, np.zeros(d), np.zeros(d), pos)
            donor.advance()
        forks = [cache.fork(donor, 10) for _ in range(2)]
        for slot in forks:
            for pos in range(10, 22):
                for layer in range(micro_config.n_layers):
                    slot.append(layer, np.zeros(d), np.zeros(d), pos)
                slot.advance()
        cmp = compare_shared_prefix_footprint(
            micro_config, [22, 22, 22], shared_prefix=10, page_size=4
        )
        assert cache.n_pages_in_use == cmp.pages_shared
        assert cmp.pages_unshared == 3 * 6
        assert cmp.reduction_factor > 1.0
        from repro.eval.memusage import format_shared_prefix_footprint
        text = format_shared_prefix_footprint(cmp)
        assert "prefix" in text and "x less" in text


class TestPagedScheduler:
    def test_admission_gated_on_pages_still_drains_fifo(self, micro_weights):
        # 6 slots but only 4 pages of 4 positions: page demand, not slot
        # count, is the binding constraint.
        engine = build_batched_engine(micro_weights, max_batch_size=6,
                                      paged=True, page_size=4, n_pages=4)
        scheduler = ContinuousBatchingScheduler(engine)
        for request in make_requests(6):
            scheduler.submit(request)
        report = scheduler.run()
        assert len(report.completions) == len(PROMPTS)
        by_id = {c.request_id: c for c in report.completions}
        assert all(by_id[i].n_generated == 6 for i in range(len(PROMPTS)))
        admitted = [by_id[i].admitted_step for i in range(len(PROMPTS))]
        assert admitted == sorted(admitted)          # FIFO preserved
        assert report.peak_pages_in_use <= report.n_pages
        assert engine.cache.n_pages_in_use == 0      # everything returned
        assert engine.n_free_slots == 6

    def test_oversized_for_page_budget_rejected_not_deadlocked(
        self, micro_weights
    ):
        # Pool holds 8 positions total; a 12-position request can never fit.
        engine = build_batched_engine(micro_weights, max_batch_size=2,
                                      max_seq_len=32, paged=True,
                                      page_size=4, n_pages=2)
        scheduler = ContinuousBatchingScheduler(engine)
        with pytest.raises(ValueError, match="KV positions"):
            scheduler.submit(Request(request_id=0, prompt_ids=(1, 2, 3),
                                     max_new_tokens=10))
        scheduler.submit(Request(request_id=1, prompt_ids=(1, 2, 3),
                                 max_new_tokens=6))   # exactly 8 positions
        report = scheduler.run()
        assert report.completions[0].ok
        assert report.completions[0].n_generated == 6

    def test_peak_pages_counts_admission_completed_sequences(
        self, micro_weights
    ):
        """Prefill-claimed pages must hit the high-water mark even when
        the sequence finishes at admission (first token in stop_ids)."""
        ref = build_engine(micro_weights)
        first = ref.generate([1, 2, 3, 4, 5], 1).generated_ids[0]
        engine = build_batched_engine(micro_weights, max_batch_size=1,
                                      paged=True, page_size=2)
        scheduler = ContinuousBatchingScheduler(engine)
        scheduler.submit(Request(request_id=0, prompt_ids=(1, 2, 3, 4, 5),
                                 max_new_tokens=8,
                                 stop_ids=frozenset({first})))
        report = scheduler.run()
        assert report.completions[0].generated_ids == []
        assert report.decode_steps == 0
        assert report.peak_pages_in_use >= 3     # 5 prompt positions, 2/page
        assert engine.cache.n_pages_in_use == 0  # and returned afterwards

    def test_page_telemetry_populated_only_when_paged(self, micro_weights):
        for paged in (False, True):
            engine = build_batched_engine(micro_weights, max_batch_size=2,
                                          paged=paged, page_size=4)
            scheduler = ContinuousBatchingScheduler(engine)
            for request in make_requests(4, PROMPTS[:3]):
                scheduler.submit(request)
            report = scheduler.run()
            if paged:
                assert report.n_pages > 0
                assert report.peak_pages_in_use > 0
                assert 0.0 < report.mean_page_utilisation <= 1.0
                assert report.mean_page_occupancy <= report.peak_pages_in_use
            else:
                assert report.n_pages == 0
                assert report.page_occupancy_sum == 0
                assert report.mean_page_utilisation == 0.0
        assert report.peak_occupancy == 2


class TestKVFootprintAccounting:
    def test_pages_for_lengths(self):
        assert pages_for_lengths([1, 16, 17], page_size=16) == 1 + 1 + 2
        with pytest.raises(ValueError):
            pages_for_lengths([1], page_size=0)

    def test_numpy_array_lengths_accepted(self, micro_config):
        """Regression: ``if not lengths:`` choked on numpy arrays."""
        got = compare_kv_footprint(micro_config, np.array([10, 60, 4]),
                                   max_seq_len=64, page_size=16)
        ref = compare_kv_footprint(micro_config, [10, 60, 4],
                                   max_seq_len=64, page_size=16)
        assert got == ref
        with pytest.raises(ValueError, match="non-empty"):
            compare_kv_footprint(micro_config, np.array([], dtype=np.int64))

    def test_comparison_math(self, micro_config):
        lengths = [10, 60, 4]
        cmp = compare_kv_footprint(micro_config, lengths, max_seq_len=64,
                                   page_size=16)
        per_pos = 2 * micro_config.n_layers * micro_config.d_model * 4
        assert cmp.fixed_bytes == 3 * 64 * per_pos
        assert cmp.n_pages == 1 + 4 + 1
        assert cmp.paged_bytes == 6 * 16 * per_pos
        assert cmp.reduction_factor == pytest.approx(cmp.fixed_bytes /
                                                     cmp.paged_bytes)
        assert fixed_slot_kv_bytes(micro_config, 3, 64) == cmp.fixed_bytes
        assert paged_kv_bytes(micro_config, 6, 16) == cmp.paged_bytes
        text = format_kv_footprint(cmp)
        assert "pages of 16" in text and "x less" in text

    def test_footprint_matches_live_arenas(self, micro_config):
        fixed = BatchedKVCache(micro_config, n_slots=3, max_seq_len=64)
        paged = PagedKVCache(micro_config, n_slots=3, max_seq_len=64,
                             page_size=16, n_pages=6)
        assert fixed.kv_bytes == fixed_slot_kv_bytes(micro_config, 3, 64)
        assert paged.kv_bytes == paged_kv_bytes(micro_config, 6, 16)

    def test_rejects_lengths_over_capacity(self, micro_config):
        with pytest.raises(ValueError, match="exceeds max_seq_len"):
            compare_kv_footprint(micro_config, [65], max_seq_len=64)

"""Unit + property tests for sign-bit packing and popcount."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.signpack import (
    WORD_BITS,
    PackedSigns,
    exact_negative_products,
    pack_signs,
    popcount,
    unpack_signs,
    words_per_row,
    xor_popcount,
)


class TestWordsPerRow:
    def test_exact_multiple(self):
        assert words_per_row(64) == 2

    def test_rounds_up(self):
        assert words_per_row(65) == 3
        assert words_per_row(1) == 1

    def test_zero(self):
        assert words_per_row(0) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            words_per_row(-1)

    def test_paper_dimension(self):
        # ProSparse-Llama2-13B: d = 5120 -> 160 words per row (Section V-A.2).
        assert words_per_row(5120) == 160


class TestPackSigns:
    def test_all_positive_packs_to_zero(self):
        words = pack_signs(np.ones(96, dtype=np.float32))
        assert words.shape == (3,)
        assert np.all(words == 0)

    def test_all_negative_packs_to_ones(self):
        words = pack_signs(-np.ones(64, dtype=np.float32))
        assert np.all(words == np.uint32(0xFFFFFFFF))

    def test_negative_zero_counts_as_negative(self):
        # IEEE-754 MSB semantics: -0.0 has the sign bit set.
        words = pack_signs(np.array([-0.0, 0.0], dtype=np.float32))
        assert words[0] == 1

    def test_padding_bits_are_positive(self):
        words = pack_signs(-np.ones(33, dtype=np.float32))
        assert words.shape == (2,)
        assert words[0] == np.uint32(0xFFFFFFFF)
        assert words[1] == 1  # only bit 0 set; 31 padding bits stay 0

    def test_matrix_packs_rowwise(self):
        m = np.array([[1.0, -1.0, 1.0], [-1.0, -1.0, -1.0]], dtype=np.float32)
        words = pack_signs(m)
        assert words.shape == (2, 1)
        assert words[0, 0] == 0b010
        assert words[1, 0] == 0b111

    def test_scalar_rejected(self):
        with pytest.raises(ValueError):
            pack_signs(np.float32(1.0))

    def test_fp16_and_fp32_pack_identically(self, rng):
        x = rng.standard_normal(100).astype(np.float32)
        assert np.array_equal(pack_signs(x), pack_signs(x.astype(np.float16)))


class TestUnpackSigns:
    def test_roundtrip(self, rng):
        x = rng.standard_normal((5, 77)).astype(np.float32)
        assert np.array_equal(
            unpack_signs(pack_signs(x), 77), np.signbit(x)
        )

    def test_word_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            unpack_signs(np.zeros(2, dtype=np.uint32), 100)


class TestPopcount:
    def test_known_values(self):
        words = np.array([0, 1, 3, 0xFFFFFFFF, 0x80000000], dtype=np.uint32)
        assert popcount(words).tolist() == [0, 1, 2, 32, 1]

    def test_matches_python_bin(self, rng):
        words = rng.integers(0, 2**32, size=200, dtype=np.uint64).astype(np.uint32)
        expected = [bin(int(w)).count("1") for w in words]
        assert popcount(words).tolist() == expected


class TestXorPopcount:
    def test_matches_exact_float_reference(self, rng):
        rows = rng.standard_normal((40, 130)).astype(np.float32)
        x = rng.standard_normal(130).astype(np.float32)
        packed = xor_popcount(pack_signs(rows), pack_signs(x))
        assert np.array_equal(packed, exact_negative_products(rows, x))

    def test_identical_signs_give_zero(self, rng):
        rows = rng.standard_normal((4, 64)).astype(np.float32)
        assert np.all(xor_popcount(pack_signs(rows), pack_signs(rows[0])) [0]== 0)

    def test_word_mismatch_rejected(self):
        with pytest.raises(ValueError):
            xor_popcount(
                np.zeros((2, 3), dtype=np.uint32), np.zeros(2, dtype=np.uint32)
            )


class TestPackedSigns:
    def test_from_matrix_shape(self, rng):
        m = rng.standard_normal((10, 70)).astype(np.float32)
        p = PackedSigns.from_matrix(m)
        assert p.n_rows == 10
        assert p.n_elements == 70
        assert p.n_words == 3
        assert p.padded_bits == 96

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            PackedSigns.from_matrix(np.zeros(10, dtype=np.float32))

    def test_nbytes_paper_formula(self):
        # 13824 rows x 160 words x 4 bytes = 8.4375 MiB per layer.
        m = np.zeros((13824, 5120), dtype=np.float32)
        p = PackedSigns.from_matrix(m)
        assert p.nbytes == 13824 * 160 * 4

    def test_negative_counts_consistency(self, rng):
        m = rng.standard_normal((8, 96)).astype(np.float32)
        x = rng.standard_normal(96).astype(np.float32)
        p = PackedSigns.from_matrix(m)
        assert np.array_equal(
            p.negative_counts(x), exact_negative_products(m, x)
        )


@settings(max_examples=60, deadline=None)
@given(
    n_rows=st.integers(1, 12),
    d=st.integers(1, 130),
    seed=st.integers(0, 10_000),
)
def test_property_xor_popcount_equals_exact(n_rows, d, seed):
    """For any shape, the packed path equals the float reference."""
    rng = np.random.default_rng(seed)
    rows = rng.standard_normal((n_rows, d)).astype(np.float32)
    x = rng.standard_normal(d).astype(np.float32)
    assert np.array_equal(
        xor_popcount(pack_signs(rows), pack_signs(x)),
        exact_negative_products(rows, x),
    )


@settings(max_examples=60, deadline=None)
@given(d=st.integers(1, 200), seed=st.integers(0, 10_000))
def test_property_pack_unpack_roundtrip(d, seed):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(d).astype(np.float32)
    assert np.array_equal(unpack_signs(pack_signs(x), d), np.signbit(x))


@settings(max_examples=40, deadline=None)
@given(d=st.integers(1, 96), seed=st.integers(0, 10_000))
def test_property_padding_never_adds_negative_counts(d, seed):
    """Padding bits pack as positive: Nneg <= d always."""
    rng = np.random.default_rng(seed)
    rows = -np.abs(rng.standard_normal((3, d))).astype(np.float32)
    x = np.abs(rng.standard_normal(d)).astype(np.float32) + 1e-3
    counts = xor_popcount(pack_signs(rows), pack_signs(x))
    assert np.all(counts <= d)
    assert counts.max() <= words_per_row(d) * WORD_BITS

"""Fig. 4: end-to-end token-generation latency on the Orin roofline model.

Paper headline (alpha=1.00, best SparseInfer variant):
  13B: 1.79x over llama.cpp, 1.27x over PowerInfer
  7B:  1.74x over llama.cpp, 1.30x over PowerInfer
and the speedup decreases slightly as alpha grows.
"""

import pytest

from repro.eval.latency import figure4, format_figure4

from .conftest import write_result

TARGETS = {
    "13B": dict(si=1.79, pi=1.27),
    "7B": dict(si=1.74, pi=1.30),
}


@pytest.mark.benchmark(group="fig4")
@pytest.mark.parametrize("which", ["13B", "7B"])
def test_fig4_latency(benchmark, which, cfg13, cfg7, orin, results_dir):
    cfg = cfg13 if which == "13B" else cfg7
    result = benchmark.pedantic(
        figure4,
        args=(cfg, orin),
        kwargs=dict(n_tokens=4, n_rows=256, seed=0),
        rounds=1, iterations=1,
    )

    best = result.speedup_over_llamacpp(1.0, "+KF+AS")
    over_pi = result.speedup_over_powerinfer(1.0, "+KF+AS")
    target = TARGETS[which]
    assert best == pytest.approx(target["si"], abs=0.2)
    assert over_pi == pytest.approx(target["pi"], abs=0.2)

    # Alpha trend: larger alpha -> fewer skips -> slightly slower.
    s_100 = result.sparseinfer[1.00]["+KF+AS"].seconds_per_token
    s_103 = result.sparseinfer[1.03]["+KF+AS"].seconds_per_token
    assert s_103 >= s_100 - 1e-9

    # Every SparseInfer variant beats PowerInfer, which beats llama.cpp.
    for variants in result.sparseinfer.values():
        for rep in variants.values():
            assert rep.seconds_per_token < result.powerinfer.seconds_per_token
    assert (
        result.powerinfer.seconds_per_token
        < result.llamacpp.seconds_per_token
    )

    text = (
        format_figure4(result)
        + f"\n-> alpha=1.00 +KF+AS: {best:.2f}x over llama.cpp "
        f"(paper {target['si']}x), {over_pi:.2f}x over PowerInfer "
        f"(paper {target['pi']}x)"
    )
    write_result(results_dir, f"fig4_latency_{which}.txt", text)
    print("\n" + text)

"""Speculative self-drafting: the draft_alpha x k acceptance sweep.

Speculation pays when the aggressive-alpha draft path is enough cheaper
than the serving path that ``k`` draft steps plus one chunked verify
GEMM beat ``k + 1`` plain decode steps, weighted by how many drafts
survive verification.  Both levers are swept here:

* ``draft_alpha`` < 1 makes the draft predictor skip *more* MLP rows
  than the serving executor (cheaper, lossier drafts -- lower
  acceptance);
* ``k`` controls how many tokens each accepted run amortises the
  verify pass over.

The model is MLP-dominated (``d_ff >> d_model``) and the workload is
batch-1 greedy decode -- the configuration where the single-sequence
sparse executor actually skips weight rows, so draft cheapness is real
wall-clock, not bookkeeping.  The MLP down-projections are scaled by
``DOWN_SCALE`` so the residual stream and attention dominate the
logits: that is the *redundant-MLP* regime speculation targets (a
draft that mispredicts a few low-salience rows still lands the same
argmax), whereas fully random weights give near-uniform next-token
distributions where no cheap draft can agree with the target.  Cost is
unaffected -- the GEMM shapes and the predictor's sign-bit skip
decisions never see the scale.  Every sweep point is asserted
**token-identical** to ``speculation=None`` before anything is timed
(speculation changes how many model passes produce the tokens, never
the tokens); the headline is the best point's decode wall-clock
speedup, required to reach ``MIN_SPEEDUP``.

Results land as JSON in ``benchmarks/results/speculative.json``.

Run:  python benchmarks/bench_speculative.py
or:   pytest benchmarks/bench_speculative.py -q -m slow -p no:cacheprovider
"""

import json
import os
from pathlib import Path

for _var in ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS", "MKL_NUM_THREADS",
             "NUMEXPR_NUM_THREADS"):
    os.environ.setdefault(_var, "1")

import numpy as np
import pytest

from repro.core.engine import build_batched_engine
from repro.model.config import ModelConfig
from repro.model.weights import random_weights
from repro.serving import ContinuousBatchingScheduler, Request, SpecConfig

RESULTS_DIR = Path(__file__).resolve().parent / "results"

MAX_SEQ_LEN = 96
PROMPT_TOKENS = 8
MAX_NEW = 80
N_REQUESTS = 3

ALPHAS = (0.3, 0.5, 1.0)
KS = (4, 8, 12)
DOWN_SCALE = 0.0003
MIN_SPEEDUP = 1.3
BEST_OF = 3


def bench_config() -> ModelConfig:
    # MLP-dominated on purpose: d_ff >> d_model keeps the gate/up/down
    # GEMMs the cost centre, so the draft path's extra row-skipping is
    # visible over attention and Python overhead.
    return ModelConfig(
        name="speculative-bench",
        vocab_size=64,
        d_model=128,
        n_layers=2,
        n_heads=4,
        d_ff=4096,
        max_seq_len=MAX_SEQ_LEN,
        dtype_bytes=4,
    )


def bench_weights():
    """Random weights with the down-projections scaled into redundancy."""
    weights = random_weights(bench_config(), seed=19)
    for lw in weights.layers:
        lw.w_down_rows *= DOWN_SCALE
    return weights


def build_requests() -> list:
    rng = np.random.default_rng(29)
    return [
        Request(
            request_id=i,
            prompt_ids=tuple(int(t) for t in
                             rng.integers(1, 64, size=PROMPT_TOKENS)),
            max_new_tokens=MAX_NEW,
        )
        for i in range(N_REQUESTS)
    ]


def drain(weights, requests, speculation=None):
    """Drain the workload at batch 1; return (tokens, report, seconds).

    ``seconds`` is the **decode-phase** wall-clock from the report's own
    instrumented counters (``wall_seconds - prefill_seconds``): prefill
    is identical work in both runs, so including it would only dilute
    the decode speedup the sweep is measuring.
    """
    engine = build_batched_engine(
        weights, max_batch_size=1, max_seq_len=MAX_SEQ_LEN,
        speculation=speculation,
    )
    scheduler = ContinuousBatchingScheduler(engine)
    for request in requests:
        scheduler.submit(request)
    report = scheduler.run()
    seconds = report.wall_seconds - report.prefill_seconds
    tokens = {c.request_id: list(c.generated_ids) for c in report.completions}
    assert all(c.ok for c in report.completions)
    return tokens, report, seconds


def timed_drain(weights, requests, speculation=None):
    """Best-of-``BEST_OF`` wall-clock over identical drains."""
    best = None
    for _ in range(BEST_OF):
        tokens, report, seconds = drain(weights, requests, speculation)
        if best is None or seconds < best[2]:
            best = (tokens, report, seconds)
    return best


def run_sweep():
    weights = bench_weights()
    requests = build_requests()
    base_tokens, base_report, base_seconds = timed_drain(weights, requests)
    points = []
    for alpha in ALPHAS:
        for k in KS:
            spec = SpecConfig(k=k, draft_alpha=alpha)
            tokens, report, seconds = timed_drain(weights, requests, spec)
            assert tokens == base_tokens, (
                f"speculation (alpha={alpha}, k={k}) changed decoded tokens"
            )
            points.append({
                "draft_alpha": alpha,
                "k": k,
                "seconds": seconds,
                "speedup": base_seconds / seconds,
                "acceptance_rate": round(report.acceptance_rate, 4),
                "drafted_tokens": report.drafted_tokens,
                "accepted_tokens": report.accepted_tokens,
                "decode_steps": report.decode_steps,
                "tokens_per_step": round(
                    report.tokens_generated / report.decode_steps, 3),
                "draft_seconds": round(report.draft_seconds, 4),
                "verify_seconds": round(report.verify_seconds, 4),
            })
    baseline = {
        "seconds": base_seconds,
        "decode_steps": base_report.decode_steps,
        "tokens_generated": base_report.tokens_generated,
    }
    return baseline, points


def best_point(points) -> dict:
    return max(points, key=lambda p: p["speedup"])


def check_speedup(points) -> None:
    best = best_point(points)
    assert best["speedup"] >= MIN_SPEEDUP, (
        f"best sweep point (alpha={best['draft_alpha']}, k={best['k']}) "
        f"reached only {best['speedup']:.2f}x, need {MIN_SPEEDUP}x"
    )
    # The sweep must show the acceptance lever working: the least
    # aggressive draft alpha accepts at least as much as the most
    # aggressive one at the same depth.
    by_k = {}
    for p in points:
        by_k.setdefault(p["k"], []).append(p)
    for k, group in by_k.items():
        group.sort(key=lambda p: p["draft_alpha"])
        assert group[-1]["acceptance_rate"] >= group[0]["acceptance_rate"], k


def format_report(baseline, points) -> str:
    lines = [
        f"speculative self-drafting sweep: {N_REQUESTS} requests x "
        f"{MAX_NEW} tokens, batch 1, greedy "
        f"(baseline {baseline['seconds'] * 1e3:.1f} ms, "
        f"{baseline['decode_steps']} ticks)",
        "",
        f"{'alpha':>7}{'k':>4}{'speedup':>10}{'accept':>9}"
        f"{'tok/step':>10}{'draft ms':>10}{'verify ms':>11}",
    ]
    for p in points:
        lines.append(
            f"{p['draft_alpha']:>7.2f}{p['k']:>4}{p['speedup']:>9.2f}x"
            f"{p['acceptance_rate']:>9.1%}{p['tokens_per_step']:>10.2f}"
            f"{p['draft_seconds'] * 1e3:>10.1f}"
            f"{p['verify_seconds'] * 1e3:>11.1f}"
        )
    best = best_point(points)
    lines.append(
        f"\nbest: alpha={best['draft_alpha']}, k={best['k']} -> "
        f"{best['speedup']:.2f}x at {best['acceptance_rate']:.1%} acceptance"
    )
    return "\n".join(lines)


def write_json(baseline, points) -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "speculative.json"
    best = best_point(points)
    payload = {
        "benchmark": "speculative",
        "config": {
            "d_model": bench_config().d_model,
            "d_ff": bench_config().d_ff,
            "n_layers": bench_config().n_layers,
            "n_requests": N_REQUESTS,
            "max_new_tokens": MAX_NEW,
            "alphas": list(ALPHAS),
            "ks": list(KS),
            "down_scale": DOWN_SCALE,
        },
        "baseline": baseline,
        "sweep": points,
        "best": best,
        "speedup": round(best["speedup"], 3),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def main() -> int:
    baseline, points = run_sweep()
    print(format_report(baseline, points))
    check_speedup(points)
    best = best_point(points)
    print(f"\nall speculative checks passed (tokens identical at every "
          f"sweep point; best {best['speedup']:.2f}x >= {MIN_SPEEDUP}x)")
    path = write_json(baseline, points)
    print(f"results -> {path.relative_to(Path.cwd())}"
          if path.is_relative_to(Path.cwd()) else f"results -> {path}")
    return 0


@pytest.mark.slow
def test_speculative_smoke():
    """Pytest entry point mirroring the script run (tier-2 smoke)."""
    baseline, points = run_sweep()
    check_speedup(points)


if __name__ == "__main__":
    raise SystemExit(main())

"""Ablation (Section II related work): CATS/TEAL-style magnitude
thresholding vs SparseInfer.

CATS keeps SiLU, computes the gate densely and sparsifies only the
up/down projections; the paper notes it reaches lower sparsity/speedup
at comparable quality (CATS reports ~15% speedup vs SparseInfer's ~79%).
We compare exploited row-skips and the resulting modelled speedup.
"""

import numpy as np
import pytest

from repro.gpu.pipeline import (
    EngineSpec,
    SparsityProfile,
    decode_latency,
    dense_engine,
)
from repro.model.config import prosparse_llama2_13b

from .conftest import write_result


@pytest.mark.benchmark(group="ablation")
def test_threshold_baseline_speedup(benchmark, orin, results_dir):
    """Model CATS on the GPU roofline: dense gate GEMV, ~70% skips on
    up/down only (its reported sparsity level on SiLU models)."""
    cfg = prosparse_llama2_13b()

    def run():
        base = decode_latency(cfg, dense_engine(), orin, seq_len=700)
        # CATS: gate dense (predicted_skip=0), up/down exploit 70%.
        cats_profile = SparsityProfile.uniform(cfg.n_layers, 0.0, 0.70)
        cats = decode_latency(
            cfg,
            EngineSpec(kind="sparseinfer", kernel_fusion=False,
                       actual_sparsity=True),
            orin, cats_profile, seq_len=700,
        )
        si_profile = SparsityProfile.uniform(cfg.n_layers, 0.90, 0.92)
        si = decode_latency(
            cfg,
            EngineSpec(kind="sparseinfer", kernel_fusion=True,
                       actual_sparsity=True),
            orin, si_profile, seq_len=700,
        )
        return base, cats, si

    base, cats, si = benchmark.pedantic(run, rounds=1, iterations=1)
    cats_speedup = cats.speedup_over(base)
    si_speedup = si.speedup_over(base)

    # Paper: CATS ~1.15x, SparseInfer ~1.79x.
    assert 1.05 < cats_speedup < 1.45
    assert si_speedup > cats_speedup + 0.25

    text = (
        f"llama.cpp baseline : {base.seconds_per_token*1e3:8.1f} ms/token\n"
        f"CATS-style         : {cats.seconds_per_token*1e3:8.1f} ms/token "
        f"({cats_speedup:.2f}x; paper ~1.15x)\n"
        f"SparseInfer        : {si.seconds_per_token*1e3:8.1f} ms/token "
        f"({si_speedup:.2f}x; paper ~1.79x)"
    )
    write_result(results_dir, "ablation_threshold.txt", text)
    print("\n" + text)


@pytest.mark.benchmark(group="ablation")
def test_threshold_executor_sparsity(benchmark, results_dir):
    """Functional check on a small SiLU model: the threshold executor
    reaches its calibrated sparsity but saves nothing on the gate."""
    from dataclasses import replace

    from repro.baselines.threshold import ThresholdMLP, calibrate_thresholds
    from repro.model.config import tiny_7b_role
    from repro.model.inference import InferenceModel
    from repro.model.weights import random_weights

    cfg = replace(tiny_7b_role(vocab_size=24), activation="silu")
    weights = random_weights(cfg, seed=3)
    engine = InferenceModel(weights, trace_mlp_inputs=True)
    engine.generate([1, 2, 3, 4], 6)
    thresholds = calibrate_thresholds(
        engine.traces, cfg.n_layers, target_sparsity=0.7, activation="silu"
    )

    mlp = ThresholdMLP(weights, thresholds)

    def run_all():
        for t in engine.traces:
            mlp.run(t.layer, t.x)
        return mlp.stats

    stats = benchmark.pedantic(run_all, rounds=1, iterations=1)
    assert stats.rows_skipped_gate == 0
    assert stats.up_skip_fraction == pytest.approx(0.7, abs=0.1)
    write_result(
        results_dir, "ablation_threshold_functional.txt",
        f"CATS-style executor: gate skips 0%, up/down skips "
        f"{stats.up_skip_fraction:.1%} (target 70%)",
    )

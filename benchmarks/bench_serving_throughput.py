"""Serving throughput: batched sparse decode vs the sequential engine.

Sweeps the decode batch size over a synthetic-weight model and reports
measured tokens/sec alongside the realised cross-sequence skip
intersection, compared against the analytical ``skip^B`` decay curve of
:func:`repro.gpu.batching.batch_skip_fraction` (correlation = 0, i.e.
independent sequences -- the worst case for batched sparsity).

Run:  python benchmarks/bench_serving_throughput.py
or:   pytest benchmarks/bench_serving_throughput.py -q -p no:cacheprovider

Expected shape of the result: batch=1 serving matches the sequential
engine (same tokens, slight scheduler overhead), larger batches trade
per-sequence sparsity (the intersection decays toward zero) for
weight-read amortisation, with batch 8 about 2.5x sequential throughput
(batch 4 about 1.75x) against the all-float32 sequential baseline.
"""

import json
import os
from pathlib import Path

for _var in ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS", "MKL_NUM_THREADS",
             "NUMEXPR_NUM_THREADS"):
    os.environ.setdefault(_var, "1")

import numpy as np

from repro.core.engine import SparseInferSettings, build_predictor
from repro.eval.latency import (
    measure_batched_serving,
    measure_sequential_serving,
)
from repro.eval.reporting import format_serving_sweep
from repro.gpu.batching import batch_skip_fraction
from repro.model.config import ModelConfig
from repro.model.weights import random_weights
from repro.serving import Request

RESULTS_DIR = Path(__file__).resolve().parent / "results"
BATCH_SIZES = (1, 2, 4, 8)
N_REQUESTS = 8
MAX_NEW_TOKENS = 64


def bench_config() -> ModelConfig:
    """Large enough that decode GEMMs dominate, small enough to be quick."""
    return ModelConfig(
        name="serve-bench",
        vocab_size=2048,
        d_model=256,
        n_layers=4,
        n_heads=4,
        d_ff=1024,
        max_seq_len=128,
        dtype_bytes=4,
    )


def build_requests(vocab_size: int, seed: int = 0) -> list:
    rng = np.random.default_rng(seed)
    requests = []
    for i in range(N_REQUESTS):
        prompt_len = 3 + (i % 3)
        prompt = tuple(int(t) for t in
                       rng.integers(1, vocab_size - 1, size=prompt_len))
        requests.append(
            Request(request_id=i, prompt_ids=prompt,
                    max_new_tokens=MAX_NEW_TOKENS)
        )
    return requests


def run_sweep(repeats: int = 2):
    """Measure the full sweep; returns (baseline, points, analytic skips).

    Each configuration is measured ``repeats`` times and the fastest run
    kept (min-latency benchmarking -- transient machine load only ever
    slows a run down).
    """
    config = bench_config()
    weights = random_weights(config, seed=5)
    requests = build_requests(config.vocab_size)
    # Sign-bit packing is the one expensive offline step; share it across
    # every measurement instead of re-packing per engine build.
    predictor = build_predictor(weights, SparseInferSettings())
    best = lambda measurements: max(  # noqa: E731
        measurements, key=lambda m: m.tokens_per_second
    )
    baseline = best([
        measure_sequential_serving(weights, requests, predictor=predictor)
        for _ in range(repeats)
    ])
    points = [
        best([
            measure_batched_serving(weights, requests, batch_size,
                                    predictor=predictor)
            for _ in range(repeats)
        ])
        for batch_size in BATCH_SIZES
    ]
    analytic = [
        batch_skip_fraction(
            baseline.sequence_skip,
            max(1, round(point.mean_batch_occupancy)),
        )
        for point in points
    ]
    return baseline, points, analytic


def check_sweep(baseline, points, analytic) -> None:
    """The acceptance properties of the sweep."""
    by_batch = {p.max_batch_size: p for p in points}
    # Batch 1 serving realises the full per-sequence skip...
    np.testing.assert_allclose(
        by_batch[1].intersection_skip, baseline.sequence_skip, atol=0.02
    )
    # ...and the intersection decays monotonically with batch size,
    # tracking the analytical skip^B curve.
    skips = [p.intersection_skip for p in points]
    assert skips == sorted(skips, reverse=True), skips
    for point, expected in zip(points, analytic):
        if point.mean_batch_occupancy >= 1.5:
            assert point.intersection_skip < baseline.sequence_skip
        assert abs(point.intersection_skip - expected) < 0.15
    # Throughput: batching beats sequential decode.  The sequential
    # baseline used to run its post-attention residual (and so every
    # MLP GEMM) in float64 -- promoted by a float64 attention scale --
    # which inflated batched speedups; against the fixed float32
    # baseline batch 4 lands ~1.75x and batch 8 ~2.5x, gated with
    # headroom for machine-load wobble (observed swings past 20%).
    assert by_batch[4].speedup_over(baseline) >= 1.2, (
        f"batch-4 speedup {by_batch[4].speedup_over(baseline):.2f}x < 1.2x"
    )
    assert by_batch[8].speedup_over(baseline) >= 1.7, (
        f"batch-8 speedup {by_batch[8].speedup_over(baseline):.2f}x < 1.7x"
    )


def _measurement_json(m) -> dict:
    """ServingMeasurement -> plain dict for the machine-readable dump."""
    return {
        "label": m.label,
        "max_batch_size": m.max_batch_size,
        "tokens_generated": m.tokens_generated,
        "prefill_seconds": m.prefill_seconds,
        "decode_seconds": m.decode_seconds,
        "tokens_per_second": m.tokens_per_second,
        "mean_batch_occupancy": m.mean_batch_occupancy,
        "intersection_skip": m.intersection_skip,
        "sequence_skip": m.sequence_skip,
    }


def write_json(baseline, points, analytic) -> Path:
    """Machine-readable sweep results (perf trajectory across commits)."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "serving_throughput.json"
    payload = {
        "benchmark": "serving_throughput",
        "n_requests": N_REQUESTS,
        "max_new_tokens": MAX_NEW_TOKENS,
        "baseline": _measurement_json(baseline),
        "points": [
            {**_measurement_json(p),
             "speedup_over_sequential": p.speedup_over(baseline),
             "analytic_skip": analytic[i]}
            for i, p in enumerate(points)
        ],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def main() -> int:
    baseline, points, analytic = run_sweep()
    lines = [
        f"serving throughput sweep over {bench_config().name} "
        f"({N_REQUESTS} requests x {MAX_NEW_TOKENS} tokens, greedy)",
        "",
        format_serving_sweep(baseline, points, analytic),
        "",
        f"per-sequence predicted skip: {baseline.sequence_skip:.1%} "
        "(the batch=1 ceiling the intersection decays from)",
    ]
    text = "\n".join(lines)
    print(text)
    check_sweep(baseline, points, analytic)
    print("\nall serving-throughput checks passed "
          "(batch-4 >= 1.2x, batch-8 >= 1.7x, intersection tracks skip^B)")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "serving_throughput.txt").write_text(text + "\n")
    path = write_json(baseline, points, analytic)
    print(f"JSON -> {path}")
    return 0


def test_serving_throughput_sweep():
    """Pytest entry point mirroring the script run."""
    baseline, points, analytic = run_sweep()
    check_sweep(baseline, points, analytic)
    write_json(baseline, points, analytic)


if __name__ == "__main__":
    raise SystemExit(main())

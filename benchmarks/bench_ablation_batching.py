"""Extension bench: sparsity advantage vs decode batch size.

Not a paper table -- it quantifies the regime the paper (and PowerInfer /
DejaVu) implicitly targets: single-sequence, on-device decoding.  With a
decode batch the exploitable skip set is the intersection across
sequences, so SparseInfer's advantage decays toward dense as batch grows
unless activations are correlated.
"""

import pytest

from repro.gpu.batching import batch_sweep
from repro.gpu.pipeline import SparsityProfile

from .conftest import write_result


@pytest.mark.benchmark(group="ablation")
def test_batching_decay(benchmark, cfg13, orin, results_dir):
    profile = SparsityProfile.uniform(cfg13.n_layers, 0.90, 0.92)
    sweep = benchmark.pedantic(
        batch_sweep,
        args=(cfg13, orin, profile),
        kwargs=dict(batch_sizes=(1, 2, 4, 8, 16), correlation=0.0),
        rounds=1, iterations=1,
    )
    lines = [f"{'batch':>6}{'dense tok/s':>13}{'sparse tok/s':>14}"
             f"{'speedup':>9}{'skip':>7}"]
    for row in sweep:
        lines.append(
            f"{row['batch_size']:>6}"
            f"{row['dense'].tokens_per_second:>13.2f}"
            f"{row['sparse'].tokens_per_second:>14.2f}"
            f"{row['speedup']:>8.2f}x"
            f"{row['sparse'].exploited_skip:>7.1%}"
        )
    speedups = [row["speedup"] for row in sweep]
    assert speedups == sorted(speedups, reverse=True)
    assert speedups[0] > 1.5 and speedups[-1] < 1.2
    text = "\n".join(lines)
    write_result(results_dir, "ablation_batching.txt", text)
    print("\n" + text)

"""Fig. 3: per-layer precision/recall of the sparsity prediction for
ProSparse-Llama2-7B and -13B (synthetic activation model at true scale).

Paper: precision >99% overall with a visible dip in the early layers.
"""

import numpy as np
import pytest

from repro.eval.precision_recall import figure3_synthetic
from repro.model.synthetic import SyntheticActivationModel

from .conftest import write_result


def _render(points, title):
    lines = [title, f"{'layer':>6}{'precision':>11}{'recall':>9}{'sparsity':>10}"]
    for p in points:
        lines.append(
            f"{p.layer:>6}{p.precision:>11.4f}{p.recall:>9.4f}"
            f"{p.quality.actual_sparsity:>10.3f}"
        )
    return "\n".join(lines)


@pytest.mark.benchmark(group="fig3")
@pytest.mark.parametrize("which", ["13B", "7B"])
def test_fig3_precision_recall(benchmark, which, cfg13, cfg7, results_dir):
    cfg = cfg13 if which == "13B" else cfg7
    model = SyntheticActivationModel(cfg, seed=1)
    points = benchmark.pedantic(
        figure3_synthetic,
        args=(model,),
        kwargs=dict(alpha=1.0, n_tokens=4, n_rows=384),
        rounds=1, iterations=1,
    )
    precisions = np.array([p.precision for p in points])
    recalls = np.array([p.recall for p in points])

    # Paper shape: early-layer dip, high plateau afterwards.
    assert precisions[:2].min() < precisions[8:].mean()
    assert precisions[8:].mean() > 0.985
    assert recalls[8:].mean() > 0.99
    # Overall sparsity near the ProSparse ~90% level.
    sparsities = [p.quality.actual_sparsity for p in points]
    assert 0.8 < float(np.mean(sparsities)) < 0.95

    text = _render(points, f"Fig. 3 -- ProSparse-Llama2-{which} (alpha=1.0)")
    write_result(results_dir, f"fig3_precision_recall_{which}.txt", text)
    print("\n" + text)

"""Vectorised batched sampling vs a per-row scalar sampler loop.

PR 8 replaced the scheduler's per-sequence greedy argmax -- the last
scalar per-element loop on the decode hot path, carried for one PR as an
accepted ``scalar-loop`` baseline entry -- with one
``BatchedSampler.sample`` call over the stacked ``(B, vocab)`` logits.
This benchmark measures what that buys and proves it changes nothing:

1. **Kernel wall-clock**: sampling ``N_STEPS`` batches of ``(B, vocab)``
   logits through one vectorised call vs ``B`` scalar ``Sampler.sample``
   calls per step, across batch sizes.  Tokens are asserted identical
   draw-for-draw first (the scalar path shares the batched kernel and
   the per-request streams), then each side is timed on its own pass.
   The win grows with batch size: the scalar loop pays Python dispatch
   and ``(1, vocab)`` kernel overhead per row, the batched call pays
   once per step.
2. **Serving reproducibility**: a mixed greedy/stochastic workload
   drained at batch 4 generates exactly the same per-request tokens as
   the same requests drained at batch 1 -- per-request streams keyed by
   ``(seed, request_id)`` make tokens independent of batch composition
   -- and the run's sampler wall-clock share stays small.

Results land as JSON in ``benchmarks/results/batched_sampling.json``.

Run:  python benchmarks/bench_batched_sampling.py
or:   pytest benchmarks/bench_batched_sampling.py -q -m slow -p no:cacheprovider
"""

import json
import os
import time
from pathlib import Path

for _var in ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS", "MKL_NUM_THREADS",
             "NUMEXPR_NUM_THREADS"):
    os.environ.setdefault(_var, "1")

import numpy as np
import pytest

from repro.core.engine import build_batched_engine
from repro.model.config import ModelConfig
from repro.model.sampler import BatchedSampler, Sampler, SamplerConfig
from repro.model.weights import random_weights
from repro.serving import ContinuousBatchingScheduler, Request

RESULTS_DIR = Path(__file__).resolve().parent / "results"

VOCAB = 2048
N_STEPS = 200
BATCH_SIZES = (1, 2, 4, 8, 16)
KERNEL_CFG = SamplerConfig(temperature=0.9, top_k=64, top_p=0.95, seed=7)

SERVE_VOCAB = 64
SERVE_BATCH = 4
SERVE_PROMPT = 10
SERVE_NEW = 24
SERVE_REQUESTS = 8
SERVE_CFG = SamplerConfig(temperature=0.8, top_k=16, top_p=0.9, seed=21)


def bench_config() -> ModelConfig:
    return ModelConfig(
        name="batched-sampling-bench",
        vocab_size=SERVE_VOCAB,
        d_model=64,
        n_layers=2,
        n_heads=2,
        d_ff=128,
        max_seq_len=SERVE_PROMPT + SERVE_NEW + 8,
        dtype_bytes=4,
    )


# -- kernel comparison ------------------------------------------------------

def kernel_logits(batch: int) -> list:
    rng = np.random.default_rng(97)
    return [
        rng.normal(size=(batch, VOCAB)).astype(np.float32)
        for _ in range(N_STEPS)
    ]


def run_batched(logits_steps, batch: int) -> tuple:
    """(tokens per step, wall seconds) for the one-call-per-step path."""
    sampler = BatchedSampler()
    configs = [KERNEL_CFG] * batch
    request_ids = list(range(batch))
    tokens = []
    t0 = time.perf_counter()
    for logits in logits_steps:
        tokens.append(sampler.sample(logits, configs, request_ids).tolist())
    return tokens, time.perf_counter() - t0


def run_scalar_loop(logits_steps, batch: int) -> tuple:
    """(tokens per step, wall seconds) for the per-row scalar loop --
    the shape of code the scalar-loop lint rule exists to keep out of
    the scheduler."""
    samplers = [Sampler.for_request(KERNEL_CFG, r) for r in range(batch)]
    tokens = []
    t0 = time.perf_counter()
    for logits in logits_steps:
        tokens.append(
            [samplers[row].sample(logits[row]) for row in range(batch)]
        )
    return tokens, time.perf_counter() - t0


def run_kernel_comparison() -> list:
    # Best-of-2 per side: wall-clock wobbles under machine load and the
    # absolute times are tiny (same convention as the serving benchmark).
    points = []
    for batch in BATCH_SIZES:
        steps = kernel_logits(batch)
        batched_tokens, batched_s = run_batched(steps, batch)
        scalar_tokens, scalar_s = run_scalar_loop(steps, batch)
        assert batched_tokens == scalar_tokens, (
            f"batched and scalar draws diverged at batch {batch}"
        )
        batched_s = min(batched_s, run_batched(steps, batch)[1])
        scalar_s = min(scalar_s, run_scalar_loop(steps, batch)[1])
        points.append({
            "batch": batch,
            "batched_seconds": round(batched_s, 4),
            "scalar_seconds": round(scalar_s, 4),
            "speedup": round(scalar_s / batched_s, 2),
            "tokens": batch * N_STEPS,
        })
    return points


def check_kernel_points(points) -> None:
    # Identity is asserted inside the run; here: the vectorised call
    # must beat the scalar loop once there is an actual batch.  The
    # margin is deliberately modest (wall-clock, tiny absolute times).
    for point in points:
        if point["batch"] >= 4:
            assert point["speedup"] >= 1.2, (
                f"batch {point['batch']}: batched sampling only "
                f"{point['speedup']}x over the scalar loop"
            )


# -- serving reproducibility ------------------------------------------------

def serve_workload() -> list:
    rng = np.random.default_rng(55)
    requests = []
    for i in range(SERVE_REQUESTS):
        prompt = tuple(int(t) for t in
                       rng.integers(1, SERVE_VOCAB, size=SERVE_PROMPT))
        requests.append(Request(
            request_id=i, prompt_ids=prompt, max_new_tokens=SERVE_NEW,
            sampling=SERVE_CFG if i % 2 else None,   # mixed greedy/sampled
        ))
    return requests


def drain(weights, requests, max_batch_size: int):
    engine = build_batched_engine(
        weights, max_batch_size=max_batch_size, paged=True,
    )
    scheduler = ContinuousBatchingScheduler(engine)
    for request in requests:
        scheduler.submit(request)
    report = scheduler.run()
    assert all(c.ok for c in report.completions)
    return report


def run_serving_comparison() -> tuple:
    weights = random_weights(bench_config(), seed=23)
    requests = serve_workload()
    solo = drain(weights, requests, max_batch_size=1)
    batched = drain(weights, requests, max_batch_size=SERVE_BATCH)
    return solo, batched


def check_serving(solo, batched) -> None:
    solo_out = {c.request_id: c.generated_ids for c in solo.completions}
    batch_out = {c.request_id: c.generated_ids for c in batched.completions}
    assert solo_out == batch_out, (
        "batch composition changed seeded sampling output"
    )
    half = SERVE_REQUESTS // 2
    expected_sampled = half * SERVE_NEW
    for report in (solo, batched):
        assert report.sampled_tokens == expected_sampled
        assert report.greedy_tokens + report.sampled_tokens \
            == report.tokens_generated
        assert report.sampler_seconds < 0.5 * report.wall_seconds, (
            "sampling dominated the serving wall-clock"
        )


def serving_dict(report, label) -> dict:
    return {
        "label": label,
        "tokens_generated": report.tokens_generated,
        "greedy_tokens": report.greedy_tokens,
        "sampled_tokens": report.sampled_tokens,
        "sampler_seconds": round(report.sampler_seconds, 4),
        "sampler_share": round(
            report.sampler_seconds / report.wall_seconds, 4
        ) if report.wall_seconds else 0.0,
        "decode_tokens_per_second": round(report.decode_tokens_per_second, 1),
    }


# -- reporting --------------------------------------------------------------

def format_report(points, solo, batched) -> str:
    lines = [
        f"batched sampling kernel: (B, {VOCAB}) logits x {N_STEPS} steps, "
        f"top_k={KERNEL_CFG.top_k} top_p={KERNEL_CFG.top_p} "
        f"(tokens identical by assertion)",
        "",
        f"{'batch':>6}{'scalar loop':>13}{'batched':>10}{'speedup':>9}",
    ]
    for p in points:
        lines.append(
            f"{p['batch']:>6}{p['scalar_seconds']:>12.3f}s"
            f"{p['batched_seconds']:>9.3f}s{p['speedup']:>8.2f}x"
        )
    lines += [
        "",
        f"serving: {SERVE_REQUESTS} requests (half greedy, half seeded "
        f"sampling), batch 1 vs {SERVE_BATCH} -- per-request tokens "
        f"identical",
        f"  batch 1: {solo.sampled_tokens} sampled / "
        f"{solo.greedy_tokens} greedy, sampler "
        f"{solo.sampler_seconds * 1e3:.1f}ms",
        f"  batch {SERVE_BATCH}: {batched.sampled_tokens} sampled / "
        f"{batched.greedy_tokens} greedy, sampler "
        f"{batched.sampler_seconds * 1e3:.1f}ms",
    ]
    return "\n".join(lines)


def write_json(points, solo, batched) -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "batched_sampling.json"
    payload = {
        "benchmark": "batched_sampling",
        "kernel": {
            "vocab": VOCAB,
            "n_steps": N_STEPS,
            "config": {
                "temperature": KERNEL_CFG.temperature,
                "top_k": KERNEL_CFG.top_k,
                "top_p": KERNEL_CFG.top_p,
                "seed": KERNEL_CFG.seed,
            },
            "points": points,
        },
        "serving": {
            "n_requests": SERVE_REQUESTS,
            "max_new_tokens": SERVE_NEW,
            "solo": serving_dict(solo, "batch=1"),
            "batched": serving_dict(batched, f"batch={SERVE_BATCH}"),
        },
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def main() -> int:
    points = run_kernel_comparison()
    solo, batched = run_serving_comparison()
    print(format_report(points, solo, batched))
    check_kernel_points(points)
    check_serving(solo, batched)
    best = max(p["speedup"] for p in points)
    print(f"\nall batched-sampling checks passed (draws identical; "
          f"best kernel speedup {best:.2f}x; serving tokens invariant "
          f"to batch composition)")
    path = write_json(points, solo, batched)
    print(f"results -> {path.relative_to(Path.cwd())}"
          if path.is_relative_to(Path.cwd()) else f"results -> {path}")
    return 0


@pytest.mark.slow
def test_batched_sampling_smoke():
    """Pytest entry point mirroring the script run (tier-2 smoke)."""
    points = run_kernel_comparison()
    check_kernel_points(points)
    solo, batched = run_serving_comparison()
    check_serving(solo, batched)


if __name__ == "__main__":
    raise SystemExit(main())

"""Ablation (Section IV-A claim): the predictor is robust to quantisation.

"As long as the sign bit, i.e., MSB, can be extracted, it can be applied
directly, regardless of the quantization scheme used."  We verify that
predictor state built from FP16 and INT8 storage produces (nearly)
identical skip decisions to the FP32 reference, on the full-width
synthetic model.
"""

import numpy as np
import pytest

from repro.core.predictor import predict_skip_from_counts
from repro.core.signpack import pack_signs, xor_popcount
from repro.model.synthetic import SyntheticActivationModel
from repro.quant.fp16 import to_fp16
from repro.quant.int8 import quantize_int8
from repro.quant.signbits import packed_signs_from

from .conftest import write_result


@pytest.mark.benchmark(group="ablation")
def test_quantization_robustness(benchmark, cfg13, results_dir):
    model = SyntheticActivationModel(cfg13, seed=5)
    sample = model.sample_layer(10, n_tokens=4, n_rows=512)
    w32 = sample.w_gate

    def build_all():
        return {
            "fp32": packed_signs_from(w32),
            "fp16": packed_signs_from(to_fp16(w32)),
            "int8": packed_signs_from(quantize_int8(w32)),
        }

    packed = benchmark.pedantic(build_all, rounds=1, iterations=1)

    lines = ["format   skip-agreement-vs-fp32"]
    ref_masks = None
    for fmt, p in packed.items():
        masks = []
        for x in sample.x:
            counts = xor_popcount(p.words, pack_signs(x))
            masks.append(
                predict_skip_from_counts(counts, p.padded_bits, 1.0)
            )
        masks = np.stack(masks)
        if ref_masks is None:
            ref_masks = masks
            agreement = 1.0
        else:
            agreement = float((masks == ref_masks).mean())
        lines.append(f"{fmt:<9}{agreement:.6f}")
        # FP16 is exact; INT8 may flip decisions only where values
        # quantise to zero (rare for Gaussian-ish weights).
        assert agreement > 0.995

    text = "\n".join(lines)
    write_result(results_dir, "ablation_quantization.txt", text)
    print("\n" + text)

"""DSE extension: alpha sweep with the energy model (EDP objective).

The paper frames alpha as a DSE knob "given the target platform, the
model, and the downstream task"; on Jetson-class targets energy-delay
product is the natural second axis.  Not a paper table -- an extension
bench exercising repro.gpu.energy and repro.core.dse together.
"""

import pytest

from repro.core.dse import pareto_front, sweep
from repro.eval.latency import measure_sparsity
from repro.gpu.energy import decode_energy
from repro.gpu.pipeline import EngineSpec, dense_engine
from repro.model.synthetic import SyntheticActivationModel

from .conftest import write_result


@pytest.mark.benchmark(group="dse")
def test_dse_pareto_sweep(benchmark, cfg7, orin, results_dir):
    points = benchmark.pedantic(
        sweep,
        args=(cfg7,),
        kwargs=dict(alphas=(0.98, 1.0, 1.02, 1.06, 1.12), device=orin,
                    n_tokens=3, n_rows=192),
        rounds=1, iterations=1,
    )
    front = pareto_front(points)
    assert front, "Pareto front must be non-empty"
    # All sweep points must beat the dense baseline.
    assert all(p.speedup_over_dense > 1.3 for p in points)
    lines = [f"{'alpha':>6}{'ms/tok':>9}{'precision':>11}{'pareto':>8}"]
    front_set = {p.alpha for p in front}
    for p in points:
        lines.append(
            f"{p.alpha:>6.2f}{p.seconds_per_token*1e3:>9.1f}"
            f"{p.mean_precision:>11.4f}{'*' if p.alpha in front_set else '':>8}"
        )
    text = "\n".join(lines)
    write_result(results_dir, "dse_pareto.txt", text)
    print("\n" + text)


@pytest.mark.benchmark(group="dse")
def test_energy_per_token(benchmark, cfg13, orin, results_dir):
    model = SyntheticActivationModel(cfg13, seed=4)

    def run():
        profile = measure_sparsity(model, 1.0, n_tokens=3,
                                   n_rows=192).profile()
        dense = decode_energy(cfg13, dense_engine(), orin, seq_len=700)
        si = decode_energy(
            cfg13,
            EngineSpec(kind="sparseinfer", kernel_fusion=True,
                       actual_sparsity=True),
            orin, profile, seq_len=700,
        )
        return dense, si

    dense, si = benchmark.pedantic(run, rounds=1, iterations=1)
    assert si.joules_per_token < dense.joules_per_token
    saving = 1.0 - si.joules_per_token / dense.joules_per_token
    text = (
        f"dense       : {dense.joules_per_token:6.2f} J/token "
        f"(EDP {dense.energy_delay_product*1e3:7.2f} mJ*s)\n"
        f"SparseInfer : {si.joules_per_token:6.2f} J/token "
        f"(EDP {si.energy_delay_product*1e3:7.2f} mJ*s)\n"
        f"energy saving: {saving:.0%} per generated token"
    )
    write_result(results_dir, "dse_energy.txt", text)
    print("\n" + text)

"""Table III: downstream accuracy of ProSparse-Llama2-7B (role model).

Paper: the 7B model is more fragile than the 13B one -- at alpha=1.00 it
loses 6.45pp on average (vs 2.43pp for 13B) and recovers to within 0.5pp
at alpha=1.03.
"""

import pytest

from repro.eval.accuracy import accuracy_table, format_table
from repro.eval.rolemodels import evaluation_tasks

from .conftest import write_result


@pytest.mark.benchmark(group="table3")
def test_table3_accuracy_7b(benchmark, role_7b_weights, role_tokenizer,
                            results_dir):
    tasks = evaluation_tasks(n_samples=120)
    table = benchmark.pedantic(
        accuracy_table,
        args=(role_7b_weights, role_tokenizer, tasks),
        kwargs=dict(include_random_baseline=True),
        rounds=1, iterations=1,
    )

    baseline = table.baseline()
    sweep = [r for r in table.rows if r.method == "SparseInfer"]
    random_row = table.rows[-1]

    assert 10.0 < baseline.average < 90.0
    assert sweep[-1].average >= sweep[0].average - 1e-9
    assert baseline.average - sweep[-1].average < 3.0 + 1e-9
    assert random_row.average < sweep[-1].average

    text = format_table(table)
    write_result(results_dir, "table3_accuracy_7b.txt", text)
    print("\n" + text)


@pytest.mark.benchmark(group="table3")
def test_7b_more_fragile_than_13b(benchmark, role_7b_weights,
                                  role_13b_weights, role_tokenizer,
                                  results_dir):
    """Paper's cross-table observation: the smaller model degrades more
    at the aggressive end of the sweep."""
    tasks = evaluation_tasks(n_samples=100)

    def drops():
        out = {}
        for label, weights in (("7B", role_7b_weights),
                               ("13B", role_13b_weights)):
            table = accuracy_table(weights, role_tokenizer, tasks)
            sweep = [r for r in table.rows if r.method == "SparseInfer"]
            out[label] = table.baseline().average - sweep[0].average
        return out

    result = benchmark.pedantic(drops, rounds=1, iterations=1)
    text = (f"alpha=1.00 average drop: 7B-role {result['7B']:.2f}pp, "
            f"13B-role {result['13B']:.2f}pp (paper: 6.45pp vs 2.43pp)")
    write_result(results_dir, "table2v3_fragility.txt", text)
    print("\n" + text)
    assert result["7B"] >= result["13B"] - 1.0  # allow small-sample noise

"""Goodput under overload: FIFO vs deadline admission on seeded traffic.

Every serving number before PR 10 assumed a drained queue; this
benchmark measures what the scheduler does when traffic *exceeds*
capacity.  It calibrates the engine's service rate (requests/tick) by
draining a calibration batch, then replays seeded arrival traces at
``OVERLOAD_FACTOR`` times that rate -- a Poisson trace and a bursty
on/off trace, both from :mod:`repro.serving.loadgen`, shaped by the
:mod:`repro.workloads.scenarios` mix (chat / few-shot fleet /
summarise, each carrying its class SLO) -- through the same engine
geometry under ``admission="fifo"`` and ``admission="deadline"``.

Two strict (non-statistical -- the traces are seeded and the clock is
the tick counter) gates:

1. **Deadline wins under overload**: on the identical trace, deadline
   admission yields *strictly more* ``goodput_tokens`` than FIFO, for
   both arrival processes.  FIFO burns decode capacity on requests
   whose TTFT deadlines passed while queued; deadline admission sheds
   them and spends the freed capacity on still-feasible arrivals.
2. **SLO machinery is pay-for-use**: under ``admission="fifo"`` the
   per-request generated tokens are bit-identical to the same trace
   with every SLO stripped -- attaching SLO contracts without turning
   on deadline admission changes telemetry only, never decoding.

Results land as JSON in ``benchmarks/results/goodput.json``.

Run:  python benchmarks/bench_overload_goodput.py
or:   pytest benchmarks/bench_overload_goodput.py -q -m slow -p no:cacheprovider
"""

import json
import os
from pathlib import Path

for _var in ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS", "MKL_NUM_THREADS",
             "NUMEXPR_NUM_THREADS"):
    os.environ.setdefault(_var, "1")

import numpy as np
import pytest

from repro.core.predictor import SparseInferPredictor
from repro.model.config import ModelConfig
from repro.model.weights import random_weights
from repro.serving import (
    ContinuousBatchingScheduler,
    LoadGenerator,
    OnOffProcess,
    PoissonProcess,
    Request,
    run_trace,
)
from repro.serving.engine import BatchedEngine
from repro.workloads.scenarios import default_mix, scenario_tokenizer

RESULTS_DIR = Path(__file__).resolve().parent / "results"

MAX_SEQ_LEN = 192
PAGE_SIZE = 16
N_PAGES = 96
MAX_BATCH = 4

N_CALIBRATION = 40        # drained all-at-once to measure service rate
N_REQUESTS = 60           # per overload trace
OVERLOAD_FACTOR = 1.5     # arrival rate / measured service rate
TRACE_SEED = 7
# On/off shape: same mean rate as the Poisson trace, but delivered in
# bursts at 6x the mean with long idle gaps (duty cycle 1/6).
BURST_MULTIPLIER = 6.0
MEAN_ON_SECONDS = 8.0


def bench_config() -> ModelConfig:
    return ModelConfig(
        name="overload-goodput-bench",
        vocab_size=scenario_tokenizer().vocab_size,
        d_model=32,
        n_layers=2,
        n_heads=2,
        d_ff=64,
        max_seq_len=MAX_SEQ_LEN,
        dtype_bytes=4,
    )


def make_scheduler(weights, predictor, admission):
    engine = BatchedEngine(
        weights, predictor=predictor, paged=True,
        max_batch_size=MAX_BATCH, page_size=PAGE_SIZE, n_pages=N_PAGES,
    )
    return ContinuousBatchingScheduler(engine, admission=admission)


def calibrate_capacity(weights, predictor) -> float:
    """Service rate in requests/tick: drain a batch submitted at once."""
    factory = default_mix().factory()
    rng = np.random.default_rng(0)
    scheduler = make_scheduler(weights, predictor, "fifo")
    for i in range(N_CALIBRATION):
        scheduler.submit(factory(rng, i))
    scheduler.run()
    return N_CALIBRATION / scheduler.step_count


def build_traces(capacity: float) -> dict:
    """Seeded Poisson + bursty traces at OVERLOAD_FACTOR x capacity."""
    rate = OVERLOAD_FACTOR * capacity
    duty = 1.0 / BURST_MULTIPLIER
    processes = {
        "poisson": PoissonProcess(rate=rate),
        "onoff": OnOffProcess(
            burst_rate=BURST_MULTIPLIER * rate,
            mean_on=MEAN_ON_SECONDS,
            mean_off=MEAN_ON_SECONDS * (1.0 - duty) / duty,
        ),
    }
    return {
        name: LoadGenerator(
            process, default_mix().factory(), seed=TRACE_SEED
        ).trace(N_REQUESTS)
        for name, process in processes.items()
    }


def replay(weights, predictor, trace, admission):
    scheduler = make_scheduler(weights, predictor, admission)
    report = run_trace(scheduler, trace, ticks_per_second=1.0)
    assert scheduler.engine.cache.n_pages_in_use == 0, "pages leaked"
    return report


def strip_slos(trace) -> list:
    return [
        type(entry)(time=entry.time, request=Request(
            request_id=entry.request.request_id,
            prompt_ids=entry.request.prompt_ids,
            max_new_tokens=entry.request.max_new_tokens,
            stop_ids=entry.request.stop_ids,
            priority=entry.request.priority,
            sampling=entry.request.sampling,
            slo=None,
        ))
        for entry in trace
    ]


def check_deadline_wins(name, fifo, deadline) -> None:
    assert deadline.goodput_tokens > fifo.goodput_tokens, (
        f"{name}: deadline admission goodput {deadline.goodput_tokens} "
        f"not strictly above fifo {fifo.goodput_tokens} at "
        f"{OVERLOAD_FACTOR}x overload"
    )
    assert deadline.shed_requests > 0, f"{name}: overload never shed"
    for report in (fifo, deadline):
        assert report.slo_met_requests + report.slo_missed_requests \
            + report.shed_requests == len(report.completions)


def check_fifo_bit_identical(name, fifo, plain) -> None:
    with_slo = {c.request_id: tuple(c.generated_ids)
                for c in fifo.completions}
    stripped = {c.request_id: tuple(c.generated_ids)
                for c in plain.completions}
    assert with_slo == stripped, (
        f"{name}: attaching SLOs changed fifo-served tokens"
    )
    assert fifo.shed_requests == 0, f"{name}: fifo admission shed"


def report_dict(report) -> dict:
    return {
        "admission": report.admission,
        "goodput_tokens": report.goodput_tokens,
        "tokens_generated": report.tokens_generated,
        "goodput_fraction": round(report.goodput_fraction, 4),
        "slo_met_requests": report.slo_met_requests,
        "slo_missed_requests": report.slo_missed_requests,
        "shed_requests": report.shed_requests,
        "ttft_p99_steps": report.ttft_steps_percentile(99),
        "class_stats": report.class_telemetry(),
    }


def run_comparison():
    weights = random_weights(bench_config(), seed=13)
    predictor = SparseInferPredictor.from_gate_weights(
        weights.gate_matrices()
    )
    capacity = calibrate_capacity(weights, predictor)
    results = {}
    for name, trace in build_traces(capacity).items():
        fifo = replay(weights, predictor, trace, "fifo")
        deadline = replay(weights, predictor, trace, "deadline")
        plain = replay(weights, predictor, strip_slos(trace), "fifo")
        check_deadline_wins(name, fifo, deadline)
        check_fifo_bit_identical(name, fifo, plain)
        results[name] = {"fifo": fifo, "deadline": deadline}
    return capacity, results


def format_report(capacity, results) -> str:
    lines = [
        f"overload goodput: {N_REQUESTS} scenario-mix requests at "
        f"{OVERLOAD_FACTOR}x capacity ({capacity:.3f} req/tick), "
        f"fifo vs deadline admission",
        "",
        f"{'trace':>10}{'admission':>11}{'goodput tok':>13}"
        f"{'total tok':>11}{'met':>5}{'miss':>6}{'shed':>6}",
    ]
    for name, pair in results.items():
        for mode in ("fifo", "deadline"):
            report = pair[mode]
            lines.append(
                f"{name:>10}{mode:>11}{report.goodput_tokens:>13}"
                f"{report.tokens_generated:>11}{report.slo_met_requests:>5}"
                f"{report.slo_missed_requests:>6}{report.shed_requests:>6}"
            )
    return "\n".join(lines)


def write_json(capacity, results) -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "goodput.json"
    payload = {
        "benchmark": "overload_goodput",
        "workload": {
            "n_requests": N_REQUESTS,
            "overload_factor": OVERLOAD_FACTOR,
            "capacity_requests_per_tick": round(capacity, 4),
            "trace_seed": TRACE_SEED,
            "scenario_mix": "default_mix",
            "page_size": PAGE_SIZE,
            "n_pages": N_PAGES,
            "max_batch_size": MAX_BATCH,
        },
        "traces": {
            name: {mode: report_dict(report)
                   for mode, report in pair.items()}
            for name, pair in results.items()
        },
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def main() -> int:
    capacity, results = run_comparison()
    print(format_report(capacity, results))
    gains = {
        name: pair["deadline"].goodput_tokens
        / max(pair["fifo"].goodput_tokens, 1)
        for name, pair in results.items()
    }
    print(f"\nall overload-goodput checks passed (deadline/fifo goodput: "
          + ", ".join(f"{name} {gain:.2f}x" for name, gain in gains.items())
          + "; fifo stays bit-identical with SLOs stripped)")
    path = write_json(capacity, results)
    print(f"results -> {path.relative_to(Path.cwd())}"
          if path.is_relative_to(Path.cwd()) else f"results -> {path}")
    return 0


@pytest.mark.slow
def test_overload_goodput_smoke():
    """Pytest entry point mirroring the script run (tier-2 smoke)."""
    capacity, results = run_comparison()
    assert set(results) == {"poisson", "onoff"}


if __name__ == "__main__":
    raise SystemExit(main())

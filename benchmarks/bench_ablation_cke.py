"""Ablation (Section IV design decision): CKE vs sequential steps 1-2.

The paper notes steps 1 (gate) and 2 (up) *could* run concurrently via
CUDA Concurrent Kernel Execution, but chooses sequential execution
because (a) both GEMVs are memory bound so CKE buys almost nothing on a
shared DRAM bus, and (b) sequential execution enables actual-sparsity
recovery, which is worth real time.  This bench quantifies both points.
"""

import pytest

from repro.eval.latency import measure_sparsity
from repro.gpu.pipeline import EngineSpec, decode_latency
from repro.model.synthetic import SyntheticActivationModel

from .conftest import write_result


@pytest.mark.benchmark(group="ablation")
def test_cke_vs_sequential(benchmark, cfg13, orin, results_dir):
    model = SyntheticActivationModel(cfg13, seed=2)

    def run():
        profile = measure_sparsity(model, alpha=1.0, n_tokens=3,
                                   n_rows=256).profile()
        out = {}
        for label, spec in (
            ("CKE (steps 1||2)",
             EngineSpec(kind="sparseinfer", concurrent_gate_up=True)),
            ("sequential",
             EngineSpec(kind="sparseinfer")),
            ("sequential +AS",
             EngineSpec(kind="sparseinfer", actual_sparsity=True)),
        ):
            out[label] = decode_latency(cfg13, spec, orin, profile,
                                        seq_len=700)
        return out

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    cke = reports["CKE (steps 1||2)"].seconds_per_token
    seq = reports["sequential"].seconds_per_token
    seq_as = reports["sequential +AS"].seconds_per_token

    # (a) CKE saves at most a launch overhead or two (memory bound).
    assert abs(cke - seq) / seq < 0.02
    # (b) sequential + actual sparsity is the fastest of the three.
    assert seq_as <= min(cke, seq)

    lines = [f"{label:<22}{rep.seconds_per_token*1e3:8.2f} ms/token"
             for label, rep in reports.items()]
    text = "\n".join(lines)
    write_result(results_dir, "ablation_cke.txt", text)
    print("\n" + text)


def test_cke_excludes_as_and_fusion():
    with pytest.raises(ValueError):
        EngineSpec(kind="sparseinfer", concurrent_gate_up=True,
                   actual_sparsity=True)
    with pytest.raises(ValueError):
        EngineSpec(kind="sparseinfer", concurrent_gate_up=True,
                   kernel_fusion=True)

"""Section V-A: predictor latency (~70 us/layer, 3.66x vs PowerInfer) and
predictor memory (337.5 MB vs 1480 MB, 4.38x)."""

import pytest

from repro.eval.memusage import compare_predictor_memory, format_comparison
from repro.eval.overhead import predictor_overhead

from .conftest import write_result


@pytest.mark.benchmark(group="sec5a")
def test_predictor_latency(benchmark, cfg13, orin, results_dir):
    rep = benchmark(predictor_overhead, cfg13, orin)
    assert 50 < rep.sparseinfer_us < 90          # paper: ~70 us
    assert 3.0 < rep.speedup < 4.5               # paper: 3.66x
    text = (
        f"SparseInfer predictor: {rep.sparseinfer_us:.1f} us/token/layer "
        f"(paper ~70 us)\n"
        f"PowerInfer predictor:  {rep.powerinfer_us:.1f} us/token/layer\n"
        f"speedup: {rep.speedup:.2f}x (paper 3.66x)"
    )
    write_result(results_dir, "sec5a_predictor_latency.txt", text)
    print("\n" + text)


@pytest.mark.benchmark(group="sec5a")
def test_predictor_memory(benchmark, cfg13, results_dir):
    cmp = benchmark(compare_predictor_memory, cfg13)
    assert cmp.powerinfer_mib == pytest.approx(1480, rel=1e-3)
    assert cmp.sparseinfer_mib == pytest.approx(337.5, rel=1e-3)
    assert cmp.reduction_factor == pytest.approx(4.38, abs=0.05)
    text = format_comparison(cmp)
    write_result(results_dir, "sec5a_predictor_memory.txt", text)
    print("\n" + text)


@pytest.mark.benchmark(group="sec5a")
def test_predictor_kernel_throughput(benchmark, cfg13):
    """Microbenchmark of the actual numpy XOR+popcount path (the kernel
    the 70 us figure models), at one layer's true dimensions."""
    import numpy as np

    from repro.core.signpack import PackedSigns, pack_signs, xor_popcount

    rng = np.random.default_rng(0)
    w = rng.standard_normal((cfg13.d_ff, cfg13.d_model)).astype(np.float32)
    packed = PackedSigns.from_matrix(w)
    x = rng.standard_normal(cfg13.d_model).astype(np.float32)
    packed_x = pack_signs(x)

    counts = benchmark(xor_popcount, packed.words, packed_x)
    assert counts.shape == (cfg13.d_ff,)

"""Ablation (Section V-B in-text): contributions of kernel fusion (+KF)
and actual sparsity (+AS).

Paper: "The gain from the kernel fusion (+KF) turned out to be
insignificant ... Utilizing actual sparsity (+AS) contributes
significantly to the speedup, especially when alpha gets larger."
"""

import pytest

from repro.eval.latency import figure4

from .conftest import write_result


@pytest.mark.benchmark(group="ablation")
def test_kf_and_as_contributions(benchmark, cfg13, orin, results_dir):
    result = benchmark.pedantic(
        figure4,
        args=(cfg13, orin),
        kwargs=dict(alphas=(1.00, 1.03), n_tokens=4, n_rows=256),
        rounds=1, iterations=1,
    )

    lines = [f"{'alpha':>6}{'base':>9}{'+KF':>9}{'+AS':>9}{'+KF+AS':>9}"
             "   (ms per token)"]
    gains_as = {}
    gains_kf = {}
    for alpha, variants in sorted(result.sparseinfer.items()):
        ms = {k: v.seconds_per_token * 1e3 for k, v in variants.items()}
        lines.append(
            f"{alpha:>6.2f}{ms['base']:>9.1f}{ms['+KF']:>9.1f}"
            f"{ms['+AS']:>9.1f}{ms['+KF+AS']:>9.1f}"
        )
        gains_as[alpha] = ms["base"] - ms["+AS"]
        gains_kf[alpha] = ms["base"] - ms["+KF"]

    # KF gain insignificant (<5% of the token latency).
    base_ms = result.sparseinfer[1.00]["base"].seconds_per_token * 1e3
    assert gains_kf[1.00] < 0.05 * base_ms
    # AS gain grows with alpha (recovers conservative mispredictions).
    assert gains_as[1.03] >= gains_as[1.00] - 1e-9
    # AS contributes more than KF at the conservative end.
    assert gains_as[1.03] > gains_kf[1.03]

    text = "\n".join(lines)
    write_result(results_dir, "ablation_kf_as.txt", text)
    print("\n" + text)

"""Cross-request prefix cache vs resident-only sharing on bursty traffic.

Prefix sharing (``bench_prefix_sharing.py``) forks a *resident* donor's
pages, so it only helps while same-prefix requests overlap in time.  A
bursty few-shot workload -- one request at a time, each finishing before
the next arrives -- defeats it completely: by the time a request is
admitted, its prefix twin has already retired and freed its pages, so
the resident ``PrefixIndex`` matches nothing and the shared exemplar
prefix is re-prefilled every single burst.

The cross-request prefix cache (``cache_pages > 0``,
:class:`repro.model.paged_kvcache.PrefixCache`) parks a retiring
sequence's page-aligned prompt-prefix pages in an LRU instead of freeing
them; the next burst *revives* those pages (re-pins them into its slot)
and prefills only the suffix.

This benchmark drains one bursty few-shot workload (non-overlapping
lifetimes by construction) at the **same page budget** twice and checks:

1. with ``cache_pages = 0`` (today's resident-only behaviour) ~0% of
   prompt tokens are served from reused KV;
2. with the prefix cache, >= 50% of all prompt tokens are revived from
   cache rather than re-prefilled, and prefill wall-clock drops;
3. generated tokens are identical request-by-request between the two
   runs (reviving changes where K/V comes from, never what is decoded),
   and -- since bursty decode runs at batch 1 -- both are bit-identical
   to :func:`repro.core.engine.build_engine`.

Results land as JSON in ``benchmarks/results/prefix_cache.json``.

Run:  python benchmarks/bench_prefix_cache.py
or:   pytest benchmarks/bench_prefix_cache.py -q -m slow -p no:cacheprovider
"""

import json
import os
from pathlib import Path

for _var in ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS", "MKL_NUM_THREADS",
             "NUMEXPR_NUM_THREADS"):
    os.environ.setdefault(_var, "1")

import pytest

from repro.core.engine import build_batched_engine, build_engine
from repro.model.config import ModelConfig
from repro.model.tokenizer import CharTokenizer
from repro.model.weights import random_weights
from repro.serving import ContinuousBatchingScheduler, Request
from repro.workloads import fewshot, gsm8k_like

RESULTS_DIR = Path(__file__).resolve().parent / "results"

MAX_SEQ_LEN = 160
PAGE_SIZE = 16
N_REQUESTS = 10
N_SHOTS = 6
MAX_NEW = 8
MAX_BATCH = 4
# Page budget: enough for one resident worst case (the bursts never
# overlap) plus the cached prefix -- far below N_REQUESTS worst cases.
BUDGET_PAGES = 16
CACHE_PAGES = 8


def bench_config(vocab_size: int) -> ModelConfig:
    return ModelConfig(
        name="prefix-cache-bench",
        vocab_size=vocab_size,
        d_model=64,
        n_layers=2,
        n_heads=2,
        d_ff=128,
        max_seq_len=MAX_SEQ_LEN,
        dtype_bytes=4,
    )


def build_workload(tokenizer: CharTokenizer) -> tuple:
    """Few-shot requests sharing the exemplar prefix, plus its length."""
    samples = fewshot.fewshot_set(
        gsm8k_like.generate, N_REQUESTS, n_shots=N_SHOTS, seed=5
    )
    prefix_text = samples[0].prompt[:len(samples[0].prompt)
                                   - len(gsm8k_like.generate(1, seed=5)[0].prompt)]
    assert all(s.prompt.startswith(prefix_text) for s in samples)
    requests = [
        Request(request_id=i,
                prompt_ids=tuple(tokenizer.encode(s.prompt)),
                max_new_tokens=MAX_NEW)
        for i, s in enumerate(samples)
    ]
    return requests, len(tokenizer.encode(prefix_text))


def drain_bursty(weights, requests, cache_pages):
    """One request at a time: each drains fully before the next arrives.

    The workload the ROADMAP names: same-prefix requests whose
    lifetimes never overlap, so resident-only matching gets 0 donors.
    """
    engine = build_batched_engine(
        weights, max_batch_size=MAX_BATCH, max_seq_len=MAX_SEQ_LEN,
        paged=True, page_size=PAGE_SIZE, n_pages=BUDGET_PAGES,
        prefix_sharing=True, cache_pages=cache_pages,
    )
    scheduler = ContinuousBatchingScheduler(engine)
    for request in requests:
        scheduler.submit(request)
        scheduler.run()
    report = scheduler.report
    assert engine.cache.n_pages_in_use == 0, "pages leaked"
    assert engine.cache.pool._reserved == 0, "reservations leaked"
    return report


def run_comparison():
    tokenizer = CharTokenizer(gsm8k_like.ALPHABET)
    config = bench_config(tokenizer.vocab_size)
    weights = random_weights(config, seed=9)
    requests, prefix_len = build_workload(tokenizer)
    cold = drain_bursty(weights, requests, cache_pages=0)
    cached = drain_bursty(weights, requests, cache_pages=CACHE_PAGES)
    return config, weights, requests, prefix_len, cold, cached


def check_prefill_savings(requests, cold, cached) -> None:
    # Resident-only sharing saves ~0% on non-overlapping bursts.
    assert cold.forked_admissions == 0
    assert cold.revived_admissions == 0
    assert cold.prefill_tokens_saved == 0
    assert cold.prefill_reuse_fraction == 0.0
    # The cache revives every burst after the first...
    assert cached.revived_admissions == len(requests) - 1, (
        f"only {cached.revived_admissions} of {len(requests) - 1} "
        f"post-warmup bursts revived"
    )
    # ...covering at least half of all prompt tokens (acceptance bar).
    assert cached.prefill_cache_fraction >= 0.5, (
        f"only {cached.prefill_cache_fraction:.0%} of prompt tokens "
        f"served from cache"
    )
    # Revived + run prefill covers exactly the same prompt positions.
    assert cached.prefill_tokens + cached.revived_tokens == \
        cold.prefill_tokens
    assert cached.peak_pages_in_use <= BUDGET_PAGES
    assert cached.peak_cached_pages <= CACHE_PAGES


def check_tokens_identical(config, weights, requests, cold, cached) -> None:
    """Cached tokens == cold tokens == build_engine (bursty -> batch 1)."""
    cold_out = {c.request_id: c.generated_ids for c in cold.completions}
    cached_out = {c.request_id: c.generated_ids for c in cached.completions}
    assert cold_out == cached_out, "prefix cache changed decoded tokens"
    assert len(cached_out) == len(requests)
    reference = build_engine(weights)
    for request in requests[:3]:
        ref = reference.generate(list(request.prompt_ids),
                                 max_new_tokens=MAX_NEW).generated_ids
        assert cold_out[request.request_id] == ref, (
            f"request {request.request_id}: cache_pages=0 diverged from "
            f"build_engine"
        )
        assert cached_out[request.request_id] == ref, (
            f"request {request.request_id}: revived decode diverged from "
            f"build_engine"
        )


def report_dict(report) -> dict:
    return {
        "prefill_tokens_run": report.prefill_tokens,
        "prefill_tokens_saved_fork": report.prefill_tokens_saved,
        "prefill_tokens_revived": report.revived_tokens,
        "prefill_cache_fraction": round(report.prefill_cache_fraction, 4),
        "forked_admissions": report.forked_admissions,
        "revived_admissions": report.revived_admissions,
        "cache_evictions": report.cache_evictions,
        "peak_cached_pages": report.peak_cached_pages,
        "peak_pages_in_use": report.peak_pages_in_use,
        "prefill_seconds": round(report.prefill_seconds, 4),
        "tokens_generated": report.tokens_generated,
    }


def format_report(prefix_len, cold, cached) -> str:
    speedup = (cold.prefill_seconds / cached.prefill_seconds
               if cached.prefill_seconds else float("inf"))
    lines = [
        f"cross-request prefix cache on bursty few-shot traffic "
        f"({N_REQUESTS} non-overlapping requests, {prefix_len}-token "
        f"shared prefix, {BUDGET_PAGES}-page budget, cache_pages="
        f"{CACHE_PAGES})",
        "",
        f"{'':>28}{'cache_pages=0':>14}{'cached':>10}",
        f"{'prefill tokens run':>28}"
        f"{cold.prefill_tokens:>14}{cached.prefill_tokens:>10}",
        f"{'prompt tokens revived':>28}"
        f"{cold.revived_tokens:>14}{cached.revived_tokens:>10}",
        f"{'served-from-cache fraction':>28}"
        f"{cold.prefill_cache_fraction:>14.0%}"
        f"{cached.prefill_cache_fraction:>10.0%}",
        f"{'revived admissions':>28}"
        f"{cold.revived_admissions:>14}{cached.revived_admissions:>10}",
        f"{'cache evictions':>28}"
        f"{cold.cache_evictions:>14}{cached.cache_evictions:>10}",
        f"{'peak cached pages':>28}"
        f"{cold.peak_cached_pages:>14}{cached.peak_cached_pages:>10}",
        f"{'prefill seconds':>28}"
        f"{cold.prefill_seconds:>14.3f}{cached.prefill_seconds:>10.3f}"
        f"   ({speedup:.1f}x)",
    ]
    return "\n".join(lines)


def write_json(prefix_len, cold, cached) -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "prefix_cache.json"
    payload = {
        "benchmark": "prefix_cache",
        "workload": {
            "n_requests": N_REQUESTS,
            "n_shots": N_SHOTS,
            "shared_prefix_tokens": prefix_len,
            "max_new_tokens": MAX_NEW,
            "page_size": PAGE_SIZE,
            "budget_pages": BUDGET_PAGES,
            "cache_pages": CACHE_PAGES,
            "bursty": "each request drains before the next is submitted",
        },
        "resident_only": report_dict(cold),
        "prefix_cache": report_dict(cached),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def main() -> int:
    config, weights, requests, prefix_len, cold, cached = run_comparison()
    text = format_report(prefix_len, cold, cached)
    print(text)
    check_prefill_savings(requests, cold, cached)
    check_tokens_identical(config, weights, requests, cold, cached)
    print(f"\nall prefix-cache checks passed (>= 50% of prompt tokens "
          f"served from cache on non-overlapping bursts vs 0% resident-"
          f"only; tokens identical to cold prefill and build_engine)")
    path = write_json(prefix_len, cold, cached)
    print(f"results -> {path.relative_to(Path.cwd())}"
          if path.is_relative_to(Path.cwd()) else f"results -> {path}")
    return 0


@pytest.mark.slow
def test_prefix_cache_smoke():
    """Pytest entry point mirroring the script run (tier-2 smoke)."""
    config, weights, requests, prefix_len, cold, cached = run_comparison()
    check_prefill_savings(requests, cold, cached)
    check_tokens_identical(config, weights, requests, cold, cached)


if __name__ == "__main__":
    raise SystemExit(main())

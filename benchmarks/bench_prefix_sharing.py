"""Prefix-sharing paged KV vs unshared paging on a few-shot workload.

Few-shot prompting (the paper evaluates GSM8K 8-shot) puts the same
solved exemplars in front of every request, so a serving queue is full
of prompts sharing a long prefix.  Prefix sharing
(:meth:`repro.model.paged_kvcache.PagedKVCache.fork`) maps that prefix's
full pages once -- refcounted, copy-on-write -- instead of once per
sequence, and the correlation-aware scheduler co-schedules the sharers,
which also keeps their activation sign patterns aligned.

This benchmark drains one few-shot workload (built with
:func:`repro.workloads.fewshot.fewshot_set` over the GSM8K-like task)
through budget-matched paged engines and checks:

1. at an **equal page budget**, forked admission reaches >= 1.5x the
   unshared engine's peak concurrency, and the same co-resident set
   costs >= 1.5x fewer KV bytes
   (:func:`repro.eval.memusage.compare_shared_prefix_footprint`);
2. generated tokens are identical request-by-request (sharing changes
   where K/V lives and how much prefill runs, never what is decoded),
   and shared prefill positions are actually skipped;
3. the measured skip **intersection decays slower** than the
   uncorrelated ``skip^B`` prediction
   (:func:`repro.gpu.batching.batch_skip_fraction` at ``correlation=0``)
   and than an uncorrelated random-prompt control at the same occupancy;
4. batch=1 / unshared decode stays bit-identical to
   :func:`repro.core.engine.build_engine`.

Run:  python benchmarks/bench_prefix_sharing.py
or:   pytest benchmarks/bench_prefix_sharing.py -q -m slow -p no:cacheprovider
"""

import os
from pathlib import Path

for _var in ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS", "MKL_NUM_THREADS",
             "NUMEXPR_NUM_THREADS"):
    os.environ.setdefault(_var, "1")

import numpy as np
import pytest

from repro.core.engine import build_batched_engine, build_engine
from repro.eval.memusage import (
    compare_shared_prefix_footprint,
    format_shared_prefix_footprint,
)
from repro.model.config import ModelConfig
from repro.model.tokenizer import CharTokenizer
from repro.model.weights import random_weights
from repro.serving import ContinuousBatchingScheduler, Request
from repro.workloads import fewshot, gsm8k_like

RESULTS_DIR = Path(__file__).resolve().parent / "results"

MAX_SEQ_LEN = 160
PAGE_SIZE = 16
N_REQUESTS = 12
N_SHOTS = 6
MAX_NEW = 8
MAX_BATCH = 10
# Page budget for the equal-budget comparison: three unshared worst
# cases.  FIFO paging co-holds 3 requests; forked admission spends the
# same pages on one full request plus ~7 unshared tails.
BUDGET_PAGES = 21


def bench_config(vocab_size: int) -> ModelConfig:
    return ModelConfig(
        name="prefix-share-bench",
        vocab_size=vocab_size,
        d_model=64,
        n_layers=2,
        n_heads=2,
        d_ff=128,
        max_seq_len=MAX_SEQ_LEN,
        dtype_bytes=4,
    )


def build_workload(tokenizer: CharTokenizer) -> tuple:
    """Few-shot requests sharing the exemplar prefix, plus its length."""
    samples = fewshot.fewshot_set(
        gsm8k_like.generate, N_REQUESTS, n_shots=N_SHOTS, seed=5
    )
    prefix_text = samples[0].prompt[:len(samples[0].prompt)
                                   - len(gsm8k_like.generate(1, seed=5)[0].prompt)]
    # All samples carry the same exemplar prefix by construction.
    assert all(s.prompt.startswith(prefix_text) for s in samples)
    requests = [
        Request(request_id=i,
                prompt_ids=tuple(tokenizer.encode(s.prompt)),
                max_new_tokens=MAX_NEW)
        for i, s in enumerate(samples)
    ]
    return requests, len(tokenizer.encode(prefix_text))


def build_uncorrelated_control(requests, vocab_size: int,
                               seed: int = 23) -> list:
    """Random prompts matching the few-shot lengths (no shared prefix)."""
    rng = np.random.default_rng(seed)
    return [
        Request(request_id=r.request_id,
                prompt_ids=tuple(int(t) for t in
                                 rng.integers(3, vocab_size,
                                              size=r.prompt_len)),
                max_new_tokens=r.max_new_tokens)
        for r in requests
    ]


def drain(weights, requests, n_pages, prefix_sharing, reorder_window=0):
    engine = build_batched_engine(
        weights, max_batch_size=MAX_BATCH, max_seq_len=MAX_SEQ_LEN,
        paged=True, page_size=PAGE_SIZE, n_pages=n_pages,
        prefix_sharing=prefix_sharing,
    )
    scheduler = ContinuousBatchingScheduler(
        engine, reorder_window=reorder_window
    )
    for request in requests:
        scheduler.submit(request)
    report = scheduler.run()
    assert engine.cache.n_pages_in_use == 0, "pages leaked"
    assert engine.cache.pool._reserved == 0, "reservations leaked"
    return report


def worst_case_positions(request: Request) -> int:
    return request.prompt_len + request.max_new_tokens - 1


def run_comparison():
    tokenizer = CharTokenizer(gsm8k_like.ALPHABET)
    config = bench_config(tokenizer.vocab_size)
    weights = random_weights(config, seed=9)
    requests, prefix_len = build_workload(tokenizer)

    # Equal page budget: unshared FIFO paging vs forked admission.
    unshared = drain(weights, requests, BUDGET_PAGES, prefix_sharing=False)
    shared = drain(weights, requests, BUDGET_PAGES, prefix_sharing=True,
                   reorder_window=MAX_BATCH)
    footprint = compare_shared_prefix_footprint(
        config, [worst_case_positions(r) for r in requests],
        shared_prefix=prefix_len, page_size=PAGE_SIZE,
    )

    # Ample budget, same occupancy: correlated few-shot workload vs an
    # uncorrelated random-prompt control of identical lengths.
    ample = N_REQUESTS * shared.n_pages      # never page-bound
    correlated = drain(weights, requests, ample, prefix_sharing=True,
                       reorder_window=MAX_BATCH)
    control = drain(weights,
                    build_uncorrelated_control(requests,
                                               tokenizer.vocab_size),
                    ample, prefix_sharing=False)
    return (config, weights, requests, prefix_len,
            unshared, shared, footprint, correlated, control)


def check_equal_budget(requests, unshared, shared, footprint) -> None:
    unshared_out = {c.request_id: c.generated_ids
                    for c in unshared.completions}
    shared_out = {c.request_id: c.generated_ids for c in shared.completions}
    assert unshared_out == shared_out, "prefix sharing changed decoded tokens"
    assert len(shared_out) == len(requests)
    assert shared.peak_occupancy >= 1.5 * unshared.peak_occupancy, (
        f"shared peak {shared.peak_occupancy} < 1.5x unshared peak "
        f"{unshared.peak_occupancy}"
    )
    assert footprint.reduction_factor >= 1.5, (
        f"shared co-resident set only {footprint.reduction_factor:.2f}x "
        f"below unshared"
    )
    assert shared.forked_admissions >= len(requests) // 2
    assert shared.prefill_tokens_saved > 0
    assert shared.prefill_tokens + shared.prefill_tokens_saved == \
        unshared.prefill_tokens, "saved + run prefill must cover every prompt"
    assert shared.peak_shared_pages > 0
    assert shared.peak_pages_in_use <= BUDGET_PAGES


def check_correlation(correlated, control) -> None:
    """Shared-prefix co-scheduling must beat the uncorrelated decay."""
    assert correlated.intersection_skip > \
        2.0 * correlated.expected_uncorrelated_skip, (
        f"intersection {correlated.intersection_skip:.4f} does not decay "
        f"slower than skip^B {correlated.expected_uncorrelated_skip:.4f}"
    )
    # Same request lengths and occupancy, uncorrelated prompts: the
    # realised intersection must sit clearly below the correlated one.
    assert abs(correlated.mean_batch_occupancy
               - control.mean_batch_occupancy) < 1.0
    assert correlated.intersection_skip > 1.2 * control.intersection_skip, (
        f"correlated intersection {correlated.intersection_skip:.4f} not "
        f"above uncorrelated control {control.intersection_skip:.4f}"
    )


def check_batch1_bit_identical(config, weights, requests) -> None:
    """Batch=1 serving with sharing enabled emits build_engine's tokens."""
    reference = build_engine(weights)
    engine = build_batched_engine(
        weights, max_batch_size=1, max_seq_len=MAX_SEQ_LEN,
        paged=True, page_size=PAGE_SIZE, prefix_sharing=True,
    )
    scheduler = ContinuousBatchingScheduler(engine, reorder_window=4)
    for request in requests[:3]:
        scheduler.submit(request)
    report = scheduler.run()
    got = {c.request_id: c.generated_ids for c in report.completions}
    for request in requests[:3]:
        ref = reference.generate(list(request.prompt_ids),
                                 max_new_tokens=MAX_NEW).generated_ids
        assert got[request.request_id] == ref, (
            f"request {request.request_id}: batch=1 sharing diverged"
        )


def format_report(prefix_len, unshared, shared, footprint,
                  correlated, control) -> str:
    lines = [
        f"prefix sharing vs unshared paging at equal budget "
        f"({BUDGET_PAGES} pages of {PAGE_SIZE}; {N_REQUESTS} few-shot "
        f"requests, {prefix_len}-token shared prefix)",
        "",
        f"{'':>26}{'unshared':>10}{'shared':>10}",
        f"{'peak concurrent seqs':>26}"
        f"{unshared.peak_occupancy:>10}{shared.peak_occupancy:>10}",
        f"{'mean batch occupancy':>26}"
        f"{unshared.mean_batch_occupancy:>10.2f}"
        f"{shared.mean_batch_occupancy:>10.2f}",
        f"{'prefill tokens run':>26}"
        f"{unshared.prefill_tokens:>10}{shared.prefill_tokens:>10}",
        f"{'prefill tokens saved':>26}{'-':>10}"
        f"{shared.prefill_tokens_saved:>10}",
        f"{'forked admissions':>26}{'-':>10}"
        f"{shared.forked_admissions:>10}",
        f"{'peak shared pages':>26}{'-':>10}"
        f"{shared.peak_shared_pages:>10}",
        "",
        format_shared_prefix_footprint(footprint),
        "",
        f"intersection decay at occupancy "
        f"{correlated.mean_batch_occupancy:.1f} (ample budget):",
        f"{'few-shot, shared':>26}{correlated.intersection_skip:>10.4f}",
        f"{'uncorrelated control':>26}{control.intersection_skip:>10.4f}",
        f"{'skip^B prediction':>26}"
        f"{correlated.expected_uncorrelated_skip:>10.4f}",
    ]
    return "\n".join(lines)


def main() -> int:
    (config, weights, requests, prefix_len,
     unshared, shared, footprint, correlated, control) = run_comparison()
    text = format_report(prefix_len, unshared, shared, footprint,
                         correlated, control)
    print(text)
    check_equal_budget(requests, unshared, shared, footprint)
    check_correlation(correlated, control)
    check_batch1_bit_identical(config, weights, requests)
    print("\nall prefix-sharing checks passed (>= 1.5x concurrency and "
          ">= 1.5x fewer KV bytes at equal budget; intersection decays "
          "slower than skip^B; batch=1 bit-identical to build_engine)")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "prefix_sharing.txt").write_text(text + "\n")
    return 0


@pytest.mark.slow
def test_prefix_sharing_smoke():
    """Pytest entry point mirroring the script run (tier-2 smoke)."""
    (config, weights, requests, prefix_len,
     unshared, shared, footprint, correlated, control) = run_comparison()
    check_equal_budget(requests, unshared, shared, footprint)
    check_correlation(correlated, control)
    check_batch1_bit_identical(config, weights, requests)


if __name__ == "__main__":
    raise SystemExit(main())

"""Table I: number of operations for prediction and MLP block.

Paper values (per layer, ProSparse-Llama2-13B):

    llama.cpp (dense)   prediction 0          MLP 2.123e8
    PowerInfer          prediction 1.940e7    MLP 1.699e7
    SparseInfer         prediction 2.211e6    MLP 1.699e7
"""

import pytest

from repro.eval.opcounts import format_table1, table1

from .conftest import write_result


@pytest.mark.benchmark(group="table1")
def test_table1_opcounts(benchmark, cfg13, results_dir):
    rows = benchmark(table1, cfg13)

    dense, powerinfer, sparseinfer = rows
    assert dense.mlp_ops == pytest.approx(2.123e8, rel=1e-3)
    assert powerinfer.prediction_ops == pytest.approx(1.940e7, rel=1e-3)
    assert sparseinfer.prediction_ops == pytest.approx(2.211e6, rel=1e-3)
    assert sparseinfer.mlp_ops == pytest.approx(1.699e7, rel=1e-3)

    text = format_table1(rows)
    write_result(results_dir, "table1_opcounts.txt", text)
    print("\n" + text)


@pytest.mark.benchmark(group="table1")
def test_table1_7b_variant(benchmark, cfg7, results_dir):
    """Same counting conventions on the 7B config (not in the paper's
    table, recorded for completeness)."""
    rows = benchmark(table1, cfg7)
    assert rows[0].mlp_ops == 3 * 4096 * 11008
    write_result(results_dir, "table1_opcounts_7b.txt", format_table1(rows))

"""Benchmark fixtures.

Role-model weights are trained once per machine and cached under
``.weight_cache/`` (see :func:`repro.train.trainer.train_or_load`); the
first benchmark run therefore includes a few minutes of training, later
runs load the ``.npz`` snapshots.

Rendered tables/figures are written to ``benchmarks/results/`` so that
``pytest benchmarks/ --benchmark-only`` leaves the reproduced artefacts
on disk.
"""

import os
from pathlib import Path

for _var in ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS", "MKL_NUM_THREADS",
             "NUMEXPR_NUM_THREADS"):
    os.environ.setdefault(_var, "1")

import pytest

RESULTS_DIR = Path(__file__).resolve().parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_result(path: Path, name: str, text: str) -> None:
    (path / name).write_text(text + "\n")


@pytest.fixture(scope="session")
def orin():
    from repro.gpu.device import jetson_orin_agx_64gb

    return jetson_orin_agx_64gb()


@pytest.fixture(scope="session")
def cfg13():
    from repro.model.config import prosparse_llama2_13b

    return prosparse_llama2_13b()


@pytest.fixture(scope="session")
def cfg7():
    from repro.model.config import prosparse_llama2_7b

    return prosparse_llama2_7b()


@pytest.fixture(scope="session")
def role_tokenizer():
    from repro.eval.rolemodels import build_tokenizer

    return build_tokenizer()


@pytest.fixture(scope="session")
def role_7b_weights(role_tokenizer):
    from repro.eval.rolemodels import load_role_model, spec_7b_role

    return load_role_model(spec_7b_role(role_tokenizer), role_tokenizer)


@pytest.fixture(scope="session")
def role_13b_weights(role_tokenizer):
    from repro.eval.rolemodels import load_role_model, spec_13b_role

    return load_role_model(spec_13b_role(role_tokenizer), role_tokenizer)

"""Budgeted-tick prefill piggybacking vs inline admission prefill.

With ``step_budget=0`` (the historical behaviour) admitting a request
runs its whole prompt prefill inside one scheduler tick, so every
resident sequence stalls for the full prefill before its next token: a
160-token prompt arriving mid-decode shows up as one giant inter-token
gap on every resident.  With ``step_budget=b`` the tick feeds at most
~``b`` tokens total -- resident decodes first, then pending prefill
chunks (Sarathi-style piggybacking through the chunked-GEMM prefill
path) -- so the same arrival is spread over several ticks and no
resident ever waits longer than a budget's worth of prefill.

This benchmark decodes three short-prompt residents, drops a 160-token
prompt into the queue mid-decode, and drains the same workload twice
(inline vs ``step_budget=32``), checking:

1. every request's generated tokens are identical between the two runs
   (the budget changes *when* prefill happens, never what is decoded);
2. the inline run's worst single tick fed the whole 160-token prompt,
   the budgeted run's worst tick stayed within the budget
   (``peak_tick_prefill_tokens``, the structural stall bound);
3. the residents' worst wall-clock inter-token gap shrinks accordingly
   (generous factor -- wall-clock, so thread noise gets headroom).

Results land as JSON in ``benchmarks/results/interleaved_prefill.json``.

Run:  python benchmarks/bench_interleaved_prefill.py
or:   pytest benchmarks/bench_interleaved_prefill.py -q -m slow -p no:cacheprovider
"""

import json
import os
from pathlib import Path

for _var in ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS", "MKL_NUM_THREADS",
             "NUMEXPR_NUM_THREADS"):
    os.environ.setdefault(_var, "1")

import numpy as np
import pytest

from repro.core.engine import build_batched_engine
from repro.model.config import ModelConfig
from repro.model.weights import random_weights
from repro.serving import ContinuousBatchingScheduler, Request

RESULTS_DIR = Path(__file__).resolve().parent / "results"

MAX_SEQ_LEN = 208
PAGE_SIZE = 16
N_PAGES = 28
MAX_BATCH = 4
PREFILL_CHUNK = 16
STEP_BUDGET = 32

N_RESIDENTS = 3
RESIDENT_PROMPT = 12
RESIDENT_NEW = 40
LONG_PROMPT = 160
LONG_NEW = 8
ARRIVAL_TICK = 5          # residents decode this many ticks before arrival


def bench_config() -> ModelConfig:
    return ModelConfig(
        name="interleaved-prefill-bench",
        vocab_size=64,
        d_model=64,
        n_layers=2,
        n_heads=2,
        d_ff=128,
        max_seq_len=MAX_SEQ_LEN,
        dtype_bytes=4,
    )


def build_workload() -> tuple:
    """``(residents, long_request)`` with deterministic prompts."""
    rng = np.random.default_rng(31)
    residents = [
        Request(
            request_id=i,
            prompt_ids=tuple(int(t) for t in
                             rng.integers(1, 64, size=RESIDENT_PROMPT)),
            max_new_tokens=RESIDENT_NEW,
        )
        for i in range(N_RESIDENTS)
    ]
    long_request = Request(
        request_id=N_RESIDENTS,
        prompt_ids=tuple(int(t) for t in
                         rng.integers(1, 64, size=LONG_PROMPT)),
        max_new_tokens=LONG_NEW,
    )
    return residents, long_request


def drain_interleaved(weights, residents, long_request, step_budget):
    """Decode the residents, submit the long prompt mid-run, drain."""
    engine = build_batched_engine(
        weights, max_batch_size=MAX_BATCH, max_seq_len=MAX_SEQ_LEN,
        paged=True, page_size=PAGE_SIZE, n_pages=N_PAGES,
        prefill_chunk=PREFILL_CHUNK,
    )
    scheduler = ContinuousBatchingScheduler(engine, step_budget=step_budget)
    for request in residents:
        scheduler.submit(request)
    for _ in range(ARRIVAL_TICK):
        scheduler.step()
    scheduler.submit(long_request)
    report = scheduler.run()
    assert engine.cache.n_pages_in_use == 0, "pages leaked"
    assert engine.cache.pool._reserved == 0, "reservations leaked"
    return report


def resident_max_itl(report) -> float:
    """Worst inter-token gap any *resident* request observed."""
    gaps = [
        gap
        for c in report.completions if c.request_id < N_RESIDENTS
        for gap in c.itl_seconds
    ]
    return max(gaps)


def run_comparison():
    weights = random_weights(bench_config(), seed=13)
    residents, long_request = build_workload()
    inline = drain_interleaved(weights, residents, long_request,
                               step_budget=0)
    budgeted = drain_interleaved(weights, residents, long_request,
                                 step_budget=STEP_BUDGET)
    return residents, long_request, inline, budgeted


def check_tokens_identical(inline, budgeted) -> None:
    inline_out = {c.request_id: c.generated_ids for c in inline.completions}
    budget_out = {c.request_id: c.generated_ids
                  for c in budgeted.completions}
    assert inline_out == budget_out, "step budget changed decoded tokens"
    assert len(inline_out) == N_RESIDENTS + 1


def check_stall_bound(inline, budgeted) -> None:
    # Structural bound: the inline run fed the whole long prompt in one
    # tick; the budgeted run never fed more than the budget per tick.
    assert inline.peak_tick_prefill_tokens >= LONG_PROMPT
    assert budgeted.peak_tick_prefill_tokens <= STEP_BUDGET, (
        f"tick fed {budgeted.peak_tick_prefill_tokens} prefill tokens, "
        f"budget is {STEP_BUDGET}"
    )
    assert budgeted.piggybacked_chunks > 0
    assert budgeted.piggybacked_tokens == \
        LONG_PROMPT + N_RESIDENTS * RESIDENT_PROMPT
    # Wall-clock: the residents' worst stall shrinks with the per-tick
    # feed.  The structural ratio is LONG_PROMPT / STEP_BUDGET = 5x;
    # demand only 30% shaved so scheduler noise cannot flake the check.
    assert resident_max_itl(budgeted) < 0.7 * resident_max_itl(inline), (
        f"budgeted worst resident stall {resident_max_itl(budgeted):.4f}s "
        f"not below 0.7x inline {resident_max_itl(inline):.4f}s"
    )


def report_dict(report, label) -> dict:
    return {
        "label": label,
        "step_budget": report.step_budget,
        "peak_tick_prefill_tokens": report.peak_tick_prefill_tokens,
        "piggybacked_chunks": report.piggybacked_chunks,
        "piggybacked_tokens": report.piggybacked_tokens,
        "resident_max_itl_ms": round(resident_max_itl(report) * 1e3, 3),
        "itl_p99_ms": round(report.itl_seconds_percentile(99) * 1e3, 3),
        "ttft_p50_ms": round(report.ttft_seconds_percentile(50) * 1e3, 3),
        "prefill_seconds": round(report.prefill_seconds, 4),
        "decode_seconds": round(report.decode_seconds, 4),
        "tokens_generated": report.tokens_generated,
    }


def format_report(inline, budgeted) -> str:
    rows = [("inline", inline), (f"budget={STEP_BUDGET}", budgeted)]
    lines = [
        f"interleaved prefill: {N_RESIDENTS} residents decoding, "
        f"{LONG_PROMPT}-token prompt arriving at tick {ARRIVAL_TICK} "
        f"(prefill_chunk={PREFILL_CHUNK})",
        "",
        f"{'':>16}{'peak tick feed':>16}{'chunks':>8}"
        f"{'resident max ITL':>18}{'ITL p99':>10}",
    ]
    for label, report in rows:
        lines.append(
            f"{label:>16}{report.peak_tick_prefill_tokens:>16}"
            f"{report.piggybacked_chunks:>8}"
            f"{resident_max_itl(report) * 1e3:>16.2f}ms"
            f"{report.itl_seconds_percentile(99) * 1e3:>8.2f}ms"
        )
    return "\n".join(lines)


def write_json(inline, budgeted) -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "interleaved_prefill.json"
    payload = {
        "benchmark": "interleaved_prefill",
        "workload": {
            "n_residents": N_RESIDENTS,
            "resident_prompt_tokens": RESIDENT_PROMPT,
            "resident_max_new": RESIDENT_NEW,
            "long_prompt_tokens": LONG_PROMPT,
            "long_max_new": LONG_NEW,
            "arrival_tick": ARRIVAL_TICK,
            "prefill_chunk": PREFILL_CHUNK,
            "step_budget": STEP_BUDGET,
            "page_size": PAGE_SIZE,
            "n_pages": N_PAGES,
        },
        "inline": report_dict(inline, "inline"),
        "budgeted": report_dict(budgeted, f"budget={STEP_BUDGET}"),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def main() -> int:
    residents, long_request, inline, budgeted = run_comparison()
    print(format_report(inline, budgeted))
    check_tokens_identical(inline, budgeted)
    check_stall_bound(inline, budgeted)
    print(f"\nall interleaved-prefill checks passed (tokens identical; "
          f"worst tick feed {inline.peak_tick_prefill_tokens} -> "
          f"{budgeted.peak_tick_prefill_tokens} tokens under "
          f"step_budget={STEP_BUDGET})")
    path = write_json(inline, budgeted)
    print(f"results -> {path.relative_to(Path.cwd())}"
          if path.is_relative_to(Path.cwd()) else f"results -> {path}")
    return 0


@pytest.mark.slow
def test_interleaved_prefill_smoke():
    """Pytest entry point mirroring the script run (tier-2 smoke)."""
    residents, long_request, inline, budgeted = run_comparison()
    check_tokens_identical(inline, budgeted)
    check_stall_bound(inline, budgeted)


if __name__ == "__main__":
    raise SystemExit(main())

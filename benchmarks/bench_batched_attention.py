"""Batched attention vs the per-sequence decode loop, chunked vs scalar prefill.

Two measurements on a decode-heavy synthetic model:

1. **Decode**: B sequences resident, equal workload; wall-clock of the
   decode-step loop with ``batched_attention=False`` (one
   ``attend_single`` per sequence per layer) vs ``True`` (one padded
   masked-softmax einsum per layer, gather plans cached between steps).
   Tokens are asserted identical; the speedup at batch 4-8 is the
   vectorisation win.

2. **Prefill**: one long prompt, token-by-token (T sequential scalar
   passes) vs ``prefill_chunk=32`` (ceil(T/32) causal GEMM passes).
   Expected >= 2x on prompts >= 128 tokens.

Results go to ``benchmarks/results/batched_attention.json`` --
machine-readable, so the perf trajectory is trackable across commits.

Run:  python benchmarks/bench_batched_attention.py
or:   pytest benchmarks/bench_batched_attention.py -q -m slow -p no:cacheprovider
"""

import json
import os
import time
from pathlib import Path

for _var in ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS", "MKL_NUM_THREADS",
             "NUMEXPR_NUM_THREADS"):
    os.environ.setdefault(_var, "1")

import numpy as np
import pytest

from repro.core.engine import (
    SparseInferSettings,
    build_batched_engine,
    build_predictor,
)
from repro.model.config import ModelConfig
from repro.model.weights import random_weights

RESULTS_DIR = Path(__file__).resolve().parent / "results"
DECODE_BATCH_SIZES = (4, 8)
DECODE_STEPS = 48
PREFILL_TOKENS = 160
PREFILL_CHUNK = 32
REPEATS = 3


def bench_config() -> ModelConfig:
    """Attention-heavy: enough heads/positions that the per-sequence
    python loop and its B x n_layers tiny einsums are the visible cost."""
    return ModelConfig(
        name="battn-bench",
        vocab_size=512,
        d_model=256,
        n_layers=4,
        n_heads=8,
        d_ff=512,
        max_seq_len=256,
        dtype_bytes=4,
    )


def _prefill_slots(engine, batch, prompt_len, vocab, seed=3):
    """Admit ``batch`` sequences with staggered prompt lengths."""
    rng = np.random.default_rng(seed)
    slots, tokens = [], []
    for i in range(batch):
        # Mixed lengths with a realistic spread (not pathological):
        # what continuous batching leaves resident mid-drain.
        length = prompt_len - 8 * (i % 4)
        prompt = [int(t) for t in rng.integers(1, vocab - 1, size=length)]
        slot = engine.allocate_slot()
        logits = engine.prefill(slot, prompt)
        slots.append(slot)
        tokens.append(int(np.argmax(logits)))
    return slots, tokens


def measure_decode(weights, predictor, batch, batched_attention,
                   prompt_len=96, paged=False):
    """Decode-step wall-clock; returns (seconds, generated tokens)."""
    engine = build_batched_engine(
        weights, predictor=predictor, max_batch_size=batch,
        batched_attention=batched_attention, paged=paged,
    )
    slots, tokens = _prefill_slots(
        engine, batch, prompt_len, weights.config.vocab_size
    )
    generated = []
    t0 = time.perf_counter()
    for _ in range(DECODE_STEPS):
        logits = engine.decode_step(slots, tokens)
        tokens = [int(np.argmax(row)) for row in logits]
        generated.append(tokens)
    seconds = time.perf_counter() - t0
    waste = engine.attn_telemetry.padding_waste_fraction
    return seconds, generated, waste


def measure_prefill(weights, predictor, prefill_chunk):
    """Wall-clock of one long-prompt prefill; returns (seconds, argmax)."""
    engine = build_batched_engine(
        weights, predictor=predictor, max_batch_size=1,
        prefill_chunk=prefill_chunk,
    )
    rng = np.random.default_rng(11)
    prompt = [int(t) for t in
              rng.integers(1, weights.config.vocab_size - 1,
                           size=PREFILL_TOKENS)]
    slot = engine.allocate_slot()
    t0 = time.perf_counter()
    logits = engine.prefill(slot, prompt)
    seconds = time.perf_counter() - t0
    return seconds, int(np.argmax(logits))


def run_bench():
    config = bench_config()
    weights = random_weights(config, seed=9)
    predictor = build_predictor(weights, SparseInferSettings())

    decode_points = []
    # Fixed cache at batch 4 and 8, plus the paged cache at the largest
    # batch -- paging makes the scalar loop gather per sequence, so the
    # batched win there is the serving-relevant number.
    for batch, paged in [(b, False) for b in DECODE_BATCH_SIZES] + \
                        [(DECODE_BATCH_SIZES[-1], True)]:
        scalar_s, scalar_tokens, _ = min(
            (measure_decode(weights, predictor, batch, False, paged=paged)
             for _ in range(REPEATS)),
            key=lambda r: r[0],
        )
        batched_s, batched_tokens, waste = min(
            (measure_decode(weights, predictor, batch, True, paged=paged)
             for _ in range(REPEATS)),
            key=lambda r: r[0],
        )
        assert batched_tokens == scalar_tokens, (
            f"batched attention changed tokens at batch {batch}"
        )
        decode_points.append({
            "batch": batch,
            "paged": paged,
            "decode_steps": DECODE_STEPS,
            "scalar_seconds": scalar_s,
            "batched_seconds": batched_s,
            "speedup": scalar_s / batched_s,
            "padding_waste": waste,
            "tokens_identical": True,
        })

    scalar_s, scalar_tok = min(
        (measure_prefill(weights, predictor, 0) for _ in range(REPEATS)),
        key=lambda r: r[0],
    )
    chunked_s, chunked_tok = min(
        (measure_prefill(weights, predictor, PREFILL_CHUNK)
         for _ in range(REPEATS)),
        key=lambda r: r[0],
    )
    prefill = {
        "prompt_tokens": PREFILL_TOKENS,
        "chunk": PREFILL_CHUNK,
        "scalar_seconds": scalar_s,
        "chunked_seconds": chunked_s,
        "speedup": scalar_s / chunked_s,
        "same_argmax": scalar_tok == chunked_tok,
    }
    return {
        "benchmark": "batched_attention",
        "config": {
            "name": config.name, "d_model": config.d_model,
            "n_layers": config.n_layers, "n_heads": config.n_heads,
            "d_ff": config.d_ff, "max_seq_len": config.max_seq_len,
        },
        "decode": decode_points,
        "prefill": prefill,
    }


def check_results(results) -> None:
    """Acceptance: best-point decode win, >= 2x prefill win.

    The decode gate is the *best* sweep point, not every point: the
    per-sequence scalar baseline used to run its post-attention residual
    (and so every MLP GEMM) in float64 -- promoted by a float64
    attention scale -- which inflated per-point batched wins well above
    their real margin.  With the whole decode path in float32 the
    vectorisation win at this model scale is ~1.0-1.25x per point,
    inside machine noise, so gating each point would be flaky; token
    identity stays asserted everywhere.
    """
    for point in results["decode"]:
        assert point["tokens_identical"]
    best = max(p["speedup"] for p in results["decode"])
    assert best > 1.0, (
        f"no decode-step win at any batch/cache point: best {best:.2f}x"
    )
    prefill = results["prefill"]
    assert prefill["same_argmax"]
    assert prefill["speedup"] >= 2.0, (
        f"chunked prefill speedup {prefill['speedup']:.2f}x < 2x"
    )


def render(results) -> str:
    lines = [
        f"batched attention vs per-sequence loop ({results['config']['name']}: "
        f"d={results['config']['d_model']} h={results['config']['n_heads']} "
        f"layers={results['config']['n_layers']})",
        "",
        "decode ({} steps, greedy):".format(DECODE_STEPS),
    ]
    for p in results["decode"]:
        cache = "paged" if p["paged"] else "fixed"
        lines.append(
            f"  batch {p['batch']} ({cache}): "
            f"scalar {p['scalar_seconds']*1e3:7.1f} ms"
            f"  batched {p['batched_seconds']*1e3:7.1f} ms"
            f"  -> {p['speedup']:.2f}x  (padding waste "
            f"{p['padding_waste']:.1%}, tokens identical)"
        )
    pf = results["prefill"]
    lines += [
        "",
        f"prefill ({pf['prompt_tokens']}-token prompt):",
        f"  token-by-token {pf['scalar_seconds']*1e3:7.1f} ms"
        f"  chunk={pf['chunk']} {pf['chunked_seconds']*1e3:7.1f} ms"
        f"  -> {pf['speedup']:.2f}x",
    ]
    return "\n".join(lines)


def write_json(results) -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "batched_attention.json"
    path.write_text(json.dumps(results, indent=2) + "\n")
    return path


def main() -> int:
    results = run_bench()
    print(render(results))
    check_results(results)
    path = write_json(results)
    print(f"\nall batched-attention checks passed; JSON -> {path}")
    return 0


@pytest.mark.slow
def test_batched_attention_smoke():
    """Pytest entry point mirroring the script run."""
    results = run_bench()
    check_results(results)
    write_json(results)


if __name__ == "__main__":
    raise SystemExit(main())

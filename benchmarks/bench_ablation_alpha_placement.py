"""Ablation: where the conservativeness is spent (early vs all layers).

The paper applies alpha > 1 only to the first 20 layers, reasoning that
prediction imprecision concentrates early.  This ablation runs the
trained 7B-role model with the same aggressive effective alpha applied
(a) uniformly and (b) to the early half only: restricting the aggression
to fewer layers must recover accuracy, which is the flip side of the
paper's placement argument.
"""

import pytest

from repro.core.engine import SparseInferSettings, build_engine, dense_engine
from repro.core.predictor import SparseInferPredictor
from repro.eval.harness import evaluate
from repro.eval.rolemodels import evaluation_tasks

from .conftest import write_result

AGGRESSIVE_ALPHA = 0.7  # effective alpha of the paper-label 1.00 row


@pytest.mark.benchmark(group="ablation")
def test_alpha_placement(benchmark, role_7b_weights, role_tokenizer,
                         results_dir):
    weights = role_7b_weights
    tasks = evaluation_tasks(n_samples=80)
    predictor = SparseInferPredictor.from_gate_weights(
        weights.gate_matrices()
    )
    n_half = weights.config.n_layers // 2

    def run():
        out = {}
        out["dense"] = {
            name: evaluate(dense_engine(weights), role_tokenizer, s,
                           task=name).accuracy
            for name, s in tasks.items()
        }
        configs = {
            "uniform": SparseInferSettings(alpha=AGGRESSIVE_ALPHA),
            "early-half only": SparseInferSettings(
                alpha=1.0, alpha_early=AGGRESSIVE_ALPHA,
                n_early_layers=n_half,
            ),
        }
        for label, settings in configs.items():
            engine = build_engine(weights, settings, predictor=predictor)
            out[label] = {
                name: evaluate(engine, role_tokenizer, s, task=name).accuracy
                for name, s in tasks.items()
            }
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    def avg(d):
        return sum(d.values()) / len(d)

    # Restricting the aggressive alpha to fewer layers must not hurt.
    assert avg(results["early-half only"]) >= avg(results["uniform"]) - 1.0

    lines = [f"{'config':<18}" + "".join(f"{t:>14}" for t in tasks)
             + f"{'avg':>9}"]
    for label, accs in results.items():
        lines.append(
            f"{label:<18}"
            + "".join(f"{accs[t]:>14.2f}" for t in tasks)
            + f"{avg(accs):>9.2f}"
        )
    text = "\n".join(lines)
    write_result(results_dir, "ablation_alpha_placement.txt", text)
    print("\n" + text)

"""Fig. 2: distributions of X, Wgate,i and Y = X * Wgate,i per layer.

Verifies the paper's observations on the full-dimension synthetic
activation model of ProSparse-Llama2-13B: near-symmetric X and W, product
mean approaching zero, and early-layer X concentrated around zero.
"""

import pytest

from repro.eval.distributions import figure2
from repro.model.synthetic import SyntheticActivationModel

from .conftest import write_result

FIG2_LAYERS = [0, 1, 2, 10, 20, 30, 39]


@pytest.fixture(scope="module")
def synth13(cfg13):
    return SyntheticActivationModel(cfg13, seed=0)


@pytest.mark.benchmark(group="fig2")
def test_fig2_distributions(benchmark, synth13, results_dir):
    reports = benchmark.pedantic(
        figure2,
        args=(synth13, FIG2_LAYERS),
        kwargs=dict(n_tokens=6, n_rows=128),
        rounds=1, iterations=1,
    )

    lines = [
        f"{'layer':>6}{'X std':>9}{'X pos%':>8}{'X kurt':>8}{'X near0':>9}"
        f"{'W pos%':>8}{'Y mean/std':>12}"
    ]
    for rep in reports:
        lines.append(
            f"{rep.layer:>6}{rep.x.std:>9.4f}"
            f"{rep.x.positive_fraction:>8.1%}{rep.x.kurtosis:>8.1f}"
            f"{rep.x.near_zero_fraction:>9.1%}"
            f"{rep.w_row.positive_fraction:>8.1%}"
            f"{rep.product_mean_normalised:>12.4f}"
        )
        # Paper: near-equal positive/negative split for X and Wgate.
        assert abs(rep.x.positive_fraction - 0.5) < 0.1
        assert abs(rep.w_row.positive_fraction - 0.5) < 0.1
        # Paper: Y symmetric with mean approaching zero.
        assert abs(rep.product_mean_normalised) < 0.15

    early, late = reports[0], reports[-1]
    # Paper: early-layer X dominated by near-zero values, narrow.
    assert early.x.near_zero_fraction > late.x.near_zero_fraction
    assert early.x.std < late.x.std

    text = "\n".join(lines)
    write_result(results_dir, "fig2_distributions.txt", text)
    print("\n" + text)

"""Paged vs fixed-slot KV cache at an equal memory budget.

The fixed :class:`BatchedKVCache` sizes every slot for the worst case,
so a KV memory budget of ``N * max_seq_len`` positions admits exactly
``N`` concurrent sequences no matter how short they are.  The paged
cache spends the *same* budget page-by-page, so a mixed short/long
workload packs many short sequences around each long one.

This benchmark builds one fixed engine and one paged engine whose KV
arenas are byte-identical in size, drains the same short/long workload
through both, and checks:

1. the paged engine's peak concurrent batch is >= 2x the fixed one's
   (it is bounded by pages, not worst-case slots);
2. generated tokens are identical request-by-request (paging changes
   *where* K/V lives, never *what* is decoded);
3. for the same co-resident request set, paged KV bytes are <= half the
   fixed-slot bytes (:func:`repro.eval.memusage.compare_kv_footprint`);
4. batch=1 paged decode is bit-identical to
   :func:`repro.core.engine.build_engine`.

Run:  python benchmarks/bench_paged_kv.py
or:   pytest benchmarks/bench_paged_kv.py -q -m slow -p no:cacheprovider
"""

import os
from pathlib import Path

for _var in ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS", "MKL_NUM_THREADS",
             "NUMEXPR_NUM_THREADS"):
    os.environ.setdefault(_var, "1")

import numpy as np
import pytest

from repro.core.engine import build_batched_engine, build_engine
from repro.eval.memusage import compare_kv_footprint, format_kv_footprint
from repro.model.config import ModelConfig
from repro.model.weights import random_weights
from repro.serving import ContinuousBatchingScheduler, Request

RESULTS_DIR = Path(__file__).resolve().parent / "results"

MAX_SEQ_LEN = 128
PAGE_SIZE = 16
FIXED_SLOTS = 4                       # budget = 4 * 128 = 512 positions
N_PAGES = FIXED_SLOTS * MAX_SEQ_LEN // PAGE_SIZE     # same 512 positions
PAGED_MAX_BATCH = 16

N_LONG = 2
LONG_PROMPT = 8
LONG_NEW = MAX_SEQ_LEN - LONG_PROMPT + 1    # worst case fills a slot: 128
N_SHORT = 20
SHORT_PROMPT = 4
SHORT_NEW = PAGE_SIZE - SHORT_PROMPT + 1    # worst case fills one page: 16


def bench_config() -> ModelConfig:
    return ModelConfig(
        name="paged-kv-bench",
        vocab_size=128,
        d_model=64,
        n_layers=2,
        n_heads=2,
        d_ff=128,
        max_seq_len=MAX_SEQ_LEN,
        dtype_bytes=4,
    )


def build_workload(vocab_size: int, seed: int = 3) -> list:
    """Long requests first (FIFO admits them), then a tail of shorts."""
    rng = np.random.default_rng(seed)
    requests = []
    for i in range(N_LONG):
        prompt = tuple(int(t) for t in
                       rng.integers(1, vocab_size - 1, size=LONG_PROMPT))
        requests.append(Request(request_id=i, prompt_ids=prompt,
                                max_new_tokens=LONG_NEW))
    for i in range(N_SHORT):
        prompt = tuple(int(t) for t in
                       rng.integers(1, vocab_size - 1, size=SHORT_PROMPT))
        requests.append(Request(request_id=N_LONG + i, prompt_ids=prompt,
                                max_new_tokens=SHORT_NEW))
    return requests


def worst_case_positions(request: Request) -> int:
    return request.prompt_len + request.max_new_tokens - 1


def drain(engine, requests):
    scheduler = ContinuousBatchingScheduler(engine)
    for request in requests:
        scheduler.submit(request)
    return scheduler.run()


def run_comparison():
    """Drain the workload through budget-matched fixed and paged engines."""
    config = bench_config()
    weights = random_weights(config, seed=9)
    requests = build_workload(config.vocab_size)

    fixed_engine = build_batched_engine(
        weights, max_batch_size=FIXED_SLOTS, max_seq_len=MAX_SEQ_LEN
    )
    paged_engine = build_batched_engine(
        weights, max_batch_size=PAGED_MAX_BATCH, max_seq_len=MAX_SEQ_LEN,
        paged=True, page_size=PAGE_SIZE, n_pages=N_PAGES,
    )
    assert paged_engine.cache.kv_bytes == fixed_engine.cache.kv_bytes, \
        "engines must share one KV memory budget"

    fixed_report = drain(fixed_engine, requests)
    paged_report = drain(paged_engine, requests)
    footprint = compare_kv_footprint(
        config, [worst_case_positions(r) for r in requests],
        max_seq_len=MAX_SEQ_LEN, page_size=PAGE_SIZE,
    )
    return config, weights, requests, fixed_report, paged_report, footprint


def mean_short_admission_tick(report) -> float:
    ticks = [c.admitted_step for c in report.completions
             if c.request_id >= N_LONG]
    return float(np.mean(ticks))


def check_comparison(requests, fixed_report, paged_report, footprint) -> None:
    """The acceptance properties of the paged cache."""
    # Same tokens out of both engines, request by request.
    fixed_out = {c.request_id: c.generated_ids
                 for c in fixed_report.completions}
    paged_out = {c.request_id: c.generated_ids
                 for c in paged_report.completions}
    assert fixed_out == paged_out, "paging changed decoded tokens"
    assert len(fixed_out) == len(requests)
    # Equal budget, >= 2x the concurrent sequences.
    assert fixed_report.peak_occupancy <= FIXED_SLOTS
    assert paged_report.peak_occupancy >= 2 * fixed_report.peak_occupancy, (
        f"paged peak {paged_report.peak_occupancy} < 2x fixed peak "
        f"{fixed_report.peak_occupancy}"
    )
    # Short requests stop queueing behind the worst-case slots: paging
    # admits the short tail much earlier.  (Total ticks to drain are the
    # same -- the longest request is the critical path either way.)
    assert mean_short_admission_tick(paged_report) < \
        0.5 * mean_short_admission_tick(fixed_report), (
        "paging did not shorten short-request queueing"
    )
    # Same co-resident set costs <= half the bytes paged.
    assert footprint.reduction_factor >= 2.0, (
        f"paged bytes only {footprint.reduction_factor:.2f}x below fixed"
    )
    assert paged_report.peak_pages_in_use <= paged_report.n_pages


def check_batch1_bit_identical(config, weights) -> None:
    """Paged batch=1 serving emits exactly build_engine's tokens."""
    reference = build_engine(weights)
    engine = build_batched_engine(
        weights, max_batch_size=1, max_seq_len=MAX_SEQ_LEN,
        paged=True, page_size=PAGE_SIZE,
    )
    scheduler = ContinuousBatchingScheduler(engine)
    rng = np.random.default_rng(17)
    requests = [
        Request(request_id=i,
                prompt_ids=tuple(int(t) for t in
                                 rng.integers(1, config.vocab_size - 1,
                                              size=3 + i)),
                max_new_tokens=40)
        for i in range(3)
    ]
    for request in requests:
        scheduler.submit(request)
    report = scheduler.run()
    got = {c.request_id: c.generated_ids for c in report.completions}
    for request in requests:
        ref = reference.generate(list(request.prompt_ids),
                                 max_new_tokens=40).generated_ids
        assert got[request.request_id] == ref, (
            f"request {request.request_id}: paged batch=1 diverged"
        )


def format_report(fixed_report, paged_report, footprint) -> str:
    budget_positions = footprint.page_size * paged_report.n_pages
    lines = [
        f"paged vs fixed KV at equal budget "
        f"({FIXED_SLOTS} x {MAX_SEQ_LEN} = {budget_positions} positions; "
        f"{N_LONG} long + {N_SHORT} short requests)",
        "",
        f"{'':>24}{'fixed':>10}{'paged':>10}",
        f"{'peak concurrent seqs':>24}"
        f"{fixed_report.peak_occupancy:>10}{paged_report.peak_occupancy:>10}",
        f"{'mean batch occupancy':>24}"
        f"{fixed_report.mean_batch_occupancy:>10.2f}"
        f"{paged_report.mean_batch_occupancy:>10.2f}",
        f"{'decode steps to drain':>24}"
        f"{fixed_report.decode_steps:>10}{paged_report.decode_steps:>10}",
        f"{'mean short admit tick':>24}"
        f"{mean_short_admission_tick(fixed_report):>10.1f}"
        f"{mean_short_admission_tick(paged_report):>10.1f}",
        f"{'peak pages in use':>24}{'-':>10}"
        f"{paged_report.peak_pages_in_use:>10}",
        f"{'mean page utilisation':>24}{'-':>10}"
        f"{paged_report.mean_page_utilisation:>10.1%}",
        "",
        format_kv_footprint(footprint),
    ]
    return "\n".join(lines)


def main() -> int:
    config, weights, requests, fixed_report, paged_report, footprint = \
        run_comparison()
    text = format_report(fixed_report, paged_report, footprint)
    print(text)
    check_comparison(requests, fixed_report, paged_report, footprint)
    check_batch1_bit_identical(config, weights)
    print("\nall paged-KV checks passed (>= 2x concurrency and <= 0.5x "
          "bytes at equal budget; batch=1 bit-identical to build_engine)")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "paged_kv.txt").write_text(text + "\n")
    return 0


@pytest.mark.slow
def test_paged_kv_smoke():
    """Pytest entry point mirroring the script run (tier-2 smoke)."""
    config, weights, requests, fixed_report, paged_report, footprint = \
        run_comparison()
    check_comparison(requests, fixed_report, paged_report, footprint)
    check_batch1_bit_identical(config, weights)


if __name__ == "__main__":
    raise SystemExit(main())

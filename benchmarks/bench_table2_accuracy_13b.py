"""Table II: downstream accuracy of ProSparse-Llama2-13B (role model).

Paper: the baseline scores GSM8K 30.71 / BBH 44.80; SparseInfer loses
2.43pp on average at alpha=1.00 and recovers to within 1pp at 1.03.
In-text: random selection at 90% sparsity gives 0% accuracy.

Role-model protocol (see EXPERIMENTS.md): the trained 13B-role model is
evaluated with the dense engine, the SparseInfer engine across the alpha
sweep (paper labels, effective-alpha mapping documented in
repro.eval.accuracy), and the random-skip control.

The 13B-role model is more robust than the 7B-role one (matching the
paper's cross-table finding), so its accuracy transition sits at a lower
effective alpha; its sweep is re-centred accordingly
(alpha_base = 0.62, alpha_scale = 12.5 -> paper labels 1.00..1.03 map to
effective 0.62..1.00).
"""

ALPHA_BASE_13B = 0.62
ALPHA_SCALE_13B = 12.5

import pytest

from repro.eval.accuracy import accuracy_table, format_table
from repro.eval.rolemodels import evaluation_tasks

from .conftest import write_result


@pytest.mark.benchmark(group="table2")
def test_table2_accuracy_13b(benchmark, role_13b_weights, role_tokenizer,
                             results_dir):
    tasks = evaluation_tasks(n_samples=120)
    table = benchmark.pedantic(
        accuracy_table,
        args=(role_13b_weights, role_tokenizer, tasks),
        kwargs=dict(include_random_baseline=True,
                    alpha_base=ALPHA_BASE_13B, alpha_scale=ALPHA_SCALE_13B),
        rounds=1, iterations=1,
    )

    baseline = table.baseline()
    sweep = [r for r in table.rows if r.method == "SparseInfer"]
    random_row = table.rows[-1]
    assert random_row.method == "Random-90%"

    # Baseline is partial (learned but not saturated), like the paper's.
    assert 15.0 < baseline.average < 90.0
    # Recovery with alpha, within the +-3pp exact-match noise floor of
    # 120-sample evaluation sets.
    assert sweep[-1].average >= sweep[0].average - 3.0
    # Conservative end within ~3pp of baseline (paper: within 1pp).
    assert baseline.average - sweep[-1].average < 3.0 + 1e-9
    # The random control must be far worse than SparseInfer's worst row.
    assert random_row.average < sweep[0].average

    text = format_table(table)
    write_result(results_dir, "table2_accuracy_13b.txt", text)
    print("\n" + text)

"""The llama.cpp-role dense baseline (re-exported for discoverability).

All GEMVs dense, every token; the reference point of every speedup
number in the paper.
"""

from __future__ import annotations

from ..core.engine import dense_engine
from ..model.mlp import DenseMLP

__all__ = ["dense_engine", "DenseMLP"]

"""Baselines: dense (llama.cpp role), DejaVu/PowerInfer, random, CATS."""

from .dejavu import DejaVuPredictor, DejaVuTrainConfig, train_dejavu_predictor
from .powerinfer import PowerInferMLP, build_powerinfer_engine
from .random_skip import RandomSkipMLP
from .threshold import ThresholdMLP, calibrate_thresholds

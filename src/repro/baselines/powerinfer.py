"""PowerInfer-role engine: DejaVu predictor + sparse GEMVs.

PowerInfer executes the MLP with the rows its trained predictor marks
live; unlike SparseInfer it has no actual-sparsity recovery pass (the
prediction is made once, before the gate GEMV, and reused for up/down).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..model.inference import InferenceModel
from ..model.mlp import DenseMLP, MLPStats, activation_fn
from ..model.weights import ModelWeights
from .dejavu import DejaVuPredictor


@dataclass
class PowerInferMLP:
    """MLP executor gated by the trained DejaVu predictor."""

    weights: ModelWeights
    predictor: DejaVuPredictor
    stats: MLPStats = field(default_factory=MLPStats)

    def __post_init__(self):
        cfg = self.weights.config
        if self.predictor.n_layers != cfg.n_layers:
            raise ValueError(
                f"predictor covers {self.predictor.n_layers} layers, "
                f"model has {cfg.n_layers}"
            )
        self._act = activation_fn(cfg.activation, cfg.fatrelu_threshold)

    def run(self, layer: int, x: np.ndarray) -> np.ndarray:
        lw = self.weights.layers[layer]
        k = lw.w_gate_rows.shape[0]
        skip = self.predictor.predict(layer, x)
        live = np.flatnonzero(~skip)
        h1 = self._act(lw.w_gate_rows[live] @ x)
        h3 = h1 * (lw.w_up_rows[live] @ x)
        out = h3 @ lw.w_down_rows[live]
        self.stats.calls += 1
        self.stats.rows_total += k
        skipped = k - len(live)
        self.stats.rows_skipped_gate += skipped
        self.stats.rows_skipped_up += skipped
        self.stats.rows_skipped_down += skipped
        return out.astype(np.float32)

    def reset_stats(self) -> None:
        self.stats = MLPStats()


def build_powerinfer_engine(
    weights: ModelWeights,
    predictor: DejaVuPredictor,
    trace_mlp_inputs: bool = False,
    sparse_prefill: bool = False,
) -> InferenceModel:
    """A PowerInfer-role engine (dense prefill, sparse decode)."""
    sparse = PowerInferMLP(weights=weights, predictor=predictor)
    prefill = sparse if sparse_prefill else DenseMLP(weights)
    return InferenceModel(
        weights, mlp=sparse, prefill_mlp=prefill,
        trace_mlp_inputs=trace_mlp_inputs,
    )

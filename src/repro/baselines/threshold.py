"""CATS/TEAL-style magnitude-threshold sparsification (paper Section II).

These methods keep the original SiLU activation and *compute the gate
values densely*, then zero the gate outputs whose magnitude falls below a
calibrated quantile threshold -- exploiting the induced sparsity only in
the up- and down-projections.  Compared to ReLUfication + SparseInfer
they need no fine-tuning but save nothing on the gate GEMV, which is why
the paper cites their lower speedup (CATS: ~15%).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..model.inference import MLPTrace
from ..model.mlp import MLPStats, activation_fn
from ..model.weights import ModelWeights


def calibrate_thresholds(
    traces: Sequence[MLPTrace],
    n_layers: int,
    target_sparsity: float,
    activation: str = "silu",
) -> np.ndarray:
    """Per-layer |gate activation| quantile thresholds from traces."""
    if not 0.0 < target_sparsity < 1.0:
        raise ValueError(
            f"target_sparsity must be in (0,1), got {target_sparsity}"
        )
    act = activation_fn(activation)
    per_layer: list = [[] for _ in range(n_layers)]
    for trace in traces:
        per_layer[trace.layer].append(np.abs(act(trace.gate_preact)))
    thresholds = np.empty(n_layers, dtype=np.float64)
    for layer, values in enumerate(per_layer):
        if not values:
            raise ValueError(f"no traces for layer {layer}")
        thresholds[layer] = np.quantile(np.concatenate(values), target_sparsity)
    return thresholds


@dataclass
class ThresholdMLP:
    """CATS-style executor: dense gate, thresholded up/down."""

    weights: ModelWeights
    thresholds: np.ndarray          # (n_layers,) absolute-magnitude cutoffs
    stats: MLPStats = field(default_factory=MLPStats)

    def __post_init__(self):
        cfg = self.weights.config
        if len(self.thresholds) != cfg.n_layers:
            raise ValueError(
                f"{len(self.thresholds)} thresholds for {cfg.n_layers} layers"
            )
        self._act = activation_fn(cfg.activation, cfg.fatrelu_threshold)

    def run(self, layer: int, x: np.ndarray) -> np.ndarray:
        lw = self.weights.layers[layer]
        k = lw.w_gate_rows.shape[0]
        h1 = self._act(lw.w_gate_rows @ x)          # dense: no gate saving
        h1 = np.where(np.abs(h1) >= self.thresholds[layer], h1, 0.0)
        live = np.flatnonzero(h1 != 0.0)
        h3 = h1[live] * (lw.w_up_rows[live] @ x)
        out = h3 @ lw.w_down_rows[live]
        self.stats.calls += 1
        self.stats.rows_total += k
        skipped = k - len(live)
        self.stats.rows_skipped_up += skipped
        self.stats.rows_skipped_down += skipped
        return out.astype(np.float32)

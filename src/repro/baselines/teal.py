"""TEAL-style training-free magnitude sparsification (paper Section II).

TEAL ("Training-free activation sparsity in large language models")
extends CATS-style thresholding from the FFN to the *attention* block:
low-magnitude entries of the activation vectors entering each projection
are zeroed, so the matching weight *columns* need not be read.  Unlike
SparseInfer this sparsifies inputs (columns) rather than outputs (rows)
and keeps SiLU, trading lower reachable sparsity for zero fine-tuning.

We implement the input-sparsification operator, per-projection threshold
calibration from traces, and a cost hook so the ablation bench can place
TEAL on the same roofline as SparseInfer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..model.mlp import MLPStats, activation_fn
from ..model.weights import ModelWeights


def sparsify_input(x: np.ndarray, threshold: float) -> np.ndarray:
    """Zero entries with magnitude below ``threshold`` (TEAL's operator)."""
    if threshold < 0:
        raise ValueError(f"threshold must be non-negative, got {threshold}")
    return np.where(np.abs(x) >= threshold, x, 0.0)


def input_threshold_for_sparsity(
    samples: np.ndarray, target_sparsity: float
) -> float:
    """Magnitude quantile achieving ``target_sparsity`` zeros."""
    if not 0.0 < target_sparsity < 1.0:
        raise ValueError(
            f"target_sparsity must be in (0,1), got {target_sparsity}"
        )
    return float(np.quantile(np.abs(samples), target_sparsity))


@dataclass
class TealMLP:
    """MLP executor with TEAL input sparsification.

    The MLP input ``x`` is thresholded once; zeroed positions make the
    matching *columns* of Wgate/Wup dead, which a column-skipping kernel
    exploits.  Gate outputs are computed (SiLU keeps them dense-ish), and
    exact zeros of ``h3`` are skipped in the down projection.
    """

    weights: ModelWeights
    input_thresholds: np.ndarray    # (n_layers,)
    stats: MLPStats = field(default_factory=MLPStats)
    # Column-skip accounting (TEAL skips columns, not rows).
    cols_total: int = 0
    cols_skipped: int = 0

    def __post_init__(self):
        cfg = self.weights.config
        if len(self.input_thresholds) != cfg.n_layers:
            raise ValueError(
                f"{len(self.input_thresholds)} thresholds for "
                f"{cfg.n_layers} layers"
            )
        self._act = activation_fn(cfg.activation, cfg.fatrelu_threshold)

    @property
    def column_skip_fraction(self) -> float:
        return self.cols_skipped / self.cols_total if self.cols_total else 0.0

    def run(self, layer: int, x: np.ndarray) -> np.ndarray:
        lw = self.weights.layers[layer]
        k = lw.w_gate_rows.shape[0]
        x_sparse = sparsify_input(x, float(self.input_thresholds[layer]))
        live_cols = np.flatnonzero(x_sparse != 0.0)
        # Column-skipping GEMV: only live input columns contribute.
        h1 = self._act(lw.w_gate_rows[:, live_cols] @ x_sparse[live_cols])
        h2 = lw.w_up_rows[:, live_cols] @ x_sparse[live_cols]
        h3 = h1 * h2
        live_rows = np.flatnonzero(h3 != 0.0)
        out = h3[live_rows] @ lw.w_down_rows[live_rows]
        self.stats.calls += 1
        self.stats.rows_total += k
        self.stats.rows_skipped_down += k - len(live_rows)
        self.cols_total += x.shape[0]
        self.cols_skipped += x.shape[0] - len(live_cols)
        return out.astype(np.float32)


def calibrate_input_thresholds(
    mlp_inputs_per_layer: Sequence[np.ndarray],
    target_sparsity: float,
) -> np.ndarray:
    """Per-layer thresholds from stacks of recorded MLP inputs."""
    return np.array(
        [
            input_threshold_for_sparsity(np.asarray(x), target_sparsity)
            for x in mlp_inputs_per_layer
        ],
        dtype=np.float64,
    )

"""Random-skip baseline (paper Section V-C, in-text).

"Note that random selection with the 90% activation sparsity, instead of
the prediction, resulted in 0% accuracy."  This executor reproduces that
control: skip a uniformly random subset of gate rows at the model's
nominal sparsity level, destroying the correlation between skipped rows
and actually-dead neurons.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..model.mlp import MLPStats, activation_fn
from ..model.weights import ModelWeights


@dataclass
class RandomSkipMLP:
    """Skips a random ``skip_fraction`` of rows per call."""

    weights: ModelWeights
    skip_fraction: float = 0.9
    seed: int = 0
    stats: MLPStats = field(default_factory=MLPStats)

    def __post_init__(self):
        if not 0.0 <= self.skip_fraction <= 1.0:
            raise ValueError(
                f"skip_fraction must be in [0,1], got {self.skip_fraction}"
            )
        cfg = self.weights.config
        self._act = activation_fn(cfg.activation, cfg.fatrelu_threshold)
        self._rng = np.random.default_rng(self.seed)

    def run(self, layer: int, x: np.ndarray) -> np.ndarray:
        lw = self.weights.layers[layer]
        k = lw.w_gate_rows.shape[0]
        live = np.flatnonzero(self._rng.random(k) >= self.skip_fraction)
        h1 = self._act(lw.w_gate_rows[live] @ x)
        h3 = h1 * (lw.w_up_rows[live] @ x)
        out = h3 @ lw.w_down_rows[live]
        self.stats.calls += 1
        self.stats.rows_total += k
        skipped = k - len(live)
        self.stats.rows_skipped_gate += skipped
        self.stats.rows_skipped_up += skipped
        self.stats.rows_skipped_down += skipped
        return out.astype(np.float32)

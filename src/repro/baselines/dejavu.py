"""DejaVu-style trained activation-sparsity predictor (paper Section II).

DejaVu attaches a small two-layer fully-connected network to every MLP
block and trains it to predict which gate activations will be zero.
PowerInfer adopts this predictor.  We reproduce it faithfully -- including
the part SparseInfer criticises: it must be *trained* on activation traces
of the target model, it occupies ``(d*r + r*k) * dtype`` bytes per layer,
and it costs ``d*r + r*k`` MACs per token per layer.

The predictor is a per-layer ``sigmoid(relu(x @ A) @ B)`` scoring head
trained with binary cross entropy against the ground-truth sparsity mask;
a decision threshold trades precision for recall (PowerInfer ships
precision-biased predictors so live neurons are rarely dropped).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..autograd.optim import Adam
from ..autograd.tensor import Tensor, parameter
from ..model.inference import MLPTrace


@dataclass
class DejaVuTrainConfig:
    """Hyper-parameters of predictor training."""

    rank: int = 32
    steps: int = 150
    lr: float = 3e-3
    batch_size: int = 64
    decision_threshold: float = 0.5

    def __post_init__(self):
        if self.rank <= 0:
            raise ValueError(f"rank must be positive, got {self.rank}")
        if not 0.0 < self.decision_threshold < 1.0:
            raise ValueError(
                f"decision_threshold must be in (0,1), got {self.decision_threshold}"
            )


def _bce_with_logits(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Numerically-stable mean binary cross entropy."""
    z = logits
    # log(1 + exp(z)) = relu(z) + log(1 + exp(-|z|))
    softplus = z.relu() + ((z.abs() * -1.0).exp() + 1.0).log()
    loss = softplus - z * targets
    return loss.mean()


@dataclass
class LayerPredictorWeights:
    """One layer's trained FC predictor."""

    a: np.ndarray  # (d, rank)
    b: np.ndarray  # (rank, k)

    @property
    def nbytes_fp16(self) -> int:
        return 2 * (self.a.size + self.b.size)

    def scores(self, x: np.ndarray) -> np.ndarray:
        """Sparsity logits for one input vector: ``relu(x A) B``."""
        hidden = np.maximum(x @ self.a, 0.0)
        return hidden @ self.b


class DejaVuPredictor:
    """The trained low-rank predictor over all layers of one model."""

    def __init__(self, layers: Sequence[LayerPredictorWeights],
                 decision_threshold: float = 0.5):
        if not layers:
            raise ValueError("need at least one layer predictor")
        self.layers = list(layers)
        self.decision_threshold = decision_threshold

    @property
    def n_layers(self) -> int:
        return len(self.layers)

    @property
    def nbytes(self) -> int:
        """FP16 resident footprint (Section V-A.2 comparison)."""
        return sum(l.nbytes_fp16 for l in self.layers)

    def predict(self, layer: int, x: np.ndarray) -> np.ndarray:
        """Boolean skip mask (True = predicted sparse) for one vector."""
        logits = self.layers[layer].scores(x)
        probs = 1.0 / (1.0 + np.exp(-logits))
        return probs > self.decision_threshold

    def with_threshold(self, threshold: float) -> "DejaVuPredictor":
        return DejaVuPredictor(self.layers, threshold)


def group_traces_by_layer(traces: Sequence[MLPTrace],
                          n_layers: int) -> list:
    """Split a trace stream into per-layer (X, sparse-mask) training sets."""
    xs: list = [[] for _ in range(n_layers)]
    ys: list = [[] for _ in range(n_layers)]
    for trace in traces:
        xs[trace.layer].append(trace.x)
        ys[trace.layer].append(trace.gate_preact <= 0.0)
    out = []
    for layer in range(n_layers):
        if not xs[layer]:
            raise ValueError(f"no traces collected for layer {layer}")
        out.append(
            (np.stack(xs[layer]), np.stack(ys[layer]).astype(np.float32))
        )
    return out


def train_dejavu_predictor(
    traces: Sequence[MLPTrace],
    n_layers: int,
    config: Optional[DejaVuTrainConfig] = None,
    seed: int = 0,
) -> DejaVuPredictor:
    """Train one FC predictor per layer from dense-engine traces.

    This is exactly the overhead SparseInfer eliminates: a per-model,
    per-quantisation training run plus resident predictor weights.
    """
    config = config or DejaVuTrainConfig()
    datasets = group_traces_by_layer(traces, n_layers)
    rng = np.random.default_rng(seed)
    layer_weights = []
    for layer, (x_all, y_all) in enumerate(datasets):
        d = x_all.shape[1]
        k = y_all.shape[1]
        a = parameter((d, config.rank), rng, 0.05, f"dejavu{layer}.a")
        b = parameter((config.rank, k), rng, 0.05, f"dejavu{layer}.b")
        optimizer = Adam([a, b], lr=config.lr)
        n = x_all.shape[0]
        for step in range(config.steps):
            idx = rng.integers(0, n, size=min(config.batch_size, n))
            xb = Tensor(x_all[idx])
            logits = (xb @ a).relu() @ b
            loss = _bce_with_logits(logits, y_all[idx])
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            del step
        layer_weights.append(
            LayerPredictorWeights(a=a.data.copy(), b=b.data.copy())
        )
    return DejaVuPredictor(layer_weights, config.decision_threshold)

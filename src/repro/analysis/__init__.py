"""``repro.analysis``: AST-based invariant linter for this repo.

The runtime property suites prove the serving stack's guarantees hold
*today*; this package machine-checks the **source-level rules** that
keep them true tomorrow:

========================  ==================================================
rule id                   guards
========================  ==================================================
``rng-purity``            bit-identity: no unseeded RNG anywhere, no
                          wall-clock reads in engine paths
``slot-pairing``          ``free + in_use + cached == n_pages``: every
                          allocate/fork/revive reaches a release on normal
                          and exception paths; double releases flagged
``scalar-loop``           vectorised hot paths: no per-sequence Python
                          loops in registered decode/prefill functions
``telemetry-docs``        every ``ServeReport`` field documented in
                          ``docs/serving.md`` and exercised by reporting
                          or tests
``docs-knobs``            every engine/scheduler knob documented in
                          ``docs/serving.md``
========================  ==================================================

Run it with ``python -m repro.analysis`` (exit 0 = clean); silence a
finding inline with ``# repro: ignore[rule-id]`` or accept it in
``analysis_baseline.txt`` with a justification.  Full catalog:
``docs/analysis.md``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .core import (
    AnalysisReport,
    Baseline,
    DEFAULT_BASELINE_NAME,
    Finding,
    Project,
    Rule,
    make_fingerprint,
    run_analysis,
)
from .rules_docs import DocsKnobsRule
from .rules_loops import ScalarLoopRule
from .rules_purity import RngPurityRule
from .rules_slots import SlotPairingRule
from .rules_telemetry import TelemetryDocsRule

__all__ = [
    "AnalysisReport",
    "Baseline",
    "DEFAULT_BASELINE_NAME",
    "DocsKnobsRule",
    "Finding",
    "Project",
    "RngPurityRule",
    "Rule",
    "ScalarLoopRule",
    "SlotPairingRule",
    "TelemetryDocsRule",
    "default_rules",
    "make_fingerprint",
    "run_analysis",
]


def default_rules() -> List[Rule]:
    """Fresh instances of the full project rule set, in catalog order."""
    return [
        RngPurityRule(),
        SlotPairingRule(),
        ScalarLoopRule(),
        TelemetryDocsRule(),
        DocsKnobsRule(),
    ]


def rules_by_id() -> Dict[str, Rule]:
    return {rule.rule_id: rule for rule in default_rules()}

"""``rng-purity``: no unseeded randomness or wall-clock reads in engine code.

The repo's headline guarantees -- batch=1 **bit-identical** to
``build_engine``, batch>1 **token-identical** -- only hold if the model
and serving layers are pure functions of their inputs.  Two classes of
impurity can silently break that:

* **Unseeded RNG.**  ``np.random.rand()`` / the legacy ``np.random.*``
  module functions / the stdlib ``random`` module draw from ambient
  process state.  Randomness must flow in as an explicitly seeded
  ``np.random.Generator`` (``np.random.default_rng(seed)``), which is
  how every workload generator and the sampler already work.  Unseeded
  draws are flagged *everywhere* the analyzer looks (``src``,
  ``benchmarks``, ``examples``): a benchmark that cannot be replayed
  bit-for-bit is not evidence.

* **Wall-clock reads.**  ``time.time()`` / ``datetime.now()`` inside
  the engine paths (``src/repro/model``, ``src/repro/serving``,
  ``src/repro/core``) would make decode behaviour time-dependent.
  ``time.perf_counter()`` / ``monotonic()`` stay legal: they only feed
  *telemetry* (latency fields on ``ServeReport``), never control flow
  over tokens, and the scheduler's ITL/TTFT accounting depends on them.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Sequence, Tuple

from .core import Finding, Project, Rule

#: Legacy module-level numpy RNG entry points (all read/advance the
#: hidden global state).
_NP_LEGACY = frozenset({
    "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "seed", "get_state", "set_state", "shuffle", "permutation",
    "choice", "bytes", "uniform", "normal", "standard_normal", "binomial",
    "poisson", "beta", "gamma", "exponential", "lognormal", "laplace",
    "multinomial", "multivariate_normal", "geometric", "triangular",
})

#: numpy bit generators that seed from the OS when called with no args.
_NP_BITGENS = frozenset({"PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64"})

#: stdlib ``random`` module functions backed by the hidden global Random.
_STDLIB_RANDOM = frozenset({
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "shuffle", "sample", "seed", "gauss", "normalvariate", "betavariate",
    "expovariate", "lognormvariate", "vonmisesvariate", "paretovariate",
    "weibullvariate", "getrandbits", "triangular",
})

#: Wall-clock reads (``time`` module attr names).
_WALL_CLOCK = frozenset({"time", "time_ns"})

#: Engine paths where wall-clock reads are forbidden outright.
_ENGINE_PREFIXES = (
    "src/repro/model/", "src/repro/serving/", "src/repro/core/",
)


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _Visitor(ast.NodeVisitor):
    def __init__(self, rule: "RngPurityRule", relpath: str,
                 engine_path: bool):
        self.rule = rule
        self.relpath = relpath
        self.engine_path = engine_path
        self.findings: List[Finding] = []
        self._stack: List[str] = []
        self._np_aliases = {"numpy"}
        self._time_imported = False
        self._random_imported = False

    @property
    def _context(self) -> str:
        return ".".join(self._stack) if self._stack else "<module>"

    def _emit(self, line: int, message: str, detail: str) -> None:
        self.findings.append(self.rule.finding(
            self.relpath, line, message, self._context, detail,
        ))

    # -- imports -----------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "numpy":
                self._np_aliases.add(alias.asname or "numpy")
            elif alias.name == "numpy.random" and alias.asname:
                self._np_aliases.add(alias.asname + "!random")
            elif alias.name == "time" and alias.asname is None:
                self._time_imported = True
            elif alias.name == "random" and alias.asname is None:
                self._random_imported = True
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        names = {alias.name for alias in node.names}
        if node.module == "numpy.random":
            for bad in sorted(names & (_NP_LEGACY | _NP_BITGENS)):
                self._emit(
                    node.lineno,
                    f"import of numpy.random.{bad}: legacy global-state "
                    "RNG; thread a seeded np.random.default_rng(seed) "
                    "Generator through instead",
                    f"import:{bad}",
                )
        elif node.module == "random":
            for bad in sorted(names & _STDLIB_RANDOM):
                self._emit(
                    node.lineno,
                    f"import of random.{bad}: stdlib global-state RNG; "
                    "use a seeded np.random.default_rng(seed) Generator",
                    f"import:{bad}",
                )
        elif node.module == "time" and self.engine_path:
            for bad in sorted(names & _WALL_CLOCK):
                self._emit(
                    node.lineno,
                    f"import of time.{bad}: wall-clock read in an engine "
                    "path; inject a clock (or use perf_counter for "
                    "telemetry only)",
                    f"import:{bad}",
                )
        self.generic_visit(node)

    # -- scopes ------------------------------------------------------------

    def _visit_scope(self, node) -> None:
        self._stack.append(node.name)
        self.generic_visit(node)
        self._stack.pop()

    visit_FunctionDef = _visit_scope
    visit_AsyncFunctionDef = _visit_scope
    visit_ClassDef = _visit_scope

    # -- calls -------------------------------------------------------------

    def _np_random_attr(self, dotted: str) -> Optional[str]:
        """``'rand'`` for ``np.random.rand`` etc., else None."""
        parts = dotted.split(".")
        if len(parts) >= 3 and parts[0] in self._np_aliases \
                and parts[-2] == "random":
            return parts[-1]
        if len(parts) == 2 and (parts[0] + "!random") in self._np_aliases:
            return parts[-1]
        return None

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if dotted is not None:
            self._check_call(node, dotted)
        self.generic_visit(node)

    def _check_call(self, node: ast.Call, dotted: str) -> None:
        no_args = not node.args and not node.keywords
        np_attr = self._np_random_attr(dotted)
        if np_attr is not None:
            if np_attr in _NP_LEGACY:
                self._emit(
                    node.lineno,
                    f"{dotted}(): legacy global-state numpy RNG; thread a "
                    "seeded np.random.default_rng(seed) Generator through "
                    "instead",
                    dotted,
                )
            elif np_attr == "default_rng" and no_args:
                self._emit(
                    node.lineno,
                    f"{dotted}() without a seed draws entropy from the OS; "
                    "pass an explicit seed so runs are replayable",
                    dotted,
                )
            elif np_attr in _NP_BITGENS and no_args:
                self._emit(
                    node.lineno,
                    f"{dotted}() without a seed draws entropy from the OS; "
                    "pass an explicit seed so runs are replayable",
                    dotted,
                )
            return
        parts = dotted.split(".")
        if self._random_imported and len(parts) == 2 \
                and parts[0] == "random":
            if parts[1] in _STDLIB_RANDOM:
                self._emit(
                    node.lineno,
                    f"{dotted}(): stdlib global-state RNG; use a seeded "
                    "np.random.default_rng(seed) Generator",
                    dotted,
                )
            elif parts[1] == "Random" and no_args:
                self._emit(
                    node.lineno,
                    "random.Random() without a seed draws entropy from "
                    "the OS; pass an explicit seed",
                    dotted,
                )
            return
        if self.engine_path:
            if self._time_imported and len(parts) == 2 \
                    and parts[0] == "time" and parts[1] in _WALL_CLOCK:
                self._emit(
                    node.lineno,
                    f"{dotted}(): wall-clock read in an engine path makes "
                    "decode state time-dependent; use time.perf_counter() "
                    "for telemetry or inject a clock",
                    dotted,
                )
            elif len(parts) >= 2 and parts[-1] in ("now", "utcnow", "today") \
                    and any(p in ("datetime", "date") for p in parts[:-1]):
                self._emit(
                    node.lineno,
                    f"{dotted}(): wall-clock read in an engine path; "
                    "inject a clock instead",
                    dotted,
                )


class RngPurityRule(Rule):
    """No unseeded RNG anywhere; no wall-clock reads in engine paths."""

    rule_id = "rng-purity"
    description = (
        "unseeded np.random.*/random.* draws anywhere, and "
        "time.time()/datetime.now() inside src/repro/{model,serving,core}, "
        "break the bit-identity guarantees"
    )

    def __init__(self, engine_prefixes: Sequence[str] = _ENGINE_PREFIXES):
        self.engine_prefixes: Tuple[str, ...] = tuple(engine_prefixes)

    def check(self, project: Project) -> Iterator[Finding]:
        for relpath in project.iter_python_files():
            tree = project.tree(relpath)
            if tree is None:
                continue
            visitor = _Visitor(
                self, relpath,
                engine_path=relpath.startswith(self.engine_prefixes),
            )
            visitor.visit(tree)
            yield from visitor.findings

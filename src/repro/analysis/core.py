"""Framework plumbing for the repo's AST invariant linter.

The moving parts, in the order the runner applies them:

``Project``
    Lazy file/AST cache rooted at the repo checkout.  Rules never read
    the filesystem directly -- everything goes through the project, so
    tests can point the same rules at a temporary tree (that is how the
    docs-freshness acceptance test edits a *copy* of ``docs/serving.md``
    without touching the real one).

``Rule`` / ``Finding``
    A rule walks the project and yields findings.  Every finding
    carries a ``file:line`` anchor, the rule id, a human message, and a
    *fingerprint* -- a line-number-free identity
    (``path::rule::context::detail``) that survives unrelated edits, so
    the baseline file does not churn when code above a finding moves.

Suppressions
    A finding is silenced by ``# repro: ignore[rule-id]`` on its line
    (or on a standalone comment line directly above it).  ``ignore``
    with no bracket silences every rule on that line; trailing prose
    after the bracket (``-- why``) is encouraged and ignored by the
    parser.

Baseline
    ``analysis_baseline.txt`` at the project root lists fingerprints of
    *intentionally accepted* findings, one per line, each with a ``#``
    justification.  Baselined findings do not fail the run; baseline
    entries that no longer match anything are reported as stale
    warnings so the file cannot rot silently.

``run_analysis`` ties it together and returns an ``AnalysisReport``;
``python -m repro.analysis`` (see ``__main__``) turns that into exit
codes for ``scripts/check.sh``.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

#: Directories under the project root that the runner scans for python
#: sources.  ``tests/`` is deliberately absent: tests may monkeypatch
#: clocks and exercise failure shapes the rules exist to forbid.
SCAN_DIRS = ("src", "benchmarks", "examples")

_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*ignore(?:\[(?P<rules>[^\]]*)\])?"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation anchored at ``path:line``."""

    rule: str
    path: str          # project-relative posix path
    line: int
    message: str
    fingerprint: str   # line-free identity used by the baseline file

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def make_fingerprint(path: str, rule: str, context: str, detail: str) -> str:
    """The canonical ``path::rule::context::detail`` baseline identity.

    ``context`` is usually the enclosing qualified function name (or
    ``<module>``); ``detail`` a rule-chosen stable token such as the
    offending call, loop iterable, knob, or field name.  Line numbers
    are deliberately excluded.
    """
    return "::".join((path, rule, context, detail))


class Rule:
    """Base class: subclasses set ``rule_id``/``description``, implement
    :meth:`check`."""

    rule_id: str = "?"
    description: str = ""

    def check(self, project: "Project") -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, path: str, line: int, message: str,
                context: str, detail: str) -> Finding:
        return Finding(
            rule=self.rule_id, path=path, line=line, message=message,
            fingerprint=make_fingerprint(path, self.rule_id, context, detail),
        )


class Project:
    """A source tree plus lazy text/AST caches, addressed by relpath."""

    def __init__(self, root: Path):
        self.root = Path(root)
        self._text: Dict[str, Optional[str]] = {}
        self._tree: Dict[str, Optional[ast.AST]] = {}
        self._suppressions: Dict[str, Dict[int, Optional[Set[str]]]] = {}

    def path(self, relpath: str) -> Path:
        return self.root / relpath

    def has(self, relpath: str) -> bool:
        return self.path(relpath).is_file()

    def text(self, relpath: str) -> Optional[str]:
        """File contents, or None when the file does not exist."""
        if relpath not in self._text:
            p = self.path(relpath)
            self._text[relpath] = (
                p.read_text(encoding="utf-8") if p.is_file() else None
            )
        return self._text[relpath]

    def tree(self, relpath: str) -> Optional[ast.AST]:
        """Parsed AST, or None when the file is missing or unparsable.

        Parse failures surface as a ``syntax-error`` finding from the
        runner, not an exception, so one broken file cannot hide every
        other finding.
        """
        if relpath not in self._tree:
            src = self.text(relpath)
            try:
                self._tree[relpath] = (
                    ast.parse(src, filename=relpath)
                    if src is not None else None
                )
            except SyntaxError:
                self._tree[relpath] = None
        return self._tree[relpath]

    def iter_python_files(self) -> List[str]:
        """Sorted project-relative paths of every analyzable source."""
        out: List[str] = []
        for top in SCAN_DIRS:
            base = self.root / top
            if not base.is_dir():
                continue
            for p in sorted(base.rglob("*.py")):
                out.append(p.relative_to(self.root).as_posix())
        return out

    def iter_test_files(self) -> List[str]:
        base = self.root / "tests"
        if not base.is_dir():
            return []
        return [
            p.relative_to(self.root).as_posix()
            for p in sorted(base.rglob("*.py"))
        ]

    # -- suppressions ------------------------------------------------------

    def _suppression_map(self, relpath: str) -> Dict[int, Optional[Set[str]]]:
        """line -> suppressed rule ids (None = all rules)."""
        if relpath in self._suppressions:
            return self._suppressions[relpath]
        table: Dict[int, Optional[Set[str]]] = {}
        src = self.text(relpath)
        if src is not None:
            for lineno, line in enumerate(src.splitlines(), start=1):
                m = _SUPPRESS_RE.search(line)
                if not m:
                    continue
                rules_txt = m.group("rules")
                rules: Optional[Set[str]]
                if rules_txt is None or rules_txt.strip() in ("", "*"):
                    rules = None
                else:
                    rules = {
                        r.strip() for r in rules_txt.split(",") if r.strip()
                    }
                targets = [lineno]
                # A standalone comment line suppresses the next line too.
                if line.split("#", 1)[0].strip() == "":
                    targets.append(lineno + 1)
                for target in targets:
                    prev = table.get(target, set())
                    if rules is None or prev is None:
                        table[target] = None
                    else:
                        table[target] = set(prev) | rules
        self._suppressions[relpath] = table
        return table

    def is_suppressed(self, finding: Finding) -> bool:
        rules = self._suppression_map(finding.path).get(finding.line, set())
        return rules is None or finding.rule in (rules or set())


# -- baseline file ---------------------------------------------------------

DEFAULT_BASELINE_NAME = "analysis_baseline.txt"


@dataclass
class Baseline:
    """Parsed ``analysis_baseline.txt``: fingerprint -> justification."""

    entries: Dict[str, str] = field(default_factory=dict)
    path: Optional[Path] = None

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        entries: Dict[str, str] = {}
        if path.is_file():
            for raw in path.read_text(encoding="utf-8").splitlines():
                line = raw.strip()
                if not line or line.startswith("#"):
                    continue
                fingerprint, _, justification = line.partition("#")
                fingerprint = fingerprint.strip()
                if fingerprint:
                    entries[fingerprint] = justification.strip()
        return cls(entries=entries, path=path)

    def covers(self, finding: Finding) -> bool:
        return finding.fingerprint in self.entries

    def render(self) -> str:
        lines = [
            "# repro.analysis baseline: intentionally-accepted findings.",
            "# One fingerprint per line; the trailing comment is the",
            "# justification.  Regenerate with:",
            "#   python -m repro.analysis --write-baseline",
            "",
        ]
        for fingerprint in sorted(self.entries):
            justification = self.entries[fingerprint] or "TODO: justify"
            lines.append(f"{fingerprint}  # {justification}")
        return "\n".join(lines) + "\n"


@dataclass
class AnalysisReport:
    """Outcome of one :func:`run_analysis` pass."""

    findings: List[Finding] = field(default_factory=list)     # actionable
    baselined: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    stale_baseline: List[str] = field(default_factory=list)   # fingerprints
    files_checked: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings


class _SyntaxErrorRule(Rule):
    """Internal: unparsable sources are findings, not crashes."""

    rule_id = "syntax-error"
    description = "source file fails to parse"

    def check(self, project: Project) -> Iterator[Finding]:
        for relpath in project.iter_python_files():
            if project.text(relpath) is not None and \
                    project.tree(relpath) is None:
                yield self.finding(
                    relpath, 1, "file does not parse as python",
                    context="<module>", detail="parse",
                )


def run_analysis(
    root: Path,
    rules: Sequence[Rule],
    baseline: Optional[Baseline] = None,
) -> AnalysisReport:
    """Run ``rules`` over the tree at ``root``, applying suppressions and
    the optional baseline.  Deterministic: findings sort by location."""
    project = Project(root)
    report = AnalysisReport(files_checked=len(project.iter_python_files()))
    all_findings: List[Finding] = []
    for rule in (_SyntaxErrorRule(), *rules):
        all_findings.extend(rule.check(project))
    all_findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))

    matched: Set[str] = set()
    for finding in all_findings:
        if project.is_suppressed(finding):
            report.suppressed.append(finding)
        elif baseline is not None and baseline.covers(finding):
            matched.add(finding.fingerprint)
            report.baselined.append(finding)
        else:
            report.findings.append(finding)
    if baseline is not None:
        report.stale_baseline = sorted(
            set(baseline.entries) - matched
        )
    return report

"""CLI for the invariant linter: ``python -m repro.analysis``.

Exit codes:

* ``0`` -- clean (every finding suppressed inline or baselined);
* ``1`` -- at least one actionable finding (printed ``path:line:
  [rule-id] message``);
* ``2`` -- usage/configuration error (unknown rule id, unreadable
  root).

``scripts/check.sh`` runs the bare invocation as a tier-1 gate.  Useful
flags: ``--rules a,b`` to run a subset, ``--list-rules`` for the
catalog, ``--no-baseline`` to see accepted findings too, and
``--write-baseline`` to regenerate ``analysis_baseline.txt`` (existing
justifications are preserved; new entries get a TODO marker to fill
in).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from . import Baseline, DEFAULT_BASELINE_NAME, default_rules, run_analysis


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST invariant linter for the repro serving stack "
                    "(rule catalog: docs/analysis.md)",
    )
    parser.add_argument(
        "--root", default=".",
        help="project root to analyze (default: current directory)",
    )
    parser.add_argument(
        "--baseline", default=None,
        help=f"baseline file (default: <root>/{DEFAULT_BASELINE_NAME})",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline file: report accepted findings too",
    )
    parser.add_argument(
        "--rules", default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="rewrite the baseline to accept every current finding "
             "(existing justifications are kept)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    rules = default_rules()
    if args.list_rules:
        width = max(len(r.rule_id) for r in rules)
        for rule in rules:
            print(f"{rule.rule_id:<{width}}  {rule.description}")
        return 0

    if args.rules is not None:
        wanted = [r.strip() for r in args.rules.split(",") if r.strip()]
        known = {rule.rule_id: rule for rule in rules}
        unknown = [r for r in wanted if r not in known]
        if unknown:
            print(
                f"unknown rule id(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})",
                file=sys.stderr,
            )
            return 2
        rules = [known[r] for r in wanted]

    root = Path(args.root).resolve()
    if not root.is_dir():
        print(f"not a directory: {root}", file=sys.stderr)
        return 2
    baseline_path = (
        Path(args.baseline) if args.baseline is not None
        else root / DEFAULT_BASELINE_NAME
    )
    baseline = None if args.no_baseline else Baseline.load(baseline_path)

    report = run_analysis(root, rules, baseline=baseline)

    if args.write_baseline:
        old = Baseline.load(baseline_path)
        entries = {}
        for finding in (*report.findings, *report.baselined):
            entries[finding.fingerprint] = old.entries.get(
                finding.fingerprint, ""
            )
        baseline_path.write_text(
            Baseline(entries=entries).render(), encoding="utf-8"
        )
        print(
            f"wrote {len(entries)} baseline entr"
            f"{'y' if len(entries) == 1 else 'ies'} to {baseline_path}"
        )
        return 0

    for finding in report.findings:
        print(finding.render())
    for fingerprint in report.stale_baseline:
        print(
            f"warning: stale baseline entry (no longer matches anything): "
            f"{fingerprint}",
            file=sys.stderr,
        )
    status = "clean" if report.clean else \
        f"{len(report.findings)} finding(s)"
    print(
        f"repro.analysis: {status} "
        f"({report.files_checked} files, {len(report.baselined)} "
        f"baselined, {len(report.suppressed)} suppressed)"
    )
    return 0 if report.clean else 1


if __name__ == "__main__":
    sys.exit(main())

"""``docs-knobs``: engine/scheduler knobs must be documented.

Successor to the fragile heredoc that used to live in
``scripts/check.sh``: every parameter of
``repro.core.engine.build_batched_engine`` and of
``repro.serving.scheduler.ContinuousBatchingScheduler.__init__`` must
appear backticked in the ``docs/serving.md`` knob tables, so a knob
added (or renamed) without documentation fails the tier-1 gate.

Unlike the heredoc, this rule reads signatures from the AST instead of
importing the package, so it needs no ``PYTHONPATH`` gymnastics and can
run against the temporary doc-edit trees the acceptance tests build.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Sequence, Tuple

from .core import Finding, Project, Rule

DOCS_PATH = "docs/serving.md"

#: (relpath, qualname) signatures whose parameters the docs must cover.
KNOB_SOURCES: Tuple[Tuple[str, str], ...] = (
    ("src/repro/core/engine.py", "build_batched_engine"),
    ("src/repro/serving/scheduler.py",
     "ContinuousBatchingScheduler.__init__"),
)


def _find_function(tree: ast.AST, qualname: str) -> Optional[ast.FunctionDef]:
    parts = qualname.split(".")
    node: ast.AST = tree
    for i, part in enumerate(parts):
        next_node = None
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)) and child.name == part:
                next_node = child
                break
        if next_node is None:
            return None
        node = next_node
    return node if isinstance(node, ast.FunctionDef) else None


def _param_names(func: ast.FunctionDef) -> List[str]:
    args = func.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if args.vararg:
        names.append(args.vararg.arg)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return [n for n in names if n not in ("self", "cls")]


class DocsKnobsRule(Rule):
    """Engine/scheduler signature parameters vs docs/serving.md."""

    rule_id = "docs-knobs"
    description = (
        "every build_batched_engine and ContinuousBatchingScheduler "
        "knob must appear in the docs/serving.md knob tables"
    )

    def __init__(
        self,
        docs_path: str = DOCS_PATH,
        sources: Sequence[Tuple[str, str]] = KNOB_SOURCES,
    ):
        self.docs_path = docs_path
        self.sources = tuple(sources)

    def check(self, project: Project) -> Iterator[Finding]:
        docs = project.text(self.docs_path)
        if docs is None:
            yield self.finding(
                self.docs_path, 1,
                f"{self.docs_path} is missing; the engine/scheduler knob "
                "tables live there",
                "<docs>", "missing-docs",
            )
            docs = ""
        for relpath, qualname in self.sources:
            tree = project.tree(relpath)
            if tree is None:
                yield self.finding(
                    relpath, 1,
                    f"cannot parse {relpath}; knob freshness for "
                    f"{qualname} cannot be checked",
                    qualname, "missing-source",
                )
                continue
            func = _find_function(tree, qualname)
            if func is None:
                yield self.finding(
                    relpath, 1,
                    f"{qualname} not found in {relpath}; update the "
                    "docs-knobs rule's KNOB_SOURCES",
                    qualname, "missing-function",
                )
                continue
            for name in _param_names(func):
                if f"`{name}`" not in docs:
                    yield self.finding(
                        relpath, func.lineno,
                        f"knob {qualname}({name}=...) is not documented "
                        f"in {self.docs_path} (add a backticked `{name}` "
                        "row to the knob table)",
                        qualname, f"knob:{name}",
                    )

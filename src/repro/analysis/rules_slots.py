"""``slot-pairing``: every acquired KV slot must reach a release.

The page-pool invariant ``free + in_use + cached == n_pages`` is
enforced at runtime by the property suites, but the *source-level* rule
that keeps it true is ownership discipline in the serving layer: every
``allocate``/``fork``/``revive`` (and their ``*_slot`` engine wrappers)
hands back an owned slot that must end in exactly one
``release``/``release_slot`` -- on the normal path *and* when a compute
call in between raises.  This rule machine-checks that discipline with
a small flow-sensitive abstract interpreter per function:

* an **acquisition** creates an owned value; assigning it, storing it
  into a wrapper object (``seq = _ActiveSequence(slot=slot, ...)``), or
  re-binding it just grows the owner's *alias set*;
* ownership **transfers out** when an alias is returned, or passed to
  any non-compute call (``self.active.append(seq)``,
  ``self._finish_prompt(seq, ...)``) -- the callee or container is the
  owner now;
* a **release** closes the owner; a second release on a
  definitely-released owner is a *double-release* finding;
* calls in the **compute registry** (``prefill``, ``decode_step``, ...)
  are assumed to be able to raise.  Holding an owned, un-escaped slot
  across one is an *exception-path leak* unless an enclosing ``try``
  releases the slot in a handler or ``finally``;
* a function that can fall off the end (or ``return``/``raise``) while
  an owner may still be open is a *normal-path leak*.

The analysis is intraprocedural and deliberately approximate (joins are
may-unions over branch states; loops run once), which is the right
trade for a lint: it proves the shapes this repo actually uses and
flags the shapes that have bitten it -- discarded allocations, missing
exception paths, double releases.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .core import Finding, Project, Rule

ACQUIRE_METHODS = frozenset({
    "allocate", "allocate_slot", "fork", "fork_slot", "revive",
    "revive_slot",
})
RELEASE_METHODS = frozenset({"release", "release_slot"})
#: Engine/model entry points assumed to raise (shape/validation errors).
COMPUTE_METHODS = frozenset({
    "prefill", "decode_step", "generate", "_forward_single",
    "_forward_chunk",
})
DEFAULT_SCOPE = ("src/repro/serving/",)

OWNED, RELEASED, ESCAPED = "owned", "released", "escaped"


def _terminal_name(func: ast.AST) -> Optional[str]:
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _root_name(node: ast.AST) -> Optional[str]:
    """``seq`` for ``seq.slot`` / ``seq``; None for anything else."""
    while isinstance(node, ast.Attribute):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _arg_names(call: ast.Call) -> Set[str]:
    """Root names of every positional/keyword argument."""
    names: Set[str] = set()
    for arg in call.args:
        if isinstance(arg, ast.Starred):
            arg = arg.value
        root = _root_name(arg)
        if root:
            names.add(root)
    for kw in call.keywords:
        root = _root_name(kw.value)
        if root:
            names.add(root)
    return names


@dataclass
class _Owner:
    aliases: Set[str]
    statuses: Set[str]
    line: int
    label: str

    def copy(self) -> "_Owner":
        return _Owner(set(self.aliases), set(self.statuses),
                      self.line, self.label)


_State = Dict[int, _Owner]


def _copy_state(state: _State) -> _State:
    return {k: v.copy() for k, v in state.items()}


def _join(*states: _State) -> _State:
    out: _State = {}
    for state in states:
        for key, owner in state.items():
            if key in out:
                out[key].statuses |= owner.statuses
                out[key].aliases |= owner.aliases
            else:
                out[key] = owner.copy()
    return out


@dataclass
class _FuncAnalysis:
    rule: "SlotPairingRule"
    relpath: str
    qualname: str
    findings: List[Finding] = field(default_factory=list)
    _next_id: int = 0
    _emitted: Set[Tuple[int, str, int]] = field(default_factory=set)

    # -- finding emission --------------------------------------------------

    def _emit(self, line: int, kind: str, message: str, label: str) -> None:
        key = (line, kind, hash(label))
        if key in self._emitted:
            return
        self._emitted.add(key)
        self.findings.append(self.rule.finding(
            self.relpath, line, message, self.qualname,
            f"{kind}:{label}",
        ))

    # -- driver ------------------------------------------------------------

    def run(self, node: ast.FunctionDef) -> None:
        state: _State = {}
        self._visit_stmts(node.body, state, guards=frozenset())
        self._check_exit(state, node.body[-1].lineno if node.body else
                         node.lineno, reason="function exit")

    def _check_exit(self, state: _State, line: int, reason: str) -> None:
        for owner in state.values():
            if OWNED in owner.statuses:
                self._emit(
                    owner.line, "leak",
                    f"slot from {owner.label}() (line {owner.line}) may "
                    f"reach {reason} without release/release_slot",
                    owner.label,
                )
                owner.statuses.discard(OWNED)   # report each owner once

    # -- statement walk ----------------------------------------------------

    def _visit_stmts(self, stmts: Sequence[ast.stmt], state: _State,
                     guards: frozenset) -> None:
        for stmt in stmts:
            self._visit_stmt(stmt, state, guards)

    def _visit_stmt(self, stmt: ast.stmt, state: _State,
                    guards: frozenset) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return                      # nested scopes analyzed separately
        if isinstance(stmt, ast.Assign):
            self._do_assign(stmt.targets, stmt.value, state, guards)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._do_assign([stmt.target], stmt.value, state, guards)
        elif isinstance(stmt, ast.AugAssign):
            self._scan_expr(stmt.value, state, guards)
        elif isinstance(stmt, ast.Expr):
            value = stmt.value
            if isinstance(value, ast.Call) and \
                    _terminal_name(value.func) in self.rule.acquire:
                self._emit(
                    value.lineno, "discard",
                    f"result of {_terminal_name(value.func)}() is "
                    "discarded -- the acquired slot/pages leak "
                    "immediately; bind and release it",
                    _terminal_name(value.func) or "?",
                )
            else:
                self._scan_expr(value, state, guards)
        elif isinstance(stmt, ast.Return):
            self._do_return(stmt, state, guards)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._scan_expr(stmt.exc, state, guards)
            unguarded = {
                k: o for k, o in state.items()
                if not (o.aliases & guards)
            }
            self._check_exit(unguarded, stmt.lineno, reason="a raise")
        elif isinstance(stmt, ast.If):
            self._scan_expr(stmt.test, state, guards)
            s_then = _copy_state(state)
            s_else = _copy_state(state)
            self._visit_stmts(stmt.body, s_then, guards)
            self._visit_stmts(stmt.orelse, s_else, guards)
            state.clear()
            state.update(_join(s_then, s_else))
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._scan_expr(stmt.iter, state, guards)
            body_state = _copy_state(state)
            self._visit_stmts(stmt.body, body_state, guards)
            merged = _join(state, body_state)
            state.clear()
            state.update(merged)
            self._visit_stmts(stmt.orelse, state, guards)
        elif isinstance(stmt, ast.While):
            self._scan_expr(stmt.test, state, guards)
            body_state = _copy_state(state)
            self._visit_stmts(stmt.body, body_state, guards)
            merged = _join(state, body_state)
            state.clear()
            state.update(merged)
            self._visit_stmts(stmt.orelse, state, guards)
        elif isinstance(stmt, ast.Try):
            self._do_try(stmt, state, guards)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._scan_expr(item.context_expr, state, guards)
            self._visit_stmts(stmt.body, state, guards)
        elif isinstance(stmt, (ast.Assert, ast.Delete)):
            for value in ast.walk(stmt):
                if isinstance(value, ast.Call):
                    self._handle_call(value, state, guards)
        # Pass/Break/Continue/Import/Global: no ownership effect.

    def _do_try(self, stmt: ast.Try, state: _State,
                guards: frozenset) -> None:
        # Names a handler or finally releases guard compute calls in the
        # body: an exception there still reaches a release.
        released: Set[str] = set()
        for node in stmt.handlers + [ast.Module(body=stmt.finalbody,
                                                type_ignores=[])]:
            body = node.body
            for sub in body:
                for call in (n for n in ast.walk(sub)
                             if isinstance(n, ast.Call)):
                    if _terminal_name(call.func) in self.rule.release:
                        released |= _arg_names(call)
        pre = _copy_state(state)
        self._visit_stmts(stmt.body, state, guards | frozenset(released))
        self._visit_stmts(stmt.orelse, state, guards)
        handler_states = []
        for handler in stmt.handlers:
            hstate = _join(pre, state)
            self._visit_stmts(handler.body, hstate, guards)
            handler_states.append(hstate)
        merged = _join(state, *handler_states)
        state.clear()
        state.update(merged)
        self._visit_stmts(stmt.finalbody, state, guards)

    def _do_return(self, stmt: ast.Return, state: _State,
                   guards: frozenset) -> None:
        value = stmt.value
        if isinstance(value, ast.Call) and \
                _terminal_name(value.func) in self.rule.acquire:
            # ``return self.cache.allocate(...)``: ownership transfers
            # to the caller; nothing to track.
            for call in ast.walk(value):
                if isinstance(call, ast.Call) and call is not value:
                    self._handle_call(call, state, guards)
        elif value is not None:
            root = _root_name(value)
            if root:
                self._escape_alias(root, state)
            self._scan_expr(value, state, guards)
        self._check_exit(state, stmt.lineno, reason="a return")

    def _do_assign(self, targets: Sequence[ast.expr], value: ast.expr,
                   state: _State, guards: frozenset) -> None:
        target_names = {
            t.id for t in targets if isinstance(t, ast.Name)
        }
        # A name re-bound stops aliasing whatever it used to own.
        for owner in state.values():
            owner.aliases -= target_names

        if isinstance(value, ast.Call):
            name = _terminal_name(value.func)
            if name in self.rule.acquire:
                for call in ast.walk(value):
                    if isinstance(call, ast.Call) and call is not value:
                        self._handle_call(call, state, guards)
                self._next_id += 1
                state[self._next_id] = _Owner(
                    aliases=set(target_names) or {f"<anon{self._next_id}>"},
                    statuses={OWNED},
                    line=value.lineno,
                    label=name or "?",
                )
                return
            if name not in self.rule.release and \
                    name not in self.rule.compute:
                # Constructor-style transfer: ``seq =
                # _ActiveSequence(slot=slot)`` makes ``seq`` an alias of
                # the owned slot rather than an escape.
                args = _arg_names(value)
                transferred = False
                for owner in state.values():
                    if OWNED in owner.statuses and (owner.aliases & args):
                        owner.aliases |= target_names
                        transferred = True
                for call in ast.walk(value):
                    if isinstance(call, ast.Call) and (
                            call is not value or not transferred):
                        self._handle_call(call, state, guards)
                return
            self._scan_expr(value, state, guards)
            return
        root = _root_name(value) if isinstance(
            value, (ast.Name, ast.Attribute)) else None
        if root:
            for owner in state.values():
                if root in owner.aliases:
                    owner.aliases |= target_names
        self._scan_expr(value, state, guards)

    # -- expression / call handling ---------------------------------------

    def _scan_expr(self, expr: ast.expr, state: _State,
                   guards: frozenset) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                self._handle_call(node, state, guards)

    def _escape_alias(self, name: str, state: _State) -> None:
        for owner in state.values():
            if name in owner.aliases and OWNED in owner.statuses:
                owner.statuses.discard(OWNED)
                owner.statuses.add(ESCAPED)

    def _handle_call(self, call: ast.Call, state: _State,
                     guards: frozenset) -> None:
        name = _terminal_name(call.func)
        if name in self.rule.acquire:
            # Acquisition in a context that did not bind it (nested in a
            # larger expression): the handle is unreachable.
            self._emit(
                call.lineno, "discard",
                f"result of {name}() is not bound to a name -- the "
                "acquired slot/pages cannot be released",
                name or "?",
            )
            return
        args = _arg_names(call)
        if name in self.rule.release:
            for owner in state.values():
                if owner.aliases & args:
                    if owner.statuses == {RELEASED}:
                        self._emit(
                            call.lineno, "double-release",
                            f"slot from {owner.label}() (line "
                            f"{owner.line}) is already released on every "
                            "path reaching this second release",
                            owner.label,
                        )
                    owner.statuses.discard(OWNED)
                    owner.statuses.discard(ESCAPED)
                    owner.statuses.add(RELEASED)
            return
        if name in self.rule.compute:
            for owner in state.values():
                if OWNED in owner.statuses and not (owner.aliases & guards):
                    self._emit(
                        call.lineno, "exception-path",
                        f"slot from {owner.label}() (line {owner.line}) "
                        f"leaks if {name}() raises here; wrap the call in "
                        "try/except that releases the slot (and re-raises) "
                        "or a try/finally",
                        owner.label,
                    )
            return
        # Any other call an alias is passed to takes ownership.
        for arg_name in args:
            self._escape_alias(arg_name, state)


class SlotPairingRule(Rule):
    """Flow-sensitive allocate/fork/revive vs release pairing."""

    rule_id = "slot-pairing"
    description = (
        "every PagePool/cache allocate/fork/revive in serving code must "
        "reach a release on normal and exception paths; double releases "
        "are flagged"
    )

    def __init__(
        self,
        scope: Sequence[str] = DEFAULT_SCOPE,
        acquire: frozenset = ACQUIRE_METHODS,
        release: frozenset = RELEASE_METHODS,
        compute: frozenset = COMPUTE_METHODS,
    ):
        self.scope: Tuple[str, ...] = tuple(scope)
        self.acquire = acquire
        self.release = release
        self.compute = compute

    def check(self, project: Project) -> Iterator[Finding]:
        for relpath in project.iter_python_files():
            if not relpath.startswith(self.scope):
                continue
            tree = project.tree(relpath)
            if tree is None:
                continue
            yield from self._check_file(relpath, tree)

    def _check_file(self, relpath: str, tree: ast.AST) -> Iterator[Finding]:
        for qualname, func in _iter_functions(tree):
            analysis = _FuncAnalysis(self, relpath, qualname)
            analysis.run(func)
            yield from analysis.findings


def _iter_functions(tree: ast.AST) -> Iterator[Tuple[str, ast.FunctionDef]]:
    """(qualname, node) for every function, including methods/nested."""

    def walk(node: ast.AST, prefix: str) -> Iterator[Tuple[str, ast.AST]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                yield qual, child
                yield from walk(child, qual + ".")
            elif isinstance(child, ast.ClassDef):
                yield from walk(child, f"{prefix}{child.name}.")

    for qual, node in walk(tree, ""):
        if isinstance(node, ast.FunctionDef):
            yield qual, node

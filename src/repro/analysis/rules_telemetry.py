"""``telemetry-docs``: every ``ServeReport`` field is documented and used.

``ServeReport`` is the serving stack's public telemetry contract: every
benchmark assertion and capacity claim reads it.  A field that exists
in the dataclass but not in the ``docs/serving.md`` glossary is a knob
nobody can discover; a field no test or reporting helper ever touches
is a gauge nobody would notice breaking.  This rule machine-checks
both halves for each dataclass field of
``repro.serving.scheduler.ServeReport``:

1. the backticked field name appears in ``docs/serving.md``;
2. the field name appears (word-bounded) in ``src/repro/eval/
   reporting.py`` or somewhere under ``tests/``.

Pure AST + text matching -- the rule never imports the serving stack,
so it runs on any checkout (and on the temporary doc-edit copies the
acceptance tests build).
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Tuple

from .core import Finding, Project, Rule

SCHEDULER_PATH = "src/repro/serving/scheduler.py"
DOCS_PATH = "docs/serving.md"
REPORTING_PATH = "src/repro/eval/reporting.py"
REPORT_CLASS = "ServeReport"


def _dataclass_fields(tree: ast.AST, class_name: str) -> List[Tuple[str, int]]:
    """(field, lineno) for each annotated dataclass field, public first."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            return [
                (stmt.target.id, stmt.lineno)
                for stmt in node.body
                if isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and not stmt.target.id.startswith("_")
            ]
    return []


class TelemetryDocsRule(Rule):
    """ServeReport fields must be documented and exercised."""

    rule_id = "telemetry-docs"
    description = (
        "every ServeReport dataclass field must appear in the "
        "docs/serving.md glossary and in eval/reporting.py or a test"
    )

    def __init__(
        self,
        scheduler_path: str = SCHEDULER_PATH,
        docs_path: str = DOCS_PATH,
        reporting_path: str = REPORTING_PATH,
        report_class: str = REPORT_CLASS,
    ):
        self.scheduler_path = scheduler_path
        self.docs_path = docs_path
        self.reporting_path = reporting_path
        self.report_class = report_class

    def check(self, project: Project) -> Iterator[Finding]:
        tree = project.tree(self.scheduler_path)
        if tree is None:
            yield self.finding(
                self.scheduler_path, 1,
                f"cannot parse {self.scheduler_path}; the telemetry "
                "contract cannot be checked",
                self.report_class, "missing-source",
            )
            return
        fields = _dataclass_fields(tree, self.report_class)
        if not fields:
            yield self.finding(
                self.scheduler_path, 1,
                f"dataclass {self.report_class} not found in "
                f"{self.scheduler_path}; update the telemetry rule",
                self.report_class, "missing-class",
            )
            return
        docs = project.text(self.docs_path)
        if docs is None:
            yield self.finding(
                self.docs_path, 1,
                f"{self.docs_path} is missing; the {self.report_class} "
                "glossary lives there",
                self.report_class, "missing-docs",
            )
            docs = ""
        usage_sources = []
        reporting = project.text(self.reporting_path)
        if reporting is not None:
            usage_sources.append(reporting)
        for test_path in project.iter_test_files():
            text = project.text(test_path)
            if text is not None:
                usage_sources.append(text)
        usage_blob = "\n".join(usage_sources)

        for name, lineno in fields:
            if f"`{name}`" not in docs:
                yield self.finding(
                    self.scheduler_path, lineno,
                    f"{self.report_class}.{name} is not documented in the "
                    f"{self.docs_path} telemetry glossary (add a "
                    f"backticked `{name}` row)",
                    self.report_class, f"docs:{name}",
                )
            if not re.search(rf"\b{re.escape(name)}\b", usage_blob):
                yield self.finding(
                    self.scheduler_path, lineno,
                    f"{self.report_class}.{name} is never referenced by "
                    f"{self.reporting_path} or any test -- telemetry "
                    "nobody reads is telemetry nobody notices breaking",
                    self.report_class, f"usage:{name}",
                )

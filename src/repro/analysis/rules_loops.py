"""``scalar-loop``: Python loops over batch/sequence dims in hot paths.

The serving stack's performance story (PR 4 onwards) is that decode and
prefill hot functions are *vectorised*: one stacked GEMM per layer, not
``B`` scalar calls.  Drift back to per-sequence Python loops is easy to
introduce and hard to spot in review -- ROADMAP item 5 records exactly
one such survivor (the per-sequence greedy argmax in the scheduler
tick, seeded into ``analysis_baseline.txt``).

The rule keeps a registry of *hot functions* and, per function, the
identifiers that name its batch/sequence dimension.  Any ``for``
statement inside a registered function whose iterable mentions one of
those identifiers is flagged, unless every call in the loop body is
trivial bookkeeping (currently just ``slot.advance()``).  List/set/dict
comprehensions are not flagged: they build per-sequence *metadata*
(slot lists, rope tables), not per-sequence model compute.

Intentional scalar loops stay, visibly: the bit-identity contract paths
(token-by-token prefill, the ``attend_single`` fallback) carry inline
``# repro: ignore[scalar-loop]`` markers, and accepted-but-unfixed
loops live in the baseline with a justification.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, Mapping, Optional, Tuple

from .core import Finding, Project, Rule

#: (relpath, qualname) -> identifiers naming that function's batch or
#: sequence dimension.  Attribute chains are spelled dotted
#: (``self.active``).
HOT_FUNCTIONS: Dict[Tuple[str, str], FrozenSet[str]] = {
    ("src/repro/serving/engine.py", "BatchedEngine.decode_step"):
        frozenset({"slots", "token_ids"}),
    ("src/repro/serving/engine.py", "BatchedEngine.prefill"):
        frozenset({"prompt_ids"}),
    ("src/repro/serving/engine.py", "BatchedEngine._forward_chunk"):
        frozenset({"token_ids", "n_tokens"}),
    # Speculative self-drafting (PR 9): the shared decode body, the
    # aggressive-alpha draft step, the chunked verify pass, and the
    # scheduler's draft/verify driver must all stay batched -- a `for`
    # statement over these identifiers would mean per-sequence model
    # compute crept back into the speculation hot path.  KV rollback
    # (`truncate`) is page-table bookkeeping; looping it per position
    # or per dropped page with real work would defeat its O(pages)
    # contract.
    ("src/repro/serving/engine.py", "BatchedEngine._forward_batch"):
        frozenset({"slots", "token_ids"}),
    ("src/repro/serving/engine.py", "BatchedEngine.draft_step"):
        frozenset({"slots", "token_ids"}),
    ("src/repro/serving/engine.py", "BatchedEngine.verify_chunk"):
        frozenset({"token_ids"}),
    ("src/repro/serving/scheduler.py",
     "ContinuousBatchingScheduler._speculate"):
        frozenset({"drafters"}),
    ("src/repro/model/paged_kvcache.py", "PagedKVSlot.truncate"):
        frozenset({"dropped", "self.page_table"}),
    ("src/repro/serving/scheduler.py",
     "ContinuousBatchingScheduler.step"):
        frozenset({"self.active", "decoding", "slots"}),
    # Batched per-request sampling (PR 8): the (B, vocab) kernel call
    # and its scheduler driver must stay one vectorised pass per tick.
    # Per-row uniforms come from a comprehension over the request
    # streams (metadata, exempt); a `for` statement over these batch
    # identifiers would mean the per-sequence argmax loop grew back.
    ("src/repro/model/sampler.py", "BatchedSampler.sample"):
        frozenset({"logits", "configs", "request_ids", "rows"}),
    ("src/repro/model/sampler.py", "filtered_probs"):
        frozenset({"logits", "temperatures", "top_ks", "top_ps"}),
    ("src/repro/serving/scheduler.py",
     "ContinuousBatchingScheduler._sample_tokens"):
        frozenset({"seqs", "logits", "configs"}),
    # Seeded load generation (PR 10): arrival traces must be drawn as
    # vectorised batches (one exponential/cumsum call, batched thinning
    # candidates), never gap-by-gap -- a `for` statement over the gap
    # or candidate arrays would mean per-arrival RNG calls crept back
    # into trace construction.
    ("src/repro/serving/loadgen.py", "PoissonProcess.arrival_times"):
        frozenset({"gaps", "n"}),
    ("src/repro/serving/loadgen.py", "DiurnalProcess.arrival_times"):
        frozenset({"gaps", "cand", "keep", "kept"}),
}

#: Calls that do not count as per-element work (O(1) bookkeeping).
CHEAP_CALLS = frozenset({"advance"})


def _dotted(node: ast.AST) -> Optional[str]:
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _iter_identifiers(node: ast.AST) -> Iterator[str]:
    """Names and dotted attribute chains mentioned in an expression."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            yield sub.id
        elif isinstance(sub, ast.Attribute):
            dotted = _dotted(sub)
            if dotted is not None:
                yield dotted


def _body_is_cheap(node: ast.For) -> bool:
    for sub in node.body:
        for call in (n for n in ast.walk(sub) if isinstance(n, ast.Call)):
            name = call.func.attr if isinstance(call.func, ast.Attribute) \
                else getattr(call.func, "id", None)
            if name not in CHEAP_CALLS:
                return False
    return True


class ScalarLoopRule(Rule):
    """Per-sequence Python loops inside registered hot functions."""

    rule_id = "scalar-loop"
    description = (
        "Python for-loops iterating a batch/sequence dimension inside "
        "registered decode/prefill hot functions (the ROADMAP-item-5 "
        "drift class)"
    )

    def __init__(
        self,
        registry: Mapping[Tuple[str, str], FrozenSet[str]] = None,
    ):
        self.registry = dict(HOT_FUNCTIONS if registry is None else registry)

    def check(self, project: Project) -> Iterator[Finding]:
        by_path: Dict[str, Dict[str, FrozenSet[str]]] = {}
        for (relpath, qualname), names in self.registry.items():
            by_path.setdefault(relpath, {})[qualname] = names
        for relpath, funcs in sorted(by_path.items()):
            tree = project.tree(relpath)
            if tree is None:
                if project.text(relpath) is None:
                    yield self.finding(
                        relpath, 1,
                        f"registered hot-function file {relpath} is "
                        "missing; update the scalar-loop registry",
                        "<registry>", "missing-file",
                    )
                continue
            found = dict.fromkeys(funcs, False)
            for qualname, node in _walk_functions(tree):
                if qualname not in funcs:
                    continue
                found[qualname] = True
                yield from self._check_function(
                    relpath, qualname, node, funcs[qualname]
                )
            for qualname, present in found.items():
                if not present:
                    yield self.finding(
                        relpath, 1,
                        f"registered hot function {qualname} no longer "
                        "exists; update the scalar-loop registry",
                        qualname, "missing-function",
                    )

    def _check_function(
        self, relpath: str, qualname: str, node: ast.FunctionDef,
        batch_names: FrozenSet[str],
    ) -> Iterator[Finding]:
        for loop in _walk_loops(node):
            mentioned = set(_iter_identifiers(loop.iter)) & batch_names
            if not mentioned:
                continue
            if _body_is_cheap(loop):
                continue
            iter_src = ast.unparse(loop.iter)
            yield self.finding(
                relpath, loop.lineno,
                f"hot path {qualname} loops per-element over the "
                f"batch/sequence dimension ({iter_src}); vectorise over "
                "the batch (see docs/analysis.md)",
                qualname, iter_src,
            )


def _walk_functions(tree: ast.AST) -> Iterator[Tuple[str, ast.FunctionDef]]:
    def walk(node: ast.AST, prefix: str):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if isinstance(child, ast.FunctionDef):
                    yield f"{prefix}{child.name}", child
                yield from walk(child, f"{prefix}{child.name}.")
            elif isinstance(child, ast.ClassDef):
                yield from walk(child, f"{prefix}{child.name}.")
    yield from walk(tree, "")


def _walk_loops(func: ast.FunctionDef) -> Iterator[ast.For]:
    """For statements in ``func``, not descending into nested defs."""
    stack = list(func.body)
    while stack:
        node = stack.pop(0)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        if isinstance(node, ast.For):
            yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.stmt):
                stack.append(child)
            elif isinstance(child, (ast.For,)):
                stack.append(child)

"""SparseInfer reproduction: training-free activation-sparsity prediction
for fast LLM inference (Shin, Yang & Yi, DATE 2025).

Public API tour
---------------
Core contribution (:mod:`repro.core`):

>>> from repro import SparseInferPredictor, AlphaSchedule
>>> predictor = SparseInferPredictor.from_gate_weights(gate_mats)  # doctest: +SKIP

End-to-end engines over trainable role models:

>>> from repro import build_engine, SparseInferSettings  # doctest: +SKIP

Analytical reproductions at true 7B/13B scale live in :mod:`repro.eval`
(Table I, Figs. 2-4) over :mod:`repro.gpu` (Jetson Orin roofline model)
and :mod:`repro.model.synthetic` (statistical activation model).
"""

from .core.alpha import AlphaSchedule, calibrate_alpha
from .core.engine import (
    SparseInferSettings,
    build_batched_engine,
    build_engine,
    build_predictor,
    dense_engine,
)
from .core.metrics import PredictionQuality, evaluate_skip_prediction
from .core.predictor import (
    LayerPrediction,
    SparseInferPredictor,
    predict_skip_from_counts,
    true_skip_mask,
)
from .core.signpack import PackedSigns, pack_signs, popcount, xor_popcount
from .core.sparse_mlp import SparseInferMLP
from .model.config import (
    ModelConfig,
    prosparse_llama2_7b,
    prosparse_llama2_13b,
    tiny_7b_role,
    tiny_13b_role,
)
from .model.inference import InferenceModel
from .model.synthetic import SyntheticActivationModel
from .model.tokenizer import CharTokenizer
from .model.weights import ModelWeights, random_weights

__version__ = "1.0.0"

__all__ = [
    "AlphaSchedule",
    "CharTokenizer",
    "InferenceModel",
    "LayerPrediction",
    "ModelConfig",
    "ModelWeights",
    "PackedSigns",
    "PredictionQuality",
    "SparseInferMLP",
    "SparseInferPredictor",
    "SparseInferSettings",
    "SyntheticActivationModel",
    "build_batched_engine",
    "build_engine",
    "build_predictor",
    "calibrate_alpha",
    "dense_engine",
    "evaluate_skip_prediction",
    "pack_signs",
    "popcount",
    "predict_skip_from_counts",
    "prosparse_llama2_13b",
    "prosparse_llama2_7b",
    "random_weights",
    "tiny_13b_role",
    "tiny_7b_role",
    "true_skip_mask",
    "xor_popcount",
    "__version__",
]

"""Named request-shape scenarios for the serving load generator.

The arrival processes in :mod:`repro.serving.loadgen` say *when*
requests land; this module says *what* they look like.  Each
:class:`Scenario` wraps the existing synthetic task generators
(:mod:`~repro.workloads.gsm8k_like`, :mod:`~repro.workloads.bbh_like`,
:func:`~repro.workloads.fewshot.build_fewshot_prompt`) into one of the
request-shape classes serving papers evaluate on, tagged with the SLO
class that traffic would realistically carry:

* ``fewshot_fleet`` -- few-shot prompts over a *fixed* exemplar
  prefix: every request in the fleet shares the same long prompt
  prefix, the shape that exercises prefix sharing / forked admission.
* ``summarise_style`` -- long prompt, short output: a batch of solved
  problems to "summarise" into one final answer chain, the
  prefill-heavy shape that motivates step-budgeted ticks.
* ``chat_style`` -- short prompt, long output with a tight TTFT SLO:
  the interactive decode-heavy shape deadline admission exists for.

A :class:`ScenarioMix` draws scenarios by weight from the factory's
Generator -- the same seeded stream that draws request shapes, so one
seed still names one bit-identical workload.  All scenarios share one
:func:`scenario_tokenizer` over the union alphabet, so mixed traffic
can be served by a single engine vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from ..model.tokenizer import CharTokenizer
from ..serving.request import Request, SLOSpec
from . import bbh_like, gsm8k_like
from .fewshot import build_fewshot_prompt

# Union of the task alphabets (stable order: gsm8k first), so every
# scenario's text encodes under one vocabulary.
SCENARIO_ALPHABET = gsm8k_like.ALPHABET + "TF&|!"


def scenario_tokenizer() -> CharTokenizer:
    """The shared char tokenizer every scenario encodes with."""
    return CharTokenizer(alphabet=SCENARIO_ALPHABET)


@dataclass(frozen=True)
class Scenario:
    """One named request-shape class.

    ``sampler(rng) -> (prompt, max_new_tokens)`` draws one request's
    text shape from the factory's seeded Generator; :meth:`build`
    encodes it and attaches the scenario's SLO contract.
    """

    name: str
    slo: Optional[SLOSpec]
    sampler: Callable[[np.random.Generator], tuple]

    def build(
        self, rng: np.random.Generator, request_id: int,
        tokenizer: CharTokenizer,
    ) -> Request:
        prompt, max_new = self.sampler(rng)
        return Request(
            request_id=request_id,
            prompt_ids=tuple(tokenizer.encode(prompt, add_bos=True)),
            max_new_tokens=int(max_new),
            slo=self.slo,
        )


def fewshot_fleet(
    n_shots: int = 4,
    seed: int = 0,
    slo: Optional[SLOSpec] = SLOSpec("fleet", ttft_steps=24, itl_steps=12),
) -> Scenario:
    """Few-shot requests over one fixed exemplar prefix (shared prefix).

    The exemplars are drawn once from ``seed + 10_000`` (the same
    disjoint-seed convention as :func:`~repro.workloads.fewshot.
    fewshot_set`), so every request in the fleet carries the identical
    solved-exemplar prefix ahead of its own fresh problem -- the
    donor-forkable shape.
    """
    exemplar_rng = np.random.default_rng(seed + 10_000)
    exemplars = [gsm8k_like.make_problem(exemplar_rng) for _ in range(n_shots)]

    def sampler(rng: np.random.Generator) -> tuple:
        sample = build_fewshot_prompt(exemplars, gsm8k_like.make_problem(rng))
        return sample.prompt, len(sample.answer)

    return Scenario(name="fewshot_fleet", slo=slo, sampler=sampler)


def summarise_style(
    n_documents: int = 6,
    slo: Optional[SLOSpec] = SLOSpec("batch", ttft_steps=64, itl_steps=16),
) -> Scenario:
    """Long prompt, short output: prefill-heavy summarise-style traffic.

    The prompt concatenates ``n_documents`` solved boolean chains (the
    "documents") followed by one unsolved problem; the output is just
    that problem's short answer chain.
    """

    def sampler(rng: np.random.Generator) -> tuple:
        docs = "".join(
            bbh_like.make_problem(rng).text for _ in range(n_documents)
        )
        final = bbh_like.make_problem(rng)
        return docs + final.prompt, len(final.answer)

    return Scenario(name="summarise_style", slo=slo, sampler=sampler)


def chat_style(
    min_turn_tokens: int = 12,
    max_turn_tokens: int = 32,
    slo: Optional[SLOSpec] = SLOSpec("interactive", ttft_steps=8, itl_steps=4),
) -> Scenario:
    """Short prompt, long output with a tight TTFT: interactive chat.

    One short problem prompt, but a decode budget drawn well past the
    true answer length -- the decode-heavy shape whose tight TTFT/ITL
    deadlines deadline admission is judged on.
    """
    if not 1 <= min_turn_tokens <= max_turn_tokens:
        raise ValueError(
            f"need 1 <= min_turn_tokens <= max_turn_tokens, got "
            f"{min_turn_tokens} and {max_turn_tokens}"
        )

    def sampler(rng: np.random.Generator) -> tuple:
        sample = gsm8k_like.make_problem(rng, n_terms=3)
        max_new = int(rng.integers(min_turn_tokens, max_turn_tokens + 1))
        return sample.prompt, max_new

    return Scenario(name="chat_style", slo=slo, sampler=sampler)


class ScenarioMix:
    """Weighted mixture of scenarios, drawn from the factory stream.

    ``factory(tokenizer)`` returns the ``(rng, request_id) -> Request``
    closure :class:`~repro.serving.loadgen.LoadGenerator` expects: each
    call first draws which scenario this request belongs to (one
    uniform draw against the cumulative weights), then that scenario's
    shape -- all from the generator's own shape stream, so the mix
    composition is part of the seeded trace.
    """

    def __init__(self, scenarios: Sequence[Scenario], weights=None):
        if not scenarios:
            raise ValueError("need at least one scenario")
        if weights is None:
            weights = [1.0] * len(scenarios)
        if len(weights) != len(scenarios):
            raise ValueError(
                f"got {len(weights)} weights for {len(scenarios)} scenarios"
            )
        if any(w < 0 for w in weights) or sum(weights) <= 0:
            raise ValueError(f"weights must be >= 0 and sum > 0, got {weights}")
        total = float(sum(weights))
        self.scenarios = list(scenarios)
        self.weights = [float(w) / total for w in weights]
        self._cumulative = np.cumsum(self.weights)

    def draw(self, rng: np.random.Generator) -> Scenario:
        """One scenario, by weight, from the supplied stream."""
        u = rng.random()
        index = int(np.searchsorted(self._cumulative, u, side="right"))
        return self.scenarios[min(index, len(self.scenarios) - 1)]

    def factory(
        self, tokenizer: Optional[CharTokenizer] = None
    ) -> Callable[[np.random.Generator, int], Request]:
        """The request factory a :class:`LoadGenerator` consumes."""
        tok = tokenizer if tokenizer is not None else scenario_tokenizer()

        def make_request(rng: np.random.Generator, request_id: int) -> Request:
            return self.draw(rng).build(rng, request_id, tok)

        return make_request


def default_mix() -> ScenarioMix:
    """The reference traffic blend: chat-heavy with fleet + batch tails."""
    return ScenarioMix(
        [chat_style(), fewshot_fleet(), summarise_style()],
        weights=[0.5, 0.3, 0.2],
    )

"""Few-shot prompt construction (the paper evaluates GSM8K 8-shot).

Prepends ``n_shots`` solved exemplars to each test prompt, separated by
newline-free concatenation (the char vocabulary has no newline; exemplars
are self-delimiting through the ``Q:``/``A:`` markers).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .gsm8k_like import TaskSample


def build_fewshot_prompt(
    exemplars: Sequence[TaskSample], sample: TaskSample
) -> TaskSample:
    """A new sample whose prompt carries the solved exemplars in front."""
    prefix = "".join(ex.text for ex in exemplars)
    return TaskSample(prompt=prefix + sample.prompt, answer=sample.answer)


def fewshot_set(
    generate_fn: Callable[..., list],
    n_samples: int,
    n_shots: int = 8,
    seed: int = 0,
    **kwargs,
) -> list:
    """Few-shot evaluation set from any workload ``generate`` function.

    Exemplars are drawn from a disjoint seed so they never leak test
    problems.
    """
    if n_shots < 0:
        raise ValueError(f"n_shots must be non-negative, got {n_shots}")
    exemplars = generate_fn(max(n_shots, 1), seed=seed + 10_000, **kwargs)[:n_shots]
    tests = generate_fn(n_samples, seed=seed, **kwargs)
    return [build_fewshot_prompt(exemplars, t) for t in tests]

"""Synthetic generative tasks standing in for GSM8K and BBH.

:mod:`~repro.workloads.scenarios` wraps these task generators into
named serving request-shape classes (shared-prefix fleets, prefill-heavy
summarise-style, decode-heavy chat-style) with per-scenario SLOs and
weighted mixes, for the load generator in
:mod:`repro.serving.loadgen`.  It is imported lazily here to keep the
plain task generators importable without the serving stack.
"""

from . import bbh_like, gsm8k_like
from .fewshot import build_fewshot_prompt, fewshot_set
from .gsm8k_like import TaskSample

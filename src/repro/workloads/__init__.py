"""Synthetic generative tasks standing in for GSM8K and BBH."""

from . import bbh_like, gsm8k_like
from .fewshot import build_fewshot_prompt, fewshot_set
from .gsm8k_like import TaskSample

"""Synthetic stand-in for the BIG-Bench-Hard (BBH) benchmark.

BBH's boolean-expressions subtask evaluates nested boolean formulas; we
generate flat left-to-right boolean chains over ``T`` / ``F`` with ``&``
(and), ``|`` (or) and ``!`` (not).  As in :mod:`repro.workloads.gsm8k_like`
the answer is the *chain of running results*, e.g. ``Q:!T&F|T=A:`` is
answered ``FFT`` (!T=F, F&F=F, F|T=T) -- multi-token answers route the
evaluation through the sparsified decode steps.  Exact-match scoring with
partial baseline accuracy on a small trained model.
"""

from __future__ import annotations

import numpy as np

from .gsm8k_like import TaskSample, ANSWER_SEP

ALPHABET = "TF&|!=QA:"


def _evaluate_chain(first: bool, negate_first: bool, ops: list, values: list,
                    negates: list) -> list:
    """Running results: the resolved first term, then after each operator."""
    acc = (not first) if negate_first else first
    chain = [acc]
    for op, val, neg in zip(ops, values, negates):
        operand = (not val) if neg else val
        acc = (acc and operand) if op == "&" else (acc or operand)
        chain.append(acc)
    return chain


def make_problem(rng: np.random.Generator, n_terms: int = 3) -> TaskSample:
    """Draw one boolean-chain problem (left-to-right evaluation).

    The answer has ``n_terms`` characters: the resolved first term
    followed by the running result after each operator.
    """
    if n_terms < 2:
        raise ValueError(f"need at least 2 terms, got {n_terms}")
    values = rng.integers(0, 2, size=n_terms).astype(bool)
    negates = rng.random(n_terms) < 0.25
    ops = ["&" if b else "|" for b in rng.integers(0, 2, size=n_terms - 1)]
    expr = ("!" if negates[0] else "") + ("T" if values[0] else "F")
    for op, val, neg in zip(ops, values[1:], negates[1:]):
        expr += op + ("!" if neg else "") + ("T" if val else "F")
    chain = _evaluate_chain(values[0], negates[0], ops, list(values[1:]),
                            list(negates[1:]))
    return TaskSample(
        prompt=f"Q:{expr}={ANSWER_SEP}",
        answer="".join("T" if v else "F" for v in chain),
    )


def generate(n_samples: int, seed: int = 0, n_terms: int = 3) -> list[TaskSample]:
    """Deterministic problem set (same seed -> same problems)."""
    if n_samples <= 0:
        raise ValueError(f"n_samples must be positive, got {n_samples}")
    rng = np.random.default_rng(seed)
    return [make_problem(rng, n_terms) for _ in range(n_samples)]


def task_name() -> str:
    return "bbh-like"

"""Synthetic stand-in for the GSM8K arithmetic benchmark.

GSM8K itself is a proprietary-scale dataset solved by models far beyond
this substrate; what the paper's Tables II-III actually measure is *how
much generative exact-match accuracy degrades when the MLPs are sparsified
at a given alpha*.  Any arithmetic task with a computable ground truth and
partial baseline accuracy exercises the same pathway.

Problems are chained single-digit additions/subtractions evaluated
modulo 10.  The answer is the *chain of running partial results* -- a
chain-of-thought in miniature -- e.g. ``Q:7+6-2=A:`` is answered ``31``
(7+6=3 mod 10, then 3-2=1).  Multi-token answers matter for fidelity to
the paper: SparseInfer sparsifies only the decoding phase, so the first
generated token always comes from the dense prefill; with chained
answers every later step depends on state built during *sparse* decode
steps, exactly the pathway Tables II-III measure.  A small ReLU-fied
transformer reaches partial (not saturated) exact-match accuracy here,
mirroring Llama-2-scale accuracy on real GSM8K.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

ALPHABET = "0123456789+-=QA:"
ANSWER_SEP = "A:"


@dataclass(frozen=True)
class TaskSample:
    """One generative problem: ``prompt`` should be continued by ``answer``."""

    prompt: str
    answer: str

    @property
    def text(self) -> str:
        return self.prompt + self.answer


def make_problem(rng: np.random.Generator, n_terms: int = 4,
                 max_operand: int = 3) -> TaskSample:
    """Draw one chained-arithmetic problem.

    The first term is any digit; subsequent operands are in
    ``[1, max_operand]`` and combined with + / -.  Each partial result is
    reduced mod 10 and emitted, so the answer has ``n_terms - 1`` digits
    (the last one being the final result).  Small operand deltas keep the
    per-step mapping learnable by the laptop-scale role models (full
    mod-10 addition is a classic slow-to-grok task) while preserving the
    chained, 10-way-fragile output structure the accuracy tables need.
    """
    if n_terms < 2:
        raise ValueError(f"need at least 2 terms, got {n_terms}")
    if not 1 <= max_operand <= 9:
        raise ValueError(f"max_operand must be in [1, 9], got {max_operand}")
    first = int(rng.integers(0, 10))
    operands = rng.integers(1, max_operand + 1, size=n_terms - 1)
    op_signs = rng.integers(0, 2, size=n_terms - 1)  # 0: +, 1: -
    value = first
    expr = str(first)
    partials = []
    for operand, sign in zip(operands, op_signs):
        if sign == 0:
            value += int(operand)
            expr += f"+{operand}"
        else:
            value -= int(operand)
            expr += f"-{operand}"
        value %= 10
        partials.append(str(value))
    return TaskSample(prompt=f"Q:{expr}={ANSWER_SEP}", answer="".join(partials))


def generate(
    n_samples: int, seed: int = 0, n_terms: int = 4, max_operand: int = 3
) -> list[TaskSample]:
    """Deterministic problem set (same seed -> same problems)."""
    if n_samples <= 0:
        raise ValueError(f"n_samples must be positive, got {n_samples}")
    rng = np.random.default_rng(seed)
    return [make_problem(rng, n_terms, max_operand) for _ in range(n_samples)]


def task_name() -> str:
    return "gsm8k-like"

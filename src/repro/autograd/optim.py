"""Optimizers and gradient utilities for the numpy autograd engine."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .tensor import Tensor


def clip_grad_norm(params: Sequence[Tensor], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm <= ``max_norm``.

    Returns the pre-clip norm.
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    total = 0.0
    for p in params:
        if p.grad is not None:
            total += float(np.sum(p.grad.astype(np.float64) ** 2))
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0.0:
        scale = max_norm / norm
        for p in params:
            if p.grad is not None:
                p.grad *= scale
    return norm


class Optimizer:
    """Base class: tracks parameters, provides ``zero_grad``."""

    def __init__(self, params: Iterable[Tensor]):
        self.params = [p for p in params if p.requires_grad]
        if not self.params:
            raise ValueError("optimizer received no trainable parameters")

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Plain SGD with optional momentum."""

    def __init__(self, params: Iterable[Tensor], lr: float = 0.1,
                 momentum: float = 0.0):
        super().__init__(params)
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            if self.momentum:
                v *= self.momentum
                v += p.grad
                p.data -= self.lr * v
            else:
                p.data -= self.lr * p.grad


class Adam(Optimizer):
    """Adam with decoupled weight decay (AdamW-style)."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params)
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self._step += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1 ** self._step
        bias2 = 1.0 - b2 ** self._step
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad
            m *= b1
            m += (1 - b1) * g
            v *= b2
            v += (1 - b2) * g * g
            m_hat = m / bias1
            v_hat = v / bias2
            if self.weight_decay:
                p.data *= 1.0 - self.lr * self.weight_decay
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

"""Numpy reverse-mode autodiff substrate (training-side engine)."""

from .optim import SGD, Adam, clip_grad_norm
from .tensor import Tensor, parameter, zeros

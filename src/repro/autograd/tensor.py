"""A small reverse-mode automatic differentiation engine on numpy.

Supports everything the trainable transformer substrate needs: broadcasted
arithmetic, matmul, reductions, activations (ReLU / SiLU for the
ReLUfication experiments), and indexing.  Fused NN ops with hand-written
gradients (softmax cross-entropy, RMSNorm, RoPE, embedding) live in
:mod:`repro.autograd.functional`.

Gradients propagate through a topologically-sorted tape; each op stores a
closure over its inputs.  Broadcasting is handled by summing the upstream
gradient back down to the operand's shape (:func:`unbroadcast`).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, list, tuple]


def unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, inverting numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum out prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum along axes that were broadcast from size 1.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with an optional gradient tape entry."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "name")
    __array_priority__ = 100  # beat numpy in mixed expressions

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _prev: Sequence["Tensor"] = (),
        name: str = "",
    ):
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float32)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._backward: Optional[Callable[[], None]] = None
        self._prev = tuple(_prev)
        self.name = name

    # -- basic protocol --------------------------------------------------

    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """The underlying array (not a copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        return Tensor(self.data)

    # -- graph machinery --------------------------------------------------

    @staticmethod
    def _lift(value: ArrayLike) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = unbroadcast(np.asarray(grad, dtype=np.float32), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Back-propagate from this tensor through the recorded tape."""
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient requires a scalar"
                )
            grad = np.ones_like(self.data)
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if id(parent) not in visited:
                    stack.append((parent, False))
        self.grad = np.asarray(grad, dtype=np.float32).reshape(self.data.shape)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward()

    def zero_grad(self) -> None:
        self.grad = None

    def _make(
        self, data: np.ndarray, parents: Sequence["Tensor"], backward: Callable
    ) -> "Tensor":
        requires = any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires, _prev=parents if requires else ())
        if requires:
            out._backward = backward(out)
        return out

    # -- arithmetic --------------------------------------------------------

    def __add__(self, other: ArrayLike) -> "Tensor":
        other = self._lift(other)
        data = self.data + other.data

        def backward(out: Tensor):
            def fn():
                if self.requires_grad:
                    self._accumulate(out.grad)
                if other.requires_grad:
                    other._accumulate(out.grad)
            return fn

        return self._make(data, (self, other), backward)

    __radd__ = __add__

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = self._lift(other)
        data = self.data * other.data

        def backward(out: Tensor):
            def fn():
                if self.requires_grad:
                    self._accumulate(out.grad * other.data)
                if other.requires_grad:
                    other._accumulate(out.grad * self.data)
            return fn

        return self._make(data, (self, other), backward)

    __rmul__ = __mul__

    def __neg__(self) -> "Tensor":
        return self * -1.0

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-self._lift(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._lift(other) + (-self)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        return self * self._lift(other) ** -1.0

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._lift(other) * self ** -1.0

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        data = self.data ** exponent

        def backward(out: Tensor):
            def fn():
                if self.requires_grad:
                    self._accumulate(
                        out.grad * exponent * self.data ** (exponent - 1)
                    )
            return fn

        return self._make(data, (self,), backward)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other = self._lift(other)
        data = self.data @ other.data

        def backward(out: Tensor):
            def fn():
                if self.requires_grad:
                    grad = out.grad @ np.swapaxes(other.data, -1, -2)
                    self._accumulate(unbroadcast(grad, self.data.shape))
                if other.requires_grad:
                    grad = np.swapaxes(self.data, -1, -2) @ out.grad
                    other._accumulate(unbroadcast(grad, other.data.shape))
            return fn

        return self._make(data, (self, other), backward)

    # -- reductions ---------------------------------------------------------

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(out: Tensor):
            def fn():
                if not self.requires_grad:
                    return
                grad = out.grad
                if axis is not None and not keepdims:
                    axes = axis if isinstance(axis, tuple) else (axis,)
                    for ax in sorted(a % self.data.ndim for a in axes):
                        grad = np.expand_dims(grad, ax)
                self._accumulate(np.broadcast_to(grad, self.data.shape))
            return fn

        return self._make(data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        count = self.data.size if axis is None else (
            np.prod([self.data.shape[a] for a in
                     (axis if isinstance(axis, tuple) else (axis,))])
        )
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / float(count))

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(out: Tensor):
            def fn():
                if not self.requires_grad:
                    return
                grad = out.grad
                expanded = data
                if axis is not None and not keepdims:
                    axes = axis if isinstance(axis, tuple) else (axis,)
                    for ax in sorted(a % self.data.ndim for a in axes):
                        grad = np.expand_dims(grad, ax)
                        expanded = np.expand_dims(expanded, ax)
                mask = (self.data == expanded).astype(np.float32)
                mask /= np.maximum(mask.sum(
                    axis=axis, keepdims=True) if axis is not None else mask.sum(),
                    1.0)
                self._accumulate(mask * grad)
            return fn

        return self._make(data, (self,), backward)

    # -- shape ops -----------------------------------------------------------

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)
        original = self.data.shape

        def backward(out: Tensor):
            def fn():
                if self.requires_grad:
                    self._accumulate(out.grad.reshape(original))
            return fn

        return self._make(data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        data = self.data.transpose(axes)
        inverse = tuple(np.argsort(axes))

        def backward(out: Tensor):
            def fn():
                if self.requires_grad:
                    self._accumulate(out.grad.transpose(inverse))
            return fn

        return self._make(data, (self,), backward)

    def swapaxes(self, a: int, b: int) -> "Tensor":
        axes = list(range(self.data.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(*axes)

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]

        def backward(out: Tensor):
            def fn():
                if self.requires_grad:
                    grad = np.zeros_like(self.data)
                    np.add.at(grad, index, out.grad)
                    self._accumulate(grad)
            return fn

        return self._make(data, (self,), backward)

    # -- element-wise nonlinearities ------------------------------------------

    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(out: Tensor):
            def fn():
                if self.requires_grad:
                    self._accumulate(out.grad * data)
            return fn

        return self._make(data, (self,), backward)

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(out: Tensor):
            def fn():
                if self.requires_grad:
                    self._accumulate(out.grad / self.data)
            return fn

        return self._make(data, (self,), backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(out: Tensor):
            def fn():
                if self.requires_grad:
                    self._accumulate(out.grad * (1.0 - data * data))
            return fn

        return self._make(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(out: Tensor):
            def fn():
                if self.requires_grad:
                    self._accumulate(out.grad * data * (1.0 - data))
            return fn

        return self._make(data, (self,), backward)

    def relu(self) -> "Tensor":
        data = np.maximum(self.data, 0.0)

        def backward(out: Tensor):
            def fn():
                if self.requires_grad:
                    self._accumulate(out.grad * (self.data > 0.0))
            return fn

        return self._make(data, (self,), backward)

    def silu(self) -> "Tensor":
        """SiLU / swish: x * sigmoid(x) -- the pre-ReLUfication activation."""
        sig = 1.0 / (1.0 + np.exp(-self.data))
        data = self.data * sig

        def backward(out: Tensor):
            def fn():
                if self.requires_grad:
                    self._accumulate(out.grad * (sig * (1.0 + self.data * (1.0 - sig))))
            return fn

        return self._make(data, (self,), backward)

    def fatrelu(self, threshold: float) -> "Tensor":
        """FATReLU: zero below a positive threshold (ProSparse, Section II)."""
        keep = self.data >= threshold
        data = np.where(keep, self.data, 0.0)

        def backward(out: Tensor):
            def fn():
                if self.requires_grad:
                    self._accumulate(out.grad * keep)
            return fn

        return self._make(data, (self,), backward)

    def abs(self) -> "Tensor":
        data = np.abs(self.data)

        def backward(out: Tensor):
            def fn():
                if self.requires_grad:
                    self._accumulate(out.grad * np.sign(self.data))
            return fn

        return self._make(data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self ** 0.5


def parameter(
    shape: tuple, rng: np.random.Generator, scale: float = 0.02, name: str = ""
) -> Tensor:
    """A trainable tensor initialised from N(0, scale^2)."""
    t = Tensor(
        rng.standard_normal(shape).astype(np.float32) * scale,
        requires_grad=True,
        name=name,
    )
    return t


def zeros(shape: tuple, requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape, dtype=np.float32), requires_grad=requires_grad)


def ones(shape: tuple, requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape, dtype=np.float32), requires_grad=requires_grad)

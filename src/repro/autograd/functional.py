"""Fused neural-network ops with hand-written gradients.

These are the building blocks of the trainable Llama-style substrate:
embedding lookup, RMSNorm, rotary position embedding, softmax,
cross-entropy, and causal self-attention.  Fusing them keeps the tape
short and the numpy training loop fast enough for the accuracy
experiments (Tables II-III).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .tensor import Tensor, unbroadcast


def embedding(table: Tensor, token_ids: np.ndarray) -> Tensor:
    """Row lookup ``table[token_ids]`` with scatter-add gradient."""
    token_ids = np.asarray(token_ids)
    data = table.data[token_ids]

    def backward(out: Tensor):
        def fn():
            if table.requires_grad:
                grad = np.zeros_like(table.data)
                np.add.at(grad, token_ids.reshape(-1), out.grad.reshape(-1, table.data.shape[1]))
                table._accumulate(grad)
        return fn

    return table._make(data, (table,), backward)


def rmsnorm(x: Tensor, weight: Tensor, eps: float = 1e-5) -> Tensor:
    """Root-mean-square layer norm: ``x / rms(x) * weight`` (Llama-style)."""
    ms = np.mean(x.data * x.data, axis=-1, keepdims=True)
    inv = 1.0 / np.sqrt(ms + eps)
    normed = x.data * inv
    data = normed * weight.data

    def backward(out: Tensor):
        def fn():
            d = x.data.shape[-1]
            if x.requires_grad:
                gw = out.grad * weight.data
                # d(normed)/dx: inv * (I - x x^T inv^2 / d)
                dot = np.sum(gw * x.data, axis=-1, keepdims=True)
                grad = inv * gw - (inv ** 3) * x.data * dot / d
                x._accumulate(grad)
            if weight.requires_grad:
                grad_w = (out.grad * normed).reshape(-1, d).sum(axis=0)
                weight._accumulate(grad_w)
        return fn

    return x._make(data, (x, weight), backward)


def rope_rotation(seq_len: int, head_dim: int, theta: float = 10000.0,
                  offset: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """Precompute cos/sin tables for rotary position embeddings.

    Returns arrays of shape ``(seq_len, head_dim // 2)``.
    """
    if head_dim % 2 != 0:
        raise ValueError(f"head_dim must be even for RoPE, got {head_dim}")
    half = head_dim // 2
    freqs = theta ** (-np.arange(half, dtype=np.float64) * 2.0 / head_dim)
    pos = np.arange(offset, offset + seq_len, dtype=np.float64)[:, None]
    angles = pos * freqs[None, :]
    return np.cos(angles).astype(np.float32), np.sin(angles).astype(np.float32)


def apply_rope(x: Tensor, cos: np.ndarray, sin: np.ndarray) -> Tensor:
    """Rotate pairs of channels by position-dependent angles.

    ``x`` has shape ``(..., seq, head_dim)``; ``cos``/``sin`` have shape
    ``(seq, head_dim/2)``.  The rotation is orthogonal, so the gradient is
    the inverse rotation.
    """
    half = x.data.shape[-1] // 2
    x1, x2 = x.data[..., :half], x.data[..., half:]
    data = np.concatenate([x1 * cos - x2 * sin, x1 * sin + x2 * cos], axis=-1)

    def backward(out: Tensor):
        def fn():
            if x.requires_grad:
                g1, g2 = out.grad[..., :half], out.grad[..., half:]
                grad = np.concatenate(
                    [g1 * cos + g2 * sin, -g1 * sin + g2 * cos], axis=-1
                )
                x._accumulate(grad)
        return fn

    return x._make(data, (x,), backward)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable softmax with fused gradient."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    data = e / e.sum(axis=axis, keepdims=True)

    def backward(out: Tensor):
        def fn():
            if x.requires_grad:
                dot = np.sum(out.grad * data, axis=axis, keepdims=True)
                x._accumulate(data * (out.grad - dot))
        return fn

    return x._make(data, (x,), backward)


def cross_entropy(logits: Tensor, targets: np.ndarray,
                  ignore_index: int = -1) -> Tensor:
    """Mean token-level cross entropy.

    ``logits`` has shape ``(..., vocab)``; ``targets`` the matching integer
    shape.  Positions equal to ``ignore_index`` contribute nothing (used to
    mask prompt tokens so only answer tokens train, and for padding).
    """
    targets = np.asarray(targets)
    flat_logits = logits.data.reshape(-1, logits.data.shape[-1])
    flat_targets = targets.reshape(-1)
    mask = flat_targets != ignore_index
    count = max(int(mask.sum()), 1)
    shifted = flat_logits - flat_logits.max(axis=-1, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=-1))
    safe_targets = np.where(mask, flat_targets, 0)
    picked = shifted[np.arange(flat_logits.shape[0]), safe_targets]
    losses = (logsumexp - picked) * mask
    data = np.array(losses.sum() / count, dtype=np.float32)

    def backward(out: Tensor):
        def fn():
            if logits.requires_grad:
                probs = np.exp(shifted)
                probs /= probs.sum(axis=-1, keepdims=True)
                probs[np.arange(flat_logits.shape[0]), safe_targets] -= 1.0
                probs *= (mask / count)[:, None]
                logits._accumulate(
                    (probs * out.grad).reshape(logits.data.shape)
                )
        return fn

    return logits._make(data, (logits,), backward)


def causal_attention(
    q: Tensor, k: Tensor, v: Tensor, n_heads: int,
    mask: Optional[np.ndarray] = None,
) -> Tensor:
    """Multi-head causal self-attention over full sequences (training path).

    ``q``, ``k``, ``v`` have shape ``(batch, seq, d_model)``.  Splits heads,
    applies a causal mask (plus an optional additive ``mask`` of shape
    ``(seq, seq)``), and re-merges heads.
    """
    batch, seq, d_model = q.shape
    if d_model % n_heads:
        raise ValueError("d_model must divide by n_heads")
    head_dim = d_model // n_heads

    def split(t: Tensor) -> Tensor:
        return t.reshape(batch, seq, n_heads, head_dim).transpose(0, 2, 1, 3)

    qh, kh, vh = split(q), split(k), split(v)
    scores = (qh @ kh.swapaxes(-1, -2)) * (1.0 / float(np.sqrt(head_dim)))
    causal = np.triu(np.full((seq, seq), -1e9, dtype=np.float32), k=1)
    if mask is not None:
        causal = causal + mask.astype(np.float32)
    scores = scores + Tensor(causal)
    attn = softmax(scores, axis=-1)
    out = attn @ vh
    return out.transpose(0, 2, 1, 3).reshape(batch, seq, d_model)

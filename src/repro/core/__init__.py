"""The paper's contribution: training-free activation-sparsity prediction.

* :mod:`repro.core.signpack` -- sign-bit packing / XOR / popcount.
* :mod:`repro.core.predictor` -- the Eq. (2) majority-sign predictor.
* :mod:`repro.core.alpha` -- per-layer conservativeness schedules.
* :mod:`repro.core.sparse_mlp` -- sparse MLP executor (+AS semantics).
* :mod:`repro.core.engine` -- end-to-end SparseInfer decode engine.
* :mod:`repro.core.metrics` -- precision/recall of skip predictions.
* :mod:`repro.core.dse` -- design-space exploration over alpha/devices.
"""

from .alpha import AlphaSchedule, calibrate_alpha
from .engine import (
    SparseInferSettings,
    build_batched_engine,
    build_engine,
    build_predictor,
    dense_engine,
)
from .metrics import PredictionQuality, evaluate_skip_prediction, sparsity
from .predictor import (
    BatchPrediction,
    LayerPrediction,
    SparseInferPredictor,
    predict_skip_from_counts,
    true_skip_mask,
)
from .signpack import PackedSigns, pack_signs, popcount, unpack_signs, xor_popcount
from .sparse_mlp import SparseInferMLP

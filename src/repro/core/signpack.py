"""Sign-bit packing and popcount primitives.

SparseInfer's predictor (paper Section IV-A / IV-B.1) operates only on the
sign bits (MSBs) of the gate weight matrix ``Wgate`` and the input vector
``X``.  The CUDA implementation packs the sign bits of 32 consecutive
elements into one 32-bit word at model-load time and XORs the packed words
at predict time, counting set bits with ``__popc``.

This module is the numpy equivalent: vectorised packing, XOR and popcount.

Bit convention
--------------
Bit ``j`` of word ``w`` holds the sign of element ``w * 32 + j`` (little-end
bit order within a word).  A set bit means *negative* (``numpy.signbit``),
matching the MSB of an IEEE-754 float.  When the row length ``d`` is not a
multiple of 32 the trailing padding bits are left **zero** (positive), which
can only make the predictor *more conservative* (more apparent positives,
fewer skips) -- see DESIGN.md section 5.2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

WORD_BITS = 32

# Number of set bits for every byte value; used for vectorised popcount.
_POPCOUNT8 = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)


def words_per_row(n_elements: int) -> int:
    """Number of 32-bit words needed to hold ``n_elements`` sign bits."""
    if n_elements < 0:
        raise ValueError(f"n_elements must be non-negative, got {n_elements}")
    return (n_elements + WORD_BITS - 1) // WORD_BITS


def pack_signs(values: np.ndarray) -> np.ndarray:
    """Pack the sign bits of ``values`` along the last axis into uint32 words.

    Parameters
    ----------
    values:
        Float array of shape ``(..., d)``.  Any float dtype works; only
        ``numpy.signbit`` is consulted, so the packing is identical for
        FP32, FP16 or dequantised INT8 data (the quantisation-robustness
        property of the paper).

    Returns
    -------
    ``uint32`` array of shape ``(..., words_per_row(d))``.
    """
    values = np.asarray(values)
    if values.ndim == 0:
        raise ValueError("pack_signs expects at least a 1-D array")
    d = values.shape[-1]
    nwords = words_per_row(d)
    bits = np.signbit(values)
    pad = nwords * WORD_BITS - d
    if pad:
        pad_shape = values.shape[:-1] + (pad,)
        bits = np.concatenate([bits, np.zeros(pad_shape, dtype=bool)], axis=-1)
    packed_bytes = np.packbits(bits, axis=-1, bitorder="little")
    shape = values.shape[:-1] + (nwords,)
    return (
        np.ascontiguousarray(packed_bytes)
        .view(np.uint32)
        .reshape(shape)
    )


def unpack_signs(words: np.ndarray, n_elements: int) -> np.ndarray:
    """Inverse of :func:`pack_signs`: boolean sign array (True = negative)."""
    words = np.asarray(words, dtype=np.uint32)
    if words.shape[-1] != words_per_row(n_elements):
        raise ValueError(
            f"expected {words_per_row(n_elements)} words per row for "
            f"{n_elements} elements, got {words.shape[-1]}"
        )
    as_bytes = np.ascontiguousarray(words).view(np.uint8)
    bits = np.unpackbits(as_bytes, axis=-1, bitorder="little")
    return bits[..., :n_elements].astype(bool)


def popcount(words: np.ndarray) -> np.ndarray:
    """Element-wise population count of a uint32 array.

    Vectorised equivalent of CUDA ``__popc``.  Uses the native
    ``np.bitwise_count`` ufunc when available (numpy >= 2.0); the byte
    lookup-table fallback views each 32-bit word as four bytes and sums
    them through an 8-bit table.
    """
    words = np.asarray(words, dtype=np.uint32)
    if hasattr(np, "bitwise_count"):
        return np.bitwise_count(words).astype(np.int64)
    words = np.ascontiguousarray(words)
    as_bytes = words.view(np.uint8).reshape(words.shape + (4,))
    return _POPCOUNT8[as_bytes].sum(axis=-1, dtype=np.int64)


def xor_popcount(packed_rows: np.ndarray, packed_x: np.ndarray) -> np.ndarray:
    """Predicted count of negative products per row (``Nneg`` in the paper).

    ``packed_rows`` has shape ``(k, nwords)`` (one row per gate neuron) and
    ``packed_x`` shape ``(nwords,)`` or ``(..., nwords)`` for a batch of
    input vectors.  Returns an ``int64`` array of shape ``(k,)`` (or
    ``(..., k)``) holding, for each row ``i``, the number of element
    positions where ``sign(Wgate[i, j]) != sign(X[j])`` -- i.e. where the
    product ``X[j] * Wgate[i, j]`` is predicted negative.

    The batched form is one broadcast XOR + one table-lookup popcount for
    the whole batch; the serving engine relies on this to amortise the
    predictor over all co-scheduled sequences.
    """
    packed_rows = np.asarray(packed_rows, dtype=np.uint32)
    packed_x = np.asarray(packed_x, dtype=np.uint32)
    if packed_rows.shape[-1] != packed_x.shape[-1]:
        raise ValueError(
            f"word-count mismatch: rows have {packed_rows.shape[-1]} words, "
            f"x has {packed_x.shape[-1]}"
        )
    if packed_x.ndim == 1:
        return popcount(packed_rows ^ packed_x).sum(axis=-1)
    xor = packed_x[..., None, :] ^ packed_rows          # (..., k, nwords)
    return popcount(xor).sum(axis=-1)


def exact_negative_products(rows: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Reference implementation of ``Nneg`` from unpacked floats.

    Counts positions where the element-wise product sign differs, using
    ``signbit`` semantics identical to the packed path.  Used by tests to
    verify :func:`xor_popcount`.
    """
    rows = np.asarray(rows)
    x = np.asarray(x)
    return (np.signbit(rows) ^ np.signbit(x)).sum(axis=-1, dtype=np.int64)


@dataclass(frozen=True)
class PackedSigns:
    """Packed sign bits of one weight matrix, produced at model-load time.

    Mirrors the paper's offline pre-fetch step (Section IV-B.1): the sign
    bits of ``Wgate`` are extracted once when the model is loaded so the
    decode-phase predictor never touches the full-precision weights.

    Attributes
    ----------
    words:
        ``uint32`` array of shape ``(k, nwords)``.
    n_elements:
        Logical row length ``d`` before padding.
    """

    words: np.ndarray
    n_elements: int

    @classmethod
    def from_matrix(cls, matrix: np.ndarray) -> "PackedSigns":
        """Pack a ``(k, d)`` weight matrix row-wise."""
        matrix = np.asarray(matrix)
        if matrix.ndim != 2:
            raise ValueError(f"expected a 2-D matrix, got shape {matrix.shape}")
        return cls(words=pack_signs(matrix), n_elements=matrix.shape[1])

    @property
    def n_rows(self) -> int:
        return self.words.shape[0]

    @property
    def n_words(self) -> int:
        return self.words.shape[1]

    @property
    def padded_bits(self) -> int:
        """Total bit positions per row including padding (``ncols * 32``)."""
        return self.n_words * WORD_BITS

    @property
    def nbytes(self) -> int:
        """Memory footprint in bytes (the paper's Section V-A.2 metric)."""
        return self.words.nbytes

    def negative_counts(self, x: np.ndarray) -> np.ndarray:
        """``Nneg`` per row for an unpacked input vector ``x``."""
        return self.negative_counts_packed(pack_signs(x))

    def negative_counts_packed(self, packed_x: np.ndarray) -> np.ndarray:
        """``Nneg`` per row for an already packed input vector."""
        return xor_popcount(self.words, packed_x)

"""The SparseInfer training-free activation-sparsity predictor.

Implements the decision rule of paper Eq. (2): a gate row ``i`` is
predicted *sparse* (``ReLU(X . Wgate[i]) == 0``, so the row can be skipped)
iff

    alpha * Npos < Nneg

where ``Nneg`` is the XOR+popcount estimate of how many of the ``d``
element-wise products are negative and ``Npos = total_bits - Nneg``.

Fixed-point form (matching the CUDA kernel's integer arithmetic with
``alpha`` scaled by 100):

    100 * Nneg > alpha_pct * Npos

Note on the paper's Listing 1: line 12 of the listing sets ``skip[row]=0``
when ``count*100 - (ncols*32 - count)*alpha > 0``, i.e. it *keeps* the row
exactly when the negative count dominates -- the opposite of Eq. (2) and of
the prose.  We treat the listing's flag polarity as a typo and implement
Eq. (2); see DESIGN.md section 5.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .alpha import ALPHA_SCALE, AlphaSchedule, alpha_to_fixed_point
from .signpack import PackedSigns, pack_signs, xor_popcount


def predict_skip_from_counts(
    n_neg: np.ndarray,
    total_bits: int,
    alpha: float = 1.0,
) -> np.ndarray:
    """Vectorised Eq. (2) decision from per-row negative counts.

    Parameters
    ----------
    n_neg:
        ``Nneg`` per row (int array, shape ``(k,)``).
    total_bits:
        Number of bit positions compared per row.  The CUDA kernel uses the
        padded ``ncols * 32``; real LLM dims are multiples of 32 so the two
        coincide.  Padding bits are packed as positive, inflating ``Npos``
        and therefore erring on the conservative (keep) side.
    alpha:
        Conservativeness knob; quantised to the kernel's x100 fixed point.

    Returns
    -------
    Boolean array, ``True`` where the row is predicted sparse (skippable).
    """
    n_neg = np.asarray(n_neg, dtype=np.int64)
    if total_bits <= 0:
        raise ValueError(f"total_bits must be positive, got {total_bits}")
    alpha_pct = alpha_to_fixed_point(alpha)
    n_pos = total_bits - n_neg
    return ALPHA_SCALE * n_neg > alpha_pct * n_pos


@dataclass(frozen=True)
class LayerPrediction:
    """Result of one layer's sparsity prediction."""

    skip: np.ndarray          # bool (k,) - True = predicted sparse
    n_neg: np.ndarray         # int64 (k,) - XOR+popcount negative estimates
    alpha: float

    @property
    def predicted_sparsity(self) -> float:
        """Fraction of rows predicted skippable."""
        return float(self.skip.mean()) if self.skip.size else 0.0


@dataclass(frozen=True)
class BatchPrediction:
    """One layer's sparsity prediction for a batch of sequences.

    In batched decode a gate row's weights can only go unread when *every*
    co-scheduled sequence predicts it sparse, so the exploitable skip set
    is the AND across the batch (see :mod:`repro.gpu.batching` for the
    analytical ``skip^B`` decay this implies).  Per-sequence masks are kept
    alongside the intersection: rows outside the intersection are computed
    for everyone, then re-zeroed for the sequences that predicted them
    sparse so batched outputs match single-sequence decoding exactly.
    """

    skip: np.ndarray          # bool (B, k) - per-sequence predictions
    n_neg: np.ndarray         # int64 (B, k)
    alpha: float

    @property
    def batch_size(self) -> int:
        return self.skip.shape[0]

    @property
    def intersection_skip(self) -> np.ndarray:
        """Rows every sequence predicts sparse -- the exploitable set (k,)."""
        return self.skip.all(axis=0)

    @property
    def intersection_sparsity(self) -> float:
        """Fraction of gate rows whose weights the whole batch can skip."""
        inter = self.intersection_skip
        return float(inter.mean()) if inter.size else 0.0

    @property
    def per_sequence_sparsity(self) -> np.ndarray:
        """Predicted skip fraction of each sequence, shape (B,)."""
        return self.skip.mean(axis=1)


class SparseInferPredictor:
    """Training-free sparsity predictor over the gate matrices of a model.

    Holds the packed sign bits of every layer's ``Wgate`` (built once, the
    paper's offline step 1) and an :class:`AlphaSchedule`.  At decode time,
    :meth:`predict` packs the sign bits of the incoming activation vector
    and applies the XOR+popcount majority test.

    Parameters
    ----------
    packed_gates:
        One :class:`PackedSigns` per decoder layer.
    schedule:
        Per-layer alpha values; defaults to uniform 1.0.
    """

    def __init__(
        self,
        packed_gates: Sequence[PackedSigns],
        schedule: Optional[AlphaSchedule] = None,
    ):
        self._packed = list(packed_gates)
        if not self._packed:
            raise ValueError("need at least one layer")
        widths = {p.n_elements for p in self._packed}
        if len(widths) != 1:
            raise ValueError(f"all layers must share the model width, got {widths}")
        if schedule is None:
            schedule = AlphaSchedule.uniform(1.0, len(self._packed))
        if schedule.n_layers != len(self._packed):
            raise ValueError(
                f"schedule has {schedule.n_layers} layers, model has {len(self._packed)}"
            )
        self.schedule = schedule

    @classmethod
    def from_gate_weights(
        cls,
        gate_weights: Sequence[np.ndarray],
        schedule: Optional[AlphaSchedule] = None,
    ) -> "SparseInferPredictor":
        """Build from per-layer ``(k, d)`` gate matrices (offline packing)."""
        return cls([PackedSigns.from_matrix(w) for w in gate_weights], schedule)

    @property
    def n_layers(self) -> int:
        return len(self._packed)

    @property
    def d_model(self) -> int:
        return self._packed[0].n_elements

    def packed_gate(self, layer: int) -> PackedSigns:
        return self._packed[layer]

    @property
    def nbytes(self) -> int:
        """Total predictor memory footprint (Section V-A.2)."""
        return sum(p.nbytes for p in self._packed)

    def with_schedule(self, schedule: AlphaSchedule) -> "SparseInferPredictor":
        """Same packed weights under a different alpha schedule (cheap)."""
        return SparseInferPredictor(self._packed, schedule)

    def predict(
        self,
        layer: int,
        x: np.ndarray,
        alpha: Optional[float] = None,
    ) -> LayerPrediction:
        """Predict the skip mask for layer ``layer`` given input ``x``.

        ``x`` is the unpacked ``(d,)`` activation vector entering the MLP
        block; its sign bits are packed on the fly (the online half of the
        paper's Section IV-B.1).  ``alpha`` overrides the schedule when
        given (used by DSE sweeps).
        """
        packed = self._packed[layer]
        x = np.asarray(x)
        if x.shape != (packed.n_elements,):
            raise ValueError(
                f"expected x of shape ({packed.n_elements},), got {x.shape}"
            )
        if alpha is None:
            alpha = self.schedule[layer]
        n_neg = packed.negative_counts_packed(pack_signs(x))
        skip = predict_skip_from_counts(n_neg, packed.padded_bits, alpha)
        return LayerPrediction(skip=skip, n_neg=n_neg, alpha=float(alpha))

    def predict_batch(
        self,
        layer: int,
        xs: np.ndarray,
        alpha: Optional[float] = None,
    ) -> np.ndarray:
        """Skip masks for a batch of inputs, shape ``(n, d)`` -> ``(n, k)``.

        Sign-packing and XOR+popcount run once for the whole batch (a
        single broadcast over the packed words), not once per sequence;
        this is the predictor step the batched serving engine calls every
        decode step.
        """
        return self.predict_intersection(layer, xs, alpha).skip

    def predict_intersection(
        self,
        layer: int,
        xs: np.ndarray,
        alpha: Optional[float] = None,
    ) -> BatchPrediction:
        """Batched prediction with the cross-sequence intersection.

        ``xs`` holds the ``(B, d)`` MLP inputs of the active sequences.
        Returns per-sequence skip masks plus (via the result object) the
        AND across the batch -- the only rows whose weight reads a batched
        GEMV can actually avoid.
        """
        xs = np.atleast_2d(np.asarray(xs))
        packed = self._packed[layer]
        if xs.shape[-1] != packed.n_elements:
            raise ValueError(
                f"expected inputs of width {packed.n_elements}, got {xs.shape}"
            )
        if alpha is None:
            alpha = self.schedule[layer]
        packed_xs = pack_signs(xs)                          # (B, nwords)
        n_neg = xor_popcount(packed.words, packed_xs)       # (B, k)
        skip = predict_skip_from_counts(n_neg, packed.padded_bits, alpha)
        return BatchPrediction(skip=skip, n_neg=n_neg, alpha=float(alpha))


def true_skip_mask(gate_preact: np.ndarray) -> np.ndarray:
    """Ground-truth sparsity: rows whose ReLU input is non-positive.

    ``ReLU(z) == 0`` iff ``z <= 0``; FATReLU variants use a positive
    threshold instead (see :mod:`repro.train.prosparse`).
    """
    return np.asarray(gate_preact) <= 0.0

"""Design-space exploration over the predictor's conservativeness knob.

The paper positions alpha as "an important control knob for design space
exploration (DSE) in optimizing LLM inference, given the target platform,
the model, and the downstream task."  This module sweeps alpha (and
optionally devices), producing (latency, prediction-precision) operating
points and their Pareto front.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..eval.latency import measure_sparsity
from ..eval.precision_recall import figure3_synthetic
from ..gpu.device import DeviceSpec, jetson_orin_agx_64gb
from ..gpu.pipeline import EngineSpec, decode_latency, dense_engine
from ..model.config import ModelConfig
from ..model.synthetic import SyntheticActivationModel


@dataclass(frozen=True)
class DSEPoint:
    """One operating point of the (speed, fidelity) trade-off."""

    alpha: float
    device_name: str
    seconds_per_token: float
    speedup_over_dense: float
    mean_precision: float
    mean_recall: float
    mean_predicted_skip: float

    @property
    def tokens_per_second(self) -> float:
        return 1.0 / self.seconds_per_token


def sweep(
    config: ModelConfig,
    alphas: Sequence[float] = (1.0, 1.01, 1.02, 1.03, 1.05, 1.1),
    device: Optional[DeviceSpec] = None,
    seed: int = 0,
    seq_len: int = 700,
    n_tokens: int = 6,
    n_rows: int = 384,
) -> list:
    """Alpha sweep on one device: latency from the GPU model, fidelity
    (precision/recall) from the synthetic activation model."""
    device = device or jetson_orin_agx_64gb()
    model = SyntheticActivationModel(config, seed=seed)
    base = decode_latency(config, dense_engine(), device, seq_len=seq_len)
    spec = EngineSpec(kind="sparseinfer", kernel_fusion=True,
                      actual_sparsity=True)
    points = []
    for alpha in alphas:
        measured = measure_sparsity(
            model, alpha, n_tokens=n_tokens, n_rows=n_rows
        )
        report = decode_latency(
            config, spec, device, measured.profile(), seq_len=seq_len
        )
        quality = figure3_synthetic(
            model, alpha=alpha, n_tokens=n_tokens, n_rows=n_rows
        )
        points.append(
            DSEPoint(
                alpha=float(alpha),
                device_name=device.name,
                seconds_per_token=report.seconds_per_token,
                speedup_over_dense=report.speedup_over(base),
                mean_precision=float(np.mean([q.precision for q in quality])),
                mean_recall=float(np.mean([q.recall for q in quality])),
                mean_predicted_skip=float(measured.predicted_skip.mean()),
            )
        )
    return points


def pareto_front(points: Sequence[DSEPoint]) -> list:
    """Points not dominated in (faster, more precise) space."""
    front = []
    for p in points:
        dominated = any(
            (q.seconds_per_token <= p.seconds_per_token
             and q.mean_precision >= p.mean_precision
             and (q.seconds_per_token < p.seconds_per_token
                  or q.mean_precision > p.mean_precision))
            for q in points
        )
        if not dominated:
            front.append(p)
    return sorted(front, key=lambda p: p.seconds_per_token)

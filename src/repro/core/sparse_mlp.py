"""SparseInfer's sparse MLP executor (paper Section IV).

Functionally reproduces what the CUDA kernels do, on numpy:

1. predict the gate-row skip mask from packed sign bits (step 2 of
   Fig. 1),
2. run the gate GEMV only over surviving rows and apply ReLU,
3. **actual sparsity (+AS)**: rows the predictor kept but ReLU zeroed are
   added to the skip set used by the up-projection and down-projection
   (the union of predicted and actual sparsity, Section IV),
4. run the up GEMV over the union's survivors, gate element-wise,
5. run the down GEMV (transposed layout) over the final survivors.

Kernel fusion changes memory traffic, not values, so the executor models
it only in the work statistics; the GPU cost model (:mod:`repro.gpu`)
prices it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..model.mlp import MLPStats, activation_fn
from ..model.weights import ModelWeights
from .alpha import AlphaSchedule
from .predictor import SparseInferPredictor


@dataclass
class SparseInferMLP:
    """MLP executor driven by the training-free sign-bit predictor.

    Parameters
    ----------
    weights:
        Model weights in inference layout.
    predictor:
        A :class:`SparseInferPredictor` built over this model's gate
        matrices.  Built automatically when omitted.
    schedule:
        Per-layer alpha; overrides the predictor's schedule when given.
    use_actual_sparsity:
        The paper's +AS measure (on by default, as in the best Fig. 4
        configuration).
    """

    weights: ModelWeights
    predictor: Optional[SparseInferPredictor] = None
    schedule: Optional[AlphaSchedule] = None
    use_actual_sparsity: bool = True
    stats: MLPStats = field(default_factory=MLPStats)

    def __post_init__(self):
        cfg = self.weights.config
        if self.predictor is None:
            self.predictor = SparseInferPredictor.from_gate_weights(
                self.weights.gate_matrices(),
                self.schedule,
            )
        elif self.schedule is not None:
            self.predictor = self.predictor.with_schedule(self.schedule)
        if self.predictor.n_layers != cfg.n_layers:
            raise ValueError(
                f"predictor covers {self.predictor.n_layers} layers, "
                f"model has {cfg.n_layers}"
            )
        self._act = activation_fn(cfg.activation, cfg.fatrelu_threshold)

    def run(self, layer: int, x: np.ndarray) -> np.ndarray:
        return self.run_with_skip(layer, x, self.predictor.predict(layer, x).skip)

    def run_with_skip(
        self, layer: int, x: np.ndarray, skip: np.ndarray
    ) -> np.ndarray:
        """The sparse MLP given an already-computed skip mask.

        Split out from :meth:`run` so the batched serving engine, which
        predicts all sequences in one packed popcount pass, can execute a
        degenerate batch through the exact single-sequence op sequence.
        """
        lw = self.weights.layers[layer]
        k = lw.w_gate_rows.shape[0]
        keep = ~skip

        # Step 1 -- gate GEMV over surviving rows only.
        h1_live = self._act(lw.w_gate_rows[keep] @ x)

        # Actual sparsity: rows ReLU zeroed despite surviving prediction.
        if self.use_actual_sparsity:
            live_mask = np.zeros(k, dtype=bool)
            live_idx = np.flatnonzero(keep)[h1_live != 0.0]
            live_mask[live_idx] = True
        else:
            live_mask = keep

        # Step 2 -- up GEMV over the (possibly tightened) survivor set.
        h1 = np.zeros(k, dtype=np.float32)
        h1[keep] = h1_live
        live = np.flatnonzero(live_mask)
        h3_live = h1[live] * (lw.w_up_rows[live] @ x)

        # Step 4 -- down GEMV, transposed accumulate over final survivors.
        down_live = live[h3_live != 0.0] if self.use_actual_sparsity else live
        h3_final = h3_live[h3_live != 0.0] if self.use_actual_sparsity else h3_live
        out = h3_final @ lw.w_down_rows[down_live]

        self.stats.calls += 1
        self.stats.rows_total += k
        self.stats.rows_skipped_gate += int(skip.sum())
        self.stats.rows_skipped_up += k - int(live_mask.sum())
        self.stats.rows_skipped_down += k - len(down_live)
        return out.astype(np.float32)

    def reset_stats(self) -> None:
        self.stats = MLPStats()

"""Prediction-quality metrics for activation-sparsity predictors.

Definitions follow paper Section IV-A (Fig. 3):

* *precision* -- of the elements predicted sparse, the fraction that are
  actually sparse.  Low precision means live rows get skipped, which is
  what damages downstream accuracy.
* *recall* -- of the actually-sparse elements, the fraction the predictor
  identified.  Low recall means wasted work (rows computed that end up
  zero), which costs speed but not accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class PredictionQuality:
    """Confusion-matrix summary of skip predictions against ground truth."""

    true_positive: int
    false_positive: int
    true_negative: int
    false_negative: int

    @property
    def total(self) -> int:
        return (
            self.true_positive
            + self.false_positive
            + self.true_negative
            + self.false_negative
        )

    @property
    def precision(self) -> float:
        """P(actually sparse | predicted sparse); 1.0 when nothing predicted."""
        denom = self.true_positive + self.false_positive
        return self.true_positive / denom if denom else 1.0

    @property
    def recall(self) -> float:
        """P(predicted sparse | actually sparse); 1.0 when nothing is sparse."""
        denom = self.true_positive + self.false_negative
        return self.true_positive / denom if denom else 1.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    @property
    def actual_sparsity(self) -> float:
        """Fraction of elements that are truly sparse."""
        return (self.true_positive + self.false_negative) / self.total if self.total else 0.0

    @property
    def predicted_sparsity(self) -> float:
        """Fraction of elements the predictor marked sparse."""
        return (self.true_positive + self.false_positive) / self.total if self.total else 0.0

    @property
    def accuracy(self) -> float:
        return (self.true_positive + self.true_negative) / self.total if self.total else 1.0

    def merge(self, other: "PredictionQuality") -> "PredictionQuality":
        """Pool confusion counts across tokens/samples."""
        return PredictionQuality(
            true_positive=self.true_positive + other.true_positive,
            false_positive=self.false_positive + other.false_positive,
            true_negative=self.true_negative + other.true_negative,
            false_negative=self.false_negative + other.false_negative,
        )


def evaluate_skip_prediction(
    predicted: np.ndarray, actual: np.ndarray
) -> PredictionQuality:
    """Confusion counts of a predicted skip mask against the true mask.

    Both arguments are boolean arrays of identical shape where ``True``
    marks a sparse (skippable) element.
    """
    predicted = np.asarray(predicted, dtype=bool)
    actual = np.asarray(actual, dtype=bool)
    if predicted.shape != actual.shape:
        raise ValueError(
            f"shape mismatch: predicted {predicted.shape} vs actual {actual.shape}"
        )
    tp = int(np.count_nonzero(predicted & actual))
    fp = int(np.count_nonzero(predicted & ~actual))
    fn = int(np.count_nonzero(~predicted & actual))
    tn = int(np.count_nonzero(~predicted & ~actual))
    return PredictionQuality(
        true_positive=tp, false_positive=fp, true_negative=tn, false_negative=fn
    )


def sparsity(values: np.ndarray, threshold: float = 0.0) -> float:
    """Fraction of entries with magnitude <= ``threshold`` (default: zeros)."""
    values = np.asarray(values)
    if values.size == 0:
        return 0.0
    return float(np.count_nonzero(np.abs(values) <= threshold) / values.size)

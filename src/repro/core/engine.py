"""SparseInfer inference engine: model + predictor + sparse execution.

``build_engine`` wires the pieces the way the paper's system does: dense
prefill (sparsity is exploited only while decoding, Section V-C), sparse
decode through :class:`SparseInferMLP`, and an alpha schedule applied to
the early layers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..model.inference import InferenceModel
from ..model.mlp import DenseMLP
from ..model.weights import ModelWeights
from .alpha import AlphaSchedule
from .predictor import SparseInferPredictor
from .sparse_mlp import SparseInferMLP


@dataclass(frozen=True)
class SparseInferSettings:
    """User-facing knobs of the engine."""

    alpha: float = 1.0
    alpha_early: Optional[float] = None   # alpha for the first n_early layers
    n_early_layers: int = 20              # the paper's choice for 7B and 13B
    use_actual_sparsity: bool = True
    sparse_prefill: bool = False          # paper: prefill stays dense

    def schedule(self, n_layers: int) -> AlphaSchedule:
        if self.alpha_early is None:
            return AlphaSchedule.uniform(self.alpha, n_layers)
        return AlphaSchedule.early_layers(
            n_layers,
            alpha_early=self.alpha_early,
            n_early=self.n_early_layers,
            alpha_rest=self.alpha,
        )


def build_predictor(
    weights: ModelWeights, settings: SparseInferSettings
) -> SparseInferPredictor:
    """Offline step: pack sign bits and fix the alpha schedule."""
    return SparseInferPredictor.from_gate_weights(
        weights.gate_matrices(),
        settings.schedule(weights.config.n_layers),
    )


def build_engine(
    weights: ModelWeights,
    settings: Optional[SparseInferSettings] = None,
    predictor: Optional[SparseInferPredictor] = None,
    trace_mlp_inputs: bool = False,
) -> InferenceModel:
    """A ready-to-decode SparseInfer engine.

    Reuses a prebuilt ``predictor`` when given (packing is the only
    expensive offline step); otherwise packs from ``weights``.
    """
    settings = settings or SparseInferSettings()
    if predictor is None:
        predictor = build_predictor(weights, settings)
    else:
        predictor = predictor.with_schedule(
            settings.schedule(weights.config.n_layers)
        )
    sparse = SparseInferMLP(
        weights=weights,
        predictor=predictor,
        use_actual_sparsity=settings.use_actual_sparsity,
    )
    prefill = sparse if settings.sparse_prefill else DenseMLP(weights)
    return InferenceModel(
        weights,
        mlp=sparse,
        prefill_mlp=prefill,
        trace_mlp_inputs=trace_mlp_inputs,
    )


def dense_engine(weights: ModelWeights,
                 trace_mlp_inputs: bool = False) -> InferenceModel:
    """The llama.cpp-role dense reference engine."""
    return InferenceModel(weights, mlp=DenseMLP(weights),
                          trace_mlp_inputs=trace_mlp_inputs)


def build_batched_engine(
    weights: ModelWeights,
    settings: Optional[SparseInferSettings] = None,
    predictor: Optional[SparseInferPredictor] = None,
    max_batch_size: int = 8,
    max_seq_len: int = 0,
    paged: bool = False,
    page_size: int = 16,
    n_pages: int = 0,
    prefix_sharing: bool = False,
    cache_pages: int = 0,
    batched_attention: bool = False,
    attn_bucket_min_fill: float = 0.5,
    prefill_chunk: int = 0,
    sampling=None,
    speculation=None,
):
    """A serving-grade batched SparseInfer engine.

    Same knobs as :func:`build_engine` plus the slot pool size and the
    paged-KV geometry (``paged=True`` backs the slots with a shared
    page arena -- see :mod:`repro.model.paged_kvcache`; ``n_pages``
    caps the total KV memory budget; ``prefix_sharing=True`` lets
    admissions fork a resident sequence's refcounted pages instead of
    re-prefilling a shared prompt prefix, and ``cache_pages > 0``
    additionally keeps up to that many *retired* prompt-prefix pages in
    an LRU :class:`~repro.model.paged_kvcache.PrefixCache` so bursty
    same-prefix traffic whose requests never overlap in time can still
    revive them -- cached pages stay reclaimable, so reservations and
    admission guarantees are unchanged).  ``batched_attention=True``
    computes decode attention once for the whole batch (padded K/V
    stack + length mask, bucketed by ``attn_bucket_min_fill`` -- see
    :mod:`repro.model.batch_attention`), and ``prefill_chunk > 0``
    vectorises prompt prefill into causal chunks of that many tokens;
    both are token-identical to the scalar loops they replace.
    ``sampling`` sets the engine-default
    :class:`~repro.model.sampler.SamplerConfig` for requests that carry
    no per-request config (``None`` = greedy argmax, the pre-sampling
    behaviour), and ``speculation`` the engine-default
    :class:`~repro.serving.speculative.SpecConfig` for speculative
    self-drafting (``None`` = plain decode; the scheduler can still
    enable speculation on its own).  Returns
    a :class:`repro.serving.engine.BatchedEngine`: per-sequence KV
    slots, dense per-sequence prefill, batched sparse decode exploiting
    the cross-sequence intersection of predicted skip sets (imported
    lazily -- :mod:`repro.serving` builds on this module).
    """
    from ..serving.engine import BatchedEngine

    return BatchedEngine(
        weights,
        settings=settings,
        predictor=predictor,
        max_batch_size=max_batch_size,
        max_seq_len=max_seq_len,
        paged=paged,
        page_size=page_size,
        n_pages=n_pages,
        prefix_sharing=prefix_sharing,
        cache_pages=cache_pages,
        batched_attention=batched_attention,
        attn_bucket_min_fill=attn_bucket_min_fill,
        prefill_chunk=prefill_chunk,
        sampling=sampling,
        speculation=speculation,
    )

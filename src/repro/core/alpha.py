"""Per-layer conservativeness schedules for the SparseInfer predictor.

The paper's Eq. (2) refines the majority-sign test with a tunable
coefficient: predict sparse iff ``alpha * Npos < Nneg``.  ``alpha > 1``
makes the prediction more conservative (fewer rows skipped), ``alpha < 1``
more aggressive.  Section IV-A / V-B apply ``alpha`` slightly above 1.0 to
the *early* layers only (the first 20 layers of both the 7B and 13B
models), where the predictor is least precise, and 1.0 elsewhere.

The CUDA kernel receives alpha as a fixed-point integer scaled by 100
(``alpha_pct``); :class:`AlphaSchedule` stores both forms so the python
predictor and the GPU cost model agree bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

ALPHA_SCALE = 100


def alpha_to_fixed_point(alpha: float) -> int:
    """Convert a float alpha to the kernel's per-cent fixed point form."""
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    return int(round(alpha * ALPHA_SCALE))


@dataclass(frozen=True)
class AlphaSchedule:
    """Immutable per-layer alpha assignment.

    Attributes
    ----------
    alphas:
        One float per decoder layer.
    """

    alphas: tuple = field(default_factory=tuple)

    def __post_init__(self):
        for a in self.alphas:
            if a <= 0:
                raise ValueError(f"alpha values must be positive, got {a}")

    @classmethod
    def uniform(cls, alpha: float, n_layers: int) -> "AlphaSchedule":
        """Same alpha for every layer."""
        if n_layers <= 0:
            raise ValueError(f"n_layers must be positive, got {n_layers}")
        return cls(alphas=tuple([float(alpha)] * n_layers))

    @classmethod
    def early_layers(
        cls,
        n_layers: int,
        alpha_early: float,
        n_early: int = 20,
        alpha_rest: float = 1.0,
    ) -> "AlphaSchedule":
        """The paper's schedule: ``alpha_early`` on the first ``n_early``
        layers, ``alpha_rest`` (default 1.0) on the remainder.
        """
        if n_layers <= 0:
            raise ValueError(f"n_layers must be positive, got {n_layers}")
        n_early = max(0, min(n_early, n_layers))
        values = [float(alpha_early)] * n_early
        values += [float(alpha_rest)] * (n_layers - n_early)
        return cls(alphas=tuple(values))

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "AlphaSchedule":
        return cls(alphas=tuple(float(v) for v in values))

    @property
    def n_layers(self) -> int:
        return len(self.alphas)

    def __len__(self) -> int:
        return len(self.alphas)

    def __getitem__(self, layer: int) -> float:
        return self.alphas[layer]

    def fixed_point(self, layer: int) -> int:
        """Alpha for ``layer`` in the CUDA kernel's x100 integer form."""
        return alpha_to_fixed_point(self.alphas[layer])

    def with_layer(self, layer: int, alpha: float) -> "AlphaSchedule":
        """Return a copy with one layer's alpha replaced."""
        values = list(self.alphas)
        values[layer] = float(alpha)
        return AlphaSchedule(alphas=tuple(values))


def calibrate_alpha(
    precision_fn: Callable[[int, float], float],
    n_layers: int,
    target_precision: float = 0.99,
    candidates: Sequence[float] = (1.0, 1.01, 1.02, 1.03, 1.05, 1.1),
) -> AlphaSchedule:
    """Pick the smallest candidate alpha per layer reaching a precision target.

    The paper notes the optimal alpha "can be easily calibrated through test
    runs as the model changes".  ``precision_fn(layer, alpha)`` must return
    the measured skip-prediction precision for that layer at that alpha
    (e.g. from :mod:`repro.eval.precision_recall` traces).  Layers that never
    reach the target get the largest candidate (most conservative).
    """
    if not 0.0 < target_precision <= 1.0:
        raise ValueError(f"target_precision must be in (0, 1], got {target_precision}")
    ordered = sorted(set(float(c) for c in candidates))
    if not ordered:
        raise ValueError("candidates must be non-empty")
    chosen = []
    for layer in range(n_layers):
        pick = ordered[-1]
        for alpha in ordered:
            if precision_fn(layer, alpha) >= target_precision:
                pick = alpha
                break
        chosen.append(pick)
    return AlphaSchedule.from_values(chosen)


def sweep_grid(
    alphas: Sequence[float] = (1.0, 1.01, 1.02, 1.03),
) -> np.ndarray:
    """The paper's Figure-4 / Table-II alpha sweep as a numpy grid."""
    return np.asarray(sorted(alphas), dtype=np.float64)

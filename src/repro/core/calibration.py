"""Trace-driven calibration of the alpha schedule.

Paper Section IV-A: "The optimal value for alpha can be easily calibrated
through test runs as the model changes."  This module performs those test
runs: collect MLP traces from a short dense decode of calibration
prompts, measure per-layer precision across an alpha grid, and pick the
smallest alpha that reaches a precision target per layer (falling back to
the paper's empirical 1.01-1.03 band for early layers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..model.inference import InferenceModel, MLPTrace
from ..model.tokenizer import CharTokenizer
from ..model.weights import ModelWeights
from .alpha import AlphaSchedule
from .metrics import evaluate_skip_prediction
from .predictor import predict_skip_from_counts, true_skip_mask
from .signpack import PackedSigns, pack_signs


@dataclass(frozen=True)
class CalibrationResult:
    """Chosen schedule plus the measured precision grid behind it."""

    schedule: AlphaSchedule
    precision_grid: dict      # (layer, alpha) -> precision
    target_precision: float

    def precision(self, layer: int, alpha: float) -> float:
        return self.precision_grid[(layer, float(alpha))]


def collect_calibration_traces(
    weights: ModelWeights,
    tokenizer: CharTokenizer,
    prompts: Sequence[str],
    max_new_tokens: int = 4,
) -> list:
    """Short dense decodes over calibration prompts, traces recorded."""
    if not prompts:
        raise ValueError("need at least one calibration prompt")
    engine = InferenceModel(weights, trace_mlp_inputs=True)
    for prompt in prompts:
        engine.reset()
        engine.generate(tokenizer.encode(prompt, add_bos=True),
                        max_new_tokens)
    return engine.traces


def measure_precision_grid(
    traces: Sequence[MLPTrace],
    gate_matrices: Sequence[np.ndarray],
    alphas: Sequence[float],
) -> dict:
    """Pooled skip-prediction precision per (layer, alpha)."""
    if not traces:
        raise ValueError("no traces supplied")
    packed = [PackedSigns.from_matrix(w) for w in gate_matrices]
    # Pre-pack inputs once; reuse across the alpha grid.
    per_layer: dict = {}
    for trace in traces:
        p = packed[trace.layer]
        counts = p.negative_counts_packed(pack_signs(trace.x))
        actual = true_skip_mask(trace.gate_preact)
        per_layer.setdefault(trace.layer, []).append((counts, actual, p))
    grid: dict = {}
    for layer, entries in per_layer.items():
        for alpha in alphas:
            pooled = None
            for counts, actual, p in entries:
                predicted = predict_skip_from_counts(
                    counts, p.padded_bits, alpha
                )
                q = evaluate_skip_prediction(predicted, actual)
                pooled = q if pooled is None else pooled.merge(q)
            grid[(layer, float(alpha))] = pooled.precision
    return grid


def calibrate_schedule(
    weights: ModelWeights,
    tokenizer: CharTokenizer,
    prompts: Sequence[str],
    target_precision: float = 0.99,
    alphas: Sequence[float] = (1.0, 1.01, 1.02, 1.03, 1.05, 1.1),
    max_new_tokens: int = 4,
) -> CalibrationResult:
    """End-to-end calibration: trace, measure, choose per-layer alpha."""
    traces = collect_calibration_traces(
        weights, tokenizer, prompts, max_new_tokens
    )
    grid = measure_precision_grid(
        traces, weights.gate_matrices(), alphas
    )
    ordered = sorted(float(a) for a in alphas)
    chosen = []
    for layer in range(weights.config.n_layers):
        pick = ordered[-1]
        for alpha in ordered:
            if grid[(layer, alpha)] >= target_precision:
                pick = alpha
                break
        chosen.append(pick)
    return CalibrationResult(
        schedule=AlphaSchedule.from_values(chosen),
        precision_grid=grid,
        target_precision=target_precision,
    )

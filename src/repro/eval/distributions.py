"""Value-distribution analysis (paper Fig. 2).

Fig. 2 plots, per decoder layer, the distribution of the MLP input ``X``,
one gate row ``Wgate,i``, and their element-wise product
``Y = X * Wgate,i``, observing: near-Gaussian symmetric shapes, a
near-equal positive/negative split, product mean approaching zero, and
early-layer ``X`` concentrated around zero.  This module computes summary
statistics and histograms from the synthetic activation model (or any
(X, W) sample) so the bench can verify those properties quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as sps

from ..model.synthetic import SyntheticActivationModel


@dataclass(frozen=True)
class DistributionSummary:
    """Shape statistics of one empirical distribution."""

    mean: float
    std: float
    positive_fraction: float
    kurtosis: float          # excess kurtosis; >0 = heavier than Gaussian
    near_zero_fraction: float  # |v| < 0.1 * std

    @classmethod
    def from_values(cls, values: np.ndarray) -> "DistributionSummary":
        values = np.asarray(values, dtype=np.float64).reshape(-1)
        if values.size == 0:
            raise ValueError("empty sample")
        std = float(values.std())
        near = float(np.mean(np.abs(values) < 0.1 * std)) if std > 0 else 1.0
        return cls(
            mean=float(values.mean()),
            std=std,
            positive_fraction=float(np.mean(values > 0)),
            kurtosis=float(sps.kurtosis(values)),
            near_zero_fraction=near,
        )


@dataclass(frozen=True)
class LayerDistributionReport:
    """Fig. 2 panel for one layer."""

    layer: int
    x: DistributionSummary
    w_row: DistributionSummary
    product: DistributionSummary

    @property
    def product_mean_normalised(self) -> float:
        """Product mean over product std: should approach zero (Fig. 2)."""
        return self.product.mean / self.product.std if self.product.std else 0.0


def layer_distributions(
    model: SyntheticActivationModel,
    layer: int,
    n_tokens: int = 16,
    n_rows: int = 256,
) -> LayerDistributionReport:
    """Summaries of X, a sampled Wgate row, and their products."""
    sample = model.sample_layer(layer, n_tokens=n_tokens, n_rows=n_rows)
    x = sample.x
    w = sample.w_gate
    # Products of every token against every sampled row, element-wise.
    products = x[:, None, :] * w[None, :, :]
    return LayerDistributionReport(
        layer=layer,
        x=DistributionSummary.from_values(x),
        w_row=DistributionSummary.from_values(w),
        product=DistributionSummary.from_values(products),
    )


def figure2(
    model: SyntheticActivationModel,
    layers: list,
    n_tokens: int = 16,
    n_rows: int = 256,
) -> list:
    """Fig. 2 across the requested layers."""
    return [
        layer_distributions(model, layer, n_tokens, n_rows) for layer in layers
    ]


def histogram(values: np.ndarray, bins: int = 61,
              limit_sigma: float = 4.0) -> tuple[np.ndarray, np.ndarray]:
    """Symmetric histogram around zero (for plotting / ascii rendering)."""
    values = np.asarray(values, dtype=np.float64).reshape(-1)
    lim = limit_sigma * values.std() if values.std() > 0 else 1.0
    counts, edges = np.histogram(values, bins=bins, range=(-lim, lim))
    return counts, edges

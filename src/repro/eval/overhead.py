"""Predictor latency overhead (paper Section V-A.1).

The paper measures SparseInfer's predictor at ~70 us per token per layer
on ProSparse-Llama2-13B, 3.66x faster than PowerInfer's DejaVu predictor,
noting the gap is smaller than the op-count ratio because DejaVu's FP16
MACs run on tensor cores while the XORs run on CUDA cores.  We evaluate
both kernels on the device roofline.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpu.device import DeviceSpec
from ..gpu.kernels import (
    dejavu_predict_kernel,
    sign_pack_kernel,
    sparseinfer_predict_kernel,
)
from ..model.config import ModelConfig


@dataclass(frozen=True)
class PredictorOverheadReport:
    """Per-token-per-layer predictor latencies, in seconds."""

    model_name: str
    device_name: str
    sparseinfer_latency: float
    powerinfer_latency: float

    @property
    def speedup(self) -> float:
        """PowerInfer predictor latency / SparseInfer predictor latency."""
        return self.powerinfer_latency / self.sparseinfer_latency

    @property
    def sparseinfer_us(self) -> float:
        return self.sparseinfer_latency * 1e6

    @property
    def powerinfer_us(self) -> float:
        return self.powerinfer_latency * 1e6


def predictor_overhead(
    config: ModelConfig, device: DeviceSpec, dejavu_rank: int = 1024
) -> PredictorOverheadReport:
    d, k = config.d_model, config.d_ff
    sparseinfer = (
        sign_pack_kernel(d, config.dtype_bytes).latency(device)
        + sparseinfer_predict_kernel(k, d).latency(device)
    )
    powerinfer = dejavu_predict_kernel(
        d, dejavu_rank, k, config.dtype_bytes
    ).latency(device)
    return PredictorOverheadReport(
        model_name=config.name,
        device_name=device.name,
        sparseinfer_latency=sparseinfer,
        powerinfer_latency=powerinfer,
    )

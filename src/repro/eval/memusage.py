"""Memory-usage comparisons: predictor footprints and KV-cache paging.

Two accountings live here:

* the paper's Section V-A.2 predictor comparison (PowerInfer's trained
  DejaVu predictors vs SparseInfer's packed sign bits);
* the serving engine's KV-cache footprint -- fixed per-slot arrays vs
  the page-granular pool of :mod:`repro.model.paged_kvcache` -- for a
  given request-length distribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..gpu.memory import (
    MIB,
    dejavu_predictor_bytes,
    kv_cache_bytes,
    sparseinfer_predictor_bytes,
)
from ..model.config import ModelConfig


@dataclass(frozen=True)
class PredictorMemoryComparison:
    """Section V-A.2: PowerInfer vs SparseInfer predictor footprints."""

    model_name: str
    powerinfer_bytes: float
    sparseinfer_bytes: float

    @property
    def powerinfer_mib(self) -> float:
        return self.powerinfer_bytes / MIB

    @property
    def sparseinfer_mib(self) -> float:
        return self.sparseinfer_bytes / MIB

    @property
    def reduction_factor(self) -> float:
        """The paper reports 4.38x for ProSparse-Llama2-13B."""
        return self.powerinfer_bytes / self.sparseinfer_bytes


def compare_predictor_memory(
    config: ModelConfig, dejavu_rank: int = 1024
) -> PredictorMemoryComparison:
    return PredictorMemoryComparison(
        model_name=config.name,
        powerinfer_bytes=dejavu_predictor_bytes(config, dejavu_rank),
        sparseinfer_bytes=sparseinfer_predictor_bytes(config),
    )


def format_comparison(cmp: PredictorMemoryComparison) -> str:
    return (
        f"{cmp.model_name}: PowerInfer predictor {cmp.powerinfer_mib:.1f} MiB, "
        f"SparseInfer {cmp.sparseinfer_mib:.1f} MiB "
        f"({cmp.reduction_factor:.2f}x less)"
    )


# -- KV-cache footprint: fixed slots vs paged pool -------------------------


def fixed_slot_kv_bytes(config: ModelConfig, n_slots: int,
                        max_seq_len: int = 0) -> float:
    """Resident KV bytes of a fixed :class:`BatchedKVCache` pool.

    Every slot holds the full ``max_seq_len`` regardless of what its
    request uses, so the footprint scales with the worst case.
    """
    if n_slots < 1:
        raise ValueError(f"n_slots must be >= 1, got {n_slots}")
    seq = max_seq_len or config.max_seq_len
    return n_slots * kv_cache_bytes(config, seq)


def paged_kv_bytes(config: ModelConfig, n_pages: int,
                   page_size: int = 16) -> float:
    """Resident KV bytes of a :class:`PagePool` arena of ``n_pages``."""
    if n_pages < 0:
        raise ValueError(f"n_pages must be >= 0, got {n_pages}")
    return n_pages * kv_cache_bytes(config, page_size)


def pages_for_lengths(lengths: Sequence[int], page_size: int = 16) -> int:
    """Total pages needed to hold one sequence per entry of ``lengths``."""
    if page_size < 1:
        raise ValueError(f"page_size must be >= 1, got {page_size}")
    return sum(-(-int(n) // page_size) for n in lengths)


@dataclass(frozen=True)
class KVFootprintComparison:
    """Fixed-slot vs paged KV bytes to co-hold one set of requests.

    ``lengths`` are per-request KV positions (worst case:
    ``prompt_len + max_new_tokens - 1``).  The fixed pool needs one
    ``max_seq_len`` slot per request; the paged pool needs
    ``ceil(length / page_size)`` pages per request.  Internal page
    fragmentation (the unused tail of each request's last page) is the
    only waste paging keeps, which bounds it at ``page_size - 1``
    positions per sequence.
    """

    model_name: str
    max_seq_len: int
    page_size: int
    n_requests: int
    n_pages: int
    fixed_bytes: float
    paged_bytes: float

    @property
    def fixed_mib(self) -> float:
        return self.fixed_bytes / MIB

    @property
    def paged_mib(self) -> float:
        return self.paged_bytes / MIB

    @property
    def reduction_factor(self) -> float:
        return self.fixed_bytes / self.paged_bytes if self.paged_bytes else float("inf")


def compare_kv_footprint(
    config: ModelConfig,
    lengths: Sequence[int],
    max_seq_len: int = 0,
    page_size: int = 16,
) -> KVFootprintComparison:
    """KV bytes to co-schedule ``lengths`` fixed-slot vs paged."""
    seq = max_seq_len or config.max_seq_len
    # len(), not truthiness: a numpy array of lengths raises on bool().
    if len(lengths) == 0:
        raise ValueError("lengths must be non-empty")
    for n in lengths:
        if n > seq:
            raise ValueError(
                f"request length {n} exceeds max_seq_len {seq}"
            )
    n_pages = pages_for_lengths(lengths, page_size)
    return KVFootprintComparison(
        model_name=config.name,
        max_seq_len=seq,
        page_size=page_size,
        n_requests=len(lengths),
        n_pages=n_pages,
        fixed_bytes=fixed_slot_kv_bytes(config, len(lengths), seq),
        paged_bytes=paged_kv_bytes(config, n_pages, page_size),
    )


def format_kv_footprint(cmp: KVFootprintComparison) -> str:
    return (
        f"{cmp.model_name}: {cmp.n_requests} requests co-resident -- "
        f"fixed slots {cmp.fixed_mib:.2f} MiB "
        f"({cmp.n_requests} x {cmp.max_seq_len} positions), "
        f"paged {cmp.paged_mib:.2f} MiB "
        f"({cmp.n_pages} pages of {cmp.page_size}) "
        f"= {cmp.reduction_factor:.2f}x less"
    )

"""Predictor memory-usage comparison (paper Section V-A.2)."""

from __future__ import annotations

from dataclasses import dataclass

from ..gpu.memory import (
    MIB,
    dejavu_predictor_bytes,
    sparseinfer_predictor_bytes,
)
from ..model.config import ModelConfig


@dataclass(frozen=True)
class PredictorMemoryComparison:
    """Section V-A.2: PowerInfer vs SparseInfer predictor footprints."""

    model_name: str
    powerinfer_bytes: float
    sparseinfer_bytes: float

    @property
    def powerinfer_mib(self) -> float:
        return self.powerinfer_bytes / MIB

    @property
    def sparseinfer_mib(self) -> float:
        return self.sparseinfer_bytes / MIB

    @property
    def reduction_factor(self) -> float:
        """The paper reports 4.38x for ProSparse-Llama2-13B."""
        return self.powerinfer_bytes / self.sparseinfer_bytes


def compare_predictor_memory(
    config: ModelConfig, dejavu_rank: int = 1024
) -> PredictorMemoryComparison:
    return PredictorMemoryComparison(
        model_name=config.name,
        powerinfer_bytes=dejavu_predictor_bytes(config, dejavu_rank),
        sparseinfer_bytes=sparseinfer_predictor_bytes(config),
    )


def format_comparison(cmp: PredictorMemoryComparison) -> str:
    return (
        f"{cmp.model_name}: PowerInfer predictor {cmp.powerinfer_mib:.1f} MiB, "
        f"SparseInfer {cmp.sparseinfer_mib:.1f} MiB "
        f"({cmp.reduction_factor:.2f}x less)"
    )

"""Memory-usage comparisons: predictor footprints and KV-cache paging.

Three accountings live here:

* the paper's Section V-A.2 predictor comparison (PowerInfer's trained
  DejaVu predictors vs SparseInfer's packed sign bits);
* the serving engine's KV-cache footprint -- fixed per-slot arrays vs
  the page-granular pool of :mod:`repro.model.paged_kvcache` -- for a
  given request-length distribution;
* the prefix-sharing footprint -- per-sequence prefix copies vs one
  refcounted set of shared prefix pages -- for a co-resident set with a
  common prompt prefix (few-shot style workloads).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..gpu.memory import (
    MIB,
    dejavu_predictor_bytes,
    kv_cache_bytes,
    sparseinfer_predictor_bytes,
)
from ..model.config import ModelConfig


@dataclass(frozen=True)
class PredictorMemoryComparison:
    """Section V-A.2: PowerInfer vs SparseInfer predictor footprints."""

    model_name: str
    powerinfer_bytes: float
    sparseinfer_bytes: float

    @property
    def powerinfer_mib(self) -> float:
        return self.powerinfer_bytes / MIB

    @property
    def sparseinfer_mib(self) -> float:
        return self.sparseinfer_bytes / MIB

    @property
    def reduction_factor(self) -> float:
        """The paper reports 4.38x for ProSparse-Llama2-13B."""
        return self.powerinfer_bytes / self.sparseinfer_bytes


def compare_predictor_memory(
    config: ModelConfig, dejavu_rank: int = 1024
) -> PredictorMemoryComparison:
    return PredictorMemoryComparison(
        model_name=config.name,
        powerinfer_bytes=dejavu_predictor_bytes(config, dejavu_rank),
        sparseinfer_bytes=sparseinfer_predictor_bytes(config),
    )


def format_comparison(cmp: PredictorMemoryComparison) -> str:
    return (
        f"{cmp.model_name}: PowerInfer predictor {cmp.powerinfer_mib:.1f} MiB, "
        f"SparseInfer {cmp.sparseinfer_mib:.1f} MiB "
        f"({cmp.reduction_factor:.2f}x less)"
    )


# -- KV-cache footprint: fixed slots vs paged pool -------------------------


def fixed_slot_kv_bytes(config: ModelConfig, n_slots: int,
                        max_seq_len: int = 0) -> float:
    """Resident KV bytes of a fixed :class:`BatchedKVCache` pool.

    Every slot holds the full ``max_seq_len`` regardless of what its
    request uses, so the footprint scales with the worst case.
    """
    if n_slots < 1:
        raise ValueError(f"n_slots must be >= 1, got {n_slots}")
    seq = max_seq_len or config.max_seq_len
    return n_slots * kv_cache_bytes(config, seq)


def paged_kv_bytes(config: ModelConfig, n_pages: int,
                   page_size: int = 16) -> float:
    """Resident KV bytes of a :class:`PagePool` arena of ``n_pages``."""
    if n_pages < 0:
        raise ValueError(f"n_pages must be >= 0, got {n_pages}")
    return n_pages * kv_cache_bytes(config, page_size)


def pages_for_lengths(lengths: Sequence[int], page_size: int = 16) -> int:
    """Total pages needed to hold one sequence per entry of ``lengths``."""
    if page_size < 1:
        raise ValueError(f"page_size must be >= 1, got {page_size}")
    return sum(-(-int(n) // page_size) for n in lengths)


@dataclass(frozen=True)
class KVFootprintComparison:
    """Fixed-slot vs paged KV bytes to co-hold one set of requests.

    ``lengths`` are per-request KV positions (worst case:
    ``prompt_len + max_new_tokens - 1``).  The fixed pool needs one
    ``max_seq_len`` slot per request; the paged pool needs
    ``ceil(length / page_size)`` pages per request.  Internal page
    fragmentation (the unused tail of each request's last page) is the
    only waste paging keeps, which bounds it at ``page_size - 1``
    positions per sequence.
    """

    model_name: str
    max_seq_len: int
    page_size: int
    n_requests: int
    n_pages: int
    fixed_bytes: float
    paged_bytes: float

    @property
    def fixed_mib(self) -> float:
        return self.fixed_bytes / MIB

    @property
    def paged_mib(self) -> float:
        return self.paged_bytes / MIB

    @property
    def reduction_factor(self) -> float:
        return self.fixed_bytes / self.paged_bytes if self.paged_bytes else float("inf")


def compare_kv_footprint(
    config: ModelConfig,
    lengths: Sequence[int],
    max_seq_len: int = 0,
    page_size: int = 16,
) -> KVFootprintComparison:
    """KV bytes to co-schedule ``lengths`` fixed-slot vs paged."""
    seq = max_seq_len or config.max_seq_len
    # len(), not truthiness: a numpy array of lengths raises on bool().
    if len(lengths) == 0:
        raise ValueError("lengths must be non-empty")
    for n in lengths:
        if n > seq:
            raise ValueError(
                f"request length {n} exceeds max_seq_len {seq}"
            )
    n_pages = pages_for_lengths(lengths, page_size)
    return KVFootprintComparison(
        model_name=config.name,
        max_seq_len=seq,
        page_size=page_size,
        n_requests=len(lengths),
        n_pages=n_pages,
        fixed_bytes=fixed_slot_kv_bytes(config, len(lengths), seq),
        paged_bytes=paged_kv_bytes(config, n_pages, page_size),
    )


def format_kv_footprint(cmp: KVFootprintComparison) -> str:
    return (
        f"{cmp.model_name}: {cmp.n_requests} requests co-resident -- "
        f"fixed slots {cmp.fixed_mib:.2f} MiB "
        f"({cmp.n_requests} x {cmp.max_seq_len} positions), "
        f"paged {cmp.paged_mib:.2f} MiB "
        f"({cmp.n_pages} pages of {cmp.page_size}) "
        f"= {cmp.reduction_factor:.2f}x less"
    )


# -- prefix sharing: refcounted pages vs per-sequence copies ----------------


def pages_for_shared_prefix(lengths: Sequence[int], shared_prefix: int,
                            page_size: int = 16) -> int:
    """Total pages when every sequence shares one prompt prefix.

    Mirrors :meth:`repro.model.paged_kvcache.PagedKVCache.fork`: the
    ``shared_prefix // page_size`` full prefix pages are resident
    **once** (refcounted), while each sequence privately holds its
    remaining pages -- including the eagerly-copied partial prefix page
    when ``shared_prefix`` is not page-aligned.
    """
    if page_size < 1:
        raise ValueError(f"page_size must be >= 1, got {page_size}")
    if shared_prefix < 0:
        raise ValueError(f"shared_prefix must be >= 0, got {shared_prefix}")
    if len(lengths) == 0:
        return 0               # no sequences -> no pages resident
    full_shared = shared_prefix // page_size
    total = full_shared
    for n in lengths:
        if n < shared_prefix:
            raise ValueError(
                f"request length {n} is below the shared prefix "
                f"{shared_prefix}"
            )
        total += -(-int(n) // page_size) - full_shared
    return total


@dataclass(frozen=True)
class SharedPrefixKVComparison:
    """Paged KV bytes for one co-resident set, with vs without sharing.

    ``lengths`` are per-request KV positions, every request carrying the
    same ``shared_prefix`` leading positions.  Without sharing each
    sequence stores its own copy of the prefix pages; with sharing the
    full prefix pages are stored once and refcounted.
    """

    model_name: str
    page_size: int
    shared_prefix: int
    n_requests: int
    pages_unshared: int
    pages_shared: int
    unshared_bytes: float
    shared_bytes: float

    @property
    def unshared_mib(self) -> float:
        return self.unshared_bytes / MIB

    @property
    def shared_mib(self) -> float:
        return self.shared_bytes / MIB

    @property
    def reduction_factor(self) -> float:
        return self.unshared_bytes / self.shared_bytes if self.shared_bytes \
            else float("inf")


def compare_shared_prefix_footprint(
    config: ModelConfig,
    lengths: Sequence[int],
    shared_prefix: int,
    page_size: int = 16,
) -> SharedPrefixKVComparison:
    """Paged KV bytes to co-schedule ``lengths`` with/without sharing."""
    if len(lengths) == 0:
        raise ValueError("lengths must be non-empty")
    unshared = pages_for_lengths(lengths, page_size)
    shared = pages_for_shared_prefix(lengths, shared_prefix, page_size)
    return SharedPrefixKVComparison(
        model_name=config.name,
        page_size=page_size,
        shared_prefix=shared_prefix,
        n_requests=len(lengths),
        pages_unshared=unshared,
        pages_shared=shared,
        unshared_bytes=paged_kv_bytes(config, unshared, page_size),
        shared_bytes=paged_kv_bytes(config, shared, page_size),
    )


def format_shared_prefix_footprint(cmp: SharedPrefixKVComparison) -> str:
    return (
        f"{cmp.model_name}: {cmp.n_requests} requests sharing a "
        f"{cmp.shared_prefix}-position prefix -- unshared "
        f"{cmp.unshared_mib:.2f} MiB ({cmp.pages_unshared} pages), "
        f"prefix-shared {cmp.shared_mib:.2f} MiB "
        f"({cmp.pages_shared} pages of {cmp.page_size}) "
        f"= {cmp.reduction_factor:.2f}x less"
    )

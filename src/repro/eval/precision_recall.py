"""Per-layer precision/recall of the sparsity prediction (paper Fig. 3).

Two data paths:

* :func:`figure3_synthetic` -- full-dimension statistical activation model
  (true 7B/13B widths and depths), matching the paper's per-layer curves;
* :func:`quality_from_traces` -- recorded MLP traces from a *trained* role
  model, used to cross-check the synthetic results on a real network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.metrics import PredictionQuality, evaluate_skip_prediction
from ..core.predictor import (
    SparseInferPredictor,
    predict_skip_from_counts,
    true_skip_mask,
)
from ..core.signpack import PackedSigns, pack_signs
from ..model.inference import MLPTrace
from ..model.synthetic import SyntheticActivationModel


@dataclass(frozen=True)
class LayerQuality:
    """Fig. 3 data point for one layer."""

    layer: int
    alpha: float
    quality: PredictionQuality

    @property
    def precision(self) -> float:
        return self.quality.precision

    @property
    def recall(self) -> float:
        return self.quality.recall


def layer_quality_synthetic(
    model: SyntheticActivationModel,
    layer: int,
    alpha: float = 1.0,
    n_tokens: int = 16,
    n_rows: int = 768,
) -> LayerQuality:
    """Precision/recall of the sign predictor on one synthetic layer."""
    sample = model.sample_layer(layer, n_tokens=n_tokens, n_rows=n_rows)
    predictor = SparseInferPredictor.from_gate_weights([sample.w_gate])
    predicted = predictor.predict_batch(0, sample.x, alpha=alpha)
    quality = evaluate_skip_prediction(predicted, sample.true_sparse)
    return LayerQuality(layer=layer, alpha=alpha, quality=quality)


def figure3_synthetic(
    model: SyntheticActivationModel,
    alpha: float = 1.0,
    n_tokens: int = 16,
    n_rows: int = 768,
    layers: Sequence[int] = (),
) -> list:
    """Fig. 3 curve across all (or selected) layers."""
    layer_ids = list(layers) if layers else list(range(model.config.n_layers))
    return [
        layer_quality_synthetic(model, layer, alpha, n_tokens, n_rows)
        for layer in layer_ids
    ]


def quality_from_traces(
    traces: Sequence[MLPTrace],
    gate_matrices: Sequence[np.ndarray],
    alpha: float = 1.0,
) -> list:
    """Per-layer prediction quality from recorded dense-engine traces.

    ``gate_matrices`` are the per-layer ``(k, d)`` gate weights of the
    traced model; ``traces`` carry both the inputs and the exact
    pre-activations, so predicted and true masks come from the same data.
    """
    packed = [PackedSigns.from_matrix(w) for w in gate_matrices]
    pooled: dict = {}
    for trace in traces:
        p = packed[trace.layer]
        n_neg = p.negative_counts_packed(pack_signs(trace.x))
        predicted = predict_skip_from_counts(n_neg, p.padded_bits, alpha)
        actual = true_skip_mask(trace.gate_preact)
        q = evaluate_skip_prediction(predicted, actual)
        if trace.layer in pooled:
            pooled[trace.layer] = pooled[trace.layer].merge(q)
        else:
            pooled[trace.layer] = q
    return [
        LayerQuality(layer=layer, alpha=alpha, quality=pooled[layer])
        for layer in sorted(pooled)
    ]

"""Generative exact-match evaluation driver (the lm-harness role).

The paper evaluates with generation-based benchmarks (GSM8K, BBH) because
SparseInfer sparsifies only the decoding phase, making log-likelihood
scoring inadequate.  This harness mirrors that: prompts are prefilled
(dense), answers are decoded greedily (through whichever MLP executor the
engine carries), and accuracy is exact string match on the answer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..model.inference import InferenceModel
from ..model.tokenizer import CharTokenizer
from ..workloads.gsm8k_like import TaskSample


@dataclass(frozen=True)
class SampleResult:
    """Outcome of one evaluated problem."""

    prompt: str
    expected: str
    generated: str

    @property
    def correct(self) -> bool:
        return self.generated == self.expected


@dataclass
class EvalResult:
    """Aggregate accuracy over a task set."""

    task: str
    results: list = field(default_factory=list)

    @property
    def n_samples(self) -> int:
        return len(self.results)

    @property
    def n_correct(self) -> int:
        return sum(1 for r in self.results if r.correct)

    @property
    def accuracy(self) -> float:
        """Exact-match accuracy in percent (paper-style)."""
        return 100.0 * self.n_correct / self.n_samples if self.results else 0.0


def evaluate(
    engine: InferenceModel,
    tokenizer: CharTokenizer,
    samples: Sequence[TaskSample],
    task: str = "task",
    max_new_tokens: int = 6,
) -> EvalResult:
    """Run exact-match generative evaluation of ``engine`` on ``samples``."""
    if not samples:
        raise ValueError("no samples to evaluate")
    result = EvalResult(task=task)
    stop = {tokenizer.eos_id, tokenizer.pad_id}
    for sample in samples:
        prompt_ids = tokenizer.encode(sample.prompt, add_bos=True)
        gen = engine.generate(prompt_ids, max_new_tokens, stop_ids=stop)
        text = tokenizer.decode(gen.generated_ids)
        result.results.append(
            SampleResult(
                prompt=sample.prompt, expected=sample.answer, generated=text
            )
        )
    return result

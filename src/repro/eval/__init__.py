"""Per-table/figure evaluation harnesses (see DESIGN.md experiment index)."""

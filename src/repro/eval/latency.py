"""End-to-end token-generation latency (paper Fig. 4).

Pipeline:

1. For every alpha in the sweep, *measure* per-layer predicted-skip and
   union-skip (predicted + actual) fractions on the full-dimension
   synthetic activation model -- so precision/recall effects of alpha
   propagate into exploited sparsity exactly as in the real system.
2. Feed those :class:`SparsityProfile` objects into the GPU roofline
   pipeline for each engine variant: llama.cpp (dense), PowerInfer, and
   the four SparseInfer variants (base, +KF, +AS, +KF+AS).

PowerInfer's exploited skip fraction is a calibration constant
(:data:`POWERINFER_REALIZED_SKIP`): its DejaVu predictors are trained
precision-biased, and its neuron-cluster format exploits less of the
nominal sparsity than row-skipping does (see DESIGN.md section 5.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..core.alpha import AlphaSchedule
from ..core.predictor import SparseInferPredictor
from ..gpu.device import DeviceSpec, jetson_orin_agx_64gb
from ..gpu.pipeline import (
    EngineSpec,
    LatencyReport,
    SparsityProfile,
    decode_latency,
    dense_engine,
    powerinfer_engine,
)
from ..model.config import ModelConfig
from ..model.synthetic import SyntheticActivationModel

POWERINFER_REALIZED_SKIP = 0.84
PAPER_ALPHA_GRID = (1.00, 1.01, 1.02, 1.03)
PAPER_N_EARLY_LAYERS = 20


@dataclass(frozen=True)
class MeasuredSparsity:
    """Per-layer skip fractions measured at one alpha."""

    alpha: float
    predicted_skip: np.ndarray  # (n_layers,)
    union_skip: np.ndarray      # (n_layers,)

    def profile(self) -> SparsityProfile:
        return SparsityProfile.from_arrays(
            self.predicted_skip, self.union_skip
        )


def measure_sparsity(
    model: SyntheticActivationModel,
    alpha: float,
    n_early: int = PAPER_N_EARLY_LAYERS,
    n_tokens: int = 6,
    n_rows: int = 512,
) -> MeasuredSparsity:
    """Skip fractions under the paper's alpha schedule (early layers only).

    ``union_skip`` is the fraction of rows either predicted sparse or
    actually zero after ReLU -- what +AS exploits in steps 2-4.
    """
    n_layers = model.config.n_layers
    schedule = AlphaSchedule.early_layers(
        n_layers, alpha_early=alpha, n_early=n_early, alpha_rest=1.0
    )
    predicted = np.empty(n_layers)
    union = np.empty(n_layers)
    for layer in range(n_layers):
        sample = model.sample_layer(layer, n_tokens=n_tokens, n_rows=n_rows)
        predictor = SparseInferPredictor.from_gate_weights([sample.w_gate])
        masks = predictor.predict_batch(0, sample.x, alpha=schedule[layer])
        predicted[layer] = masks.mean()
        union[layer] = (masks | sample.true_sparse).mean()
    return MeasuredSparsity(
        alpha=alpha, predicted_skip=predicted, union_skip=union
    )


@dataclass
class Figure4Result:
    """All the bars of one Fig. 4 panel (one model)."""

    model_name: str
    llamacpp: LatencyReport
    powerinfer: LatencyReport
    # {alpha: {variant_label: LatencyReport}}
    sparseinfer: dict = field(default_factory=dict)

    def speedup_over_llamacpp(self, alpha: float, variant: str) -> float:
        return self.sparseinfer[alpha][variant].speedup_over(self.llamacpp)

    def speedup_over_powerinfer(self, alpha: float, variant: str) -> float:
        return self.sparseinfer[alpha][variant].speedup_over(self.powerinfer)


SPARSEINFER_VARIANTS = {
    "base": dict(kernel_fusion=False, actual_sparsity=False),
    "+KF": dict(kernel_fusion=True, actual_sparsity=False),
    "+AS": dict(kernel_fusion=False, actual_sparsity=True),
    "+KF+AS": dict(kernel_fusion=True, actual_sparsity=True),
}


def figure4(
    config: ModelConfig,
    device: Optional[DeviceSpec] = None,
    alphas: Sequence[float] = PAPER_ALPHA_GRID,
    seed: int = 0,
    seq_len: int = 700,
    n_tokens: int = 6,
    n_rows: int = 512,
) -> Figure4Result:
    """Reproduce one panel of Fig. 4 for ``config``."""
    device = device or jetson_orin_agx_64gb()
    model = SyntheticActivationModel(config, seed=seed)
    base = decode_latency(config, dense_engine(), device, seq_len=seq_len)
    pi_profile = SparsityProfile.uniform(
        config.n_layers, POWERINFER_REALIZED_SKIP
    )
    powerinfer = decode_latency(
        config, powerinfer_engine(), device, pi_profile, seq_len=seq_len
    )
    result = Figure4Result(
        model_name=config.name, llamacpp=base, powerinfer=powerinfer
    )
    for alpha in alphas:
        measured = measure_sparsity(
            model, alpha, n_tokens=n_tokens, n_rows=n_rows
        )
        profile = measured.profile()
        variants = {}
        for label, flags in SPARSEINFER_VARIANTS.items():
            spec = EngineSpec(kind="sparseinfer", **flags)
            variants[label] = decode_latency(
                config, spec, device, profile, seq_len=seq_len
            )
        result.sparseinfer[float(alpha)] = variants
    return result


@dataclass(frozen=True)
class ServingMeasurement:
    """Measured throughput/latency of one serving configuration.

    ``intersection_skip`` is the realised cross-sequence skip fraction
    (weight-read granularity) and ``sequence_skip`` the mean per-sequence
    prediction -- the batch=1 ceiling the intersection decays from, to be
    compared against :func:`repro.gpu.batching.batch_skip_fraction`.

    ``mean_decode_steps_per_request`` counts the model forwards a request
    took part in after its prefill (its first token comes from the
    prefill logits in both engines), so the same request costs the same
    value at any batch size -- queueing delay is deliberately excluded;
    use :class:`repro.serving.Completion` tick telemetry for that.

    ``expected_uncorrelated_skip`` is the analytical ``skip^B`` the
    intersection would decay to for independent sequences at the
    realised mean occupancy; ``forked_admissions`` /
    ``prefill_tokens_saved`` are non-zero only when the engine ran with
    prefix sharing.
    """

    label: str
    max_batch_size: int
    n_requests: int
    tokens_generated: int
    prefill_seconds: float
    decode_seconds: float
    decode_steps: int
    mean_batch_occupancy: float
    mean_decode_steps_per_request: float
    intersection_skip: float
    sequence_skip: float
    expected_uncorrelated_skip: float = 0.0
    forked_admissions: int = 0
    prefill_tokens_saved: int = 0
    # Non-zero only when the engine ran cache_pages > 0: admissions
    # served by reviving retired prefix pages, the prompt positions
    # those revives skipped, and cached pages reclaimed under pressure.
    revived_admissions: int = 0
    revived_tokens: int = 0
    cache_evictions: int = 0
    peak_occupancy: int = 0
    # Non-zero only when the engine ran batched_attention=True: the
    # fraction of gathered K/V cells the length masks discarded, and
    # the mean length-bucket count per batched decode step.
    attn_padding_waste: float = 0.0
    mean_attn_buckets: float = 0.0
    # Budgeted-tick / preemption telemetry (scheduler step_budget /
    # preemption knobs): tail latency comes from per-request wall-clock
    # stamps, peak_tick_prefill_tokens is the largest per-tick
    # prefill+replay feed (<= the budget when one is set).
    step_budget: int = 0
    preemptions: int = 0
    resumed_admissions: int = 0
    piggybacked_chunks: int = 0
    piggybacked_tokens: int = 0
    peak_tick_prefill_tokens: int = 0
    replayed_tokens: int = 0
    replay_seconds: float = 0.0
    # Sampling telemetry (engine/request sampling configs): the
    # greedy-vs-stream token split and the vectorised sampler's wall
    # time (ServeReport.greedy_tokens / sampled_tokens / sampler_seconds).
    greedy_tokens: int = 0
    sampled_tokens: int = 0
    sampler_seconds: float = 0.0
    # Speculation telemetry (engine/scheduler speculation knob): drafts
    # fed to verification, the subset accepted, and the wall time each
    # speculation phase spent (ServeReport.drafted_tokens /
    # accepted_tokens / draft_seconds / verify_seconds).
    drafted_tokens: int = 0
    accepted_tokens: int = 0
    draft_seconds: float = 0.0
    verify_seconds: float = 0.0
    ttft_p50_seconds: float = 0.0
    ttft_p99_seconds: float = 0.0
    itl_p50_seconds: float = 0.0
    itl_p99_seconds: float = 0.0
    max_itl_seconds: float = 0.0
    # Goodput / SLO telemetry (scheduler admission knob): the
    # ServeReport met/missed/shed split, SLO-met tokens, and the
    # per-class digest from ServeReport.class_telemetry() -- non-trivial
    # only when requests carry SLOSpec contracts.
    admission: str = "fifo"
    slo_met_requests: int = 0
    slo_missed_requests: int = 0
    shed_requests: int = 0
    goodput_tokens: int = 0
    class_stats: dict = field(default_factory=dict)

    @property
    def wall_seconds(self) -> float:
        return (self.prefill_seconds + self.decode_seconds
                + self.replay_seconds + self.sampler_seconds
                + self.draft_seconds + self.verify_seconds)

    @property
    def acceptance_rate(self) -> float:
        """Fraction of drafted tokens the verify pass accepted."""
        return (self.accepted_tokens / self.drafted_tokens
                if self.drafted_tokens else 0.0)

    @property
    def tokens_per_second(self) -> float:
        return self.tokens_generated / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def decode_tokens_per_second(self) -> float:
        return self.tokens_generated / self.decode_seconds if self.decode_seconds else 0.0

    @property
    def goodput_fraction(self) -> float:
        """Fraction of generated tokens that counted as goodput."""
        return (self.goodput_tokens / self.tokens_generated
                if self.tokens_generated else 0.0)

    def speedup_over(self, other: "ServingMeasurement") -> float:
        return self.tokens_per_second / other.tokens_per_second


def measure_batched_serving(
    weights,
    requests,
    max_batch_size: int,
    settings=None,
    predictor=None,
    paged: bool = False,
    page_size: int = 16,
    n_pages: int = 0,
    prefix_sharing: bool = False,
    cache_pages: int = 0,
    reorder_window: int = 0,
    batched_attention: bool = False,
    attn_bucket_min_fill: float = 0.5,
    prefill_chunk: int = 0,
    step_budget: int = 0,
    preemption: bool = False,
    sampling=None,
    speculation=None,
    admission: str = "fifo",
    deadline_window: int = 8,
) -> ServingMeasurement:
    """Drain ``requests`` through a batched engine and measure throughput.

    ``requests`` is a sequence of :class:`repro.serving.Request`; a fresh
    engine/scheduler pair is built per call so measurements are
    independent.  The paged/prefix-sharing/batched-attention/chunked-
    prefill knobs mirror :func:`repro.core.engine.build_batched_engine`
    and the scheduler's ``reorder_window`` (correlation-aware
    admission), ``step_budget`` (per-tick prefill piggybacking) and
    ``preemption`` (priority eviction) knobs.  ``sampling`` sets the
    engine-default :class:`repro.model.sampler.SamplerConfig` for
    requests without their own (None = greedy argmax), and
    ``speculation`` a :class:`repro.serving.SpecConfig` enabling
    speculative self-drafting (None = plain decode).  ``admission`` /
    ``deadline_window`` select the scheduler's arbitration policy
    (``"deadline"`` = EDF + load shedding over SLO contracts).
    """
    from ..core.engine import build_batched_engine
    from ..serving.scheduler import ContinuousBatchingScheduler

    engine = build_batched_engine(
        weights, settings=settings, predictor=predictor,
        max_batch_size=max_batch_size,
        paged=paged, page_size=page_size, n_pages=n_pages,
        prefix_sharing=prefix_sharing, cache_pages=cache_pages,
        batched_attention=batched_attention,
        attn_bucket_min_fill=attn_bucket_min_fill,
        prefill_chunk=prefill_chunk,
        sampling=sampling,
        speculation=speculation,
    )
    scheduler = ContinuousBatchingScheduler(
        engine, reorder_window=reorder_window,
        step_budget=step_budget, preemption=preemption,
        admission=admission, deadline_window=deadline_window,
    )
    for request in requests:
        scheduler.submit(request)
    report = scheduler.run()
    steps = [c.decode_steps for c in report.completions]
    label = f"batched(B<={max_batch_size})"
    if prefix_sharing:
        label += "+prefix"
    if cache_pages:
        label += f"+cache{cache_pages}"
    if batched_attention:
        label += "+battn"
    if prefill_chunk:
        label += f"+chunk{prefill_chunk}"
    if step_budget:
        label += f"+budget{step_budget}"
    if preemption:
        label += "+preempt"
    if sampling is not None and sampling.temperature > 0:
        label += f"+sampled(T={sampling.temperature:g})"
    if speculation is not None:
        label += f"+spec(a={speculation.draft_alpha:g},k={speculation.k})"
    if admission == "deadline":
        label += f"+edf{deadline_window}"
    return ServingMeasurement(
        label=label,
        max_batch_size=max_batch_size,
        n_requests=len(report.completions),
        tokens_generated=report.tokens_generated,
        prefill_seconds=report.prefill_seconds,
        decode_seconds=report.decode_seconds,
        decode_steps=report.decode_steps,
        mean_batch_occupancy=report.mean_batch_occupancy,
        mean_decode_steps_per_request=float(np.mean(steps)) if steps else 0.0,
        intersection_skip=engine.sparse.stats.intersection_skip_fraction,
        sequence_skip=engine.sparse.stats.mean_sequence_skip_fraction,
        expected_uncorrelated_skip=report.expected_uncorrelated_skip,
        forked_admissions=report.forked_admissions,
        prefill_tokens_saved=report.prefill_tokens_saved,
        revived_admissions=report.revived_admissions,
        revived_tokens=report.revived_tokens,
        cache_evictions=report.cache_evictions,
        peak_occupancy=report.peak_occupancy,
        attn_padding_waste=report.attn_padding_waste,
        mean_attn_buckets=report.mean_attn_buckets,
        step_budget=report.step_budget,
        preemptions=report.preemptions,
        resumed_admissions=report.resumed_admissions,
        piggybacked_chunks=report.piggybacked_chunks,
        piggybacked_tokens=report.piggybacked_tokens,
        peak_tick_prefill_tokens=report.peak_tick_prefill_tokens,
        replayed_tokens=report.replayed_tokens,
        replay_seconds=report.replay_seconds,
        greedy_tokens=report.greedy_tokens,
        sampled_tokens=report.sampled_tokens,
        sampler_seconds=report.sampler_seconds,
        drafted_tokens=report.drafted_tokens,
        accepted_tokens=report.accepted_tokens,
        draft_seconds=report.draft_seconds,
        verify_seconds=report.verify_seconds,
        ttft_p50_seconds=report.ttft_seconds_percentile(50),
        ttft_p99_seconds=report.ttft_seconds_percentile(99),
        itl_p50_seconds=report.itl_seconds_percentile(50),
        itl_p99_seconds=report.itl_seconds_percentile(99),
        max_itl_seconds=report.max_itl_seconds,
        admission=report.admission,
        slo_met_requests=report.slo_met_requests,
        slo_missed_requests=report.slo_missed_requests,
        shed_requests=report.shed_requests,
        goodput_tokens=report.goodput_tokens,
        class_stats=report.class_telemetry(),
    )


def measure_sequential_serving(
    weights,
    requests,
    settings=None,
    predictor=None,
) -> ServingMeasurement:
    """The one-request-at-a-time baseline over the classic engine.

    Greedy decoding with the same token semantics as
    :meth:`~repro.model.inference.InferenceModel.generate`, but with
    prefill and decode timed separately (mirroring the batched
    scheduler's accounting) and without ``generate``'s trailing unused
    forward, so per-phase numbers compare apples-to-apples.
    """
    import time

    from ..core.engine import build_engine

    engine = build_engine(weights, settings=settings, predictor=predictor)
    tokens = 0
    decode_steps = 0
    prefill_seconds = 0.0
    decode_seconds = 0.0
    latencies = []
    for request in requests:
        engine.reset()
        t0 = time.perf_counter()
        logits = engine.prefill(list(request.prompt_ids))
        prefill_seconds += time.perf_counter() - t0
        generated = 0
        request_steps = 0
        while generated < request.max_new_tokens:
            next_id = int(np.argmax(logits))
            if request.stop_ids and next_id in request.stop_ids:
                break
            generated += 1
            if generated < request.max_new_tokens:
                # Clock only the model forward, mirroring the scheduler,
                # which samples outside its decode timer too.
                t0 = time.perf_counter()
                logits = engine.forward_token(next_id, engine.cache.length)
                decode_seconds += time.perf_counter() - t0
                request_steps += 1
        tokens += generated
        decode_steps += request_steps
        latencies.append(request_steps)
    stats = engine.mlp.stats
    return ServingMeasurement(
        label="sequential",
        max_batch_size=1,
        n_requests=len(requests),
        tokens_generated=tokens,
        prefill_seconds=prefill_seconds,
        decode_seconds=decode_seconds,
        decode_steps=decode_steps,
        mean_batch_occupancy=1.0,
        mean_decode_steps_per_request=(
            float(np.mean(latencies)) if latencies else 0.0
        ),
        intersection_skip=stats.gate_skip_fraction,
        sequence_skip=stats.gate_skip_fraction,
    )


def format_figure4(result: Figure4Result) -> str:
    """Text rendering of one Fig. 4 panel (ms per token)."""
    lines = [
        f"== {result.model_name} ==",
        f"{'llama.cpp':<22}{result.llamacpp.seconds_per_token * 1e3:8.1f} ms",
        f"{'PowerInfer':<22}{result.powerinfer.seconds_per_token * 1e3:8.1f} ms",
    ]
    for alpha, variants in sorted(result.sparseinfer.items()):
        for label, report in variants.items():
            name = f"SI {label} a={alpha:.2f}"
            lines.append(
                f"{name:<22}{report.seconds_per_token * 1e3:8.1f} ms"
                f"  ({report.speedup_over(result.llamacpp):.2f}x vs llama.cpp)"
            )
    return "\n".join(lines)

"""Trained "role models" for the accuracy experiments (Tables II-III).

A role model is a small ReLU-fied gate-MLP transformer trained from
scratch (in the numpy autograd substrate) on a mixture of the GSM8K-like
and BBH-like tasks, with ProSparse-style L1 gate regularisation so it
exhibits genuine high activation sparsity.  The 13B-role model is wider
and deeper than the 7B-role one, giving it the paper's relative
robustness ordering.

Trained weights are cached on disk (see
:func:`repro.train.trainer.train_or_load`), so benchmarks retrain only
when hyper-parameters change.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional

import numpy as np

from ..model.config import ModelConfig, tiny_7b_role, tiny_13b_role
from ..model.tokenizer import CharTokenizer
from ..model.weights import ModelWeights
from ..train.data import batches_from_task
from ..train.trainer import TrainSettings, train_or_load
from ..workloads import bbh_like, gsm8k_like


def union_alphabet() -> str:
    """Characters of both evaluation tasks (one shared tokenizer)."""
    seen = dict.fromkeys(gsm8k_like.ALPHABET + bbh_like.ALPHABET)
    return "".join(seen)


def build_tokenizer() -> CharTokenizer:
    return CharTokenizer(union_alphabet())


@dataclass(frozen=True)
class RoleModelSpec:
    """Everything needed to train (or load) one role model."""

    config: ModelConfig
    train_settings: TrainSettings
    n_batches_per_task: int = 24
    batch_size: int = 32
    seed: int = 0

    @property
    def cache_task(self) -> str:
        return "gsm+bbh-chain-v2"


def spec_7b_role(tokenizer: Optional[CharTokenizer] = None) -> RoleModelSpec:
    """The chained-arithmetic task needs ~2k effective steps to move past
    format learning into arithmetic (it shares steps with BBH in the
    mixture), hence the longer schedules here.  Weights are cached."""
    tokenizer = tokenizer or build_tokenizer()
    return RoleModelSpec(
        config=tiny_7b_role(vocab_size=tokenizer.vocab_size),
        train_settings=TrainSettings(
            steps=4000, lr=3e-3, l1_peak=2.5e-3, log_every=250
        ),
        n_batches_per_task=48,
        seed=0,
    )


def spec_13b_role(tokenizer: Optional[CharTokenizer] = None) -> RoleModelSpec:
    tokenizer = tokenizer or build_tokenizer()
    return RoleModelSpec(
        config=tiny_13b_role(vocab_size=tokenizer.vocab_size),
        train_settings=TrainSettings(
            steps=5000, lr=2.5e-3, l1_peak=2.5e-3, log_every=250
        ),
        n_batches_per_task=48,
        seed=1,
    )


def training_batches(
    spec: RoleModelSpec, tokenizer: CharTokenizer
) -> list:
    """Interleaved GSM8K-like / BBH-like training batches."""
    gsm = batches_from_task(
        gsm8k_like.generate, tokenizer,
        n_batches=spec.n_batches_per_task, batch_size=spec.batch_size,
        seed=spec.seed,
    )
    bbh = batches_from_task(
        bbh_like.generate, tokenizer,
        n_batches=spec.n_batches_per_task, batch_size=spec.batch_size,
        seed=spec.seed + 1,
    )
    mixed = []
    for a, b in zip(gsm, bbh):
        mixed.extend((a, b))
    return mixed


def load_role_model(
    spec: RoleModelSpec,
    tokenizer: Optional[CharTokenizer] = None,
    cache_dir: Optional[Path] = None,
) -> ModelWeights:
    """Train (or load from cache) one role model's weights."""
    tokenizer = tokenizer or build_tokenizer()
    batches = training_batches(spec, tokenizer)
    return train_or_load(
        spec.config,
        spec.cache_task,
        batches,
        spec.train_settings,
        seed=spec.seed,
        cache_dir=cache_dir,
    )


def evaluation_tasks(n_samples: int = 150, seed: int = 900) -> dict:
    """Held-out evaluation sets (seeds disjoint from training)."""
    if n_samples <= 0:
        raise ValueError(f"n_samples must be positive, got {n_samples}")
    return {
        "GSM8K-like": gsm8k_like.generate(n_samples, seed=seed),
        "BBH-like": bbh_like.generate(n_samples, seed=seed + 1),
    }

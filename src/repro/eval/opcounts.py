"""Operation counts for prediction and MLP execution (paper Table I).

The paper counts, per decoder layer of ProSparse-Llama2-13B
(``d = 5120``, ``k = 13824``):

==================  ==========  =========
method              prediction  MLP block
==================  ==========  =========
llama.cpp (dense)   0           2.123e8
PowerInfer          1.940e7     1.699e7
SparseInfer         2.211e6     1.699e7
==================  ==========  =========

Conventions (reverse-engineered from the reported numbers and noted in
EXPERIMENTS.md): MLP work is counted in multiply-accumulates (``3*d*k``
dense), the PowerInfer predictor in FP16 MACs (``d*r + r*k`` at rank
``r = 1024``), the SparseInfer predictor in 32-bit word ops
(``k * d/32`` XORs -- ``__popc`` is folded into the same word op, as in
the paper's count), and the sparse MLP at 92% exploited sparsity.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.signpack import WORD_BITS, words_per_row
from ..model.config import ModelConfig

PAPER_EXPLOITED_SPARSITY = 0.92
PAPER_DEJAVU_RANK = 1024


@dataclass(frozen=True)
class OpCountRow:
    """One row of Table I: per-layer operation counts."""

    method: str
    prediction_ops: float
    mlp_ops: float
    prediction_op_kind: str

    @property
    def total_ops(self) -> float:
        return self.prediction_ops + self.mlp_ops


def dense_mlp_ops(config: ModelConfig) -> float:
    """MACs of the three dense GEMVs in one gated MLP block (``3*d*k``)."""
    return 3.0 * config.d_model * config.d_ff


def sparse_mlp_ops(config: ModelConfig, exploited_sparsity: float) -> float:
    """MACs remaining when ``exploited_sparsity`` of rows are skipped."""
    if not 0.0 <= exploited_sparsity <= 1.0:
        raise ValueError(f"exploited_sparsity out of range: {exploited_sparsity}")
    return dense_mlp_ops(config) * (1.0 - exploited_sparsity)


def dejavu_prediction_ops(config: ModelConfig, rank: int = PAPER_DEJAVU_RANK) -> float:
    """FP16 MACs of the DejaVu two-FC predictor (``d*r + r*k``)."""
    if rank <= 0:
        raise ValueError(f"rank must be positive, got {rank}")
    return float(config.d_model * rank + rank * config.d_ff)


def sparseinfer_prediction_ops(config: ModelConfig) -> float:
    """32-bit XOR word-ops of the sign predictor (``k * ceil(d/32)``)."""
    return float(config.d_ff * words_per_row(config.d_model))


def table1(
    config: ModelConfig,
    exploited_sparsity: float = PAPER_EXPLOITED_SPARSITY,
    dejavu_rank: int = PAPER_DEJAVU_RANK,
) -> list[OpCountRow]:
    """Reproduce Table I for any model configuration."""
    sparse = sparse_mlp_ops(config, exploited_sparsity)
    return [
        OpCountRow(
            method="llama.cpp (dense)",
            prediction_ops=0.0,
            mlp_ops=dense_mlp_ops(config),
            prediction_op_kind="-",
        ),
        OpCountRow(
            method="PowerInfer",
            prediction_ops=dejavu_prediction_ops(config, dejavu_rank),
            mlp_ops=sparse,
            prediction_op_kind="FP16 MAC",
        ),
        OpCountRow(
            method="SparseInfer (proposed)",
            prediction_ops=sparseinfer_prediction_ops(config),
            mlp_ops=sparse,
            prediction_op_kind=f"{WORD_BITS}-bit XOR",
        ),
    ]


def format_table1(rows: list[OpCountRow]) -> str:
    """Render rows in the paper's layout."""
    lines = [
        f"{'Method':<24}{'Prediction':>14}{'MLP Block':>14}",
    ]
    for row in rows:
        pred = "0" if row.prediction_ops == 0 else f"{row.prediction_ops:.3e}"
        lines.append(f"{row.method:<24}{pred:>14}{row.mlp_ops:>14.3e}")
    return "\n".join(lines)

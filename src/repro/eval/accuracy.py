"""Downstream-accuracy tables (paper Tables II and III).

The tables compare the dense baseline against SparseInfer at
alpha in {1.00, 1.01, 1.02, 1.03} (applied to the early layers) on
GSM8K and BBH, plus the random-skip control.  We reproduce the protocol
on trained role models and the synthetic task stand-ins.

Alpha scale correction
----------------------
The paper's alpha range is meaningful at ``d = 4096-5120``, where
``alpha = 1.03`` moves the sign-count decision threshold by ~38 of 5120
counts and the baseline predictor is imprecise enough for alpha = 1.00
to cost measurable accuracy.  At role-model width the same alphas move
the integer threshold by *zero* counts, and the trained role models are
*relatively more robust*: the accuracy transition sits below alpha = 1.
``effective_alpha`` therefore re-centres the sweep on the measured
transition region, ``alpha_eff = alpha_base + alpha_scale*(alpha - 1)``
(defaults 0.7 + 10*(alpha-1), i.e. paper labels 1.00..1.03 map to
effective 0.70..1.00), applied uniformly across layers.  Reported rows
keep the paper's labels; the mapping is documented per-run in
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..core.engine import SparseInferSettings, build_engine, dense_engine
from ..core.predictor import SparseInferPredictor
from ..model.inference import InferenceModel
from ..model.tokenizer import CharTokenizer
from ..model.weights import ModelWeights
from ..baselines.random_skip import RandomSkipMLP
from .harness import EvalResult, evaluate

DEFAULT_ALPHA_GRID = (1.00, 1.01, 1.02, 1.03)
DEFAULT_ALPHA_SCALE = 10.0
DEFAULT_ALPHA_BASE = 0.7


@dataclass(frozen=True)
class AccuracyRow:
    """One row of Table II/III: a method at one alpha across tasks."""

    method: str
    alpha: Optional[float]
    task_accuracy: dict  # task name -> percent

    @property
    def average(self) -> float:
        values = list(self.task_accuracy.values())
        return sum(values) / len(values) if values else 0.0


@dataclass
class AccuracyTable:
    """Tables II/III: baseline + SparseInfer sweep (+ random control)."""

    model_name: str
    rows: list = field(default_factory=list)

    def baseline(self) -> AccuracyRow:
        return self.rows[0]

    def delta(self, row: AccuracyRow, task: str) -> float:
        """Accuracy delta vs baseline in percentage points."""
        return row.task_accuracy[task] - self.baseline().task_accuracy[task]


def effective_alpha(
    alpha: float,
    alpha_scale: float = DEFAULT_ALPHA_SCALE,
    alpha_base: float = DEFAULT_ALPHA_BASE,
) -> float:
    """Map a paper-label alpha to the role-model effective alpha."""
    return alpha_base + alpha_scale * (alpha - 1.0)


def _evaluate_tasks(
    engine: InferenceModel,
    tokenizer: CharTokenizer,
    tasks: dict,
    max_new_tokens: int,
) -> dict:
    out = {}
    for name, samples in tasks.items():
        result: EvalResult = evaluate(
            engine, tokenizer, samples, task=name,
            max_new_tokens=max_new_tokens,
        )
        out[name] = result.accuracy
    return out


def accuracy_table(
    weights: ModelWeights,
    tokenizer: CharTokenizer,
    tasks: dict,
    alphas: Sequence[float] = DEFAULT_ALPHA_GRID,
    alpha_scale: float = DEFAULT_ALPHA_SCALE,
    alpha_base: float = DEFAULT_ALPHA_BASE,
    n_early_layers: Optional[int] = None,
    include_random_baseline: bool = False,
    random_skip_fraction: float = 0.9,
    max_new_tokens: int = 6,
) -> AccuracyTable:
    """Build Table II/III for one model over ``tasks``.

    ``tasks`` maps task name to a list of :class:`TaskSample`.  The
    baseline row runs the dense engine; each alpha row runs SparseInfer
    with the paper's early-layer schedule; the optional random row runs
    the random-skip control.
    """
    config = weights.config
    table = AccuracyTable(model_name=config.name)

    baseline = dense_engine(weights)
    table.rows.append(
        AccuracyRow(
            method="Baseline",
            alpha=None,
            task_accuracy=_evaluate_tasks(
                baseline, tokenizer, tasks, max_new_tokens
            ),
        )
    )

    # Pack once; reuse across the sweep (only the schedule changes).
    predictor = SparseInferPredictor.from_gate_weights(weights.gate_matrices())
    for alpha in alphas:
        eff = effective_alpha(alpha, alpha_scale, alpha_base)
        if n_early_layers is None:
            # Uniform effective alpha: the role models' accuracy
            # transition is driven by the global conservativeness level,
            # not the early-layer refinement (see module docstring).
            settings = SparseInferSettings(alpha=eff)
        else:
            settings = SparseInferSettings(
                alpha=1.0, alpha_early=eff, n_early_layers=n_early_layers
            )
        engine = build_engine(weights, settings, predictor=predictor)
        table.rows.append(
            AccuracyRow(
                method="SparseInfer",
                alpha=float(alpha),
                task_accuracy=_evaluate_tasks(
                    engine, tokenizer, tasks, max_new_tokens
                ),
            )
        )

    if include_random_baseline:
        from ..model.inference import InferenceModel as _IM
        from ..model.mlp import DenseMLP

        random_engine = _IM(
            weights,
            mlp=RandomSkipMLP(weights, skip_fraction=random_skip_fraction),
            prefill_mlp=DenseMLP(weights),
        )
        table.rows.append(
            AccuracyRow(
                method="Random-90%",
                alpha=None,
                task_accuracy=_evaluate_tasks(
                    random_engine, tokenizer, tasks, max_new_tokens
                ),
            )
        )
    return table


def format_table(table: AccuracyTable) -> str:
    """Render in the paper's Table II/III layout (deltas vs baseline)."""
    tasks = list(table.baseline().task_accuracy)
    header = f"{'Method':<14}{'alpha':>6}" + "".join(
        f"{t:>18}" for t in tasks
    ) + f"{'Average':>18}"
    lines = [header]
    for row in table.rows:
        alpha = f"{row.alpha:.2f}" if row.alpha is not None else "-"
        cells = ""
        for t in tasks:
            acc = row.task_accuracy[t]
            if row.method == "Baseline":
                cells += f"{acc:>18.2f}"
            else:
                cells += f"{acc:>10.2f} ({table.delta(row, t):+.2f})"
        avg = row.average
        if row.method == "Baseline":
            cells += f"{avg:>18.2f}"
        else:
            base_avg = table.baseline().average
            cells += f"{avg:>10.2f} ({avg - base_avg:+.2f})"
        lines.append(f"{row.method:<14}{alpha:>6}" + cells)
    return "\n".join(lines)

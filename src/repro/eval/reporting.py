"""Plain-text rendering helpers shared by benches and examples."""

from __future__ import annotations

from typing import Sequence

import numpy as np


def ascii_histogram(
    values: np.ndarray,
    bins: int = 21,
    width: int = 40,
    limit_sigma: float = 3.0,
) -> str:
    """Render a symmetric histogram as rows of '#' bars (Fig. 2 style)."""
    values = np.asarray(values, dtype=np.float64).reshape(-1)
    if values.size == 0:
        raise ValueError("empty sample")
    std = values.std() or 1.0
    lim = limit_sigma * std
    counts, edges = np.histogram(values, bins=bins, range=(-lim, lim))
    peak = counts.max() or 1
    lines = []
    for count, lo, hi in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(round(width * count / peak))
        lines.append(f"{(lo + hi) / 2:>10.4f} |{bar}")
    return "\n".join(lines)


def ascii_curve(
    xs: Sequence[float],
    ys: Sequence[float],
    width: int = 50,
    label: str = "",
    y_min: float = 0.0,
    y_max: float = 1.0,
) -> str:
    """Render a 1-D curve as one bar row per x (Fig. 3 style)."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    if y_max <= y_min:
        raise ValueError("y_max must exceed y_min")
    lines = [label] if label else []
    for x, y in zip(xs, ys):
        frac = (min(max(y, y_min), y_max) - y_min) / (y_max - y_min)
        bar = "#" * int(round(width * frac))
        lines.append(f"{x:>6} |{bar} {y:.4f}")
    return "\n".join(lines)


def markdown_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Minimal GitHub-style markdown table."""
    if not headers:
        raise ValueError("need at least one column")
    head = "| " + " | ".join(str(h) for h in headers) + " |"
    sep = "|" + "|".join("---" for _ in headers) + "|"
    body = [
        "| " + " | ".join(str(c) for c in row) + " |" for row in rows
    ]
    return "\n".join([head, sep, *body])


def format_serving_sweep(baseline, points, analytic_skips=None) -> str:
    """Render a serving batch-size sweep against the sequential baseline.

    ``baseline`` and ``points`` are
    :class:`repro.eval.latency.ServingMeasurement` objects; the optional
    ``analytic_skips`` aligns one
    :func:`repro.gpu.batching.batch_skip_fraction` value per point so the
    measured intersection can be read against the ``skip^B`` decay curve.
    """
    if analytic_skips is not None and len(analytic_skips) != len(points):
        raise ValueError("need one analytic skip value per sweep point")
    headers = ["engine", "tok/s", "speedup", "occupancy",
               "skip (measured)", "skip (skip^B)"]
    rows = [[
        baseline.label, f"{baseline.tokens_per_second:.1f}", "1.00x",
        f"{baseline.mean_batch_occupancy:.2f}",
        f"{baseline.intersection_skip:.1%}", "-",
    ]]
    for i, point in enumerate(points):
        analytic = (
            f"{analytic_skips[i]:.1%}" if analytic_skips is not None else "-"
        )
        rows.append([
            point.label,
            f"{point.tokens_per_second:.1f}",
            f"{point.speedup_over(baseline):.2f}x",
            f"{point.mean_batch_occupancy:.2f}",
            f"{point.intersection_skip:.1%}",
            analytic,
        ])
    return markdown_table(headers, rows)


def format_sampling(points) -> str:
    """Render the per-configuration sampling split (PR 8 telemetry).

    ``points`` are :class:`repro.eval.latency.ServingMeasurement`
    objects.  ``greedy_tokens`` / ``sampled_tokens`` split every
    emitted token by decode mode (batched argmax vs per-request RNG
    stream); ``sampler_seconds`` is the vectorised sampler's share of
    the wall-clock, so the sampler column staying a sliver of tok/s
    cost is the evidence batched sampling rides along for free.
    """
    headers = ["engine", "greedy", "sampled", "sampler (ms)",
               "sampler share", "tok/s"]
    rows = []
    for point in points:
        share = (point.sampler_seconds / point.wall_seconds
                 if point.wall_seconds else 0.0)
        rows.append([
            point.label,
            str(point.greedy_tokens),
            str(point.sampled_tokens),
            f"{point.sampler_seconds * 1e3:.2f}",
            f"{share:.1%}",
            f"{point.tokens_per_second:.1f}",
        ])
    return markdown_table(headers, rows)


def format_speculation(points) -> str:
    """Render per-configuration speculation telemetry (PR 9).

    ``points`` are :class:`repro.eval.latency.ServingMeasurement`
    objects.  ``drafted_tokens`` / ``accepted_tokens`` count the
    aggressive-alpha draft proposals and the subset the chunked verify
    pass confirmed (``acceptance_rate`` is their ratio);
    ``draft_seconds`` and ``verify_seconds`` are the wall-clock the two
    speculation phases spent.  The interesting read is tokens per
    decode step against acceptance: speculation only beats plain decode
    while accepted drafts outweigh the draft+verify overhead.
    """
    headers = ["engine", "drafted", "accepted", "accept rate",
               "draft (ms)", "verify (ms)", "tok/step", "tok/s"]
    rows = []
    for point in points:
        per_step = (point.tokens_generated / point.decode_steps
                    if point.decode_steps else 0.0)
        rows.append([
            point.label,
            str(point.drafted_tokens),
            str(point.accepted_tokens),
            f"{point.acceptance_rate:.1%}",
            f"{point.draft_seconds * 1e3:.2f}",
            f"{point.verify_seconds * 1e3:.2f}",
            f"{per_step:.2f}",
            f"{point.tokens_per_second:.1f}",
        ])
    return markdown_table(headers, rows)


def format_tail_latency(points) -> str:
    """Render per-configuration tail latency (budgeted-tick telemetry).

    ``points`` are :class:`repro.eval.latency.ServingMeasurement`
    objects from runs with wall-clock stamps (scheduler ``submit`` +
    drain).  The interesting read is ``max ITL`` against ``peak
    tick prefill``: an inline-prefill run shows a worst stall that
    scales with its longest prompt, a budgeted run shows it clamped
    near the budget.
    """
    headers = ["engine", "TTFT p50 (ms)", "TTFT p99 (ms)",
               "ITL p50 (ms)", "ITL p99 (ms)", "max ITL (ms)",
               "peak tick prefill", "preempt/resume"]
    rows = []
    for point in points:
        rows.append([
            point.label,
            f"{point.ttft_p50_seconds * 1e3:.2f}",
            f"{point.ttft_p99_seconds * 1e3:.2f}",
            f"{point.itl_p50_seconds * 1e3:.2f}",
            f"{point.itl_p99_seconds * 1e3:.2f}",
            f"{point.max_itl_seconds * 1e3:.2f}",
            str(point.peak_tick_prefill_tokens),
            f"{point.preemptions}/{point.resumed_admissions}",
        ])
    return markdown_table(headers, rows)


def format_goodput(points) -> str:
    """Render per-class goodput under SLO traffic (PR 10).

    ``points`` are :class:`repro.eval.latency.ServingMeasurement`
    objects whose requests carried SLO contracts: one row per
    ``(engine, slo_class)`` from ``class_stats``, splitting each class's
    requests into SLO-met / missed / shed, its ``goodput_tokens`` (the
    SLO-met subset of its tokens), and its deterministic tick-based
    TTFT/ITL p99.  The interesting read is the same overloaded trace
    under ``admission="fifo"`` vs ``"deadline"``: FIFO burns decode
    capacity on requests already past their deadlines, deadline
    admission sheds them and converts the freed capacity into goodput.
    """
    headers = ["engine", "class", "requests", "met", "missed", "shed",
               "goodput tok", "goodput %", "TTFT p99 (ticks)",
               "ITL p99 (ticks)"]
    rows = []
    for point in points:
        for tag, stats in sorted(point.class_stats.items()):
            fraction = (stats["goodput_tokens"] / stats["tokens"]
                        if stats["tokens"] else 0.0)
            rows.append([
                point.label,
                tag,
                str(stats["requests"]),
                str(stats["slo_met"]),
                str(stats["slo_missed"]),
                str(stats["shed"]),
                str(stats["goodput_tokens"]),
                f"{fraction:.1%}",
                f"{stats['ttft_p99_steps']:.1f}",
                f"{stats['itl_p99_steps']:.1f}",
            ])
    return markdown_table(headers, rows)

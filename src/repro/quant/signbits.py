"""Sign-bit extraction across storage formats.

The predictor only needs the MSB of each weight; this module provides a
uniform entry point for FP32 / FP16 / INT8 storage so packed predictor
state can be built straight from quantised checkpoints -- the property
that makes SparseInfer retraining-free across quantisation schemes.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ..core.signpack import PackedSigns, pack_signs
from .int8 import Int8Matrix


def sign_bits(values: Union[np.ndarray, Int8Matrix]) -> np.ndarray:
    """Boolean negative-sign array for any supported storage format."""
    if isinstance(values, Int8Matrix):
        return values.values < 0
    values = np.asarray(values)
    if values.dtype.kind == "f":
        return np.signbit(values)
    if values.dtype.kind == "i":
        return values < 0
    raise TypeError(f"unsupported dtype {values.dtype}")


def packed_signs_from(values: Union[np.ndarray, Int8Matrix]) -> PackedSigns:
    """Build predictor state directly from FP32/FP16/INT8 weights."""
    if isinstance(values, Int8Matrix):
        return PackedSigns(
            words=pack_signs(values.sign_source()),
            n_elements=values.shape[-1],
        )
    values = np.asarray(values)
    if values.dtype.kind == "i":
        return PackedSigns(
            words=pack_signs(values.astype(np.float32)),
            n_elements=values.shape[-1],
        )
    return PackedSigns.from_matrix(values.astype(np.float32))

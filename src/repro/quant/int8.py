"""Symmetric per-row INT8 quantisation.

Supports the paper's quantisation-robustness claim (Section IV-A): the
sign predictor "can be applied directly, regardless of the quantization
scheme used", because symmetric quantisation preserves the sign of every
element it does not round to zero -- and zeros are packed as positive,
the conservative direction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Int8Matrix:
    """A symmetric per-row INT8 quantised matrix."""

    values: np.ndarray  # int8, (k, d)
    scales: np.ndarray  # float32, (k,) -- per-row dequant multipliers

    @property
    def shape(self) -> tuple:
        return self.values.shape

    @property
    def nbytes(self) -> int:
        return self.values.nbytes + self.scales.nbytes

    def dequantize(self) -> np.ndarray:
        return self.values.astype(np.float32) * self.scales[:, None]

    def sign_source(self) -> np.ndarray:
        """Array whose ``signbit`` matches the dequantised values.

        INT8 values carry the sign directly; cast to float so it plugs
        into :func:`repro.core.signpack.pack_signs` unchanged.
        """
        return self.values.astype(np.float32)


def quantize_int8(matrix: np.ndarray) -> Int8Matrix:
    """Symmetric per-row quantisation: ``q = round(w / s)``, ``s = max|w|/127``."""
    matrix = np.asarray(matrix, dtype=np.float32)
    if matrix.ndim != 2:
        raise ValueError(f"expected 2-D matrix, got shape {matrix.shape}")
    max_abs = np.abs(matrix).max(axis=1)
    scales = np.where(max_abs > 0, max_abs / 127.0, 1.0).astype(np.float32)
    q = np.clip(np.round(matrix / scales[:, None]), -127, 127).astype(np.int8)
    return Int8Matrix(values=q, scales=scales)

"""FP16 storage casting.

FP16 is the paper's deployment precision; casting preserves sign bits
exactly (IEEE-754 keeps the MSB as the sign in every binary float
format), so the packed predictor state is identical in FP16 and FP32.
"""

from __future__ import annotations

import numpy as np


def to_fp16(array: np.ndarray) -> np.ndarray:
    return np.asarray(array).astype(np.float16)


def from_fp16(array: np.ndarray) -> np.ndarray:
    return np.asarray(array, dtype=np.float16).astype(np.float32)


def fp16_roundtrip(array: np.ndarray) -> np.ndarray:
    """Simulate FP16 storage of FP32 weights."""
    return from_fp16(to_fp16(array))

"""Quantised storage formats and sign-bit extraction (robustness claim)."""

from .fp16 import fp16_roundtrip, from_fp16, to_fp16
from .int8 import Int8Matrix, quantize_int8
from .signbits import packed_signs_from, sign_bits

"""One-command reproduction driver: ``python -m repro.reproduce``.

Regenerates every analytical table and figure of the paper (Table I,
Section V-A, Figs. 2-4, the ablations) into a results directory and
prints a paper-vs-measured summary.  The accuracy tables (II-III) are
optional because they train the role models on first run (several
minutes); enable with ``--accuracy``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path


def _write(results_dir: Path, name: str, text: str) -> None:
    results_dir.mkdir(parents=True, exist_ok=True)
    (results_dir / name).write_text(text + "\n")
    print(f"\n### {name}\n{text}")


def run_analytical(results_dir: Path, quick: bool = False) -> None:
    from .eval.distributions import figure2
    from .eval.latency import figure4, format_figure4
    from .eval.memusage import compare_predictor_memory, format_comparison
    from .eval.opcounts import format_table1, table1
    from .eval.overhead import predictor_overhead
    from .eval.precision_recall import figure3_synthetic
    from .gpu.device import jetson_orin_agx_64gb
    from .model.config import prosparse_llama2_7b, prosparse_llama2_13b
    from .model.synthetic import SyntheticActivationModel

    cfg13, cfg7 = prosparse_llama2_13b(), prosparse_llama2_7b()
    device = jetson_orin_agx_64gb()
    n_tokens = 1 if quick else 3
    n_rows = 64 if quick else 192
    fig3_rows = 96 if quick else 256

    _write(results_dir, "table1.txt", format_table1(table1(cfg13)))

    rep = predictor_overhead(cfg13, device)
    _write(
        results_dir, "sec5a.txt",
        f"predictor latency: SparseInfer {rep.sparseinfer_us:.1f} us "
        f"(paper ~70), PowerInfer {rep.powerinfer_us:.1f} us, "
        f"speedup {rep.speedup:.2f}x (paper 3.66x)\n"
        + format_comparison(compare_predictor_memory(cfg13)),
    )

    synth = SyntheticActivationModel(cfg13, seed=0)
    fig2 = figure2(synth, layers=[0, 1, 10, 39], n_tokens=max(2, n_tokens), n_rows=n_rows)
    _write(
        results_dir, "fig2.txt",
        "\n".join(
            f"layer {r.layer:2d}: X(std={r.x.std:.3f}, near0="
            f"{r.x.near_zero_fraction:.1%}, pos={r.x.positive_fraction:.1%}) "
            f"Y(mean/std={r.product_mean_normalised:+.4f})"
            for r in fig2
        ),
    )

    for cfg, tag in ((cfg13, "13B"), (cfg7, "7B")):
        model = SyntheticActivationModel(cfg, seed=1)
        points = figure3_synthetic(model, n_tokens=n_tokens, n_rows=fig3_rows)
        _write(
            results_dir, f"fig3_{tag}.txt",
            "\n".join(
                f"layer {p.layer:2d}: precision {p.precision:.4f} "
                f"recall {p.recall:.4f}"
                for p in points
            ),
        )

    for cfg, tag in ((cfg13, "13B"), (cfg7, "7B")):
        result = figure4(cfg, device, n_tokens=n_tokens, n_rows=n_rows)
        _write(results_dir, f"fig4_{tag}.txt", format_figure4(result))


def run_accuracy(results_dir: Path) -> None:
    from .eval.accuracy import accuracy_table, format_table
    from .eval.rolemodels import (
        build_tokenizer,
        evaluation_tasks,
        load_role_model,
        spec_13b_role,
        spec_7b_role,
    )

    tokenizer = build_tokenizer()
    tasks = evaluation_tasks(n_samples=120)
    for spec, name in ((spec_13b_role(tokenizer), "table2_13b"),
                       (spec_7b_role(tokenizer), "table3_7b")):
        print(f"\ntraining/loading {spec.config.name} ...", flush=True)
        weights = load_role_model(spec, tokenizer)
        table = accuracy_table(
            weights, tokenizer, tasks, include_random_baseline=True
        )
        _write(results_dir, f"{name}.txt", format_table(table))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the SparseInfer paper's tables and figures."
    )
    parser.add_argument(
        "--results-dir", type=Path,
        default=Path(__file__).resolve().parents[2] / "reproduction_results",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced Monte-Carlo sampling (for smoke tests)",
    )
    parser.add_argument(
        "--accuracy", action="store_true",
        help="also run Tables II-III (trains role models on first run)",
    )
    args = parser.parse_args(argv)
    run_analytical(args.results_dir, quick=args.quick)
    if args.accuracy:
        run_accuracy(args.results_dir)
    print(f"\nresults written to {args.results_dir}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Numpy decode engine with KV cache and pluggable MLP executors.

This is the substrate playing llama.cpp's role: a single-token
autoregressive decoder.  The MLP block is delegated to an executor
(dense, SparseInfer, DejaVu/PowerInfer, random, threshold), which is how
every engine comparison in the paper is expressed.

``trace_mlp_inputs=True`` records, per (layer, token), the RMS-normed MLP
input and the exact gate pre-activation.  Traces drive DejaVu predictor
training, alpha calibration, and the trained-model versions of Figs. 2-3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from .config import ModelConfig
from .kvcache import KVCache
from .mlp import DenseMLP, MLPExecutor
from .norm import rmsnorm
from .rope import apply_rope, rope_tables
from .weights import ModelWeights


@dataclass
class MLPTrace:
    """Recorded MLP-block inputs for offline analysis."""

    layer: int
    x: np.ndarray            # (d,) RMS-normed input to the MLP block
    gate_preact: np.ndarray  # (k,) exact x @ Wgate^T


@dataclass
class GenerationResult:
    """Output of :meth:`InferenceModel.generate`."""

    prompt_ids: list
    generated_ids: list
    logits_history: list = field(default_factory=list)

    @property
    def n_generated(self) -> int:
        return len(self.generated_ids)


class InferenceModel:
    """Single-sequence decoder with KV cache.

    Parameters
    ----------
    weights:
        Model parameters in inference layout.
    mlp:
        MLP executor; defaults to the dense reference.
    trace_mlp_inputs:
        Record :class:`MLPTrace` entries for every (layer, token).
    """

    def __init__(
        self,
        weights: ModelWeights,
        mlp: Optional[MLPExecutor] = None,
        trace_mlp_inputs: bool = False,
        prefill_mlp: Optional[MLPExecutor] = None,
    ):
        weights.validate()
        self.weights = weights
        self.config: ModelConfig = weights.config
        self.mlp: MLPExecutor = mlp if mlp is not None else DenseMLP(weights)
        # SparseInfer sparsifies decoding only (Section V-C); a separate
        # prefill executor (typically dense) models that split.
        self.prefill_mlp: MLPExecutor = (
            prefill_mlp if prefill_mlp is not None else self.mlp
        )
        self._active_mlp: MLPExecutor = self.mlp
        self.trace_mlp_inputs = trace_mlp_inputs
        self.traces: list = []
        self.cache = KVCache(self.config)

    # -- core forward ------------------------------------------------------

    def reset(self) -> None:
        """Clear the KV cache (traces are kept; clear explicitly)."""
        self.cache.reset()

    def clear_traces(self) -> None:
        self.traces = []

    def _attention(self, layer: int, x: np.ndarray, position: int) -> np.ndarray:
        cfg = self.config
        lw = self.weights.layers[layer]
        n_heads, head_dim = cfg.n_heads, cfg.head_dim
        q = x @ lw.wq
        k = x @ lw.wk
        v = x @ lw.wv
        cos, sin = rope_tables(np.array([position]), head_dim, cfg.rope_theta)
        q = apply_rope(q.reshape(n_heads, 1, head_dim), cos, sin).reshape(n_heads, head_dim)
        k = apply_rope(k.reshape(n_heads, 1, head_dim), cos, sin).reshape(-1)
        self.cache.append(layer, k, v, position)
        length = position + 1
        keys, values = self.cache.view(layer, length)          # (len, d)
        kh = keys.reshape(length, n_heads, head_dim).transpose(1, 0, 2)
        vh = values.reshape(length, n_heads, head_dim).transpose(1, 0, 2)
        scores = np.einsum("hd,htd->ht", q, kh) / np.sqrt(head_dim)
        scores -= scores.max(axis=-1, keepdims=True)
        probs = np.exp(scores)
        probs /= probs.sum(axis=-1, keepdims=True)
        ctx = np.einsum("ht,htd->hd", probs, vh).reshape(cfg.d_model)
        return ctx @ lw.wo

    def forward_token(self, token_id: int, position: int) -> np.ndarray:
        """One decode step: returns the next-token logits ``(vocab,)``."""
        cfg = self.config
        x = self.weights.tok_embed[token_id].astype(np.float32).copy()
        for layer in range(cfg.n_layers):
            lw = self.weights.layers[layer]
            attn_in = rmsnorm(x, lw.attn_norm, cfg.norm_eps)
            x = x + self._attention(layer, attn_in, position)
            mlp_in = rmsnorm(x, lw.mlp_norm, cfg.norm_eps)
            if self.trace_mlp_inputs:
                self.traces.append(
                    MLPTrace(
                        layer=layer,
                        x=mlp_in.copy(),
                        gate_preact=lw.w_gate_rows @ mlp_in,
                    )
                )
            x = x + self._active_mlp.run(layer, mlp_in)
        self.cache.advance()
        final = rmsnorm(x, self.weights.final_norm, cfg.norm_eps)
        return final @ self.weights.lm_head

    def prefill(self, token_ids: Sequence[int]) -> np.ndarray:
        """Run the prompt through the model; returns last-position logits.

        SparseInfer applies sparsity only in the decoding phase
        (Section V-C); callers wanting that semantics should prefill with a
        dense executor -- :func:`repro.core.engine.build_engine` arranges
        this automatically.
        """
        if not token_ids:
            raise ValueError("prefill needs at least one token")
        self._active_mlp = self.prefill_mlp
        try:
            logits = None
            for tok in token_ids:
                logits = self.forward_token(int(tok), self.cache.length)
        finally:
            self._active_mlp = self.mlp
        return logits

    def generate(
        self,
        prompt_ids: Sequence[int],
        max_new_tokens: int,
        stop_ids: Optional[set] = None,
        keep_logits: bool = False,
    ) -> GenerationResult:
        """Greedy decoding from a prompt."""
        if max_new_tokens < 0:
            raise ValueError("max_new_tokens must be non-negative")
        self.reset()
        logits = self.prefill(list(prompt_ids))
        result = GenerationResult(prompt_ids=list(prompt_ids), generated_ids=[])
        for _ in range(max_new_tokens):
            next_id = int(np.argmax(logits))
            if stop_ids and next_id in stop_ids:
                break
            result.generated_ids.append(next_id)
            if keep_logits:
                result.logits_history.append(logits.copy())
            logits = self.forward_token(next_id, self.cache.length)
        return result

"""Numpy decode engine with KV cache and pluggable MLP executors.

This is the substrate playing llama.cpp's role: a single-token
autoregressive decoder.  The MLP block is delegated to an executor
(dense, SparseInfer, DejaVu/PowerInfer, random, threshold), which is how
every engine comparison in the paper is expressed.

``trace_mlp_inputs=True`` records, per (layer, token), the RMS-normed MLP
input and the exact gate pre-activation.  Traces drive DejaVu predictor
training, alpha calibration, and the trained-model versions of Figs. 2-3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from .config import ModelConfig
from .kvcache import KVCache
from .mlp import DenseMLP, MLPExecutor
from .norm import rmsnorm
from .rope import apply_rope, rope_for_position
from .weights import ModelWeights


def attend_single(
    config: ModelConfig,
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    position: int,
    cache,
    layer: int,
    rope: Optional[tuple] = None,
) -> np.ndarray:
    """RoPE + cache append + causal attention for one sequence, one token.

    ``q``/``k``/``v`` are the raw ``(d_model,)`` projections; ``cache`` is
    anything with the :class:`~repro.model.kvcache.KVCache` interface (a
    standalone cache or one :class:`~repro.model.kvcache.KVSlot` of a
    serving batch).  Returns the pre-``Wo`` context vector.  Both the
    single-sequence and the batched engines funnel through this function,
    which is what makes their outputs bit-identical.

    ``rope`` optionally carries the ``(cos, sin)`` tables for ``position``
    so callers stepping many layers (or many sequences) per token can
    compute them once instead of once per layer.
    """
    n_heads, head_dim = config.n_heads, config.head_dim
    if rope is None:
        rope = rope_for_position(position, head_dim, config.rope_theta)
    cos, sin = rope
    q = apply_rope(q.reshape(n_heads, 1, head_dim), cos, sin).reshape(n_heads, head_dim)
    k = apply_rope(k.reshape(n_heads, 1, head_dim), cos, sin).reshape(-1)
    cache.append(layer, k, v, position)
    length = position + 1
    keys, values = cache.view(layer, length)               # (len, d)
    kh = keys.reshape(length, n_heads, head_dim).transpose(1, 0, 2)
    vh = values.reshape(length, n_heads, head_dim).transpose(1, 0, 2)
    # float32 scale: a float64 np.sqrt scalar would promote scores --
    # and the residual stream after it -- to float64, silently doubling
    # every downstream GEMM's work (NEP 50 keeps numpy-scalar dtypes).
    scores = np.einsum("hd,htd->ht", q, kh) / np.float32(np.sqrt(head_dim))
    scores -= scores.max(axis=-1, keepdims=True)
    probs = np.exp(scores)
    probs /= probs.sum(axis=-1, keepdims=True)
    return np.einsum("ht,htd->hd", probs, vh).reshape(config.d_model)


@dataclass
class MLPTrace:
    """Recorded MLP-block inputs for offline analysis."""

    layer: int
    x: np.ndarray            # (d,) RMS-normed input to the MLP block
    gate_preact: np.ndarray  # (k,) exact x @ Wgate^T


def forward_token_single(
    weights: ModelWeights,
    token_id: int,
    position: int,
    cache,
    mlp,
    traces: Optional[list] = None,
    rope: Optional[tuple] = None,
) -> np.ndarray:
    """One token through the full decoder stack for one sequence.

    The shared op sequence behind both :meth:`InferenceModel.forward_token`
    and the serving engine's per-slot path -- ``cache`` is anything with
    the :class:`~repro.model.kvcache.KVCache` interface.  Does **not**
    advance the cache; the caller owns step accounting.  When ``traces``
    is a list, an :class:`MLPTrace` is appended per layer.
    """
    cfg = weights.config
    x = weights.tok_embed[token_id].astype(np.float32).copy()
    for layer in range(cfg.n_layers):
        lw = weights.layers[layer]
        attn_in = rmsnorm(x, lw.attn_norm, cfg.norm_eps)
        ctx = attend_single(
            cfg, attn_in @ lw.wq, attn_in @ lw.wk, attn_in @ lw.wv,
            position, cache, layer, rope=rope,
        )
        x = x + ctx @ lw.wo
        mlp_in = rmsnorm(x, lw.mlp_norm, cfg.norm_eps)
        if traces is not None:
            traces.append(
                MLPTrace(
                    layer=layer,
                    x=mlp_in.copy(),
                    gate_preact=lw.w_gate_rows @ mlp_in,
                )
            )
        x = x + mlp.run(layer, mlp_in)
    final = rmsnorm(x, weights.final_norm, cfg.norm_eps)
    return final @ weights.lm_head


@dataclass
class GenerationResult:
    """Output of :meth:`InferenceModel.generate`."""

    prompt_ids: list
    generated_ids: list
    logits_history: list = field(default_factory=list)

    @property
    def n_generated(self) -> int:
        return len(self.generated_ids)


class InferenceModel:
    """Single-sequence decoder with KV cache.

    Parameters
    ----------
    weights:
        Model parameters in inference layout.
    mlp:
        MLP executor; defaults to the dense reference.
    trace_mlp_inputs:
        Record :class:`MLPTrace` entries for every (layer, token).
    """

    def __init__(
        self,
        weights: ModelWeights,
        mlp: Optional[MLPExecutor] = None,
        trace_mlp_inputs: bool = False,
        prefill_mlp: Optional[MLPExecutor] = None,
    ):
        weights.validate()
        self.weights = weights
        self.config: ModelConfig = weights.config
        self.mlp: MLPExecutor = mlp if mlp is not None else DenseMLP(weights)
        # SparseInfer sparsifies decoding only (Section V-C); a separate
        # prefill executor (typically dense) models that split.
        self.prefill_mlp: MLPExecutor = (
            prefill_mlp if prefill_mlp is not None else self.mlp
        )
        self._active_mlp: MLPExecutor = self.mlp
        self.trace_mlp_inputs = trace_mlp_inputs
        self.traces: list = []
        self.cache = KVCache(self.config)

    # -- core forward ------------------------------------------------------

    def reset(self) -> None:
        """Clear the KV cache (traces are kept; clear explicitly)."""
        self.cache.reset()

    def clear_traces(self) -> None:
        self.traces = []

    def forward_token(self, token_id: int, position: int) -> np.ndarray:
        """One decode step: returns the next-token logits ``(vocab,)``."""
        logits = forward_token_single(
            self.weights, token_id, position, self.cache, self._active_mlp,
            traces=self.traces if self.trace_mlp_inputs else None,
        )
        self.cache.advance()
        return logits

    def prefill(self, token_ids: Sequence[int]) -> np.ndarray:
        """Run the prompt through the model; returns last-position logits.

        SparseInfer applies sparsity only in the decoding phase
        (Section V-C); callers wanting that semantics should prefill with a
        dense executor -- :func:`repro.core.engine.build_engine` arranges
        this automatically.
        """
        # len(), not truthiness: a numpy-array prompt satisfies the
        # Sequence[int] annotation but raises on bool().
        if len(token_ids) == 0:
            raise ValueError("prefill needs at least one token")
        self._active_mlp = self.prefill_mlp
        try:
            logits = None
            for tok in token_ids:
                logits = self.forward_token(int(tok), self.cache.length)
        finally:
            self._active_mlp = self.mlp
        return logits

    def generate(
        self,
        prompt_ids: Sequence[int],
        max_new_tokens: int,
        stop_ids: Optional[set] = None,
        keep_logits: bool = False,
    ) -> GenerationResult:
        """Greedy decoding from a prompt."""
        if max_new_tokens < 0:
            raise ValueError("max_new_tokens must be non-negative")
        self.reset()
        logits = self.prefill(list(prompt_ids))
        result = GenerationResult(prompt_ids=list(prompt_ids), generated_ids=[])
        for _ in range(max_new_tokens):
            next_id = int(np.argmax(logits))
            if stop_ids and next_id in stop_ids:
                break
            result.generated_ids.append(next_id)
            if keep_logits:
                result.logits_history.append(logits.copy())
            logits = self.forward_token(next_id, self.cache.length)
        return result

"""Statistical activation model of a ProSparse-style ReLU-fied LLM.

The SparseInfer predictor consumes nothing but the *joint sign structure*
of the MLP input ``X`` and the gate matrix ``Wgate``.  We therefore model a
ReLU-fied model at true 7B/13B dimensions with a generative process fitted
to the observations the paper reports (Fig. 2 and Fig. 3):

* ``X`` and ``Wgate`` are approximately symmetric around zero with a
  near-equal ratio of positive and negative values;
* their element-wise products ``Y = X * Wgate_i`` are symmetric with mean
  approaching zero, yet ~90% of gate pre-activations are negative
  (ProSparse-level sparsity) because fine-tuning anti-correlates most gate
  rows with the activation pattern;
* in early layers ``X`` is dominated by near-zero values (narrow, heavy
  concentration around 0), making magnitude noise dominate the sign-count
  signal and lowering the predictor's precision -- exactly the per-layer
  precision dip of Fig. 3.

Generative process (per layer ``l``)
------------------------------------
A fixed Rademacher *sign template* ``s`` in {-1,+1}^d plays the role of the
layer's typical activation sign pattern.  Activations are
``X_j = s_j * eps_j * |x_j|`` where ``eps_j`` flips sign with probability
``q_x(l)`` per token and ``|x_j|`` is log-normal (heavier-tailed in early
layers).  Each gate row ``i`` carries a polarity ``g_i`` (-1 for the ~90%
of "usually off" rows, +1 otherwise) and
``W_ij = g_i * s_j * eta_ij * |w_ij|`` with per-row flip probability
``q_w(l, i)``.  The product sign is then ``g_i * eps_j * eta_ij``: for an
off row a fraction ``p = (1-q_x)(1-q_w) + q_x q_w > 1/2`` of products are
negative, so both the true pre-activation sum and the XOR+popcount majority
come out negative -- with a margin (and hence predictor precision) set by
``q_x + q_w`` and the magnitude tail weight.  Marginally every ``X_j`` and
``W_ij`` stays symmetric, reproducing Fig. 2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .config import ModelConfig


@dataclass(frozen=True)
class LayerStats:
    """Distribution parameters of one decoder layer."""

    q_x: float            # per-token sign-flip probability of X vs template
    q_w_lo: float         # per-row flip probability range of Wgate
    q_w_hi: float
    x_scale: float        # median of |X|
    x_log_sigma: float    # log-normal sigma of |X| (tail weight)
    w_scale: float        # median of |Wgate|
    w_log_sigma: float
    off_fraction: float   # fraction of "usually off" gate rows

    def __post_init__(self):
        for name in ("q_x", "q_w_lo", "q_w_hi"):
            v = getattr(self, name)
            if not 0.0 <= v < 0.5:
                raise ValueError(f"{name} must be in [0, 0.5), got {v}")
        if not 0.0 <= self.off_fraction <= 1.0:
            raise ValueError(f"off_fraction must be in [0,1], got {self.off_fraction}")

    @property
    def product_negative_prob(self) -> float:
        """Mean probability that one product of an off row is negative."""
        q_w = 0.5 * (self.q_w_lo + self.q_w_hi)
        return (1 - self.q_x) * (1 - q_w) + self.q_x * q_w


@dataclass(frozen=True)
class LayerSample:
    """Monte-Carlo sample of one layer's MLP inputs.

    Attributes
    ----------
    x:       ``(n_tokens, d)`` activation vectors entering the MLP.
    w_gate:  ``(n_rows, d)`` sampled gate rows (fixed across the tokens).
    preact:  ``(n_tokens, n_rows)`` exact gate pre-activations ``x @ w.T``.
    """

    layer: int
    x: np.ndarray
    w_gate: np.ndarray
    preact: np.ndarray

    @property
    def true_sparse(self) -> np.ndarray:
        """Ground-truth skip mask: pre-activation <= 0 (ReLU kills it)."""
        return self.preact <= 0.0

    @property
    def actual_sparsity(self) -> float:
        return float(self.true_sparse.mean())


class SyntheticActivationModel:
    """Layer-indexed generator of (X, Wgate) samples at true model scale.

    Weights are deterministic given ``seed`` (re-sampling a layer yields
    the same rows), while activations vary per call through an internal
    token counter -- mirroring fixed weights vs. data-dependent inputs.
    """

    def __init__(self, config: ModelConfig, seed: int = 0,
                 off_fraction: float = 0.90):
        self.config = config
        self.seed = int(seed)
        self.off_fraction = float(off_fraction)
        self._token_epoch = 0

    # -- per-layer parameterisation ------------------------------------

    def maturity(self, layer: int) -> float:
        """0.0 at the first layer, 1.0 at the last.

        Early layers (low maturity) get near-zero-concentrated, heavy-tailed
        activations and weaker sign alignment, as observed in the paper.
        """
        n = self.config.n_layers
        self._check_layer(layer)
        return layer / (n - 1) if n > 1 else 1.0

    def layer_stats(self, layer: int) -> LayerStats:
        t = self.maturity(layer)
        # Saturating warm-up: most of the transition happens in the first
        # ~8 layers, matching the Fig. 3 precision curve flattening out.
        warm = 1.0 - np.exp(-6.0 * t)
        return LayerStats(
            q_x=0.34 - 0.06 * warm,
            q_w_lo=0.30 - 0.06 * warm,
            q_w_hi=0.49 - 0.03 * warm,
            x_scale=0.03 + 0.25 * warm,
            x_log_sigma=1.3 - 0.5 * warm,
            w_scale=0.015,
            w_log_sigma=0.7,
            off_fraction=self.off_fraction,
        )

    # -- sampling -------------------------------------------------------

    def _check_layer(self, layer: int) -> None:
        if not 0 <= layer < self.config.n_layers:
            raise ValueError(
                f"layer {layer} out of range for {self.config.n_layers}-layer model"
            )

    def _weight_rng(self, layer: int) -> np.random.Generator:
        return np.random.default_rng((self.seed, 0xE0, layer))

    def _activation_rng(self, layer: int, epoch: int) -> np.random.Generator:
        return np.random.default_rng((self.seed, 0xA1, layer, epoch))

    def sign_template(self, layer: int) -> np.ndarray:
        """The layer's fixed Rademacher sign template ``s`` in {-1,+1}^d."""
        self._check_layer(layer)
        rng = self._weight_rng(layer)
        return rng.integers(0, 2, size=self.config.d_model) * 2 - 1

    def gate_rows(self, layer: int, n_rows: int) -> tuple[np.ndarray, np.ndarray]:
        """Sample ``n_rows`` gate rows: returns ``(w_gate, polarity)``.

        ``polarity[i] == -1`` marks a "usually off" row.  Rows are a
        deterministic function of ``(seed, layer, n_rows)``.
        """
        self._check_layer(layer)
        if n_rows <= 0:
            raise ValueError(f"n_rows must be positive, got {n_rows}")
        stats = self.layer_stats(layer)
        d = self.config.d_model
        rng = self._weight_rng(layer)
        s = rng.integers(0, 2, size=d) * 2 - 1          # same draw order as sign_template
        polarity = np.where(
            rng.random(n_rows) < stats.off_fraction, -1, 1
        ).astype(np.int8)
        q_w = rng.uniform(stats.q_w_lo, stats.q_w_hi, size=(n_rows, 1))
        eta = np.where(rng.random((n_rows, d)) < q_w, -1, 1)
        mags = stats.w_scale * np.exp(
            stats.w_log_sigma * rng.standard_normal((n_rows, d))
        )
        w = polarity[:, None] * s[None, :] * eta * mags
        return w.astype(np.float32), polarity

    def sample_x(self, layer: int, n_tokens: int) -> np.ndarray:
        """Draw ``n_tokens`` MLP-input activation vectors for ``layer``."""
        self._check_layer(layer)
        if n_tokens <= 0:
            raise ValueError(f"n_tokens must be positive, got {n_tokens}")
        stats = self.layer_stats(layer)
        d = self.config.d_model
        self._token_epoch += 1
        rng = self._activation_rng(layer, self._token_epoch)
        s = self.sign_template(layer)
        eps = np.where(rng.random((n_tokens, d)) < stats.q_x, -1, 1)
        mags = stats.x_scale * np.exp(
            stats.x_log_sigma * rng.standard_normal((n_tokens, d))
        )
        return (s[None, :] * eps * mags).astype(np.float32)

    def sample_layer(
        self, layer: int, n_tokens: int = 32, n_rows: int = 1024
    ) -> LayerSample:
        """Joint sample of activations, gate rows and exact pre-activations."""
        x = self.sample_x(layer, n_tokens)
        w, _ = self.gate_rows(layer, n_rows)
        preact = x.astype(np.float64) @ w.T.astype(np.float64)
        return LayerSample(layer=layer, x=x, w_gate=w, preact=preact)

    def reset_tokens(self) -> None:
        """Rewind the activation stream (weights are unaffected)."""
        self._token_epoch = 0

"""Gated MLP execution: activations and the dense reference executor.

The MLP block follows paper Section III (gate-based MLP of Llama):

    h1 = act(x @ Wgate)        step 1, gate computation
    h2 = x @ Wup               step 2, input processing
    h3 = h1 * h2               step 3, gate application
    out = h3 @ Wdown^T         step 4, output generation

Executors implement :class:`MLPExecutor`; the inference model calls
``run(layer, x)`` with the RMS-normed activation vector.  Sparse executors
(SparseInfer, DejaVu, random, threshold) live in :mod:`repro.core` and
:mod:`repro.baselines` and share this interface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from .config import ModelConfig
from .weights import ModelWeights


def activation_fn(kind: str, threshold: float = 0.0):
    """The gate nonlinearity: relu (ReLU-fied), silu (original), fatrelu."""
    if kind == "relu":
        return lambda z: np.maximum(z, 0.0)
    if kind == "silu":
        return lambda z: z / (1.0 + np.exp(-z))
    if kind == "fatrelu":
        return lambda z: np.where(z >= threshold, z, 0.0)
    raise ValueError(f"unknown activation {kind!r}")


class MLPExecutor(Protocol):
    """Anything that can run one layer's MLP block on a single vector."""

    def run(self, layer: int, x: np.ndarray) -> np.ndarray:  # pragma: no cover
        ...


@dataclass
class MLPStats:
    """Work accounting accumulated across executor calls.

    ``rows_total`` counts gate rows across all (layer, token) invocations;
    ``rows_skipped_*`` count the rows each GEMV avoided.  These feed the
    measured-sparsity side of the latency experiments.
    """

    calls: int = 0
    rows_total: int = 0
    rows_skipped_gate: int = 0
    rows_skipped_up: int = 0
    rows_skipped_down: int = 0

    @property
    def gate_skip_fraction(self) -> float:
        return self.rows_skipped_gate / self.rows_total if self.rows_total else 0.0

    @property
    def up_skip_fraction(self) -> float:
        return self.rows_skipped_up / self.rows_total if self.rows_total else 0.0

    @property
    def down_skip_fraction(self) -> float:
        return self.rows_skipped_down / self.rows_total if self.rows_total else 0.0


@dataclass
class DenseMLP:
    """The llama.cpp-role executor: every row computed, every token."""

    weights: ModelWeights
    stats: MLPStats = field(default_factory=MLPStats)

    def __post_init__(self):
        cfg = self.weights.config
        self._act = activation_fn(cfg.activation, cfg.fatrelu_threshold)

    def run(self, layer: int, x: np.ndarray) -> np.ndarray:
        lw = self.weights.layers[layer]
        h1 = self._act(lw.w_gate_rows @ x)
        h2 = lw.w_up_rows @ x
        h3 = h1 * h2
        self.stats.calls += 1
        self.stats.rows_total += lw.w_gate_rows.shape[0]
        return h3 @ lw.w_down_rows

    def run_tokens(self, layer: int, xs: np.ndarray) -> np.ndarray:
        """One layer's MLP for ``(T, d)`` token inputs as three GEMMs.

        The chunked-prefill path: same math as ``run`` row by row, one
        weight read for the whole chunk.  Stats account per token, so
        chunked and token-by-token prefill report identical work.
        """
        lw = self.weights.layers[layer]
        h1 = self._act(xs @ lw.w_gate_rows.T)
        h2 = xs @ lw.w_up_rows.T
        h3 = h1 * h2
        self.stats.calls += xs.shape[0]
        self.stats.rows_total += xs.shape[0] * lw.w_gate_rows.shape[0]
        return h3 @ lw.w_down_rows

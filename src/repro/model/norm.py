"""RMSNorm for the numpy inference path."""

from __future__ import annotations

import numpy as np


def rmsnorm(x: np.ndarray, weight: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    """Root-mean-square normalisation over the last axis (Llama-style)."""
    ms = np.mean(np.square(x), axis=-1, keepdims=True)
    return x / np.sqrt(ms + eps) * weight

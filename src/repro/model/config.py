"""Model configurations.

Two families:

* **True-scale configs** (``prosparse_llama2_7b`` / ``_13b``) carry the real
  Llama-2 dimensions.  They are used by the *analytical* reproductions --
  op counts (Table I), predictor memory (Section V-A.2), the GPU latency
  model (Fig. 4) and the statistical activation model (Figs. 2-3) -- none
  of which require materialising the full weights.
* **Role configs** (``tiny_7b_role`` / ``tiny_13b_role``) are small
  trainable stand-ins used for end-to-end accuracy experiments
  (Tables II-III).  The 13B-role model is deeper/wider than the 7B-role
  one so the relative robustness ordering of the paper can emerge.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class ModelConfig:
    """Architecture hyper-parameters of a gate-based-MLP decoder LM.

    ``d_ff`` is the paper's ``k`` (gate/up/down inner dimension, ``k > d``).
    """

    name: str
    vocab_size: int
    d_model: int
    n_layers: int
    n_heads: int
    d_ff: int
    max_seq_len: int = 2048
    rope_theta: float = 10000.0
    norm_eps: float = 1e-5
    activation: str = "relu"          # "relu" | "silu" | "fatrelu"
    fatrelu_threshold: float = 0.0    # only used when activation == "fatrelu"
    dtype_bytes: int = 2              # FP16 storage, as in the paper's setup

    def __post_init__(self):
        if self.d_model % self.n_heads != 0:
            raise ValueError(
                f"d_model ({self.d_model}) must divide by n_heads ({self.n_heads})"
            )
        if self.activation not in ("relu", "silu", "fatrelu"):
            raise ValueError(f"unknown activation {self.activation!r}")
        if self.d_ff <= 0 or self.d_model <= 0 or self.n_layers <= 0:
            raise ValueError("dimensions must be positive")

    @property
    def head_dim(self) -> int:
        return self.d_model // self.n_heads

    @property
    def mlp_params_per_layer(self) -> int:
        """Parameters in one gated MLP block: Wgate + Wup + Wdown."""
        return 3 * self.d_model * self.d_ff

    @property
    def attn_params_per_layer(self) -> int:
        """Parameters in one attention block: Wq, Wk, Wv, Wo."""
        return 4 * self.d_model * self.d_model

    @property
    def total_params(self) -> int:
        per_layer = self.mlp_params_per_layer + self.attn_params_per_layer
        embed = self.vocab_size * self.d_model
        return self.n_layers * per_layer + 2 * embed  # tied-off embed + lm head

    def relufied(self) -> "ModelConfig":
        """The ReLUfication transform of Mirzadeh et al.: swap to ReLU."""
        return replace(self, activation="relu", name=self.name + "-relufied")


def prosparse_llama2_13b() -> ModelConfig:
    """ProSparse-Llama2-13B dimensions (paper Section V-A.2)."""
    return ModelConfig(
        name="ProSparse-Llama2-13B",
        vocab_size=32000,
        d_model=5120,
        n_layers=40,
        n_heads=40,
        d_ff=13824,
        max_seq_len=4096,
        activation="relu",
    )


def prosparse_llama2_7b() -> ModelConfig:
    """ProSparse-Llama2-7B dimensions."""
    return ModelConfig(
        name="ProSparse-Llama2-7B",
        vocab_size=32000,
        d_model=4096,
        n_layers=32,
        n_heads=32,
        d_ff=11008,
        max_seq_len=4096,
        activation="relu",
    )


def tiny_13b_role(vocab_size: int = 64) -> ModelConfig:
    """Trainable stand-in playing the 13B role in accuracy experiments."""
    return ModelConfig(
        name="tiny-13b-role",
        vocab_size=vocab_size,
        d_model=160,
        n_layers=5,
        n_heads=5,
        d_ff=416,
        max_seq_len=128,
        activation="relu",
        dtype_bytes=4,
    )


def tiny_7b_role(vocab_size: int = 64) -> ModelConfig:
    """Trainable stand-in playing the 7B role (smaller, more fragile)."""
    return ModelConfig(
        name="tiny-7b-role",
        vocab_size=vocab_size,
        d_model=128,
        n_layers=4,
        n_heads=4,
        d_ff=320,
        max_seq_len=128,
        activation="relu",
        dtype_bytes=4,
    )

"""Plain-numpy weight containers in inference layout.

The inference layout keeps the gate/up/down projections *row-major by
output neuron* so that activation sparsity maps to skipping contiguous
rows, exactly as the paper's sparse GEMV kernels do:

* ``w_gate_rows`` / ``w_up_rows``: shape ``(k, d)``; ``h = W @ x``.
* ``w_down_rows``: shape ``(k, d)``; row ``i`` is the column of ``Wdown``
  scaled by ``h3[i]`` and accumulated into the output (the transposed /
  atomicAdd layout of Section IV-B.4).

Weights can be saved/loaded as ``.npz`` for caching trained models.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from .config import ModelConfig


@dataclass
class LayerWeights:
    """All parameters of one decoder layer."""

    attn_norm: np.ndarray    # (d,)
    wq: np.ndarray           # (d, d), used as x @ wq
    wk: np.ndarray           # (d, d)
    wv: np.ndarray           # (d, d)
    wo: np.ndarray           # (d, d)
    mlp_norm: np.ndarray     # (d,)
    w_gate_rows: np.ndarray  # (k, d)
    w_up_rows: np.ndarray    # (k, d)
    w_down_rows: np.ndarray  # (k, d)

    def validate(self, config: ModelConfig) -> None:
        d, k = config.d_model, config.d_ff
        expected = {
            "attn_norm": (d,),
            "wq": (d, d),
            "wk": (d, d),
            "wv": (d, d),
            "wo": (d, d),
            "mlp_norm": (d,),
            "w_gate_rows": (k, d),
            "w_up_rows": (k, d),
            "w_down_rows": (k, d),
        }
        for name, shape in expected.items():
            actual = getattr(self, name).shape
            if actual != shape:
                raise ValueError(f"{name}: expected shape {shape}, got {actual}")


@dataclass
class ModelWeights:
    """Full parameter set of a gate-based-MLP decoder LM."""

    config: ModelConfig
    tok_embed: np.ndarray    # (vocab, d)
    layers: list             # list[LayerWeights]
    final_norm: np.ndarray   # (d,)
    lm_head: np.ndarray      # (d, vocab)

    def validate(self) -> None:
        cfg = self.config
        if self.tok_embed.shape != (cfg.vocab_size, cfg.d_model):
            raise ValueError(f"tok_embed shape {self.tok_embed.shape}")
        if self.lm_head.shape != (cfg.d_model, cfg.vocab_size):
            raise ValueError(f"lm_head shape {self.lm_head.shape}")
        if self.final_norm.shape != (cfg.d_model,):
            raise ValueError(f"final_norm shape {self.final_norm.shape}")
        if len(self.layers) != cfg.n_layers:
            raise ValueError(
                f"expected {cfg.n_layers} layers, got {len(self.layers)}"
            )
        for layer in self.layers:
            layer.validate(cfg)

    def gate_matrices(self) -> list:
        """Per-layer ``(k, d)`` gate matrices, the predictor's input."""
        return [layer.w_gate_rows for layer in self.layers]

    # -- persistence ------------------------------------------------------

    def save(self, path) -> None:
        """Serialise to ``.npz`` (used to cache trained role models)."""
        arrays = {
            "tok_embed": self.tok_embed,
            "final_norm": self.final_norm,
            "lm_head": self.lm_head,
        }
        for i, layer in enumerate(self.layers):
            for name in (
                "attn_norm", "wq", "wk", "wv", "wo",
                "mlp_norm", "w_gate_rows", "w_up_rows", "w_down_rows",
            ):
                arrays[f"layer{i}.{name}"] = getattr(layer, name)
        np.savez_compressed(Path(path), **arrays)

    @classmethod
    def load(cls, path, config: ModelConfig) -> "ModelWeights":
        data = np.load(Path(path))
        layers = []
        for i in range(config.n_layers):
            layers.append(
                LayerWeights(
                    **{
                        name: data[f"layer{i}.{name}"]
                        for name in (
                            "attn_norm", "wq", "wk", "wv", "wo",
                            "mlp_norm", "w_gate_rows", "w_up_rows",
                            "w_down_rows",
                        )
                    }
                )
            )
        weights = cls(
            config=config,
            tok_embed=data["tok_embed"],
            layers=layers,
            final_norm=data["final_norm"],
            lm_head=data["lm_head"],
        )
        weights.validate()
        return weights


def random_weights(config: ModelConfig, seed: int = 0,
                   scale: float = 0.02) -> ModelWeights:
    """Random (untrained) weights, mostly for tests and shape checks."""
    rng = np.random.default_rng(seed)
    d, k, v = config.d_model, config.d_ff, config.vocab_size

    def mat(*shape):
        return (rng.standard_normal(shape) * scale).astype(np.float32)

    layers = [
        LayerWeights(
            attn_norm=np.ones(d, dtype=np.float32),
            wq=mat(d, d), wk=mat(d, d), wv=mat(d, d), wo=mat(d, d),
            mlp_norm=np.ones(d, dtype=np.float32),
            w_gate_rows=mat(k, d), w_up_rows=mat(k, d), w_down_rows=mat(k, d),
        )
        for _ in range(config.n_layers)
    ]
    weights = ModelWeights(
        config=config,
        tok_embed=mat(v, d),
        layers=layers,
        final_norm=np.ones(d, dtype=np.float32),
        lm_head=mat(d, v),
    )
    weights.validate()
    return weights

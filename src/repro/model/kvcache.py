"""Per-layer key/value caches for autoregressive decoding.

:class:`KVCache` backs single-sequence decoding.  :class:`BatchedKVCache`
pre-allocates a fixed number of per-sequence *slots* for the serving
engine: each admitted request owns one slot for its lifetime, and slots
are recycled as requests finish (continuous batching).  A :class:`KVSlot`
exposes the same ``append``/``view``/``advance`` interface as
:class:`KVCache`, so attention code is agnostic to which one it runs on.
:mod:`repro.model.paged_kvcache` provides a page-granular drop-in for
:class:`BatchedKVCache` when slots must share a memory budget.
"""

from __future__ import annotations

import numpy as np

from .config import ModelConfig


class KVCache:
    """Pre-allocated K/V storage for one decode session.

    Shapes are ``(n_layers, max_seq, d_model)``; heads are split lazily by
    the attention code.  ``length`` counts positions filled so far.
    """

    def __init__(self, config: ModelConfig, max_seq_len: int = 0):
        self.config = config
        self.max_seq_len = max_seq_len or config.max_seq_len
        shape = (config.n_layers, self.max_seq_len, config.d_model)
        self.keys = np.zeros(shape, dtype=np.float32)
        self.values = np.zeros(shape, dtype=np.float32)
        self.length = 0

    def append(self, layer: int, k: np.ndarray, v: np.ndarray,
               position: int) -> None:
        """Store one position's key/value for ``layer``."""
        if position >= self.max_seq_len:
            raise ValueError(
                f"position {position} exceeds cache capacity {self.max_seq_len}"
            )
        self.keys[layer, position] = k
        self.values[layer, position] = v

    def view(self, layer: int, length: int) -> tuple[np.ndarray, np.ndarray]:
        """K/V for the first ``length`` positions of ``layer``."""
        return self.keys[layer, :length], self.values[layer, :length]

    def advance(self) -> None:
        """Mark one more position as filled (after all layers appended)."""
        self.length += 1
        if self.length > self.max_seq_len:
            raise ValueError("KV cache overflow")

    def reset(self) -> None:
        self.length = 0


class KVSlot:
    """One sequence's K/V storage inside a :class:`BatchedKVCache`.

    Presents the :class:`KVCache` interface over views into the pooled
    arrays, so the single-token attention path runs unchanged whether it
    decodes a standalone sequence or one slot of a serving batch.
    """

    def __init__(self, pool: "BatchedKVCache", index: int):
        self._pool = pool
        self.index = index
        self.keys = pool.keys[index]      # (n_layers, max_seq, d_model) view
        self.values = pool.values[index]
        self.length = 0

    @property
    def max_seq_len(self) -> int:
        return self._pool.max_seq_len

    def append(self, layer: int, k: np.ndarray, v: np.ndarray,
               position: int) -> None:
        if position >= self.max_seq_len:
            raise ValueError(
                f"position {position} exceeds slot capacity {self.max_seq_len}"
            )
        self.keys[layer, position] = k
        self.values[layer, position] = v

    def view(self, layer: int, length: int) -> tuple[np.ndarray, np.ndarray]:
        return self.keys[layer, :length], self.values[layer, :length]

    def advance(self) -> None:
        self.length += 1
        if self.length > self.max_seq_len:
            raise ValueError("KV slot overflow")

    def truncate(self, n_positions: int) -> None:
        """Roll the slot back to ``n_positions`` filled positions.

        Speculative decoding appends draft-quality K/V past the committed
        length and rewinds on rejection.  Fixed slots keep their arena
        contents; re-appending simply overwrites the stale tail.
        """
        if not 0 <= n_positions <= self.length:
            raise ValueError(
                f"cannot truncate slot of length {self.length} "
                f"to {n_positions}"
            )
        self.length = n_positions

    def reset(self) -> None:
        self.length = 0


class FixedBatchView:
    """Padded batched K/V gather over a :class:`BatchedKVCache`.

    ``gather(layer)`` returns ``(keys, values)`` of shape
    ``(B, l_max, d_model)`` -- each row is one slot's K/V, rows shorter
    than ``l_max`` padded with whatever the arena holds past their
    length (callers mask by :attr:`lengths`).  When the batch occupies
    a consecutive run of slot indices (the common case: allocation
    always pops the lowest free index) the gather is a **zero-copy
    basic slice** of the pooled array; scattered slots fall back to one
    fancy index on the slot axis.
    """

    def __init__(self, cache: "BatchedKVCache", slots, lengths):
        self._cache = cache
        indices = [slot.index for slot in slots]
        self._indices = np.asarray(indices)
        self.lengths = np.asarray(lengths)
        self.l_max = int(self.lengths.max())
        self._run_start = None
        if indices == list(range(indices[0], indices[0] + len(indices))):
            self._run_start = indices[0]

    def gather(self, layer: int) -> tuple[np.ndarray, np.ndarray]:
        cache, l_max = self._cache, self.l_max
        if self._run_start is not None:
            start = self._run_start
            stop = start + len(self._indices)
            return (cache.keys[start:stop, layer, :l_max],
                    cache.values[start:stop, layer, :l_max])
        idx = self._indices
        return (cache.keys[idx, layer, :l_max],
                cache.values[idx, layer, :l_max])


class BatchedKVCache:
    """Fixed pool of per-sequence KV slots for batched decoding.

    Storage is ``(n_slots, n_layers, max_seq, d_model)``; one slot is one
    sequence's cache.  ``allocate``/``release`` recycle slots as the
    scheduler admits and retires requests.
    """

    def __init__(self, config: ModelConfig, n_slots: int,
                 max_seq_len: int = 0):
        if n_slots < 1:
            raise ValueError(f"n_slots must be >= 1, got {n_slots}")
        self.config = config
        self.n_slots = n_slots
        self.max_seq_len = max_seq_len or config.max_seq_len
        shape = (n_slots, config.n_layers, self.max_seq_len, config.d_model)
        self.keys = np.zeros(shape, dtype=np.float32)
        self.values = np.zeros(shape, dtype=np.float32)
        self._slots = [KVSlot(self, i) for i in range(n_slots)]
        self._free = list(range(n_slots - 1, -1, -1))   # pop() -> lowest index
        self._free_set = set(range(n_slots))            # O(1) membership

    @property
    def n_free(self) -> int:
        return len(self._free)

    @property
    def max_request_positions(self) -> int:
        """Longest sequence any single request could ever store."""
        return self.max_seq_len

    @property
    def n_shared_pages(self) -> int:
        """Interface parity with :class:`PagedKVCache`: fixed slots are
        exclusively owned, so nothing is ever shared."""
        return 0

    @property
    def kv_bytes(self) -> int:
        """Resident bytes of both arrays (the fixed engine's KV footprint)."""
        return self.keys.nbytes + self.values.nbytes

    def can_admit(self, n_positions: int) -> bool:
        """Whether a worst-case ``n_positions`` request fits right now.

        Fixed slots hold ``max_seq_len`` positions regardless of the
        request, so a free slot is the only requirement (size limits are
        the caller's capacity check).
        """
        return bool(self._free)

    def view_batch(self, slots, lengths) -> FixedBatchView:
        """Padded ``(B, l_max, d_model)`` K/V gather for a decode batch."""
        return FixedBatchView(self, slots, lengths)

    def allocate(self, max_positions: int = 0) -> KVSlot:
        """Claim a free slot (reset to length 0).

        ``max_positions`` is accepted for interface parity with
        :class:`~repro.model.paged_kvcache.PagedKVCache`; a fixed slot
        always holds the full ``max_seq_len``, so there is nothing to
        reserve.
        """
        if not self._free:
            raise RuntimeError("no free KV slots")
        index = self._free.pop()
        self._free_set.discard(index)
        slot = self._slots[index]
        slot.reset()
        return slot

    def release(self, slot: KVSlot) -> None:
        """Return a slot to the free pool (O(1) double-release check)."""
        if slot._pool is not self:
            raise ValueError("slot belongs to a different cache")
        if slot.index in self._free_set:
            raise ValueError(f"slot {slot.index} released twice")
        slot.reset()
        self._free.append(slot.index)
        self._free_set.add(slot.index)

"""Per-layer key/value cache for autoregressive decoding."""

from __future__ import annotations

import numpy as np

from .config import ModelConfig


class KVCache:
    """Pre-allocated K/V storage for one decode session.

    Shapes are ``(n_layers, max_seq, d_model)``; heads are split lazily by
    the attention code.  ``length`` counts positions filled so far.
    """

    def __init__(self, config: ModelConfig, max_seq_len: int = 0):
        self.config = config
        self.max_seq_len = max_seq_len or config.max_seq_len
        shape = (config.n_layers, self.max_seq_len, config.d_model)
        self.keys = np.zeros(shape, dtype=np.float32)
        self.values = np.zeros(shape, dtype=np.float32)
        self.length = 0

    def append(self, layer: int, k: np.ndarray, v: np.ndarray,
               position: int) -> None:
        """Store one position's key/value for ``layer``."""
        if position >= self.max_seq_len:
            raise ValueError(
                f"position {position} exceeds cache capacity {self.max_seq_len}"
            )
        self.keys[layer, position] = k
        self.values[layer, position] = v

    def view(self, layer: int, length: int) -> tuple[np.ndarray, np.ndarray]:
        """K/V for the first ``length`` positions of ``layer``."""
        return self.keys[layer, :length], self.values[layer, :length]

    def advance(self) -> None:
        """Mark one more position as filled (after all layers appended)."""
        self.length += 1
        if self.length > self.max_seq_len:
            raise ValueError("KV cache overflow")

    def reset(self) -> None:
        self.length = 0

"""LLM substrate: configs, weights, decode engine, synthetic activations."""

from .config import (
    ModelConfig,
    prosparse_llama2_7b,
    prosparse_llama2_13b,
    tiny_7b_role,
    tiny_13b_role,
)
from .batch_attention import AttentionTelemetry, BatchedAttention, length_buckets
from .inference import InferenceModel, MLPTrace
from .kvcache import BatchedKVCache, KVCache
from .mlp import DenseMLP, MLPStats
from .paged_kvcache import (
    PagedKVCache,
    PagedKVSlot,
    PagePool,
    PrefixCache,
    chained_prefix_keys,
)
from .synthetic import SyntheticActivationModel
from .tokenizer import CharTokenizer
from .weights import LayerWeights, ModelWeights, random_weights

"""Rotary position embeddings for the numpy inference path.

:func:`rope_tables` builds ``(cos, sin)`` tables for arbitrary position
vectors; :func:`rope_for_position` is the memoized single-position
variant every decode path shares -- a decode step needs the table for
exactly one position per sequence, and co-scheduled sequences (prefix
sharers especially) sit at the *same* position, so the LRU turns
``B x n_layers`` rebuilds per step into at most one build per distinct
position per engine lifetime.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

ROPE_MEMO_SIZE = 4096


def rope_tables(
    positions: np.ndarray, head_dim: int, theta: float = 10000.0
) -> tuple[np.ndarray, np.ndarray]:
    """cos/sin tables for arbitrary positions; shape ``(len(pos), head_dim/2)``."""
    if head_dim % 2 != 0:
        raise ValueError(f"head_dim must be even for RoPE, got {head_dim}")
    half = head_dim // 2
    freqs = theta ** (-np.arange(half, dtype=np.float64) * 2.0 / head_dim)
    angles = np.asarray(positions, dtype=np.float64)[:, None] * freqs[None, :]
    return np.cos(angles).astype(np.float32), np.sin(angles).astype(np.float32)


@lru_cache(maxsize=ROPE_MEMO_SIZE)
def _rope_for_position_cached(
    position: int, head_dim: int, theta: float
) -> tuple[np.ndarray, np.ndarray]:
    cos, sin = rope_tables(np.array([position]), head_dim, theta)
    # Cached arrays are shared across callers; freeze them so an
    # accidental in-place edit cannot corrupt every future lookup.
    cos.flags.writeable = False
    sin.flags.writeable = False
    return cos, sin


def rope_for_position(
    position: int, head_dim: int, theta: float = 10000.0
) -> tuple[np.ndarray, np.ndarray]:
    """Memoized ``(cos, sin)`` for one position; shape ``(1, head_dim/2)``.

    Bit-identical to ``rope_tables(np.array([position]), ...)`` -- the
    memo caches that exact call -- so the single-sequence, batched-decode
    and chunked-prefill paths can all share it without numeric drift.
    The returned arrays are read-only views of the cache entry.
    """
    return _rope_for_position_cached(int(position), head_dim, float(theta))


def apply_rope(x: np.ndarray, cos: np.ndarray, sin: np.ndarray) -> np.ndarray:
    """Rotate channel pairs; ``x`` has shape ``(..., seq, head_dim)``.

    Uses the half-split pairing (first half with second half), matching the
    training path in :mod:`repro.autograd.functional`.
    """
    half = x.shape[-1] // 2
    x1, x2 = x[..., :half], x[..., half:]
    return np.concatenate(
        [x1 * cos - x2 * sin, x1 * sin + x2 * cos], axis=-1
    ).astype(x.dtype)

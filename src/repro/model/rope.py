"""Rotary position embeddings for the numpy inference path."""

from __future__ import annotations

import numpy as np


def rope_tables(
    positions: np.ndarray, head_dim: int, theta: float = 10000.0
) -> tuple[np.ndarray, np.ndarray]:
    """cos/sin tables for arbitrary positions; shape ``(len(pos), head_dim/2)``."""
    if head_dim % 2 != 0:
        raise ValueError(f"head_dim must be even for RoPE, got {head_dim}")
    half = head_dim // 2
    freqs = theta ** (-np.arange(half, dtype=np.float64) * 2.0 / head_dim)
    angles = np.asarray(positions, dtype=np.float64)[:, None] * freqs[None, :]
    return np.cos(angles).astype(np.float32), np.sin(angles).astype(np.float32)


def apply_rope(x: np.ndarray, cos: np.ndarray, sin: np.ndarray) -> np.ndarray:
    """Rotate channel pairs; ``x`` has shape ``(..., seq, head_dim)``.

    Uses the half-split pairing (first half with second half), matching the
    training path in :mod:`repro.autograd.functional`.
    """
    half = x.shape[-1] // 2
    x1, x2 = x[..., :half], x[..., half:]
    return np.concatenate(
        [x1 * cos - x2 * sin, x1 * sin + x2 * cos], axis=-1
    ).astype(x.dtype)

"""Batched decode attention: pad-and-stack K/V with length masking.

:func:`~repro.model.inference.attend_single` is exact but scalar -- the
serving engine used to call it ``B x n_layers`` times per decode step.
This module computes the same attention for a whole decode batch at
once:

1. RoPE is applied to the step's ``(B, d)`` Q/K projections in one shot,
   with per-position ``(cos, sin)`` tables drawn from the shared memo
   (:func:`repro.model.rope.rope_for_position`) -- co-scheduled
   sequences at the same length share one table instead of B copies.
2. Each sequence's K/V pages are gathered into a padded
   ``(B, l_max, n_heads, head_dim)`` stack via the cache's
   ``view_batch`` path (one arena index per layer, plans cached between
   steps), and a length mask zeroes the padded positions **exactly** --
   masked scores are ``-inf`` before the softmax, so padded K/V can
   hold arbitrary garbage without perturbing a single output bit.
3. Scores and context reduce as one einsum per layer instead of B.

**Length bucketing.**  Padding waste is ``l_max - l_i`` per row; a batch
mixing a 500-token sequence with 10-token ones would gather mostly
padding.  :func:`length_buckets` splits the batch into groups whose
lengths are within ``bucket_min_fill`` of the group maximum (prefix
sharing makes equal-length groups common, so bucketing is usually
free).  Singleton buckets fall back to :func:`attend_single`, which
keeps its zero-copy / contiguous-run view paths.

Numerics: the batched einsums may round differently from the scalar
GEMVs, so batch > 1 output is *token-identical*, not bit-identical, to
the per-sequence loop -- same contract as the batched MLP.  The engine
keeps batch = 1 on the scalar path, which stays bit-identical to
:func:`repro.core.engine.build_engine`.  These guarantees hold across
the whole fixed / paged / prefix-shared / prefix-cached KV matrix --
see ``docs/serving.md`` for the architecture walkthrough and the full
knob / telemetry reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .config import ModelConfig
from .inference import attend_single
from .rope import apply_rope, rope_for_position

DEFAULT_BUCKET_MIN_FILL = 0.5


@dataclass
class AttentionTelemetry:
    """Padding/bucketing accounting across batched decode steps.

    ``useful_positions`` counts K/V cells inside some sequence's length;
    ``padded_positions`` counts every cell the padded gathers touched,
    so their gap is the work the length mask threw away.  Singleton
    buckets are excluded from both -- they take the scalar
    ``attend_single`` path and never gather padding -- so the waste
    fraction describes only the gathers that actually ran.  One *step*
    here is one decode step (all layers share the step's bucketing).
    """

    batched_steps: int = 0
    buckets_sum: int = 0
    useful_positions: int = 0
    padded_positions: int = 0

    @property
    def padding_waste_fraction(self) -> float:
        """Fraction of gathered K/V cells that were padding."""
        if not self.padded_positions:
            return 0.0
        return 1.0 - self.useful_positions / self.padded_positions

    @property
    def mean_buckets_per_step(self) -> float:
        return self.buckets_sum / self.batched_steps if self.batched_steps else 0.0


def length_buckets(
    lengths: Sequence[int], min_fill: float = DEFAULT_BUCKET_MIN_FILL
) -> list:
    """Group batch indices so padding waste stays bounded.

    Indices are sorted by length (descending) and greedily grouped: an
    index joins the current bucket while its length is at least
    ``min_fill`` of the bucket maximum, so no row in a bucket wastes
    more than ``1 - min_fill`` of its padded width.  ``min_fill = 0``
    disables bucketing (one bucket, pure pad-and-stack);
    ``min_fill = 1`` buckets only exactly-equal lengths.
    """
    if not 0.0 <= min_fill <= 1.0:
        raise ValueError(f"min_fill must be in [0, 1], got {min_fill}")
    order = sorted(range(len(lengths)), key=lambda i: -lengths[i])
    buckets = [[order[0]]]
    bucket_max = lengths[order[0]]
    for i in order[1:]:
        if lengths[i] >= min_fill * bucket_max:
            buckets[-1].append(i)
        else:
            buckets.append([i])
            bucket_max = lengths[i]
    return buckets


class _BucketAttend:
    """Per-step state of one length bucket: everything layer-invariant.

    RoPE stacks, the length mask and the bucket's index array depend
    only on the step's positions, so they are built once here and
    reused by every layer; the batch K/V view is built lazily at the
    first gather (after layer 0's appends have claimed any new page)
    and likewise reused -- a decode step's page tables cannot change
    after its first append.
    """

    __slots__ = ("indices", "slots", "positions", "lengths", "l_max",
                 "cos", "sin", "neg_mask", "view", "whole_batch",
                 "scores", "ctx")

    def __init__(self, config: ModelConfig, indices, slots, positions,
                 whole_batch: bool):
        self.indices = indices
        self.slots = slots
        self.positions = positions
        self.whole_batch = whole_batch
        self.lengths = np.asarray(positions) + 1
        self.l_max = int(self.lengths.max())
        self.view = None
        if len(slots) > 1:
            # One (cos, sin) build per *distinct* position: equal-length
            # sequences (co-scheduled prefix sharers) share one memo
            # entry instead of B identical rebuilds.
            tables = {
                p: rope_for_position(p, config.head_dim, config.rope_theta)
                for p in set(positions)
            }
            self.cos = np.concatenate(
                [tables[p][0] for p in positions]
            )[:, None, :]
            self.sin = np.concatenate(
                [tables[p][1] for p in positions]
            )[:, None, :]
            # Additive mask: 0 inside a row's length, -inf past it.
            # finite + -inf == -inf exactly, so adding it in place is as
            # exact as np.where without allocating a fresh scores array.
            batch, l_max = len(slots), self.l_max
            self.neg_mask = np.where(
                np.arange(l_max)[None, None, :] < self.lengths[:, None, None],
                np.float32(0.0), np.float32(-np.inf),
            )                                              # (B, 1, l_max)
            # Per-step matmul output buffers, reused by every layer:
            # re-allocating them per layer costs more than the attention
            # math itself (allocator + page-fault churn that also evicts
            # the MLP weights' cache lines).
            h, hd = config.n_heads, config.head_dim
            self.scores = np.empty((batch, h, l_max, 1), dtype=np.float32)
            self.ctx = np.empty((batch, h, 1, hd), dtype=np.float32)


class StepPlan:
    """One decode step's bucketed attention, shared by all layers."""

    def __init__(self, config: ModelConfig, buckets):
        self.config = config
        self.buckets = buckets

    def attend_layer(
        self, layer: int, q: np.ndarray, k: np.ndarray, v: np.ndarray,
        cache,
    ) -> np.ndarray:
        """Masked batched attention over every bucket; ``(B, d)`` ctx."""
        if len(self.buckets) == 1 and self.buckets[0].whole_batch:
            return self._attend_bucket(self.buckets[0], layer, q, k, v,
                                       cache)
        ctx = np.empty_like(q)
        for bucket in self.buckets:
            idx = bucket.indices
            ctx[idx] = self._attend_bucket(bucket, layer, q[idx], k[idx],
                                           v[idx], cache)
        return ctx

    def _attend_bucket(self, bucket, layer, q, k, v, cache) -> np.ndarray:
        """RoPE + cache append + masked attention for one bucket.

        ``q``/``k``/``v`` are the bucket's raw ``(B, d_model)``
        projections; returns the ``(B, d_model)`` pre-``Wo`` context.
        Appends each row's K/V to its slot exactly like
        :func:`attend_single` before gathering, so the cache contents
        are identical to the scalar path's.
        """
        cfg = self.config
        n_heads, head_dim = cfg.n_heads, cfg.head_dim
        batch = q.shape[0]
        if batch == 1:
            # Scalar fallback keeps the zero-copy single-sequence view
            # paths; singleton buckets are common under heavy bucketing.
            position = bucket.positions[0]
            rope = rope_for_position(position, head_dim, cfg.rope_theta)
            ctx = attend_single(cfg, q[0], k[0], v[0], position,
                                bucket.slots[0], layer, rope=rope)
            return ctx[None, :]

        qr = apply_rope(q.reshape(batch, n_heads, head_dim),
                        bucket.cos, bucket.sin)
        kr = apply_rope(k.reshape(batch, n_heads, head_dim),
                        bucket.cos, bucket.sin)
        k_flat = kr.reshape(batch, cfg.d_model)
        for i, slot in enumerate(bucket.slots):
            slot.append(layer, k_flat[i], v[i], bucket.positions[i])

        if bucket.view is None:
            # Safe to freeze now: the step's first appends (above) have
            # claimed any new page, and later layers only rewrite the
            # same position.
            bucket.view = cache.view_batch(bucket.slots, bucket.lengths)
        l_max = bucket.view.l_max
        keys, values = bucket.view.gather(layer)          # (B, l_max, d)
        kh = keys.reshape(batch, l_max, n_heads, head_dim).transpose(0, 2, 1, 3)
        vh = values.reshape(batch, l_max, n_heads, head_dim).transpose(0, 2, 1, 3)

        # matmul on the strided head views, not einsum: the stacked
        # (B, h) BLAS dispatch (strides become lda/ldb, no materialised
        # transpose) is 2-3x faster than c_einsum's loops at decode
        # shapes, and out= into the per-step buffers keeps the step free
        # of large per-layer temporaries.
        np.matmul(kh, qr[..., None], out=bucket.scores)
        scores = bucket.scores[..., 0]                    # (B, h, l_max)
        scores /= np.float32(np.sqrt(head_dim))  # float32 scale, see inference.py
        scores += bucket.neg_mask       # -inf past each row's length
        scores -= scores.max(axis=-1, keepdims=True)
        np.exp(scores, out=scores)      # exp(-inf) == 0: padded rows exact
        scores /= scores.sum(axis=-1, keepdims=True)
        probs = bucket.scores.transpose(0, 1, 3, 2)       # (B, h, 1, l_max)
        np.matmul(probs, vh, out=bucket.ctx)
        return bucket.ctx.reshape(batch, cfg.d_model)


class BatchedAttention:
    """One decode step's attention for many sequences at once.

    The engine calls :meth:`plan_step` once per decode step (bucketing,
    RoPE/mask precompute, telemetry) and the returned
    :class:`StepPlan`'s ``attend_layer`` once per layer.  ``cache`` is
    anything with a ``view_batch(slots, lengths)`` method --
    :class:`~repro.model.kvcache.BatchedKVCache` or
    :class:`~repro.model.paged_kvcache.PagedKVCache`.
    """

    def __init__(self, config: ModelConfig,
                 bucket_min_fill: float = DEFAULT_BUCKET_MIN_FILL):
        if not 0.0 <= bucket_min_fill <= 1.0:
            raise ValueError(
                f"bucket_min_fill must be in [0, 1], got {bucket_min_fill}"
            )
        self.config = config
        self.bucket_min_fill = bucket_min_fill
        self.telemetry = AttentionTelemetry()

    def reset_telemetry(self) -> None:
        self.telemetry = AttentionTelemetry()

    def plan_step(self, positions: Sequence[int], slots: Sequence) -> StepPlan:
        """Bucket a decode step by post-append length; account telemetry."""
        lengths = [p + 1 for p in positions]
        groups = length_buckets(lengths, self.bucket_min_fill)
        t = self.telemetry
        t.batched_steps += 1
        t.buckets_sum += len(groups)
        buckets = []
        for group in groups:
            if len(group) > 1:       # singletons never gather padding
                l_max = max(lengths[i] for i in group)
                t.padded_positions += len(group) * l_max
                t.useful_positions += sum(lengths[i] for i in group)
            buckets.append(_BucketAttend(
                self.config,
                indices=group,
                slots=[slots[i] for i in group],
                positions=[positions[i] for i in group],
                # Direct (un-sliced) q/k/v are only valid when the
                # bucket is the identity permutation of the batch --
                # bucketing sorts by length, so check order, not size.
                whole_batch=group == list(range(len(positions))),
            ))
        return StepPlan(self.config, buckets)

"""Token sampling for the decode engine: scalar and batched.

The paper's evaluation decodes greedily (exact-match scoring); sampling
strategies are provided for completeness of the inference substrate, the
examples, and -- since the serving stack grew continuous batching -- for
per-request decode diversity under batching (ROADMAP item 5).

Both the scalar :class:`Sampler` and the serving-side
:class:`BatchedSampler` route through the same ``(B, vocab)`` kernel
(:func:`filtered_probs` + :func:`sample_rows`), so a request sampled in a
batch draws the **bit-identical** token it would have drawn alone, given
the same logits row, config, and RNG stream.  Streams are per-request
(:func:`derive_stream`), keyed by ``(config.seed, request_id)``: a
request's tokens never depend on which other requests share its batch,
the order they were admitted, or how often it was preempted (replay
re-feeds already-sampled tokens and never draws).

Filter semantics (all applied to temperature-scaled logits):

* ``top_k``: keep exactly the ``k`` highest logits.  Ties at the kth
  value are broken deterministically by **lowest token id**, so exactly
  ``k`` survive (the pre-PR-8 implementation kept every tied token).
  ``k == 0`` or ``k >= vocab`` disables the filter.
* ``top_p``: keep the smallest prefix of the probability-sorted vocab
  whose mass reaches ``top_p``.  The sort is **stable** on descending
  probability, so tied probabilities keep the lowest token ids (the
  pre-PR-8 unstable argsort made the kept set tie-order-dependent).
  ``p == 0`` disables; ``p == 1`` keeps the full support.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

_SEED_MASK = (1 << 64) - 1


@dataclass(frozen=True)
class SamplerConfig:
    """Sampling hyper-parameters.

    ``temperature == 0`` means greedy argmax.  ``top_k``/``top_p`` filter
    the distribution before sampling (0 disables each filter).  ``seed``
    feeds :func:`derive_stream`, which mixes it with the request id so
    every request gets an independent, reproducible RNG stream.
    """

    temperature: float = 0.0
    top_k: int = 0
    top_p: float = 0.0
    seed: int = 0

    def __post_init__(self):
        if self.temperature < 0:
            raise ValueError(f"temperature must be >= 0, got {self.temperature}")
        if self.top_k < 0:
            raise ValueError(f"top_k must be >= 0, got {self.top_k}")
        if not 0.0 <= self.top_p <= 1.0:
            raise ValueError(f"top_p must be in [0, 1], got {self.top_p}")

    @property
    def is_greedy(self) -> bool:
        return self.temperature == 0.0


def derive_stream(seed: int, request_id: int) -> np.random.Generator:
    """Independent per-request RNG stream from ``(seed, request_id)``.

    The pair seeds ``np.random.default_rng`` as an entropy sequence, so
    distinct requests under one config seed get decorrelated streams and
    the same pair always reproduces the same stream -- regardless of
    batch composition, admission order, or preemption/resume.
    """
    return np.random.default_rng([int(seed) & _SEED_MASK, int(request_id) & _SEED_MASK])


def filtered_probs(
    logits: np.ndarray,
    temperatures: np.ndarray,
    top_ks: np.ndarray,
    top_ps: np.ndarray,
) -> np.ndarray:
    """Per-row filtered sampling distributions for ``(B, vocab)`` logits.

    One vectorised pass: temperature scale, top-k mask (``np.partition``
    threshold + lowest-token-id tie-break), row softmax, top-p mask
    (stable descending sort + cumulative mass), renormalise.  Every row
    must have ``temperature > 0`` (greedy rows are argmax'd by the
    callers and never reach here).
    """
    logits = np.asarray(logits, dtype=np.float64)
    scaled = logits / temperatures[:, None]
    scaled = np.where(_topk_keep(scaled, top_ks), scaled, -np.inf)
    shifted = scaled - scaled.max(axis=-1, keepdims=True)
    e = np.exp(shifted)
    probs = e / e.sum(axis=-1, keepdims=True)
    probs = np.where(_topp_keep(probs, top_ps), probs, 0.0)
    return probs / probs.sum(axis=-1, keepdims=True)


def sample_rows(probs: np.ndarray, uniforms: np.ndarray) -> np.ndarray:
    """Inverse-CDF draw: one token id per row from one uniform per row.

    Equivalent to ``np.searchsorted(cdf, u, side="right")`` per row.  A
    zero-probability token never wins: its CDF entry equals its
    predecessor's, so ``u`` cannot land strictly inside its bucket.
    """
    cumulative = np.cumsum(probs, axis=-1)
    cumulative = cumulative / cumulative[:, -1:]
    return (cumulative <= uniforms[:, None]).sum(axis=-1)


def _topk_keep(scaled: np.ndarray, top_ks: np.ndarray) -> np.ndarray:
    """Boolean keep-mask retaining exactly ``top_ks[i]`` entries per row.

    The kth order statistic comes from ``np.partition`` on the batch;
    entries strictly above it always survive, and just enough entries
    *equal* to it (lowest token id first, via a cumulative count over the
    tie mask) top the kept set up to exactly ``k``.
    """
    n, vocab = scaled.shape
    ks = np.where((top_ks > 0) & (top_ks < vocab), top_ks, vocab)
    keep = np.ones(scaled.shape, dtype=bool)
    active = ks < vocab
    if not active.any():
        return keep
    kth_positions = np.unique(vocab - ks[active])
    part = np.partition(scaled, kth_positions, axis=-1)
    kth = part[np.arange(n), np.clip(vocab - ks, 0, vocab - 1)][:, None]
    above = scaled > kth
    tied = scaled == kth
    budget = ks[:, None] - above.sum(axis=-1, keepdims=True)
    keep_active = above | (tied & (np.cumsum(tied, axis=-1) <= budget))
    keep[active] = keep_active[active]
    return keep


def _topp_keep(probs: np.ndarray, top_ps: np.ndarray) -> np.ndarray:
    """Boolean keep-mask for the smallest prefix with mass >= ``top_ps[i]``.

    Stable sort on descending probability: position ``j`` (sorted order)
    is kept iff the mass *before* it is still short of ``top_p``, which
    keeps the first token unconditionally and matches the scalar
    ``searchsorted(cumulative, top_p) + 1`` cut for every boundary
    (``top_p == 1.0`` keeps all; all-mass-in-one-token keeps one).
    """
    n, vocab = probs.shape
    keep = np.ones(probs.shape, dtype=bool)
    active = top_ps > 0.0
    if not active.any():
        return keep
    order = np.argsort(-probs, axis=-1, kind="stable")
    cumulative = np.cumsum(np.take_along_axis(probs, order, axis=-1), axis=-1)
    keep_sorted = np.empty((n, vocab), dtype=bool)
    keep_sorted[:, 0] = True
    keep_sorted[:, 1:] = cumulative[:, :-1] < top_ps[:, None]
    scattered = np.empty_like(keep_sorted)
    np.put_along_axis(scattered, order, keep_sorted, axis=-1)
    keep[active] = scattered[active]
    return keep


class Sampler:
    """Stateful scalar sampler (owns its RNG so generations reproduce).

    Routes through the shared batch kernel with ``B == 1``, so it is the
    single-sequence reference for :class:`BatchedSampler`: build one via
    :meth:`for_request` to replay exactly what a request drew in a batch.
    """

    def __init__(
        self,
        config: Optional[SamplerConfig] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        self.config = config or SamplerConfig()
        self._rng = rng if rng is not None else np.random.default_rng(self.config.seed)

    @classmethod
    def for_request(cls, config: SamplerConfig, request_id: int) -> "Sampler":
        """Scalar sampler on the same stream a batched request uses."""
        return cls(config, rng=derive_stream(config.seed, request_id))

    def sample(self, logits: np.ndarray) -> int:
        """Pick the next token id from unnormalised logits."""
        logits = np.asarray(logits, dtype=np.float64)
        if logits.ndim != 1:
            raise ValueError(f"logits must be 1-D, got shape {logits.shape}")
        cfg = self.config
        if cfg.temperature == 0.0:
            return int(np.argmax(logits))
        probs = filtered_probs(
            logits[None, :],
            np.array([cfg.temperature], dtype=np.float64),
            np.array([cfg.top_k], dtype=np.int64),
            np.array([cfg.top_p], dtype=np.float64),
        )
        uniform = self._rng.random()
        return int(sample_rows(probs, np.array([uniform]))[0])


class BatchedSampler:
    """Per-request sampling over the scheduler's stacked ``(B, vocab)`` logits.

    One vectorised kernel call per decode step replaces the scheduler's
    per-sequence argmax loop (the last scalar hot loop, carried in
    ``analysis_baseline.txt`` until this PR).  Greedy rows
    (``temperature == 0``) are argmax'd in one batch reduction and never
    touch an RNG; stochastic rows share one kernel pass and draw from
    per-request streams (:func:`derive_stream`), created lazily and
    dropped on completion via :meth:`drop_stream`.  Preempted requests
    keep their stream: resume replays recorded tokens through the KV
    cache without sampling, so the stream position stays exactly one
    draw per emitted token.
    """

    def __init__(self, default: Optional[SamplerConfig] = None):
        self.default = default or SamplerConfig()
        self._streams: Dict[int, np.random.Generator] = {}

    @property
    def n_streams(self) -> int:
        return len(self._streams)

    def stream_for(self, request_id: int, config: SamplerConfig) -> np.random.Generator:
        """The request's RNG stream, created on first use."""
        stream = self._streams.get(request_id)
        if stream is None:
            stream = derive_stream(config.seed, request_id)
            self._streams[request_id] = stream
        return stream

    def drop_stream(self, request_id: int) -> None:
        """Forget a completed request's stream (re-submission restarts it)."""
        self._streams.pop(request_id, None)

    def sample(
        self,
        logits: np.ndarray,
        configs: Sequence[SamplerConfig],
        request_ids: Sequence[int],
    ) -> np.ndarray:
        """One token id per row of ``(B, vocab)`` logits.

        ``configs[i]``/``request_ids[i]`` govern row ``i``.  Bit-identical
        to :class:`Sampler` row by row: numpy's row-wise reductions,
        sorts, and partitions are independent across rows, and both paths
        draw via one ``Generator.random()`` uniform through
        :func:`sample_rows`.
        """
        logits = np.asarray(logits, dtype=np.float64)
        if logits.ndim != 2:
            raise ValueError(f"logits must be 2-D, got shape {logits.shape}")
        if len(configs) != logits.shape[0] or len(request_ids) != logits.shape[0]:
            raise ValueError(
                f"got {logits.shape[0]} logit rows, {len(configs)} configs, "
                f"{len(request_ids)} request ids"
            )
        choices = np.argmax(logits, axis=-1)
        temperatures = np.array([c.temperature for c in configs], dtype=np.float64)
        rows = np.flatnonzero(temperatures > 0.0)
        if rows.size:
            probs = filtered_probs(
                logits[rows],
                temperatures[rows],
                np.array([configs[i].top_k for i in rows], dtype=np.int64),
                np.array([configs[i].top_p for i in rows], dtype=np.float64),
            )
            uniforms = np.array(
                [self.stream_for(request_ids[i], configs[i]).random() for i in rows]
            )
            choices[rows] = sample_rows(probs, uniforms)
        return choices


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max()
    e = np.exp(shifted)
    return e / e.sum()


def _nucleus_filter(probs: np.ndarray, top_p: float) -> np.ndarray:
    """Zero out the tail outside the smallest set with mass >= top_p."""
    keep = _topp_keep(probs[None, :], np.array([top_p], dtype=np.float64))[0]
    filtered = np.where(keep, probs, 0.0)
    return filtered / filtered.sum()


def greedy(logits: np.ndarray) -> int:
    """Module-level greedy pick (what the paper's evaluation uses)."""
    return int(np.argmax(np.asarray(logits)))

"""Token sampling strategies for the decode engine.

The paper's evaluation decodes greedily (exact-match scoring); sampling
strategies are provided for completeness of the inference substrate and
for the examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class SamplerConfig:
    """Sampling hyper-parameters.

    ``temperature == 0`` means greedy argmax.  ``top_k``/``top_p`` filter
    the distribution before sampling (0 disables each filter).
    """

    temperature: float = 0.0
    top_k: int = 0
    top_p: float = 0.0
    seed: int = 0

    def __post_init__(self):
        if self.temperature < 0:
            raise ValueError(f"temperature must be >= 0, got {self.temperature}")
        if self.top_k < 0:
            raise ValueError(f"top_k must be >= 0, got {self.top_k}")
        if not 0.0 <= self.top_p <= 1.0:
            raise ValueError(f"top_p must be in [0, 1], got {self.top_p}")


class Sampler:
    """Stateful sampler (owns its RNG so generations are reproducible)."""

    def __init__(self, config: Optional[SamplerConfig] = None):
        self.config = config or SamplerConfig()
        self._rng = np.random.default_rng(self.config.seed)

    def sample(self, logits: np.ndarray) -> int:
        """Pick the next token id from unnormalised logits."""
        logits = np.asarray(logits, dtype=np.float64)
        if logits.ndim != 1:
            raise ValueError(f"logits must be 1-D, got shape {logits.shape}")
        cfg = self.config
        if cfg.temperature == 0.0:
            return int(np.argmax(logits))
        scaled = logits / cfg.temperature
        if cfg.top_k:
            kth = np.partition(scaled, -cfg.top_k)[-cfg.top_k]
            scaled = np.where(scaled >= kth, scaled, -np.inf)
        probs = _softmax(scaled)
        if cfg.top_p:
            probs = _nucleus_filter(probs, cfg.top_p)
        return int(self._rng.choice(len(probs), p=probs))


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max()
    e = np.exp(shifted)
    return e / e.sum()


def _nucleus_filter(probs: np.ndarray, top_p: float) -> np.ndarray:
    """Zero out the tail outside the smallest set with mass >= top_p."""
    order = np.argsort(probs)[::-1]
    cumulative = np.cumsum(probs[order])
    cut = int(np.searchsorted(cumulative, top_p)) + 1
    keep = order[:cut]
    filtered = np.zeros_like(probs)
    filtered[keep] = probs[keep]
    return filtered / filtered.sum()


def greedy(logits: np.ndarray) -> int:
    """Module-level greedy pick (what the paper's evaluation uses)."""
    return int(np.argmax(np.asarray(logits)))

"""Page-granular KV cache for the serving engine (vLLM-style paging).

The fixed :class:`~repro.model.kvcache.BatchedKVCache` pre-allocates a
full ``max_seq_len x n_layers x d_model`` array per slot, so a 10-token
request holds the same memory as the longest request the engine accepts
and the concurrent-sequence ceiling is ``budget / worst_case``.  This
module replaces that with a shared page arena:

* :class:`PagePool` owns the storage -- two ``(n_pages, n_layers,
  page_size, d_model)`` arenas (keys and values) plus a free-page stack.
  A *page* is ``page_size`` consecutive sequence positions of **all**
  layers; keeping the layer axis inside the page means one page claim
  covers a position range for the whole stack, so pages are claimed once
  per ``page_size`` tokens rather than once per layer.

* :class:`PagedKVSlot` is one sequence's handle: a *page table* (list of
  arena page indices, in sequence order) that grows lazily as
  ``append`` touches new positions.  Logical position ``p`` lives at
  ``arena[page_table[p // page_size], layer, p % page_size]``.

* ``view(layer, length)`` gathers the sequence's pages back into a
  contiguous ``(length, d_model)`` K/V for the attention kernel.  Three
  paths, fastest first: a sequence within a single page returns a
  zero-copy arena view; a page table that happens to be one consecutive
  arena run is rebuilt with a basic slice + reshape (no index array);
  scattered pages use a fancy-index gather.  All three produce the same
  float values, so attention output -- and therefore decode output -- is
  bit-identical to the fixed-slot cache.

Admission safety uses **worst-case reservation**: the scheduler reserves
``ceil(needed_positions / page_size)`` pages when it admits a request
(:meth:`PagedKVCache.allocate` with ``max_positions``), and lazy page
claims draw the reservation down.  ``n_available_pages`` subtracts
outstanding reservations from the free list, so a request admitted
against it can never starve mid-decode, while memory *occupancy* (what
:attr:`n_pages_in_use` reports) still tracks actual, not worst-case,
lengths.

**Prefix sharing (refcount / copy-on-write lifecycle).**  Sequences with
a common prompt prefix can map the *same* physical pages
(:meth:`PagedKVCache.fork`):

* Every claimed page carries a **refcount** -- the number of page tables
  mapping it.  ``_claim_page`` starts it at 1, ``_share_page`` increments
  it, and releasing a page decrements it; the page returns to the free
  list only when the count reaches 0, so releasing a forked slot can
  never free a page its donor still maps.

* ``fork(donor, shared_positions)`` maps the donor's **full** prefix
  pages into the new slot's table by reference and **eagerly copies the
  partial trailing page** (if ``shared_positions`` is not page-aligned).
  Shared pages are therefore always full, and decode-phase appends --
  which only ever write at ``position == length >= shared_positions`` --
  land on exclusively-owned pages, keeping shared pages immutable.

* ``append`` still guards with **copy-on-write**: a write landing on a
  page with refcount > 1 first claims a fresh page, memcpys the shared
  page's contents, drops one reference on the shared page, and retargets
  the slot's table entry.  The engine path never triggers it (see
  above); it exists so direct cache users rewriting history cannot
  corrupt a sibling sequence.

* Reservation accounting composes: a forked slot's worst case is charged
  only for its *unshared* pages (the shared full pages are already
  resident), so admission of correlated requests gets strictly cheaper.
"""

from __future__ import annotations

import numpy as np

from .config import ModelConfig

DEFAULT_PAGE_SIZE = 16


class PagePool:
    """Shared K/V page arena plus free-list and reservation accounting.

    Storage is ``(n_pages, n_layers, page_size, d_model)`` for keys and
    values.  Pages are claimed and released by :class:`PagedKVSlot`;
    user code sizes the pool (``n_pages * page_size`` is the total
    position budget shared by all sequences) and otherwise talks to
    :class:`PagedKVCache`.
    """

    def __init__(self, config: ModelConfig, n_pages: int,
                 page_size: int = DEFAULT_PAGE_SIZE):
        if n_pages < 1:
            raise ValueError(f"n_pages must be >= 1, got {n_pages}")
        if page_size < 1:
            raise ValueError(f"page_size must be >= 1, got {page_size}")
        self.config = config
        self.n_pages = n_pages
        self.page_size = page_size
        shape = (n_pages, config.n_layers, page_size, config.d_model)
        self.keys = np.zeros(shape, dtype=np.float32)
        self.values = np.zeros(shape, dtype=np.float32)
        self._free = list(range(n_pages - 1, -1, -1))   # pop() -> lowest index
        self._free_set = set(range(n_pages))
        self._reserved = 0      # worst-case pages promised but not yet claimed
        self._refcount = [0] * n_pages   # page tables mapping each page
        self._n_shared = 0      # pages with refcount > 1 (O(1) telemetry)

    # -- accounting --------------------------------------------------------

    @property
    def n_free_pages(self) -> int:
        """Physically unclaimed pages (ignores reservations)."""
        return len(self._free)

    @property
    def n_available_pages(self) -> int:
        """Pages neither claimed nor reserved -- what admission can promise."""
        return len(self._free) - self._reserved

    @property
    def n_pages_in_use(self) -> int:
        return self.n_pages - len(self._free)

    @property
    def n_shared_pages(self) -> int:
        """Pages currently mapped by more than one page table.

        Maintained as a counter on the 1 <-> 2 refcount transitions:
        the scheduler samples this every decode tick, so it must not
        scan the arena.
        """
        return self._n_shared

    def refcount(self, index: int) -> int:
        """Number of page tables mapping page ``index`` (0 = free)."""
        return self._refcount[index]

    @property
    def arena_bytes(self) -> int:
        """Resident bytes of both arenas (the paged engine's KV footprint)."""
        return self.keys.nbytes + self.values.nbytes

    def pages_for(self, n_positions: int) -> int:
        """Pages needed to hold ``n_positions`` sequence positions."""
        if n_positions < 0:
            raise ValueError(f"n_positions must be >= 0, got {n_positions}")
        return -(-n_positions // self.page_size)

    def can_reserve(self, n_positions: int) -> bool:
        return self.pages_for(n_positions) <= self.n_available_pages

    # -- page claims (called by PagedKVSlot) -------------------------------

    def _claim_page(self, reserved: bool) -> int:
        """Pop a free page; unreserved claims cannot eat into reservations."""
        if not self._free:
            raise RuntimeError(
                f"page pool exhausted ({self.n_pages} pages of "
                f"{self.page_size} positions)"
            )
        if not reserved and len(self._free) <= self._reserved:
            raise RuntimeError(
                "all free pages are reserved for admitted sequences"
            )
        index = self._free.pop()
        self._free_set.discard(index)
        self._refcount[index] = 1
        if reserved:
            self._reserved -= 1
        return index

    def _share_page(self, index: int) -> None:
        """Add one page-table reference to an already-claimed page."""
        if self._refcount[index] < 1:
            raise ValueError(f"cannot share free page {index}")
        if self._refcount[index] == 1:
            self._n_shared += 1
        self._refcount[index] += 1

    def _release_pages(self, pages) -> None:
        """Drop one reference per page; free those that reach zero."""
        for index in pages:
            if self._refcount[index] < 1 or index in self._free_set:
                raise ValueError(f"page {index} released twice")
            if self._refcount[index] == 2:
                self._n_shared -= 1
            self._refcount[index] -= 1
            if self._refcount[index] == 0:
                self._free.append(index)
                self._free_set.add(index)

    def _reserve(self, n_pages: int) -> None:
        if n_pages > self.n_available_pages:
            raise RuntimeError(
                f"cannot reserve {n_pages} pages; only "
                f"{self.n_available_pages} available"
            )
        self._reserved += n_pages

    def _cancel_reservation(self, n_pages: int) -> None:
        self._reserved -= n_pages


class PagedKVSlot:
    """One sequence's K/V storage: a page table over a :class:`PagePool`.

    Exposes the same ``append`` / ``view`` / ``advance`` / ``reset``
    interface as :class:`~repro.model.kvcache.KVSlot`, so
    :func:`repro.model.inference.attend_single` and the batched engine
    run unchanged on either cache.  Pages are claimed lazily: the table
    grows the first time ``append`` touches a position in a new page.
    """

    def __init__(self, pool: PagePool, index: int, max_seq_len: int):
        self._pool = pool
        self.index = index
        self.max_seq_len = max_seq_len
        self.page_table: list = []
        self.length = 0
        self._reservation_left = 0
        # Bumped whenever an *existing* page-table entry can change
        # (reset, copy-on-write retarget).  Pure appends leave it alone,
        # which is what lets batched-gather plans extend incrementally
        # instead of re-reading the table every decode step.
        self.generation = 0

    @property
    def n_pages(self) -> int:
        return len(self.page_table)

    def reserve(self, n_positions: int) -> None:
        """Pre-commit the worst-case page count for this sequence.

        Called at admission; lazy claims draw the reservation down, and
        :meth:`reset` returns whatever was never used.
        """
        needed = self._pool.pages_for(min(n_positions, self.max_seq_len))
        extra = needed - self.n_pages - self._reservation_left
        if extra > 0:
            self._pool._reserve(extra)
            self._reservation_left += extra

    def _ensure_page(self, page_index: int) -> None:
        while len(self.page_table) <= page_index:
            reserved = self._reservation_left > 0
            self.page_table.append(self._pool._claim_page(reserved))
            if reserved:
                self._reservation_left -= 1

    def _materialise_page(self, table_index: int) -> int:
        """Copy-on-write: replace a shared page with an exclusive copy.

        Claims an *unreserved* page (COW demand is beyond the slot's
        worst case, which charges only unshared pages; drawing the
        reservation down here would starve this slot's own future
        appends), memcpys the shared page, and drops one reference on
        it -- the other mappers keep their data untouched.
        """
        pool = self._pool
        old = self.page_table[table_index]
        new = pool._claim_page(reserved=False)
        pool.keys[new] = pool.keys[old]
        pool.values[new] = pool.values[old]
        pool._release_pages([old])
        self.page_table[table_index] = new
        self.generation += 1
        return new

    def append(self, layer: int, k: np.ndarray, v: np.ndarray,
               position: int) -> None:
        if position >= self.max_seq_len:
            raise ValueError(
                f"position {position} exceeds slot capacity {self.max_seq_len}"
            )
        page_size = self._pool.page_size
        table_index = position // page_size
        self._ensure_page(table_index)
        page = self.page_table[table_index]
        if self._pool._refcount[page] > 1:
            page = self._materialise_page(table_index)
        offset = position % page_size
        self._pool.keys[page, layer, offset] = k
        self._pool.values[page, layer, offset] = v

    def view(self, layer: int, length: int) -> tuple[np.ndarray, np.ndarray]:
        """K/V for the first ``length`` positions of ``layer``.

        Zero-copy when the positions fit one page; basic-slice rebuild
        when the page table is one consecutive arena run; fancy-index
        gather otherwise.
        """
        pool = self._pool
        page_size = pool.page_size
        n_pages = pool.pages_for(length)
        if n_pages > len(self.page_table):
            raise ValueError(
                f"view of {length} positions but only "
                f"{len(self.page_table)} pages appended"
            )
        if n_pages <= 1:
            page = self.page_table[0] if self.page_table else 0
            return (pool.keys[page, layer, :length],
                    pool.values[page, layer, :length])
        pages = self.page_table[:n_pages]
        first, last = pages[0], pages[-1]
        d_model = pool.config.d_model
        if last - first == n_pages - 1 and pages == list(range(first, last + 1)):
            keys = pool.keys[first:last + 1, layer]
            values = pool.values[first:last + 1, layer]
        else:
            keys = pool.keys[pages, layer]
            values = pool.values[pages, layer]
        return (keys.reshape(n_pages * page_size, d_model)[:length],
                values.reshape(n_pages * page_size, d_model)[:length])

    def advance(self) -> None:
        self.length += 1
        if self.length > self.max_seq_len:
            raise ValueError("KV slot overflow")

    def reset(self) -> None:
        """Return every page (and any unused reservation) to the pool."""
        if self.page_table:
            self._pool._release_pages(self.page_table)
            self.page_table = []
        if self._reservation_left:
            self._pool._cancel_reservation(self._reservation_left)
            self._reservation_left = 0
        self.length = 0
        self.generation += 1


class _SlotGatherPlan:
    """Cached page-index array for one slot, extended append-only.

    A decode step only ever *appends* positions, so between steps a
    slot's page table changes by at most one trailing entry; the plan
    keeps a numpy copy of the table and syncs just the new tail.  The
    slot's :attr:`~PagedKVSlot.generation` counter guards the cases
    where existing entries *can* change (reset, copy-on-write): a bump
    rebuilds the plan from scratch.
    """

    __slots__ = ("generation", "n_pages", "pages")

    def __init__(self):
        self.generation = -1
        self.n_pages = 0
        self.pages = np.empty(4, dtype=np.intp)

    def sync(self, slot: "PagedKVSlot", needed: int) -> np.ndarray:
        """The slot's first ``needed`` page indices as an array view."""
        if needed > len(slot.page_table):
            raise ValueError(
                f"gather of {needed} pages but only "
                f"{len(slot.page_table)} pages appended"
            )
        if self.generation != slot.generation:
            self.generation = slot.generation
            self.n_pages = 0
        if needed > self.n_pages:
            if needed > len(self.pages):
                grown = np.empty(max(needed, 2 * len(self.pages)),
                                 dtype=np.intp)
                grown[:self.n_pages] = self.pages[:self.n_pages]
                self.pages = grown
            self.pages[self.n_pages:needed] = \
                slot.page_table[self.n_pages:needed]
            self.n_pages = needed
        return self.pages[:needed]


class PagedBatchView:
    """Padded batched K/V gather over a :class:`PagePool`.

    Built from per-slot gather plans: a ``(B, p_max)`` page-index
    matrix, rows padded with page 0 (padded positions land at or past
    each row's length, so callers' length masks hide them -- whatever
    data page 0 holds never contributes).  ``gather(layer)`` turns it
    into ``(B, l_max, d_model)`` K/V with **one** arena index per layer
    instead of B page-table walks.

    Reuses :meth:`PagedKVSlot.view`'s contiguous-run detection at batch
    granularity: when the padded matrix happens to enumerate one
    consecutive arena run row-major (common early in a drain, when
    equal-length sequences claimed consecutive pages), the gather uses
    a basic slice instead of a fancy index.  Both paths copy -- the
    layer axis sits between the page and position axes, so the reshape
    must materialise -- but the slice path skips the index-array
    machinery (~10% faster at decode shapes), same as the run path of
    the single-sequence ``view``.
    """

    def __init__(self, pool: PagePool, rows, lengths):
        self._pool = pool
        self.lengths = np.asarray(lengths)
        self.l_max = int(self.lengths.max())
        p_max = max(len(row) for row in rows)
        mat = np.zeros((len(rows), p_max), dtype=np.intp)
        for i, row in enumerate(rows):
            mat[i, :len(row)] = row
        self._mat = mat
        flat = mat.ravel()
        self._contig_start = None
        if flat[-1] - flat[0] == flat.size - 1 and \
                np.array_equal(flat, np.arange(flat[0], flat[-1] + 1)):
            self._contig_start = int(flat[0])

    def gather(self, layer: int) -> tuple[np.ndarray, np.ndarray]:
        pool = self._pool
        B, p_max = self._mat.shape
        width = p_max * pool.page_size
        d_model = pool.config.d_model
        if self._contig_start is not None:
            start, stop = self._contig_start, self._contig_start + B * p_max
            keys = pool.keys[start:stop, layer]
            values = pool.values[start:stop, layer]
        else:
            keys = pool.keys[self._mat, layer]      # (B, p_max, ps, d)
            values = pool.values[self._mat, layer]
        return (keys.reshape(B, width, d_model)[:, :self.l_max],
                values.reshape(B, width, d_model)[:, :self.l_max])


class PagedKVCache:
    """Drop-in paged replacement for :class:`~repro.model.kvcache.BatchedKVCache`.

    Same ``allocate`` / ``release`` / ``n_free`` surface over a fixed set
    of slot handles, but storage comes from a shared :class:`PagePool`
    sized by ``n_pages`` (default: the fixed cache's worst case,
    ``n_slots * ceil(max_seq_len / page_size)``).  Pass a smaller
    ``n_pages`` to run under a memory budget: short sequences then leave
    pages for extra concurrent sequences instead of padding out unused
    slot tails.
    """

    def __init__(self, config: ModelConfig, n_slots: int,
                 max_seq_len: int = 0, page_size: int = DEFAULT_PAGE_SIZE,
                 n_pages: int = 0):
        if n_slots < 1:
            raise ValueError(f"n_slots must be >= 1, got {n_slots}")
        self.config = config
        self.n_slots = n_slots
        self.max_seq_len = max_seq_len or config.max_seq_len
        worst_case = -(-self.max_seq_len // page_size)
        self.pool = PagePool(config, n_pages or n_slots * worst_case,
                             page_size)
        self._slots = [PagedKVSlot(self.pool, i, self.max_seq_len)
                       for i in range(n_slots)]
        self._free = list(range(n_slots - 1, -1, -1))   # pop() -> lowest index
        self._free_set = set(range(n_slots))
        self._gather_plans = [_SlotGatherPlan() for _ in range(n_slots)]

    # -- pool passthroughs -------------------------------------------------

    @property
    def page_size(self) -> int:
        return self.pool.page_size

    @property
    def n_pages(self) -> int:
        return self.pool.n_pages

    @property
    def n_pages_in_use(self) -> int:
        return self.pool.n_pages_in_use

    @property
    def n_free_pages(self) -> int:
        return self.pool.n_free_pages

    @property
    def n_available_pages(self) -> int:
        return self.pool.n_available_pages

    @property
    def n_shared_pages(self) -> int:
        return self.pool.n_shared_pages

    @property
    def kv_bytes(self) -> int:
        return self.pool.arena_bytes

    def pages_for(self, n_positions: int) -> int:
        return self.pool.pages_for(n_positions)

    @property
    def max_request_positions(self) -> int:
        """Longest sequence any single request could ever store."""
        return min(self.max_seq_len, self.pool.n_pages * self.page_size)

    def can_admit(self, n_positions: int) -> bool:
        """Whether a worst-case ``n_positions`` request fits right now."""
        return bool(self._free) and self.pool.can_reserve(n_positions)

    def view_batch(self, slots, lengths) -> PagedBatchView:
        """Padded ``(B, l_max, d_model)`` K/V gather for a decode batch.

        The per-slot page-index arrays come from cached
        :class:`_SlotGatherPlan` objects, so between decode steps only
        newly-appended pages are read from the python page tables; the
        returned view performs one arena gather per layer.
        """
        rows = [
            self._gather_plans[slot.index].sync(
                slot, self.pool.pages_for(int(length))
            )
            for slot, length in zip(slots, lengths)
        ]
        return PagedBatchView(self.pool, rows, lengths)

    # -- slot management ---------------------------------------------------

    @property
    def n_free(self) -> int:
        return len(self._free)

    def allocate(self, max_positions: int = 0) -> PagedKVSlot:
        """Claim a slot, reserving ``max_positions`` worth of pages.

        ``max_positions=0`` skips reservation: pages are then claimed
        purely lazily, which is fine for direct engine use but forfeits
        the no-mid-decode-starvation guarantee the scheduler relies on.
        """
        if not self._free:
            raise RuntimeError("no free KV slots")
        if max_positions and not self.pool.can_reserve(max_positions):
            raise RuntimeError(
                f"cannot admit a {max_positions}-position sequence: "
                f"{self.pool.n_available_pages} pages available of "
                f"{self.pool.n_pages}"
            )
        index = self._free.pop()
        self._free_set.discard(index)
        slot = self._slots[index]
        slot.reset()
        if max_positions:
            slot.reserve(max_positions)
        return slot

    def release(self, slot: PagedKVSlot) -> None:
        """Return a slot, its pages, and any unused reservation."""
        if slot._pool is not self.pool:
            raise ValueError("slot belongs to a different cache")
        if slot.index in self._free_set:
            raise ValueError(f"slot {slot.index} released twice")
        slot.reset()
        self._free.append(slot.index)
        self._free_set.add(slot.index)

    # -- prefix sharing ----------------------------------------------------

    def fork_page_demand(self, shared_positions: int,
                         max_positions: int) -> int:
        """Pages a fork must be able to claim or reserve right now.

        The donor's full prefix pages come free (they are shared by
        reference); everything else -- the eager copy of a partial
        trailing page plus the unshared worst case -- must be backed by
        available pages.
        """
        full_shared = shared_positions // self.page_size
        total = min(max_positions or shared_positions, self.max_seq_len)
        return max(self.pool.pages_for(total) - full_shared, 0)

    def can_fork(self, donor: PagedKVSlot, shared_positions: int,
                 max_positions: int = 0) -> bool:
        """Whether :meth:`fork` with these arguments would succeed now."""
        if not self._free or donor.index in self._free_set:
            return False
        if not 0 < shared_positions <= donor.length:
            return False
        if max_positions and max_positions < shared_positions:
            return False
        demand = self.fork_page_demand(shared_positions, max_positions)
        return demand <= self.pool.n_available_pages

    def fork(self, donor: PagedKVSlot, shared_positions: int,
             max_positions: int = 0) -> PagedKVSlot:
        """Map a new slot onto the donor's first ``shared_positions``.

        Full pages of the shared prefix are mapped **by reference**
        (refcount bumped); a partial trailing page is **copied eagerly**
        so every shared page stays full and immutable.  The new slot
        starts at ``length == shared_positions`` -- its K/V for those
        positions is the donor's, bit for bit -- and ``max_positions``
        reserves only the *unshared* worst case (shared full pages are
        already resident).

        Raises rather than partially forking when the donor is stale,
        the geometry is inconsistent, or the pool cannot back the
        unshared demand.
        """
        if donor._pool is not self.pool:
            raise ValueError("donor slot belongs to a different cache")
        if donor.index in self._free_set:
            raise ValueError(f"donor slot {donor.index} is not allocated")
        if not 0 < shared_positions <= donor.length:
            raise ValueError(
                f"shared_positions must be in [1, {donor.length}] "
                f"(donor length), got {shared_positions}"
            )
        if max_positions and max_positions < shared_positions:
            raise ValueError(
                f"max_positions {max_positions} is below the shared "
                f"prefix length {shared_positions}"
            )
        if not self._free:
            raise RuntimeError("no free KV slots")
        full_shared, partial = divmod(shared_positions, self.page_size)
        demand = self.fork_page_demand(shared_positions, max_positions)
        if demand > self.pool.n_available_pages:
            raise RuntimeError(
                f"cannot fork a {shared_positions}-position prefix: needs "
                f"{demand} unshared pages, {self.pool.n_available_pages} "
                f"available"
            )
        index = self._free.pop()
        self._free_set.discard(index)
        slot = self._slots[index]
        slot.reset()
        for page in donor.page_table[:full_shared]:
            self.pool._share_page(page)
            slot.page_table.append(page)
        if max_positions:
            slot.reserve(max_positions)   # charges only beyond the table
        if partial:
            slot._ensure_page(full_shared)
            new = slot.page_table[full_shared]
            old = donor.page_table[full_shared]
            self.pool.keys[new] = self.pool.keys[old]
            self.pool.values[new] = self.pool.values[old]
        slot.length = shared_positions
        return slot

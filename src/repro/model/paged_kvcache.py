"""Page-granular KV cache for the serving engine (vLLM-style paging).

The fixed :class:`~repro.model.kvcache.BatchedKVCache` pre-allocates a
full ``max_seq_len x n_layers x d_model`` array per slot, so a 10-token
request holds the same memory as the longest request the engine accepts
and the concurrent-sequence ceiling is ``budget / worst_case``.  This
module replaces that with a shared page arena:

* :class:`PagePool` owns the storage -- two ``(n_pages, n_layers,
  page_size, d_model)`` arenas (keys and values) plus a free-page stack.
  A *page* is ``page_size`` consecutive sequence positions of **all**
  layers; keeping the layer axis inside the page means one page claim
  covers a position range for the whole stack, so pages are claimed once
  per ``page_size`` tokens rather than once per layer.

* :class:`PagedKVSlot` is one sequence's handle: a *page table* (list of
  arena page indices, in sequence order) that grows lazily as
  ``append`` touches new positions.  Logical position ``p`` lives at
  ``arena[page_table[p // page_size], layer, p % page_size]``.

* ``view(layer, length)`` gathers the sequence's pages back into a
  contiguous ``(length, d_model)`` K/V for the attention kernel.  Three
  paths, fastest first: a sequence within a single page returns a
  zero-copy arena view; a page table that happens to be one consecutive
  arena run is rebuilt with a basic slice + reshape (no index array);
  scattered pages use a fancy-index gather.  All three produce the same
  float values, so attention output -- and therefore decode output -- is
  bit-identical to the fixed-slot cache.

Admission safety uses **worst-case reservation**: the scheduler reserves
``ceil(needed_positions / page_size)`` pages when it admits a request
(:meth:`PagedKVCache.allocate` with ``max_positions``), and lazy page
claims draw the reservation down.  ``n_available_pages`` subtracts
outstanding reservations from the free list, so a request admitted
against it can never starve mid-decode, while memory *occupancy* (what
:attr:`n_pages_in_use` reports) still tracks actual, not worst-case,
lengths.

**Prefix sharing (refcount / copy-on-write lifecycle).**  Sequences with
a common prompt prefix can map the *same* physical pages
(:meth:`PagedKVCache.fork`):

* Every claimed page carries a **refcount** -- the number of page tables
  mapping it.  ``_claim_page`` starts it at 1, ``_share_page`` increments
  it, and releasing a page decrements it; the page returns to the free
  list only when the count reaches 0, so releasing a forked slot can
  never free a page its donor still maps.

* ``fork(donor, shared_positions)`` maps the donor's **full** prefix
  pages into the new slot's table by reference and **eagerly copies the
  partial trailing page** (if ``shared_positions`` is not page-aligned).
  Shared pages are therefore always full, and decode-phase appends --
  which only ever write at ``position == length >= shared_positions`` --
  land on exclusively-owned pages, keeping shared pages immutable.

* ``append`` still guards with **copy-on-write**: a write landing on a
  page with refcount > 1 first claims a fresh page, memcpys the shared
  page's contents, drops one reference on the shared page, and retargets
  the slot's table entry.  The engine path never triggers it (see
  above); it exists so direct cache users rewriting history cannot
  corrupt a sibling sequence.

* Reservation accounting composes: a forked slot's worst case is charged
  only for its *unshared* pages (the shared full pages are already
  resident), so admission of correlated requests gets strictly cheaper.

**Cross-request prefix cache (LRU page retention).**  Forking only helps
while the donor is *resident*; bursty traffic whose same-prefix requests
never overlap in time would re-prefill the shared prefix every burst.
With ``cache_pages > 0`` a :class:`PrefixCache` keeps retired prompt
prefixes alive:

* When a sequence is released **with its prompt**
  (:meth:`PagedKVCache.release` with ``prompt_ids``), its page-aligned
  prompt-prefix pages whose refcount would drop to 0 are *parked* --
  refcount 0, off the free list, indexed by the same chained per-page
  hash :class:`repro.serving.engine.PrefixIndex` uses
  (:func:`chained_prefix_keys`).  Causal attention makes a full page's
  K/V a pure function of the tokens up to its end, so a parked page is
  valid for *any* future prompt sharing those tokens.

* A later request *revives* the longest cached chain of its prompt's
  aligned prefix pages (:meth:`PagedKVCache.revive`): the pages are
  pinned back into the new slot's table (refcount 0 -> 1) and only the
  prompt suffix needs prefill -- bit-for-bit the K/V the original
  prefill produced, so revived decode matches cold prefill exactly.

* Cached pages are **reclaimable**: they count toward
  :attr:`PagePool.n_available_pages`, and a claim that finds the free
  list empty evicts LRU cache entries on demand -- so admission
  reservations still hold, and ``cache_pages = 0`` (the default) is
  bit-identical to no cache at all.  The pool-level invariant becomes
  ``free + in_use + cached == n_pages``.

Every path preserves the serving engine's equivalence guarantees: decode
at batch 1 over this cache is **bit-identical** to the fixed-slot cache
and to ``build_engine``; batch > 1 is **token-identical** (see
``docs/serving.md`` for the architecture walkthrough and the full knob /
telemetry reference).
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from .config import ModelConfig

DEFAULT_PAGE_SIZE = 16


def chained_prefix_keys(prompt: tuple, page_size: int) -> list:
    """Chained hash keys of every full page-aligned prefix of ``prompt``.

    ``keys[i]`` covers ``prompt[:(i + 1) * page_size]`` and is computed
    as ``hash((keys[i - 1], page_tokens))`` -- vLLM block-hash style, so
    all of a prompt's keys come from one O(len) pass.  This is the
    shared key scheme of the resident
    :class:`repro.serving.engine.PrefixIndex` and the retired-page
    :class:`PrefixCache`: a prefix parked by one is found by the other's
    walk.  Keys can collide, so users must verify token equality on a
    hit.
    """
    keys = []
    key = 0
    for start in range(0, len(prompt) - page_size + 1, page_size):
        key = hash((key, prompt[start:start + page_size]))
        keys.append(key)
    return keys


class PagePool:
    """Shared K/V page arena plus free-list and reservation accounting.

    Storage is ``(n_pages, n_layers, page_size, d_model)`` for keys and
    values.  Pages are claimed and released by :class:`PagedKVSlot`;
    user code sizes the pool (``n_pages * page_size`` is the total
    position budget shared by all sequences) and otherwise talks to
    :class:`PagedKVCache`.
    """

    def __init__(self, config: ModelConfig, n_pages: int,
                 page_size: int = DEFAULT_PAGE_SIZE):
        if n_pages < 1:
            raise ValueError(f"n_pages must be >= 1, got {n_pages}")
        if page_size < 1:
            raise ValueError(f"page_size must be >= 1, got {page_size}")
        self.config = config
        self.n_pages = n_pages
        self.page_size = page_size
        shape = (n_pages, config.n_layers, page_size, config.d_model)
        self.keys = np.zeros(shape, dtype=np.float32)
        self.values = np.zeros(shape, dtype=np.float32)
        self._free = list(range(n_pages - 1, -1, -1))   # pop() -> lowest index
        self._free_set = set(range(n_pages))
        self._reserved = 0      # worst-case pages promised but not yet claimed
        self._refcount = [0] * n_pages   # page tables mapping each page
        self._n_shared = 0      # pages with refcount > 1 (O(1) telemetry)
        self._cached_set = set()   # refcount-0 pages parked in a PrefixCache
        self.prefix_cache = None   # set by PagedKVCache when cache_pages > 0

    # -- accounting --------------------------------------------------------

    @property
    def n_free_pages(self) -> int:
        """Physically unclaimed pages (ignores reservations and cache)."""
        return len(self._free)

    @property
    def n_cached_pages(self) -> int:
        """Refcount-0 pages retained by the prefix cache (reclaimable)."""
        return len(self._cached_set)

    @property
    def n_available_pages(self) -> int:
        """Pages neither claimed nor reserved -- what admission can promise.

        Cached pages count: they hold no live reference and the
        allocator evicts them on demand, so a reservation backed by a
        cached page is exactly as safe as one backed by a free page.
        """
        return len(self._free) + len(self._cached_set) - self._reserved

    @property
    def n_pages_in_use(self) -> int:
        """Pages mapped by at least one live page table.

        Invariant: ``n_free_pages + n_pages_in_use + n_cached_pages ==
        n_pages`` -- every page is exactly one of free, pinned, cached.
        """
        return self.n_pages - len(self._free) - len(self._cached_set)

    @property
    def n_shared_pages(self) -> int:
        """Pages currently mapped by more than one page table.

        Maintained as a counter on the 1 <-> 2 refcount transitions:
        the scheduler samples this every decode tick, so it must not
        scan the arena.
        """
        return self._n_shared

    def refcount(self, index: int) -> int:
        """Number of page tables mapping page ``index`` (0 = free)."""
        return self._refcount[index]

    @property
    def arena_bytes(self) -> int:
        """Resident bytes of both arenas (the paged engine's KV footprint)."""
        return self.keys.nbytes + self.values.nbytes

    def pages_for(self, n_positions: int) -> int:
        """Pages needed to hold ``n_positions`` sequence positions."""
        if n_positions < 0:
            raise ValueError(f"n_positions must be >= 0, got {n_positions}")
        return -(-n_positions // self.page_size)

    def can_reserve(self, n_positions: int) -> bool:
        return self.pages_for(n_positions) <= self.n_available_pages

    # -- page claims (called by PagedKVSlot) -------------------------------

    def _claim_page(self, reserved: bool) -> int:
        """Pop a free page; unreserved claims cannot eat into reservations.

        Cached (prefix-retained) pages are reclaimable: when the free
        list is empty but cached pages exist, the LRU cache entry is
        evicted to back the claim -- which is why cached pages may count
        toward :attr:`n_available_pages` without weakening the
        no-mid-decode-starvation guarantee.
        """
        claimable = len(self._free) + len(self._cached_set)
        if claimable == 0:
            raise RuntimeError(
                f"page pool exhausted ({self.n_pages} pages of "
                f"{self.page_size} positions)"
            )
        if not reserved and claimable <= self._reserved:
            raise RuntimeError(
                "all free pages are reserved for admitted sequences"
            )
        if not self._free:
            self.prefix_cache.evict_lru()
        index = self._free.pop()
        self._free_set.discard(index)
        self._refcount[index] = 1
        if reserved:
            self._reserved -= 1
        return index

    # -- cached-page transitions (called by PrefixCache) --------------------

    def _park_page(self, index: int) -> None:
        """Sole-reference page -> cached: off the free list, refcount 0."""
        if self._refcount[index] != 1:
            raise ValueError(
                f"cannot park page {index} with refcount "
                f"{self._refcount[index]} (must be the sole reference)"
            )
        self._refcount[index] = 0
        self._cached_set.add(index)

    def _evict_page(self, index: int) -> None:
        """Cached page -> free list (its K/V is forgotten)."""
        if index not in self._cached_set:
            raise ValueError(f"page {index} is not cached")
        self._cached_set.discard(index)
        self._free.append(index)
        self._free_set.add(index)

    def _pin_page(self, index: int) -> None:
        """Cached page -> claimed (refcount 1) with its K/V intact."""
        if index not in self._cached_set:
            raise ValueError(f"page {index} is not cached")
        self._cached_set.discard(index)
        self._refcount[index] = 1

    def _share_page(self, index: int) -> None:
        """Add one page-table reference to an already-claimed page."""
        if self._refcount[index] < 1:
            raise ValueError(f"cannot share free page {index}")
        if self._refcount[index] == 1:
            self._n_shared += 1
        self._refcount[index] += 1

    def _release_pages(self, pages) -> None:
        """Drop one reference per page; free those that reach zero."""
        for index in pages:
            if self._refcount[index] < 1 or index in self._free_set:
                raise ValueError(f"page {index} released twice")
            if self._refcount[index] == 2:
                self._n_shared -= 1
            self._refcount[index] -= 1
            if self._refcount[index] == 0:
                self._free.append(index)
                self._free_set.add(index)

    def _reserve(self, n_pages: int) -> None:
        if n_pages > self.n_available_pages:
            raise RuntimeError(
                f"cannot reserve {n_pages} pages; only "
                f"{self.n_available_pages} available"
            )
        self._reserved += n_pages

    def _cancel_reservation(self, n_pages: int) -> None:
        self._reserved -= n_pages


class PrefixCache:
    """LRU index of retired prompt-prefix pages, keyed by chained hash.

    One entry per cached **page**: key ``i`` covers the page-aligned
    prefix ``prompt[:(i + 1) * page_size]`` (:func:`chained_prefix_keys`,
    the same scheme the resident ``PrefixIndex`` uses), and the entry
    stores that full prefix tuple so hash collisions can never revive
    the wrong K/V.  Per-page granularity is what makes the few-shot
    workload work: a retired prompt's trailing pages mix shared-prefix
    and request-specific tokens, and a later prompt matches exactly the
    pages whose token history it shares -- the lookup walk stops at the
    first divergence.

    Lifecycle (all state transitions go through the pool, which owns the
    ``free + in_use + cached == n_pages`` invariant):

    * :meth:`park` -- at release, each full prompt-prefix page whose
      refcount would drop to 0 is retained instead of freed.  Pages
      still mapped by a resident sharer are released normally (the
      resident is itself discoverable as a fork donor, and parking only
      sole-reference pages keeps cached pages strictly refcount 0).
    * :meth:`lookup` / :meth:`take` -- admission revives the longest
      cached chain: entries are removed and their pages pinned back to
      refcount 1.  Retirement re-parks them, so a hot prefix cycles
      between pinned and cached without ever being re-prefilled.
    * :meth:`evict_lru` -- drops the least-recently-parked entry, either
      to honour the ``cache_pages`` budget or on demand when the pool's
      free list runs dry.  Runs of one retirement are parked deepest
      page first, so eviction sheds the request-specific tail of a
      prefix family before the widely-shared head.
    """

    def __init__(self, pool: PagePool, cache_pages: int):
        if cache_pages < 1:
            raise ValueError(f"cache_pages must be >= 1, got {cache_pages}")
        self.pool = pool
        self.cache_pages = cache_pages
        self._entries: OrderedDict = OrderedDict()  # key -> (page, prefix)
        self._key_by_page: dict = {}                # page -> key
        self.hits = 0            # lookups that matched >= 1 page
        self.misses = 0          # lookups that matched nothing
        self.evictions = 0       # pages dropped (budget or demand)
        self.pages_parked = 0    # pages ever retained at release
        self.pages_revived = 0   # pages ever pinned back into a slot

    def __len__(self) -> int:
        return len(self._entries)

    # -- park (release path) -----------------------------------------------

    def park(self, slot: "PagedKVSlot", prompt_ids) -> int:
        """Retain ``slot``'s full prompt-prefix pages; returns how many.

        Every offered page is consumed -- parked, or released to the
        free list when ineligible (still shared, duplicate key, or
        budget-evicted) -- and removed from the slot's table, so the
        caller's ``reset`` only returns the remaining tail.  Offered
        deepest-first: under a tight budget the shallow pages every
        prefix sibling shares displace this request's specific tail.

        Only a **prefix-closed** run is offered: :meth:`lookup` walks
        from page 0 and stops at the first missing entry, so a page
        that can be neither parked (a resident sharer still maps it --
        that sharer is the better, fork-able source anyway) nor is
        already cached ends the run, and everything past it is released
        outright rather than parked unreachable.
        """
        prompt = tuple(int(t) for t in prompt_ids)
        # Cap by the slot's *advanced* length, not just its table: a
        # preempted sequence can retire mid-prefill with a trailing page
        # claimed but only partially written, and a partial page parked
        # under a full-page key would revive garbage positions.
        n_full = min(len(prompt) // self.pool.page_size,
                     len(slot.page_table),
                     slot.length // self.pool.page_size)
        if n_full == 0:
            return 0
        pool = self.pool
        page_size = pool.page_size
        keys = chained_prefix_keys(prompt[:n_full * page_size], page_size)
        n_run = 0
        for i in range(n_full):
            if pool._refcount[slot.page_table[i]] == 1 or \
                    keys[i] in self._entries:
                n_run = i + 1
            else:
                break
        parked = 0
        for i in reversed(range(n_run)):
            parked += self._offer(
                keys[i], prompt[:(i + 1) * page_size], slot.page_table[i]
            )
        if n_run < n_full:
            pool._release_pages(slot.page_table[n_run:n_full])
        del slot.page_table[:n_full]
        return parked

    def _offer(self, key, prefix: tuple, page: int) -> bool:
        """Drop one reference on ``page``; park it if it reaches zero."""
        pool = self.pool
        if key in self._entries:
            # Already cached from another retirement: keep that entry,
            # but refresh its recency -- offers run deepest-first, so
            # the touch keeps a chain's head at least as recent as the
            # deeper entries just parked behind it, and LRU eviction
            # breaks chains tail-first instead of stranding a tail
            # behind an aged-out head.
            self._entries.move_to_end(key)
            pool._release_pages([page])
            return False
        if pool._refcount[page] > 1:
            # Still mapped by a resident sharer -- which the PrefixIndex
            # already exposes as the better, fork-able source.
            pool._release_pages([page])
            return False
        while len(self._entries) >= self.cache_pages:
            self.evict_lru()
        pool._park_page(page)
        self._entries[key] = (page, prefix)
        self._key_by_page[page] = key
        self.pages_parked += 1
        return True

    # -- revive (admission path) -------------------------------------------

    def lookup(self, prompt_ids) -> list:
        """Cached pages of the longest aligned prefix of ``prompt_ids``.

        Walks pages 0, 1, ... while the chained key hits and the stored
        prefix tuple matches (collision guard); stops one page short of
        covering the whole prompt so at least one token is left to
        prefill for last-position logits.  Returns the page-index chain
        (possibly empty); pass it unmodified to
        :meth:`PagedKVCache.revive`.
        """
        prompt = tuple(int(t) for t in prompt_ids)
        page_size = self.pool.page_size
        cap = (len(prompt) - 1) // page_size
        pages = []
        key = 0
        for i in range(cap):
            key = hash((key, prompt[i * page_size:(i + 1) * page_size]))
            entry = self._entries.get(key)
            if entry is None or entry[1] != prompt[:(i + 1) * page_size]:
                break
            pages.append(entry[0])
        if pages:
            self.hits += 1
        else:
            self.misses += 1
        return pages

    def take(self, pages) -> None:
        """Remove ``pages`` from the cache and pin them (refcount 1)."""
        for page in pages:
            key = self._key_by_page.pop(page)
            del self._entries[key]
            self.pool._pin_page(page)
            self.pages_revived += 1

    # -- eviction ------------------------------------------------------------

    def evict_lru(self) -> int:
        """Free the least-recently-parked page; returns its index."""
        if not self._entries:
            raise RuntimeError("prefix cache is empty; nothing to evict")
        key, (page, _) = self._entries.popitem(last=False)
        del self._key_by_page[page]
        self.pool._evict_page(page)
        self.evictions += 1
        return page


class PagedKVSlot:
    """One sequence's K/V storage: a page table over a :class:`PagePool`.

    Exposes the same ``append`` / ``view`` / ``advance`` / ``reset``
    interface as :class:`~repro.model.kvcache.KVSlot`, so
    :func:`repro.model.inference.attend_single` and the batched engine
    run unchanged on either cache.  Pages are claimed lazily: the table
    grows the first time ``append`` touches a position in a new page.
    """

    def __init__(self, pool: PagePool, index: int, max_seq_len: int):
        self._pool = pool
        self.index = index
        self.max_seq_len = max_seq_len
        self.page_table: list = []
        self.length = 0
        self._reservation_left = 0
        # Bumped whenever an *existing* page-table entry can change
        # (reset, copy-on-write retarget).  Pure appends leave it alone,
        # which is what lets batched-gather plans extend incrementally
        # instead of re-reading the table every decode step.
        self.generation = 0

    @property
    def n_pages(self) -> int:
        return len(self.page_table)

    def reserve(self, n_positions: int) -> None:
        """Pre-commit the worst-case page count for this sequence.

        Called at admission; lazy claims draw the reservation down, and
        :meth:`reset` returns whatever was never used.
        """
        needed = self._pool.pages_for(min(n_positions, self.max_seq_len))
        extra = needed - self.n_pages - self._reservation_left
        if extra > 0:
            self._pool._reserve(extra)
            self._reservation_left += extra

    def _ensure_page(self, page_index: int) -> None:
        while len(self.page_table) <= page_index:
            reserved = self._reservation_left > 0
            self.page_table.append(self._pool._claim_page(reserved))
            if reserved:
                self._reservation_left -= 1

    def _materialise_page(self, table_index: int) -> int:
        """Copy-on-write: replace a shared page with an exclusive copy.

        Claims an *unreserved* page (COW demand is beyond the slot's
        worst case, which charges only unshared pages; drawing the
        reservation down here would starve this slot's own future
        appends), memcpys the shared page, and drops one reference on
        it -- the other mappers keep their data untouched.
        """
        pool = self._pool
        old = self.page_table[table_index]
        new = pool._claim_page(reserved=False)
        pool.keys[new] = pool.keys[old]
        pool.values[new] = pool.values[old]
        pool._release_pages([old])
        self.page_table[table_index] = new
        self.generation += 1
        return new

    def append(self, layer: int, k: np.ndarray, v: np.ndarray,
               position: int) -> None:
        if position >= self.max_seq_len:
            raise ValueError(
                f"position {position} exceeds slot capacity {self.max_seq_len}"
            )
        page_size = self._pool.page_size
        table_index = position // page_size
        self._ensure_page(table_index)
        page = self.page_table[table_index]
        if self._pool._refcount[page] > 1:
            page = self._materialise_page(table_index)
        offset = position % page_size
        self._pool.keys[page, layer, offset] = k
        self._pool.values[page, layer, offset] = v

    def view(self, layer: int, length: int) -> tuple[np.ndarray, np.ndarray]:
        """K/V for the first ``length`` positions of ``layer``.

        Zero-copy when the positions fit one page; basic-slice rebuild
        when the page table is one consecutive arena run; fancy-index
        gather otherwise.
        """
        pool = self._pool
        page_size = pool.page_size
        n_pages = pool.pages_for(length)
        if n_pages > len(self.page_table):
            raise ValueError(
                f"view of {length} positions but only "
                f"{len(self.page_table)} pages appended"
            )
        if n_pages <= 1:
            page = self.page_table[0] if self.page_table else 0
            return (pool.keys[page, layer, :length],
                    pool.values[page, layer, :length])
        pages = self.page_table[:n_pages]
        first, last = pages[0], pages[-1]
        d_model = pool.config.d_model
        if last - first == n_pages - 1 and pages == list(range(first, last + 1)):
            keys = pool.keys[first:last + 1, layer]
            values = pool.values[first:last + 1, layer]
        else:
            keys = pool.keys[pages, layer]
            values = pool.values[pages, layer]
        return (keys.reshape(n_pages * page_size, d_model)[:length],
                values.reshape(n_pages * page_size, d_model)[:length])

    def advance(self) -> None:
        self.length += 1
        if self.length > self.max_seq_len:
            raise ValueError("KV slot overflow")

    def truncate(self, n_positions: int) -> None:
        """Roll the slot back to ``n_positions``, returning tail pages.

        Speculative decoding appends draft-quality K/V past the committed
        length and rewinds rejected positions.  Pages past
        ``pages_for(n_positions)`` drop one reference each -- a page a
        sharer still maps survives untouched (its refcount just
        decrements), so truncate can never free a forked sibling's
        prefix.  Pages that *do* come free are re-credited to this
        slot's reservation: the worst case the scheduler admitted
        against still covers the rewound positions, so the slot must be
        able to re-claim them without competing with other admissions.
        """
        if not 0 <= n_positions <= self.length:
            raise ValueError(
                f"cannot truncate slot of length {self.length} "
                f"to {n_positions}"
            )
        keep = self._pool.pages_for(n_positions)
        dropped = self.page_table[keep:]
        if dropped:
            free_before = self._pool.n_free_pages
            self._pool._release_pages(dropped)
            freed = self._pool.n_free_pages - free_before
            del self.page_table[keep:]
            if freed:
                # The pages just joined the free list, so the reserve
                # cannot fail; the credit keeps admission math exact.
                self._pool._reserve(freed)
                self._reservation_left += freed
            self.generation += 1
        self.length = n_positions

    def reset(self) -> None:
        """Return every page (and any unused reservation) to the pool."""
        if self.page_table:
            self._pool._release_pages(self.page_table)
            self.page_table = []
        if self._reservation_left:
            self._pool._cancel_reservation(self._reservation_left)
            self._reservation_left = 0
        self.length = 0
        self.generation += 1


class _SlotGatherPlan:
    """Cached page-index array for one slot, extended append-only.

    A decode step only ever *appends* positions, so between steps a
    slot's page table changes by at most one trailing entry; the plan
    keeps a numpy copy of the table and syncs just the new tail.  The
    slot's :attr:`~PagedKVSlot.generation` counter guards the cases
    where existing entries *can* change (reset, copy-on-write): a bump
    rebuilds the plan from scratch.
    """

    __slots__ = ("generation", "n_pages", "pages")

    def __init__(self):
        self.generation = -1
        self.n_pages = 0
        self.pages = np.empty(4, dtype=np.intp)

    def sync(self, slot: "PagedKVSlot", needed: int) -> np.ndarray:
        """The slot's first ``needed`` page indices as an array view."""
        if needed > len(slot.page_table):
            raise ValueError(
                f"gather of {needed} pages but only "
                f"{len(slot.page_table)} pages appended"
            )
        if self.generation != slot.generation:
            self.generation = slot.generation
            self.n_pages = 0
        if needed > self.n_pages:
            if needed > len(self.pages):
                grown = np.empty(max(needed, 2 * len(self.pages)),
                                 dtype=np.intp)
                grown[:self.n_pages] = self.pages[:self.n_pages]
                self.pages = grown
            self.pages[self.n_pages:needed] = \
                slot.page_table[self.n_pages:needed]
            self.n_pages = needed
        return self.pages[:needed]


class PagedBatchView:
    """Padded batched K/V gather over a :class:`PagePool`.

    Built from per-slot gather plans: a ``(B, p_max)`` page-index
    matrix, rows padded with page 0 (padded positions land at or past
    each row's length, so callers' length masks hide them -- whatever
    data page 0 holds never contributes).  ``gather(layer)`` turns it
    into ``(B, l_max, d_model)`` K/V with **one** arena index per layer
    instead of B page-table walks.

    Reuses :meth:`PagedKVSlot.view`'s contiguous-run detection at batch
    granularity: when the padded matrix happens to enumerate one
    consecutive arena run row-major (common early in a drain, when
    equal-length sequences claimed consecutive pages), the gather uses
    a basic slice instead of a fancy index.  Both paths copy -- the
    layer axis sits between the page and position axes, so the reshape
    must materialise -- but the slice path skips the index-array
    machinery (~10% faster at decode shapes), same as the run path of
    the single-sequence ``view``.
    """

    def __init__(self, pool: PagePool, rows, lengths):
        self._pool = pool
        self.lengths = np.asarray(lengths)
        self.l_max = int(self.lengths.max())
        p_max = max(len(row) for row in rows)
        mat = np.zeros((len(rows), p_max), dtype=np.intp)
        for i, row in enumerate(rows):
            mat[i, :len(row)] = row
        self._mat = mat
        flat = mat.ravel()
        self._contig_start = None
        if flat[-1] - flat[0] == flat.size - 1 and \
                np.array_equal(flat, np.arange(flat[0], flat[-1] + 1)):
            self._contig_start = int(flat[0])

    def gather(self, layer: int) -> tuple[np.ndarray, np.ndarray]:
        pool = self._pool
        B, p_max = self._mat.shape
        width = p_max * pool.page_size
        d_model = pool.config.d_model
        if self._contig_start is not None:
            start, stop = self._contig_start, self._contig_start + B * p_max
            keys = pool.keys[start:stop, layer]
            values = pool.values[start:stop, layer]
        else:
            keys = pool.keys[self._mat, layer]      # (B, p_max, ps, d)
            values = pool.values[self._mat, layer]
        return (keys.reshape(B, width, d_model)[:, :self.l_max],
                values.reshape(B, width, d_model)[:, :self.l_max])


class PagedKVCache:
    """Drop-in paged replacement for :class:`~repro.model.kvcache.BatchedKVCache`.

    Same ``allocate`` / ``release`` / ``n_free`` surface over a fixed set
    of slot handles, but storage comes from a shared :class:`PagePool`
    sized by ``n_pages`` (default: the fixed cache's worst case,
    ``n_slots * ceil(max_seq_len / page_size)``).  Pass a smaller
    ``n_pages`` to run under a memory budget: short sequences then leave
    pages for extra concurrent sequences instead of padding out unused
    slot tails.
    """

    def __init__(self, config: ModelConfig, n_slots: int,
                 max_seq_len: int = 0, page_size: int = DEFAULT_PAGE_SIZE,
                 n_pages: int = 0, cache_pages: int = 0):
        if n_slots < 1:
            raise ValueError(f"n_slots must be >= 1, got {n_slots}")
        if cache_pages < 0:
            raise ValueError(f"cache_pages must be >= 0, got {cache_pages}")
        self.config = config
        self.n_slots = n_slots
        self.max_seq_len = max_seq_len or config.max_seq_len
        worst_case = -(-self.max_seq_len // page_size)
        self.pool = PagePool(config, n_pages or n_slots * worst_case,
                             page_size)
        self.prefix_cache = (
            PrefixCache(self.pool, cache_pages) if cache_pages else None
        )
        self.pool.prefix_cache = self.prefix_cache
        self._slots = [PagedKVSlot(self.pool, i, self.max_seq_len)
                       for i in range(n_slots)]
        self._free = list(range(n_slots - 1, -1, -1))   # pop() -> lowest index
        self._free_set = set(range(n_slots))
        self._gather_plans = [_SlotGatherPlan() for _ in range(n_slots)]

    # -- pool passthroughs -------------------------------------------------

    @property
    def page_size(self) -> int:
        return self.pool.page_size

    @property
    def n_pages(self) -> int:
        return self.pool.n_pages

    @property
    def n_pages_in_use(self) -> int:
        return self.pool.n_pages_in_use

    @property
    def n_free_pages(self) -> int:
        return self.pool.n_free_pages

    @property
    def n_available_pages(self) -> int:
        return self.pool.n_available_pages

    @property
    def n_shared_pages(self) -> int:
        return self.pool.n_shared_pages

    @property
    def n_cached_pages(self) -> int:
        return self.pool.n_cached_pages

    @property
    def kv_bytes(self) -> int:
        return self.pool.arena_bytes

    def pages_for(self, n_positions: int) -> int:
        return self.pool.pages_for(n_positions)

    @property
    def max_request_positions(self) -> int:
        """Longest sequence any single request could ever store."""
        return min(self.max_seq_len, self.pool.n_pages * self.page_size)

    def can_admit(self, n_positions: int) -> bool:
        """Whether a worst-case ``n_positions`` request fits right now."""
        return bool(self._free) and self.pool.can_reserve(n_positions)

    def view_batch(self, slots, lengths) -> PagedBatchView:
        """Padded ``(B, l_max, d_model)`` K/V gather for a decode batch.

        The per-slot page-index arrays come from cached
        :class:`_SlotGatherPlan` objects, so between decode steps only
        newly-appended pages are read from the python page tables; the
        returned view performs one arena gather per layer.
        """
        rows = [
            self._gather_plans[slot.index].sync(
                slot, self.pool.pages_for(int(length))
            )
            for slot, length in zip(slots, lengths)
        ]
        return PagedBatchView(self.pool, rows, lengths)

    # -- slot management ---------------------------------------------------

    @property
    def n_free(self) -> int:
        return len(self._free)

    def allocate(self, max_positions: int = 0) -> PagedKVSlot:
        """Claim a slot, reserving ``max_positions`` worth of pages.

        ``max_positions=0`` skips reservation: pages are then claimed
        purely lazily, which is fine for direct engine use but forfeits
        the no-mid-decode-starvation guarantee the scheduler relies on.
        """
        if not self._free:
            raise RuntimeError("no free KV slots")
        if max_positions and not self.pool.can_reserve(max_positions):
            raise RuntimeError(
                f"cannot admit a {max_positions}-position sequence: "
                f"{self.pool.n_available_pages} pages available of "
                f"{self.pool.n_pages}"
            )
        index = self._free.pop()
        self._free_set.discard(index)
        slot = self._slots[index]
        slot.reset()
        if max_positions:
            slot.reserve(max_positions)
        return slot

    def release(self, slot: PagedKVSlot, prompt_ids=None) -> None:
        """Return a slot, its pages, and any unused reservation.

        With ``prompt_ids`` (the sequence's prompt) and an active prefix
        cache, the slot's full prompt-prefix pages are *parked* in the
        cache (:meth:`PrefixCache.park`) instead of freed, so a later
        request sharing the prefix can :meth:`revive` them.  Without
        either, behaviour is exactly the pre-cache release.
        """
        if slot._pool is not self.pool:
            raise ValueError("slot belongs to a different cache")
        if slot.index in self._free_set:
            raise ValueError(f"slot {slot.index} released twice")
        if prompt_ids is not None and self.prefix_cache is not None:
            self.prefix_cache.park(slot, prompt_ids)
        slot.reset()
        self._free.append(slot.index)
        self._free_set.add(slot.index)

    # -- prefix sharing ----------------------------------------------------

    def fork_page_demand(self, shared_positions: int,
                         max_positions: int) -> int:
        """Pages a fork must be able to claim or reserve right now.

        The donor's full prefix pages come free (they are shared by
        reference); everything else -- the eager copy of a partial
        trailing page plus the unshared worst case -- must be backed by
        available pages.
        """
        full_shared = shared_positions // self.page_size
        total = min(max_positions or shared_positions, self.max_seq_len)
        return max(self.pool.pages_for(total) - full_shared, 0)

    def can_fork(self, donor: PagedKVSlot, shared_positions: int,
                 max_positions: int = 0) -> bool:
        """Whether :meth:`fork` with these arguments would succeed now."""
        if not self._free or donor.index in self._free_set:
            return False
        if not 0 < shared_positions <= donor.length:
            return False
        if max_positions and max_positions < shared_positions:
            return False
        demand = self.fork_page_demand(shared_positions, max_positions)
        return demand <= self.pool.n_available_pages

    def fork(self, donor: PagedKVSlot, shared_positions: int,
             max_positions: int = 0) -> PagedKVSlot:
        """Map a new slot onto the donor's first ``shared_positions``.

        Full pages of the shared prefix are mapped **by reference**
        (refcount bumped); a partial trailing page is **copied eagerly**
        so every shared page stays full and immutable.  The new slot
        starts at ``length == shared_positions`` -- its K/V for those
        positions is the donor's, bit for bit -- and ``max_positions``
        reserves only the *unshared* worst case (shared full pages are
        already resident).

        Raises rather than partially forking when the donor is stale,
        the geometry is inconsistent, or the pool cannot back the
        unshared demand.
        """
        if donor._pool is not self.pool:
            raise ValueError("donor slot belongs to a different cache")
        if donor.index in self._free_set:
            raise ValueError(f"donor slot {donor.index} is not allocated")
        if not 0 < shared_positions <= donor.length:
            raise ValueError(
                f"shared_positions must be in [1, {donor.length}] "
                f"(donor length), got {shared_positions}"
            )
        if max_positions and max_positions < shared_positions:
            raise ValueError(
                f"max_positions {max_positions} is below the shared "
                f"prefix length {shared_positions}"
            )
        if not self._free:
            raise RuntimeError("no free KV slots")
        full_shared, partial = divmod(shared_positions, self.page_size)
        demand = self.fork_page_demand(shared_positions, max_positions)
        if demand > self.pool.n_available_pages:
            raise RuntimeError(
                f"cannot fork a {shared_positions}-position prefix: needs "
                f"{demand} unshared pages, {self.pool.n_available_pages} "
                f"available"
            )
        index = self._free.pop()
        self._free_set.discard(index)
        slot = self._slots[index]
        slot.reset()
        for page in donor.page_table[:full_shared]:
            self.pool._share_page(page)
            slot.page_table.append(page)
        if max_positions:
            slot.reserve(max_positions)   # charges only beyond the table
        if partial:
            slot._ensure_page(full_shared)
            new = slot.page_table[full_shared]
            old = donor.page_table[full_shared]
            self.pool.keys[new] = self.pool.keys[old]
            self.pool.values[new] = self.pool.values[old]
        slot.length = shared_positions
        return slot

    # -- cross-request prefix cache ----------------------------------------

    def find_cached_prefix(self, prompt_ids) -> tuple:
        """``(pages, positions)`` of the longest revivable cached prefix.

        ``pages`` is the chain to pass to :meth:`revive`; ``positions``
        is always ``len(pages) * page_size`` (cached sharing is
        page-granular -- unlike a fork there is no donor to copy a
        partial trailing page from).  ``([], 0)`` when no prefix cache
        is configured or nothing matches.
        """
        if self.prefix_cache is None:
            return [], 0
        pages = self.prefix_cache.lookup(prompt_ids)
        return pages, len(pages) * self.page_size

    def revive_page_demand(self, n_cached_pages: int,
                           max_positions: int) -> int:
        """Pages a revive must be able to claim or reserve right now.

        Mirrors :meth:`fork_page_demand`: the revived pages are already
        resident (they come out of the cache), so only the worst case
        *beyond* them must be backed.
        """
        revived = n_cached_pages * self.page_size
        total = min(max_positions or revived, self.max_seq_len)
        return max(self.pool.pages_for(total) - n_cached_pages, 0)

    def can_revive(self, n_cached_pages: int, max_positions: int = 0) -> bool:
        """Whether :meth:`revive` of that many cached pages fits now.

        Pinning removes the revived pages from the reclaimable set, so
        the unshared demand is checked against the availability that
        remains *after* the pin.
        """
        if not self._free or n_cached_pages < 1:
            return False
        revived = n_cached_pages * self.page_size
        if max_positions and max_positions < revived:
            return False
        demand = self.revive_page_demand(n_cached_pages, max_positions)
        return demand <= self.pool.n_available_pages - n_cached_pages

    def revive(self, pages, max_positions: int = 0) -> PagedKVSlot:
        """Re-pin a cached prefix chain into a fresh slot.

        ``pages`` must come from :meth:`find_cached_prefix` (or
        :meth:`PrefixCache.lookup`) in the same admission -- the chain
        is consumed: entries leave the cache, each page's refcount goes
        0 -> 1 in the new slot's table, and the slot starts at ``length
        == len(pages) * page_size`` holding the exact K/V the original
        prefill wrote.  ``max_positions`` reserves only the worst case
        beyond the revived pages, like a fork.
        """
        if self.prefix_cache is None:
            raise RuntimeError(
                "cache built without cache_pages > 0 cannot revive"
            )
        n_cached = len(pages)
        if n_cached < 1:
            raise ValueError("revive needs at least one cached page")
        revived = n_cached * self.page_size
        if max_positions and max_positions < revived:
            raise ValueError(
                f"max_positions {max_positions} is below the revived "
                f"prefix length {revived}"
            )
        if revived > self.max_seq_len:
            raise ValueError(
                f"revived prefix length {revived} exceeds max_seq_len "
                f"{self.max_seq_len}"
            )
        if not self._free:
            raise RuntimeError("no free KV slots")
        demand = self.revive_page_demand(n_cached, max_positions)
        if demand > self.pool.n_available_pages - n_cached:
            raise RuntimeError(
                f"cannot revive a {revived}-position prefix: needs "
                f"{demand} pages beyond the cached chain, "
                f"{self.pool.n_available_pages - n_cached} available"
            )
        self.prefix_cache.take(pages)
        index = self._free.pop()
        self._free_set.discard(index)
        slot = self._slots[index]
        slot.reset()
        slot.page_table.extend(pages)
        if max_positions:
            slot.reserve(max_positions)   # charges only beyond the chain
        slot.length = revived
        return slot

"""Character-level tokenizer for the synthetic evaluation tasks.

The accuracy experiments (Tables II-III) need a generative pipeline --
prompt in, answer tokens out, exact-match scoring -- not a production BPE.
A char-level vocabulary over the task alphabets keeps the trainable
substrate small while exercising exactly the same decode path a real
tokenizer would.
"""

from __future__ import annotations

from dataclasses import dataclass, field


PAD_TOKEN = "<pad>"
BOS_TOKEN = "<bos>"
EOS_TOKEN = "<eos>"


@dataclass(frozen=True)
class CharTokenizer:
    """Bidirectional char <-> id mapping with pad/bos/eos specials."""

    alphabet: str
    _stoi: dict = field(default_factory=dict, repr=False)
    _itos: dict = field(default_factory=dict, repr=False)

    def __post_init__(self):
        specials = [PAD_TOKEN, BOS_TOKEN, EOS_TOKEN]
        chars = list(dict.fromkeys(self.alphabet))  # stable de-dup
        stoi: dict = {tok: i for i, tok in enumerate(specials)}
        for ch in chars:
            if len(ch) != 1:
                raise ValueError(f"alphabet entries must be single chars, got {ch!r}")
            stoi[ch] = len(stoi)
        itos = {i: tok for tok, i in stoi.items()}
        object.__setattr__(self, "_stoi", stoi)
        object.__setattr__(self, "_itos", itos)

    @classmethod
    def from_corpus(cls, texts) -> "CharTokenizer":
        """Build from the set of characters appearing in ``texts``."""
        chars = sorted({ch for text in texts for ch in text})
        return cls(alphabet="".join(chars))

    @property
    def vocab_size(self) -> int:
        return len(self._stoi)

    @property
    def pad_id(self) -> int:
        return self._stoi[PAD_TOKEN]

    @property
    def bos_id(self) -> int:
        return self._stoi[BOS_TOKEN]

    @property
    def eos_id(self) -> int:
        return self._stoi[EOS_TOKEN]

    def encode(self, text: str, add_bos: bool = False, add_eos: bool = False) -> list:
        try:
            ids = [self._stoi[ch] for ch in text]
        except KeyError as exc:
            raise ValueError(f"character {exc.args[0]!r} not in vocabulary") from exc
        if add_bos:
            ids = [self.bos_id] + ids
        if add_eos:
            ids = ids + [self.eos_id]
        return ids

    def decode(self, ids, strip_specials: bool = True) -> str:
        out = []
        for i in ids:
            tok = self._itos.get(int(i))
            if tok is None:
                raise ValueError(f"id {i} not in vocabulary")
            if strip_specials and tok in (PAD_TOKEN, BOS_TOKEN, EOS_TOKEN):
                continue
            out.append(tok)
        return "".join(out)

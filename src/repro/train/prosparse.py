"""ProSparse-style activation-sparsity regularisation (paper Section II).

ProSparse pushes ReLU-fied models toward higher activation sparsity by
progressively increasing an L1 penalty on the gate activations during
fine-tuning, optionally finishing with a positive FATReLU threshold.
This module reproduces that recipe for the trainable role models so the
accuracy experiments run on genuinely sparse networks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..autograd.tensor import Tensor


@dataclass(frozen=True)
class ProgressiveL1Schedule:
    """Linearly warms the L1 coefficient from 0 to ``peak`` over training.

    ``warmup_fraction`` of the steps ramp up; the remainder holds ``peak``.
    ProSparse's staged regularisation is approximated by the linear ramp.
    """

    peak: float
    total_steps: int
    warmup_fraction: float = 0.6

    def __post_init__(self):
        if self.peak < 0:
            raise ValueError(f"peak must be non-negative, got {self.peak}")
        if self.total_steps <= 0:
            raise ValueError(f"total_steps must be positive, got {self.total_steps}")
        if not 0.0 < self.warmup_fraction <= 1.0:
            raise ValueError(
                f"warmup_fraction must be in (0, 1], got {self.warmup_fraction}"
            )

    def coefficient(self, step: int) -> float:
        warmup_steps = max(1, int(self.total_steps * self.warmup_fraction))
        return self.peak * min(1.0, step / warmup_steps)


def gate_l1_penalty(gate_activations: list) -> Tensor:
    """Mean absolute gate activation across layers (the L1 target).

    ``gate_activations`` is the per-layer list returned by
    :meth:`repro.train.lm.TrainableLM.forward` with collection enabled.
    """
    if not gate_activations:
        raise ValueError("no gate activations collected")
    total = None
    for act in gate_activations:
        term = act.abs().mean()
        total = term if total is None else total + term
    return total * (1.0 / len(gate_activations))


def measured_gate_sparsity(gate_activations: list) -> float:
    """Fraction of exactly-zero gate activations (monitoring metric)."""
    zeros = 0
    count = 0
    for act in gate_activations:
        zeros += int(np.count_nonzero(act.data == 0.0))
        count += act.data.size
    return zeros / count if count else 0.0


def calibrate_fatrelu_threshold(
    gate_preacts: np.ndarray, target_sparsity: float
) -> float:
    """Threshold achieving ``target_sparsity`` on sampled pre-activations.

    ProSparse's final stage replaces ReLU with FATReLU at a small positive
    threshold; the threshold is the ``target_sparsity`` quantile of the
    observed pre-activation distribution (clipped at 0 from below).
    """
    if not 0.0 < target_sparsity < 1.0:
        raise ValueError(
            f"target_sparsity must be in (0, 1), got {target_sparsity}"
        )
    threshold = float(np.quantile(np.asarray(gate_preacts), target_sparsity))
    return max(threshold, 0.0)

"""Training pipeline: LM training, ReLUfication, ProSparse regularisation."""

from .data import Batch, batches_from_task, make_batch
from .lm import TrainableLM
from .prosparse import ProgressiveL1Schedule, gate_l1_penalty
from .relufication import relufy
from .trainer import TrainReport, TrainSettings, train, train_or_load

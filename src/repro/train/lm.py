"""Trainable Llama-style decoder LM on the numpy autograd engine.

Used to produce the "role" models of the accuracy experiments
(Tables II-III): small gate-based-MLP transformers trained from scratch on
the synthetic tasks, optionally with SiLU first and ReLUfication +
ProSparse regularisation afterwards -- the same pipeline that produced the
paper's ProSparse-Llama2 models, at laptop scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..autograd.functional import (
    apply_rope,
    causal_attention,
    cross_entropy,
    embedding,
    rmsnorm,
    rope_rotation,
)
from ..autograd.tensor import Tensor, parameter
from ..model.config import ModelConfig
from ..model.weights import LayerWeights, ModelWeights


@dataclass
class ForwardOutput:
    """Logits plus the auxiliary activations regularisers need."""

    logits: Tensor
    gate_activations: list  # one (B, T, k) Tensor per layer (post-activation)


class TrainableLM:
    """A gate-based-MLP decoder LM with trainable parameters.

    Parameter layout uses ``x @ W`` (input-major) matrices; exporting to
    the inference engine transposes the MLP projections into the row-major
    sparse-GEMV layout (see :mod:`repro.model.weights`).
    """

    def __init__(self, config: ModelConfig, seed: int = 0):
        self.config = config
        rng = np.random.default_rng(seed)
        d, k, v = config.d_model, config.d_ff, config.vocab_size
        scale = 0.02
        out_scale = scale / np.sqrt(2.0 * config.n_layers)  # GPT-2-style

        self.tok_embed = parameter((v, d), rng, scale, "tok_embed")
        self.layers: list[dict] = []
        for i in range(config.n_layers):
            self.layers.append(
                {
                    "attn_norm": Tensor(np.ones(d, dtype=np.float32), requires_grad=True),
                    "wq": parameter((d, d), rng, scale, f"l{i}.wq"),
                    "wk": parameter((d, d), rng, scale, f"l{i}.wk"),
                    "wv": parameter((d, d), rng, scale, f"l{i}.wv"),
                    "wo": parameter((d, d), rng, out_scale, f"l{i}.wo"),
                    "mlp_norm": Tensor(np.ones(d, dtype=np.float32), requires_grad=True),
                    "w_gate": parameter((d, k), rng, scale, f"l{i}.w_gate"),
                    "w_up": parameter((d, k), rng, scale, f"l{i}.w_up"),
                    "w_down": parameter((k, d), rng, out_scale, f"l{i}.w_down"),
                }
            )
        self.final_norm = Tensor(np.ones(d, dtype=np.float32), requires_grad=True)
        self.lm_head = parameter((d, v), rng, scale, "lm_head")

    # -- parameters ---------------------------------------------------------

    def parameters(self) -> list:
        params = [self.tok_embed, self.final_norm, self.lm_head]
        for layer in self.layers:
            params.extend(layer.values())
        return params

    def n_parameters(self) -> int:
        return sum(p.data.size for p in self.parameters())

    # -- forward --------------------------------------------------------------

    def _gate_activation(self, preact: Tensor) -> Tensor:
        kind = self.config.activation
        if kind == "relu":
            return preact.relu()
        if kind == "silu":
            return preact.silu()
        return preact.fatrelu(self.config.fatrelu_threshold)

    def forward(self, tokens: np.ndarray,
                collect_gate_activations: bool = False) -> ForwardOutput:
        """Full-sequence forward pass; ``tokens`` has shape ``(B, T)``."""
        tokens = np.asarray(tokens)
        if tokens.ndim != 2:
            raise ValueError(f"tokens must be 2-D (batch, seq), got {tokens.shape}")
        cfg = self.config
        _, seq = tokens.shape
        cos, sin = rope_rotation(seq, cfg.head_dim, cfg.rope_theta)
        x = embedding(self.tok_embed, tokens)
        gate_acts: list = []
        for layer in self.layers:
            attn_in = rmsnorm(x, layer["attn_norm"], cfg.norm_eps)
            q = attn_in @ layer["wq"]
            k = attn_in @ layer["wk"]
            v = attn_in @ layer["wv"]
            q = self._rope_heads(q, cos, sin)
            k = self._rope_heads(k, cos, sin)
            attn = causal_attention(q, k, v, cfg.n_heads)
            x = x + attn @ layer["wo"]
            mlp_in = rmsnorm(x, layer["mlp_norm"], cfg.norm_eps)
            h1 = self._gate_activation(mlp_in @ layer["w_gate"])
            if collect_gate_activations:
                gate_acts.append(h1)
            h2 = mlp_in @ layer["w_up"]
            x = x + (h1 * h2) @ layer["w_down"]
        x = rmsnorm(x, self.final_norm, cfg.norm_eps)
        return ForwardOutput(logits=x @ self.lm_head, gate_activations=gate_acts)

    def _rope_heads(self, t: Tensor, cos: np.ndarray, sin: np.ndarray) -> Tensor:
        cfg = self.config
        batch, seq, _ = t.shape
        heads = t.reshape(batch, seq, cfg.n_heads, cfg.head_dim).transpose(0, 2, 1, 3)
        rotated = apply_rope(heads, cos, sin)
        return rotated.transpose(0, 2, 1, 3).reshape(batch, seq, cfg.d_model)

    def loss(self, tokens: np.ndarray, targets: np.ndarray,
             collect_gate_activations: bool = False) -> tuple[Tensor, ForwardOutput]:
        """Cross-entropy next-token loss with ``-1``-masked targets."""
        out = self.forward(tokens, collect_gate_activations)
        return cross_entropy(out.logits, targets), out

    # -- export ----------------------------------------------------------------

    def export_weights(self) -> ModelWeights:
        """Snapshot parameters into the inference (row-major) layout."""
        cfg = self.config
        layers = []
        for layer in self.layers:
            layers.append(
                LayerWeights(
                    attn_norm=layer["attn_norm"].data.copy(),
                    wq=layer["wq"].data.copy(),
                    wk=layer["wk"].data.copy(),
                    wv=layer["wv"].data.copy(),
                    wo=layer["wo"].data.copy(),
                    mlp_norm=layer["mlp_norm"].data.copy(),
                    w_gate_rows=np.ascontiguousarray(layer["w_gate"].data.T),
                    w_up_rows=np.ascontiguousarray(layer["w_up"].data.T),
                    w_down_rows=layer["w_down"].data.copy(),
                )
            )
        weights = ModelWeights(
            config=cfg,
            tok_embed=self.tok_embed.data.copy(),
            layers=layers,
            final_norm=self.final_norm.data.copy(),
            lm_head=self.lm_head.data.copy(),
        )
        weights.validate()
        return weights

    def set_activation(self, kind: str, threshold: float = 0.0) -> None:
        """Swap the gate nonlinearity in place (ReLUfication)."""
        from dataclasses import replace

        self.config = replace(
            self.config, activation=kind, fatrelu_threshold=threshold
        )

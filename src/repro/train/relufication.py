"""ReLUfication: swap SiLU for ReLU and recover accuracy by fine-tuning.

Mirzadeh et al. ("ReLU Strikes Back") showed that replacing the SiLU gate
activation of a pre-trained LLM with ReLU, followed by a short fine-tune,
recovers accuracy while inducing large activation sparsity -- the
precondition for SparseInfer.  This module reproduces the pipeline on the
trainable role models:

1. train (or receive) a SiLU model,
2. swap the gate activation to ReLU,
3. fine-tune, optionally with the ProSparse L1 ramp,
4. optionally calibrate a FATReLU threshold for extra sparsity.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .lm import TrainableLM
from .prosparse import calibrate_fatrelu_threshold
from .trainer import TrainReport, TrainSettings, train


@dataclass
class ReluficationResult:
    """Outcome of the ReLUfication pipeline."""

    finetune_report: TrainReport
    fatrelu_threshold: float = 0.0


def relufy(
    model: TrainableLM,
    batches: list,
    finetune_settings: TrainSettings,
    fatrelu_target_sparsity: float = 0.0,
    rng_seed: int = 0,
) -> ReluficationResult:
    """Apply ReLUfication to a (typically SiLU-trained) model in place."""
    model.set_activation("relu")
    report = train(model, batches, finetune_settings, rng_seed=rng_seed)
    threshold = 0.0
    if fatrelu_target_sparsity > 0.0:
        # Sample pre-activations from one batch to place the threshold.
        out = model.forward(batches[0].tokens, collect_gate_activations=True)
        import numpy as np

        preacts = np.concatenate(
            [act.data.reshape(-1) for act in out.gate_activations]
        )
        threshold = calibrate_fatrelu_threshold(preacts, fatrelu_target_sparsity)
        model.set_activation("fatrelu", threshold)
    return ReluficationResult(finetune_report=report, fatrelu_threshold=threshold)


def silu_pretrain_settings(settings: TrainSettings) -> TrainSettings:
    """Settings for the SiLU pre-training stage (no sparsity penalty)."""
    return replace(settings, l1_peak=0.0)

"""Training loop for the role models.

Combines the LM loss with the ProSparse L1 gate penalty, tracks loss and
measured gate sparsity, and supports deterministic caching of trained
weights so benchmarks don't retrain on every invocation.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

import numpy as np

from ..autograd.optim import Adam, clip_grad_norm
from ..model.config import ModelConfig
from ..model.weights import ModelWeights
from .data import Batch
from .lm import TrainableLM
from .prosparse import (
    ProgressiveL1Schedule,
    gate_l1_penalty,
    measured_gate_sparsity,
)


@dataclass
class TrainReport:
    """Loss / sparsity trajectory of one training run."""

    losses: list = field(default_factory=list)
    gate_sparsities: list = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")

    @property
    def final_gate_sparsity(self) -> float:
        return self.gate_sparsities[-1] if self.gate_sparsities else 0.0


@dataclass
class TrainSettings:
    """Hyper-parameters of one training run."""

    steps: int = 600
    lr: float = 3e-3
    weight_decay: float = 0.01
    grad_clip: float = 1.0
    l1_peak: float = 0.0          # ProSparse gate regularisation strength
    l1_warmup_fraction: float = 0.6
    log_every: int = 50


def train(
    model: TrainableLM,
    batches: list,
    settings: TrainSettings,
    rng_seed: int = 0,
) -> TrainReport:
    """Run the training loop; batches are cycled deterministically."""
    if not batches:
        raise ValueError("no training batches")
    optimizer = Adam(
        model.parameters(), lr=settings.lr, weight_decay=settings.weight_decay
    )
    schedule = ProgressiveL1Schedule(
        peak=settings.l1_peak,
        total_steps=settings.steps,
        warmup_fraction=settings.l1_warmup_fraction,
    )
    order = np.random.default_rng(rng_seed).permutation(len(batches))
    report = TrainReport()
    collect = settings.l1_peak > 0.0
    for step in range(settings.steps):
        batch: Batch = batches[order[step % len(order)]]
        optimizer.zero_grad()
        loss, out = model.loss(
            batch.tokens, batch.targets, collect_gate_activations=collect
        )
        total = loss
        if collect:
            coef = schedule.coefficient(step)
            if coef > 0.0:
                total = total + gate_l1_penalty(out.gate_activations) * coef
        total.backward()
        clip_grad_norm(model.parameters(), settings.grad_clip)
        optimizer.step()
        if step % settings.log_every == 0 or step == settings.steps - 1:
            report.losses.append(float(loss.item()))
            report.gate_sparsities.append(
                measured_gate_sparsity(out.gate_activations) if collect else 0.0
            )
    return report


# ---------------------------------------------------------------------------
# Trained-weights cache
# ---------------------------------------------------------------------------

def default_cache_dir() -> Path:
    return Path(__file__).resolve().parents[3] / ".weight_cache"


def _cache_key(config: ModelConfig, task: str, settings: TrainSettings,
               seed: int) -> str:
    blob = (
        f"{config.name}|{config.vocab_size}|{config.d_model}|{config.n_layers}"
        f"|{config.n_heads}|{config.d_ff}|{config.activation}"
        f"|{task}|{settings.steps}|{settings.lr}|{settings.l1_peak}"
        f"|{settings.weight_decay}|{seed}|v1"
    )
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def train_or_load(
    config: ModelConfig,
    task: str,
    batches: list,
    settings: TrainSettings,
    seed: int = 0,
    cache_dir: Optional[Path] = None,
) -> ModelWeights:
    """Train a role model, caching the exported weights on disk.

    Repeated benchmark runs with identical settings load the ``.npz``
    snapshot instead of retraining.
    """
    cache_dir = Path(cache_dir) if cache_dir else default_cache_dir()
    cache_dir.mkdir(parents=True, exist_ok=True)
    path = cache_dir / f"{_cache_key(config, task, settings, seed)}.npz"
    if path.exists():
        return ModelWeights.load(path, config)
    model = TrainableLM(config, seed=seed)
    train(model, batches, settings, rng_seed=seed)
    weights = model.export_weights()
    weights.save(path)
    return weights

"""Batch construction for task training.

Sequences are ``<bos> prompt answer <eos>`` padded to a common length;
targets are next-token ids with ``-1`` everywhere except the answer span
(and the closing ``<eos>``), so the loss concentrates on producing the
answer -- the quantity the exact-match evaluation scores.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..model.tokenizer import CharTokenizer
from ..workloads.gsm8k_like import TaskSample

IGNORE_INDEX = -1


@dataclass(frozen=True)
class Batch:
    """One training batch: inputs, shifted targets and the raw samples."""

    tokens: np.ndarray    # (B, T) int
    targets: np.ndarray   # (B, T) int, IGNORE_INDEX-masked

    @property
    def batch_size(self) -> int:
        return self.tokens.shape[0]

    @property
    def seq_len(self) -> int:
        return self.tokens.shape[1]


def encode_sample(
    sample: TaskSample, tokenizer: CharTokenizer
) -> tuple[list, int]:
    """Token ids of ``<bos> prompt answer <eos>`` and the answer offset.

    The offset is the index of the first *answer* token within the ids.
    """
    prompt_ids = tokenizer.encode(sample.prompt, add_bos=True)
    answer_ids = tokenizer.encode(sample.answer, add_eos=True)
    return prompt_ids + answer_ids, len(prompt_ids)


def make_batch(
    samples: list, tokenizer: CharTokenizer, answer_only_loss: bool = True
) -> Batch:
    """Pad samples to a common length and build masked next-token targets."""
    if not samples:
        raise ValueError("empty batch")
    encoded = [encode_sample(s, tokenizer) for s in samples]
    max_len = max(len(ids) for ids, _ in encoded)
    pad = tokenizer.pad_id
    tokens = np.full((len(samples), max_len), pad, dtype=np.int64)
    targets = np.full((len(samples), max_len), IGNORE_INDEX, dtype=np.int64)
    for row, (ids, answer_start) in enumerate(encoded):
        n = len(ids)
        tokens[row, :n] = ids
        # Next-token prediction: position t predicts ids[t+1].
        loss_from = answer_start - 1 if answer_only_loss else 0
        for t in range(loss_from, n - 1):
            targets[row, t] = ids[t + 1]
    return Batch(tokens=tokens, targets=targets)


def batches_from_task(
    generate_fn,
    tokenizer: CharTokenizer,
    n_batches: int,
    batch_size: int,
    seed: int = 0,
    answer_only_loss: bool = True,
    **task_kwargs,
) -> list:
    """Pre-built batch list from a workload generator function."""
    samples = generate_fn(n_batches * batch_size, seed=seed, **task_kwargs)
    return [
        make_batch(
            samples[i * batch_size:(i + 1) * batch_size],
            tokenizer,
            answer_only_loss,
        )
        for i in range(n_batches)
    ]
